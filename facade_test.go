package gpgpu_test

// Tests of the public facade: everything a downstream user touches must be
// reachable through the root package alone.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	gpgpu "gles2gpgpu"
)

func fillRand(m *gpgpu.Matrix, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 0.999
	}
}

func newTestEngine(t *testing.T, n int, mut func(*gpgpu.Config)) *gpgpu.Engine {
	t.Helper()
	cfg := gpgpu.Config{
		Device: gpgpu.GenericDevice(),
		Width:  n, Height: n,
		Swap:   gpgpu.SwapNone,
		Target: gpgpu.TargetTexture,
		UseVBO: true,
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := gpgpu.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFacadeSum(t *testing.T) {
	const n = 32
	e := newTestEngine(t, n, nil)
	a := gpgpu.NewMatrix(n, n)
	b := gpgpu.NewMatrix(n, n)
	fillRand(a, 1)
	fillRand(b, 2)
	r, err := gpgpu.NewSum(e, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	c, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Data {
		if math.Abs(c.Data[i]-(a.Data[i]+b.Data[i])) > 1e-5 {
			t.Fatalf("element %d: %g vs %g", i, c.Data[i], a.Data[i]+b.Data[i])
		}
	}
	if e.Now() <= 0 {
		t.Error("virtual time did not advance")
	}
}

func TestFacadeSgemmWithFP24(t *testing.T) {
	const n = 16
	e := newTestEngine(t, n, func(c *gpgpu.Config) {
		c.Kernel = gpgpu.FP24KernelOptions
	})
	a := gpgpu.NewMatrix(n, n)
	b := gpgpu.NewMatrix(n, n)
	fillRand(a, 3)
	fillRand(b, 4)
	r, err := gpgpu.NewSgemm(e, a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	c, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-want) > 5e-3 {
				t.Fatalf("C[%d][%d] = %g, want %g", i, j, c.At(i, j), want)
			}
		}
	}
}

func TestFacadeDeviceProfiles(t *testing.T) {
	for _, p := range []*gpgpu.DeviceProfile{gpgpu.VideoCoreIV(), gpgpu.PowerVRSGX545(), gpgpu.GenericDevice()} {
		if p.Name == "" || p.GPUClockHz <= 0 || p.TileW <= 0 {
			t.Errorf("profile %+v incomplete", p.Name)
		}
		if !p.Deferred {
			t.Errorf("%s: paper devices are tile-based *deferred* renderers", p.Name)
		}
	}
	// The two paper devices differ in the documented ways.
	vc, sgx := gpgpu.VideoCoreIV(), gpgpu.PowerVRSGX545()
	if vc.TileW <= sgx.TileW {
		t.Error("VideoCore tiles (64x64) should exceed SGX tiles (16x16)")
	}
	if vc.DefaultSwapInterval != 1 || sgx.DefaultSwapInterval != 0 {
		t.Error("default swap intervals wrong")
	}
	if !vc.CopyStreamsOnOverwrite || sgx.CopyStreamsOnOverwrite {
		t.Error("DMA streaming capability wrong")
	}
}

func TestFacadeRangeAndDepth(t *testing.T) {
	r := gpgpu.Range{Lo: -1, Hi: 3}
	if got := r.FromUnit(r.ToUnit(2.5)); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("range roundtrip %g", got)
	}
	if gpgpu.Depth24.Quantum() <= gpgpu.Depth32.Quantum() {
		t.Error("depth quanta ordering wrong")
	}
	if gpgpu.UnitRange.Width() != 1 {
		t.Error("unit range width")
	}
}

func TestFacadeTimeFlowsPerDevice(t *testing.T) {
	// The same workload takes different virtual time on different
	// devices (the whole point of the model).
	times := map[string]gpgpu.Time{}
	for _, p := range []*gpgpu.DeviceProfile{gpgpu.VideoCoreIV(), gpgpu.PowerVRSGX545()} {
		cfg := gpgpu.Config{Device: p, Width: 32, Height: 32, Swap: gpgpu.SwapNone, Target: gpgpu.TargetTexture, UseVBO: true}
		e, err := gpgpu.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a := gpgpu.NewMatrix(32, 32)
		b := gpgpu.NewMatrix(32, 32)
		fillRand(a, 1)
		fillRand(b, 2)
		r, err := gpgpu.NewSum(e, a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := r.RunOnce(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		e.Finish()
		times[p.Name] = e.Now()
	}
	if len(times) != 2 {
		t.Fatal("expected two device timings")
	}
	var a, b gpgpu.Time
	for _, v := range times {
		if a == 0 {
			a = v
		} else {
			b = v
		}
	}
	if a == b {
		t.Error("devices produced identical virtual times")
	}
}
