package gpgpu_test

// One testing.B benchmark per table/figure of the paper's evaluation.
// Each bench regenerates its figure's measurements through the experiment
// harness and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` reproduces the whole evaluation. The
// wall-clock time Go reports is simulation cost; the paper's quantities
// are the reported custom metrics (virtual-time ratios).

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"gles2gpgpu/internal/bench"
	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
)

// benchOpts trades a little ratio fidelity for bench runtime; run
// cmd/glesbench for the full paper-sized reproduction.
func benchOpts() bench.Opts {
	return bench.Opts{PaperSize: 512, CalibSize: 32, Warm: 4, Iters: 20}
}

func fig5Opts() bench.Opts {
	o := benchOpts()
	o.PaperSize = 1024 // the reuse trade-off is size-sensitive
	return o
}

// BenchmarkFig3Vsync regenerates Figure 3 (the vsync/swap/fp24 ladder) and
// reports the headline combined speedup (paper: >16x).
func BenchmarkFig3Vsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig3(context.Background(), bench.Devices(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Headline, "headline-speedup")
		b.ReportMetric(r.Speedup["VCore sum"][1], "vcore-sum-interval0-x")
		b.ReportMetric(r.Speedup["SGX sum"][2], "sgx-sum-noswap-x")
	}
}

// BenchmarkVBOHints regenerates the §V-B VBO text result.
func BenchmarkVBOHints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.FigVBO(context.Background(), bench.Devices(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup["VCore"][1], "vcore-static-vbo-x")
	}
}

// BenchmarkFig4aRenderTarget regenerates Figure 4a (framebuffer vs texture
// rendering).
func BenchmarkFig4aRenderTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig4a(context.Background(), bench.Devices(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TexOverFB["SGX"]["sum"], "sgx-sum-tex-over-fb")
		b.ReportMetric(r.TexOverFB["VCore"]["sgemm"], "vcore-sgemm-tex-over-fb")
	}
}

// BenchmarkFig4bBlocking regenerates Figure 4b (sgemm block-size sweep).
func BenchmarkFig4bBlocking(b *testing.B) {
	o := benchOpts()
	o.Iters = 10
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig4b(context.Background(), bench.Devices(), o)
		if err != nil {
			b.Fatal(err)
		}
		fb := r.Times["SGX"]["framebuffer"]
		tex := r.Times["SGX"]["texture"]
		b.ReportMetric(float64(fb[0])/float64(tex[0]), "sgx-b1-fb-over-tex")
		last := len(fb) - 1
		b.ReportMetric(float64(fb[last])/float64(tex[last]), "sgx-b16-fb-over-tex")
	}
}

// BenchmarkFig5aReuseTexture regenerates Figure 5a (texture reuse, texture
// rendering).
func BenchmarkFig5aReuseTexture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig5(context.Background(), bench.Devices(), core.TargetTexture, fig5Opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup["VCore"]["sum"], "vcore-sum-reuse-x")
		b.ReportMetric(r.Speedup["SGX"]["sum"], "sgx-sum-reuse-x")
	}
}

// BenchmarkParallelShading measures the host wall-clock cost of one
// functional sgemm multiplication (n=256, block=16) with serial versus
// parallel fragment shading. Virtual-time results are bit-identical across
// sub-benchmarks; only host time differs. The speedup scales with real
// cores — on a multi-core host the parallel sub-benchmark shows near-linear
// gains, on a single-core container the two are equal.
func BenchmarkParallelShading(b *testing.B) {
	const n, block = 256, 16
	run := func(b *testing.B, workers int) {
		rng := rand.New(rand.NewSource(1))
		ma := codec.NewMatrix(n, n)
		mb := codec.NewMatrix(n, n)
		for i := range ma.Data {
			ma.Data[i] = rng.Float64() * 0.999
			mb.Data[i] = rng.Float64() * 0.999
		}
		e, err := core.NewEngine(core.Config{
			Device: bench.Devices()[0],
			Width:  n, Height: n,
			Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		r, err := core.NewSgemm(e, ma, mb, block)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.RunOnce(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=max", func(b *testing.B) { run(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkFig5bReuseFB regenerates Figure 5b (texture reuse, framebuffer
// rendering).
func BenchmarkFig5bReuseFB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig5(context.Background(), bench.Devices(), core.TargetFramebuffer, fig5Opts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup["SGX"]["sgemm"], "sgx-sgemm-reuse-x")
	}
}
