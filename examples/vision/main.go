// Vision: the computer-vision pipeline suite on the kernel-pipeline API —
// separable convolution, adaptive thresholding, histogram equalisation,
// Sobel edges and a Gaussian pyramid, each a declarative DAG of fragment
// kernels planned onto the simulated mobile GPU.
//
// For every graph the example prints the planner's per-edge fusion
// verdicts (proof-gated: an edge fuses only when the shader analysis
// proves both sides elementwise with 1:1 texel footprints), then runs the
// plan fused and unfused and checks the fusion contract: identical output
// bytes and identical modelled device time — fusion may only save host
// work, counted by passes_fused and readbacks_elided.
//
//	go run ./examples/vision
package main

import (
	"fmt"
	"log"

	gpgpu "gles2gpgpu"
)

const n = 64

// synthImage builds the test pattern: diagonal gradients with block steps,
// so thresholds and edge detectors have structure to find.
func synthImage() *gpgpu.Matrix {
	img := gpgpu.NewMatrix(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v := 0.5 + 0.4*float64(x-y)/n
			if (x/8+y/8)%3 == 0 {
				v *= 0.55
			}
			img.Set(y, x, v)
		}
	}
	return img
}

func graphs() map[string]gpgpu.PipelineGraph {
	o := gpgpu.DefaultKernelOptions
	pyr, err := gpgpu.PyramidGraph(n, 3, o)
	if err != nil {
		log.Fatal(err)
	}
	return map[string]gpgpu.PipelineGraph{
		"sepconv":  gpgpu.SepConvGraph(n, n, o),
		"adaptive": gpgpu.AdaptiveThresholdGraph(n, n, 2, o),
		"histeq":   gpgpu.HistEqGraph(n, n, 8, o),
		"sobel":    gpgpu.SobelGraph(n, n, o),
		"pyramid":  pyr,
	}
}

// run compiles and executes one graph `iters` times on a fresh engine and
// returns the output bytes of every declared output, the device clock, and
// the plan's lifetime fusion counters.
func run(g gpgpu.PipelineGraph, iters int, noFuse bool) ([]byte, gpgpu.Time, int64, int64, error) {
	engine, err := gpgpu.NewEngine(gpgpu.Config{
		Device: gpgpu.GenericDevice(),
		Width:  n, Height: n,
		Swap:   gpgpu.SwapNone,
		Target: gpgpu.TargetTexture,
		UseVBO: true,
		NoFuse: noFuse,
	})
	if err != nil {
		return nil, 0, 0, 0, err
	}
	plan, err := gpgpu.CompilePipeline(engine, g)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	src := engine.NewTensor(n, n, gpgpu.UnitRange)
	if err := src.Upload(synthImage(), false); err != nil {
		return nil, 0, 0, 0, err
	}
	ext := map[string]*gpgpu.Tensor{gpgpu.PipelineSrcInput: src}
	for i := 0; i < iters; i++ {
		if _, err := plan.Run(ext); err != nil {
			return nil, 0, 0, 0, err
		}
	}
	engine.Finish()
	var bytes []byte
	for _, out := range g.Outputs {
		raw, err := plan.Output(out).ReadRaw()
		if err != nil {
			return nil, 0, 0, 0, err
		}
		bytes = append(bytes, raw...)
	}
	_, _, fused, elided := plan.Totals()
	return bytes, engine.Now(), fused, elided, nil
}

func main() {
	const iters = 8
	names := []string{"sepconv", "adaptive", "histeq", "sobel", "pyramid"}
	gs := graphs()
	for _, name := range names {
		g := gs[name]
		// A throwaway compile just to read the planner's verdicts.
		probe, err := gpgpu.NewEngine(gpgpu.Config{
			Device: gpgpu.GenericDevice(),
			Width:  n, Height: n,
			Swap:   gpgpu.SwapNone,
			Target: gpgpu.TargetTexture,
			UseVBO: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		plan, err := gpgpu.CompilePipeline(probe, g)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%s: %d stages\n", name, len(g.Stages))
		for _, d := range plan.Decisions() {
			verdict := "fused"
			if !d.Fused {
				verdict = d.Reason
			}
			fmt.Printf("  %s -> %s: %s\n", d.Producer, d.Consumer, verdict)
		}
		plan.Release()

		fusedBytes, fusedTime, passesFused, elided, err := run(g, iters, false)
		if err != nil {
			log.Fatalf("%s fused: %v", name, err)
		}
		plainBytes, plainTime, _, _, err := run(g, iters, true)
		if err != nil {
			log.Fatalf("%s unfused: %v", name, err)
		}
		if string(fusedBytes) != string(plainBytes) {
			log.Fatalf("%s: fused output differs from unfused (contract broken)", name)
		}
		if fusedTime != plainTime {
			log.Fatalf("%s: fused device time %v != unfused %v (contract broken)", name, fusedTime, plainTime)
		}
		fmt.Printf("  %d runs: device time %v (= unfused, bit-identical), passes fused %d, readbacks elided %d\n",
			iters, fusedTime, passesFused, elided)
	}
}
