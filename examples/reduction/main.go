// Reduction: computing a global statistic (the sum / mean of a large
// matrix) on a GPU that has no compute primitives — the classic GPGPU
// pyramid pattern: log2(N) fragment passes over shrinking grids, each
// averaging 2×2 blocks, until a single texel remains.
//
// The example also shows the engine's pipeline report, the tool for
// understanding where the virtual time went.
//
//	go run ./examples/reduction
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	gpgpu "gles2gpgpu"
)

func main() {
	const n = 256

	cfg := gpgpu.Config{
		Device: gpgpu.VideoCoreIV(),
		Width:  n, Height: n,
		Swap:   gpgpu.SwapNone,
		Target: gpgpu.TargetTexture,
		UseVBO: true,
	}
	engine, err := gpgpu.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	m := gpgpu.NewMatrix(n, n)
	var want float64
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 0.999
		want += m.Data[i]
	}

	red, err := gpgpu.NewReduce(engine, m)
	if err != nil {
		log.Fatal(err)
	}
	if err := red.RunOnce(context.Background()); err != nil {
		log.Fatal(err)
	}
	total, err := red.Total()
	if err != nil {
		log.Fatal(err)
	}
	engine.Finish()

	fmt.Printf("sum of %dx%d = %d elements on %s\n", n, n, n*n, cfg.Device.Name)
	fmt.Printf("pyramid levels:   %d (N -> N/2 -> ... -> 1)\n", red.Levels())
	fmt.Printf("GPU total:        %.4f\n", total)
	fmt.Printf("CPU total:        %.4f\n", want)
	fmt.Printf("relative error:   %.2e\n", math.Abs(total-want)/want)
	fmt.Printf("mean:             %.6f\n", total/float64(n*n))
	fmt.Println()
	fmt.Println("pipeline report:")
	fmt.Println(engine.Report())
}
