// Imagefilter: a computer-vision workload (one of the application domains
// the paper motivates) — repeated 3×3 convolution of an image on the
// simulated mobile GPU, comparing the framebuffer and texture rendering
// targets the paper evaluates in Fig. 4a.
//
// The filter chain routes through the kernel-pipeline API: the four blur
// passes are one declarative graph whose intermediates stay resident
// on-device. The hand-rolled sequential dispatch it replaced (each pass
// reading back to host floats and re-uploading) is kept as the oracle —
// the example asserts the pipeline output is byte-identical to it, the
// lossless float↔RGBA8 round trip making exact equality the contract, not
// an approximation.
//
//	go run ./examples/imagefilter
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	gpgpu "gles2gpgpu"
)

const n = 128

// synthImage builds a synthetic test pattern: a bright disc on a gradient.
func synthImage() *gpgpu.Matrix {
	img := gpgpu.NewMatrix(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v := 0.2 + 0.3*float64(x)/n
			dx, dy := float64(x-n/2), float64(y-n/2)
			if math.Sqrt(dx*dx+dy*dy) < float64(n)/5 {
				v = 0.9
			}
			img.Set(y, x, v)
		}
	}
	return img
}

func engineFor(target gpgpu.RenderTarget) (*gpgpu.Engine, error) {
	return gpgpu.NewEngine(gpgpu.Config{
		Device: gpgpu.PowerVRSGX545(),
		Width:  n, Height: n,
		Swap:   gpgpu.SwapNone,
		Target: target,
		UseVBO: true,
	})
}

func blurWeights() [9]float32 {
	var blur [9]float32
	for i := range blur {
		blur[i] = 1.0 / 9
	}
	return blur
}

// runFilter applies `passes` box-blur passes through the pipeline API: one
// graph of chained conv3x3 stages, intermediates resident on-device.
// Returns the blurred image, the virtual time taken, and the run stats.
func runFilter(target gpgpu.RenderTarget, passes int) (*gpgpu.Matrix, gpgpu.Time, *gpgpu.PipelineRunStats, error) {
	engine, err := engineFor(target)
	if err != nil {
		return nil, 0, nil, err
	}
	blur := blurWeights()
	frag := gpgpu.Conv3x3Kernel(n, n, gpgpu.DefaultKernelOptions)
	g := gpgpu.PipelineGraph{}
	for p := 0; p < passes; p++ {
		b := gpgpu.PipelineBinding{Sampler: "text0", External: "img"}
		if p > 0 {
			b = gpgpu.PipelineBinding{Sampler: "text0", Stage: fmt.Sprintf("blur%d", p)}
		}
		g.Stages = append(g.Stages, gpgpu.PipelineStage{
			Name: fmt.Sprintf("blur%d", p+1), Frag: frag, W: n, H: n,
			Inputs:   []gpgpu.PipelineBinding{b},
			Uniforms: map[string][]float32{"k": blur[:]},
		})
	}
	g.Outputs = []string{fmt.Sprintf("blur%d", passes)}
	plan, err := gpgpu.CompilePipeline(engine, g)
	if err != nil {
		return nil, 0, nil, err
	}
	src := engine.NewTensor(n, n, gpgpu.UnitRange)
	if err := src.Upload(synthImage(), false); err != nil {
		return nil, 0, nil, err
	}
	stats, err := plan.Run(map[string]*gpgpu.Tensor{"img": src})
	if err != nil {
		return nil, 0, nil, err
	}
	engine.Finish()
	out, err := plan.Output(g.Outputs[0]).Read()
	if err != nil {
		return nil, 0, nil, err
	}
	return out, engine.Now(), stats, nil
}

// runFilterSequential is the pre-pipeline workflow this example used to
// hand-roll: one Conv3x3 runner per pass, every intermediate read back to
// host floats and re-uploaded. Kept as the byte-identity oracle for the
// pipeline route.
func runFilterSequential(target gpgpu.RenderTarget, passes int) (*gpgpu.Matrix, error) {
	engine, err := engineFor(target)
	if err != nil {
		return nil, err
	}
	blur := blurWeights()
	out := synthImage()
	for p := 0; p < passes; p++ {
		f, err := gpgpu.NewConv3x3(engine, out, blur)
		if err != nil {
			return nil, err
		}
		if err := f.RunOnce(context.Background()); err != nil {
			return nil, err
		}
		out, err = f.Result()
		if err != nil {
			return nil, err
		}
	}
	engine.Finish()
	return out, nil
}

func main() {
	const passes = 4
	img := synthImage()

	texOut, texTime, stats, err := runFilter(gpgpu.TargetTexture, passes)
	if err != nil {
		log.Fatal(err)
	}
	fbOut, fbTime, _, err := runFilter(gpgpu.TargetFramebuffer, passes)
	if err != nil {
		log.Fatal(err)
	}

	// The residency contract: the pipeline's resident intermediates must
	// reproduce the old readback workflow bit for bit.
	seqOut, err := runFilterSequential(gpgpu.TargetTexture, passes)
	if err != nil {
		log.Fatal(err)
	}
	for i := range texOut.Data {
		if texOut.Data[i] != seqOut.Data[i] {
			log.Fatalf("pipeline diverges from sequential dispatch at %d: %v != %v",
				i, texOut.Data[i], seqOut.Data[i])
		}
	}

	// Both targets compute the same pixels; timing differs with the target,
	// exactly the trade-off of the paper's Fig. 4a.
	var maxDiff float64
	for i := range texOut.Data {
		if d := math.Abs(texOut.Data[i] - fbOut.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("%d-pass 3x3 box blur of a %dx%d image on the SGX 545 model\n", passes, n, n)
	fmt.Printf("input centre  = %.3f, blurred centre = %.3f\n", img.At(n/2, n/2), texOut.At(n/2, n/2))
	fmt.Printf("edge contrast before/after: %.3f -> %.3f\n",
		contrast(img), contrast(texOut))
	fmt.Printf("texture rendering:     %v\n", texTime)
	fmt.Printf("framebuffer rendering: %v\n", fbTime)
	fmt.Printf("targets agree within   %.2g\n", maxDiff)
	fmt.Printf("pipeline matches sequential dispatch bit-for-bit (%d stages, %d readbacks elided)\n",
		len(stats.Stages), stats.ReadbacksElided)
	asciiArt(texOut)
}

// contrast measures the mean absolute horizontal gradient.
func contrast(m *gpgpu.Matrix) float64 {
	var acc float64
	for y := 0; y < n; y++ {
		for x := 1; x < n; x++ {
			acc += math.Abs(m.At(y, x) - m.At(y, x-1))
		}
	}
	return acc / float64(n*(n-1))
}

// asciiArt prints a coarse preview of the image.
func asciiArt(m *gpgpu.Matrix) {
	ramp := " .:-=+*#%@"
	const cells = 24
	for cy := 0; cy < cells; cy++ {
		line := make([]byte, cells)
		for cx := 0; cx < cells; cx++ {
			v := m.At(cy*n/cells, cx*n/cells)
			idx := int(v * float64(len(ramp)))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			if idx < 0 {
				idx = 0
			}
			line[cx] = ramp[idx]
		}
		fmt.Println(string(line))
	}
}
