// Imagefilter: a computer-vision workload (one of the application domains
// the paper motivates) — repeated 3×3 convolution of an image on the
// simulated mobile GPU, comparing the framebuffer and texture rendering
// targets the paper evaluates in Fig. 4a.
//
//	go run ./examples/imagefilter
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	gpgpu "gles2gpgpu"
)

const n = 128

// synthImage builds a synthetic test pattern: a bright disc on a gradient.
func synthImage() *gpgpu.Matrix {
	img := gpgpu.NewMatrix(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v := 0.2 + 0.3*float64(x)/n
			dx, dy := float64(x-n/2), float64(y-n/2)
			if math.Sqrt(dx*dx+dy*dy) < float64(n)/5 {
				v = 0.9
			}
			img.Set(y, x, v)
		}
	}
	return img
}

// runFilter applies `passes` box-blur passes with the given render target
// and returns the blurred image and the virtual time taken.
func runFilter(target gpgpu.RenderTarget, passes int) (*gpgpu.Matrix, gpgpu.Time, error) {
	cfg := gpgpu.Config{
		Device: gpgpu.PowerVRSGX545(),
		Width:  n, Height: n,
		Swap:   gpgpu.SwapNone,
		Target: target,
		UseVBO: true,
	}
	engine, err := gpgpu.NewEngine(cfg)
	if err != nil {
		return nil, 0, err
	}
	var blur [9]float32
	for i := range blur {
		blur[i] = 1.0 / 9
	}
	img := synthImage()
	out := img
	for p := 0; p < passes; p++ {
		f, err := gpgpu.NewConv3x3(engine, out, blur)
		if err != nil {
			return nil, 0, err
		}
		if err := f.RunOnce(context.Background()); err != nil {
			return nil, 0, err
		}
		out, err = f.Result()
		if err != nil {
			return nil, 0, err
		}
	}
	engine.Finish()
	return out, engine.Now(), nil
}

func main() {
	const passes = 4
	img := synthImage()

	texOut, texTime, err := runFilter(gpgpu.TargetTexture, passes)
	if err != nil {
		log.Fatal(err)
	}
	fbOut, fbTime, err := runFilter(gpgpu.TargetFramebuffer, passes)
	if err != nil {
		log.Fatal(err)
	}

	// Both paths compute the same pixels; timing differs with the target,
	// exactly the trade-off of the paper's Fig. 4a.
	var maxDiff float64
	for i := range texOut.Data {
		if d := math.Abs(texOut.Data[i] - fbOut.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("%d-pass 3x3 box blur of a %dx%d image on the SGX 545 model\n", passes, n, n)
	fmt.Printf("input centre  = %.3f, blurred centre = %.3f\n", img.At(n/2, n/2), texOut.At(n/2, n/2))
	fmt.Printf("edge contrast before/after: %.3f -> %.3f\n",
		contrast(img), contrast(texOut))
	fmt.Printf("texture rendering:     %v\n", texTime)
	fmt.Printf("framebuffer rendering: %v\n", fbTime)
	fmt.Printf("targets agree within   %.2g\n", maxDiff)
	asciiArt(texOut)
}

// contrast measures the mean absolute horizontal gradient.
func contrast(m *gpgpu.Matrix) float64 {
	var acc float64
	for y := 0; y < n; y++ {
		for x := 1; x < n; x++ {
			acc += math.Abs(m.At(y, x) - m.At(y, x-1))
		}
	}
	return acc / float64(n*(n-1))
}

// asciiArt prints a coarse preview of the image.
func asciiArt(m *gpgpu.Matrix) {
	ramp := " .:-=+*#%@"
	const cells = 24
	for cy := 0; cy < cells; cy++ {
		line := make([]byte, cells)
		for cx := 0; cx < cells; cx++ {
			v := m.At(cy*n/cells, cx*n/cells)
			idx := int(v * float64(len(ramp)))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			if idx < 0 {
				idx = 0
			}
			line[cx] = ramp[idx]
		}
		fmt.Println(string(line))
	}
}
