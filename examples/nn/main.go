// NN: machine-learning inference on the low-end GPU — the application the
// paper cites via Warden's deep-learning-on-Raspberry-Pi work. A two-layer
// perceptron classifies synthetic patterns; the dense layers run as the
// paper's multi-pass blocked sgemm on the simulated VideoCore IV, with
// activations applied host-side (the usual split for GLES2 GPGPU).
//
//	go run ./examples/nn
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	gpgpu "gles2gpgpu"
)

const (
	n     = 64 // batch size = feature width = layer width
	block = 16 // sgemm block size (the paper's maximum)
)

// layerGPU computes Y = X·W on the GPU with the blocked multi-pass sgemm.
func layerGPU(engine *gpgpu.Engine, x, w *gpgpu.Matrix) (*gpgpu.Matrix, error) {
	mm, err := gpgpu.NewSgemm(engine, x, w, block)
	if err != nil {
		return nil, err
	}
	if err := mm.RunOnce(context.Background()); err != nil {
		return nil, err
	}
	return mm.Result()
}

// reluNorm applies ReLU and rescales the activations back into the encoded
// domain [0,1) for the next GPU layer.
func reluNorm(m *gpgpu.Matrix) *gpgpu.Matrix {
	out := gpgpu.NewMatrix(m.Rows, m.Cols)
	var max float64
	for _, v := range m.Data {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	for i, v := range m.Data {
		if v < 0 {
			v = 0
		}
		out.Data[i] = v / (max * 1.001)
	}
	return out
}

func cpuMatmul(a, b *gpgpu.Matrix) *gpgpu.Matrix {
	out := gpgpu.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, acc)
		}
	}
	out.Range = gpgpu.Range{Lo: 0, Hi: float64(n)}
	return out
}

func argmaxRow(m *gpgpu.Matrix, row int) int {
	best, bestV := 0, math.Inf(-1)
	for j := 0; j < m.Cols; j++ {
		if v := m.At(row, j); v > bestV {
			best, bestV = j, v
		}
	}
	return best
}

func main() {
	rng := rand.New(rand.NewSource(7))
	mk := func(scale float64) *gpgpu.Matrix {
		m := gpgpu.NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.Float64() * scale
		}
		return m
	}
	// A batch of n inputs, and two random dense layers. Random weights
	// suffice to demonstrate a full inference pipeline with validated
	// numerics.
	x := mk(0.999)
	w1 := mk(0.999)
	w2 := mk(0.999)

	cfg := gpgpu.Config{
		Device: gpgpu.VideoCoreIV(),
		Width:  n, Height: n,
		Swap:   gpgpu.SwapNone,
		Target: gpgpu.TargetTexture,
		UseVBO: true,
	}
	engine, err := gpgpu.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// GPU inference.
	h, err := layerGPU(engine, x, w1)
	if err != nil {
		log.Fatal(err)
	}
	hAct := reluNorm(h)
	y, err := layerGPU(engine, hAct, w2)
	if err != nil {
		log.Fatal(err)
	}
	engine.Finish()

	// CPU reference inference with identical activation handling.
	hRef := reluNorm(cpuMatmul(x, w1))
	yRef := cpuMatmul(hRef, w2)

	agree := 0
	var maxErr float64
	for i := 0; i < n; i++ {
		if argmaxRow(y, i) == argmaxRow(yRef, i) {
			agree++
		}
	}
	for i := range y.Data {
		if d := math.Abs(y.Data[i] - yRef.Data[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("2-layer MLP inference, batch %d, width %d, sgemm block %d on %s\n",
		n, n, block, cfg.Device.Name)
	fmt.Printf("argmax agreement GPU vs CPU: %d/%d\n", agree, n)
	fmt.Printf("max abs logit error:         %.3g (output range [0,%d))\n", maxErr, n)
	fmt.Printf("virtual inference time:      %v\n", engine.Now())
	fmt.Printf("sample logits row 0: gpu=%.3f cpu=%.3f (class %d)\n",
		y.At(0, argmaxRow(y, 0)), yRef.At(0, argmaxRow(yRef, 0)), argmaxRow(y, 0))
}
