// Quickstart: element-wise addition of two matrices on the simulated
// low-end mobile GPU — the "hello world" of GPGPU over OpenGL ES 2.0.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	gpgpu "gles2gpgpu"
)

func main() {
	const n = 128

	// Configure the framework with the paper's best settings for a
	// dependency-free streaming kernel: direct texture rendering, no
	// presentation, VBOs.
	cfg := gpgpu.Config{
		Device: gpgpu.VideoCoreIV(),
		Width:  n, Height: n,
		Swap:   gpgpu.SwapNone,
		Target: gpgpu.TargetTexture,
		UseVBO: true,
	}
	engine, err := gpgpu.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Host matrices with values in [0,1) — the encoded domain of the
	// float↔RGBA8 scheme.
	rng := rand.New(rand.NewSource(1))
	a := gpgpu.NewMatrix(n, n)
	b := gpgpu.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()*0.9 + 0.05
		b.Data[i] = rng.Float64()*0.9 + 0.05
	}

	sum, err := gpgpu.NewSum(engine, a, b)
	if err != nil {
		log.Fatal(err)
	}
	if err := sum.RunOnce(context.Background()); err != nil {
		log.Fatal(err)
	}
	c, err := sum.Result()
	if err != nil {
		log.Fatal(err)
	}

	// Verify a few elements and report the virtual execution time the
	// device model accumulated.
	var maxErr float64
	for i := range c.Data {
		if d := abs(c.Data[i] - (a.Data[i] + b.Data[i])); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("device:           %s\n", cfg.Device.Name)
	fmt.Printf("c = a + b on a %dx%d grid\n", n, n)
	fmt.Printf("c[0][0]         = %.6f (want %.6f)\n", c.At(0, 0), a.At(0, 0)+b.At(0, 0))
	fmt.Printf("max abs error   = %.2g (encoding quantum bound: %.2g)\n", maxErr, c.MaxAbsError(gpgpu.Depth32))
	fmt.Printf("virtual GPU time: %v\n", engine.Now())
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
