// Histogram: scatter-accumulate on an ES2-class GPU. Without compute
// shaders or atomics, histograms are built by drawing one GL_POINT per
// sample whose vertex shader computes the destination bin, with additive
// blending (glBlendFunc(GL_ONE, GL_ONE)) doing the accumulation — the
// classic GPGPU scatter idiom this simulator reproduces faithfully,
// including the 8-bit saturation that limits per-bin counts per pass.
//
//	go run ./examples/histogram
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/egl"
	"gles2gpgpu/internal/gles"
)

const (
	bins    = 16
	samples = 512
	// Each hit adds 4/255 so up to ~63 hits per bin fit without
	// saturating the 8-bit framebuffer.
	weight = 4.0 / 255.0
)

func main() {
	// This example uses the raw GLES layer directly (not the core
	// framework) to show what hand-written ES2 GPGPU code looks like.
	disp := egl.GetDisplay(device.PowerVRSGX545())
	disp.Initialize()
	surf, err := disp.CreatePbufferSurface(bins, 1)
	if err != nil {
		log.Fatal(err)
	}
	ectx, err := disp.CreateContext()
	if err != nil {
		log.Fatal(err)
	}
	if err := ectx.MakeCurrent(surf); err != nil {
		log.Fatal(err)
	}
	gl := gles.NewContext(ectx)
	gl.Viewport(0, 0, bins, 1)

	// The vertex shader maps a sample value in [0,1) to its bin's pixel.
	prog := buildProgram(gl, `
attribute float a_value;
void main() {
	float bin = floor(a_value * `+fmt.Sprintf("%d", bins)+`.0);
	float x = (bin + 0.5) / `+fmt.Sprintf("%d", bins)+`.0 * 2.0 - 1.0;
	gl_Position = vec4(x, 0.0, 0.0, 1.0);
	gl_PointSize = 1.0;
}`, `
precision mediump float;
void main() { gl_FragColor = vec4(`+fmt.Sprintf("%.8f", weight)+`, 0.0, 0.0, 0.0); }`)

	// Gaussian-ish samples from the sum of three uniforms.
	rng := rand.New(rand.NewSource(11))
	values := make([]float32, samples)
	cpuHist := make([]int, bins)
	for i := range values {
		v := (rng.Float64() + rng.Float64() + rng.Float64()) / 3
		values[i] = float32(v * 0.999)
		cpuHist[int(v*0.999*bins)]++
	}

	gl.ClearColor(0, 0, 0, 0)
	gl.Clear(gles.COLOR_BUFFER_BIT)
	gl.Enable(gles.BLEND)
	gl.BlendFunc(gles.ONE, gles.ONE)
	gl.UseProgram(prog)
	loc := gl.GetAttribLocation(prog, "a_value")
	gl.EnableVertexAttribArray(loc)
	gl.VertexAttribPointerClient(loc, 1, values, 0, 0)
	gl.DrawArrays(gles.POINTS, 0, samples)
	if e := gl.GetError(); e != gles.NO_ERROR {
		log.Fatalf("GL error: %s", gles.ErrName(e))
	}

	buf := make([]byte, bins*4)
	gl.ReadPixels(0, 0, bins, 1, gles.RGBA, gles.UNSIGNED_BYTE, buf)

	fmt.Printf("histogram of %d samples into %d bins on %s\n\n", samples, bins, disp.Profile().Name)
	maxCount := 0
	gpuHist := make([]int, bins)
	for b := 0; b < bins; b++ {
		gpuHist[b] = int(float64(buf[b*4])/255.0/weight + 0.5)
		if cpuHist[b] > maxCount {
			maxCount = cpuHist[b]
		}
	}
	mismatches := 0
	for b := 0; b < bins; b++ {
		bar := strings.Repeat("#", gpuHist[b]*40/maxCount)
		fmt.Printf("bin %2d  gpu %3d  cpu %3d  %s\n", b, gpuHist[b], cpuHist[b], bar)
		if gpuHist[b] != cpuHist[b] {
			mismatches++
		}
	}
	fmt.Printf("\nbins disagreeing with the CPU count: %d/%d", mismatches, bins)
	if mismatches > 0 {
		w := float64(weight) // runtime value: the constant 1/weight is fractional
		capHits := int(1.0 / w)
		fmt.Printf(" (bins above %d hits saturate the 8-bit framebuffer — the real ES2 limitation; production code runs multiple passes or lower weights)", capHits)
	}
	fmt.Println()
	fmt.Printf("virtual time: %v\n", disp.Machine.Now())
}

func buildProgram(gl *gles.Context, vsSrc, fsSrc string) uint32 {
	vs := gl.CreateShader(gles.VERTEX_SHADER)
	gl.ShaderSource(vs, vsSrc)
	gl.CompileShader(vs)
	if gl.GetShaderiv(vs, gles.COMPILE_STATUS) != 1 {
		log.Fatalf("vs: %s", gl.GetShaderInfoLog(vs))
	}
	fs := gl.CreateShader(gles.FRAGMENT_SHADER)
	gl.ShaderSource(fs, fsSrc)
	gl.CompileShader(fs)
	if gl.GetShaderiv(fs, gles.COMPILE_STATUS) != 1 {
		log.Fatalf("fs: %s", gl.GetShaderInfoLog(fs))
	}
	p := gl.CreateProgram()
	gl.AttachShader(p, vs)
	gl.AttachShader(p, fs)
	gl.LinkProgram(p)
	if gl.GetProgramiv(p, gles.LINK_STATUS) != 1 {
		log.Fatalf("link: %s", gl.GetProgramInfoLog(p))
	}
	return p
}
