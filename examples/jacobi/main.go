// Jacobi: an iterative PDE solver (steady-state heat diffusion on a plate)
// — the numerical-solver application domain the paper cites — run to
// convergence with the state-stepping API: double-buffered textures, a
// residual-based stopping rule, and the cross-iteration tile-coherence
// cache eliding tiles that have stopped changing.
//
//	go run ./examples/jacobi
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	gpgpu "gles2gpgpu"
)

const n = 64

// plate builds the boundary conditions: hot left edge (0.9), cold right
// edge, insulated-ish top/bottom at 0.
func plate() *gpgpu.Matrix {
	g := gpgpu.NewMatrix(n, n)
	for y := 0; y < n; y++ {
		g.Set(y, 0, 0.9)
	}
	return g
}

// stop is the convergence rule: check the grid every 25 steps and stop once
// no element moved more than one encoding quantum since the last check.
var stop = gpgpu.StepOpts{MaxIters: 2000, CheckEvery: 25, Tol: 1.0 / 255}

func solveOn(profile *gpgpu.DeviceProfile) (*gpgpu.Matrix, gpgpu.StepResult, gpgpu.Time, int64, int64, error) {
	cfg := gpgpu.Config{
		Device: profile,
		Width:  n, Height: n,
		Swap:   gpgpu.SwapNone,
		Target: gpgpu.TargetTexture,
		UseVBO: true,
	}
	engine, err := gpgpu.NewEngine(cfg)
	if err != nil {
		return nil, gpgpu.StepResult{}, 0, 0, 0, err
	}
	solver, err := gpgpu.NewJacobi(engine, plate())
	if err != nil {
		return nil, gpgpu.StepResult{}, 0, 0, 0, err
	}
	res, err := solver.RunToConvergence(context.Background(), stop)
	if err != nil {
		return nil, gpgpu.StepResult{}, 0, 0, 0, err
	}
	grid, err := solver.Result()
	if err != nil {
		return nil, gpgpu.StepResult{}, 0, 0, 0, err
	}
	engine.Finish()
	elided, shaded := engine.CoherenceStats()
	return grid, res, engine.Now(), elided, shaded, nil
}

// cpuSolve is the host reference, run for the same number of steps the GPU
// took to converge.
func cpuSolve(steps int) *gpgpu.Matrix {
	cur := plate()
	nxt := gpgpu.NewMatrix(n, n)
	for s := 0; s < steps; s++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if x == 0 || y == 0 || x == n-1 || y == n-1 {
					nxt.Set(y, x, cur.At(y, x))
					continue
				}
				nxt.Set(y, x, 0.25*(cur.At(y, x-1)+cur.At(y, x+1)+cur.At(y-1, x)+cur.At(y+1, x)))
			}
		}
		cur, nxt = nxt, cur
	}
	return cur
}

func main() {
	for _, profile := range []*gpgpu.DeviceProfile{gpgpu.VideoCoreIV(), gpgpu.PowerVRSGX545()} {
		grid, res, vt, elided, shaded, err := solveOn(profile)
		if err != nil {
			log.Fatal(err)
		}
		want := cpuSolve(res.Iters)
		var maxErr float64
		for i := range grid.Data {
			if d := math.Abs(grid.Data[i] - want.Data[i]); d > maxErr {
				maxErr = d
			}
		}
		fmt.Printf("%-28s converged=%v after %d steps (residual %.2g) on %dx%d: centre T=%.4f, max err vs CPU %.2g, virtual time %v\n",
			profile.Name, res.Converged, res.Iters, res.Residual, n, n, grid.At(n/2, n/2), maxErr, vt)
		fmt.Printf("%-28s tile coherence: %d tiles elided, %d shaded (%.0f%% of re-shading skipped)\n",
			"", elided, shaded, 100*float64(elided)/float64(elided+shaded))
	}

	// Show the temperature profile along the midline.
	grid, _, _, _, _, err := solveOn(gpgpu.VideoCoreIV())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("midline profile: ")
	for x := 0; x < n; x += n / 8 {
		fmt.Printf("%.3f ", grid.At(n/2, x))
	}
	fmt.Println()
}
