// Jacobi: an iterative PDE solver (steady-state heat diffusion on a plate)
// — the numerical-solver application domain the paper cites — run as a
// multi-pass GPGPU algorithm with double-buffered textures, comparing the
// two simulated devices.
//
//	go run ./examples/jacobi
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	gpgpu "gles2gpgpu"
)

const n = 64

// plate builds the boundary conditions: hot left edge (0.9), cold right
// edge, insulated-ish top/bottom at 0.
func plate() *gpgpu.Matrix {
	g := gpgpu.NewMatrix(n, n)
	for y := 0; y < n; y++ {
		g.Set(y, 0, 0.9)
	}
	return g
}

func solveOn(profile *gpgpu.DeviceProfile, steps int) (*gpgpu.Matrix, gpgpu.Time, error) {
	cfg := gpgpu.Config{
		Device: profile,
		Width:  n, Height: n,
		Swap:   gpgpu.SwapNone,
		Target: gpgpu.TargetTexture,
		UseVBO: true,
	}
	engine, err := gpgpu.NewEngine(cfg)
	if err != nil {
		return nil, 0, err
	}
	solver, err := gpgpu.NewJacobi(engine, plate())
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < steps; i++ {
		if err := solver.RunOnce(context.Background()); err != nil {
			return nil, 0, err
		}
	}
	grid, err := solver.Result()
	if err != nil {
		return nil, 0, err
	}
	engine.Finish()
	return grid, engine.Now(), nil
}

// cpuSolve is the host reference.
func cpuSolve(steps int) *gpgpu.Matrix {
	cur := plate()
	nxt := gpgpu.NewMatrix(n, n)
	for s := 0; s < steps; s++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if x == 0 || y == 0 || x == n-1 || y == n-1 {
					nxt.Set(y, x, cur.At(y, x))
					continue
				}
				nxt.Set(y, x, 0.25*(cur.At(y, x-1)+cur.At(y, x+1)+cur.At(y-1, x)+cur.At(y+1, x)))
			}
		}
		cur, nxt = nxt, cur
	}
	return cur
}

func main() {
	const steps = 200
	want := cpuSolve(steps)

	for _, profile := range []*gpgpu.DeviceProfile{gpgpu.VideoCoreIV(), gpgpu.PowerVRSGX545()} {
		grid, vt, err := solveOn(profile, steps)
		if err != nil {
			log.Fatal(err)
		}
		var maxErr float64
		for i := range grid.Data {
			if d := math.Abs(grid.Data[i] - want.Data[i]); d > maxErr {
				maxErr = d
			}
		}
		fmt.Printf("%-28s %d Jacobi steps on %dx%d: centre T=%.4f, max err vs CPU %.2g, virtual time %v\n",
			profile.Name, steps, n, n, grid.At(n/2, n/2), maxErr, vt)
	}

	// Show the temperature profile along the midline.
	grid, _, err := solveOn(gpgpu.VideoCoreIV(), steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("midline profile: ")
	for x := 0; x < n; x += n / 8 {
		fmt.Printf("%.3f ", grid.At(n/2, x))
	}
	fmt.Println()
}
