// Command gpgpurun runs one GPGPU workload on a simulated device and
// reports the validated result quality and the virtual execution time —
// a quick way to explore the paper's optimisation space by hand.
//
// Usage:
//
//	gpgpurun -kernel sum   -device vc4 -size 256 -iters 100 -swap none -target texture
//	gpgpurun -kernel sgemm -device sgx -size 256 -block 16 -fp24
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/ref"
	"gles2gpgpu/internal/timing"
)

func main() {
	kernel := flag.String("kernel", "sum", "workload: sum, sgemm, saxpy, jacobi, conv")
	dev := flag.String("device", "vc4", "device: vc4, sgx or generic")
	size := flag.Int("size", 256, "matrix dimension")
	iters := flag.Int("iters", 10, "benchmark-body repetitions (first is functional, rest replay timing)")
	block := flag.Int("block", 16, "sgemm block size")
	swap := flag.String("swap", "none", "swap mode: vsync, interval0, none")
	target := flag.String("target", "texture", "render target: texture or framebuffer")
	fp24 := flag.Bool("fp24", false, "use the fp24/mul24 kernel-code optimisation")
	vbo := flag.Bool("vbo", true, "use vertex buffer objects")
	seed := flag.Int64("seed", 1, "input random seed")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the pipeline to this file")
	flag.Parse()

	cfg := core.Config{Width: *size, Height: *size, UseVBO: *vbo}
	switch *dev {
	case "vc4":
		cfg.Device = device.VideoCoreIV()
	case "sgx":
		cfg.Device = device.PowerVRSGX545()
	case "generic":
		cfg.Device = device.Generic()
	default:
		fatal("unknown device %q", *dev)
	}
	switch *swap {
	case "vsync":
		cfg.Swap = core.SwapVsync
	case "interval0":
		cfg.Swap = core.SwapNoVsync
	case "none":
		cfg.Swap = core.SwapNone
	default:
		fatal("unknown swap mode %q", *swap)
	}
	switch *target {
	case "texture":
		cfg.Target = core.TargetTexture
	case "framebuffer":
		cfg.Target = core.TargetFramebuffer
	default:
		fatal("unknown target %q", *target)
	}
	if *fp24 {
		cfg.Kernel = kernels.FP24Options
	}

	e, err := core.NewEngine(cfg)
	if err != nil {
		fatal("%v", err)
	}
	if *tracePath != "" {
		e.Machine().Trace.Enable(true)
	}
	rng := rand.New(rand.NewSource(*seed))
	mk := func() *codec.Matrix {
		m := codec.NewMatrix(*size, *size)
		for i := range m.Data {
			m.Data[i] = rng.Float64() * 0.999
		}
		return m
	}
	a, b := mk(), mk()

	var runner core.Runner
	var want []float64
	n := *size
	switch *kernel {
	case "sum":
		r, err := core.NewSum(e, a, b)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
		want = make([]float64, n*n)
		ref.Sum(a.Data, b.Data, want)
	case "sgemm":
		r, err := core.NewSgemm(e, a, b, *block)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
		want = make([]float64, n*n)
		ref.Sgemm(n, a.Data, b.Data, want)
	case "saxpy":
		r, err := core.NewSaxpy(e, 0.5, a, b)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
		want = append([]float64(nil), b.Data...)
		ref.Saxpy(0.5, a.Data, want)
	case "jacobi":
		grid := codec.NewMatrix(n, n)
		for y := 0; y < n; y++ {
			grid.Set(y, 0, 0.9)
		}
		r, err := core.NewJacobi(e, grid)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
	case "conv":
		var box [9]float32
		for i := range box {
			box[i] = 1.0 / 9
		}
		r, err := core.NewConv3x3(e, a, box)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
		want = make([]float64, n*n)
		var k [9]float64
		for i := range k {
			k[i] = 1.0 / 9
		}
		ref.Convolve3x3(n, n, a.Data, k, want)
	default:
		fatal("unknown kernel %q", *kernel)
	}

	// First iteration functional (validates the numerics), remaining
	// iterations replay timing.
	if err := runner.RunOnce(); err != nil {
		fatal("%v", err)
	}
	var result *codec.Matrix
	if want != nil {
		result, err = runner.Result()
		if err != nil {
			fatal("%v", err)
		}
	}
	e.SetTimingOnly(true)
	start := e.Now()
	for i := 1; i < *iters; i++ {
		if err := runner.RunOnce(); err != nil {
			fatal("%v", err)
		}
	}
	e.Finish()
	total := e.Now()

	fmt.Printf("device:   %s\n", cfg.Device.Name)
	fmt.Printf("workload: %s %dx%d (swap=%s target=%s fp24=%v vbo=%v)\n",
		*kernel, n, n, *swap, *target, *fp24, *vbo)
	if want != nil {
		fmt.Printf("max abs error vs CPU reference: %.3g\n", ref.MaxAbsDiff(want, result.Data))
	}
	if *iters > 1 {
		per := (total - start) / timing.Time(*iters-1)
		fmt.Printf("virtual time per iteration (steady state): %v\n", per)
	}
	fmt.Printf("virtual time total: %v\n", total)
	st := e.Machine().Stats
	fmt.Printf("machine: draws=%d bubbles=%d copies=%d (%.1f MB) uploads=%d war-stalls=%d\n",
		st.Draws, st.Bubbles, st.CopyOps, float64(st.CopyBytes)/1e6, st.UploadOps, st.WARStalls)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := e.Machine().Trace.WriteChromeTrace(f); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("pipeline trace written to %s (open in chrome://tracing)\n", *tracePath)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gpgpurun: "+format+"\n", args...)
	os.Exit(1)
}
