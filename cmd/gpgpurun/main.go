// Command gpgpurun runs one GPGPU workload on a simulated device and
// reports the validated result quality and the virtual execution time —
// a quick way to explore the paper's optimisation space by hand.
//
// Usage:
//
//	gpgpurun -kernel sum   -device vc4 -size 256 -iters 100 -swap none -target texture
//	gpgpurun -kernel sgemm -device sgx -size 256 -block 16 -fp24
//
// With -serve it becomes a client of a gles2gpgpud daemon instead of
// running in-process, and -load turns it into a load generator:
//
//	gpgpurun -serve http://127.0.0.1:7433 -kernel sgemm -device sgx -size 64
//	gpgpurun -serve http://127.0.0.1:7433 -load -jobs 128 -concurrency 8 -benchjson load.json
//
// -openloop replaces the closed-loop generator with Poisson arrivals at
// a fixed rate (latency measured from each job's scheduled arrival, so
// overload shows up as tail latency instead of silently slowing the
// generator); it works against a daemon or a -router front-end alike:
//
//	gpgpurun -serve http://127.0.0.1:7433 -openloop -rate 200 -jobs 512 -keys 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/ref"
	"gles2gpgpu/internal/serve"
	"gles2gpgpu/internal/timing"
)

func main() {
	kernel := flag.String("kernel", "sum", "workload: sum, sgemm, saxpy, jacobi, conv")
	dev := flag.String("device", "vc4", "device: vc4, sgx or generic")
	size := flag.Int("size", 256, "matrix dimension")
	iters := flag.Int("iters", 10, "benchmark-body repetitions (first is functional, rest replay timing)")
	block := flag.Int("block", 16, "sgemm block size")
	swap := flag.String("swap", "none", "swap mode: vsync, interval0, none")
	target := flag.String("target", "texture", "render target: texture or framebuffer")
	fp24 := flag.Bool("fp24", false, "use the fp24/mul24 kernel-code optimisation")
	vbo := flag.Bool("vbo", true, "use vertex buffer objects")
	seed := flag.Int64("seed", 1, "input random seed")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the pipeline to this file")
	serveURL := flag.String("serve", "", "submit to a gles2gpgpud daemon at this base URL instead of running in-process")
	load := flag.Bool("load", false, "load-generator mode: drive the -serve daemon with a mixed job stream")
	jobs := flag.Int("jobs", 64, "load mode: total jobs to submit")
	concurrency := flag.Int("concurrency", 8, "load mode: in-flight request cap")
	loadDevices := flag.String("load-devices", "vc4,sgx", "load mode: comma-separated devices to cycle jobs across")
	openloop := flag.Bool("openloop", false, "open-loop load mode: Poisson arrivals at -rate against the -serve endpoint")
	rate := flag.Float64("rate", 100, "open-loop mode: arrival rate, jobs/sec")
	keys := flag.Int("keys", 8, "open-loop mode: distinct kernel-key classes in the stream")
	benchJSON := flag.String("benchjson", "", "load mode: write the load report JSON to this file")
	flag.Parse()

	if (*load || *openloop) && *serveURL == "" {
		fatal("-load/-openloop require -serve URL")
	}
	if *serveURL != "" {
		client := &serve.Client{Base: strings.TrimRight(*serveURL, "/")}
		switch {
		case *openloop:
			runOpenLoop(client, *rate, *jobs, *keys, *size, *seed, *benchJSON)
		case *load:
			runLoad(client, *jobs, *concurrency, *loadDevices, *size, *seed, *benchJSON)
		default:
			runRemote(client, *kernel, *dev, *size, *block, *seed)
		}
		return
	}

	cfg := core.Config{Width: *size, Height: *size, UseVBO: *vbo}
	profile, err := device.ByName(*dev)
	if err != nil {
		fatal("%v", err)
	}
	cfg.Device = profile
	switch *swap {
	case "vsync":
		cfg.Swap = core.SwapVsync
	case "interval0":
		cfg.Swap = core.SwapNoVsync
	case "none":
		cfg.Swap = core.SwapNone
	default:
		fatal("unknown swap mode %q", *swap)
	}
	switch *target {
	case "texture":
		cfg.Target = core.TargetTexture
	case "framebuffer":
		cfg.Target = core.TargetFramebuffer
	default:
		fatal("unknown target %q", *target)
	}
	if *fp24 {
		cfg.Kernel = kernels.FP24Options
	}

	e, err := core.NewEngine(cfg)
	if err != nil {
		fatal("%v", err)
	}
	if *tracePath != "" {
		e.Machine().Trace.Enable(true)
	}
	rng := rand.New(rand.NewSource(*seed))
	mk := func() *codec.Matrix {
		m := codec.NewMatrix(*size, *size)
		for i := range m.Data {
			m.Data[i] = rng.Float64() * 0.999
		}
		return m
	}
	a, b := mk(), mk()

	var runner core.Runner
	var want []float64
	n := *size
	switch *kernel {
	case "sum":
		r, err := core.NewSum(e, a, b)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
		want = make([]float64, n*n)
		ref.Sum(a.Data, b.Data, want)
	case "sgemm":
		r, err := core.NewSgemm(e, a, b, *block)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
		want = make([]float64, n*n)
		ref.Sgemm(n, a.Data, b.Data, want)
	case "saxpy":
		r, err := core.NewSaxpy(e, 0.5, a, b)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
		want = append([]float64(nil), b.Data...)
		ref.Saxpy(0.5, a.Data, want)
	case "jacobi":
		grid := codec.NewMatrix(n, n)
		for y := 0; y < n; y++ {
			grid.Set(y, 0, 0.9)
		}
		r, err := core.NewJacobi(e, grid)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
	case "conv":
		var box [9]float32
		for i := range box {
			box[i] = 1.0 / 9
		}
		r, err := core.NewConv3x3(e, a, box)
		if err != nil {
			fatal("%v", err)
		}
		runner = r
		want = make([]float64, n*n)
		var k [9]float64
		for i := range k {
			k[i] = 1.0 / 9
		}
		ref.Convolve3x3(n, n, a.Data, k, want)
	default:
		fatal("unknown kernel %q", *kernel)
	}

	// First iteration functional (validates the numerics), remaining
	// iterations replay timing.
	if err := runner.RunOnce(context.Background()); err != nil {
		fatal("%v", err)
	}
	var result *codec.Matrix
	if want != nil {
		result, err = runner.Result()
		if err != nil {
			fatal("%v", err)
		}
	}
	e.SetTimingOnly(true)
	start := e.Now()
	for i := 1; i < *iters; i++ {
		if err := runner.RunOnce(context.Background()); err != nil {
			fatal("%v", err)
		}
	}
	e.Finish()
	total := e.Now()

	fmt.Printf("device:   %s\n", cfg.Device.Name)
	fmt.Printf("workload: %s %dx%d (swap=%s target=%s fp24=%v vbo=%v)\n",
		*kernel, n, n, *swap, *target, *fp24, *vbo)
	if want != nil {
		fmt.Printf("max abs error vs CPU reference: %.3g\n", ref.MaxAbsDiff(want, result.Data))
	}
	if *iters > 1 {
		per := (total - start) / timing.Time(*iters-1)
		fmt.Printf("virtual time per iteration (steady state): %v\n", per)
	}
	fmt.Printf("virtual time total: %v\n", total)
	st := e.Machine().Stats
	fmt.Printf("machine: draws=%d bubbles=%d copies=%d (%.1f MB) uploads=%d war-stalls=%d\n",
		st.Draws, st.Bubbles, st.CopyOps, float64(st.CopyBytes)/1e6, st.UploadOps, st.WARStalls)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		if err := e.Machine().Trace.WriteChromeTrace(f); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("pipeline trace written to %s (open in chrome://tracing)\n", *tracePath)
	}
}

// runRemote submits one job to the daemon and validates the returned
// matrix against the CPU reference for the same deterministic inputs.
func runRemote(client *serve.Client, kernel, dev string, n, block int, seed int64) {
	p := serve.Params{Device: dev, Kernel: kernel, N: n, Block: block, Seed: seed}
	if kernel == "saxpy" {
		p.Alpha = 0.5
	}
	res, err := client.Do(context.Background(), p)
	if err != nil {
		fatal("%v", err)
	}
	a, b := p.Inputs()
	want := make([]float64, n*n)
	switch kernel {
	case "sum":
		ref.Sum(a.Data, b.Data, want)
	case "sgemm":
		ref.Sgemm(n, a.Data, b.Data, want)
	case "saxpy":
		copy(want, b.Data)
		ref.Saxpy(0.5, a.Data, want)
	default:
		fatal("kernel %q is not served by gles2gpgpud (sum, sgemm, saxpy)", kernel)
	}
	fmt.Printf("device:   %s (remote %s)\n", res.Device, client.Base)
	fmt.Printf("workload: %s %dx%d (batch %d/%d)\n", res.Kernel, n, n, res.BatchIndex+1, res.BatchSize)
	fmt.Printf("max abs error vs CPU reference: %.3g\n", ref.MaxAbsDiff(want, res.Out))
	fmt.Printf("virtual time: %v  host time: %.3f ms\n",
		res.VirtualTime, float64(res.HostNanos)/1e6)
}

// runLoad drives the daemon with the shared load generator and prints (and
// optionally writes) the throughput/latency report.
func runLoad(client *serve.Client, jobs, concurrency int, devices string, n int, seed int64, benchJSON string) {
	rep, err := client.RunLoad(context.Background(), serve.LoadOpts{
		Jobs:        jobs,
		Concurrency: concurrency,
		Devices:     strings.Split(devices, ","),
		N:           n,
		Seed:        seed,
	})
	if rep != nil {
		fmt.Printf("load: %d jobs (%d completed, %d rejected-then-retried, %d failed) at concurrency %d\n",
			rep.Jobs, rep.Completed, rep.Rejected, rep.Failed, rep.Concurrency)
		fmt.Printf("host: %.1f ms total, %.1f jobs/s; latency p50=%.2fms p90=%.2fms p99=%.2fms\n",
			rep.HostMS, rep.ThroughputS, rep.P50MS, rep.P90MS, rep.P99MS)
		fmt.Printf("virtual device time consumed: %.3f ms\n", rep.VirtualMS)
		if benchJSON != "" {
			data, merr := json.MarshalIndent(rep, "", "  ")
			if merr != nil {
				fatal("%v", merr)
			}
			data = append(data, '\n')
			if werr := os.WriteFile(benchJSON, data, 0o644); werr != nil {
				fatal("%v", werr)
			}
			fmt.Printf("load report written to %s\n", benchJSON)
		}
	}
	if err != nil {
		fatal("%v", err)
	}
}

// runOpenLoop drives the endpoint with Poisson arrivals and prints (and
// optionally writes) the goodput/tail-latency report.
func runOpenLoop(client *serve.Client, rate float64, jobs, keys, n int, seed int64, benchJSON string) {
	rep, err := client.RunOpenLoop(context.Background(), serve.OpenLoopOpts{
		RatePerSec: rate,
		Jobs:       jobs,
		Keys:       keys,
		N:          n,
		Seed:       seed,
	})
	if rep != nil {
		fmt.Printf("openloop: %d arrivals at %g/s (%d completed, %d shed, %d failed)\n",
			rep.Jobs, rep.RatePerSec, rep.Completed, rep.Shed, rep.Failed)
		fmt.Printf("host: %.1f ms, goodput %.1f jobs/s; latency p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms\n",
			rep.DurationMS, rep.GoodputS, rep.P50MS, rep.P99MS, rep.P999MS, rep.MaxMS)
		fmt.Printf("virtual device time consumed: %.3f ms\n", rep.VirtualMS)
		if benchJSON != "" {
			data, merr := json.MarshalIndent(rep, "", "  ")
			if merr != nil {
				fatal("%v", merr)
			}
			data = append(data, '\n')
			if werr := os.WriteFile(benchJSON, data, 0o644); werr != nil {
				fatal("%v", werr)
			}
			fmt.Printf("open-loop report written to %s\n", benchJSON)
		}
	}
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gpgpurun: "+format+"\n", args...)
	os.Exit(1)
}
