// Command glslint runs the shader static-analysis diagnostics over GLSL
// ES 1.00 sources and prints compiler-style findings: arithmetic that
// misses the free MAD fusion, expanded code with a single-instruction
// builtin equivalent (dot, clamp), possibly-uninitialised reads,
// always-discarded fragments, per-device implementation-limit headroom —
// the static view of the paper's Fig. 4b compile cliff — and the
// lattice-driven findings: uniform branches, divergent discards,
// provably-dead clamps, statically unbounded sampler footprints and the
// masked-lane engine's eligibility verdict.
//
// Usage:
//
//	glslint [-stage fragment|vertex] [-limits vc4|sgx|generic|all|none]
//	        [-D NAME=VALUE]... [-json] [file.glsl ...]
//
// With no files, the source is read from standard input. Findings are
// printed as "file:line:col: severity: [code] message", or, with -json,
// as one machine-readable JSON document (schema "gles2gpgpu.glslint/1"):
//
//	{"schema": "gles2gpgpu.glslint/1",
//	 "files": [{"file": "k.glsl", "ok": true,
//	            "findings": [{"code": "mad-fusion", "severity": "warning",
//	                          "line": 7, "col": 2, "msg": "..."}]}]}
//
// A file that fails to compile reports "ok": false with the front-end
// error in "error" and no findings. The exit status is 1 when any source
// fails to compile or produces an error-severity finding (an exceeded
// device limit), and 0 otherwise, in both output modes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/shader/analysis"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }

func (d defineFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		val = "1"
	}
	d[name] = val
	return nil
}

// jsonFinding is one diagnostic in the -json document.
type jsonFinding struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Msg      string `json:"msg"`
}

// jsonFile is one linted source in the -json document.
type jsonFile struct {
	File     string        `json:"file"`
	OK       bool          `json:"ok"`
	Error    string        `json:"error,omitempty"`
	Findings []jsonFinding `json:"findings"`
}

// jsonReport is the whole -json document.
type jsonReport struct {
	Schema string     `json:"schema"`
	Files  []jsonFile `json:"files"`
}

const jsonSchema = "gles2gpgpu.glslint/1"

func main() {
	stage := flag.String("stage", "fragment", "shader stage: fragment or vertex")
	limits := flag.String("limits", "all", "device profiles for the limit section: vc4, sgx, generic, all or none")
	info := flag.Bool("info", true, "print info-severity findings (limit headroom, eligibility notes)")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON document instead of text")
	defines := defineFlags{}
	flag.Var(defines, "D", "preprocessor define NAME=VALUE (repeatable)")
	flag.Parse()

	st := glsl.StageFragment
	if *stage == "vertex" {
		st = glsl.StageVertex
	} else if *stage != "fragment" {
		fmt.Fprintf(os.Stderr, "glslint: unknown stage %q\n", *stage)
		os.Exit(2)
	}
	var profiles []analysis.LimitProfile
	switch *limits {
	case "none":
	case "all":
		profiles = analysis.LimitProfiles()
	default:
		lp, ok := analysis.LimitProfileFor(*limits)
		if !ok {
			fmt.Fprintf(os.Stderr, "glslint: unknown limits profile %q\n", *limits)
			os.Exit(2)
		}
		profiles = []analysis.LimitProfile{lp}
	}

	exit := 0
	report := jsonReport{Schema: jsonSchema}
	lintOne := func(name string, src []byte) {
		jf := jsonFile{File: name, OK: true, Findings: []jsonFinding{}}
		prog, err := compile(string(src), st, defines)
		if err != nil {
			exit = 1
			if *jsonOut {
				jf.OK = false
				jf.Error = err.Error()
				report.Files = append(report.Files, jf)
			} else {
				fmt.Printf("%s: %v\n", name, err)
			}
			return
		}
		for _, f := range analysis.Lint(prog, profiles) {
			if f.Sev == analysis.SevInfo && !*info {
				continue
			}
			if f.Sev == analysis.SevError {
				exit = 1
			}
			if *jsonOut {
				jf.Findings = append(jf.Findings, jsonFinding{
					Code:     f.Code,
					Severity: f.Sev.String(),
					Line:     f.Pos.Line,
					Col:      f.Pos.Col,
					Msg:      f.Msg,
				})
			} else {
				fmt.Printf("%s:%s\n", name, f)
			}
		}
		if *jsonOut {
			report.Files = append(report.Files, jf)
		}
	}

	if flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glslint: %v\n", err)
			os.Exit(1)
		}
		lintOne("<stdin>", src)
	}
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glslint: %v\n", err)
			exit = 1
			continue
		}
		lintOne(name, src)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "glslint: %v\n", err)
			os.Exit(1)
		}
	}
	os.Exit(exit)
}

// compile runs the front end and back end on one source.
func compile(src string, st glsl.ShaderStage, defines map[string]string) (*shader.Program, error) {
	cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: st, Defines: defines})
	if err != nil {
		return nil, err
	}
	return shader.Compile(cs)
}
