// Command glslint runs the shader static-analysis diagnostics over GLSL
// ES 1.00 sources and prints compiler-style findings: arithmetic that
// misses the free MAD fusion, expanded code with a single-instruction
// builtin equivalent (dot, clamp), possibly-uninitialised reads,
// always-discarded fragments, and per-device implementation-limit
// headroom — the static view of the paper's Fig. 4b compile cliff.
//
// Usage:
//
//	glslint [-stage fragment|vertex] [-limits vc4|sgx|generic|all|none]
//	        [-D NAME=VALUE]... [file.glsl ...]
//
// With no files, the source is read from standard input. Findings are
// printed as "file:line:col: severity: [code] message". The exit status
// is 1 when any source fails to compile or produces an error-severity
// finding (an exceeded device limit), and 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/shader/analysis"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }

func (d defineFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		val = "1"
	}
	d[name] = val
	return nil
}

func main() {
	stage := flag.String("stage", "fragment", "shader stage: fragment or vertex")
	limits := flag.String("limits", "all", "device profiles for the limit section: vc4, sgx, generic, all or none")
	info := flag.Bool("info", true, "print info-severity findings (limit headroom)")
	defines := defineFlags{}
	flag.Var(defines, "D", "preprocessor define NAME=VALUE (repeatable)")
	flag.Parse()

	st := glsl.StageFragment
	if *stage == "vertex" {
		st = glsl.StageVertex
	} else if *stage != "fragment" {
		fmt.Fprintf(os.Stderr, "glslint: unknown stage %q\n", *stage)
		os.Exit(2)
	}
	var profiles []analysis.LimitProfile
	switch *limits {
	case "none":
	case "all":
		profiles = analysis.LimitProfiles()
	default:
		lp, ok := analysis.LimitProfileFor(*limits)
		if !ok {
			fmt.Fprintf(os.Stderr, "glslint: unknown limits profile %q\n", *limits)
			os.Exit(2)
		}
		profiles = []analysis.LimitProfile{lp}
	}

	exit := 0
	lintOne := func(name string, src []byte) {
		prog, err := compile(string(src), st, defines)
		if err != nil {
			fmt.Printf("%s: %v\n", name, err)
			exit = 1
			return
		}
		for _, f := range analysis.Lint(prog, profiles) {
			if f.Sev == analysis.SevInfo && !*info {
				continue
			}
			fmt.Printf("%s:%s\n", name, f)
			if f.Sev == analysis.SevError {
				exit = 1
			}
		}
	}

	if flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glslint: %v\n", err)
			os.Exit(1)
		}
		lintOne("<stdin>", src)
	}
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glslint: %v\n", err)
			exit = 1
			continue
		}
		lintOne(name, src)
	}
	os.Exit(exit)
}

// compile runs the front end and back end on one source.
func compile(src string, st glsl.ShaderStage, defines map[string]string) (*shader.Program, error) {
	cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: st, Defines: defines})
	if err != nil {
		return nil, err
	}
	return shader.Compile(cs)
}
