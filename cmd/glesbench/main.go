// Command glesbench reproduces the paper's evaluation: every figure of
// "Optimisation Opportunities and Evaluation for GPGPU Applications on
// Low-End Mobile GPUs" (DATE 2017), printed as tables with the paper's
// reference numbers in the notes.
//
// Usage:
//
//	glesbench               # all figures
//	glesbench -fig 3        # one figure: 3, vbo, 4a, 4b, 5a, 5b
//	glesbench -size 1024    # matrix dimension of the timing runs
//	glesbench -iters 100    # repetitions per configuration
//	glesbench -nojit        # reference interpreter instead of the compiled engine
//	glesbench -nopasses     # disable the host shader optimisation passes
//	glesbench -notile       # band shading instead of the tile-binned engine
//	glesbench -tilesize 16  # tile edge length of the tiled engine
//	glesbench -nolanes      # per-fragment shading instead of lane-batched SoA
//	glesbench -lanewidth 8  # SoA batch width of the lane-batched engine
//	glesbench -nomaskedlanes # branchy programs per-fragment instead of masked lanes
//	glesbench -nocoherence  # re-shade every tile instead of eliding unchanged ones
//	glesbench -micro        # add shader-exec and sampling microbenchmarks
//	glesbench -benchjson f  # machine-readable host-time results to f
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gles2gpgpu/internal/bench"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/raster"
	"gles2gpgpu/internal/shader"
)

// benchJSON is the -benchjson output document. Schema documented in
// README.md ("Machine-readable host times").
type benchJSON struct {
	Schema      string       `json:"schema"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Workers     int          `json:"workers"`
	JIT         bool         `json:"jit"`
	Passes      bool         `json:"passes"`
	Tiling      bool         `json:"tiling"`
	TileSize    int          `json:"tile_size"`
	Lanes       bool         `json:"lanes"`
	LaneWidth   int          `json:"lane_width"`
	MaskedLanes bool         `json:"masked_lanes"`
	QuadFast    bool         `json:"quad_fast"`
	Coherence   bool         `json:"coherence"`
	Figures     []figureTime `json:"figures"`
	TotalHostMS float64      `json:"total_host_ms"`
}

type figureTime struct {
	Figure string  `json:"figure"`
	HostMS float64 `json:"host_ms"`
	// Elided and Shaded are the tile-coherence counters of the coherence
	// figures (absent elsewhere).
	Elided int64 `json:"elided,omitempty"`
	Shaded int64 `json:"shaded,omitempty"`
	// FallbackDraws is the lane-fallback counter of the masked figures
	// (absent elsewhere).
	FallbackDraws int64 `json:"fallback_draws,omitempty"`
	// Stages, PassesFused, ReadbacksElided and VirtualUS describe the
	// pipeline figures (absent elsewhere): passes per run, the planner's
	// lifetime fusion counter, intermediates kept on-device instead of
	// round-tripping through host floats, and the modelled device time in
	// microseconds (identical fused vs unfused; larger in readback mode).
	Stages          int     `json:"stages,omitempty"`
	PassesFused     int64   `json:"passes_fused,omitempty"`
	ReadbacksElided int64   `json:"readbacks_elided,omitempty"`
	VirtualUS       float64 `json:"virtual_us,omitempty"`
}

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 3, vbo, 4a, 4b, 5a, 5b or all; also journey, ablation, service, coherence, masked, pipeline, or servebench (service, coherence, masked, pipeline and servebench are opt-in only, never part of all)")
	size := flag.Int("size", 1024, "matrix dimension for timing runs (paper: 1024)")
	calib := flag.Int("calib", 64, "matrix dimension for the functional validation run")
	iters := flag.Int("iters", 100, "measured benchmark-body repetitions")
	workers := flag.Int("workers", 0, "host fragment-shading workers (0: GLES2GPGPU_WORKERS or GOMAXPROCS, 1: serial); virtual-time results are identical at any setting")
	nojit := flag.Bool("nojit", false, "run shaders on the reference interpreter instead of the closure-compiled engine (A/B escape hatch; results are bit-identical, only host time changes)")
	nopasses := flag.Bool("nopasses", false, "disable the host shader optimisation passes (A/B escape hatch; the passes are cycle-neutral, so results are bit-identical, only host time changes)")
	notile := flag.Bool("notile", false, "shade in horizontal bands instead of the tile-binned fragment engine (A/B escape hatch; results are bit-identical, only host time changes)")
	tilesize := flag.Int("tilesize", 0, "tile edge length of the tiled fragment engine (0: default 32)")
	nolanes := flag.Bool("nolanes", false, "shade every fragment individually instead of lane-batched SoA execution (A/B escape hatch; results are bit-identical, only host time changes)")
	lanewidth := flag.Int("lanewidth", 0, "SoA batch width of the lane-batched engine (0: default 8, max 16); results are bit-identical at any width")
	nomaskedlanes := flag.Bool("nomaskedlanes", false, "shade branchy programs (jacobi) per-fragment instead of divergence-masked lane execution (A/B escape hatch; results are bit-identical, only host time changes)")
	nocoherence := flag.Bool("nocoherence", false, "re-shade every tile every draw instead of eliding tiles with unchanged inputs (A/B escape hatch; results are bit-identical, only host time changes)")
	nofuse := flag.Bool("nofuse", false, "disable proof-gated pass fusion in the pipeline planner (A/B escape hatch; results are bit-identical, only host time changes)")
	sbReplicas := flag.String("sb-replicas", "", "servebench: comma-separated fleet sizes to sweep (default 1,2,4)")
	sbRates := flag.String("sb-rates", "", "servebench: comma-separated Poisson arrival rates, jobs/sec (default 100,200)")
	sbJobs := flag.Int("sb-jobs", 0, "servebench: arrivals per sweep cell (0: default 192)")
	daemonbin := flag.String("daemonbin", "", "servebench: run replicas as subprocesses of this gles2gpgpud binary instead of in-process")
	micro := flag.Bool("micro", false, "also run the shader-execution and texture-sampling microbenchmarks; results go to stderr and -benchjson, never stdout")
	benchjson := flag.String("benchjson", "", "write machine-readable per-figure host times (JSON) to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *nofuse {
		// Route the flag through the same switch the engine config and
		// tests honour, so every pipeline compiled in this process plans
		// without fusion.
		os.Setenv("GLES2GPGPU_NO_FUSE", "1")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: memprofile: %v\n", err)
		}
	}()

	// Interrupts cancel between measurement iterations instead of killing
	// the process mid-figure, so profiles and -benchjson still flush.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := bench.Opts{
		PaperSize: *size, CalibSize: *calib, Iters: *iters, Workers: *workers,
		NoJIT: *nojit, NoPasses: *nopasses, NoTiling: *notile, TileSize: *tilesize,
		NoLanes: *nolanes, LaneWidth: *lanewidth, NoMaskedLanes: *nomaskedlanes,
		NoCoherence: *nocoherence,
	}
	devs := bench.Devices()
	tileSize := *tilesize
	if tileSize == 0 {
		tileSize = gles.DefaultTileSize
	}
	laneWidth := *lanewidth
	if laneWidth == 0 {
		laneWidth = shader.DefaultLaneWidth
	}
	if laneWidth > shader.MaxLaneWidth {
		laneWidth = shader.MaxLaneWidth
	}
	report := benchJSON{
		Schema:     "gles2gpgpu.bench/1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    *workers,
		JIT:        !*nojit && shader.DefaultJIT(),
		Passes:     !*nopasses && shader.DefaultPasses(),
		Tiling:     !*notile && gles.DefaultTiling(),
		TileSize:   tileSize,
		Lanes:      !*nolanes && !*nojit && shader.DefaultLanes(),
		LaneWidth:  laneWidth,
		MaskedLanes: !*nomaskedlanes && !*nolanes && !*nojit &&
			shader.DefaultLanes() && shader.DefaultMaskedLanes(),
		QuadFast:  raster.QuadFast(),
		Coherence: !*nocoherence && gles.DefaultCoherence(),
	}
	recordHost := func(name string, d time.Duration) {
		fmt.Fprintf(os.Stderr, "glesbench: figure %s: host %v\n", name, d.Round(time.Millisecond))
		report.Figures = append(report.Figures, figureTime{
			Figure: name, HostMS: float64(d.Microseconds()) / 1000,
		})
		report.TotalHostMS += float64(d.Microseconds()) / 1000
	}
	// Host wall-clock reporting goes to stderr (and, with -benchjson, to
	// the JSON document) so stdout stays byte-comparable with the recorded
	// reference output.
	run := func(name string, f func() (interface{ Table() *bench.Table }, error)) {
		if *fig != "all" && *fig != name {
			return
		}
		hostStart := time.Now()
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		recordHost(name, time.Since(hostStart))
		if err := r.Table().Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	run("3", func() (interface{ Table() *bench.Table }, error) {
		r, err := bench.Fig3(ctx, devs, o)
		if err == nil {
			defer fmt.Printf("Headline: best sum speedup over the ES2-best-practices baseline: %.1fx (paper: >16x)\n\n", r.Headline)
		}
		return r, err
	})
	run("vbo", func() (interface{ Table() *bench.Table }, error) { return bench.FigVBO(ctx, devs, o) })
	run("4a", func() (interface{ Table() *bench.Table }, error) { return bench.Fig4a(ctx, devs, o) })
	run("4b", func() (interface{ Table() *bench.Table }, error) { return bench.Fig4b(ctx, devs, o) })
	run("5a", func() (interface{ Table() *bench.Table }, error) {
		return bench.Fig5(ctx, devs, core.TargetTexture, o)
	})
	run("5b", func() (interface{ Table() *bench.Table }, error) {
		return bench.Fig5(ctx, devs, core.TargetFramebuffer, o)
	})
	if *fig == "all" || *fig == "journey" {
		hostStart := time.Now()
		for _, dev := range devs {
			for _, spec := range []bench.Spec{{Workload: bench.WSum}, {Workload: bench.WSgemm, Block: 16}} {
				r, err := bench.Incremental(ctx, dev, spec, o)
				if err != nil {
					fmt.Fprintf(os.Stderr, "glesbench: journey: %v\n", err)
					os.Exit(1)
				}
				if err := r.Table().Write(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
		recordHost("journey", time.Since(hostStart))
	}
	if *fig == "all" || *fig == "ablation" {
		hostStart := time.Now()
		for _, dev := range devs {
			r, err := bench.Ablation(ctx, dev, o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "glesbench: ablation: %v\n", err)
				os.Exit(1)
			}
			if err := r.Table().Write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		recordHost("ablation", time.Since(hostStart))
	}
	if *fig == "coherence" {
		// Cross-iteration tile-coherence comparison (state-stepping
		// workloads with the elision cache on versus off). Opt-in only:
		// its output goes to stderr and -benchjson, never stdout, so the
		// recorded reference output is untouched.
		hostStart := time.Now()
		results, err := bench.Coherence(ctx, bench.CoherenceOpts{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: coherence: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			name := r.Name()
			fmt.Fprintf(os.Stderr, "glesbench: %s: %d iters, %d elided, %d shaded, checksum %#x, host %.3fms\n",
				name, r.Iters, r.Elided, r.Shaded, r.Checksum, r.HostMS)
			report.Figures = append(report.Figures, figureTime{
				Figure: name, HostMS: r.HostMS, Elided: r.Elided, Shaded: r.Shaded,
			})
			report.TotalHostMS += r.HostMS
		}
		recordHost("coherence", time.Since(hostStart))
	}
	if *fig == "masked" {
		// Divergence-masked lane execution comparison (branchy jacobi
		// workloads with masking on versus the per-fragment fallback).
		// Opt-in only: its output goes to stderr and -benchjson, never
		// stdout, so the recorded reference output is untouched.
		hostStart := time.Now()
		results, err := bench.Masked(ctx, bench.MaskedOpts{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: masked: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			name := r.Name()
			fmt.Fprintf(os.Stderr, "glesbench: %s: %d iters, %d fallback draws, checksum %#x, host %.3fms\n",
				name, r.Iters, r.FallbackDraws, r.Checksum, r.HostMS)
			report.Figures = append(report.Figures, figureTime{
				Figure: name, HostMS: r.HostMS, FallbackDraws: r.FallbackDraws,
			})
			report.TotalHostMS += r.HostMS
		}
		recordHost("masked", time.Since(hostStart))
	}
	if *fig == "pipeline" {
		// Kernel-pipeline comparison (vision graphs executed fused,
		// unfused-resident and with per-stage host readbacks). Opt-in
		// only: its output goes to stderr and -benchjson, never stdout,
		// so the recorded reference output is untouched.
		hostStart := time.Now()
		results, err := bench.Pipelines(ctx, bench.PipelineOpts{NoFuse: *nofuse})
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: pipeline: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			name := r.Name()
			fmt.Fprintf(os.Stderr, "glesbench: %s: %d iters, %d stages, %d passes fused, %d readbacks elided, checksum %#x, virtual %.3fus, host %.3fms\n",
				name, r.Iters, r.Stages, r.PassesFused, r.ReadbacksElided, r.Checksum, r.VirtualTime.Microseconds(), r.HostMS)
			report.Figures = append(report.Figures, figureTime{
				Figure: name, HostMS: r.HostMS, Stages: r.Stages,
				PassesFused: r.PassesFused, ReadbacksElided: r.ReadbacksElided,
				VirtualUS: r.VirtualTime.Microseconds(),
			})
			report.TotalHostMS += r.HostMS
		}
		recordHost("pipeline", time.Since(hostStart))
	}
	if *fig == "service" {
		// Service-layer reuse comparison (gles2gpgpud's residency pool and
		// batch coalescing). Opt-in only: its table is not part of the
		// recorded reference output.
		hostStart := time.Now()
		results, err := bench.Service(ctx, bench.ServiceOpts{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: service: %v\n", err)
			os.Exit(1)
		}
		bench.WriteServiceTable(os.Stdout, results)
		recordHost("service", time.Since(hostStart))
	}
	if *fig == "servebench" {
		// Fleet serving sweep: open-loop Poisson arrivals against N
		// gles2gpgpud replicas behind the shard router, affinity vs
		// round-robin vs the single-node direct baseline. Opt-in only;
		// its table goes to stderr and the servebench/2 document replaces
		// the bench/1 schema in -benchjson, so stdout and the recorded
		// reference output are untouched.
		hostStart := time.Now()
		sbo := bench.ServeBenchOpts{
			Jobs:      *sbJobs,
			DaemonBin: *daemonbin,
		}
		parseInts := func(s string) []int {
			var out []int
			for _, f := range strings.Split(s, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					fmt.Fprintf(os.Stderr, "glesbench: servebench: bad count %q\n", f)
					os.Exit(1)
				}
				out = append(out, v)
			}
			return out
		}
		if *sbReplicas != "" {
			sbo.Replicas = parseInts(*sbReplicas)
		}
		if *sbRates != "" {
			for _, f := range strings.Split(*sbRates, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					fmt.Fprintf(os.Stderr, "glesbench: servebench: bad rate %q\n", f)
					os.Exit(1)
				}
				sbo.Rates = append(sbo.Rates, v)
			}
		}
		sbReport, err := bench.ServeBench(ctx, sbo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: servebench: %v\n", err)
			os.Exit(1)
		}
		bench.WriteServeBenchTable(os.Stderr, sbReport)
		fmt.Fprintf(os.Stderr, "glesbench: figure servebench: host %v\n",
			time.Since(hostStart).Round(time.Millisecond))
		if *benchjson != "" {
			data, err := json.MarshalIndent(sbReport, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "glesbench: benchjson: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(*benchjson, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "glesbench: benchjson: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	if *micro {
		// Microbenchmark output bypasses stdout entirely: the figure tables
		// above must stay byte-comparable with the recorded reference.
		results, err := bench.Micro(ctx, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: micro: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			name := r.Name()
			fmt.Fprintf(os.Stderr, "glesbench: %s: %d invocations, %d cycles, host %.3fms\n",
				name, r.Invocations, r.Cycles, r.HostMS)
			report.Figures = append(report.Figures, figureTime{Figure: name, HostMS: r.HostMS})
			report.TotalHostMS += r.HostMS
		}
		sampling, err := bench.SamplingMicro(ctx, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: micro: %v\n", err)
			os.Exit(1)
		}
		for _, r := range sampling {
			name := r.Name()
			fmt.Fprintf(os.Stderr, "glesbench: %s: %d fetches, host %.3fms\n", name, r.Fetches, r.HostMS)
			report.Figures = append(report.Figures, figureTime{Figure: name, HostMS: r.HostMS})
			report.TotalHostMS += r.HostMS
		}
		fragpath, err := bench.FragMicro(ctx, 0, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: micro: %v\n", err)
			os.Exit(1)
		}
		for _, r := range fragpath {
			name := r.Name()
			fmt.Fprintf(os.Stderr, "glesbench: %s: %d fragments x %d draws, host %.3fms\n",
				name, r.Fragments, r.Draws, r.HostMS)
			report.Figures = append(report.Figures, figureTime{Figure: name, HostMS: r.HostMS})
			report.TotalHostMS += r.HostMS
		}
		lanes, err := bench.LaneMicro(ctx, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: micro: %v\n", err)
			os.Exit(1)
		}
		for _, r := range lanes {
			name := r.Name()
			fmt.Fprintf(os.Stderr, "glesbench: %s: %d invocations, %d cycles, checksum %#x, host %.3fms\n",
				name, r.Invocations, r.Cycles, r.Checksum, r.HostMS)
			report.Figures = append(report.Figures, figureTime{Figure: name, HostMS: r.HostMS})
			report.TotalHostMS += r.HostMS
		}
	}
	if *benchjson != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchjson, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "glesbench: benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}
