// Command gles2gpgpud is the GPGPU compute daemon: it serves the paper's
// framework over HTTP/JSON with one worker pool per simulated device,
// batching compatible jobs onto warm kernels and recycling texture
// allocations through per-engine residency pools.
//
// Usage:
//
//	gles2gpgpud                         # serve vc4 + sgx on :7433
//	gles2gpgpud -addr :0               # ephemeral port (printed on stdout)
//	gles2gpgpud -devices vc4 -workers 2 -queue 128
//
// Endpoints: POST /v1/jobs, GET /v1/devices, GET /v1/stats, GET /metrics,
// GET /healthz. SIGINT/SIGTERM drain: admission returns 503, queued and
// in-flight jobs complete, then the process exits.
//
// With -router the same binary becomes the fleet front-end instead of a
// backend: jobs are placed on the listed replicas by consistent hashing
// of their kernel-compatibility key, so each replica's warm runners and
// residency pools stay hot for its shard of the key space:
//
//	gles2gpgpud -router -replicas http://10.0.0.1:7433,http://10.0.0.2:7433
//
// Router endpoints: POST /v1/jobs (daemon protocol, unchanged for
// clients), GET /v1/replicas, POST /v1/drain?replica=, GET /metrics,
// GET /healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gles2gpgpu/internal/serve"
	"gles2gpgpu/internal/shard"
)

func main() {
	addr := flag.String("addr", ":7433", "listen address (\":0\" picks an ephemeral port)")
	router := flag.Bool("router", false, "run as the fleet router instead of a compute backend")
	replicas := flag.String("replicas", "", "router mode: comma-separated backend base URLs")
	policy := flag.String("policy", shard.PolicyAffinity, "router mode: placement policy, affinity or roundrobin")
	vnodes := flag.Int("vnodes", shard.DefaultVNodes, "router mode: virtual nodes per replica on the hash ring")
	maxInflight := flag.Int("maxinflight", 0, "router mode: per-replica in-flight window (0: default 32); full window sheds 429")
	retries := flag.Int("retries", 0, "router mode: per-job retry budget on replica failure (0: default 2)")
	failThreshold := flag.Int("failthreshold", 0, "router mode: consecutive failures before a replica is ejected (0: default 3)")
	healthEvery := flag.Duration("healthevery", 0, "router mode: health probe interval (0: default 500ms)")
	devices := flag.String("devices", "vc4,sgx", "comma-separated device pools: vc4, sgx, generic")
	workers := flag.Int("workers", 1, "worker goroutines per device pool")
	queue := flag.Int("queue", 64, "bounded queue depth per device (full queue = 429)")
	maxBatch := flag.Int("maxbatch", 8, "max compatible jobs coalesced into one batch")
	poolBytes := flag.Int("poolbytes", 32<<20, "tensor residency pool budget per engine, bytes (negative disables)")
	runners := flag.Int("runners", 4, "warm-runner cache size per worker")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "max time to finish queued jobs on shutdown")
	notile := flag.Bool("notile", false, "shade in horizontal bands instead of the tile-binned fragment engine (host time only; results are bit-identical)")
	tilesize := flag.Int("tilesize", 0, "tile edge length of the tiled fragment engine (0: default 32)")
	nolanes := flag.Bool("nolanes", false, "shade every fragment individually instead of lane-batched SoA execution (host time only; results are bit-identical)")
	lanewidth := flag.Int("lanewidth", 0, "SoA batch width of the lane-batched shader engine (0: default 8, max 16)")
	nomaskedlanes := flag.Bool("nomaskedlanes", false, "shade branchy programs per-fragment instead of divergence-masked lane execution (host time only; results are bit-identical)")
	nocoherence := flag.Bool("nocoherence", false, "re-shade every tile every draw instead of eliding tiles with unchanged inputs (host time only; results are bit-identical)")
	nofuse := flag.Bool("nofuse", false, "run every pipeline stage as its own pass instead of proof-gated pass fusion (host time only; results are bit-identical)")
	flag.Parse()

	if *router {
		if *replicas == "" {
			fmt.Fprintln(os.Stderr, "gles2gpgpud: -router requires -replicas")
			os.Exit(1)
		}
		rt, err := shard.NewRouter(shard.Config{
			Replicas:       strings.Split(*replicas, ","),
			Policy:         *policy,
			VNodes:         *vnodes,
			MaxInFlight:    *maxInflight,
			RetryBudget:    *retries,
			FailThreshold:  *failThreshold,
			HealthInterval: *healthEvery,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gles2gpgpud: %v\n", err)
			os.Exit(1)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		ready := make(chan string, 1)
		go func() {
			fmt.Printf("gles2gpgpud: routing on %s (%s over %d replicas)\n",
				<-ready, *policy, len(strings.Split(*replicas, ",")))
		}()
		if err := shard.ListenAndServe(ctx, *addr, rt, ready); err != nil {
			fmt.Fprintf(os.Stderr, "gles2gpgpud: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("gles2gpgpud: router stopped, bye")
		return
	}

	s, err := serve.New(serve.Config{
		Devices:         strings.Split(*devices, ","),
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxBatch:        *maxBatch,
		TensorPoolBytes: *poolBytes,
		MaxRunners:      *runners,
		NoTiling:        *notile,
		TileSize:        *tilesize,
		NoLanes:         *nolanes,
		LaneWidth:       *lanewidth,
		NoMaskedLanes:   *nomaskedlanes,
		NoCoherence:     *nocoherence,
		NoFuse:          *nofuse,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gles2gpgpud: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ready := make(chan string, 1)
	go func() {
		fmt.Printf("gles2gpgpud: listening on %s (devices %s)\n", <-ready, *devices)
	}()
	if err := serve.ListenAndServe(ctx, *addr, s, *drainTimeout, ready); err != nil {
		fmt.Fprintf(os.Stderr, "gles2gpgpud: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("gles2gpgpud: drained, bye")
}
