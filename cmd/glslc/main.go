// Command glslc is a standalone offline compiler for the simulator's GLSL
// ES 1.00 dialect: it runs the full front end and back end, prints the IR
// disassembly, static statistics and cycle estimates, and checks the shader
// against a device profile's implementation limits (the check that rejects
// the paper's block-32 sgemm kernels).
//
// Usage:
//
//	glslc [-stage fragment|vertex] [-device vc4|sgx|generic]
//	      [-D NAME=VALUE]... [-cycles] [-lint] [-passes]
//	      [-limits vc4|sgx|generic|all] file.glsl
//
// With no file, the source is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/shader/analysis"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }

func (d defineFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok {
		val = "1"
	}
	d[name] = val
	return nil
}

func main() {
	stage := flag.String("stage", "fragment", "shader stage: fragment or vertex")
	dev := flag.String("device", "generic", "device profile for limits and cycle costs: vc4, sgx or generic")
	cycles := flag.Bool("cycles", true, "print the static cycle estimate")
	compiled := flag.Bool("compiled", false, "dump the closure-compiled form: per-op specialization decisions (fast-path swizzle/mask hits, f32/f64 lanes, precomputed cycle blocks)")
	lint := flag.Bool("lint", false, "run the static-analysis diagnostics (same rules as glslint)")
	passes := flag.Bool("passes", false, "run the host optimisation passes and report what they did")
	limits := flag.String("limits", "", "check dataflow-derived resource usage against a device profile: vc4, sgx, generic or all")
	defines := defineFlags{}
	flag.Var(defines, "D", "preprocessor define NAME=VALUE (repeatable)")
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "glslc: at most one input file")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "glslc: %v\n", err)
		os.Exit(1)
	}

	st := glsl.StageFragment
	if *stage == "vertex" {
		st = glsl.StageVertex
	} else if *stage != "fragment" {
		fmt.Fprintf(os.Stderr, "glslc: unknown stage %q\n", *stage)
		os.Exit(2)
	}
	var prof *device.Profile
	switch *dev {
	case "vc4":
		prof = device.VideoCoreIV()
	case "sgx":
		prof = device.PowerVRSGX545()
	case "generic":
		prof = device.Generic()
	default:
		fmt.Fprintf(os.Stderr, "glslc: unknown device %q\n", *dev)
		os.Exit(2)
	}

	cs, err := glsl.Frontend(string(src), glsl.CompileOptions{Stage: st, Defines: defines})
	if err != nil {
		fmt.Fprintf(os.Stderr, "glslc: %v\n", err)
		os.Exit(1)
	}
	prog, err := shader.Compile(cs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "glslc: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(prog.Disassemble())
	if *cycles {
		fmt.Printf("; static cycles per invocation on %s: %d\n",
			prof.Name, prof.CostModel.StaticCycles(prog))
	}
	if *compiled {
		if c := prog.Compiled(&prof.CostModel); c != nil {
			c.Dump(os.Stdout)
		} else {
			fmt.Println("; jit: program not compilable, interpreter fallback")
		}
	}
	if err := prog.CheckLimits(prof.Limits); err != nil {
		fmt.Fprintf(os.Stderr, "glslc: %s: %v\n", prof.Name, err)
		os.Exit(1)
	}
	fmt.Printf("; within %s implementation limits\n", prof.Name)

	name := "<stdin>"
	if flag.NArg() == 1 {
		name = flag.Arg(0)
	}
	var profiles []analysis.LimitProfile
	if *limits != "" {
		if *limits == "all" {
			profiles = analysis.LimitProfiles()
		} else {
			lp, ok := analysis.LimitProfileFor(*limits)
			if !ok {
				fmt.Fprintf(os.Stderr, "glslc: unknown limits profile %q\n", *limits)
				os.Exit(2)
			}
			profiles = []analysis.LimitProfile{lp}
		}
	}
	failed := false
	if *passes {
		if o := analysis.Optimize(prog); o != nil {
			fmt.Printf("; passes: %d dead instructions, %d operands folded to constants, %d copies propagated\n",
				o.DeadInsts, o.FoldedConsts, o.PropagatedSrcs)
		} else {
			fmt.Println("; passes: empty program, nothing to do")
		}
	}
	if *limits != "" {
		res := analysis.CountResources(analysis.BuildCFG(prog))
		exact := "longest path"
		if !res.PathExact {
			exact = "static count (cyclic control flow)"
		}
		fmt.Printf("; resources: %d instructions, %d texture accesses (%s: %d/%d), dependent-read depth %d, temp pressure %d\n",
			res.StaticInsts, res.StaticTex, exact, res.PathInsts, res.PathTex, res.DepTexDepth, res.TempPressure)
		for _, lp := range profiles {
			for _, f := range analysis.CheckLimits(prog, res, lp) {
				fmt.Printf("%s: %s: %s\n", name, lp.Name, f)
				if f.Sev == analysis.SevError {
					failed = true
				}
			}
		}
	}
	if *lint {
		for _, f := range analysis.Lint(prog, profiles) {
			fmt.Printf("%s:%s\n", name, f)
			if f.Sev == analysis.SevError {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
