package shader

// Optimised-program plumbing.
//
// The optimisation passes themselves (dead-code elimination, copy/constant
// propagation) live in internal/shader/analysis, which imports this
// package; results flow back through SetOptimized. The contract an
// OptProgram must satisfy is deliberately narrow so the simulator's
// virtual-time model is unaffected by host-side optimisation:
//
//   - Same instruction count, same opcode, destination, sampler and branch
//     target at every index. Only source operands may be rewritten
//     (swizzle/negation folded through copies, operands redirected to the
//     constant pool) and instructions may be flagged Dead.
//   - Dead instructions still charge their cycle cost, and a dead TEX
//     still counts a texture fetch: on the modelled hardware the
//     instruction executes regardless — only our host does less work. This
//     keeps Cycles/TexFetches and every glesbench figure bit-identical
//     with passes on or off.
//   - Control flow (BR/BRZ/RET) and KIL are never dead, so the execution
//     path — and therefore which instructions are charged — is unchanged.
//
// SetOptimized validates the contract; the differential tests in
// internal/shader/analysis prove bit-exact outputs on top of it.

import (
	"fmt"
	"os"
)

// OptProgram is the optimised execution form of a Program produced by the
// analysis pass pipeline. Insts parallels Program.Insts index-for-index;
// Consts extends the original constant pool (propagation may intern new
// vectors).
type OptProgram struct {
	Insts  []Inst
	Consts [][4]float32
	// Dead[i] marks instructions whose computation is skipped on the
	// host (cycle cost and tex-fetch accounting still happen).
	Dead []bool

	// Pass statistics for diagnostics (glslc -passes).
	DeadInsts      int // instructions flagged dead
	PropagatedSrcs int // source operands rewritten through copies
	FoldedConsts   int // source operands replaced by constants
}

// noPassesEnv disables use of optimisation passes process-wide; read once
// at init.
var noPassesEnv = os.Getenv("GLES2GPGPU_NO_PASSES") != ""

// DefaultPasses reports whether the optimisation passes are enabled by
// default (they are, unless GLES2GPGPU_NO_PASSES is set in the
// environment).
func DefaultPasses() bool { return !noPassesEnv }

// SetOptimized attaches the pass-pipeline result to p after validating the
// virtual-time contract documented above. It is safe to call concurrently
// with executions of p; in-flight Executors keep whichever form they
// resolved.
func (p *Program) SetOptimized(o *OptProgram) error {
	if o == nil {
		return fmt.Errorf("shader: SetOptimized(nil)")
	}
	if len(o.Insts) != len(p.Insts) {
		return fmt.Errorf("shader: optimised program has %d insts, original %d",
			len(o.Insts), len(p.Insts))
	}
	if o.Dead != nil && len(o.Dead) != len(o.Insts) {
		return fmt.Errorf("shader: Dead length %d != inst count %d", len(o.Dead), len(o.Insts))
	}
	for i := range o.Insts {
		oi, pi := &o.Insts[i], &p.Insts[i]
		if oi.Op != pi.Op || oi.Dst != pi.Dst || oi.Target != pi.Target ||
			oi.SamplerIdx != pi.SamplerIdx {
			return fmt.Errorf("shader: optimised inst %d changed shape: %s vs %s",
				i, oi.String(), pi.String())
		}
		if o.Dead != nil && o.Dead[i] {
			switch oi.Op {
			case OpBR, OpBRZ, OpRET, OpKIL:
				return fmt.Errorf("shader: control-flow inst %d (%s) flagged dead", i, oi.Op)
			}
		}
	}
	p.opt.Store(o)
	return nil
}

// Optimized returns the attached pass-pipeline result, or nil when no
// passes have run.
func (p *Program) Optimized() *OptProgram { return p.opt.Load() }

// RunOptimized executes p's optimised form in env on the reference
// interpreter, falling back to Run when no OptProgram is attached.
// Outputs, Cycles, TexFetches and Discarded are bit-identical to Run.
func RunOptimized(p *Program, env *Env, cost *CostModel) error {
	o := p.Optimized()
	if o == nil {
		return Run(p, env, cost)
	}
	return runInsts(o.Insts, o.Consts, o.Dead, env, cost)
}

// EvalInst executes one data instruction on explicit operand values using
// the reference interpreter and returns the (pre-mask) result vector. The
// operands a, b, c are the base register values the instruction's A, B, C
// sources read from; swizzles and negation are applied exactly as at
// runtime. Control flow, KIL and TEX are not evaluable and report ok ==
// false. Constant folding in the analysis passes goes through this — the
// folded value is bit-exact by construction because it is computed by the
// same VM that would compute it at runtime.
func EvalInst(in Inst, a, b, c Vec4) (Vec4, bool) {
	switch in.Op {
	case OpNOP, OpRET, OpBR, OpBRZ, OpKIL, OpTEX:
		return Vec4{}, false
	case opMax:
		return Vec4{}, false
	}
	inst := in
	inst.A.File, inst.A.Reg = FileTemp, 0
	inst.B.File, inst.B.Reg = FileTemp, 1
	inst.C.File, inst.C.Reg = FileTemp, 2
	inst.Dst = Dst{File: FileTemp, Reg: 3, Mask: MaskAll}
	p := Program{Insts: []Inst{inst}, NumTemps: 4}
	cost := DefaultCostModel()
	env := Env{Temps: []Vec4{a, b, c, {}}}
	if err := Run(&p, &env, &cost); err != nil {
		return Vec4{}, false
	}
	return env.Temps[3], true
}
