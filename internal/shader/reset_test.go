package shader

import "testing"

// Regression tests for Env.Reset's output-zeroing skip: an Env reused
// across invocations must still present zeroed outputs to any program NOT
// proven to write them all, while proven programs may keep the stale
// values (every component is overwritten before anyone can read it).

// TestResetZeroesOutputsWhenUnproven is the regression the skip must never
// reintroduce: a program that can exit without writing gl_FragColor reads
// zeros from a recycled Env, not the previous invocation's pixel.
func TestResetZeroesOutputsWhenUnproven(t *testing.T) {
	p := compileFS(t, `
uniform float x;
void main() {
	if (x > 0.5) {
		gl_FragColor = vec4(x);
	}
}`)
	if p.OutputsAlwaysWritten {
		t.Fatal("conditionally-writing program must not be proven always-written")
	}
	env := NewEnv(p)
	env.Uniforms[0] = Vec4{0.9, 0, 0, 0}
	cost := DefaultCostModel()
	if err := Run(p, env, &cost); err != nil {
		t.Fatal(err)
	}
	if env.Outputs[0] == (Vec4{}) {
		t.Fatal("setup: first invocation should have written the output")
	}

	// Second invocation takes the non-writing path: it must see zeros, not
	// the first invocation's color.
	env.Reset()
	for i := range env.Outputs {
		if env.Outputs[i] != (Vec4{}) {
			t.Fatalf("output %d survived Reset of a non-always-writing program: %v",
				i, env.Outputs[i])
		}
	}
	env.Uniforms[0] = Vec4{0.1, 0, 0, 0}
	if err := Run(p, env, &cost); err != nil {
		t.Fatal(err)
	}
	if env.Outputs[0] != (Vec4{}) {
		t.Fatalf("non-writing invocation produced %v, want zeros", env.Outputs[0])
	}
}

// TestResetSkipsOutputZeroingWhenProven checks the skip actually engages
// for proven programs — stale values remain right after Reset — and that
// running the program makes them unobservable anyway.
func TestResetSkipsOutputZeroingWhenProven(t *testing.T) {
	p := compileFS(t, `
uniform float x;
void main() { gl_FragColor = vec4(x); }`)
	if !p.OutputsAlwaysWritten {
		t.Fatal("unconditional write should be proven always-written")
	}
	env := NewEnv(p)
	for i := range env.Outputs {
		env.Outputs[i] = Vec4{13, 13, 13, 13}
	}
	env.Reset()
	if env.Outputs[0] != (Vec4{13, 13, 13, 13}) {
		t.Error("Reset zeroed outputs despite the always-written proof")
	}
	env.Uniforms[0] = Vec4{0.25, 0, 0, 0}
	cost := DefaultCostModel()
	if err := Run(p, env, &cost); err != nil {
		t.Fatal(err)
	}
	if env.Outputs[0] != (Vec4{0.25, 0.25, 0.25, 0.25}) {
		t.Fatalf("got %v after run", env.Outputs[0])
	}
}

// TestResetDebugOverrideZeroesOutputs: the GLES2GPGPU_CLEAR_TEMPS escape
// hatch disables the output skip along with the temp skip.
func TestResetDebugOverrideZeroesOutputs(t *testing.T) {
	p := compileFS(t, `void main() { gl_FragColor = vec4(1.0); }`)
	if !p.OutputsAlwaysWritten {
		t.Fatal("expected proven program")
	}
	env := NewEnv(p)
	for i := range env.Outputs {
		env.Outputs[i] = Vec4{5, 5, 5, 5}
	}
	DebugClearTemps = true
	defer func() { DebugClearTemps = false }()
	env.Reset()
	if env.Outputs[0] != (Vec4{}) {
		t.Error("DebugClearTemps did not force output zeroing")
	}
}
