package shader

// Lane-batched (SoA) shader execution.
//
// The closure JIT in jit.go removed per-instruction decode cost, but it
// still pays one closure call per instruction per fragment. For the
// paper-sized workloads the fragment program is a short straight line run
// millions of times, so dispatch — not arithmetic — dominates host time.
// Real mobile GPGPU stacks amortise exactly this cost with wide SIMD
// execution: one instruction is issued once and applied to a whole
// workgroup of invocations.
//
// This file reproduces that structure on the host. A LaneCompiled runs a
// batch of up to W fragments ("lanes") through each instruction at once
// over a structure-of-arrays register file: each register component is a
// contiguous [W]float32 slab, so the per-op inner loop is a tight
// bounds-check-eliminated float32 loop the compiler can keep in registers.
// Closure dispatch is paid once per instruction per *batch*, amortising it
// W×.
//
// Eligibility (the same straightness predicate as Compiled.Straight):
//
//   - No real control flow. Fall-through branches (target = pc+1, emitted
//     by the GLSL if-lowering) are cost-only no-ops and stay eligible; any
//     real jump does not. Every generated GPGPU kernel except jacobi is
//     straight-line because loops are fully unrolled.
//   - No KIL: a discarding lane would diverge from its batch. Discarding
//     programs (and branchy ones) fall back to the per-fragment JIT, so
//     the live-lane mask degenerates to a dense prefix: the gather loop
//     packs covered fragments into lanes 0..N-1 and every packed lane runs
//     to completion. A partial final batch simply has N < W.
//   - RET only in the final slot (an early RET would skip instructions).
//
// Bit-identity: every per-op lane rule (float32-native vs float64
// round-trip, min32/max32 special-case order, expression shapes that decide
// platform FMA fusion) is copied from jit.go, which is proven bit-identical
// to the interpreter (see the float-precision audit there). Lanes never
// interact — DPn reductions run within one lane's four components — so a
// batch of N produces bit-for-bit the outputs of N serial invocations, and
// Cycles/TexFetches advance by exactly N× the per-invocation amounts.
//
// Garbage lanes: ALU loops run over the full width even when N < W; the
// stale values in lanes N..W-1 are never observed (only lanes < N are
// scattered) and float arithmetic on garbage cannot trap in Go. TEX loops
// run over live lanes only, so fetch counts and sampler calls are exact.

import (
	"fmt"
	"math"
	"os"
)

// MaxLaneWidth bounds the SoA batch width. 16 keeps one register
// component's slab (64 bytes) within a cache line.
const MaxLaneWidth = 16

// DefaultLaneWidth is the batch width used when no override is given;
// chosen by the lane microbenchmarks in internal/bench (see BENCH_PR6.json).
const DefaultLaneWidth = 8

// noLanesEnv disables the lane-batched backend process-wide; read once at
// init, mirroring GLES2GPGPU_NO_JIT.
var noLanesEnv = os.Getenv("GLES2GPGPU_NO_LANES") != ""

// DefaultLanes reports whether the lane-batched backend is enabled by
// default (it is, unless GLES2GPGPU_NO_LANES is set in the environment).
func DefaultLanes() bool { return !noLanesEnv }

// LaneEnv is the execution environment of one batch of shader invocations,
// the SoA analogue of Env. Register banks are flat []float32 slabs laid
// out lane-major per component: register r, component c, lane l lives at
// index (r*4+c)*Width + l. Reuse one LaneEnv across batches (see
// LaneEnvPool); counters accumulate and callers measure deltas, exactly
// like pooled Envs.
type LaneEnv struct {
	Width int // allocated lane count (the W the banks are laid out for)
	N     int // live lanes in the current batch (0 < N <= Width)

	Uni []float32 // uniforms, broadcast across lanes (SetUniforms)
	In  []float32 // per-lane inputs (SetInput)
	Out []float32 // per-lane outputs (Output)
	Tmp []float32 // per-lane temporaries

	// scratch blocks materialise negated sources (0..2 for A/B/C) and
	// stage destinations that alias a source register (3), so op loops
	// never observe their own writes mid-instruction.
	scratch [4][]float32

	Sample   SampleFunc
	Samplers []TexFunc

	Cycles     int64
	TexFetches int64

	// Discarded flags the lanes that executed a KIL in the last masked
	// batch (see lanes_masked.go); scatter paths skip them. Batches run by
	// the straight-line engine never discard and leave all entries false.
	Discarded []bool

	// Masked-execution per-batch state (lanes_masked.go): per-lane resume
	// pc and the scratch list of lanes active at the current step.
	nextPC  []int32
	maskAct []int32

	prog *Program
}

// NewLaneEnv returns a batch environment sized for p at the given width.
func NewLaneEnv(p *Program, width int) *LaneEnv {
	if width < 1 {
		width = 1
	} else if width > MaxLaneWidth {
		width = MaxLaneWidth
	}
	e := &LaneEnv{
		Width:     width,
		Uni:       make([]float32, maxi(p.NumUniform, 1)*4*width),
		In:        make([]float32, maxi(p.NumInputs, 1)*4*width),
		Out:       make([]float32, maxi(p.NumOutputs, 1)*4*width),
		Tmp:       make([]float32, maxi(p.NumTemps, 1)*4*width),
		Discarded: make([]bool, width),
		nextPC:    make([]int32, width),
		maskAct:   make([]int32, 0, width),
		prog:      p,
	}
	for i := range e.scratch {
		e.scratch[i] = make([]float32, 4*width)
	}
	return e
}

// Program returns the program the LaneEnv was sized for.
func (e *LaneEnv) Program() *Program { return e.prog }

// SetUniforms broadcasts a draw's uniform registers across all lanes.
// Uniforms are draw-invariant, so this runs once per draw, not per batch.
func (e *LaneEnv) SetUniforms(us []Vec4) {
	w := e.Width
	n := len(us)
	if max := len(e.Uni) / (4 * w); n > max {
		n = max
	}
	for r := 0; r < n; r++ {
		v := us[r]
		for c := 0; c < 4; c++ {
			lane := e.Uni[(r*4+c)*w:][:w]
			for l := range lane {
				lane[l] = v[c]
			}
		}
	}
}

// SetInput stores one lane's input register (a varying or gl_FragCoord).
func (e *LaneEnv) SetInput(lane, reg int, v Vec4) {
	w := e.Width
	base := reg * 4 * w
	e.In[base+lane] = v[0]
	e.In[base+w+lane] = v[1]
	e.In[base+2*w+lane] = v[2]
	e.In[base+3*w+lane] = v[3]
}

// Output reads one lane's output register after Run.
func (e *LaneEnv) Output(lane, reg int) Vec4 {
	w := e.Width
	base := reg * 4 * w
	return Vec4{
		e.Out[base+lane],
		e.Out[base+w+lane],
		e.Out[base+2*w+lane],
		e.Out[base+3*w+lane],
	}
}

// laneOp executes one instruction across the batch.
type laneOp func(e *LaneEnv)

// laneBlock resolves one register's 4*W-element slab at run time.
type laneBlock func(e *LaneEnv) []float32

// laneSrc is a compile-time-resolved source operand: a slab resolver plus
// per-result-component element offsets with the swizzle folded in
// (offs[c] = swiz[c]*W into the resolved slab).
type laneSrc struct {
	blk  laneBlock
	offs [4]int
}

// LaneCompiled is the lane-batched compiled form of one straight-line
// Program under one CostModel at one width. Immutable after compilation:
// any number of goroutines may Run it concurrently with distinct LaneEnvs.
type LaneCompiled struct {
	prog  *Program
	cost  *CostModel
	opt   *OptProgram // non-nil when compiled from the optimised form
	width int

	line          []laneOp
	cyclesPerLane int64

	// Masked (divergence-tolerant) form: when masked is set, line is empty
	// and steps drives the per-pc active-lane schedule in lanes_masked.go.
	// cyclesPerLane stays 0 because cost is charged per step per active
	// lane, reproducing the interpreter's per-lane totals under divergence.
	masked bool
	steps  []maskedStep

	// cst holds constant operands broadcast to SoA slabs at compile time
	// (swizzle and negation folded), appended per source instance.
	cst []float32
}

// Masked reports whether this compiled form runs under an active-lane mask
// (lanes_masked.go). Masked batches can discard individual lanes; scatter
// paths must consult LaneEnv.Discarded.
func (lc *LaneCompiled) Masked() bool { return lc.masked }

// Width returns the lane width the batch was compiled for.
func (lc *LaneCompiled) Width() int { return lc.width }

// CyclesPerLane returns the per-invocation cycle cost; a batch of N lanes
// advances Cycles by exactly N times this.
func (lc *LaneCompiled) CyclesPerLane() int64 { return lc.cyclesPerLane }

// Run executes the batch of e.N live lanes. Outputs for lanes 0..N-1 and
// the Cycles/TexFetches deltas are bit-identical to N serial interpreter
// invocations of the same program.
func (lc *LaneCompiled) Run(e *LaneEnv) {
	n := e.N
	if n <= 0 {
		return
	}
	if lc.masked {
		lc.runMasked(e)
		return
	}
	for _, f := range lc.line {
		f(e)
	}
	e.Cycles += lc.cyclesPerLane * int64(n)
}

// LaneCompiled returns the lane-batched compiled form of p under cost at
// the given width, building it on first use and caching it on the Program
// (one-entry cache keyed by cost pointer and width, like the JIT cache —
// an engine runs one profile at one width, so the key never thrashes in
// practice). Returns nil when p is not straight-line, uses an unsupported
// opcode, or width is out of range [2, MaxLaneWidth]; callers fall back to
// the per-fragment JIT or interpreter.
func (p *Program) LaneCompiled(cost *CostModel, width int) *LaneCompiled {
	if c := p.lanes.Load(); c != nil && c.cost == cost && c.width == width {
		if c.line == nil && c.cyclesPerLane < 0 {
			return nil // cached ineligibility
		}
		return c
	}
	p.jitMu.Lock()
	defer p.jitMu.Unlock()
	if c := p.lanes.Load(); c != nil && c.cost == cost && c.width == width {
		if c.line == nil && c.cyclesPerLane < 0 {
			return nil
		}
		return c
	}
	c := compileLanes(p, p.Insts, p.Consts, nil, cost, width)
	if c == nil {
		// Cache the negative result so ineligible programs do not pay a
		// straightness scan per draw.
		p.lanes.Store(&LaneCompiled{prog: p, cost: cost, width: width, cyclesPerLane: -1})
		return nil
	}
	p.lanes.Store(c)
	return c
}

// LaneCompiledOpt returns the lane-batched compiled form of p's optimised
// program (the OptProgram attached by SetOptimized) under cost at width,
// cached in a second slot keyed by (cost, width, OptProgram) identity.
// Falls back to LaneCompiled when no OptProgram is attached; returns nil
// when the program is ineligible.
func (p *Program) LaneCompiledOpt(cost *CostModel, width int) *LaneCompiled {
	o := p.Optimized()
	if o == nil {
		return p.LaneCompiled(cost, width)
	}
	if c := p.lanesOpt.Load(); c != nil && c.cost == cost && c.width == width && c.opt == o {
		if c.line == nil && c.cyclesPerLane < 0 {
			return nil
		}
		return c
	}
	p.jitMu.Lock()
	defer p.jitMu.Unlock()
	if c := p.lanesOpt.Load(); c != nil && c.cost == cost && c.width == width && c.opt == o {
		if c.line == nil && c.cyclesPerLane < 0 {
			return nil
		}
		return c
	}
	c := compileLanes(p, o.Insts, o.Consts, o.Dead, cost, width)
	if c == nil {
		p.lanesOpt.Store(&LaneCompiled{prog: p, cost: cost, opt: o, width: width, cyclesPerLane: -1})
		return nil
	}
	c.opt = o
	p.lanesOpt.Store(c)
	return c
}

// LaneFallbackReason reports why p cannot run on the lane-batched engine,
// or "" when it is lane-eligible. The first clause found is reported:
// real control flow, discard, early return, or an opcode the backend does
// not implement. The liveness proofs (WritesBeforeReads,
// OutputsAlwaysWritten) are a separate pipeline-level gate — see
// the analysis package's lane lint rule — because they concern Env reuse,
// not the batch execution itself.
func LaneFallbackReason(p *Program) string {
	_, reason := LaneFallbackAt(p)
	return reason
}

// LaneFallbackAt is LaneFallbackReason with the offending instruction's
// index attached, so tooling (glslint's lane rule) can point at the
// source position that breaks eligibility. pc is -1 when the program is
// lane-eligible.
func LaneFallbackAt(p *Program) (pc int, reason string) {
	return laneFallbackAt(p.Insts)
}

func laneFallbackReason(insts []Inst) string {
	_, reason := laneFallbackAt(insts)
	return reason
}

func laneFallbackAt(insts []Inst) (int, string) {
	n := len(insts)
	for i := range insts {
		in := &insts[i]
		switch in.Op {
		case OpBR, OpBRZ:
			if int(in.Target) != i+1 {
				return i, fmt.Sprintf("branch at pc %d jumps to %d (not straight-line)", i, in.Target)
			}
		case OpKIL:
			return i, fmt.Sprintf("discard (kil) at pc %d could diverge within a batch", i)
		case OpRET:
			if i != n-1 {
				return i, fmt.Sprintf("early ret at pc %d (not straight-line)", i)
			}
		default:
			if !laneOpSupported(in.Op) {
				return i, fmt.Sprintf("opcode %s at pc %d has no lane implementation", in.Op, i)
			}
		}
	}
	return -1, ""
}

// laneOpSupported reports whether compileLaneInst implements op.
func laneOpSupported(op Op) bool {
	switch op {
	case OpNOP, OpRET, OpBR, OpBRZ,
		OpMOV, OpADD, OpSUB, OpMUL, OpDIV, OpMAD, OpMUL24,
		OpDP2, OpDP3, OpDP4, OpMIN, OpMAX, OpCLAMP,
		OpABS, OpSGN, OpFLR, OpCEIL, OpFRC,
		OpRCP, OpRSQ, OpSQRT, OpEX2, OpLG2, OpPOW, OpEXP, OpLOG,
		OpSIN, OpCOS, OpTAN, OpASIN, OpACOS, OpATAN, OpATAN2,
		OpSLT, OpSLE, OpSGT, OpSGE, OpSEQ, OpSNE, OpSEL, OpQUANT, OpTEX:
		return true
	}
	return false
}

// compileLanes translates a straight-line instruction stream into lane
// closures; nil when the stream is ineligible (see LaneFallbackReason) or
// the width is out of range. Dead instructions follow the OptProgram
// contract: their cost is folded into cyclesPerLane and a dead TEX still
// counts one fetch per live lane.
func compileLanes(p *Program, insts []Inst, consts [][4]float32, dead []bool, cost *CostModel, width int) *LaneCompiled {
	if width < 2 || width > MaxLaneWidth {
		return nil
	}
	if laneFallbackReason(insts) != "" {
		return nil
	}
	lc := &LaneCompiled{prog: p, cost: cost, width: width}
	for i := range insts {
		in := &insts[i]
		lc.cyclesPerLane += cost.InstCost(in)
		switch in.Op {
		case OpNOP, OpRET, OpBR, OpBRZ:
			continue // cost-only (fall-through branches verified above)
		}
		if dead != nil && dead[i] {
			if in.Op == OpTEX {
				lc.line = append(lc.line, func(e *LaneEnv) { e.TexFetches += int64(e.N) })
			}
			continue
		}
		fn := lc.compileLaneInst(consts, in)
		if fn == nil {
			return nil
		}
		lc.line = append(lc.line, fn)
	}
	return lc
}

// laneConst appends a constant operand broadcast to a 4*W slab with
// swizzle and negation folded at compile time; the returned laneSrc reads
// it with identity offsets.
func (lc *LaneCompiled) laneConst(consts [][4]float32, s Src) laneSrc {
	w := lc.width
	v := resolveConst(consts, s)
	base := len(lc.cst)
	for c := 0; c < 4; c++ {
		for l := 0; l < w; l++ {
			lc.cst = append(lc.cst, v[c])
		}
	}
	blkRef := &lc.cst
	return laneSrc{
		blk:  func(e *LaneEnv) []float32 { return (*blkRef)[base : base+4*w] },
		offs: [4]int{0, w, 2 * w, 3 * w},
	}
}

// laneBank returns the slab resolver for a register bank operand.
func laneBank(f RegFile, reg, w int) laneBlock {
	base := reg * 4 * w
	end := base + 4*w
	switch f {
	case FileTemp:
		return func(e *LaneEnv) []float32 { return e.Tmp[base:end] }
	case FileUniform:
		return func(e *LaneEnv) []float32 { return e.Uni[base:end] }
	case FileInput:
		return func(e *LaneEnv) []float32 { return e.In[base:end] }
	case FileOutput:
		return func(e *LaneEnv) []float32 { return e.Out[base:end] }
	default:
		return nil
	}
}

// compileLaneSrc resolves one source operand. Negated register sources
// materialise into the env scratch slab for their operand slot (negating
// all four components commutes with the compile-time swizzle offsets), so
// op inner loops read plain float32 slabs in every case.
func (lc *LaneCompiled) compileLaneSrc(consts [][4]float32, s Src, slot int) laneSrc {
	w := lc.width
	if s.File == FileConst {
		return lc.laneConst(consts, s)
	}
	offs := [4]int{
		int(s.Swiz[0]&3) * w, int(s.Swiz[1]&3) * w,
		int(s.Swiz[2]&3) * w, int(s.Swiz[3]&3) * w,
	}
	base := laneBank(s.File, int(s.Reg), w)
	if base == nil {
		// Reads from an unknown bank yield zero, as Env.read does.
		zero := make([]float32, 4*w)
		return laneSrc{blk: func(e *LaneEnv) []float32 { return zero }, offs: offs}
	}
	if !s.Neg {
		return laneSrc{blk: base, offs: offs}
	}
	return laneSrc{
		blk: func(e *LaneEnv) []float32 {
			src := base(e)
			dst := e.scratch[slot]
			_ = dst[len(src)-1]
			for i := range src {
				dst[i] = -src[i]
			}
			return dst
		},
		offs: offs,
	}
}

// laneComp pairs a written destination component offset with the swizzled
// source offsets feeding it.
type laneComp struct {
	d, a, b, c int
}

// activeComps lists the destination components the write mask keeps, with
// each component's source offsets resolved.
func activeComps(w int, mask uint8, a, b, c *laneSrc) []laneComp {
	var out []laneComp
	for ci := 0; ci < 4; ci++ {
		if mask&(1<<uint(ci)) == 0 {
			continue
		}
		t := laneComp{d: ci * w}
		if a != nil {
			t.a = a.offs[ci]
		}
		if b != nil {
			t.b = b.offs[ci]
		}
		if c != nil {
			t.c = c.offs[ci]
		}
		out = append(out, t)
	}
	return out
}

// aliases reports whether a read operand overlaps the destination
// register, requiring the result to be staged so all reads observe
// pre-instruction values (the interpreter reads every source into locals
// before writing).
func aliases(d Dst, s Src, readMask uint8) bool {
	return readMask != 0 && s.File == d.File && s.Reg == d.Reg
}

// compileLaneDst resolves the destination slab. When the destination
// aliases a source, the op writes into scratch slab 3 and a follow-up
// copy closure moves the masked components into the real register; the
// copy is returned as fin (nil when no staging is needed). Writes to
// read-only files are dropped, as Env.write does.
func (lc *LaneCompiled) compileLaneDst(in *Inst) (blk laneBlock, fin laneOp) {
	d := in.Dst
	w := lc.width
	real := laneBank(d.File, int(d.Reg), w)
	if real == nil || (d.File != FileTemp && d.File != FileOutput) {
		drop := make([]float32, 4*w)
		return func(e *LaneEnv) []float32 { return drop }, nil
	}
	if lc.masked {
		// Masked execution must never clobber inactive lanes (they resume
		// at a different pc and will observe these registers), but the op
		// inner loops run over the full width. Always stage into scratch 3
		// and commit only the active lanes.
		return lc.maskedDst(real, d.Mask)
	}
	ra, rb, rc := in.SrcLanes()
	if !aliases(d, in.A, ra) && !aliases(d, in.B, rb) && !aliases(d, in.C, rc) {
		return real, nil
	}
	stage := func(e *LaneEnv) []float32 { return e.scratch[3] }
	mask := d.Mask
	fin = func(e *LaneEnv) {
		src := e.scratch[3]
		dst := real(e)
		for ci := 0; ci < 4; ci++ {
			if mask&(1<<uint(ci)) == 0 {
				continue
			}
			copy(dst[ci*w:ci*w+w], src[ci*w:ci*w+w])
		}
	}
	return stage, fin
}

// withFin chains the alias-staging copy after the op body.
func withFin(op laneOp, fin laneOp) laneOp {
	if fin == nil {
		return op
	}
	return func(e *LaneEnv) {
		op(e)
		fin(e)
	}
}

// compileLaneInst builds the lane closure for one non-control-flow
// instruction. The per-op lane rules (float32 vs float64, expression
// shapes) mirror compileInst in jit.go exactly; see the bit-identity notes
// at the top of this file.
func (lc *LaneCompiled) compileLaneInst(consts [][4]float32, in *Inst) laneOp {
	w := lc.width
	wd, fin := lc.compileLaneDst(in)
	switch in.Op {
	case OpTEX:
		if lc.masked {
			// Fetch counts and sampler calls must be exact per lane, so the
			// masked form has a dedicated body over active lanes only.
			return lc.compileMaskedTex(consts, in)
		}
		ra := lc.compileLaneSrc(consts, in.A, 0)
		sampler := int(in.SamplerIdx)
		uo, vo := ra.offs[0], ra.offs[1]
		// Masked destination components: slab offset plus texel lane index.
		var tcomps []laneComp
		for ci := 0; ci < 4; ci++ {
			if in.Dst.Mask&(1<<uint(ci)) != 0 {
				tcomps = append(tcomps, laneComp{d: ci * w, a: ci})
			}
		}
		return withFin(func(e *LaneEnv) {
			n := e.N
			e.TexFetches += int64(n)
			ab, db := ra.blk(e), wd(e)
			for l := 0; l < n; l++ {
				u, v := ab[uo+l], ab[vo+l]
				var texel Vec4
				if sampler >= 0 && sampler < len(e.Samplers) && e.Samplers[sampler] != nil {
					texel = e.Samplers[sampler](u, v)
				} else if e.Sample != nil {
					texel = e.Sample(sampler, u, v)
				}
				for _, t := range tcomps {
					db[t.d+l] = texel[t.a]
				}
			}
		}, fin)
	case OpMOV:
		ra := lc.compileLaneSrc(consts, in.A, 0)
		comps := activeComps(w, in.Dst.Mask, &ra, nil, nil)
		return withFin(func(e *LaneEnv) {
			ab, db := ra.blk(e), wd(e)
			for _, t := range comps {
				copy(db[t.d:t.d+w], ab[t.a:t.a+w])
			}
		}, fin)
	case OpDP2, OpDP3, OpDP4:
		ra := lc.compileLaneSrc(consts, in.A, 0)
		rb := lc.compileLaneSrc(consts, in.B, 1)
		k := 2 + int(in.Op) - int(OpDP2)
		aoffs := ra.offs
		boffs := rb.offs
		comps := activeComps(w, in.Dst.Mask, nil, nil, nil)
		return withFin(func(e *LaneEnv) {
			ab, bb, db := ra.blk(e), rb.blk(e), wd(e)
			for l := 0; l < w; l++ {
				var s float32
				for i := 0; i < k; i++ {
					s += ab[aoffs[i]+l] * bb[boffs[i]+l]
				}
				for ci := range comps {
					db[comps[ci].d+l] = s
				}
			}
		}, fin)
	case OpMAD:
		ra := lc.compileLaneSrc(consts, in.A, 0)
		rb := lc.compileLaneSrc(consts, in.B, 1)
		rc := lc.compileLaneSrc(consts, in.C, 2)
		comps := activeComps(w, in.Dst.Mask, &ra, &rb, &rc)
		return withFin(func(e *LaneEnv) {
			ab, bb, cb, db := ra.blk(e), rb.blk(e), rc.blk(e), wd(e)
			for _, t := range comps {
				d := db[t.d : t.d+w : t.d+w]
				x := ab[t.a : t.a+w]
				y := bb[t.b : t.b+w]
				z := cb[t.c : t.c+w]
				for l := range d {
					d[l] = x[l]*y[l] + z[l]
				}
			}
		}, fin)
	case OpMUL24:
		ra := lc.compileLaneSrc(consts, in.A, 0)
		rb := lc.compileLaneSrc(consts, in.B, 1)
		comps := activeComps(w, in.Dst.Mask, &ra, &rb, nil)
		return withFin(func(e *LaneEnv) {
			ab, bb, db := ra.blk(e), rb.blk(e), wd(e)
			for _, t := range comps {
				d := db[t.d : t.d+w : t.d+w]
				x := ab[t.a : t.a+w]
				y := bb[t.b : t.b+w]
				for l := range d {
					d[l] = quant24(x[l]) * quant24(y[l])
				}
			}
		}, fin)
	case OpCLAMP:
		ra := lc.compileLaneSrc(consts, in.A, 0)
		rb := lc.compileLaneSrc(consts, in.B, 1)
		rc := lc.compileLaneSrc(consts, in.C, 2)
		comps := activeComps(w, in.Dst.Mask, &ra, &rb, &rc)
		return withFin(func(e *LaneEnv) {
			ab, bb, cb, db := ra.blk(e), rb.blk(e), rc.blk(e), wd(e)
			for _, t := range comps {
				d := db[t.d : t.d+w : t.d+w]
				x := ab[t.a : t.a+w]
				lo := bb[t.b : t.b+w]
				hi := cb[t.c : t.c+w]
				for l := range d {
					v := x[l]
					if v < lo[l] {
						v = lo[l]
					}
					if v > hi[l] {
						v = hi[l]
					}
					d[l] = v
				}
			}
		}, fin)
	case OpSEL:
		ra := lc.compileLaneSrc(consts, in.A, 0)
		rb := lc.compileLaneSrc(consts, in.B, 1)
		rc := lc.compileLaneSrc(consts, in.C, 2)
		comps := activeComps(w, in.Dst.Mask, &ra, &rb, &rc)
		return withFin(func(e *LaneEnv) {
			ab, bb, cb, db := ra.blk(e), rb.blk(e), rc.blk(e), wd(e)
			for _, t := range comps {
				d := db[t.d : t.d+w : t.d+w]
				x := ab[t.a : t.a+w]
				y := bb[t.b : t.b+w]
				z := cb[t.c : t.c+w]
				for l := range d {
					if x[l] != 0 {
						d[l] = y[l]
					} else {
						d[l] = z[l]
					}
				}
			}
		}, fin)
	case OpADD:
		return lc.laneBin(consts, in, fin, wd, func(d, x, y []float32) {
			for l := range d {
				d[l] = x[l] + y[l]
			}
		})
	case OpSUB:
		return lc.laneBin(consts, in, fin, wd, func(d, x, y []float32) {
			for l := range d {
				d[l] = x[l] - y[l]
			}
		})
	case OpMUL:
		return lc.laneBin(consts, in, fin, wd, func(d, x, y []float32) {
			for l := range d {
				d[l] = x[l] * y[l]
			}
		})
	case OpDIV:
		return lc.laneBin(consts, in, fin, wd, func(d, x, y []float32) {
			for l := range d {
				d[l] = x[l] / y[l]
			}
		})
	case OpMIN:
		return lc.laneBin(consts, in, fin, wd, func(d, x, y []float32) {
			for l := range d {
				d[l] = min32(x[l], y[l])
			}
		})
	case OpMAX:
		return lc.laneBin(consts, in, fin, wd, func(d, x, y []float32) {
			for l := range d {
				d[l] = max32(x[l], y[l])
			}
		})
	case OpSLT:
		return lc.laneCmp(consts, in, fin, wd, func(x, y float32) bool { return x < y })
	case OpSLE:
		return lc.laneCmp(consts, in, fin, wd, func(x, y float32) bool { return x <= y })
	case OpSGT:
		return lc.laneCmp(consts, in, fin, wd, func(x, y float32) bool { return x > y })
	case OpSGE:
		return lc.laneCmp(consts, in, fin, wd, func(x, y float32) bool { return x >= y })
	case OpSEQ:
		return lc.laneCmp(consts, in, fin, wd, func(x, y float32) bool { return x == y })
	case OpSNE:
		return lc.laneCmp(consts, in, fin, wd, func(x, y float32) bool { return x != y })
	case OpRCP:
		ra := lc.compileLaneSrc(consts, in.A, 0)
		comps := activeComps(w, in.Dst.Mask, &ra, nil, nil)
		return withFin(func(e *LaneEnv) {
			ab, db := ra.blk(e), wd(e)
			for _, t := range comps {
				d := db[t.d : t.d+w : t.d+w]
				x := ab[t.a : t.a+w]
				for l := range d {
					d[l] = 1 / x[l]
				}
			}
		}, fin)
	case OpQUANT:
		ra := lc.compileLaneSrc(consts, in.A, 0)
		comps := activeComps(w, in.Dst.Mask, &ra, nil, nil)
		return withFin(func(e *LaneEnv) {
			ab, db := ra.blk(e), wd(e)
			for _, t := range comps {
				d := db[t.d : t.d+w : t.d+w]
				x := ab[t.a : t.a+w]
				for l := range d {
					d[l] = QuantizeChannel(x[l])
				}
			}
		}, fin)
	case OpSGN:
		ra := lc.compileLaneSrc(consts, in.A, 0)
		comps := activeComps(w, in.Dst.Mask, &ra, nil, nil)
		return withFin(func(e *LaneEnv) {
			ab, db := ra.blk(e), wd(e)
			for _, t := range comps {
				d := db[t.d : t.d+w : t.d+w]
				x := ab[t.a : t.a+w]
				for l := range d {
					v := x[l]
					switch {
					case v > 0:
						d[l] = 1
					case v < 0:
						d[l] = -1
					default:
						d[l] = 0
					}
				}
			}
		}, fin)
	case OpABS, OpFLR, OpCEIL, OpFRC, OpRSQ, OpSQRT, OpEX2, OpLG2,
		OpEXP, OpLOG, OpSIN, OpCOS, OpTAN, OpASIN, OpACOS, OpATAN:
		f := f64Unary(in.Op)
		ra := lc.compileLaneSrc(consts, in.A, 0)
		comps := activeComps(w, in.Dst.Mask, &ra, nil, nil)
		return withFin(func(e *LaneEnv) {
			ab, db := ra.blk(e), wd(e)
			for _, t := range comps {
				d := db[t.d : t.d+w : t.d+w]
				x := ab[t.a : t.a+w]
				for l := range d {
					d[l] = float32(f(float64(x[l])))
				}
			}
		}, fin)
	case OpPOW, OpATAN2:
		f := math64Pow
		if in.Op == OpATAN2 {
			f = math64Atan2
		}
		return lc.laneBin(consts, in, fin, wd, func(d, x, y []float32) {
			for l := range d {
				d[l] = float32(f(float64(x[l]), float64(y[l])))
			}
		})
	}
	return nil
}

// laneBin compiles a two-source componentwise op with the inner loop body
// supplied by the caller; the body sees exact-length slabs so every index
// is bounds-check free.
func (lc *LaneCompiled) laneBin(consts [][4]float32, in *Inst, fin laneOp, wd laneBlock, body func(d, x, y []float32)) laneOp {
	w := lc.width
	ra := lc.compileLaneSrc(consts, in.A, 0)
	rb := lc.compileLaneSrc(consts, in.B, 1)
	comps := activeComps(w, in.Dst.Mask, &ra, &rb, nil)
	return withFin(func(e *LaneEnv) {
		ab, bb, db := ra.blk(e), rb.blk(e), wd(e)
		for _, t := range comps {
			body(db[t.d:t.d+w:t.d+w], ab[t.a:t.a+w], bb[t.b:t.b+w])
		}
	}, fin)
}

// laneCmp compiles a comparison op (result 1.0/0.0 per lane).
func (lc *LaneCompiled) laneCmp(consts [][4]float32, in *Inst, fin laneOp, wd laneBlock, cmp func(x, y float32) bool) laneOp {
	return lc.laneBin(consts, in, fin, wd, func(d, x, y []float32) {
		for l := range d {
			if cmp(x[l], y[l]) {
				d[l] = 1
			} else {
				d[l] = 0
			}
		}
	})
}

// f64Unary maps a unary transcendental opcode to its interpreter float64
// function, the same table compileInst uses.
func f64Unary(op Op) func(float64) float64 {
	switch op {
	case OpABS:
		return math.Abs
	case OpFLR:
		return math.Floor
	case OpCEIL:
		return math.Ceil
	case OpFRC:
		return func(x float64) float64 { return x - math.Floor(x) }
	case OpRSQ:
		return func(x float64) float64 { return 1 / math.Sqrt(x) }
	case OpSQRT:
		return math.Sqrt
	case OpEX2:
		return math.Exp2
	case OpLG2:
		return math.Log2
	case OpEXP:
		return math.Exp
	case OpLOG:
		return math.Log
	case OpSIN:
		return math.Sin
	case OpCOS:
		return math.Cos
	case OpTAN:
		return math.Tan
	case OpASIN:
		return math.Asin
	case OpACOS:
		return math.Acos
	default:
		return math.Atan
	}
}

var (
	math64Pow   = math.Pow
	math64Atan2 = math.Atan2
)
