package shader

import (
	"testing"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/kernels"
)

// BenchmarkShaderExec measures one fragment-shader invocation of the
// paper's kernels on both execution backends. The compiled/interp ratio at
// workers=1 is the host-time speedup the closure backend delivers (the
// acceptance floor for this optimisation is 2×).
func BenchmarkShaderExec(b *testing.B) {
	cost := DefaultCostModel()
	benchKernel := func(name, src string) {
		cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
		if err != nil {
			b.Fatalf("%s: frontend: %v", name, err)
		}
		p, err := Compile(cs)
		if err != nil {
			b.Fatalf("%s: compile: %v", name, err)
		}
		run := func(b *testing.B, exec func(*Env) error) {
			env := NewEnv(p)
			env.Sample = func(idx int, u, v float32) Vec4 {
				return Vec4{u, v, u * v, 1}
			}
			for i := range env.Inputs {
				env.Inputs[i] = Vec4{0.421875, 0.734375, 0, 1}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Reset()
				if err := exec(env); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(name+"/interp", func(b *testing.B) {
			run(b, Executor(p, &cost, false, false))
		})
		b.Run(name+"/compiled", func(b *testing.B) {
			run(b, Executor(p, &cost, true, false))
		})
	}

	benchKernel("sum", kernels.Sum(kernels.DefaultOptions))
	sgemm, err := kernels.SgemmPass(1024, 16, kernels.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	benchKernel("sgemm16", sgemm)
	benchKernel("conv3x3", kernels.Conv3x3(1024, 1024, kernels.DefaultOptions))
}
