package shader

import (
	"fmt"
	"testing"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/kernels"
)

// BenchmarkShaderExec measures one fragment-shader invocation of the
// paper's kernels on both execution backends. The compiled/interp ratio at
// workers=1 is the host-time speedup the closure backend delivers (the
// acceptance floor for this optimisation is 2×).
func BenchmarkShaderExec(b *testing.B) {
	cost := DefaultCostModel()
	benchKernel := func(name, src string) {
		cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
		if err != nil {
			b.Fatalf("%s: frontend: %v", name, err)
		}
		p, err := Compile(cs)
		if err != nil {
			b.Fatalf("%s: compile: %v", name, err)
		}
		run := func(b *testing.B, exec func(*Env) error) {
			env := NewEnv(p)
			env.Sample = func(idx int, u, v float32) Vec4 {
				return Vec4{u, v, u * v, 1}
			}
			for i := range env.Inputs {
				env.Inputs[i] = Vec4{0.421875, 0.734375, 0, 1}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Reset()
				if err := exec(env); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(name+"/interp", func(b *testing.B) {
			run(b, Executor(p, &cost, false, false))
		})
		b.Run(name+"/compiled", func(b *testing.B) {
			run(b, Executor(p, &cost, true, false))
		})
	}

	benchKernel("sum", kernels.Sum(kernels.DefaultOptions))
	sgemm, err := kernels.SgemmPass(1024, 16, kernels.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	benchKernel("sgemm16", sgemm)
	benchKernel("conv3x3", kernels.Conv3x3(1024, 1024, kernels.DefaultOptions))
}

// BenchmarkShaderExecLanes measures per-invocation time of the lane-batched
// engine against the per-fragment closure JIT on the straight-line kernels.
// ns/op is per invocation in both cases (the lane runs divide by the batch
// width), so lanes-vs-compiled is the dispatch-amortisation speedup.
func BenchmarkShaderExecLanes(b *testing.B) {
	cost := DefaultCostModel()
	sampler := func(u, v float32) Vec4 { return Vec4{u, v, u * v, 1} }
	benchKernel := func(name, src string) {
		cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
		if err != nil {
			b.Fatalf("%s: frontend: %v", name, err)
		}
		p, err := Compile(cs)
		if err != nil {
			b.Fatalf("%s: compile: %v", name, err)
		}
		in := Vec4{0.421875, 0.734375, 0, 1}
		b.Run(name+"/w1-jit", func(b *testing.B) {
			exec := Executor(p, &cost, true, false)
			env := NewEnv(p)
			env.Samplers = []TexFunc{sampler, sampler}
			for i := range env.Inputs {
				env.Inputs[i] = in
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := exec(env); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, w := range []int{4, 8, 16} {
			w := w
			b.Run(fmt.Sprintf("%s/w%d", name, w), func(b *testing.B) {
				lc := p.LaneCompiled(&cost, w)
				if lc == nil {
					b.Fatal("kernel must lane-compile")
				}
				env := NewLaneEnv(p, w)
				env.Samplers = []TexFunc{sampler, sampler}
				for l := 0; l < w; l++ {
					for reg := 0; reg < p.NumInputs; reg++ {
						env.SetInput(l, reg, in)
					}
				}
				env.N = w
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i += w {
					lc.Run(env)
				}
			})
		}
	}
	benchKernel("sum", kernels.Sum(kernels.DefaultOptions))
	sgemm, err := kernels.SgemmPass(1024, 16, kernels.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	benchKernel("sgemm16", sgemm)
	benchKernel("conv3x3", kernels.Conv3x3(1024, 1024, kernels.DefaultOptions))
}
