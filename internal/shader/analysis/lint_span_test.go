package analysis

import (
	"testing"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/shader"
)

// Lint findings must point into the ORIGINAL GLSL source even when the
// offending construct reaches the IR through preprocessor expansion: the
// preprocessor re-stamps macro-body tokens with the use site's position,
// the back end threads that position onto every emitted instruction, and
// the linter reports it.

func TestLintSpanThroughDefine(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
#define SCALE(v) (u_a * (v))
uniform float u_a;
uniform float u_b;
uniform float u_c;
void main() {
	float t = SCALE(u_b);
	float r = t + u_c;
	gl_FragColor = vec4(r);
}
`)
	fs := findByCode(Lint(p, nil), "mad-fusion")
	if len(fs) == 0 {
		t.Fatalf("macro-built mul/add should still trigger mad-fusion; findings: %v", Lint(p, nil))
	}
	if fs[0].Pos.Line != 8 {
		t.Errorf("finding at %v, want line 8 (the addition, in original source)", fs[0].Pos)
	}
}

func TestLintSpanWithDriverDefines(t *testing.T) {
	// Configuration constants injected the -D way (how the kernels pass
	// BLOCK_SIZE) shift nothing: positions stay those of the source text.
	cs, err := glsl.Frontend(`precision mediump float;
uniform float u_x;
void main() {
	float r = min(max(u_x, LO), HI);
	gl_FragColor = vec4(r);
}
`, glsl.CompileOptions{Stage: glsl.StageFragment, Defines: map[string]string{"LO": "0.0", "HI": "1.0"}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := shader.Compile(cs)
	if err != nil {
		t.Fatal(err)
	}
	fs := findByCode(Lint(p, nil), "builtin-clamp")
	if len(fs) == 0 {
		t.Fatalf("min(max(..)..) with -D bounds should trigger builtin-clamp")
	}
	if fs[0].Pos.Line != 4 {
		t.Errorf("finding at %v, want line 4", fs[0].Pos)
	}
}
