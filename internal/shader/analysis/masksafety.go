package analysis

import (
	"fmt"

	"gles2gpgpu/internal/shader"
)

// Mask-safety proof.
//
// The divergence-masked lane engine executes a branchy program by walking
// instructions in program order with a per-lane next-pc; that is only
// sound when program order is a topological order of the instruction
// graph, i.e. every control edge goes forward. The executor probes this
// itself (shader.MaskedFallbackAt), but the analysis derives the same
// verdict independently from the CFG so the lint can cross-check the two:
// a disagreement means either the proof or the engine gate is wrong, and
// is reported loudly.

// MaskSafety returns the analysis-side masked-lane verdict for c's
// program: pc < 0 when every control edge goes forward (the program is
// maskable as far as control flow is concerned), otherwise the first
// offending instruction and why. Opcode-level support is the executor's
// concern and is not checked here.
func MaskSafety(c *CFG) (pc int, reason string) {
	p := c.Prog
	for i := range p.Insts {
		for _, s := range p.InstSuccs(i) {
			if s <= i {
				return i, fmt.Sprintf("backward control edge to pc %d", s)
			}
		}
		// A BR/BRZ whose target is negative has no successor edge in the
		// CFG but is still a backward (or stuck) transfer for the engine.
		in := &p.Insts[i]
		if (in.Op == shader.OpBR || in.Op == shader.OpBRZ) && int(in.Target) <= i {
			return i, fmt.Sprintf("backward control edge to pc %d", int(in.Target))
		}
	}
	if _, ok := c.Acyclic(); !ok {
		// Unreachable when every edge goes forward; kept as a belt-and-
		// braces check of the CFG construction itself.
		return 0, "control-flow graph has a cycle"
	}
	return -1, ""
}
