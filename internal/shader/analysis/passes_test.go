package analysis

import (
	"math"
	"math/rand"
	"testing"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/shader"
)

func TestOptimizeConstFoldAndDCE(t *testing.T) {
	// mov r0, c0 ; mul r1, r0, r0 (unused) ; add o0, r0, r0
	p := &shader.Program{
		Insts: []shader.Inst{
			mov(dtemp(0), cnst(0)),
			{Op: shader.OpMUL, Dst: dtemp(1), A: temp(0), B: temp(0)},
			{Op: shader.OpADD, Dst: shader.DstReg(shader.FileOutput, 0, 4), A: temp(0), B: temp(0)},
		},
		Consts:     [][4]float32{{1, 2, 3, 4}},
		NumTemps:   2,
		NumOutputs: 1,
	}
	o := Optimize(p)
	if o == nil {
		t.Fatal("Optimize returned nil")
	}
	if err := p.SetOptimized(o); err != nil {
		t.Fatalf("SetOptimized: %v", err)
	}
	if o.FoldedConsts == 0 {
		t.Errorf("expected constant folds, got none")
	}
	// The ADD's operands become constants, making both r0's MOV and the
	// unused MUL dead.
	if !o.Dead[0] || !o.Dead[1] {
		t.Errorf("Dead = %v, want instructions 0 and 1 dead", o.Dead)
	}
	if o.Dead[2] {
		t.Errorf("output write must stay live")
	}
	if o.Insts[2].A.File != shader.FileConst {
		t.Errorf("ADD operand not folded: %s", o.Insts[2].A)
	}
}

func TestOptimizeCopyPropagation(t *testing.T) {
	// mov r0, u0.yxzw ; add o0, r0.xxyy, c0 — the use composes swizzles:
	// r0.xxyy through u0.yxzw reads u0.yyxx.
	src := shader.SrcReg(shader.FileUniform, 0)
	src.Swiz = [4]uint8{1, 0, 2, 3}
	use := temp(0)
	use.Swiz = [4]uint8{0, 0, 1, 1}
	p := &shader.Program{
		Insts: []shader.Inst{
			mov(dtemp(0), src),
			{Op: shader.OpADD, Dst: shader.DstReg(shader.FileOutput, 0, 4), A: use, B: cnst(0)},
		},
		Consts:     [][4]float32{{1, 1, 1, 1}},
		NumTemps:   1,
		NumOutputs: 1,
		NumUniform: 1,
	}
	o := Optimize(p)
	if o.PropagatedSrcs == 0 {
		t.Fatalf("expected copy propagation, stats: %+v", o)
	}
	got := o.Insts[1].A
	if got.File != shader.FileUniform || got.Reg != 0 {
		t.Fatalf("operand not redirected to the uniform: %s", got)
	}
	want := [4]uint8{1, 1, 0, 0}
	if got.Swiz != want {
		t.Errorf("composed swizzle = %v, want %v", got.Swiz, want)
	}
	if !o.Dead[0] {
		t.Errorf("bypassed MOV should be dead")
	}
	// Differential: the rewritten program computes identical bits.
	cost := shader.DefaultCostModel()
	if err := p.SetOptimized(o); err != nil {
		t.Fatalf("SetOptimized: %v", err)
	}
	envA, envB := shader.NewEnv(p), shader.NewEnv(p)
	envA.Uniforms[0] = shader.Vec4{10, 20, 30, 40}
	envB.Uniforms[0] = shader.Vec4{10, 20, 30, 40}
	if err := shader.Run(p, envA, &cost); err != nil {
		t.Fatal(err)
	}
	if err := shader.RunOptimized(p, envB, &cost); err != nil {
		t.Fatal(err)
	}
	if envA.Outputs[0] != envB.Outputs[0] {
		t.Errorf("outputs differ: %v vs %v", envA.Outputs[0], envB.Outputs[0])
	}
	if envA.Cycles != envB.Cycles {
		t.Errorf("cycles differ: %d vs %d", envA.Cycles, envB.Cycles)
	}
}

func TestOptimizeNeverTouchesShape(t *testing.T) {
	for _, k := range kernelSuite(t) {
		o := Optimize(k.prog)
		if o == nil {
			continue
		}
		if err := k.prog.SetOptimized(o); err != nil {
			t.Errorf("%s: contract violation: %v", k.name, err)
		}
	}
}

// testKernel pairs a compiled program with a name for diagnostics.
type testKernel struct {
	name string
	prog *shader.Program
}

// kernelSuite compiles the paper's kernels plus hand-written control-flow
// and discard shaders — the corpus every differential test runs over.
func kernelSuite(t *testing.T) []testKernel {
	t.Helper()
	var ks []testKernel
	add := func(name, src string) {
		ks = append(ks, testKernel{name, compileGLSL(t, src)})
	}
	add("sum", kernels.Sum(kernels.DefaultOptions))
	add("sum-fp24", kernels.Sum(kernels.FP24Options))
	add("saxpy", kernels.Saxpy(kernels.DefaultOptions))
	add("transpose", kernels.Transpose(kernels.DefaultOptions))
	add("conv3x3", kernels.Conv3x3(16, 16, kernels.DefaultOptions))
	add("jacobi", kernels.Jacobi(16, 16, kernels.DefaultOptions))
	if src, err := kernels.SgemmPass(64, 8, kernels.DefaultOptions); err == nil {
		add("sgemm-64-8", src)
	} else {
		t.Fatalf("sgemm: %v", err)
	}
	if src, err := kernels.Reduce2x2(16, kernels.DefaultOptions); err == nil {
		add("reduce", src)
	} else {
		t.Fatalf("reduce: %v", err)
	}
	add("branchy-discard", `
precision mediump float;
uniform float u0;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	if (v_tex.x < 0.25) {
		discard;
	}
	float t = u0 * v_tex.x;
	float unused = t * 3.0;
	vec2 a = v_tex * 2.0;
	float s = texture2D(text0, a).x;
	if (u0 > 0.5) {
		s = s + t;
	} else {
		s = s - t;
	}
	gl_FragColor = vec4(s, a.y, u0, 1.0);
}
`)
	// Vertex stage exercises the other compilation path.
	cs, err := glsl.Frontend(kernels.VertexShader, glsl.CompileOptions{Stage: glsl.StageVertex})
	if err != nil {
		t.Fatalf("vertex frontend: %v", err)
	}
	vp, err := shader.Compile(cs)
	if err != nil {
		t.Fatalf("vertex compile: %v", err)
	}
	ks = append(ks, testKernel{"vertex-quad", vp})
	return ks
}

// fillEnv populates an Env deterministically from rng and installs a
// deterministic sampler.
func fillEnv(env *shader.Env, rng *rand.Rand) {
	for i := range env.Uniforms {
		for c := 0; c < 4; c++ {
			env.Uniforms[i][c] = rng.Float32()
		}
	}
	for i := range env.Inputs {
		for c := 0; c < 4; c++ {
			env.Inputs[i][c] = rng.Float32()
		}
	}
	env.Sample = func(idx int, u, v float32) shader.Vec4 {
		// A cheap deterministic hash of the arguments.
		h := math.Float32bits(u)*2654435761 + math.Float32bits(v)*40503 + uint32(idx)*97
		f := func(s uint32) float32 { return float32((h>>s)&0xFF) / 255 }
		return shader.Vec4{f(0), f(8), f(16), f(24)}
	}
}

// TestPassParity is the core differential harness: for every kernel and
// many random invocations, the four execution strategies — interpreter,
// interpreter+passes, JIT, JIT+passes — must agree bit-for-bit on outputs
// and exactly on Cycles, TexFetches and Discarded.
func TestPassParity(t *testing.T) {
	const invocations = 64
	cost := shader.DefaultCostModel()
	for _, k := range kernelSuite(t) {
		p := k.prog
		if o := Optimize(p); o != nil {
			if err := p.SetOptimized(o); err != nil {
				t.Fatalf("%s: SetOptimized: %v", k.name, err)
			}
		}
		execs := []struct {
			name string
			run  func(*shader.Env) error
		}{
			{"interp", shader.Executor(p, &cost, false, false)},
			{"interp+passes", shader.Executor(p, &cost, false, true)},
			{"jit", shader.Executor(p, &cost, true, false)},
			{"jit+passes", shader.Executor(p, &cost, true, true)},
		}
		for inv := 0; inv < invocations; inv++ {
			type result struct {
				outs       []shader.Vec4
				cycles     int64
				texFetches int64
				discarded  bool
			}
			var ref result
			for ei, ex := range execs {
				rng := rand.New(rand.NewSource(int64(inv)*7919 + 1))
				env := shader.NewEnv(p)
				fillEnv(env, rng)
				env.Reset()
				if err := ex.run(env); err != nil {
					t.Fatalf("%s/%s inv %d: %v", k.name, ex.name, inv, err)
				}
				got := result{
					outs:       append([]shader.Vec4(nil), env.Outputs...),
					cycles:     env.Cycles,
					texFetches: env.TexFetches,
					discarded:  env.Discarded,
				}
				if ei == 0 {
					ref = got
					continue
				}
				if got.cycles != ref.cycles {
					t.Fatalf("%s/%s inv %d: cycles %d != interp %d",
						k.name, ex.name, inv, got.cycles, ref.cycles)
				}
				if got.texFetches != ref.texFetches {
					t.Fatalf("%s/%s inv %d: texFetches %d != interp %d",
						k.name, ex.name, inv, got.texFetches, ref.texFetches)
				}
				if got.discarded != ref.discarded {
					t.Fatalf("%s/%s inv %d: discarded %v != interp %v",
						k.name, ex.name, inv, got.discarded, ref.discarded)
				}
				if got.discarded {
					continue // outputs of discarded fragments are never read
				}
				for r := range ref.outs {
					for c := 0; c < 4; c++ {
						gb := math.Float32bits(got.outs[r][c])
						rb := math.Float32bits(ref.outs[r][c])
						if gb != rb {
							t.Fatalf("%s/%s inv %d: output o%d.%d = %v (%08x) != interp %v (%08x)",
								k.name, ex.name, inv, r, c,
								got.outs[r][c], gb, ref.outs[r][c], rb)
						}
					}
				}
			}
		}
	}
}

// TestPassesDoWork guards against the pipeline silently becoming a no-op:
// across the kernel suite the passes must find something to improve.
func TestPassesDoWork(t *testing.T) {
	total := 0
	for _, k := range kernelSuite(t) {
		if o := Optimize(k.prog); o != nil {
			total += o.DeadInsts + o.FoldedConsts + o.PropagatedSrcs
		}
	}
	if total == 0 {
		t.Fatalf("pass pipeline found nothing across the whole kernel suite")
	}
}
