package analysis

import (
	"math"

	"gles2gpgpu/internal/shader"
)

// Sparse conditional constant propagation.
//
// The lattice per register component is {CONST(bits), BOT}: a component is
// constant only when every reaching path assigns it the same 32-bit value
// originating from the program's constant pool. There is no optimistic
// "undefined" entry state for temps — a program compiled with
// WritesBeforeReads proven may skip Env.Reset zeroing, so an unwritten
// temp's entry value is genuinely unknown and must start at BOT.
//
// The "conditional" part is block reachability with edge pruning: a BRZ
// whose condition is constant propagates state only along the taken edge,
// and unreached blocks contribute nothing to joins. Constants are folded
// with shader.EvalInst — the analysis-time value is computed by the same
// VM that would compute it at runtime, so folding is bit-exact by
// construction (including NaN payloads, denormals and division by zero).

// constVal is one lattice element: a known 32-bit value or BOT.
type constVal struct {
	known bool
	bits  uint32
}

func (v constVal) neg() constVal {
	if !v.known {
		return v
	}
	return constVal{known: true, bits: v.bits ^ 0x80000000}
}

func meetConst(a, b constVal) constVal {
	if a.known && b.known && a.bits == b.bits {
		return a
	}
	return constVal{}
}

// OperandConst is the constness verdict for one source operand: OK when
// every lane the instruction reads is a known constant, with V holding the
// post-swizzle, post-negation lane values (unread lanes are zero).
type OperandConst struct {
	OK bool
	V  shader.Vec4
}

// SCCP holds the solved constant-propagation facts for one program.
type SCCP struct {
	// Reachable[i] reports that instruction i can execute (its block is
	// reachable from entry under constant-condition edge pruning).
	Reachable []bool
	// Operand[i][k] is the constness of operand k (0=A, 1=B, 2=C) of
	// instruction i; OK is always false for operands the opcode ignores.
	Operand [][3]OperandConst
	// AlwaysDiscards lists reachable KIL instructions whose condition is a
	// non-zero constant: every fragment reaching them is discarded.
	AlwaysDiscards []int

	cfg *CFG
}

// SolveSCCP runs the analysis over c.
func SolveSCCP(c *CFG) *SCCP {
	p := c.Prog
	n := len(p.Insts)
	s := &SCCP{
		Reachable: make([]bool, n),
		Operand:   make([][3]OperandConst, n),
		cfg:       c,
	}
	if n == 0 {
		return s
	}
	comps := 4 * (p.NumTemps + p.NumOutputs)
	compOf := func(file shader.RegFile, reg uint16, cc int) int {
		if file == shader.FileTemp {
			return int(reg)*4 + cc
		}
		return (p.NumTemps+int(reg))*4 + cc
	}

	// laneVal returns the post-swizzle, pre-negation value operand src
	// delivers in lane l under state.
	laneVal := func(state []constVal, src shader.Src, l int) constVal {
		cc := int(src.Swiz[l] & 3)
		switch src.File {
		case shader.FileConst:
			if int(src.Reg) < len(p.Consts) {
				return constVal{known: true, bits: math.Float32bits(p.Consts[src.Reg][cc])}
			}
			return constVal{}
		case shader.FileTemp, shader.FileOutput:
			return state[compOf(src.File, src.Reg, cc)]
		default: // uniforms and inputs vary per draw/invocation
			return constVal{}
		}
	}

	// evalStep advances state across instruction i and returns the
	// post-negation constness of A's x lane (the BRZ/KIL condition).
	evalStep := func(state []constVal, i int) (cond constVal) {
		in := &p.Insts[i]
		la, lb, lc := in.SrcLanes()
		lanes := [3]uint8{la, lb, lc}
		srcs := [3]shader.Src{in.A, in.B, in.C}
		var known [3][4]bool
		var base [3]shader.Vec4
		for k := 0; k < 3; k++ {
			for l := 0; l < 4; l++ {
				if lanes[k]&(1<<uint(l)) == 0 {
					continue
				}
				v := laneVal(state, srcs[k], l)
				known[k][l] = v.known
				if v.known {
					// Store at the pre-swizzle position so EvalInst's own
					// swizzle application lands it back in lane l.
					base[k][srcs[k].Swiz[l]&3] = math.Float32frombits(v.bits)
				}
			}
		}
		if in.Op == shader.OpBRZ || in.Op == shader.OpKIL {
			if known[0][0] {
				cond = laneVal(state, in.A, 0)
				if in.A.Neg {
					cond = cond.neg()
				}
			}
			return cond
		}
		mask := in.WriteMask()
		if mask == 0 || (in.Dst.File != shader.FileTemp && in.Dst.File != shader.FileOutput) {
			return cond
		}
		// Which dst lanes have all their dependencies constant?
		reduction := in.Op == shader.OpDP2 || in.Op == shader.OpDP3 || in.Op == shader.OpDP4
		allDepsKnown := true
		for k := 0; k < 3; k++ {
			for l := 0; l < 4; l++ {
				if lanes[k]&(1<<uint(l)) != 0 && !known[k][l] {
					allDepsKnown = false
				}
			}
		}
		var result shader.Vec4
		evaluated := false
		for cc := 0; cc < 4; cc++ {
			if mask&(1<<uint(cc)) == 0 {
				continue
			}
			j := compOf(in.Dst.File, in.Dst.Reg, cc)
			laneOK := allDepsKnown
			if !reduction && !laneOK {
				// Componentwise: lane cc depends only on lane cc of each
				// read operand.
				laneOK = true
				for k := 0; k < 3; k++ {
					if lanes[k]&(1<<uint(cc)) != 0 && !known[k][cc] {
						laneOK = false
					}
				}
			}
			if !laneOK || in.Op == shader.OpTEX {
				state[j] = constVal{}
				continue
			}
			if !evaluated {
				var ok bool
				result, ok = shader.EvalInst(*in, base[0], base[1], base[2])
				if !ok {
					state[j] = constVal{}
					continue
				}
				evaluated = true
			}
			state[j] = constVal{known: true, bits: math.Float32bits(result[cc])}
		}
		return cond
	}

	// Block-level fixpoint with reachability and BRZ edge pruning.
	nb := len(c.Blocks)
	blockIn := make([][]constVal, nb)
	reached := make([]bool, nb)
	blockIn[0] = make([]constVal, comps) // entry: all BOT
	reached[0] = true
	work := []int{0}
	inWork := make([]bool, nb)
	inWork[0] = true
	state := make([]constVal, comps)
	propagate := func(sb int, state []constVal) bool {
		if !reached[sb] {
			reached[sb] = true
			blockIn[sb] = append([]constVal(nil), state...)
			return true
		}
		changed := false
		for j := range state {
			if nv := meetConst(blockIn[sb][j], state[j]); nv != blockIn[sb][j] {
				blockIn[sb][j] = nv
				changed = true
			}
		}
		return changed
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false
		copy(state, blockIn[b])
		var cond constVal
		for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
			cond = evalStep(state, i)
		}
		last := c.Blocks[b].End - 1
		for _, sb := range c.Blocks[b].Succs {
			if p.Insts[last].Op == shader.OpBRZ && cond.known {
				// Constant condition: only the taken edge is feasible.
				taken := c.BlockOf[int(p.Insts[last].Target)]
				if math.Float32frombits(cond.bits) != 0 {
					taken = c.BlockOf[last+1]
				}
				if sb != taken {
					continue
				}
			}
			if propagate(sb, state) && !inWork[sb] {
				work = append(work, sb)
				inWork[sb] = true
			}
		}
	}

	// Record per-instruction facts under the solved states.
	for b := range c.Blocks {
		if !reached[b] {
			continue
		}
		copy(state, blockIn[b])
		for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
			s.Reachable[i] = true
			in := &p.Insts[i]
			la, lb, lc := in.SrcLanes()
			lanes := [3]uint8{la, lb, lc}
			srcs := [3]shader.Src{in.A, in.B, in.C}
			for k := 0; k < 3; k++ {
				if lanes[k] == 0 {
					continue
				}
				oc := OperandConst{OK: true}
				for l := 0; l < 4; l++ {
					if lanes[k]&(1<<uint(l)) == 0 {
						continue
					}
					v := laneVal(state, srcs[k], l)
					if srcs[k].Neg {
						v = v.neg()
					}
					if !v.known {
						oc.OK = false
						break
					}
					oc.V[l] = math.Float32frombits(v.bits)
				}
				if oc.OK {
					s.Operand[i][k] = oc
				}
			}
			cond := evalStep(state, i)
			if in.Op == shader.OpKIL && cond.known && math.Float32frombits(cond.bits) != 0 {
				s.AlwaysDiscards = append(s.AlwaysDiscards, i)
			}
		}
	}
	return s
}
