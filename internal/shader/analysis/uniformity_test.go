package analysis

import (
	"testing"

	"gles2gpgpu/internal/shader"
)

func inp(r int) shader.Src  { return shader.SrcReg(shader.FileInput, r) }
func unif(r int) shader.Src { return shader.SrcReg(shader.FileUniform, r) }

// varyingDiamondIR branches on an input component and writes a constant in
// only one arm:
//
//	0: mov r0, i0        ; varying condition
//	1: brz r0, 3
//	2: mov r1, c0        ; runs for some fragments only
//	3: mov o0, r1        ; join
func varyingDiamondIR() *shader.Program {
	return &shader.Program{
		Insts: []shader.Inst{
			mov(dtemp(0), inp(0)),
			{Op: shader.OpBRZ, A: temp(0), Target: 3},
			mov(dtemp(1), cnst(0)),
			mov(shader.DstReg(shader.FileOutput, 0, 4), temp(1)),
		},
		Consts:     [][4]float32{{1, 1, 1, 1}},
		NumTemps:   2,
		NumInputs:  1,
		NumOutputs: 1,
	}
}

func TestUniformityVaryingBranch(t *testing.T) {
	c := BuildCFG(varyingDiamondIR())
	u := SolveUniformity(c, SolveSCCP(c))
	if len(u.VaryingBranches) != 1 || u.VaryingBranches[0] != 1 {
		t.Fatalf("VaryingBranches = %v, want [1]", u.VaryingBranches)
	}
	if !u.OperandVarying[1][0] {
		t.Errorf("branch condition reads an input; should be varying")
	}
	if !u.Divergent[2] {
		t.Errorf("write in the skippable arm should be divergent")
	}
	if u.Divergent[3] {
		t.Errorf("the join post-dominates the branch; not divergent")
	}
	// The joined r1 varies even though the written value is a constant:
	// fragments that skipped instruction 2 observe the old value.
	if !u.OperandVarying[3][0] {
		t.Errorf("value written under varying control should read as varying")
	}
}

func TestUniformityUniformBranch(t *testing.T) {
	p := varyingDiamondIR()
	p.Insts[0] = mov(dtemp(0), unif(0)) // condition now draw-constant
	c := BuildCFG(p)
	u := SolveUniformity(c, SolveSCCP(c))
	if len(u.VaryingBranches) != 0 {
		t.Fatalf("VaryingBranches = %v, want none (uniform condition)", u.VaryingBranches)
	}
	for i := range p.Insts {
		if u.Divergent[i] {
			t.Errorf("inst %d divergent under a uniform branch", i)
		}
	}
	// Every fragment takes the same arm, so the join read is uniform.
	if u.OperandVarying[3][0] {
		t.Errorf("join read should stay uniform when control is uniform")
	}
}

func TestUniformityGLSLDivergentDiscard(t *testing.T) {
	p := compileGLSL(t, `
precision mediump float;
varying vec2 v_tex;
void main() {
	if (v_tex.x < 0.5) { discard; }
	gl_FragColor = vec4(v_tex, 0.0, 1.0);
}`)
	c := BuildCFG(p)
	u := SolveUniformity(c, SolveSCCP(c))
	kil := -1
	for i := range p.Insts {
		if p.Insts[i].Op == shader.OpKIL {
			kil = i
		}
	}
	if kil < 0 {
		t.Fatal("no KIL emitted for discard")
	}
	if !u.OperandVarying[kil][0] && !u.Divergent[kil] {
		t.Errorf("discard depending on a varying should be varying or divergent")
	}
}

func TestMaskSafetyMatchesExecutorProbe(t *testing.T) {
	// Forward-only diamond: both the analysis and the executor accept it.
	c := BuildCFG(diamond())
	if pc, reason := MaskSafety(c); pc >= 0 {
		t.Errorf("diamond rejected at pc %d: %s", pc, reason)
	}
	if pc, _ := shader.MaskedFallbackAt(diamond()); pc >= 0 {
		t.Errorf("executor probe rejects the diamond at pc %d", pc)
	}

	// Backward branch: both must reject, at the same instruction.
	loop := &shader.Program{
		Insts: []shader.Inst{
			mov(dtemp(0), inp(0)),
			{Op: shader.OpBRZ, A: temp(0), Target: 0},
			mov(shader.DstReg(shader.FileOutput, 0, 4), temp(0)),
		},
		NumTemps:   1,
		NumInputs:  1,
		NumOutputs: 1,
	}
	pc, reason := MaskSafety(BuildCFG(loop))
	if pc != 1 {
		t.Fatalf("MaskSafety(loop) = %d (%s), want pc 1", pc, reason)
	}
	if ppc, _ := shader.MaskedFallbackAt(loop); ppc != pc {
		t.Errorf("analysis (pc %d) and executor probe (pc %d) disagree", pc, ppc)
	}
}
