package analysis

// Fusion eligibility: the proof that lets the pipeline planner
// (internal/pipeline) replace "render stage A to a texture, sample it from
// stage B" with one composed program (shader.ComposeFragments) while
// staying bit-identical. A stage may take part in fusion only when it is
// *elementwise*: straight-line, discard-free, writing its full output on
// every invocation, and sampling every texture exclusively at its own texel
// — proven by SolveFootprint identity chains over the fullscreen-quad
// varying. Under the engine's NEAREST+CLAMP samplers and equal input/output
// sizes, such a stage's pixel (x,y) depends only on input texels (x,y), so
// the intermediate texture can be collapsed into a register plus an OpQUANT
// round trip.

import (
	"fmt"

	"gles2gpgpu/internal/shader"
)

// Elementwise reports whether p (a fragment program) is provably
// elementwise with respect to the named fullscreen-quad varying (the core
// engine's "v_tex"): every texture fetch on every slot reads exactly
// (varying.x, varying.y), with no offsets, scales, or dependent chains.
// When ineligible, reason is a short stable token — suitable for the
// glslint fusion-blocked(reason) finding — optionally followed by detail.
func Elementwise(p *shader.Program, varying string) (ok bool, reason string) {
	if p.UsesDiscard {
		return false, "discard"
	}
	if p.NumOutputs != 1 {
		return false, "multi-output"
	}
	if p.NumInputs != len(p.Inputs) {
		return false, "wide-input"
	}
	for pc := range p.Insts {
		switch p.Insts[pc].Op {
		case shader.OpBR:
			// Forward unconditional branches are the joins left by
			// function inlining: deterministic, so still elementwise.
			if int(p.Insts[pc].Target) <= pc {
				return false, fmt.Sprintf("control-flow(pc %d)", pc)
			}
		case shader.OpBRZ:
			return false, fmt.Sprintf("control-flow(pc %d)", pc)
		case shader.OpRET:
			if pc != len(p.Insts)-1 {
				return false, fmt.Sprintf("early-return(pc %d)", pc)
			}
		}
	}
	if !p.WritesBeforeReads || !p.OutputsAlwaysWritten {
		return false, "liveness"
	}
	if len(p.Samplers) == 0 {
		return true, ""
	}
	vt, found := p.LookupInput(varying)
	if !found {
		return false, "no-quad-varying"
	}
	cfg := BuildCFG(p)
	du := SolveDefUse(cfg)
	sccp := SolveSCCP(cfg)
	foot := SolveFootprint(cfg, du, sccp)
	for si := range foot.Slots {
		slot := &foot.Slots[si]
		if !slot.Provable {
			return false, fmt.Sprintf("unprovable-footprint(slot %d, pc %d: %s)", si, slot.Pc, slot.Reason)
		}
		for _, pair := range slot.Coords {
			if !identityCoord(pair.U, vt.Reg, 0) || !identityCoord(pair.V, vt.Reg, 1) {
				return false, fmt.Sprintf("offset-sampling(slot %d, pc %d)", si, pair.Pc)
			}
		}
	}
	return true, ""
}

// identityCoord reports whether a proven coordinate is exactly the given
// input register component: a chain with a varying base and zero steps.
func identityCoord(c TexCoord, reg, comp int) bool {
	return c.Known && c.HasInput && c.InReg == reg && c.InComp == comp && len(c.Steps) == 0
}
