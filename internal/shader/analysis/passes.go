package analysis

import (
	"gles2gpgpu/internal/dataflow"
	"gles2gpgpu/internal/shader"
)

// The verified optimisation passes: copy/constant propagation and
// iterative dead-code elimination.
//
// Both passes observe the OptProgram contract (see internal/shader/opt.go):
// instruction shapes, cycle charges and texture-fetch counts are
// untouched, so every simulated figure is bit-identical with passes on or
// off — only the host does less work. Soundness rests on three arguments:
//
//   - Constant propagation rewrites an operand only when SCCP proved every
//     lane it reads carries one specific 32-bit pattern on every feasible
//     path, and the replacement value was computed by shader.EvalInst —
//     the runtime VM itself — so the substituted bits are the bits the
//     original read would have produced.
//   - Copy propagation bypasses only MOVs from read-only files (uniforms,
//     inputs, the constant pool). The unique reaching definition guarantees
//     the MOV executes on every path to the use; read-only sources cannot
//     be clobbered between the MOV and the use, so reading through the MOV
//     is indistinguishable from reading its source.
//   - A write is marked dead only when no feasible path reaches a read of
//     any component it writes before that component is overwritten.
//     Skipping it therefore changes no observable value; and because any
//     read that could observe a stale register would have made the write
//     live, skipped writes cannot leak state between invocations either.
//
// The differential tests complete the verification empirically: bit-exact
// framebuffer bytes and identical Cycles/TexFetches/Discarded across
// {interpreter, JIT} × {passes on, off} × worker counts.

// Optimize runs the pass pipeline on p and returns the optimised execution
// form, or nil for an empty program. The caller attaches the result with
// p.SetOptimized.
func Optimize(p *shader.Program) *shader.OptProgram {
	if len(p.Insts) == 0 {
		return nil
	}
	cfg := BuildCFG(p)
	sccp := SolveSCCP(cfg)
	du := SolveDefUse(cfg)

	o := &shader.OptProgram{
		Insts:  append([]shader.Inst(nil), p.Insts...),
		Consts: append([][4]float32(nil), p.Consts...),
		Dead:   make([]bool, len(p.Insts)),
	}
	intern := make(map[[4]float32]uint16, len(o.Consts))
	for i, c := range o.Consts {
		if _, ok := intern[c]; !ok {
			intern[c] = uint16(i)
		}
	}
	internConst := func(v shader.Vec4) uint16 {
		key := [4]float32(v)
		if r, ok := intern[key]; ok {
			return r
		}
		r := uint16(len(o.Consts))
		o.Consts = append(o.Consts, key)
		intern[key] = r
		return r
	}

	// Pass 1: constant and copy propagation, per source operand.
	for i := range o.Insts {
		if !sccp.Reachable[i] {
			continue
		}
		in := &o.Insts[i]
		la, lb, lc := in.SrcLanes()
		for k, lanes := range [3]uint8{la, lb, lc} {
			if lanes == 0 {
				continue
			}
			s := srcOperand(in, k)
			if oc := sccp.Operand[i][k]; oc.OK && s.File != shader.FileConst {
				*s = shader.Src{File: shader.FileConst, Reg: internConst(oc.V), Swiz: shader.IdentitySwiz}
				o.FoldedConsts++
				continue
			}
			d := du.OperandDef(i, k)
			if d < 0 {
				continue
			}
			def := &p.Insts[d]
			if def.Op != shader.OpMOV || !readOnlyFile(def.A.File) {
				continue
			}
			// The MOV wrote every lane we read (it is their definition);
			// compose its swizzle and negation into the use.
			ns := def.A
			for l := 0; l < 4; l++ {
				ns.Swiz[l] = def.A.Swiz[s.Swiz[l]&3] & 3
			}
			ns.Neg = s.Neg != def.A.Neg
			*s = ns
			o.PropagatedSrcs++
		}
	}

	// Pass 2: iterative dead-code elimination over the rewritten operands.
	// Liveness is recomputed after each marking round because removing a
	// dead instruction's uses can kill the instructions feeding it.
	bits := 4 * (p.NumTemps + p.NumOutputs)
	bitOf := func(file shader.RegFile, reg uint16, cc int) int {
		if file == shader.FileTemp {
			return int(reg)*4 + cc
		}
		return (p.NumTemps+int(reg))*4 + cc
	}
	outputBits := dataflow.NewBitSet(bits)
	for r := 0; r < p.NumOutputs; r++ {
		for cc := 0; cc < 4; cc++ {
			outputBits.Set(bitOf(shader.FileOutput, uint16(r), cc))
		}
	}
	n := len(o.Insts)
	isExit := func(i int) bool {
		if o.Insts[i].Op == shader.OpRET {
			return true
		}
		return i == n-1 && o.Insts[i].Op != shader.OpBR
	}
	use := make([]dataflow.BitSet, n)
	def := make([]dataflow.BitSet, n)
	for i := range o.Insts {
		use[i] = dataflow.NewBitSet(bits)
		def[i] = dataflow.NewBitSet(bits)
		in := &o.Insts[i]
		la, lb, lc := in.SrcLanes()
		for k, lanes := range [3]uint8{la, lb, lc} {
			s := *srcOperand(in, k)
			if s.File != shader.FileTemp && s.File != shader.FileOutput {
				continue
			}
			for l := 0; l < 4; l++ {
				if lanes&(1<<uint(l)) != 0 {
					use[i].Set(bitOf(s.File, s.Reg, int(s.Swiz[l]&3)))
				}
			}
		}
		if mask := in.WriteMask(); mask != 0 &&
			(in.Dst.File == shader.FileTemp || in.Dst.File == shader.FileOutput) {
			for cc := 0; cc < 4; cc++ {
				if mask&(1<<uint(cc)) != 0 {
					def[i].Set(bitOf(in.Dst.File, in.Dst.Reg, cc))
				}
			}
		}
	}
	for {
		prob := &dataflow.Problem{
			N:     n,
			Bits:  bits,
			Succs: p.InstSuccs,
			Transfer: func(i int, out, in dataflow.BitSet) {
				in.CopyFrom(out)
				if isExit(i) {
					in.Or(outputBits)
				}
				for w := range in {
					in[w] &^= def[i][w]
				}
				if !o.Dead[i] {
					in.Or(use[i])
				}
			},
		}
		liveOut := prob.Backward()
		changed := false
		for i := range o.Insts {
			if o.Dead[i] {
				continue
			}
			in := &o.Insts[i]
			mask := in.WriteMask()
			if mask == 0 || (in.Dst.File != shader.FileTemp && in.Dst.File != shader.FileOutput) {
				continue
			}
			anyLive := false
			for cc := 0; cc < 4; cc++ {
				if mask&(1<<uint(cc)) == 0 {
					continue
				}
				bit := bitOf(in.Dst.File, in.Dst.Reg, cc)
				// The solver's out-sets do not include the exit boundary
				// (it is folded into Transfer, which models the read as
				// happening after the exit instruction): an exit's own
				// output write is observable.
				if liveOut[i].Get(bit) || (isExit(i) && outputBits.Get(bit)) {
					anyLive = true
					break
				}
			}
			if !anyLive {
				o.Dead[i] = true
				o.DeadInsts++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return o
}

// srcOperand returns a pointer to operand k (0=A, 1=B, 2=C) of in.
func srcOperand(in *shader.Inst, k int) *shader.Src {
	switch k {
	case 0:
		return &in.A
	case 1:
		return &in.B
	default:
		return &in.C
	}
}

// readOnlyFile reports whether a register file cannot be written by the
// program (its contents are invariant for the whole invocation).
func readOnlyFile(f shader.RegFile) bool {
	switch f {
	case shader.FileUniform, shader.FileInput, shader.FileConst:
		return true
	}
	return false
}
