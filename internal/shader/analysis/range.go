package analysis

import (
	"math"

	"gles2gpgpu/internal/shader"
)

// Value-range analysis.
//
// The lattice per register component is an interval [Lo, Hi] of attainable
// float32 values (tracked as float64 endpoints) plus a may-be-NaN flag;
// top is [-inf, +inf] with NaN possible. The analysis composes with SCCP:
// operands SCCP proved constant contribute point intervals, and
// SCCP-unreachable code is skipped. Transfer functions are sound outward
// enclosures, not exact images — every endpoint computed from interval
// arithmetic is widened by one float32 ulp so the runtime's
// round-to-nearest float32 results provably stay inside, and any operator
// without a careful enclosure returns top. "Provably X" findings
// (provably-dead-clamp) may therefore miss, but never lie.
//
// The solve runs one pass over a topological order of the CFG, joining
// interval states at block entries; BRZ edges pruned by SCCP's constant
// conditions propagate nothing. Cyclic CFGs (never emitted by the GLSL
// back end, whose loops are fully unrolled, but constructible by hand)
// report AllTop instead of iterating to a widened fixpoint: the clients —
// dead-clamp proofs and branch-condition boundedness for the masked lane
// engine's termination story — only care about the acyclic case, where
// every path executes at most len(Insts) instructions and the interval
// facts are exact joins over the finitely many paths.

// Interval is one lattice element: the closed float64 enclosure of a
// component's attainable float32 values, plus NaN possibility. Lo > Hi
// encodes the empty interval (a value that is always NaN).
type Interval struct {
	Lo, Hi float64
	NaN    bool
}

// TopInterval is the no-information element.
func TopInterval() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1), NaN: true}
}

func pointInterval(v float64) Interval {
	if math.IsNaN(v) {
		return Interval{Lo: math.Inf(1), Hi: math.Inf(-1), NaN: true}
	}
	return Interval{Lo: v, Hi: v}
}

// Bounded reports that every value in the interval is a finite non-NaN
// float32 — the proof obligation for "this branch condition cannot be NaN
// or infinite".
func (iv Interval) Bounded() bool {
	return !iv.NaN && !math.IsInf(iv.Lo, 0) && !math.IsInf(iv.Hi, 0) && iv.Lo <= iv.Hi
}

func (iv Interval) empty() bool { return iv.Lo > iv.Hi }

func (iv Interval) isTop() bool {
	return iv.NaN && math.IsInf(iv.Lo, -1) && math.IsInf(iv.Hi, 1)
}

func joinInterval(a, b Interval) Interval {
	if a.empty() {
		b.NaN = b.NaN || a.NaN
		return b
	}
	if b.empty() {
		a.NaN = a.NaN || b.NaN
		return a
	}
	return Interval{Lo: math.Min(a.Lo, b.Lo), Hi: math.Max(a.Hi, b.Hi), NaN: a.NaN || b.NaN}
}

func (iv Interval) neg() Interval {
	if iv.empty() {
		return iv
	}
	return Interval{Lo: -iv.Hi, Hi: -iv.Lo, NaN: iv.NaN}
}

// widen pushes the endpoints one float32 ulp outward, absorbing both the
// float64 rounding of the endpoint computation and the runtime's
// round-to-nearest float32 of results strictly between computed endpoints.
func widen(iv Interval) Interval {
	if iv.empty() {
		return iv
	}
	if !math.IsInf(iv.Lo, 0) {
		iv.Lo = float64(math.Nextafter32(float32(iv.Lo), float32(math.Inf(-1))))
	}
	if !math.IsInf(iv.Hi, 0) {
		iv.Hi = float64(math.Nextafter32(float32(iv.Hi), float32(math.Inf(1))))
	}
	return iv
}

// contains0 and hasInf feed the 0*inf / inf-inf NaN checks that corner
// evaluation alone can miss (the NaN-producing operand pair can lie
// strictly inside the intervals).
func (iv Interval) contains0() bool { return iv.Lo <= 0 && iv.Hi >= 0 }
func (iv Interval) hasInf() bool    { return math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) }

func addIntervals(a, b Interval) Interval {
	if a.empty() || b.empty() {
		return TopInterval()
	}
	nan := a.NaN || b.NaN || (a.hasInf() && b.hasInf())
	return widen(Interval{Lo: a.Lo + b.Lo, Hi: a.Hi + b.Hi, NaN: nan})
}

func subIntervals(a, b Interval) Interval { return addIntervals(a, b.neg()) }

func mulIntervals(a, b Interval) Interval {
	if a.empty() || b.empty() {
		return TopInterval()
	}
	nan := a.NaN || b.NaN ||
		(a.hasInf() && b.contains0()) || (b.hasInf() && a.contains0())
	c := [4]float64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		if math.IsNaN(v) {
			nan = true
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsNaN(c[0]) {
		return TopInterval()
	}
	return widen(Interval{Lo: lo, Hi: hi, NaN: nan})
}

func minIntervals(a, b Interval) Interval {
	if a.empty() || b.empty() {
		return TopInterval()
	}
	return Interval{Lo: math.Min(a.Lo, b.Lo), Hi: math.Min(a.Hi, b.Hi), NaN: a.NaN || b.NaN}
}

func maxIntervals(a, b Interval) Interval {
	if a.empty() || b.empty() {
		return TopInterval()
	}
	return Interval{Lo: math.Max(a.Lo, b.Lo), Hi: math.Max(a.Hi, b.Hi), NaN: a.NaN || b.NaN}
}

// monotoneUnary encloses a weakly monotone increasing f over iv, widened.
func monotoneUnary(iv Interval, f func(float64) float64, nanIn bool) Interval {
	if iv.empty() {
		return TopInterval()
	}
	lo, hi := f(iv.Lo), f(iv.Hi)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return TopInterval()
	}
	return widen(Interval{Lo: lo, Hi: hi, NaN: iv.NaN || nanIn})
}

// Ranges holds the solved interval facts for one program.
type Ranges struct {
	// Operand[i][k][l] is the interval of post-swizzle, post-negation lane
	// l of operand k of instruction i (top for unread lanes).
	Operand [][3][4]Interval
	// AllTop is set for cyclic CFGs, where the single-pass solve does not
	// apply and every fact is top.
	AllTop bool

	cfg *CFG
}

// SolveRanges runs the analysis over c, composing with sccp (required).
func SolveRanges(c *CFG, sccp *SCCP) *Ranges {
	p := c.Prog
	n := len(p.Insts)
	r := &Ranges{Operand: make([][3][4]Interval, n), cfg: c}
	for i := range r.Operand {
		for k := 0; k < 3; k++ {
			for l := 0; l < 4; l++ {
				r.Operand[i][k][l] = TopInterval()
			}
		}
	}
	if n == 0 {
		return r
	}
	topo, acyclic := c.Acyclic()
	if !acyclic {
		r.AllTop = true
		return r
	}
	comps := 4 * (p.NumTemps + p.NumOutputs)
	compOf := func(file shader.RegFile, reg uint16, cc int) int {
		if file == shader.FileTemp {
			return int(reg)*4 + cc
		}
		return (p.NumTemps+int(reg))*4 + cc
	}

	laneIv := func(state []Interval, src shader.Src, l int) Interval {
		cc := int(src.Swiz[l] & 3)
		var iv Interval
		switch src.File {
		case shader.FileConst:
			if int(src.Reg) < len(p.Consts) {
				iv = pointInterval(float64(p.Consts[src.Reg][cc]))
			} else {
				iv = TopInterval()
			}
		case shader.FileTemp, shader.FileOutput:
			iv = state[compOf(src.File, src.Reg, cc)]
		default: // uniforms and inputs: any float32
			iv = TopInterval()
		}
		if src.Neg {
			iv = iv.neg()
		}
		return iv
	}

	// operandIv resolves lane l of operand k of instruction i: the SCCP
	// constant when proven (exact point interval), else the dataflow state.
	operandIv := func(state []Interval, i, k, l int, src shader.Src) Interval {
		if oc := sccp.Operand[i][k]; oc.OK {
			return pointInterval(float64(oc.V[l]))
		}
		return laneIv(state, src, l)
	}

	// resultIv computes the written interval of one destination lane.
	resultIv := func(in *shader.Inst, a, b, cIv Interval) Interval {
		switch in.Op {
		case shader.OpMOV:
			return a
		case shader.OpADD:
			return addIntervals(a, b)
		case shader.OpSUB:
			return subIntervals(a, b)
		case shader.OpMUL:
			return mulIntervals(a, b)
		case shader.OpMAD:
			return addIntervals(mulIntervals(a, b), cIv)
		case shader.OpMIN:
			return minIntervals(a, b)
		case shader.OpMAX:
			return maxIntervals(a, b)
		case shader.OpCLAMP: // min(max(a, b), c)
			return minIntervals(maxIntervals(a, b), cIv)
		case shader.OpABS:
			if a.empty() {
				return TopInterval()
			}
			lo := 0.0
			if a.Lo > 0 {
				lo = a.Lo
			} else if a.Hi < 0 {
				lo = -a.Hi
			}
			return Interval{Lo: lo, Hi: math.Max(math.Abs(a.Lo), math.Abs(a.Hi)), NaN: a.NaN}
		case shader.OpSGN:
			return Interval{Lo: -1, Hi: 1, NaN: a.NaN}
		case shader.OpFLR:
			return monotoneUnary(a, math.Floor, false)
		case shader.OpCEIL:
			return monotoneUnary(a, math.Ceil, false)
		case shader.OpFRC:
			// x - floor(x) is in [0, 1) mathematically; float32 rounding
			// keeps it in [0, 1]. NaN for NaN or infinite inputs.
			return Interval{Lo: 0, Hi: 1, NaN: a.NaN || a.hasInf()}
		case shader.OpSIN, shader.OpCOS:
			return Interval{Lo: -1, Hi: 1, NaN: a.NaN || a.hasInf()}
		case shader.OpSLT, shader.OpSLE, shader.OpSGT, shader.OpSGE,
			shader.OpSEQ, shader.OpSNE:
			return Interval{Lo: 0, Hi: 1} // exactly {0, 1}; comparisons absorb NaN
		case shader.OpSEL:
			return joinInterval(b, cIv)
		case shader.OpSQRT:
			if a.empty() {
				return TopInterval()
			}
			return monotoneUnary(Interval{Lo: math.Max(a.Lo, 0), Hi: a.Hi, NaN: false},
				math.Sqrt, a.NaN || a.Lo < 0)
		case shader.OpEX2:
			return monotoneUnary(a, func(x float64) float64 { return math.Exp2(x) }, a.NaN)
		case shader.OpEXP:
			return monotoneUnary(a, math.Exp, a.NaN)
		case shader.OpATAN:
			return Interval{Lo: -math.Pi / 2, Hi: math.Pi / 2, NaN: a.NaN}
		case shader.OpTEX:
			// Texel decode: byte * (1/255) is always in [0, 1].
			return Interval{Lo: 0, Hi: 1}
		default:
			// DIV, RCP, RSQ, POW, LG2, LOG, TAN, ASIN, ACOS, ATAN2, MUL24,
			// DP2/3/4: no enclosure implemented; stay sound.
			return TopInterval()
		}
	}

	// Block-level single pass in topological order.
	nb := len(c.Blocks)
	blockIn := make([][]Interval, nb)
	blockIn[0] = make([]Interval, comps)
	for j := range blockIn[0] {
		blockIn[0][j] = TopInterval()
	}
	reachedB := make([]bool, nb)
	reachedB[0] = true
	state := make([]Interval, comps)
	record := func(b int, final bool) {
		copy(state, blockIn[b])
		for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
			in := &p.Insts[i]
			la, lb, lc := in.SrcLanes()
			lanes := [3]uint8{la, lb, lc}
			srcs := [3]shader.Src{in.A, in.B, in.C}
			var op [3][4]Interval
			for k := 0; k < 3; k++ {
				for l := 0; l < 4; l++ {
					if lanes[k]&(1<<uint(l)) == 0 {
						op[k][l] = TopInterval()
						continue
					}
					op[k][l] = operandIv(state, i, k, l, srcs[k])
				}
			}
			if final && sccp.Reachable[i] {
				r.Operand[i] = op
			}
			mask := in.WriteMask()
			if mask != 0 && (in.Dst.File == shader.FileTemp || in.Dst.File == shader.FileOutput) {
				for cc := 0; cc < 4; cc++ {
					if mask&(1<<uint(cc)) == 0 {
						continue
					}
					state[compOf(in.Dst.File, in.Dst.Reg, cc)] =
						resultIv(in, op[0][cc], op[1][cc], op[2][cc])
				}
			}
		}
	}
	for _, b := range topo {
		if !reachedB[b] {
			continue
		}
		record(b, false)
		// state now holds the block's out-state; propagate along feasible
		// edges (mirroring SCCP's pruning: an edge into a block SCCP never
		// reached is infeasible).
		for _, sb := range c.Blocks[b].Succs {
			if !sccp.Reachable[c.Blocks[sb].Start] {
				continue
			}
			if !reachedB[sb] {
				reachedB[sb] = true
				blockIn[sb] = append([]Interval(nil), state...)
				continue
			}
			for j := range state {
				blockIn[sb][j] = joinInterval(blockIn[sb][j], state[j])
			}
		}
	}
	// Second sweep to record per-instruction facts under the final joins.
	for b := range c.Blocks {
		if reachedB[b] {
			record(b, true)
		}
	}
	return r
}

// CondBounded reports that the BRZ or KIL condition of instruction i is
// provably a finite, non-NaN float32 — together with the forward-only
// branch shape this is the masked lane engine's termination obligation
// (every lane's pc advances monotonically through a finite program).
func (r *Ranges) CondBounded(i int) bool {
	p := r.cfg.Prog
	if i < 0 || i >= len(p.Insts) {
		return false
	}
	op := p.Insts[i].Op
	if op != shader.OpBRZ && op != shader.OpKIL {
		return false
	}
	return r.Operand[i][0][0].Bounded()
}
