package analysis

import "gles2gpgpu/internal/shader"

// Per-path resource counting.
//
// The paper's compile cliff (§V-B Fig. 4b) is driven by post-unroll static
// program size, but the finer device constraints — dependent-texture-read
// depth on SGX-class hardware, live temporary pressure — are path
// properties. The CFGs the compiler emits are DAGs (loops are fully
// unrolled), so worst-case path counts are exact longest-path computations
// rather than estimates; PathExact records when that held.

// Resources summarises the statically-derived resource usage of a program.
type Resources struct {
	// StaticInsts and StaticTex are whole-program totals after unrolling
	// (what MaxInstructions/MaxTexInstructions meter).
	StaticInsts int
	StaticTex   int
	// PathInsts and PathTex are worst-case single-invocation execution
	// counts: the longest path through the CFG. On straight-line programs
	// they equal the static totals.
	PathInsts int
	PathTex   int
	// PathExact reports that the CFG was acyclic so the Path* values are
	// exact; otherwise they fall back to the static totals.
	PathExact bool
	// DepTexDepth is the maximum dependent-texture-read chain depth: a
	// fetch whose coordinates derive from another fetch's result deepens
	// the chain. Independent fetches have depth 1; zero means no fetches.
	DepTexDepth int
	// TempPressure is a linear-scan estimate of simultaneously-live temp
	// registers: the maximum overlap of [first reference, last reference]
	// intervals per temp register.
	TempPressure int
}

// CountResources computes the resource summary for c's program.
func CountResources(c *CFG) Resources {
	p := c.Prog
	r := Resources{StaticInsts: len(p.Insts), StaticTex: p.TexInstructions}
	if len(p.Insts) == 0 {
		return r
	}

	// Longest path over the block DAG, weighted by per-block instruction
	// and TEX counts. A discard (KIL) exits mid-block and so is dominated
	// by the full block's cost.
	topo, acyclic := c.Acyclic()
	r.PathExact = acyclic
	if acyclic {
		const unreached = -1
		distI := make([]int, len(c.Blocks))
		distT := make([]int, len(c.Blocks))
		for b := range distI {
			distI[b], distT[b] = unreached, unreached
		}
		blockTex := func(b int) int {
			t := 0
			for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
				if p.Insts[i].Op == shader.OpTEX {
					t++
				}
			}
			return t
		}
		distI[0], distT[0] = 0, 0
		for _, b := range topo {
			if distI[b] == unreached {
				continue // not reachable from entry
			}
			wi := c.Blocks[b].End - c.Blocks[b].Start
			wt := blockTex(b)
			if distI[b]+wi > r.PathInsts {
				r.PathInsts = distI[b] + wi
			}
			if distT[b]+wt > r.PathTex {
				r.PathTex = distT[b] + wt
			}
			for _, sb := range c.Blocks[b].Succs {
				if distI[b]+wi > distI[sb] {
					distI[sb] = distI[b] + wi
				}
				if distT[b]+wt > distT[sb] {
					distT[sb] = distT[b] + wt
				}
			}
		}
	} else {
		r.PathInsts, r.PathTex = r.StaticInsts, r.StaticTex
	}

	r.DepTexDepth = depTexDepth(c)
	r.TempPressure = tempPressure(p)
	return r
}

// depTexDepth solves a forward max-lattice problem: each register
// component carries the depth of the deepest texture-fetch chain its value
// derives from. Values are capped at StaticTex (no chain can be longer),
// which also bounds the fixpoint if the CFG were ever cyclic.
func depTexDepth(c *CFG) int {
	p := c.Prog
	if p.TexInstructions == 0 {
		return 0
	}
	capDepth := p.TexInstructions
	comps := 4 * (p.NumTemps + p.NumOutputs)
	compOf := func(file shader.RegFile, reg uint16, cc int) int {
		if file == shader.FileTemp {
			return int(reg)*4 + cc
		}
		return (p.NumTemps+int(reg))*4 + cc
	}
	laneDepth := func(state []int, src shader.Src, l int) int {
		if src.File != shader.FileTemp && src.File != shader.FileOutput {
			return 0
		}
		return state[compOf(src.File, src.Reg, int(src.Swiz[l]&3))]
	}

	maxDepth := 0
	step := func(state []int, i int) {
		in := &p.Insts[i]
		la, lb, lc := in.SrcLanes()
		lanes := [3]uint8{la, lb, lc}
		srcs := [3]shader.Src{in.A, in.B, in.C}
		mask := in.WriteMask()
		if mask == 0 || (in.Dst.File != shader.FileTemp && in.Dst.File != shader.FileOutput) {
			return
		}
		if in.Op == shader.OpTEX {
			d := 0
			for l := 0; l < 2; l++ {
				if v := laneDepth(state, in.A, l); v > d {
					d = v
				}
			}
			d++
			if d > capDepth {
				d = capDepth
			}
			if d > maxDepth {
				maxDepth = d
			}
			for cc := 0; cc < 4; cc++ {
				if mask&(1<<uint(cc)) != 0 {
					state[compOf(in.Dst.File, in.Dst.Reg, cc)] = d
				}
			}
			return
		}
		reduction := in.Op == shader.OpDP2 || in.Op == shader.OpDP3 || in.Op == shader.OpDP4
		all := 0
		if reduction {
			for k := 0; k < 3; k++ {
				for l := 0; l < 4; l++ {
					if lanes[k]&(1<<uint(l)) != 0 {
						if v := laneDepth(state, srcs[k], l); v > all {
							all = v
						}
					}
				}
			}
		}
		for cc := 0; cc < 4; cc++ {
			if mask&(1<<uint(cc)) == 0 {
				continue
			}
			d := all
			if !reduction {
				for k := 0; k < 3; k++ {
					if lanes[k]&(1<<uint(cc)) != 0 {
						if v := laneDepth(state, srcs[k], cc); v > d {
							d = v
						}
					}
				}
			}
			state[compOf(in.Dst.File, in.Dst.Reg, cc)] = d
		}
	}

	nb := len(c.Blocks)
	blockIn := make([][]int, nb)
	for b := range blockIn {
		blockIn[b] = make([]int, comps)
	}
	work := []int{0}
	inWork := make([]bool, nb)
	inWork[0] = true
	state := make([]int, comps)
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false
		copy(state, blockIn[b])
		for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
			step(state, i)
		}
		for _, sb := range c.Blocks[b].Succs {
			changed := false
			for j := range state {
				if state[j] > blockIn[sb][j] {
					blockIn[sb][j] = state[j]
					changed = true
				}
			}
			if changed && !inWork[sb] {
				work = append(work, sb)
				inWork[sb] = true
			}
		}
	}
	return maxDepth
}

// tempPressure runs the classic linear-scan interval estimate: each temp
// register is live from its first reference to its last, and pressure is
// the maximum interval overlap.
func tempPressure(p *shader.Program) int {
	type iv struct{ first, last int }
	intervals := map[uint16]*iv{}
	touch := func(reg uint16, i int) {
		v := intervals[reg]
		if v == nil {
			intervals[reg] = &iv{first: i, last: i}
			return
		}
		v.last = i
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		la, lb, lc := in.SrcLanes()
		for k, s := range [3]shader.Src{in.A, in.B, in.C} {
			lanes := [3]uint8{la, lb, lc}[k]
			if lanes != 0 && s.File == shader.FileTemp {
				touch(s.Reg, i)
			}
		}
		if in.WriteMask() != 0 && in.Dst.File == shader.FileTemp {
			touch(in.Dst.Reg, i)
		}
	}
	pressure, peak := 0, 0
	events := make([]int, len(p.Insts)+1)
	for _, v := range intervals {
		events[v.first]++
		events[v.last+1]--
	}
	for _, e := range events {
		pressure += e
		if pressure > peak {
			peak = pressure
		}
	}
	return peak
}
