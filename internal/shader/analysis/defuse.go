package analysis

import "gles2gpgpu/internal/shader"

// Reaching definitions and def-use chains.
//
// The IR is not SSA, so a use can see several definitions at a join. The
// analyses here only exploit facts that are safe in that setting: for
// every source-operand lane we compute the *unique* reaching definition
// when one exists on all paths (a "last definition" forward dataflow whose
// meet is equal-or-bottom), and for every definition the conservative set
// of instructions that may use its value. Copy propagation requires the
// former; the MAD/built-in lint patterns require both.

// Sentinel values for DefUse.DefOf.
const (
	// DefExternal marks a read whose value does not come from a tracked
	// instruction: uniform/input/constant-file operands, or a temp/output
	// component that may be uninitialised at this point.
	DefExternal = -1
	// DefMany marks a read reached by different definitions on different
	// paths.
	DefMany = -2
	// DefNone marks a lane the instruction does not read.
	DefNone = -3
)

// defTop is the optimistic pre-fixpoint lattice top (internal only).
const defTop = -4

// Use records one read of a definition's value.
type Use struct {
	Inst    int // reading instruction
	Operand int // 0 = A, 1 = B, 2 = C
	Lane    int // post-swizzle lane
}

// DefUse holds the solved reaching-definition facts for one program.
type DefUse struct {
	// DefOf[i][k][l] is the instruction defining the value operand k
	// (0=A, 1=B, 2=C) of instruction i reads in post-swizzle lane l, or a
	// sentinel (DefExternal, DefMany, DefNone).
	DefOf [][3][4]int32
	// Uses[d] lists the reads that may observe instruction d's result
	// (reads whose reaching definition is ambiguous are attributed to
	// every definition of the component, so the list over-approximates).
	Uses [][]Use

	cfg      *CFG
	numTemps int
}

func (du *DefUse) comp(file shader.RegFile, reg uint16, c int) int {
	if file == shader.FileTemp {
		return int(reg)*4 + c
	}
	return (du.numTemps+int(reg))*4 + c
}

// meetDef combines two reaching-definition facts.
func meetDef(a, b int32) int32 {
	switch {
	case a == defTop:
		return b
	case b == defTop:
		return a
	case a == b:
		return a
	default:
		return DefMany
	}
}

// UseInsts returns the distinct instructions among uses.
func UseInsts(uses []Use) []int {
	var insts []int
	for _, u := range uses {
		found := false
		for _, x := range insts {
			if x == u.Inst {
				found = true
				break
			}
		}
		if !found {
			insts = append(insts, u.Inst)
		}
	}
	return insts
}

// SolveDefUse computes reaching definitions and def-use chains over c.
func SolveDefUse(c *CFG) *DefUse {
	p := c.Prog
	n := len(p.Insts)
	du := &DefUse{
		DefOf:    make([][3][4]int32, n),
		Uses:     make([][]Use, n),
		cfg:      c,
		numTemps: p.NumTemps,
	}
	for i := range du.DefOf {
		for k := 0; k < 3; k++ {
			for l := 0; l < 4; l++ {
				du.DefOf[i][k][l] = DefNone
			}
		}
	}
	if n == 0 {
		return du
	}
	comps := 4 * (p.NumTemps + p.NumOutputs)

	// applyWrites advances the last-definition state across instruction i.
	applyWrites := func(state []int32, i int) {
		in := &p.Insts[i]
		mask := in.WriteMask()
		if mask == 0 || (in.Dst.File != shader.FileTemp && in.Dst.File != shader.FileOutput) {
			return
		}
		for cc := 0; cc < 4; cc++ {
			if mask&(1<<uint(cc)) != 0 {
				state[du.comp(in.Dst.File, in.Dst.Reg, cc)] = int32(i)
			}
		}
	}

	// Block-level fixpoint on the last-definition state.
	nb := len(c.Blocks)
	blockIn := make([][]int32, nb)
	for b := range blockIn {
		blockIn[b] = make([]int32, comps)
		for j := range blockIn[b] {
			if b == 0 {
				blockIn[b][j] = DefExternal
			} else {
				blockIn[b][j] = defTop
			}
		}
	}
	work := make([]int, 0, nb)
	inWork := make([]bool, nb)
	for b := nb - 1; b >= 0; b-- {
		work = append(work, b)
		inWork[b] = true
	}
	state := make([]int32, comps)
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false
		copy(state, blockIn[b])
		for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
			applyWrites(state, i)
		}
		for _, s := range c.Blocks[b].Succs {
			changed := false
			for j := range state {
				if nv := meetDef(blockIn[s][j], state[j]); nv != blockIn[s][j] {
					blockIn[s][j] = nv
					changed = true
				}
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}

	// Record per-read facts with the solved states; ambiguous reads are
	// attributed to every definition of the component.
	defsOfComp := make([][]int32, comps)
	for i := range p.Insts {
		in := &p.Insts[i]
		mask := in.WriteMask()
		if mask == 0 || (in.Dst.File != shader.FileTemp && in.Dst.File != shader.FileOutput) {
			continue
		}
		for cc := 0; cc < 4; cc++ {
			if mask&(1<<uint(cc)) != 0 {
				j := du.comp(in.Dst.File, in.Dst.Reg, cc)
				defsOfComp[j] = append(defsOfComp[j], int32(i))
			}
		}
	}
	recordRead := func(state []int32, i, k int, s shader.Src, lanes uint8) {
		for l := 0; l < 4; l++ {
			if lanes&(1<<uint(l)) == 0 {
				continue
			}
			if s.File != shader.FileTemp && s.File != shader.FileOutput {
				du.DefOf[i][k][l] = DefExternal
				continue
			}
			j := du.comp(s.File, s.Reg, int(s.Swiz[l]&3))
			d := state[j]
			if d == defTop {
				d = DefExternal // unreachable code; value immaterial
			}
			du.DefOf[i][k][l] = d
			switch {
			case d >= 0:
				du.Uses[d] = append(du.Uses[d], Use{Inst: i, Operand: k, Lane: l})
			case d == DefMany:
				for _, dd := range defsOfComp[j] {
					du.Uses[dd] = append(du.Uses[dd], Use{Inst: i, Operand: k, Lane: l})
				}
			}
		}
	}
	for b := range c.Blocks {
		copy(state, blockIn[b])
		for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
			in := &p.Insts[i]
			la, lb, lc := in.SrcLanes()
			recordRead(state, i, 0, in.A, la)
			recordRead(state, i, 1, in.B, lb)
			recordRead(state, i, 2, in.C, lc)
			applyWrites(state, i)
		}
	}
	return du
}

// OperandDef returns the unique defining instruction for all read lanes of
// operand k of instruction i, or -1 when the lanes disagree, are not
// uniquely defined, or the operand is not read.
func (du *DefUse) OperandDef(i, k int) int {
	d := int32(DefNone)
	for l := 0; l < 4; l++ {
		v := du.DefOf[i][k][l]
		if v == DefNone {
			continue
		}
		if d == DefNone {
			d = v
		} else if d != v {
			return -1
		}
	}
	if d < 0 {
		return -1
	}
	return int(d)
}
