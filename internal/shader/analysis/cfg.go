// Package analysis is the static-analysis framework over the shader IR:
// CFG construction, dominators, def-use chains, sparse conditional
// constant propagation, per-path resource counting, device-profile limit
// checking, the verified optimisation passes (dead-code elimination and
// copy/constant propagation) and the glslint diagnostics.
//
// The package reproduces the paper's central static claims: whether a
// kernel compiles at all on a low-end mobile GPU is a static property
// (blocked sgemm above block size 16 exceeds GLSL implementation limits,
// §V-B Fig. 4b), and the profitable rewrites (MAD-shaped arithmetic,
// built-ins, mul24) are statically detectable (Fig. 3). Everything here is
// built on the generic solvers in internal/dataflow and on the read/write
// semantics exported by internal/shader (Inst.SrcLanes, Inst.WriteMask,
// Program.InstSuccs, Program.MustWrite), so the analyses provably agree
// with the execution engine about what instructions do.
package analysis

import (
	"gles2gpgpu/internal/dataflow"
	"gles2gpgpu/internal/shader"
)

// Block is one basic block: the half-open instruction range [Start, End)
// plus its control-flow edges, expressed as block indices.
type Block struct {
	Start, End int
	Succs      []int
	Preds      []int
}

// CFG is the basic-block control-flow graph of a program. Block 0 is the
// entry (instruction 0). Blocks appear in instruction order.
type CFG struct {
	Prog    *shader.Program
	Blocks  []Block
	BlockOf []int // instruction index -> block index
}

// BuildCFG partitions p into basic blocks. Leaders are instruction 0,
// every branch target, and every instruction following a BR, BRZ or RET.
func BuildCFG(p *shader.Program) *CFG {
	n := len(p.Insts)
	c := &CFG{Prog: p, BlockOf: make([]int, n)}
	if n == 0 {
		return c
	}
	leader := make([]bool, n)
	leader[0] = true
	for i := range p.Insts {
		switch p.Insts[i].Op {
		case shader.OpBR, shader.OpBRZ:
			if t := int(p.Insts[i].Target); t >= 0 && t < n {
				leader[t] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		case shader.OpRET:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if leader[i] {
			c.Blocks = append(c.Blocks, Block{Start: i})
		}
		c.BlockOf[i] = len(c.Blocks) - 1
	}
	for b := range c.Blocks {
		if b+1 < len(c.Blocks) {
			c.Blocks[b].End = c.Blocks[b+1].Start
		} else {
			c.Blocks[b].End = n
		}
		for _, s := range p.InstSuccs(c.Blocks[b].End - 1) {
			c.Blocks[b].Succs = append(c.Blocks[b].Succs, c.BlockOf[s])
		}
	}
	for b := range c.Blocks {
		for _, s := range c.Blocks[b].Succs {
			c.Blocks[s].Preds = append(c.Blocks[s].Preds, b)
		}
	}
	return c
}

// Dominators returns the block-level dominator sets (Dominators()[b].Get(a)
// reports that block a dominates block b), computed as a must-forward
// problem on the shared solver.
func (c *CFG) Dominators() []dataflow.BitSet {
	return dataflow.Dominators(len(c.Blocks), 0, func(b int) []int { return c.Blocks[b].Succs })
}

// ExitBlocks returns the blocks that leave the program without discarding:
// a final RET or a fall off the end of the instruction stream. (KIL's
// discard edge exits too, but a discarded fragment's outputs are never
// read, so analyses over observable exits use this set.)
func (c *CFG) ExitBlocks() []int {
	var exits []int
	n := len(c.Prog.Insts)
	for b := range c.Blocks {
		last := c.Blocks[b].End - 1
		switch c.Prog.Insts[last].Op {
		case shader.OpRET:
			exits = append(exits, b)
		case shader.OpBR:
			// never falls off
		default:
			if c.Blocks[b].End == n {
				exits = append(exits, b)
			}
		}
	}
	return exits
}

// Acyclic reports whether the CFG has no cycles (true for every program
// the GLSL back end emits — loops are fully unrolled — and required for
// the exact longest-path resource counts). topo, when acyclic, is a
// topological order of the blocks.
func (c *CFG) Acyclic() (topo []int, ok bool) {
	const (
		white = iota
		grey
		black
	)
	state := make([]int, len(c.Blocks))
	order := make([]int, 0, len(c.Blocks))
	ok = true
	var visit func(b int)
	visit = func(b int) {
		state[b] = grey
		for _, s := range c.Blocks[b].Succs {
			switch state[s] {
			case white:
				visit(s)
			case grey:
				ok = false
			}
		}
		state[b] = black
		order = append(order, b)
	}
	for b := range c.Blocks {
		if state[b] == white {
			visit(b)
		}
	}
	if !ok {
		return nil, false
	}
	// order is reverse-topological; flip it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, true
}
