package analysis

import (
	"testing"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/shader"
)

// compileGLSL compiles fragment-shader source through the real frontend.
func compileGLSL(t *testing.T, src string) *shader.Program {
	t.Helper()
	cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := shader.Compile(cs)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// mov builds a MOV instruction writing n leading components.
func mov(dst shader.Dst, src shader.Src) shader.Inst {
	return shader.Inst{Op: shader.OpMOV, Dst: dst, A: src}
}

func temp(r int) shader.Src  { return shader.SrcReg(shader.FileTemp, r) }
func cnst(r int) shader.Src  { return shader.SrcReg(shader.FileConst, r) }
func dtemp(r int) shader.Dst { return shader.DstReg(shader.FileTemp, r, 4) }

// diamond is the canonical two-armed CFG used by several tests:
//
//	0: mov r0, c0        ; condition
//	1: brz r0, 4
//	2: mov r1, c1        ; then-arm
//	3: br 5
//	4: mov r1, c2        ; else-arm
//	5: mov o0, r1        ; join + exit
func diamond() *shader.Program {
	return &shader.Program{
		Insts: []shader.Inst{
			mov(dtemp(0), cnst(0)),
			{Op: shader.OpBRZ, A: temp(0), Target: 4},
			mov(dtemp(1), cnst(1)),
			{Op: shader.OpBR, Target: 5},
			mov(dtemp(1), cnst(2)),
			mov(shader.DstReg(shader.FileOutput, 0, 4), temp(1)),
		},
		Consts:     [][4]float32{{1, 1, 1, 1}, {2, 2, 2, 2}, {3, 3, 3, 3}},
		NumTemps:   2,
		NumOutputs: 1,
	}
}

func TestBuildCFGDiamond(t *testing.T) {
	c := BuildCFG(diamond())
	if len(c.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4: %+v", len(c.Blocks), c.Blocks)
	}
	wantRanges := [][2]int{{0, 2}, {2, 4}, {4, 5}, {5, 6}}
	for b, w := range wantRanges {
		if c.Blocks[b].Start != w[0] || c.Blocks[b].End != w[1] {
			t.Errorf("block %d = [%d,%d), want [%d,%d)",
				b, c.Blocks[b].Start, c.Blocks[b].End, w[0], w[1])
		}
	}
	wantSuccs := [][]int{{1, 2}, {3}, {3}, nil}
	for b, w := range wantSuccs {
		got := c.Blocks[b].Succs
		if len(got) != len(w) {
			t.Fatalf("block %d succs = %v, want %v", b, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("block %d succs = %v, want %v", b, got, w)
			}
		}
	}
	doms := c.Dominators()
	for b := 0; b < 4; b++ {
		if !doms[b].Get(0) {
			t.Errorf("entry should dominate block %d", b)
		}
	}
	if doms[3].Get(1) || doms[3].Get(2) {
		t.Errorf("neither arm should dominate the join")
	}
	exits := c.ExitBlocks()
	if len(exits) != 1 || exits[0] != 3 {
		t.Errorf("exits = %v, want [3]", exits)
	}
	if topo, ok := c.Acyclic(); !ok || topo[0] != 0 {
		t.Errorf("acyclic = %v topo = %v", ok, topo)
	}
}

func TestDefUseDiamond(t *testing.T) {
	p := diamond()
	du := SolveDefUse(BuildCFG(p))
	// The BRZ reads r0.x defined at instruction 0.
	if got := du.DefOf[1][0][0]; got != 0 {
		t.Errorf("brz cond def = %d, want 0", got)
	}
	// The join read of r1 sees both arms.
	if got := du.DefOf[5][0][0]; got != DefMany {
		t.Errorf("join read def = %d, want DefMany", got)
	}
	// Ambiguous reads are attributed to both definitions.
	for _, d := range []int{2, 4} {
		found := false
		for _, u := range du.Uses[d] {
			if u.Inst == 5 && u.Operand == 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("def %d is missing the join use: %+v", d, du.Uses[d])
		}
	}
	if got := du.OperandDef(5, 0); got != -1 {
		t.Errorf("OperandDef at join = %d, want -1", got)
	}
	if got := du.OperandDef(1, 0); got != 0 {
		t.Errorf("OperandDef of cond = %d, want 0", got)
	}
}

func TestDefUseUninitialisedRead(t *testing.T) {
	p := &shader.Program{
		Insts: []shader.Inst{
			mov(shader.DstReg(shader.FileOutput, 0, 4), temp(0)),
		},
		NumTemps:   1,
		NumOutputs: 1,
	}
	du := SolveDefUse(BuildCFG(p))
	if got := du.DefOf[0][0][0]; got != DefExternal {
		t.Errorf("uninitialised read def = %d, want DefExternal", got)
	}
}

func TestSCCPPrunesConstantBranch(t *testing.T) {
	p := diamond() // condition c0 = 1: BRZ never taken, else-arm dead
	s := SolveSCCP(BuildCFG(p))
	if !s.Reachable[2] || !s.Reachable[3] {
		t.Errorf("then-arm should be reachable")
	}
	if s.Reachable[4] {
		t.Errorf("else-arm should be pruned (condition is constant non-zero)")
	}
	// The join read of r1 is constant: only the then-arm (c1 = 2) reaches.
	oc := s.Operand[5][0]
	if !oc.OK {
		t.Fatalf("join operand should be constant after pruning")
	}
	for l := 0; l < 4; l++ {
		if oc.V[l] != 2 {
			t.Errorf("lane %d = %g, want 2", l, oc.V[l])
		}
	}
}

func TestSCCPBothArmsJoinToBottom(t *testing.T) {
	p := diamond()
	// Make the condition a uniform: both arms feasible, join not constant.
	p.Insts[0] = mov(dtemp(0), shader.SrcReg(shader.FileUniform, 0))
	p.NumUniform = 1
	s := SolveSCCP(BuildCFG(p))
	if !s.Reachable[2] || !s.Reachable[4] {
		t.Fatalf("both arms should be reachable")
	}
	if s.Operand[5][0].OK {
		t.Errorf("join operand should not be constant (arms assign 2 and 3)")
	}
	// But each arm's own operand is a constant.
	if !s.Operand[2][0].OK || s.Operand[2][0].V[0] != 2 {
		t.Errorf("then-arm const = %+v, want 2", s.Operand[2][0])
	}
}

func TestSCCPConstFoldArithmetic(t *testing.T) {
	// add r0, c0, c1 ; mul o0, r0, r0 — SCCP must fold through the ADD
	// with bit-exact VM arithmetic.
	p := &shader.Program{
		Insts: []shader.Inst{
			{Op: shader.OpADD, Dst: dtemp(0), A: cnst(0), B: cnst(1)},
			{Op: shader.OpMUL, Dst: shader.DstReg(shader.FileOutput, 0, 4), A: temp(0), B: temp(0)},
		},
		Consts:     [][4]float32{{1, 2, 3, 4}, {10, 20, 30, 40}},
		NumTemps:   1,
		NumOutputs: 1,
	}
	s := SolveSCCP(BuildCFG(p))
	oc := s.Operand[1][0]
	if !oc.OK {
		t.Fatalf("mul operand should be constant")
	}
	want := shader.Vec4{11, 22, 33, 44}
	if oc.V != want {
		t.Errorf("folded value = %v, want %v", oc.V, want)
	}
}

func TestSCCPAlwaysDiscard(t *testing.T) {
	p := compileGLSL(t, `
precision mediump float;
void main() {
	discard;
}
`)
	s := SolveSCCP(BuildCFG(p))
	if len(s.AlwaysDiscards) == 0 {
		t.Fatalf("bare discard should be detected as always discarding")
	}
}

func TestResourcesDependentTex(t *testing.T) {
	// tex r0 <- i0 ; tex r1 <- r0 ; tex r2 <- i0 : chain depth 2.
	p := &shader.Program{
		Insts: []shader.Inst{
			{Op: shader.OpTEX, Dst: dtemp(0), A: shader.SrcReg(shader.FileInput, 0)},
			{Op: shader.OpTEX, Dst: dtemp(1), A: temp(0)},
			{Op: shader.OpTEX, Dst: dtemp(2), A: shader.SrcReg(shader.FileInput, 0)},
			mov(shader.DstReg(shader.FileOutput, 0, 4), temp(1)),
		},
		NumTemps:        3,
		NumOutputs:      1,
		NumInputs:       1,
		TexInstructions: 3,
	}
	r := CountResources(BuildCFG(p))
	if r.DepTexDepth != 2 {
		t.Errorf("DepTexDepth = %d, want 2", r.DepTexDepth)
	}
	if r.StaticTex != 3 || r.PathTex != 3 {
		t.Errorf("tex counts = %d/%d, want 3/3", r.StaticTex, r.PathTex)
	}
	if !r.PathExact || r.PathInsts != 4 {
		t.Errorf("PathInsts = %d (exact=%v), want 4 exact", r.PathInsts, r.PathExact)
	}
}

func TestResourcesLongestPath(t *testing.T) {
	// The diamond: then-arm has 2 insts (mov+br), else-arm 1. Longest path
	// runs entry(2) + then(2) + join(1) = 5 of the 6 instructions.
	r := CountResources(BuildCFG(diamond()))
	if r.StaticInsts != 6 {
		t.Errorf("StaticInsts = %d, want 6", r.StaticInsts)
	}
	if !r.PathExact || r.PathInsts != 5 {
		t.Errorf("PathInsts = %d (exact=%v), want 5 exact", r.PathInsts, r.PathExact)
	}
}

func TestResourcesKernelStraightLine(t *testing.T) {
	p := compileGLSL(t, `
precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	gl_FragColor = texture2D(text0, v_tex);
}
`)
	r := CountResources(BuildCFG(p))
	if r.StaticInsts != r.PathInsts || !r.PathExact {
		t.Errorf("straight-line kernel: path %d static %d exact %v",
			r.PathInsts, r.StaticInsts, r.PathExact)
	}
	if r.DepTexDepth != 1 {
		t.Errorf("independent fetch depth = %d, want 1", r.DepTexDepth)
	}
	if r.TempPressure < 1 {
		t.Errorf("TempPressure = %d, want >= 1", r.TempPressure)
	}
}
