package analysis

import (
	"math"
	"testing"

	"gles2gpgpu/internal/shader"
)

// containsTightly reports that iv encloses [lo, hi] with at most slack of
// a few float32 ulps on either side.
func containsTightly(iv Interval, lo, hi float64) bool {
	const slack = 1e-4
	return !iv.NaN && iv.Lo <= lo && iv.Hi >= hi && lo-iv.Lo <= slack && iv.Hi-hi <= slack
}

func TestRangesConstantsAndComparisons(t *testing.T) {
	// 0: mov r0, c0        ; 2
	// 1: add r1, r0, c1    ; 2+3 = 5
	// 2: slt r2, i0, c0    ; {0, 1}
	// 3: brz r2, 5
	// 4: mov r3, c0
	// 5: mov o0, r1
	p := &shader.Program{
		Insts: []shader.Inst{
			mov(dtemp(0), cnst(0)),
			{Op: shader.OpADD, Dst: dtemp(1), A: temp(0), B: cnst(1)},
			{Op: shader.OpSLT, Dst: dtemp(2), A: inp(0), B: cnst(0)},
			{Op: shader.OpBRZ, A: temp(2), Target: 5},
			mov(dtemp(3), cnst(0)),
			mov(shader.DstReg(shader.FileOutput, 0, 4), temp(1)),
		},
		Consts:     [][4]float32{{2, 2, 2, 2}, {3, 3, 3, 3}},
		NumTemps:   4,
		NumInputs:  1,
		NumOutputs: 1,
	}
	c := BuildCFG(p)
	sccp := SolveSCCP(c)
	r := SolveRanges(c, sccp)
	if r.AllTop {
		t.Fatal("acyclic program solved AllTop")
	}
	if iv := r.Operand[5][0][0]; !containsTightly(iv, 5, 5) {
		t.Errorf("output read = %+v, want a tight enclosure of 5", iv)
	}
	// The branch condition is a comparison result: exactly {0, 1}, never
	// NaN — the masked lane engine's termination obligation holds.
	if iv := r.Operand[3][0][0]; !containsTightly(iv, 0, 1) {
		t.Errorf("comparison result = %+v, want [0, 1]", iv)
	}
	if !r.CondBounded(3) {
		t.Errorf("comparison-fed branch condition should be provably bounded")
	}
	if r.CondBounded(5) {
		t.Errorf("CondBounded on a non-branch should be false")
	}
}

func TestRangesVaryingInputIsTop(t *testing.T) {
	p := varyingDiamondIR()
	c := BuildCFG(p)
	r := SolveRanges(c, SolveSCCP(c))
	iv := r.Operand[1][0][0] // the BRZ reads the raw input copy
	if !iv.NaN || !math.IsInf(iv.Lo, -1) || !math.IsInf(iv.Hi, 1) {
		t.Errorf("raw input range = %+v, want top", iv)
	}
	if r.CondBounded(1) {
		t.Errorf("a raw-input condition must not be provably bounded")
	}
}

func TestRangesCyclicIsAllTop(t *testing.T) {
	p := &shader.Program{
		Insts: []shader.Inst{
			mov(dtemp(0), inp(0)),
			{Op: shader.OpBRZ, A: temp(0), Target: 0},
			mov(shader.DstReg(shader.FileOutput, 0, 4), temp(0)),
		},
		NumTemps:   1,
		NumInputs:  1,
		NumOutputs: 1,
	}
	c := BuildCFG(p)
	r := SolveRanges(c, SolveSCCP(c))
	if !r.AllTop {
		t.Fatal("cyclic CFG should solve AllTop")
	}
	if r.CondBounded(1) {
		t.Errorf("AllTop solve must not prove any condition bounded")
	}
}

func TestRangesGLSLClampAndTexel(t *testing.T) {
	p := compileGLSL(t, `
precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	float t = texture2D(text0, v_tex).x;
	gl_FragColor = vec4(clamp(t, 0.0, 1.0), fract(t), 0.0, 1.0);
}`)
	c := BuildCFG(p)
	r := SolveRanges(c, SolveSCCP(c))
	if r.AllTop {
		t.Fatal("straight-line GLSL solved AllTop")
	}
	// Texel decodes land in [0, 1]; the CLAMP's first operand inherits it.
	for i := range p.Insts {
		if p.Insts[i].Op != shader.OpCLAMP {
			continue
		}
		if iv := r.Operand[i][0][0]; !containsTightly(iv, 0, 1) {
			t.Errorf("clamp input = %+v, want a tight [0, 1] (texel decode)", iv)
		}
		return
	}
	t.Fatal("no CLAMP emitted")
}
