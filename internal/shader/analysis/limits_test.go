package analysis

import (
	"errors"
	"strings"
	"testing"

	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/shader"
)

// TestSgemmCompileCliff reproduces Fig. 4b's compile cliff statically:
// blocked sgemm at M=1024 fits both device profiles for every block size
// the paper ran (1…16), and fails above 16 with the instruction-count
// diagnostic — the paper's "crashes and shader compilation failures ...
// due to exceeding GLSL implementation limits".
func TestSgemmCompileCliff(t *testing.T) {
	const m = 1024
	profiles := LimitProfiles()
	if len(profiles) != 2 {
		t.Fatalf("want the two paper profiles, got %v", profiles)
	}
	for _, block := range []int{1, 2, 4, 8, 16, 32, 64} {
		src, err := kernels.SgemmPass(m, block, kernels.DefaultOptions)
		if err != nil {
			t.Fatalf("block %d: %v", block, err)
		}
		p := compileGLSL(t, src)
		res := CountResources(BuildCFG(p))
		for _, lp := range profiles {
			err := CheckLimitsError(p, res, lp)
			if block <= 16 {
				if err != nil {
					t.Errorf("block %d on %s: unexpected rejection: %v", block, lp.Name, err)
				}
				continue
			}
			if err == nil {
				t.Errorf("block %d on %s: should exceed limits", block, lp.Name)
				continue
			}
			var le *shader.LimitError
			if !errors.As(err, &le) {
				t.Errorf("block %d on %s: error type %T, want *shader.LimitError", block, lp.Name, err)
				continue
			}
			if le.What != "instructions" {
				t.Errorf("block %d on %s: diagnostic %q, want the instruction count first",
					block, lp.Name, le.What)
			}
			// The findings form carries the same diagnostic as an error.
			var found bool
			for _, f := range CheckLimits(p, res, lp) {
				if f.Code == "limit-exceeded" && f.Sev == SevError &&
					strings.Contains(f.Msg, "instructions") {
					found = true
					if f.Pos.Line == 0 {
						t.Errorf("block %d on %s: instruction-limit finding has no source position", block, lp.Name)
					}
				}
			}
			if !found {
				t.Errorf("block %d on %s: no limit-exceeded finding", block, lp.Name)
			}
		}
	}
}

func TestLimitProfileFor(t *testing.T) {
	for _, tc := range []struct {
		arg  string
		want string
	}{
		{"videocore", "VideoCore IV"},
		{"vc4", "VideoCore IV"},
		{"rpi", "VideoCore IV"},
		{"sgx", "PowerVR"},
		{"powervr", "PowerVR"},
		{"generic", "generic"},
		{"", "generic"},
	} {
		lp, ok := LimitProfileFor(tc.arg)
		if !ok || !strings.Contains(lp.Name, tc.want) {
			t.Errorf("LimitProfileFor(%q) = %v %v, want name containing %q", tc.arg, lp, ok, tc.want)
		}
	}
	if _, ok := LimitProfileFor("nonesuch"); ok {
		t.Errorf("unknown profile should not resolve")
	}
}

// TestDependentTexLimit checks the new dependent-read axis: a chain of
// fetches deeper than the VideoCore IV FIFO bound is rejected there but
// fits the SGX profile.
func TestDependentTexLimit(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	vec2 c = v_tex;
	c = texture2D(text0, c).xy;
	c = texture2D(text0, c).xy;
	c = texture2D(text0, c).xy;
	c = texture2D(text0, c).xy;
	c = texture2D(text0, c).xy;
	gl_FragColor = vec4(c, 0.0, 1.0);
}
`)
	res := CountResources(BuildCFG(p))
	if res.DepTexDepth != 5 {
		t.Fatalf("DepTexDepth = %d, want 5", res.DepTexDepth)
	}
	var vc4, sgx LimitProfile
	for _, lp := range LimitProfiles() {
		if strings.Contains(lp.Name, "VideoCore") {
			vc4 = lp
		} else {
			sgx = lp
		}
	}
	err := CheckLimitsError(p, res, vc4)
	var le *shader.LimitError
	if !errors.As(err, &le) || le.What != "dependent texture reads" {
		t.Errorf("VideoCore: err = %v, want dependent-texture-read rejection", err)
	}
	if err := CheckLimitsError(p, res, sgx); err != nil {
		t.Errorf("SGX (depth limit 8): unexpected rejection: %v", err)
	}
}
