package analysis

import (
	"fmt"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/shader"
)

// Device-profile limit checking.
//
// This is the static predictor for the paper's compile cliff (§V-B
// Fig. 4b): whether a kernel compiles on a given device is decided by its
// post-unroll resource usage against the profile's implementation limits.
// Blocked sgemm at M=1024 grows by 22 instructions and 2 fetches per block
// step; block 16 lands at 393 instructions / 33 fetches — inside both
// profiles' 512/40 — while block 32 needs 745 instructions and is rejected
// with the instruction-count diagnostic, exactly the failure mode the
// paper reports for block sizes above 16.

// LimitProfile names a set of device limits for diagnostics.
type LimitProfile struct {
	Name   string
	Limits shader.Limits
}

// LimitProfiles returns the checkable device profiles: the two platforms
// the paper evaluates.
func LimitProfiles() []LimitProfile {
	vc4 := device.VideoCoreIV()
	sgx := device.PowerVRSGX545()
	return []LimitProfile{
		{Name: vc4.Name, Limits: vc4.Limits},
		{Name: sgx.Name, Limits: sgx.Limits},
	}
}

// LimitProfileFor resolves a profile by the short names the CLIs accept
// (matching cmd/glslc -device): "videocore"/"vc4"/"rpi", "sgx"/"powervr",
// or "generic".
func LimitProfileFor(name string) (LimitProfile, bool) {
	switch name {
	case "videocore", "vc4", "rpi":
		p := device.VideoCoreIV()
		return LimitProfile{Name: p.Name, Limits: p.Limits}, true
	case "sgx", "powervr", "sgx545":
		p := device.PowerVRSGX545()
		return LimitProfile{Name: p.Name, Limits: p.Limits}, true
	case "generic", "":
		p := device.Generic()
		return LimitProfile{Name: p.Name, Limits: p.Limits}, true
	}
	return LimitProfile{}, false
}

// limitChecks enumerates the metered quantities in diagnostic order. The
// instruction count is deliberately first: it is the limit real drivers
// report for over-unrolled kernels, and the one the Fig. 4b reproduction
// asserts on.
func limitChecks(p *shader.Program, res Resources, lim shader.Limits) []struct {
	what        string
	used, limit int
} {
	return []struct {
		what        string
		used, limit int
	}{
		{"instructions", res.StaticInsts, lim.MaxInstructions},
		{"texture accesses", res.StaticTex, lim.MaxTexInstructions},
		{"dependent texture reads", res.DepTexDepth, lim.MaxDependentTexReads},
		{"temporary registers", res.TempPressure, lim.MaxTemps},
		{"uniform vectors", p.NumUniform, lim.MaxUniformVectors},
	}
}

// CheckLimitsError verifies a program against a profile and returns the
// first exceedance as a *shader.LimitError, or nil when the program fits.
// This is the strict link-time check the GLES layer applies under
// SetStrictLimits.
func CheckLimitsError(p *shader.Program, res Resources, lp LimitProfile) error {
	for _, c := range limitChecks(p, res, lp.Limits) {
		if c.limit > 0 && c.used > c.limit {
			return &shader.LimitError{What: c.what, Used: c.used, Limit: c.limit}
		}
	}
	return nil
}

// CheckLimits reports the program's standing against one profile as
// findings: an error per exceeded limit, and an informational headroom
// line per satisfied one. The error for the instruction limit points at
// the source position of the first over-limit instruction — for an
// unrolled loop that is the loop body, which is where the programmer must
// shrink the kernel (the paper's fix: a smaller block size).
func CheckLimits(p *shader.Program, res Resources, lp LimitProfile) []Finding {
	var fs []Finding
	for _, c := range limitChecks(p, res, lp.Limits) {
		if c.limit <= 0 {
			continue
		}
		if c.used > c.limit {
			f := Finding{
				Code: "limit-exceeded",
				Sev:  SevError,
				Msg: fmt.Sprintf("%s: %d %s exceed the limit of %d",
					lp.Name, c.used, c.what, c.limit),
			}
			if c.what == "instructions" && c.limit < len(p.Insts) {
				f.Pos = p.Insts[c.limit].SrcPos
			}
			fs = append(fs, f)
		} else {
			fs = append(fs, Finding{
				Code: "limit-headroom",
				Sev:  SevInfo,
				Msg: fmt.Sprintf("%s: %d/%d %s used",
					lp.Name, c.used, c.limit, c.what),
			})
		}
	}
	return fs
}
