package analysis

import (
	"gles2gpgpu/internal/dataflow"
	"gles2gpgpu/internal/shader"
)

// Uniformity analysis.
//
// The lattice per register component is {uniform, varying}: a value is
// uniform when every fragment of a draw computes the same bits for it, and
// varying when fragments may disagree. Uniforms and the constant pool seed
// uniform (they are draw-constant by definition); inputs seed varying
// (varyings are interpolated per fragment and gl_FragCoord differs by
// construction). The join is "any varying path makes it varying".
//
// Data dependence alone is not enough: a write that only happens for some
// fragments makes the written value varying even when the operands are
// uniform, because fragments that skipped the write observe the old value.
// That is control dependence, and it is computed the standard way — via
// post-dominators on the reversed CFG with a virtual exit: the divergent
// influence region of a branch is every block reachable from it that does
// not post-dominate it. A branch whose condition is varying marks its
// region's writes (and any KIL inside it) divergent; the data and control
// passes iterate to a joint fixpoint because a divergent write can make a
// later branch condition varying.
//
// A TEX with uniform coordinates is uniform: texture contents are
// draw-constant, so every fragment fetches the same texels. KIL's discard
// edge is ignored for the write side (a discarded fragment's outputs are
// never observed) but a KIL under varying control is itself the
// divergent-discard fact the lint and the masked lane engine care about.
//
// Everything here is a may-vary analysis: "uniform" is a proof, "varying"
// is the safe default.

// Uniformity holds the solved per-instruction uniformity facts.
type Uniformity struct {
	// OperandVarying[i][k] reports that operand k (0=A, 1=B, 2=C) of
	// instruction i may read different values in different fragments of
	// one draw (any read lane varying). False is a proof of uniformity.
	OperandVarying [][3]bool
	// Divergent[i] reports that instruction i executes under varying
	// control flow: whether it runs at all differs between fragments.
	Divergent []bool
	// VaryingBranches lists reachable BRZ instructions whose condition is
	// varying — the branches the masked lane engine pays divergence for.
	VaryingBranches []int

	cfg *CFG
}

// SolveUniformity runs the analysis over c. sccp restricts the solution to
// reachable code (unreachable instructions report uniform and
// non-divergent; they never execute, so any claim about them is vacuous).
func SolveUniformity(c *CFG, sccp *SCCP) *Uniformity {
	p := c.Prog
	n := len(p.Insts)
	u := &Uniformity{
		OperandVarying: make([][3]bool, n),
		Divergent:      make([]bool, n),
		cfg:            c,
	}
	if n == 0 {
		return u
	}
	comps := 4 * (p.NumTemps + p.NumOutputs)
	compOf := func(file shader.RegFile, reg uint16, cc int) int {
		if file == shader.FileTemp {
			return int(reg)*4 + cc
		}
		return (p.NumTemps+int(reg))*4 + cc
	}

	nb := len(c.Blocks)
	postdom := postDominators(c)
	divBlock := make([]bool, nb)

	// srcVarying reports whether lane l of src may vary under state.
	srcVarying := func(state []bool, src shader.Src, l int) bool {
		cc := int(src.Swiz[l] & 3)
		switch src.File {
		case shader.FileConst, shader.FileUniform:
			return false
		case shader.FileTemp, shader.FileOutput:
			return state[compOf(src.File, src.Reg, cc)]
		default: // FileInput: varyings and gl_FragCoord differ per fragment
			return true
		}
	}

	// step advances state across instruction i and returns whether the
	// instruction's result (for writes) or condition (BRZ/KIL) varies.
	step := func(state []bool, i int, divergent bool) (condVarying bool) {
		in := &p.Insts[i]
		la, lb, lc := in.SrcLanes()
		lanes := [3]uint8{la, lb, lc}
		srcs := [3]shader.Src{in.A, in.B, in.C}
		anyVarying := false
		for k := 0; k < 3; k++ {
			for l := 0; l < 4; l++ {
				if lanes[k]&(1<<uint(l)) != 0 && srcVarying(state, srcs[k], l) {
					anyVarying = true
				}
			}
		}
		if in.Op == shader.OpBRZ || in.Op == shader.OpKIL {
			return anyVarying
		}
		mask := in.WriteMask()
		if mask == 0 || (in.Dst.File != shader.FileTemp && in.Dst.File != shader.FileOutput) {
			return false
		}
		// A write under varying control varies regardless of its operands:
		// fragments that skipped it keep the previous value. Reductions mix
		// every read lane into every written lane, so one varying read lane
		// taints all written components; componentwise ops taint lane-wise.
		reduction := in.Op == shader.OpDP2 || in.Op == shader.OpDP3 || in.Op == shader.OpDP4
		for cc := 0; cc < 4; cc++ {
			if mask&(1<<uint(cc)) == 0 {
				continue
			}
			v := divergent
			if reduction {
				v = v || anyVarying
			} else {
				for k := 0; k < 3; k++ {
					if lanes[k]&(1<<uint(cc)) != 0 && srcVarying(state, srcs[k], cc) {
						v = true
					}
				}
			}
			state[compOf(in.Dst.File, in.Dst.Reg, cc)] = v
		}
		return false
	}

	// Joint fixpoint: the data pass (block-level forward dataflow) and the
	// control pass (divergent-region marking from varying branches)
	// alternate until neither adds a varying fact. Both lattices are
	// finite and the updates monotone, so this terminates.
	blockIn := make([][]bool, nb)
	for b := range blockIn {
		blockIn[b] = make([]bool, comps)
	}
	state := make([]bool, comps)
	for {
		changed := false
		// Data pass to its own fixpoint under the current divBlock. Every
		// block is reseeded: a block whose divBlock flag was just set
		// produces new facts even when its input state did not change.
		work := make([]int, 0, nb)
		inWork := make([]bool, nb)
		for b := nb - 1; b >= 0; b-- {
			work = append(work, b)
			inWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			inWork[b] = false
			copy(state, blockIn[b])
			for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
				step(state, i, divBlock[b])
			}
			for _, sb := range c.Blocks[b].Succs {
				sbChanged := false
				for j := range state {
					if state[j] && !blockIn[sb][j] {
						blockIn[sb][j] = true
						sbChanged = true
						changed = true
					}
				}
				if sbChanged && !inWork[sb] {
					work = append(work, sb)
					inWork[sb] = true
				}
			}
		}
		// Control pass: mark the influence region of every varying branch.
		for b := range c.Blocks {
			last := c.Blocks[b].End - 1
			if p.Insts[last].Op != shader.OpBRZ {
				continue
			}
			copy(state, blockIn[b])
			var cond bool
			for i := c.Blocks[b].Start; i <= last; i++ {
				cond = step(state, i, divBlock[b])
			}
			if !cond && !divBlock[b] {
				continue
			}
			// Blocks reachable from b that do not post-dominate b run for
			// some fragments and not others. A branch that is itself inside
			// a divergent region taints its region too (nested divergence).
			for _, x := range reachableFrom(c, b) {
				if x != b && !postdom[b].Get(x) && !divBlock[x] {
					divBlock[x] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Record per-instruction facts under the solved states.
	for b := range c.Blocks {
		copy(state, blockIn[b])
		for i := c.Blocks[b].Start; i < c.Blocks[b].End; i++ {
			in := &p.Insts[i]
			if sccp != nil && !sccp.Reachable[i] {
				step(state, i, divBlock[b])
				continue
			}
			u.Divergent[i] = divBlock[b]
			la, lb, lc := in.SrcLanes()
			lanes := [3]uint8{la, lb, lc}
			srcs := [3]shader.Src{in.A, in.B, in.C}
			for k := 0; k < 3; k++ {
				for l := 0; l < 4; l++ {
					if lanes[k]&(1<<uint(l)) != 0 && srcVarying(state, srcs[k], l) {
						u.OperandVarying[i][k] = true
					}
				}
			}
			if in.Op == shader.OpBRZ && (u.OperandVarying[i][0] || divBlock[b]) {
				u.VaryingBranches = append(u.VaryingBranches, i)
			}
			step(state, i, divBlock[b])
		}
	}
	return u
}

// postDominators computes block-level post-dominator sets: postdom[b].Get(a)
// reports that block a post-dominates block b. It is the dominator solve on
// the reversed CFG, entered from a virtual exit node (index len(Blocks))
// that joins every exit block; KIL discard edges are not exits (see
// SolveUniformity). Blocks that cannot reach any exit get the full set —
// harmless for the divergence marking, which only consumes "does NOT
// post-dominate".
func postDominators(c *CFG) []dataflow.BitSet {
	nb := len(c.Blocks)
	exits := c.ExitBlocks()
	return dataflow.Dominators(nb+1, nb, func(x int) []int {
		if x == nb {
			return exits
		}
		return c.Blocks[x].Preds
	})
}

// reachableFrom returns the blocks reachable from b (excluding b unless it
// is on a cycle through itself).
func reachableFrom(c *CFG, b int) []int {
	seen := make([]bool, len(c.Blocks))
	var out []int
	stack := append([]int(nil), c.Blocks[b].Succs...)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		out = append(out, x)
		stack = append(stack, c.Blocks[x].Succs...)
	}
	return out
}
