package analysis

import (
	"math"
	"math/rand"
	"testing"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/shader"
)

// FuzzPassPipeline drives the whole static-analysis stack — CFG, def-use,
// SCCP, resource counting, lint, the optimisation passes — with arbitrary
// GLSL, then differentially executes any program that survives the front
// end: the optimised form must match the reference interpreter bit-for-bit
// on outputs and exactly on Cycles/TexFetches/Discarded. Panics and parity
// breaks are both fuzz failures; rejected sources are simply uninteresting.
func FuzzPassPipeline(f *testing.F) {
	f.Add("precision mediump float;\nvoid main() { gl_FragColor = vec4(1.0); }\n")
	f.Add("precision mediump float;\nuniform float u;\nvoid main() {\n" +
		"\tfloat dead = u * 3.0;\n\tfloat x = u;\n\tif (x > 0.5) { discard; }\n" +
		"\tgl_FragColor = vec4(x + (0.25 + 0.25));\n}\n")
	f.Add("precision mediump float;\nuniform sampler2D t;\nvarying vec2 v;\n" +
		"void main() {\n\tvec2 c = texture2D(t, v).xy;\n\tgl_FragColor = texture2D(t, c);\n}\n")
	f.Add("precision mediump float;\nuniform vec2 a;\nuniform vec2 b;\n" +
		"void main() {\n\tfloat r = a.x * b.x + a.y * b.y;\n" +
		"\tfor (int i = 0; i < 3; i++) { r = r * 0.5 + 0.1; }\n\tgl_FragColor = vec4(r);\n}\n")
	f.Add("precision mediump float;\nvoid main() { float x; gl_FragColor = vec4(x); }\n")
	f.Fuzz(func(t *testing.T, src string) {
		cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
		if err != nil {
			return
		}
		p, err := shader.Compile(cs)
		if err != nil || len(p.Insts) == 0 {
			return
		}
		cfg := BuildCFG(p)
		_ = CountResources(cfg)
		_ = Lint(p, LimitProfiles())
		// The CFG-derived mask-safety proof and the executor's own
		// eligibility probe must agree on every program.
		_, execReason := shader.MaskedFallbackAt(p)
		_, cfgReason := MaskSafety(cfg)
		if (execReason == "") != (cfgReason == "") {
			t.Fatalf("MaskSafety and MaskedFallbackAt disagree: executor %q, analysis %q",
				execReason, cfgReason)
		}
		o := Optimize(p)
		if o == nil {
			return
		}
		if err := p.SetOptimized(o); err != nil {
			t.Fatalf("Optimize broke the OptProgram contract: %v", err)
		}
		cost := shader.DefaultCostModel()
		mkEnv := func() *shader.Env {
			env := shader.NewEnv(p)
			rng := rand.New(rand.NewSource(7))
			for i := range env.Uniforms {
				for c := 0; c < 4; c++ {
					env.Uniforms[i][c] = rng.Float32()
				}
			}
			for i := range env.Inputs {
				for c := 0; c < 4; c++ {
					env.Inputs[i][c] = rng.Float32()
				}
			}
			env.Sample = func(idx int, u, v float32) shader.Vec4 {
				h := math.Float32bits(u)*2654435761 + math.Float32bits(v)*40503 + uint32(idx)*97
				f := func(s uint32) float32 { return float32((h>>s)&0xFF) / 255 }
				return shader.Vec4{f(0), f(8), f(16), f(24)}
			}
			env.Reset()
			return env
		}
		ref, opt := mkEnv(), mkEnv()
		errRef := shader.Run(p, ref, &cost)
		errOpt := shader.RunOptimized(p, opt, &cost)
		if (errRef == nil) != (errOpt == nil) {
			t.Fatalf("execution disagreement: interp err=%v, passes err=%v", errRef, errOpt)
		}
		if errRef != nil {
			return
		}
		if ref.Discarded != opt.Discarded || ref.Cycles != opt.Cycles || ref.TexFetches != opt.TexFetches {
			t.Fatalf("counter divergence: discarded %v/%v cycles %d/%d tex %d/%d",
				ref.Discarded, opt.Discarded, ref.Cycles, opt.Cycles, ref.TexFetches, opt.TexFetches)
		}
		if !ref.Discarded {
			for i := range ref.Outputs {
				for c := 0; c < 4; c++ {
					if math.Float32bits(ref.Outputs[i][c]) != math.Float32bits(opt.Outputs[i][c]) {
						t.Fatalf("output o%d.%d diverges: %v vs %v", i, c, ref.Outputs[i][c], opt.Outputs[i][c])
					}
				}
			}
		}
	})
}
