package analysis

import (
	"strings"
	"testing"

	"gles2gpgpu/internal/shader"
)

func solveFootprint(t *testing.T, p *shader.Program) *Footprint {
	t.Helper()
	c := BuildCFG(p)
	return SolveFootprint(c, SolveDefUse(c), SolveSCCP(c))
}

// constBounds is an inBounds callback returning the same interval for
// every input component.
func constBounds(lo, hi float32) func(reg, comp int) (float32, float32, bool) {
	return func(reg, comp int) (float32, float32, bool) { return lo, hi, true }
}

func TestFootprintDirectVarying(t *testing.T) {
	p := compileGLSL(t, `
precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	gl_FragColor = texture2D(text0, v_tex);
}`)
	f := solveFootprint(t, p)
	if len(f.Slots) != 1 || !f.Slots[0].Provable {
		t.Fatalf("slot 0 unprovable: %+v", f.Slots)
	}
	if n := len(f.Slots[0].Coords); n != 1 {
		t.Fatalf("coords = %d, want 1", n)
	}
	pair := f.Slots[0].Coords[0]
	if !pair.U.HasInput || !pair.V.HasInput {
		t.Fatalf("coordinates should trace to input components: %+v", pair)
	}
	r, ok := f.SlotRect(0, nil, constBounds(0.25, 0.75), 64, 64)
	if !ok {
		t.Fatal("SlotRect failed on a proven slot")
	}
	// idx(0.25*64)=16, idx(0.75*64)=48, exact (no pad).
	want := TexRect{X0: 16, Y0: 16, X1: 48, Y1: 48}
	if r != want {
		t.Errorf("rect = %+v, want %+v", r, want)
	}
}

func TestFootprintAffineChain(t *testing.T) {
	p := compileGLSL(t, `
precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	gl_FragColor = texture2D(text0, v_tex * 0.5 + vec2(0.25, 0.25));
}`)
	f := solveFootprint(t, p)
	if !f.Slots[0].Provable {
		t.Fatalf("affine coordinate unprovable: pc %d: %s",
			f.Slots[0].Pc, f.Slots[0].Reason)
	}
	r, ok := f.SlotRect(0, nil, constBounds(0, 1), 64, 64)
	if !ok {
		t.Fatal("SlotRect failed on a proven slot")
	}
	// u = [0,1]*0.5+0.25 = [0.25, 0.75] exactly in float32.
	want := TexRect{X0: 16, Y0: 16, X1: 48, Y1: 48}
	if r != want {
		t.Errorf("rect = %+v, want %+v", r, want)
	}
}

func TestFootprintUniformConstantCoord(t *testing.T) {
	p := compileGLSL(t, `
precision mediump float;
uniform sampler2D text0;
uniform vec2 u_off;
void main() {
	gl_FragColor = texture2D(text0, u_off);
}`)
	f := solveFootprint(t, p)
	if !f.Slots[0].Provable {
		t.Fatalf("uniform coordinate unprovable: %s", f.Slots[0].Reason)
	}
	pair := f.Slots[0].Coords[0]
	if pair.U.HasInput || pair.V.HasInput {
		t.Fatalf("uniform coordinate should not reference inputs: %+v", pair)
	}
	// Fill every uniform register with 0.5 so the test does not depend on
	// register assignment.
	uniforms := make([][4]float32, 8)
	for i := range uniforms {
		uniforms[i] = [4]float32{0.5, 0.5, 0.5, 0.5}
	}
	r, ok := f.SlotRect(0, uniforms, nil, 64, 64)
	if !ok {
		t.Fatal("SlotRect failed on a draw-constant slot")
	}
	want := TexRect{X0: 32, Y0: 32, X1: 32, Y1: 32} // idx(0.5*64) exactly
	if r != want {
		t.Errorf("rect = %+v, want %+v", r, want)
	}
}

func TestFootprintDependentFetchUnprovable(t *testing.T) {
	p := compileGLSL(t, `
precision mediump float;
uniform sampler2D text0;
uniform sampler2D text1;
varying vec2 v_tex;
void main() {
	vec4 t = texture2D(text1, v_tex);
	gl_FragColor = texture2D(text0, t.xy);
}`)
	f := solveFootprint(t, p)
	var dep, direct *SlotFootprint
	for si := range f.Slots {
		for i := range p.Insts {
			in := &p.Insts[i]
			if in.Op == shader.OpTEX && int(in.SamplerIdx) == si {
				if in.A.File == shader.FileInput || f.Slots[si].Provable {
					direct = &f.Slots[si]
				} else {
					dep = &f.Slots[si]
				}
				break
			}
		}
	}
	if direct == nil || !direct.Provable {
		t.Errorf("the directly-addressed slot should be provable: %+v", f.Slots)
	}
	if dep == nil || dep.Provable {
		t.Fatalf("the dependent fetch should be unprovable: %+v", f.Slots)
	}
	if !strings.Contains(dep.Reason, "texture fetch") {
		t.Errorf("reason = %q, want a dependent-fetch explanation", dep.Reason)
	}
	if _, ok := f.SlotRect(sIdx(f, dep), nil, constBounds(0, 1), 64, 64); ok {
		t.Errorf("SlotRect must fail for an unprovable slot")
	}
}

func sIdx(f *Footprint, s *SlotFootprint) int {
	for i := range f.Slots {
		if &f.Slots[i] == s {
			return i
		}
	}
	return -1
}

func TestFootprintNonAffineUnprovable(t *testing.T) {
	p := compileGLSL(t, `
precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	gl_FragColor = texture2D(text0, v_tex * v_tex);
}`)
	f := solveFootprint(t, p)
	if f.Slots[0].Provable {
		t.Fatalf("varying*varying coordinate should be unprovable")
	}
	if f.Slots[0].Pc < 0 || f.Slots[0].Reason == "" {
		t.Errorf("unprovable slot should carry pc and reason: %+v", f.Slots[0])
	}
}

func TestFootprintKernelsProvable(t *testing.T) {
	// The paper kernels all address textures affinely (v_tex, or
	// const+uniform offsets of it); every slot should be provable so the
	// coherence cache can skip dynamic tracking for them.
	p := compileGLSL(t, `
precision mediump float;
uniform sampler2D text0;
uniform sampler2D text1;
varying vec2 v_tex;
void main() {
	vec4 a = texture2D(text0, v_tex);
	vec4 b = texture2D(text1, v_tex + vec2(0.125, 0.0));
	gl_FragColor = (a + b) * 0.5;
}`)
	f := solveFootprint(t, p)
	for si := range f.Slots {
		if !f.Slots[si].Provable {
			t.Errorf("slot %d unprovable: pc %d: %s", si, f.Slots[si].Pc, f.Slots[si].Reason)
		}
	}
}
