package analysis

import (
	"fmt"

	"gles2gpgpu/internal/shader"
)

// Lint rules driven by the uniformity, value-range and footprint lattices.
//
// These surface what the optimisation passes see, so a kernel author can
// tell WHY a program did or did not take a fast path: a branch the
// uniformity analysis proved uniform (every fragment in a draw takes the
// same arm), a discard that actually diverges, a clamp the range analysis
// proved dead, a sampler whose footprint the coherence cache cannot bound
// statically, and the masked-lane engine's eligibility verdict with the
// defeating instruction when it falls back.

// lintUniformBranches flags reachable branches whose condition is proven
// uniform but not constant: every fragment of a draw takes the same arm,
// so the branch costs control flow without ever diverging — the guarded
// code could be hoisted to the CPU (a uniform) or split into two
// programs. SCCP-constant conditions are excluded; those are dead code,
// not draw-uniform code.
func lintUniformBranches(p *shader.Program, u *Uniformity, sccp *SCCP) []Finding {
	varying := make(map[int]bool, len(u.VaryingBranches))
	for _, i := range u.VaryingBranches {
		varying[i] = true
	}
	var fs []Finding
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op != shader.OpBRZ || !sccp.Reachable[i] || varying[i] {
			continue
		}
		if sccp.Operand[i][0].OK {
			continue
		}
		fs = append(fs, Finding{
			Code: "uniform-branch",
			Sev:  SevInfo,
			Pos:  in.SrcPos,
			Msg: "branch condition is uniform across every fragment of a draw; " +
				"the branch never diverges and could be hoisted out of the shader",
		})
	}
	return fs
}

// lintDivergentDiscards flags reachable discards that are fragment-
// dependent: the condition is varying, or the discard sits in a region
// controlled by a varying branch. Under masked-lane execution these are
// the points where lanes die individually; a draw-uniform discard (not
// flagged) kills or keeps the whole draw instead.
func lintDivergentDiscards(p *shader.Program, u *Uniformity, sccp *SCCP) []Finding {
	var fs []Finding
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op != shader.OpKIL || !sccp.Reachable[i] {
			continue
		}
		if !u.OperandVarying[i][0] && !u.Divergent[i] {
			continue
		}
		fs = append(fs, Finding{
			Code: "divergent-discard",
			Sev:  SevInfo,
			Pos:  in.SrcPos,
			Msg: "discard depends on per-fragment values; under masked-lane " +
				"execution lanes die here individually",
		})
	}
	return fs
}

// lintDeadClamps flags reachable CLAMP instructions whose input is
// already proven inside [lo, hi] on every written lane, with no NaN in
// any of the three operands (a NaN input passes through CLAMP, so the
// proof must exclude it). The instruction is then an identity costing ALU
// cycles on every fragment.
func lintDeadClamps(p *shader.Program, r *Ranges, sccp *SCCP) []Finding {
	if r.AllTop {
		return nil
	}
	var fs []Finding
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op != shader.OpCLAMP || !sccp.Reachable[i] {
			continue
		}
		mask := in.WriteMask()
		if mask == 0 {
			continue
		}
		dead := true
		for l := 0; l < 4 && dead; l++ {
			if mask&(1<<uint(l)) == 0 {
				continue
			}
			x := r.Operand[i][0][l]
			lo := r.Operand[i][1][l]
			hi := r.Operand[i][2][l]
			if x.NaN || lo.NaN || hi.NaN || x.Lo < lo.Hi || x.Hi > hi.Lo {
				dead = false
			}
		}
		if !dead {
			continue
		}
		fs = append(fs, Finding{
			Code: "provably-dead-clamp",
			Sev:  SevWarning,
			Pos:  in.SrcPos,
			Msg: "clamp is provably a no-op: the value is already within the " +
				"clamp bounds on every written component",
		})
	}
	return fs
}

// lintFootprints flags sampler slots whose texel footprint the analysis
// cannot bound statically, with the defeating fetch and reason. Those
// slots keep per-fetch dynamic tracking in the coherence cache instead of
// the up-front proven rectangle.
func lintFootprints(p *shader.Program, f *Footprint) []Finding {
	var fs []Finding
	for si := range f.Slots {
		s := &f.Slots[si]
		if s.Provable {
			continue
		}
		fd := Finding{
			Code: "unbounded-footprint",
			Sev:  SevInfo,
			Msg: fmt.Sprintf("sampler slot %d has a statically unbounded footprint (%s); "+
				"the coherence cache falls back to per-fetch tracking for it", si, s.Reason),
		}
		if s.Pc >= 0 && s.Pc < len(p.Insts) {
			fd.Pos = p.Insts[s.Pc].SrcPos
		}
		fs = append(fs, fd)
	}
	return fs
}

// lintMaskEligibility reports the divergence-masked lane engine's verdict
// for branchy programs (straight-line programs are covered by the
// lane-eligible finding instead). The eligibility probe is the executor's
// own (shader.MaskedFallbackAt); MaskSafety re-derives the same property
// from the CFG, and a disagreement between the two would be a compiler
// bug worth surfacing loudly.
func lintMaskEligibility(p *shader.Program, c *CFG) []Finding {
	if len(c.Blocks) <= 1 {
		return nil
	}
	pc, reason := shader.MaskedFallbackAt(p)
	spc, sreason := MaskSafety(c)
	if (reason == "") != (sreason == "") {
		return []Finding{{
			Code: "mask-eligible",
			Sev:  SevWarning,
			Msg: fmt.Sprintf("executor and CFG disagree on mask safety "+
				"(executor: pc %d %q, analysis: pc %d %q); eligibility probe "+
				"and analysis disagree (compiler bug?)", pc, reason, spc, sreason),
		}}
	}
	if reason == "" {
		return []Finding{{
			Code: "mask-eligible",
			Sev:  SevInfo,
			Msg: "forward-only control flow: the masked-lane engine shades " +
				"fragment batches through diverging branches with per-lane masks",
		}}
	}
	f := Finding{
		Code: "mask-fallback",
		Sev:  SevInfo,
		Msg:  fmt.Sprintf("per-fragment execution: %s", reason),
	}
	if pc >= 0 && pc < len(p.Insts) {
		f.Pos = p.Insts[pc].SrcPos
	}
	return []Finding{f}
}
