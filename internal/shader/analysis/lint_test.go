package analysis

import (
	"strings"
	"testing"
)

// findByCode filters findings by rule code.
func findByCode(fs []Finding, code string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Code == code {
			out = append(out, f)
		}
	}
	return out
}

func TestLintMadFusion(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float a;
uniform float b;
uniform float c;
void main() {
	float t = a * b;
	float r = t + c;
	gl_FragColor = vec4(r);
}
`)
	fs := findByCode(Lint(p, nil), "mad-fusion")
	if len(fs) == 0 {
		t.Fatalf("separate mul/add should trigger mad-fusion; findings: %v", Lint(p, nil))
	}
	if fs[0].Pos.Line != 7 {
		t.Errorf("finding at %v, want line 7 (the addition)", fs[0].Pos)
	}
	if fs[0].Sev != SevWarning {
		t.Errorf("severity = %v, want warning", fs[0].Sev)
	}
}

func TestLintMadFusionNotFiredWhenFused(t *testing.T) {
	// Written as one expression, the compiler fuses the MAD itself.
	p := compileGLSL(t, `precision mediump float;
uniform float a;
uniform float b;
uniform float c;
void main() {
	gl_FragColor = vec4(a * b + c);
}
`)
	if fs := findByCode(Lint(p, nil), "mad-fusion"); len(fs) != 0 {
		t.Errorf("fused expression should not warn: %v", fs)
	}
}

func TestLintBuiltinDot(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform vec2 a;
uniform vec2 b;
void main() {
	float r = a.x * b.x + a.y * b.y;
	gl_FragColor = vec4(r);
}
`)
	fs := findByCode(Lint(p, nil), "builtin-dot")
	if len(fs) == 0 {
		t.Fatalf("hand-expanded dot should trigger builtin-dot; findings: %v", Lint(p, nil))
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("finding at %v, want line 5", fs[0].Pos)
	}
}

func TestLintBuiltinDotNotFiredOnBuiltin(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform vec2 a;
uniform vec2 b;
void main() {
	gl_FragColor = vec4(dot(a, b));
}
`)
	if fs := findByCode(Lint(p, nil), "builtin-dot"); len(fs) != 0 {
		t.Errorf("dot() builtin should not warn: %v", fs)
	}
}

func TestLintBuiltinClamp(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float x;
void main() {
	float r = min(max(x, 0.25), 0.75);
	gl_FragColor = vec4(r);
}
`)
	fs := findByCode(Lint(p, nil), "builtin-clamp")
	if len(fs) == 0 {
		t.Fatalf("min(max(..)..) should trigger builtin-clamp; findings: %v", Lint(p, nil))
	}
	if fs[0].Pos.Line != 4 {
		t.Errorf("finding at %v, want line 4", fs[0].Pos)
	}
}

func TestLintUninitRead(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float u;
void main() {
	float x;
	if (u > 0.5) {
		x = 1.0;
	}
	gl_FragColor = vec4(x);
}
`)
	fs := findByCode(Lint(p, nil), "uninit-read")
	if len(fs) == 0 {
		t.Fatalf("conditional init should trigger uninit-read; findings: %v", Lint(p, nil))
	}
}

func TestLintNoUninitReadWhenInitialised(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float u;
void main() {
	float x = 0.0;
	if (u > 0.5) {
		x = 1.0;
	}
	gl_FragColor = vec4(x);
}
`)
	if fs := findByCode(Lint(p, nil), "uninit-read"); len(fs) != 0 {
		t.Errorf("initialised variable should not warn: %v", fs)
	}
}

func TestLintAlwaysDiscard(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
void main() {
	discard;
}
`)
	fs := findByCode(Lint(p, nil), "always-discard")
	if len(fs) == 0 {
		t.Fatalf("bare discard should warn; findings: %v", Lint(p, nil))
	}
	if !strings.Contains(fs[0].Msg, "every fragment") {
		t.Errorf("dominating discard should use the strong wording: %q", fs[0].Msg)
	}
}

func TestLintConditionalDiscardSilent(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
varying vec2 v_tex;
void main() {
	if (v_tex.x < 0.5) {
		discard;
	}
	gl_FragColor = vec4(1.0);
}
`)
	if fs := findByCode(Lint(p, nil), "always-discard"); len(fs) != 0 {
		t.Errorf("data-dependent discard should not warn: %v", fs)
	}
}

func TestLintLimitHeadroom(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	gl_FragColor = texture2D(text0, v_tex);
}
`)
	fs := Lint(p, LimitProfiles())
	head := findByCode(fs, "limit-headroom")
	if len(head) == 0 {
		t.Fatalf("profiles should produce headroom findings")
	}
	// Both profiles report at least instructions + texture accesses.
	if len(head) < 4 {
		t.Errorf("got %d headroom findings, want >= 4: %v", len(head), head)
	}
	for _, f := range head {
		if f.Sev != SevInfo {
			t.Errorf("headroom severity = %v, want info", f.Sev)
		}
	}
	if exceeded := findByCode(fs, "limit-exceeded"); len(exceeded) != 0 {
		t.Errorf("tiny kernel should not exceed limits: %v", exceeded)
	}
}

// TestLintKernelSuiteFindingClasses pins the acceptance criterion: run on
// the generated kernel corpus, the linter produces MAD, builtin and
// limit-headroom findings with GLSL source positions.
func TestLintKernelSuiteFindingClasses(t *testing.T) {
	classes := map[string]bool{}
	positioned := 0
	for _, k := range kernelSuite(t) {
		for _, f := range Lint(k.prog, LimitProfiles()) {
			classes[f.Code] = true
			if f.Pos.Line > 0 {
				positioned++
			}
		}
	}
	// The hand-written corpus shaders exercise the rules the generated
	// kernels (already optimised per the paper) avoid.
	p := compileGLSL(t, `precision mediump float;
uniform vec3 a;
uniform vec3 b;
uniform float c;
void main() {
	float t = a.x * b.x;
	float s = t + c;
	float r = min(max(s, 0.0), 1.0);
	gl_FragColor = vec4(r);
}
`)
	for _, f := range Lint(p, LimitProfiles()) {
		classes[f.Code] = true
		if f.Pos.Line > 0 {
			positioned++
		}
	}
	for _, want := range []string{"mad-fusion", "builtin-clamp", "limit-headroom"} {
		if !classes[want] {
			t.Errorf("finding class %q never produced; got %v", want, classes)
		}
	}
	if positioned == 0 {
		t.Errorf("no finding carried a source position")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Code: "mad-fusion", Sev: SevWarning, Msg: "m"}
	f.Pos.Line, f.Pos.Col = 3, 7
	if got := f.String(); got != "3:7: warning: [mad-fusion] m" {
		t.Errorf("String() = %q", got)
	}
	f.Pos.Line = 0
	if got := f.String(); got != "warning: [mad-fusion] m" {
		t.Errorf("String() without pos = %q", got)
	}
}

func TestLintUniformBranch(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float u;
void main() {
	float r = 0.0;
	if (u > 0.5) {
		r = 1.0;
	}
	gl_FragColor = vec4(r);
}
`)
	fs := findByCode(Lint(p, nil), "uniform-branch")
	if len(fs) == 0 {
		t.Fatalf("uniform-condition branch should be reported; findings: %v", Lint(p, nil))
	}
	if fs[0].Sev != SevInfo {
		t.Errorf("severity = %v, want info", fs[0].Sev)
	}
}

func TestLintUniformBranchNotFiredOnVarying(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
varying vec2 v_tex;
void main() {
	float r = 0.0;
	if (v_tex.x > 0.5) {
		r = 1.0;
	}
	gl_FragColor = vec4(r);
}
`)
	if fs := findByCode(Lint(p, nil), "uniform-branch"); len(fs) != 0 {
		t.Errorf("varying-condition branch must not report uniform-branch: %v", fs)
	}
}

func TestLintDivergentDiscard(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
varying vec2 v_tex;
void main() {
	if (v_tex.x < 0.5) {
		discard;
	}
	gl_FragColor = vec4(1.0);
}
`)
	fs := findByCode(Lint(p, nil), "divergent-discard")
	if len(fs) == 0 {
		t.Fatalf("fragment-dependent discard should be reported; findings: %v", Lint(p, nil))
	}
}

func TestLintUniformDiscardNotDivergent(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float u;
void main() {
	if (u < 0.5) {
		discard;
	}
	gl_FragColor = vec4(1.0);
}
`)
	if fs := findByCode(Lint(p, nil), "divergent-discard"); len(fs) != 0 {
		t.Errorf("draw-uniform discard must not report divergent-discard: %v", fs)
	}
}

func TestLintProvablyDeadClamp(t *testing.T) {
	// The comparison result is always in [0,1], so clamping it to [0,1]
	// is an identity the range analysis proves.
	p := compileGLSL(t, `precision mediump float;
varying vec2 v_tex;
void main() {
	float s = float(v_tex.x > 0.5);
	float r = clamp(s, 0.0, 1.0);
	gl_FragColor = vec4(r);
}
`)
	fs := findByCode(Lint(p, nil), "provably-dead-clamp")
	if len(fs) == 0 {
		t.Fatalf("identity clamp should warn; findings: %v", Lint(p, nil))
	}
	if fs[0].Sev != SevWarning {
		t.Errorf("severity = %v, want warning", fs[0].Sev)
	}
}

func TestLintLiveClampSilent(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
varying vec2 v_tex;
void main() {
	gl_FragColor = vec4(clamp(v_tex.x, 0.25, 0.75));
}
`)
	if fs := findByCode(Lint(p, nil), "provably-dead-clamp"); len(fs) != 0 {
		t.Errorf("clamp over an unbounded input must not warn: %v", fs)
	}
}

func TestLintUnboundedFootprint(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	gl_FragColor = texture2D(text0, v_tex * v_tex);
}
`)
	fs := findByCode(Lint(p, nil), "unbounded-footprint")
	if len(fs) == 0 {
		t.Fatalf("non-affine coordinate should be reported; findings: %v", Lint(p, nil))
	}
	if !strings.Contains(fs[0].Msg, "slot 0") {
		t.Errorf("finding should name the slot: %q", fs[0].Msg)
	}
}

func TestLintBoundedFootprintSilent(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	gl_FragColor = texture2D(text0, v_tex);
}
`)
	if fs := findByCode(Lint(p, nil), "unbounded-footprint"); len(fs) != 0 {
		t.Errorf("affine coordinate must not report unbounded-footprint: %v", fs)
	}
}

func TestLintMaskEligibility(t *testing.T) {
	// Branchy forward-only program: mask-eligible, and no lane-eligible
	// false positive from the straight-line rule.
	p := compileGLSL(t, `precision mediump float;
varying vec2 v_tex;
void main() {
	float r = 0.0;
	if (v_tex.x > 0.5) {
		r = 1.0;
	}
	gl_FragColor = vec4(r);
}
`)
	fs := Lint(p, nil)
	el := findByCode(fs, "mask-eligible")
	if len(el) != 1 || el[0].Sev != SevInfo {
		t.Fatalf("forward-branchy program should be mask-eligible (info); findings: %v", fs)
	}
	if fb := findByCode(fs, "mask-fallback"); len(fb) != 0 {
		t.Errorf("eligible program must not also report mask-fallback: %v", fb)
	}

	// Straight-line program: neither masked finding, only lane-eligible.
	p = compileGLSL(t, `precision mediump float;
void main() {
	gl_FragColor = vec4(1.0);
}
`)
	fs = Lint(p, nil)
	if len(findByCode(fs, "mask-eligible"))+len(findByCode(fs, "mask-fallback")) != 0 {
		t.Errorf("straight-line program is covered by lane-eligible alone: %v", fs)
	}
	if len(findByCode(fs, "lane-eligible")) != 1 {
		t.Errorf("straight-line program should be lane-eligible: %v", fs)
	}
}
