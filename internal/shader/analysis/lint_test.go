package analysis

import (
	"strings"
	"testing"
)

// findByCode filters findings by rule code.
func findByCode(fs []Finding, code string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Code == code {
			out = append(out, f)
		}
	}
	return out
}

func TestLintMadFusion(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float a;
uniform float b;
uniform float c;
void main() {
	float t = a * b;
	float r = t + c;
	gl_FragColor = vec4(r);
}
`)
	fs := findByCode(Lint(p, nil), "mad-fusion")
	if len(fs) == 0 {
		t.Fatalf("separate mul/add should trigger mad-fusion; findings: %v", Lint(p, nil))
	}
	if fs[0].Pos.Line != 7 {
		t.Errorf("finding at %v, want line 7 (the addition)", fs[0].Pos)
	}
	if fs[0].Sev != SevWarning {
		t.Errorf("severity = %v, want warning", fs[0].Sev)
	}
}

func TestLintMadFusionNotFiredWhenFused(t *testing.T) {
	// Written as one expression, the compiler fuses the MAD itself.
	p := compileGLSL(t, `precision mediump float;
uniform float a;
uniform float b;
uniform float c;
void main() {
	gl_FragColor = vec4(a * b + c);
}
`)
	if fs := findByCode(Lint(p, nil), "mad-fusion"); len(fs) != 0 {
		t.Errorf("fused expression should not warn: %v", fs)
	}
}

func TestLintBuiltinDot(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform vec2 a;
uniform vec2 b;
void main() {
	float r = a.x * b.x + a.y * b.y;
	gl_FragColor = vec4(r);
}
`)
	fs := findByCode(Lint(p, nil), "builtin-dot")
	if len(fs) == 0 {
		t.Fatalf("hand-expanded dot should trigger builtin-dot; findings: %v", Lint(p, nil))
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("finding at %v, want line 5", fs[0].Pos)
	}
}

func TestLintBuiltinDotNotFiredOnBuiltin(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform vec2 a;
uniform vec2 b;
void main() {
	gl_FragColor = vec4(dot(a, b));
}
`)
	if fs := findByCode(Lint(p, nil), "builtin-dot"); len(fs) != 0 {
		t.Errorf("dot() builtin should not warn: %v", fs)
	}
}

func TestLintBuiltinClamp(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float x;
void main() {
	float r = min(max(x, 0.25), 0.75);
	gl_FragColor = vec4(r);
}
`)
	fs := findByCode(Lint(p, nil), "builtin-clamp")
	if len(fs) == 0 {
		t.Fatalf("min(max(..)..) should trigger builtin-clamp; findings: %v", Lint(p, nil))
	}
	if fs[0].Pos.Line != 4 {
		t.Errorf("finding at %v, want line 4", fs[0].Pos)
	}
}

func TestLintUninitRead(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float u;
void main() {
	float x;
	if (u > 0.5) {
		x = 1.0;
	}
	gl_FragColor = vec4(x);
}
`)
	fs := findByCode(Lint(p, nil), "uninit-read")
	if len(fs) == 0 {
		t.Fatalf("conditional init should trigger uninit-read; findings: %v", Lint(p, nil))
	}
}

func TestLintNoUninitReadWhenInitialised(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform float u;
void main() {
	float x = 0.0;
	if (u > 0.5) {
		x = 1.0;
	}
	gl_FragColor = vec4(x);
}
`)
	if fs := findByCode(Lint(p, nil), "uninit-read"); len(fs) != 0 {
		t.Errorf("initialised variable should not warn: %v", fs)
	}
}

func TestLintAlwaysDiscard(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
void main() {
	discard;
}
`)
	fs := findByCode(Lint(p, nil), "always-discard")
	if len(fs) == 0 {
		t.Fatalf("bare discard should warn; findings: %v", Lint(p, nil))
	}
	if !strings.Contains(fs[0].Msg, "every fragment") {
		t.Errorf("dominating discard should use the strong wording: %q", fs[0].Msg)
	}
}

func TestLintConditionalDiscardSilent(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
varying vec2 v_tex;
void main() {
	if (v_tex.x < 0.5) {
		discard;
	}
	gl_FragColor = vec4(1.0);
}
`)
	if fs := findByCode(Lint(p, nil), "always-discard"); len(fs) != 0 {
		t.Errorf("data-dependent discard should not warn: %v", fs)
	}
}

func TestLintLimitHeadroom(t *testing.T) {
	p := compileGLSL(t, `precision mediump float;
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	gl_FragColor = texture2D(text0, v_tex);
}
`)
	fs := Lint(p, LimitProfiles())
	head := findByCode(fs, "limit-headroom")
	if len(head) == 0 {
		t.Fatalf("profiles should produce headroom findings")
	}
	// Both profiles report at least instructions + texture accesses.
	if len(head) < 4 {
		t.Errorf("got %d headroom findings, want >= 4: %v", len(head), head)
	}
	for _, f := range head {
		if f.Sev != SevInfo {
			t.Errorf("headroom severity = %v, want info", f.Sev)
		}
	}
	if exceeded := findByCode(fs, "limit-exceeded"); len(exceeded) != 0 {
		t.Errorf("tiny kernel should not exceed limits: %v", exceeded)
	}
}

// TestLintKernelSuiteFindingClasses pins the acceptance criterion: run on
// the generated kernel corpus, the linter produces MAD, builtin and
// limit-headroom findings with GLSL source positions.
func TestLintKernelSuiteFindingClasses(t *testing.T) {
	classes := map[string]bool{}
	positioned := 0
	for _, k := range kernelSuite(t) {
		for _, f := range Lint(k.prog, LimitProfiles()) {
			classes[f.Code] = true
			if f.Pos.Line > 0 {
				positioned++
			}
		}
	}
	// The hand-written corpus shaders exercise the rules the generated
	// kernels (already optimised per the paper) avoid.
	p := compileGLSL(t, `precision mediump float;
uniform vec3 a;
uniform vec3 b;
uniform float c;
void main() {
	float t = a.x * b.x;
	float s = t + c;
	float r = min(max(s, 0.0), 1.0);
	gl_FragColor = vec4(r);
}
`)
	for _, f := range Lint(p, LimitProfiles()) {
		classes[f.Code] = true
		if f.Pos.Line > 0 {
			positioned++
		}
	}
	for _, want := range []string{"mad-fusion", "builtin-clamp", "limit-headroom"} {
		if !classes[want] {
			t.Errorf("finding class %q never produced; got %v", want, classes)
		}
	}
	if positioned == 0 {
		t.Errorf("no finding carried a source position")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Code: "mad-fusion", Sev: SevWarning, Msg: "m"}
	f.Pos.Line, f.Pos.Col = 3, 7
	if got := f.String(); got != "3:7: warning: [mad-fusion] m" {
		t.Errorf("String() = %q", got)
	}
	f.Pos.Line = 0
	if got := f.String(); got != "warning: [mad-fusion] m" {
		t.Errorf("String() without pos = %q", got)
	}
}
