package analysis

import (
	"fmt"
	"sort"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/shader"
)

// glslint diagnostics.
//
// The warnings target the paper's "Kernel Code" optimisation list (§II,
// Fig. 3): arithmetic that misses the MAD fusion the hardware gives away
// for free, expanded code where a single-instruction builtin (dot, clamp)
// exists, and per-device limit headroom so a kernel author can see how
// close a block size is to the Fig. 4b compile cliff. Correctness warnings
// (reads of possibly-uninitialised registers, fragments that are always
// discarded) come from the same dataflow facts.

// Severity ranks a finding.
type Severity int

// Severities, in ascending order.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevWarning:
		return "warning"
	case SevError:
		return "error"
	}
	return "info"
}

// Finding is one diagnostic, positioned in the original GLSL source.
type Finding struct {
	Code string // stable machine-readable rule name
	Sev  Severity
	Pos  glsl.Pos // zero when no single source location applies
	Msg  string
}

func (f Finding) String() string {
	if f.Pos.Line != 0 {
		return fmt.Sprintf("%d:%d: %s: [%s] %s", f.Pos.Line, f.Pos.Col, f.Sev, f.Code, f.Msg)
	}
	return fmt.Sprintf("%s: [%s] %s", f.Sev, f.Code, f.Msg)
}

// Lint runs every diagnostic rule on p and checks it against the given
// device profiles (nil profiles skips the limit section). Findings are
// ordered by severity (errors first), then source position.
func Lint(p *shader.Program, profiles []LimitProfile) []Finding {
	var fs []Finding
	if len(p.Insts) > 0 {
		cfg := BuildCFG(p)
		du := SolveDefUse(cfg)
		sccp := SolveSCCP(cfg)
		uni := SolveUniformity(cfg, sccp)
		rng := SolveRanges(cfg, sccp)
		foot := SolveFootprint(cfg, du, sccp)
		fs = append(fs, lintMadFusion(p, du, sccp)...)
		fs = append(fs, lintBuiltins(p, du, sccp)...)
		fs = append(fs, lintUninitReads(p, sccp)...)
		fs = append(fs, lintAlwaysDiscard(cfg, sccp)...)
		fs = append(fs, lintUniformBranches(p, uni, sccp)...)
		fs = append(fs, lintDivergentDiscards(p, uni, sccp)...)
		fs = append(fs, lintDeadClamps(p, rng, sccp)...)
		fs = append(fs, lintFootprints(p, foot)...)
		fs = append(fs, lintMaskEligibility(p, cfg)...)
		res := CountResources(cfg)
		for _, lp := range profiles {
			fs = append(fs, CheckLimits(p, res, lp)...)
		}
		fs = append(fs, lintLaneEligibility(p, cfg)...)
		fs = append(fs, lintFusionEligibility(p)...)
	}
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Sev != fs[j].Sev {
			return fs[i].Sev > fs[j].Sev
		}
		if fs[i].Pos.Line != fs[j].Pos.Line {
			return fs[i].Pos.Line < fs[j].Pos.Line
		}
		return fs[i].Pos.Col < fs[j].Pos.Col
	})
	return fs
}

// singleConsumer reports whether every use of definition d happens at one
// instruction, and returns it.
func singleConsumer(du *DefUse, d int) (int, bool) {
	insts := UseInsts(du.Uses[d])
	if len(insts) != 1 {
		return -1, false
	}
	return insts[0], true
}

// chaseCopies follows the unique definition of operand k of instruction i
// through single-use MOVs between writable registers and returns the
// instruction that actually produces the value, or -1.
func chaseCopies(p *shader.Program, du *DefUse, i, k int) int {
	d := du.OperandDef(i, k)
	for d >= 0 && p.Insts[d].Op == shader.OpMOV {
		if _, ok := singleConsumer(du, d); !ok {
			break
		}
		nd := du.OperandDef(d, 0)
		if nd < 0 {
			break
		}
		d = nd
	}
	return d
}

// producedBySingleUseMul reports whether operand k of instruction i is fed
// (through copies) by a MUL whose value has no other consumer.
func producedBySingleUseMul(p *shader.Program, du *DefUse, i, k int) (int, bool) {
	d := chaseCopies(p, du, i, k)
	if d < 0 || p.Insts[d].Op != shader.OpMUL {
		return -1, false
	}
	if _, ok := singleConsumer(du, d); !ok {
		return -1, false
	}
	return d, true
}

// lintMadFusion flags ADD/SUB instructions fed by a single-use MUL: the
// multiply-add would fuse into one MAD if written as a single expression,
// halving its ALU cost (MUL costs 2 cycles, MAD costs 2, ADD costs 1:
// MUL+ADD = 3 vs MAD = 2).
func lintMadFusion(p *shader.Program, du *DefUse, sccp *SCCP) []Finding {
	var fs []Finding
	for i := range p.Insts {
		in := &p.Insts[i]
		if !sccp.Reachable[i] || (in.Op != shader.OpADD && in.Op != shader.OpSUB) {
			continue
		}
		for k := 0; k < 2; k++ {
			if _, ok := producedBySingleUseMul(p, du, i, k); ok {
				fs = append(fs, Finding{
					Code: "mad-fusion",
					Sev:  SevWarning,
					Pos:  in.SrcPos,
					Msg: "multiply and add compiled as separate instructions; " +
						"written as a single a*b+c expression they fuse into one MAD " +
						"(2 cycles instead of 3)",
				})
				break
			}
		}
	}
	return fs
}

// mulRegPair identifies the registers a MUL (or the A/B part of a MAD)
// multiplies, ignoring swizzles, for dot-product shape matching.
type mulRegPair struct {
	f0   shader.RegFile
	r0   uint16
	f1   shader.RegFile
	r1   uint16
	lane [2]uint8 // first read lane of each side, to require distinct lanes
}

func regPairOf(in *shader.Inst) mulRegPair {
	pr := mulRegPair{f0: in.A.File, r0: in.A.Reg, f1: in.B.File, r1: in.B.Reg,
		lane: [2]uint8{in.A.Swiz[0] & 3, in.B.Swiz[0] & 3}}
	if pr.f1 < pr.f0 || (pr.f1 == pr.f0 && pr.r1 < pr.r0) {
		pr.f0, pr.r0, pr.f1, pr.r1 = pr.f1, pr.r1, pr.f0, pr.r0
		pr.lane[0], pr.lane[1] = pr.lane[1], pr.lane[0]
	}
	return pr
}

func sameRegs(a, b mulRegPair) bool {
	return a.f0 == b.f0 && a.r0 == b.r0 && a.f1 == b.f1 && a.r1 == b.r1
}

// lintBuiltins flags expanded code with a single-instruction builtin
// equivalent: a sum of lane products of the same two registers (dot), and
// min-of-max chains (clamp).
func lintBuiltins(p *shader.Program, du *DefUse, sccp *SCCP) []Finding {
	var fs []Finding
	dotFinding := func(in *shader.Inst) Finding {
		return Finding{
			Code: "builtin-dot",
			Sev:  SevWarning,
			Pos:  in.SrcPos,
			Msg: "expanded dot product (sum of lane products of the same vectors); " +
				"the dot() builtin compiles to a single DPn instruction",
		}
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		if !sccp.Reachable[i] {
			continue
		}
		switch in.Op {
		case shader.OpADD:
			// mul(a,b) + mul(a,b) over different lanes.
			d0, ok0 := producedBySingleUseMul(p, du, i, 0)
			d1, ok1 := producedBySingleUseMul(p, du, i, 1)
			if ok0 && ok1 && d0 != d1 {
				p0, p1 := regPairOf(&p.Insts[d0]), regPairOf(&p.Insts[d1])
				if sameRegs(p0, p1) && p0.lane != p1.lane {
					fs = append(fs, dotFinding(in))
				}
			}
		case shader.OpMAD:
			// The compiler fuses the first product of a hand-expanded dot:
			// a.x*b.x + a.y*b.y becomes MAD(a.x, b.x, MUL(a.y, b.y)).
			d, ok := producedBySingleUseMul(p, du, i, 2)
			if ok {
				pm := regPairOf(&p.Insts[d])
				pa := regPairOf(in)
				if sameRegs(pm, pa) && pm.lane != pa.lane {
					fs = append(fs, dotFinding(in))
				}
			}
		case shader.OpMIN:
			for k := 0; k < 2; k++ {
				d := chaseCopies(p, du, i, k)
				if d < 0 || p.Insts[d].Op != shader.OpMAX {
					continue
				}
				if _, ok := singleConsumer(du, d); !ok {
					continue
				}
				fs = append(fs, Finding{
					Code: "builtin-clamp",
					Sev:  SevWarning,
					Pos:  in.SrcPos,
					Msg: "min(max(x, lo), hi) compiled as two instructions; " +
						"the clamp() builtin compiles to a single CLAMP",
				})
				break
			}
		}
	}
	return fs
}

// lintLaneEligibility reports whether the lane-batched SoA engine can run
// the program (an info note, not a defect): straight-line programs shade
// batches of fragments through each instruction at once, while branchy or
// discarding programs fall back to per-fragment execution. The eligibility
// probe is the executor's own (shader.LaneFallbackAt); the CFG cross-checks
// it — a single-block CFG is exactly the straight-line property, so the two
// views disagreeing would mean a compiler bug worth surfacing loudly.
func lintLaneEligibility(p *shader.Program, cfg *CFG) []Finding {
	pc, reason := shader.LaneFallbackAt(p)
	if reason == "" {
		if len(cfg.Blocks) > 1 {
			return []Finding{{
				Code: "lane-eligible",
				Sev:  SevWarning,
				Msg: fmt.Sprintf("executor says straight-line but the CFG has %d blocks; "+
					"eligibility probe and CFG disagree (compiler bug?)", len(cfg.Blocks)),
			}}
		}
		return []Finding{{
			Code: "lane-eligible",
			Sev:  SevInfo,
			Msg: "straight-line program: the lane-batched engine shades batches of " +
				"fragments through each instruction at once",
		}}
	}
	f := Finding{
		Code: "lane-fallback",
		Sev:  SevInfo,
		Msg:  fmt.Sprintf("per-fragment execution: %s", reason),
	}
	if pc >= 0 && pc < len(p.Insts) {
		f.Pos = p.Insts[pc].SrcPos
	}
	return []Finding{f}
}

// lintFusionEligibility reports whether the pipeline planner could fuse
// the kernel with an adjacent elementwise pass (an info note, mirroring
// lane eligibility): fusion-eligible kernels are straight-line, discard-
// free, and sample every texture exactly at the fullscreen-quad varying,
// so a producing or consuming pass can collapse into the same program.
// The probe is the planner's own (Elementwise over "v_tex"), so the lint
// verdict and the planner's per-edge decisions cannot drift apart — a
// lint test cross-checks them against real pipeline plans. Vertex
// programs and fragment programs with no samplers are skipped: fusion
// only concerns texture-to-texture chains.
func lintFusionEligibility(p *shader.Program) []Finding {
	if len(p.Samplers) == 0 {
		return nil
	}
	ok, why := Elementwise(p, "v_tex")
	if ok {
		return []Finding{{
			Code: "fusion-eligible",
			Sev:  SevInfo,
			Msg: "elementwise kernel (identity texel footprint on every sampler): " +
				"the pipeline planner can fuse it with an adjacent elementwise pass",
		}}
	}
	return []Finding{{
		Code: "fusion-blocked",
		Sev:  SevInfo,
		Msg: fmt.Sprintf("fusion-blocked(%s): the pipeline planner keeps this kernel "+
			"as its own pass", why),
	}}
}

// lintUninitReads flags reads of temp or output register components not
// written on every path from entry. Reading an output before writing it is
// particularly suspect: the GLES layer hands invocations recycled
// environments, so the value observed is the previous fragment's.
func lintUninitReads(p *shader.Program, sccp *SCCP) []Finding {
	m := p.MustWrite()
	var fs []Finding
	for i := range p.Insts {
		if !sccp.Reachable[i] {
			continue
		}
		in := &p.Insts[i]
		la, lb, lc := in.SrcLanes()
		for k, lanes := range [3]uint8{la, lb, lc} {
			s := *srcOperand(in, k)
			if lanes == 0 || (s.File != shader.FileTemp && s.File != shader.FileOutput) {
				continue
			}
			if m.SrcWrittenAt(i, s, lanes) {
				continue
			}
			what := "temporary"
			if s.File == shader.FileOutput {
				what = "output"
			}
			fs = append(fs, Finding{
				Code: "uninit-read",
				Sev:  SevWarning,
				Pos:  in.SrcPos,
				Msg: fmt.Sprintf("%s register %s may be read before it is written",
					what, s.String()),
			})
		}
	}
	return fs
}

// lintAlwaysDiscard flags shaders that can never produce a fragment:
// a reachable discard whose condition is constant true (every `discard`
// statement compiles to one — the guard is separate control flow) AND
// whose block dominates every non-discarding exit, so no invocation
// reaches an exit without first hitting the discard. A discard behind a
// data-dependent branch does not dominate the exits and stays silent.
func lintAlwaysDiscard(cfg *CFG, sccp *SCCP) []Finding {
	var fs []Finding
	if len(sccp.AlwaysDiscards) == 0 {
		return fs
	}
	doms := cfg.Dominators()
	exits := cfg.ExitBlocks()
	for _, i := range sccp.AlwaysDiscards {
		b := cfg.BlockOf[i]
		dominatesAll := len(exits) > 0
		for _, e := range exits {
			if !doms[e].Get(b) {
				dominatesAll = false
				break
			}
		}
		if !dominatesAll {
			continue
		}
		fs = append(fs, Finding{
			Code: "always-discard",
			Sev:  SevWarning,
			Pos:  cfg.Prog.Insts[i].SrcPos,
			Msg: "every fragment is discarded: the discard is unconditional and " +
				"on every path, so the shader never writes an output",
		})
	}
	return fs
}
