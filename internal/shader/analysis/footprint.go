package analysis

import (
	"fmt"
	"math"

	"gles2gpgpu/internal/shader"
)

// Sampler footprint analysis.
//
// For every sampler slot the analysis tries to prove a static description
// of the texel region the program can fetch: each TEX coordinate must be a
// chain of float32-affine steps (add/sub/mul/mad with draw-constant
// operands, negation, copies) over at most ONE input register component,
// or fully draw-constant. A draw-constant step operand is a constant-pool
// literal, a uniform register component, or any operand SCCP proved
// constant — the GLSL front end materialises folded literals through
// temps (mov rN.x, c0 …), so composing with SCCP is what makes real
// kernels provable. The chain records the exact operations the
// interpreter performs, in order, so evaluating it at a value v yields
// bit-for-bit the coordinate a fragment whose input component is v would
// pass to the sampler.
//
// The payoff is interval exactness: every step is weakly monotone in its
// chain operand under float32 rounding (adding a constant, multiplying by
// a constant, negating, and a*x+b with constant a,b all preserve weak
// ordering, because the exact results are ordered and round-to-nearest is
// monotone). The image of [lo, hi] under a monotone step is therefore
// exactly the interval between the step's values at lo and hi — no
// widening cascade, and no texel-level padding. Given bounds covering
// every emitted float32 value of the input component over a region
// (raster.VaryingRectBounds provides exactly that for a tile, absorbing
// its own interpolation rounding by widening one float32 ulp per side),
// SlotRect composes the chain endpoints with the sampler's own index
// arithmetic (the NEAREST + CLAMP_TO_EDGE fast path of
// internal/gles/sampler.go, reproduced expression by expression); the
// resulting texel rectangle is the exact image of the input bounds.
//
// Coordinates that depend on another fetch (dependent TEX), on more than
// one input component, on non-affine arithmetic, or on joins of different
// definitions are "statically unbounded" (top): the slot reports
// !Provable with the pc and reason, the unbounded-footprint lint finding
// surfaces it, and the coherence cache falls back to dynamic footprint
// tracking for that slot.

// FootK is a draw-time constant chain operand: a compile-time literal or
// one uniform register component (negated when Neg).
type FootK struct {
	Uniform   bool
	Reg, Comp int
	Neg       bool
	Val       float32 // literal value when !Uniform (negation already folded)
}

// Resolve returns the operand's float32 value for a draw. ok=false when
// the value is not finite (an infinite or NaN chain constant breaks the
// monotone-step argument: an interior chain value could go NaN while the
// endpoints stay ordered).
func (k FootK) Resolve(uniforms [][4]float32) (float32, bool) {
	v := k.Val
	if k.Uniform {
		if k.Reg < 0 || k.Reg >= len(uniforms) {
			return 0, false
		}
		v = uniforms[k.Reg][k.Comp]
		if k.Neg {
			v = -v
		}
	}
	if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		return 0, false
	}
	return v, true
}

// AffineOp is one chain step shape. Each evaluates with the same float32
// expression the interpreter uses for the originating instruction.
type AffineOp uint8

// Chain step shapes.
const (
	AffAdd  AffineOp = iota // x + k      (ADD, either operand)
	AffSub                  // x - k      (SUB, chain in A)
	AffRSub                 // k - x      (SUB, chain in B)
	AffMul                  // x * k      (MUL, either operand)
	AffMad                  // x*k + k2   (MAD, chain in A or B)
	AffMadC                 // k*k2 + x   (MAD, chain in C)
	AffNeg                  // -x         (source-operand negation)
)

// AffineStep is one applied step.
type AffineStep struct {
	Op    AffineOp
	K, K2 FootK
}

func (s AffineStep) apply(x float32, uniforms [][4]float32) (float32, bool) {
	var k, k2 float32
	var ok bool
	if s.Op != AffNeg {
		if k, ok = s.K.Resolve(uniforms); !ok {
			return 0, false
		}
	}
	if s.Op == AffMad || s.Op == AffMadC {
		if k2, ok = s.K2.Resolve(uniforms); !ok {
			return 0, false
		}
	}
	switch s.Op {
	case AffAdd:
		return x + k, true
	case AffSub:
		return x - k, true
	case AffRSub:
		return k - x, true
	case AffMul:
		return x * k, true
	case AffMad:
		return x*k + k2, true
	case AffMadC:
		return k*k2 + x, true
	default:
		return -x, true
	}
}

// TexCoord is one proven coordinate: a chain over one input component, or
// a draw-constant chain (HasInput false, base K0).
type TexCoord struct {
	Known         bool
	HasInput      bool
	InReg, InComp int
	K0            FootK // chain base when !HasInput
	Steps         []AffineStep
}

// TexCoordPair is the (u, v) description of one TEX instruction.
type TexCoordPair struct {
	Pc   int
	U, V TexCoord
}

// SlotFootprint is the per-sampler-slot verdict.
type SlotFootprint struct {
	// Provable is set when every reachable TEX on the slot has both
	// coordinates proven; Coords then holds one pair per TEX.
	Provable bool
	Coords   []TexCoordPair
	// Pc and Reason identify the first fetch that defeated the proof.
	Pc     int
	Reason string
}

// Footprint holds the per-slot results, indexed by sampler slot.
type Footprint struct {
	Slots []SlotFootprint
}

// maxChainSteps bounds coordinate chases (a cycle through temps via
// DefMany is already rejected, but pathological straight-line chains
// should not recurse without bound either).
const maxChainSteps = 64

// SolveFootprint runs the analysis over c using solved def-use chains and
// SCCP constants and reachability.
func SolveFootprint(c *CFG, du *DefUse, sccp *SCCP) *Footprint {
	p := c.Prog
	f := &Footprint{Slots: make([]SlotFootprint, len(p.Samplers))}
	for si := range f.Slots {
		f.Slots[si].Provable = true
		f.Slots[si].Pc = -1
	}
	if len(f.Slots) == 0 {
		return f
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Op != shader.OpTEX || !sccp.Reachable[i] {
			continue
		}
		si := int(in.SamplerIdx)
		if si >= len(f.Slots) {
			continue
		}
		slot := &f.Slots[si]
		if !slot.Provable {
			continue
		}
		u, ru := chaseCoord(p, du, sccp, i, 0, 0)
		v, rv := chaseCoord(p, du, sccp, i, 0, 1)
		if !u.Known || !v.Known {
			reason := ru
			if u.Known {
				reason = rv
			}
			*slot = SlotFootprint{Pc: i, Reason: reason}
			continue
		}
		slot.Coords = append(slot.Coords, TexCoordPair{Pc: i, U: u, V: v})
	}
	return f
}

// constOperand resolves lane l of operand k of instruction i as a
// draw-time constant, with the source swizzle and negation folded in: an
// SCCP-proven constant (SCCP values are post-swizzle and post-negation),
// a constant-pool literal, or a uniform register component.
func constOperand(p *shader.Program, sccp *SCCP, i, k, l int) (FootK, bool) {
	if oc := sccp.Operand[i][k]; oc.OK {
		return FootK{Val: oc.V[l]}, true
	}
	in := &p.Insts[i]
	s := *srcOperand(in, k)
	cc := int(s.Swiz[l] & 3)
	switch s.File {
	case shader.FileConst:
		if int(s.Reg) >= len(p.Consts) {
			return FootK{}, false
		}
		v := p.Consts[s.Reg][cc]
		if s.Neg {
			v = -v
		}
		return FootK{Val: v}, true
	case shader.FileUniform:
		return FootK{Uniform: true, Reg: int(s.Reg), Comp: cc, Neg: s.Neg}, true
	}
	return FootK{}, false
}

// chaseCoord traces the value read in post-swizzle lane l of operand k of
// instruction i back to an affine chain over at most one input component.
// The second result is the failure reason when the chain is unknown.
func chaseCoord(p *shader.Program, du *DefUse, sccp *SCCP, i, k, l int) (TexCoord, string) {
	var tc TexCoord
	if k0, ok := constOperand(p, sccp, i, k, l); ok {
		return TexCoord{Known: true, K0: k0}, ""
	}
	in := &p.Insts[i]
	s := *srcOperand(in, k)
	cc := int(s.Swiz[l] & 3)
	switch s.File {
	case shader.FileConst, shader.FileUniform:
		return tc, "constant-pool index out of range"
	case shader.FileInput:
		tc = TexCoord{Known: true, HasInput: true, InReg: int(s.Reg), InComp: cc}
		if s.Neg {
			tc.Steps = append(tc.Steps, AffineStep{Op: AffNeg})
		}
		return tc, ""
	case shader.FileTemp, shader.FileOutput:
		d := du.DefOf[i][k][l]
		switch d {
		case DefMany:
			return tc, "coordinate joins different definitions"
		case DefExternal:
			return tc, "coordinate may be read before it is written"
		}
		if d < 0 {
			return tc, "coordinate has no tracked definition"
		}
		tc, reason := chaseDef(p, du, sccp, int(d), cc, 0)
		if !tc.Known {
			return tc, reason
		}
		if s.Neg {
			tc.Steps = append(tc.Steps, AffineStep{Op: AffNeg})
		}
		return tc, ""
	}
	return tc, "coordinate read from an untracked register file"
}

// chaseDef traces component cc of the value instruction d writes.
func chaseDef(p *shader.Program, du *DefUse, sccp *SCCP, d, cc, depth int) (TexCoord, string) {
	var tc TexCoord
	if depth > maxChainSteps {
		return tc, "coordinate chain too deep"
	}
	def := &p.Insts[d]
	// Componentwise ops write lane cc from their operands' lane cc; any
	// other shape (reductions, TEX, special functions) is not affine.
	chainOf := func(k int) (TexCoord, string) {
		kk := k // the chain operand; chase through it
		if k0, ok := constOperand(p, sccp, d, kk, cc); ok {
			return TexCoord{Known: true, K0: k0}, ""
		}
		src := *srcOperand(def, kk)
		switch src.File {
		case shader.FileInput:
			t := TexCoord{Known: true, HasInput: true, InReg: int(src.Reg), InComp: int(src.Swiz[cc] & 3)}
			if src.Neg {
				t.Steps = append(t.Steps, AffineStep{Op: AffNeg})
			}
			return t, ""
		case shader.FileConst, shader.FileUniform:
			return TexCoord{}, "constant-pool index out of range"
		case shader.FileTemp, shader.FileOutput:
			dd := du.DefOf[d][kk][cc]
			switch dd {
			case DefMany:
				return TexCoord{}, "coordinate joins different definitions"
			case DefExternal:
				return TexCoord{}, "coordinate may be read before it is written"
			}
			if dd < 0 {
				return TexCoord{}, "coordinate has no tracked definition"
			}
			t, reason := chaseDef(p, du, sccp, int(dd), int(src.Swiz[cc]&3), depth+1)
			if !t.Known {
				return t, reason
			}
			if src.Neg {
				t.Steps = append(t.Steps, AffineStep{Op: AffNeg})
			}
			return t, ""
		}
		return TexCoord{}, "coordinate read from an untracked register file"
	}
	switch def.Op {
	case shader.OpMOV:
		return chainOf(0)
	case shader.OpADD, shader.OpSUB, shader.OpMUL:
		ka, aOK := constOperand(p, sccp, d, 0, cc)
		kb, bOK := constOperand(p, sccp, d, 1, cc)
		switch {
		case aOK && bOK:
			// Fully draw-constant arithmetic: keep it as a chain over the
			// constant base (evaluated at draw time).
			t := TexCoord{Known: true, K0: ka}
			op := AffAdd
			if def.Op == shader.OpSUB {
				op = AffSub
			} else if def.Op == shader.OpMUL {
				op = AffMul
			}
			t.Steps = append(t.Steps, AffineStep{Op: op, K: kb})
			return t, ""
		case bOK: // chain in A
			t, reason := chainOf(0)
			if !t.Known {
				return t, reason
			}
			op := AffAdd
			if def.Op == shader.OpSUB {
				op = AffSub
			} else if def.Op == shader.OpMUL {
				op = AffMul
			}
			t.Steps = append(t.Steps, AffineStep{Op: op, K: kb})
			return t, ""
		case aOK: // chain in B
			t, reason := chainOf(1)
			if !t.Known {
				return t, reason
			}
			op := AffAdd // a + x == x + a bit-for-bit (float32 + commutes)
			if def.Op == shader.OpSUB {
				op = AffRSub
			} else if def.Op == shader.OpMUL {
				op = AffMul // a * x == x * a bit-for-bit
			}
			t.Steps = append(t.Steps, AffineStep{Op: op, K: ka})
			return t, ""
		}
		return tc, fmt.Sprintf("both operands of %s vary", def.Op)
	case shader.OpMAD: // a*b + c
		ka, aOK := constOperand(p, sccp, d, 0, cc)
		kb, bOK := constOperand(p, sccp, d, 1, cc)
		kc, cOK := constOperand(p, sccp, d, 2, cc)
		switch {
		case bOK && cOK: // x*kb + kc
			t, reason := chainOf(0)
			if !t.Known {
				return t, reason
			}
			t.Steps = append(t.Steps, AffineStep{Op: AffMad, K: kb, K2: kc})
			return t, ""
		case aOK && cOK: // ka*x + kc == x*ka + kc bit-for-bit
			t, reason := chainOf(1)
			if !t.Known {
				return t, reason
			}
			t.Steps = append(t.Steps, AffineStep{Op: AffMad, K: ka, K2: kc})
			return t, ""
		case aOK && bOK: // ka*kb + x
			t, reason := chainOf(2)
			if !t.Known {
				return t, reason
			}
			t.Steps = append(t.Steps, AffineStep{Op: AffMadC, K: ka, K2: kb})
			return t, ""
		}
		return tc, "MAD feeding the coordinate has two varying operands"
	case shader.OpTEX:
		return tc, "coordinate depends on another texture fetch"
	}
	return tc, fmt.Sprintf("non-affine %s feeds the coordinate", def.Op)
}

// TexRect is an inclusive texel rectangle.
type TexRect struct {
	X0, Y0, X1, Y1 int
}

// evalCoord evaluates one coordinate chain over [lo, hi] input bounds,
// returning ordered float32 bounds of the coordinate.
func evalCoord(tc *TexCoord, uniforms [][4]float32, inBounds func(reg, comp int) (lo, hi float32, ok bool)) (float32, float32, bool) {
	var lo, hi float32
	if tc.HasInput {
		var ok bool
		lo, hi, ok = inBounds(tc.InReg, tc.InComp)
		if !ok || lo > hi ||
			math.IsNaN(float64(lo)) || math.IsInf(float64(lo), 0) ||
			math.IsNaN(float64(hi)) || math.IsInf(float64(hi), 0) {
			return 0, 0, false
		}
	} else {
		v, ok := tc.K0.Resolve(uniforms)
		if !ok {
			return 0, 0, false
		}
		lo, hi = v, v
	}
	for _, st := range tc.Steps {
		a, ok := st.apply(lo, uniforms)
		if !ok {
			return 0, 0, false
		}
		b, ok := st.apply(hi, uniforms)
		if !ok {
			return 0, 0, false
		}
		if a > b {
			a, b = b, a
		}
		// Finite inputs and finite step constants cannot produce NaN
		// (no inf-inf or 0*inf is constructible), but an overflow to an
		// infinity loses the endpoint ordering guarantee for later steps.
		if math.IsNaN(float64(a)) || math.IsInf(float64(a), 0) ||
			math.IsNaN(float64(b)) || math.IsInf(float64(b), 0) {
			return 0, 0, false
		}
		lo, hi = a, b
	}
	return lo, hi, true
}

// texIndex reproduces the NEAREST + CLAMP_TO_EDGE index arithmetic of the
// sampler fast path (internal/gles/sampler.go) for one axis.
func texIndex(u float32, fw float32, w int) int {
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	ix := int(u * fw)
	if ix < 0 {
		ix = 0
	} else if ix >= w {
		ix = w - 1
	}
	return ix
}

// SlotRect evaluates slot si's proven footprint for one draw region:
// uniforms are the draw's fragment uniform registers, inBounds bounds
// each referenced input component over the region — it must cover every
// emitted float32 value, which raster.VaryingRectBounds guarantees for a
// tile — and texW/texH are the bound texture's dimensions. The result is
// the inclusive texel rectangle all fetches from the slot within the
// region provably fall in. Because chain steps and the index arithmetic
// are weakly monotone, the rectangle is the exact image of the input
// bounds — no padding. It applies only to samplers using the NEAREST +
// CLAMP_TO_EDGE configuration (the caller gates on that). ok=false when
// the slot is unproven, fetches nothing, or an evaluation hits a
// non-finite value.
func (f *Footprint) SlotRect(si int, uniforms [][4]float32, inBounds func(reg, comp int) (lo, hi float32, ok bool), texW, texH int) (TexRect, bool) {
	if si < 0 || si >= len(f.Slots) || !f.Slots[si].Provable || len(f.Slots[si].Coords) == 0 {
		return TexRect{}, false
	}
	if texW <= 0 || texH <= 0 {
		return TexRect{}, false
	}
	fw, fh := float32(texW), float32(texH)
	r := TexRect{X0: texW, Y0: texH, X1: -1, Y1: -1}
	for ci := range f.Slots[si].Coords {
		pair := &f.Slots[si].Coords[ci]
		ulo, uhi, ok := evalCoord(&pair.U, uniforms, inBounds)
		if !ok {
			return TexRect{}, false
		}
		vlo, vhi, ok := evalCoord(&pair.V, uniforms, inBounds)
		if !ok {
			return TexRect{}, false
		}
		x0, x1 := texIndex(ulo, fw, texW), texIndex(uhi, fw, texW)
		y0, y1 := texIndex(vlo, fh, texH), texIndex(vhi, fh, texH)
		if x0 < r.X0 {
			r.X0 = x0
		}
		if y0 < r.Y0 {
			r.Y0 = y0
		}
		if x1 > r.X1 {
			r.X1 = x1
		}
		if y1 > r.Y1 {
			r.Y1 = y1
		}
	}
	return r, true
}
