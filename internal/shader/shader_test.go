package shader

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gles2gpgpu/internal/glsl"
)

// compileFrag compiles a fragment shader source to IR.
func compileFrag(t *testing.T, src string) *Program {
	t.Helper()
	cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := Compile(cs)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

// runFrag executes a fragment program with the given named uniforms and
// inputs, returning the gl_FragColor output.
func runFrag(t *testing.T, p *Program, uniforms map[string][]float32, inputs map[string][]float32, sample SampleFunc) Vec4 {
	t.Helper()
	env := NewEnv(p)
	env.Sample = sample
	for name, vals := range uniforms {
		u, ok := p.LookupUniform(name)
		if !ok {
			t.Fatalf("uniform %q not found", name)
		}
		for r := 0; r*4 < len(vals); r++ {
			var v Vec4
			for i := 0; i < 4 && r*4+i < len(vals); i++ {
				v[i] = vals[r*4+i]
			}
			env.Uniforms[u.Reg+r] = v
		}
	}
	for name, vals := range inputs {
		in, ok := p.LookupInput(name)
		if !ok {
			t.Fatalf("input %q not found", name)
		}
		var v Vec4
		copy(v[:], vals)
		env.Inputs[in.Reg] = v
	}
	cost := DefaultCostModel()
	if err := Run(p, env, &cost); err != nil {
		t.Fatalf("run: %v", err)
	}
	out, ok := p.LookupOutput("gl_FragColor")
	if !ok {
		t.Fatal("no gl_FragColor output")
	}
	return env.Outputs[out.Reg]
}

const hdr = "precision mediump float;\n"

func approx(a, b, eps float32) bool {
	return float32(math.Abs(float64(a-b))) <= eps
}

func wantVec(t *testing.T, got Vec4, want [4]float32, eps float32) {
	t.Helper()
	for i := 0; i < 4; i++ {
		if !approx(got[i], want[i], eps) {
			t.Fatalf("output = %v, want %v (component %d)", got, want, i)
		}
	}
}

func TestCompileConstantOutput(t *testing.T) {
	p := compileFrag(t, hdr+"void main(){ gl_FragColor = vec4(0.25, 0.5, 0.75, 1.0); }")
	got := runFrag(t, p, nil, nil, nil)
	wantVec(t, got, [4]float32{0.25, 0.5, 0.75, 1}, 0)
}

func TestCompileArithmetic(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float a;
uniform float b;
void main(){
	float s = a + b;
	float d = a - b;
	float m = a * b;
	float q = a / b;
	gl_FragColor = vec4(s, d, m, q);
}`)
	got := runFrag(t, p, map[string][]float32{"a": {6}, "b": {2}}, nil, nil)
	wantVec(t, got, [4]float32{8, 4, 12, 3}, 1e-6)
}

func TestCompileSwizzleAndMask(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform vec4 v;
void main(){
	vec4 o = vec4(0.0);
	o.xy = v.zw;
	o.z = v.x;
	o.w = dot(v.xy, vec2(1.0, 1.0));
	gl_FragColor = o.yxzw;
}`)
	got := runFrag(t, p, map[string][]float32{"v": {1, 2, 3, 4}}, nil, nil)
	wantVec(t, got, [4]float32{4, 3, 1, 3}, 1e-6)
}

func TestMADFusion(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float a;
uniform float b;
uniform float c;
void main(){ gl_FragColor = vec4(a*b + c); }`)
	found := false
	for _, in := range p.Insts {
		if in.Op == OpMAD {
			found = true
		}
		if in.Op == OpMUL {
			t.Error("unfused MUL present alongside expected MAD")
		}
	}
	if !found {
		t.Fatalf("no MAD generated:\n%s", p.Disassemble())
	}
	got := runFrag(t, p, map[string][]float32{"a": {3}, "b": {4}, "c": {5}}, nil, nil)
	wantVec(t, got, [4]float32{17, 17, 17, 17}, 1e-6)
}

func TestMADFusionAccumulate(t *testing.T) {
	// acc += A*B — the paper's sgemm inner loop — must fuse.
	p := compileFrag(t, hdr+`
uniform float x;
uniform float y;
void main(){
	float acc = 1.0;
	acc += x * y;
	gl_FragColor = vec4(acc);
}`)
	mads := 0
	for _, in := range p.Insts {
		if in.Op == OpMAD {
			mads++
		}
	}
	if mads != 1 {
		t.Fatalf("MAD count = %d, want 1:\n%s", mads, p.Disassemble())
	}
	got := runFrag(t, p, map[string][]float32{"x": {2}, "y": {3}}, nil, nil)
	wantVec(t, got, [4]float32{7, 7, 7, 7}, 1e-6)
}

func TestMADFusionSubtract(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float a;
uniform float b;
uniform float c;
void main(){ gl_FragColor = vec4(c - a*b, a*b - c, 0.0, 0.0); }`)
	got := runFrag(t, p, map[string][]float32{"a": {3}, "b": {4}, "c": {5}}, nil, nil)
	wantVec(t, got, [4]float32{-7, 7, 0, 0}, 1e-6)
}

func TestBuiltinSingleInstructions(t *testing.T) {
	// dot and clamp map to one instruction each (paper §II Kernel Code).
	p := compileFrag(t, hdr+`
uniform vec4 v;
void main(){
	float d = dot(v, v);
	gl_FragColor = vec4(clamp(d, 0.0, 10.0));
}`)
	var dps, clamps int
	for _, in := range p.Insts {
		switch in.Op {
		case OpDP4:
			dps++
		case OpCLAMP:
			clamps++
		}
	}
	if dps != 1 || clamps != 1 {
		t.Fatalf("dp4=%d clamp=%d, want 1/1:\n%s", dps, clamps, p.Disassemble())
	}
	got := runFrag(t, p, map[string][]float32{"v": {1, 2, 3, 4}}, nil, nil)
	wantVec(t, got, [4]float32{10, 10, 10, 10}, 1e-6)
}

func TestBuiltinMathFunctions(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float x;
void main(){
	gl_FragColor = vec4(floor(x), fract(x), sqrt(x), pow(x, 2.0));
}`)
	got := runFrag(t, p, map[string][]float32{"x": {2.25}}, nil, nil)
	wantVec(t, got, [4]float32{2, 0.25, 1.5, 5.0625}, 1e-5)
}

func TestBuiltinGeometric(t *testing.T) {
	p := compileFrag(t, hdr+`
void main(){
	vec3 a = vec3(1.0, 0.0, 0.0);
	vec3 b = vec3(0.0, 1.0, 0.0);
	vec3 c = cross(a, b);
	float l = length(vec3(3.0, 4.0, 0.0));
	vec3 n = normalize(vec3(0.0, 0.0, 8.0));
	gl_FragColor = vec4(c.z, l, n.z, distance(a, b));
}`)
	got := runFrag(t, p, nil, nil, nil)
	wantVec(t, got, [4]float32{1, 5, 1, float32(math.Sqrt2)}, 1e-5)
}

func TestBuiltinMixStepSmoothstep(t *testing.T) {
	p := compileFrag(t, hdr+`
void main(){
	float m = mix(0.0, 10.0, 0.25);
	float s = step(0.5, 0.7);
	float s2 = step(0.5, 0.3);
	float ss = smoothstep(0.0, 1.0, 0.5);
	gl_FragColor = vec4(m, s, s2, ss);
}`)
	got := runFrag(t, p, nil, nil, nil)
	wantVec(t, got, [4]float32{2.5, 1, 0, 0.5}, 1e-5)
}

func TestBuiltinMod(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float x;
uniform float y;
void main(){ gl_FragColor = vec4(mod(x, y)); }`)
	got := runFrag(t, p, map[string][]float32{"x": {7.5}, "y": {2}}, nil, nil)
	wantVec(t, got, [4]float32{1.5, 1.5, 1.5, 1.5}, 1e-5)
}

func TestUnrolledLoop(t *testing.T) {
	p := compileFrag(t, hdr+`
void main(){
	float acc = 0.0;
	for (int i = 0; i < 10; i++) { acc += 0.1; }
	gl_FragColor = vec4(acc);
}`)
	// No branch instructions expected — fully unrolled.
	for _, in := range p.Insts {
		if in.Op == OpBR || in.Op == OpBRZ {
			t.Fatalf("branch found in unrolled loop:\n%s", p.Disassemble())
		}
	}
	got := runFrag(t, p, nil, nil, nil)
	wantVec(t, got, [4]float32{1, 1, 1, 1}, 1e-5)
}

func TestLoopIndexAsConstant(t *testing.T) {
	// The unrolled loop index participates in address arithmetic as a
	// compile-time constant (needed for uniform array indexing).
	p := compileFrag(t, hdr+`
uniform float w[4];
void main(){
	float acc = 0.0;
	for (int i = 0; i < 4; i++) { acc += w[i] * float(i); }
	gl_FragColor = vec4(acc);
}`)
	got := runFrag(t, p, map[string][]float32{"w": {1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0}}, nil, nil)
	// 1*0 + 2*1 + 3*2 + 4*3 = 20
	wantVec(t, got, [4]float32{20, 20, 20, 20}, 1e-5)
}

func TestFloatLoopMatchesVMAccumulation(t *testing.T) {
	// Paper-style float loop: trip count from float32 accumulation.
	p := compileFrag(t, hdr+`
void main(){
	float n = 0.0;
	for (float i = 0.0; i < 0.015625; i += 0.0009765625) { n += 1.0; }
	gl_FragColor = vec4(n / 16.0);
}`)
	got := runFrag(t, p, nil, nil, nil)
	wantVec(t, got, [4]float32{1, 1, 1, 1}, 1e-6)
}

func TestDynamicBreakInUnrolledLoop(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float cutoff;
void main(){
	float acc = 0.0;
	for (int i = 0; i < 8; i++) {
		if (acc >= cutoff) { break; }
		acc += 1.0;
	}
	gl_FragColor = vec4(acc);
}`)
	got := runFrag(t, p, map[string][]float32{"cutoff": {3}}, nil, nil)
	wantVec(t, got, [4]float32{3, 3, 3, 3}, 1e-6)
}

func TestContinueInUnrolledLoop(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float skip;
void main(){
	float acc = 0.0;
	for (int i = 0; i < 4; i++) {
		if (float(i) == skip) { continue; }
		acc += 1.0;
	}
	gl_FragColor = vec4(acc);
}`)
	got := runFrag(t, p, map[string][]float32{"skip": {2}}, nil, nil)
	wantVec(t, got, [4]float32{3, 3, 3, 3}, 1e-6)
}

func TestIfElse(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float x;
void main(){
	if (x > 0.5) { gl_FragColor = vec4(1.0); }
	else { gl_FragColor = vec4(0.0); }
}`)
	wantVec(t, runFrag(t, p, map[string][]float32{"x": {0.7}}, nil, nil), [4]float32{1, 1, 1, 1}, 0)
	wantVec(t, runFrag(t, p, map[string][]float32{"x": {0.2}}, nil, nil), [4]float32{0, 0, 0, 0}, 0)
}

func TestTernaryAndLogical(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float a;
uniform float b;
void main(){
	float x = (a > 0.0 && b > 0.0) ? 1.0 : 0.0;
	float y = (a > 0.0 || b > 0.0) ? 1.0 : 0.0;
	float z = (a > 0.0 ^^ b > 0.0) ? 1.0 : 0.0;
	float w = !(a > 0.0) ? 1.0 : 0.0;
	gl_FragColor = vec4(x, y, z, w);
}`)
	wantVec(t, runFrag(t, p, map[string][]float32{"a": {1}, "b": {-1}}, nil, nil), [4]float32{0, 1, 1, 0}, 0)
	wantVec(t, runFrag(t, p, map[string][]float32{"a": {1}, "b": {1}}, nil, nil), [4]float32{1, 1, 0, 0}, 0)
	wantVec(t, runFrag(t, p, map[string][]float32{"a": {-1}, "b": {-1}}, nil, nil), [4]float32{0, 0, 0, 1}, 0)
}

func TestVectorEquality(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform vec3 a;
uniform vec3 b;
void main(){
	float eq = (a == b) ? 1.0 : 0.0;
	float ne = (a != b) ? 1.0 : 0.0;
	gl_FragColor = vec4(eq, ne, 0.0, 0.0);
}`)
	wantVec(t, runFrag(t, p, map[string][]float32{"a": {1, 2, 3}, "b": {1, 2, 3}}, nil, nil), [4]float32{1, 0, 0, 0}, 0)
	wantVec(t, runFrag(t, p, map[string][]float32{"a": {1, 2, 3}, "b": {1, 9, 3}}, nil, nil), [4]float32{0, 1, 0, 0}, 0)
}

func TestUserFunctionInlining(t *testing.T) {
	p := compileFrag(t, hdr+`
float poly(float x) {
	if (x < 0.0) { return 0.0; }
	return x * x;
}
void unpack(in float v, out float doubled, inout float acc) {
	doubled = v * 2.0;
	acc += v;
}
void main(){
	float d = 0.0;
	float acc = 1.0;
	unpack(3.0, d, acc);
	gl_FragColor = vec4(poly(2.0), poly(-1.0), d, acc);
}`)
	got := runFrag(t, p, nil, nil, nil)
	wantVec(t, got, [4]float32{4, 0, 6, 4}, 1e-6)
}

func TestTextureSampling(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform sampler2D tex;
varying vec2 vTex;
void main(){ gl_FragColor = texture2D(tex, vTex); }`)
	if p.TexInstructions != 1 {
		t.Fatalf("TexInstructions = %d, want 1", p.TexInstructions)
	}
	if len(p.Samplers) != 1 || p.Samplers[0] != "tex" {
		t.Fatalf("Samplers = %v", p.Samplers)
	}
	sample := func(idx int, u, v float32) Vec4 {
		return Vec4{u, v, float32(idx), 1}
	}
	got := runFrag(t, p, nil, map[string][]float32{"vTex": {0.25, 0.75}}, sample)
	wantVec(t, got, [4]float32{0.25, 0.75, 0, 1}, 0)
}

func TestSamplerPassedToFunction(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform sampler2D tex;
vec4 fetch(sampler2D s, vec2 c) { return texture2D(s, c); }
void main(){ gl_FragColor = fetch(tex, vec2(0.5, 0.5)); }`)
	sample := func(idx int, u, v float32) Vec4 { return Vec4{u + v, 0, 0, 1} }
	got := runFrag(t, p, nil, nil, sample)
	wantVec(t, got, [4]float32{1, 0, 0, 1}, 0)
}

func TestMul24Quantisation(t *testing.T) {
	p := compileFrag(t, "#extension GL_EXT_mul24 : enable\n"+hdr+`
uniform float a;
uniform float b;
void main(){ gl_FragColor = vec4(mul24(a, b)); }`)
	// Check quantisation: a value needing more than 24 fractional bits is
	// truncated before the multiply.
	fine := float32(1.0) / (1 << 26) // below the 24-bit quantum: truncates to 0
	got := runFrag(t, p, map[string][]float32{"a": {fine}, "b": {1}}, nil, nil)
	wantVec(t, got, [4]float32{0, 0, 0, 0}, 0)
	got = runFrag(t, p, map[string][]float32{"a": {0.5}, "b": {0.25}}, nil, nil)
	wantVec(t, got, [4]float32{0.125, 0.125, 0.125, 0.125}, 0)
}

func TestDiscard(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float x;
void main(){
	if (x > 0.5) { discard; }
	gl_FragColor = vec4(1.0);
}`)
	env := NewEnv(p)
	cost := DefaultCostModel()
	u, _ := p.LookupUniform("x")
	env.Uniforms[u.Reg] = Vec4{0.9}
	if err := Run(p, env, &cost); err != nil {
		t.Fatal(err)
	}
	if !env.Discarded {
		t.Error("fragment not discarded")
	}
	env.Reset()
	env.Uniforms[u.Reg] = Vec4{0.1}
	if err := Run(p, env, &cost); err != nil {
		t.Fatal(err)
	}
	if env.Discarded {
		t.Error("fragment wrongly discarded")
	}
}

func TestMatrixOps(t *testing.T) {
	cs, err := glsl.Frontend(`
attribute vec4 a_pos;
uniform mat4 mvp;
varying vec4 v_out;
void main(){
	gl_Position = mvp * a_pos;
	mat2 m = mat2(1.0, 2.0, 3.0, 4.0); // columns (1,2) and (3,4)
	vec2 r = m * vec2(1.0, 1.0);       // (1+3, 2+4)
	vec2 s = vec2(1.0, 1.0) * m;       // (1+2, 3+4)
	v_out = vec4(r, s);
}`, glsl.CompileOptions{Stage: glsl.StageVertex})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(cs)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(p)
	cost := DefaultCostModel()
	u, _ := p.LookupUniform("mvp")
	// Identity scaled by 2.
	for i := 0; i < 4; i++ {
		var col Vec4
		col[i] = 2
		env.Uniforms[u.Reg+i] = col
	}
	in, _ := p.LookupInput("a_pos")
	env.Inputs[in.Reg] = Vec4{1, 2, 3, 4}
	if err := Run(p, env, &cost); err != nil {
		t.Fatal(err)
	}
	pos, _ := p.LookupOutput("gl_Position")
	if env.Outputs[pos.Reg] != (Vec4{2, 4, 6, 8}) {
		t.Errorf("gl_Position = %v, want (2,4,6,8)", env.Outputs[pos.Reg])
	}
	vout, _ := p.LookupOutput("v_out")
	wantVec(t, env.Outputs[vout.Reg], [4]float32{4, 6, 3, 7}, 1e-6)
}

func TestInstructionCountGrowsWithUnrolling(t *testing.T) {
	count := func(n string) int {
		p := compileFrag(t, hdr+`
uniform sampler2D t0;
varying vec2 vc;
void main(){
	float acc = 0.0;
	for (int i = 0; i < `+n+`; i++) { acc += texture2D(t0, vc).x; }
	gl_FragColor = vec4(acc);
}`)
		return p.InstructionCount()
	}
	c4, c16 := count("4"), count("16")
	if c16 <= c4 {
		t.Fatalf("instructions did not grow with unrolling: %d vs %d", c4, c16)
	}
	p := compileFrag(t, hdr+`
uniform sampler2D t0;
varying vec2 vc;
void main(){
	float acc = 0.0;
	for (int i = 0; i < 16; i++) { acc += texture2D(t0, vc).x; }
	gl_FragColor = vec4(acc);
}`)
	if p.TexInstructions != 16 {
		t.Errorf("TexInstructions = %d, want 16", p.TexInstructions)
	}
}

func TestCheckLimits(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform sampler2D t0;
varying vec2 vc;
void main(){
	float acc = 0.0;
	for (int i = 0; i < 32; i++) { acc += texture2D(t0, vc).x; }
	gl_FragColor = vec4(acc);
}`)
	lim := DefaultLimits()
	lim.MaxTexInstructions = 16
	err := p.CheckLimits(lim)
	if err == nil {
		t.Fatal("texture-access limit not enforced")
	}
	var le *LimitError
	if !asLimitError(err, &le) {
		t.Fatalf("error type = %T", err)
	}
	if le.What != "texture accesses" || le.Used != 32 {
		t.Errorf("limit error = %+v", le)
	}
	lim = DefaultLimits()
	lim.MaxInstructions = 10
	if err := p.CheckLimits(lim); err == nil {
		t.Error("instruction limit not enforced")
	}
	if err := p.CheckLimits(DefaultLimits()); err != nil {
		t.Errorf("permissive limits rejected valid shader: %v", err)
	}
}

func asLimitError(err error, target **LimitError) bool {
	le, ok := err.(*LimitError)
	if ok {
		*target = le
	}
	return ok
}

func TestStaticCyclesMatchesVMForStraightLine(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform vec4 a;
uniform vec4 b;
void main(){
	vec4 s = a * b + a;
	float d = dot(s, b);
	gl_FragColor = vec4(clamp(d, 0.0, 1.0));
}`)
	cost := DefaultCostModel()
	env := NewEnv(p)
	if err := Run(p, env, &cost); err != nil {
		t.Fatal(err)
	}
	if env.Cycles != cost.StaticCycles(p) {
		t.Errorf("VM cycles %d != static %d", env.Cycles, cost.StaticCycles(p))
	}
}

func TestCyclesFavorMul24AndMAD(t *testing.T) {
	cost := DefaultCostModel()
	run := func(body string, extension bool) int64 {
		src := hdr + "uniform float a;\nuniform float b;\nuniform float c;\nvoid main(){ gl_FragColor = vec4(" + body + "); }"
		if extension {
			src = "#extension GL_EXT_mul24 : enable\n" + src
		}
		p := compileFrag(t, src)
		return cost.StaticCycles(p)
	}
	full := run("a*b", false)
	m24 := run("mul24(a, b)", true)
	if m24 >= full {
		t.Errorf("mul24 cycles %d not cheaper than mul %d", m24, full)
	}
	fused := run("a*b + c", false)
	if fused != full {
		// MAD should cost the same as the bare multiply in this model.
		t.Errorf("mad cycles %d != mul cycles %d", fused, full)
	}
}

func TestDisassembleSmoke(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform sampler2D s;
varying vec2 vc;
void main(){ gl_FragColor = texture2D(s, vc); }`)
	d := p.Disassemble()
	for _, want := range []string{"tex", "uniform", "input", "fragment shader"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

// Property: for random inputs, compiled a*b+c equals Go arithmetic within
// float32 tolerance.
func TestMADProperty(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float a;
uniform float b;
uniform float c;
void main(){ gl_FragColor = vec4(a*b + c); }`)
	cost := DefaultCostModel()
	env := NewEnv(p)
	ua, _ := p.LookupUniform("a")
	ub, _ := p.LookupUniform("b")
	uc, _ := p.LookupUniform("c")
	out, _ := p.LookupOutput("gl_FragColor")
	f := func(a, b, c float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) || math.IsNaN(float64(c)) {
			return true
		}
		env.Reset()
		env.Uniforms[ua.Reg] = Vec4{a}
		env.Uniforms[ub.Reg] = Vec4{b}
		env.Uniforms[uc.Reg] = Vec4{c}
		if err := Run(p, env, &cost); err != nil {
			return false
		}
		want := a*b + c
		got := env.Outputs[out.Reg][0]
		if math.IsInf(float64(want), 0) || math.IsNaN(float64(want)) {
			return true
		}
		diff := math.Abs(float64(got - want))
		scale := math.Max(1, math.Abs(float64(want)))
		return diff <= 1e-5*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGlobalInitializers(t *testing.T) {
	p := compileFrag(t, hdr+`
float scale = 2.0;
uniform float u;
void main(){
	scale += 1.0;
	gl_FragColor = vec4(scale * u);
}`)
	got := runFrag(t, p, map[string][]float32{"u": {2}}, nil, nil)
	wantVec(t, got, [4]float32{6, 6, 6, 6}, 1e-6)
}

func TestFragCoordInput(t *testing.T) {
	p := compileFrag(t, hdr+`void main(){ gl_FragColor = gl_FragCoord / 8.0; }`)
	got := runFrag(t, p, nil, map[string][]float32{"gl_FragCoord": {4, 2, 0, 1}}, nil)
	wantVec(t, got, [4]float32{0.5, 0.25, 0, 0.125}, 1e-6)
}
