package shader

import (
	"gles2gpgpu/internal/glsl"
)

// Expression code generation. Every path returns a value; constants flow
// through as cval so downstream instructions can fold or intern them.

func (g *cgen) genExpr(e glsl.Expr) (value, error) {
	// Constant-folded expressions never emit code.
	if cv := e.ConstVal(); cv != nil && !cv.T.IsMatrix() {
		return value{typ: e.Type(), cval: cv, samplerIdx: -1}, nil
	}
	// Instructions emitted for this node carry its source position;
	// restoring on exit re-attributes the parent's later emits (e.g. the
	// combining op of a binary expression) to the parent node.
	saved := g.curPos
	if p := e.Pos(); p.Line != 0 {
		g.curPos = p
	}
	v, err := g.genExprNode(e)
	g.curPos = saved
	return v, err
}

func (g *cgen) genExprNode(e glsl.Expr) (value, error) {
	switch e := e.(type) {
	case *glsl.Ident:
		return g.genIdent(e)
	case *glsl.Unary:
		return g.genUnary(e)
	case *glsl.Binary:
		return g.genBinary(e)
	case *glsl.Assign:
		return g.genAssign(e)
	case *glsl.Ternary:
		return g.genTernary(e)
	case *glsl.Call:
		return g.genCall(e)
	case *glsl.Index:
		return g.genIndex(e)
	case *glsl.FieldSelect:
		return g.genFieldSelect(e)
	}
	return value{}, errAt(e.Pos(), "unsupported expression in code generation")
}

func (g *cgen) genIdent(e *glsl.Ident) (value, error) {
	sym := e.Sym
	if sym == nil {
		return value{}, errAt(e.P, "internal: unresolved identifier %q", e.Name)
	}
	var b *binding
	if sym.Kind == glsl.SymBuiltinVar {
		b = g.builtinVarBinding(sym)
	} else {
		var ok bool
		b, ok = g.env[sym]
		if !ok {
			return value{}, errAt(e.P, "internal: no binding for %q", e.Name)
		}
	}
	if b.cval != nil {
		return value{typ: e.Type(), cval: b.cval, samplerIdx: -1}, nil
	}
	return value{
		typ: e.Type(), file: b.loc.file, reg: b.loc.reg, nregs: b.loc.nregs,
		swiz: IdentitySwiz, samplerIdx: b.samplerIdx,
	}, nil
}

func (g *cgen) genUnary(e *glsl.Unary) (value, error) {
	switch e.Op {
	case glsl.OpNeg:
		v, err := g.genExpr(e.X)
		if err != nil {
			return value{}, err
		}
		if v.typ.IsMatrix() {
			// Negate each column into temps.
			res := g.tempValue(v.typ)
			for i := 0; i < res.nregs; i++ {
				s := v.colSrc(i)
				s.Neg = !s.Neg
				g.emit(Inst{Op: OpMOV, Dst: DstReg(FileTemp, res.reg+i, 4), A: s})
			}
			return res, nil
		}
		v.neg = !v.neg
		return v, nil
	case glsl.OpNot:
		v, err := g.genExpr(e.X)
		if err != nil {
			return value{}, err
		}
		res := g.tempValue(e.Type())
		g.emit(Inst{Op: OpSEQ, Dst: res.dst(), A: g.asSrc(v), B: g.scalarConst(0)})
		return res, nil
	case glsl.OpPreInc, glsl.OpPreDec, glsl.OpPostInc, glsl.OpPostDec:
		lv, err := g.genLValue(e.X)
		if err != nil {
			return value{}, err
		}
		cur := g.loadLValue(lv)
		one := g.scalarConst(1)
		var old value
		if e.Op == glsl.OpPostInc || e.Op == glsl.OpPostDec {
			old = g.tempValue(e.Type())
			g.emit(Inst{Op: OpMOV, Dst: old.dst(), A: g.asSrc(cur)})
		}
		op := OpADD
		if e.Op == glsl.OpPreDec || e.Op == glsl.OpPostDec {
			op = OpSUB
		}
		next := g.tempValue(e.Type())
		g.emit(Inst{Op: op, Dst: next.dst(), A: g.asSrc(cur), B: one})
		g.storeLValue(lv, next)
		if e.Op == glsl.OpPostInc || e.Op == glsl.OpPostDec {
			return old, nil
		}
		return next, nil
	}
	return value{}, errAt(e.P, "unsupported unary operator")
}

// tempValue allocates a scratch register sized for t.
func (g *cgen) tempValue(t glsl.Type) value {
	n := regsFor(t)
	reg := g.allocScratch(n)
	return value{typ: t, file: FileTemp, reg: reg, nregs: n, swiz: IdentitySwiz, samplerIdx: -1}
}

// dst returns the destination covering the value's components.
func (v value) dst() Dst {
	return DstReg(v.file, v.reg, v.typ.Components())
}

func (g *cgen) genBinary(e *glsl.Binary) (value, error) {
	switch e.Op {
	case glsl.OpAdd, glsl.OpSub:
		// MAD fusion: a + b*c, b*c + a, a - b*c, b*c - a.
		if v, ok, err := g.tryMAD(e); err != nil {
			return value{}, err
		} else if ok {
			return v, nil
		}
		return g.genArith(e)
	case glsl.OpMul, glsl.OpDiv:
		return g.genArith(e)
	case glsl.OpLT, glsl.OpLE, glsl.OpGT, glsl.OpGE:
		ops := map[glsl.BinaryOp]Op{glsl.OpLT: OpSLT, glsl.OpLE: OpSLE, glsl.OpGT: OpSGT, glsl.OpGE: OpSGE}
		l, err := g.genExpr(e.L)
		if err != nil {
			return value{}, err
		}
		r, err := g.genExpr(e.R)
		if err != nil {
			return value{}, err
		}
		res := g.tempValue(e.Type())
		g.emit(Inst{Op: ops[e.Op], Dst: res.dst(), A: g.asSrc(l), B: g.asSrc(r)})
		return res, nil
	case glsl.OpEQ, glsl.OpNE:
		return g.genEquality(e)
	case glsl.OpLAnd, glsl.OpLOr, glsl.OpLXor:
		return g.genLogical(e)
	}
	return value{}, errAt(e.P, "unsupported binary operator")
}

// tryMAD fuses multiply-add patterns into a single MAD instruction.
func (g *cgen) tryMAD(e *glsl.Binary) (value, bool, error) {
	if e.Type().IsMatrix() || e.Type().ComponentKind() != glsl.KFloat {
		return value{}, false, nil
	}
	pick := func(side glsl.Expr) *glsl.Binary {
		if b, ok := side.(*glsl.Binary); ok && b.Op == glsl.OpMul &&
			!b.Type().IsMatrix() && !b.L.Type().IsMatrix() && !b.R.Type().IsMatrix() &&
			b.ConstVal() == nil {
			return b
		}
		return nil
	}
	var mulE *glsl.Binary
	var addE glsl.Expr
	negMul, negAdd := false, false
	if m := pick(e.L); m != nil {
		mulE, addE = m, e.R
		if e.Op == glsl.OpSub {
			negAdd = true // b*c - a
		}
	} else if m := pick(e.R); m != nil {
		mulE, addE = m, e.L
		if e.Op == glsl.OpSub {
			negMul = true // a - b*c
		}
	} else {
		return value{}, false, nil
	}
	a, err := g.genExpr(mulE.L)
	if err != nil {
		return value{}, false, err
	}
	b, err := g.genExpr(mulE.R)
	if err != nil {
		return value{}, false, err
	}
	c, err := g.genExpr(addE)
	if err != nil {
		return value{}, false, err
	}
	res := g.tempValue(e.Type())
	sa, sb, sc := g.asSrc(a), g.asSrc(b), g.asSrc(c)
	if negMul {
		sa.Neg = !sa.Neg
	}
	if negAdd {
		sc.Neg = !sc.Neg
	}
	g.emit(Inst{Op: OpMAD, Dst: res.dst(), A: sa, B: sb, C: sc})
	return res, true, nil
}

func (g *cgen) genArith(e *glsl.Binary) (value, error) {
	l, err := g.genExpr(e.L)
	if err != nil {
		return value{}, err
	}
	r, err := g.genExpr(e.R)
	if err != nil {
		return value{}, err
	}
	return g.emitArith(e.Op, e.Type(), l, r)
}

func (g *cgen) emitArith(op glsl.BinaryOp, resT glsl.Type, l, r value) (value, error) {
	ops := map[glsl.BinaryOp]Op{glsl.OpAdd: OpADD, glsl.OpSub: OpSUB, glsl.OpMul: OpMUL, glsl.OpDiv: OpDIV}
	lm, rm := l.typ.IsMatrix(), r.typ.IsMatrix()
	if !lm && !rm {
		res := g.tempValue(resT)
		g.emit(Inst{Op: ops[op], Dst: res.dst(), A: g.asSrc(l), B: g.asSrc(r)})
		return res, nil
	}
	// Matrix forms.
	res := g.tempValue(resT)
	switch {
	case lm && rm && op != glsl.OpMul:
		for i := 0; i < res.nregs; i++ {
			g.emit(Inst{Op: ops[op], Dst: DstReg(FileTemp, res.reg+i, 4), A: l.colSrc(i), B: r.colSrc(i)})
		}
	case lm && rm: // matrix product
		n := l.typ.MatrixCols()
		for j := 0; j < n; j++ {
			// result[:,j] = Σ_k L[:,k] * R[k][j]
			for k := 0; k < n; k++ {
				rs := r.colSrc(j)
				rs.Swiz = [4]uint8{uint8(k), uint8(k), uint8(k), uint8(k)}
				if k == 0 {
					g.emit(Inst{Op: OpMUL, Dst: DstReg(FileTemp, res.reg+j, n), A: l.colSrc(0), B: rs})
				} else {
					g.emit(Inst{Op: OpMAD, Dst: DstReg(FileTemp, res.reg+j, n),
						A: l.colSrc(k), B: rs, C: SrcReg(FileTemp, res.reg+j)})
				}
			}
		}
	case lm && r.typ.IsVector() && op == glsl.OpMul: // mat * vec
		n := l.typ.MatrixCols()
		rsrc := g.asSrc(r)
		for k := 0; k < n; k++ {
			bs := rsrc
			bs.Swiz = [4]uint8{rsrc.Swiz[k], rsrc.Swiz[k], rsrc.Swiz[k], rsrc.Swiz[k]}
			if k == 0 {
				g.emit(Inst{Op: OpMUL, Dst: res.dst(), A: l.colSrc(0), B: bs})
			} else {
				g.emit(Inst{Op: OpMAD, Dst: res.dst(), A: l.colSrc(k), B: bs, C: res.src()})
			}
		}
	case rm && l.typ.IsVector() && op == glsl.OpMul: // vec * mat
		n := r.typ.MatrixCols()
		dp := OpDP2
		if n == 3 {
			dp = OpDP3
		} else if n == 4 {
			dp = OpDP4
		}
		for j := 0; j < n; j++ {
			g.emit(Inst{Op: dp, Dst: Dst{File: FileTemp, Reg: uint16(res.reg), Mask: 1 << uint(j)},
				A: g.asSrc(l), B: r.colSrc(j)})
		}
	case lm && r.typ.IsScalar(), rm && l.typ.IsScalar():
		mat, sc := l, r
		if rm {
			mat, sc = r, l
		}
		ss := g.asSrc(sc)
		ss.Swiz = [4]uint8{ss.Swiz[0], ss.Swiz[0], ss.Swiz[0], ss.Swiz[0]}
		for i := 0; i < res.nregs; i++ {
			a, b := mat.colSrc(i), ss
			if rm && (op == glsl.OpDiv || op == glsl.OpSub) {
				a, b = ss, mat.colSrc(i) // scalar op matrix
			}
			g.emit(Inst{Op: ops[op], Dst: DstReg(FileTemp, res.reg+i, 4), A: a, B: b})
		}
	default:
		return value{}, errAt(glsl.Pos{}, "unsupported matrix operation")
	}
	return res, nil
}

func (g *cgen) genEquality(e *glsl.Binary) (value, error) {
	l, err := g.genExpr(e.L)
	if err != nil {
		return value{}, err
	}
	r, err := g.genExpr(e.R)
	if err != nil {
		return value{}, err
	}
	res := g.tempValue(e.Type())
	n := l.typ.Components()
	if l.typ.IsMatrix() {
		return value{}, errAt(e.P, "matrix equality comparison is not supported by this back end")
	}
	if n == 1 {
		op := OpSEQ
		if e.Op == glsl.OpNE {
			op = OpSNE
		}
		g.emit(Inst{Op: op, Dst: res.dst(), A: g.asSrc(l), B: g.asSrc(r)})
		return res, nil
	}
	// Vector compare: reduce componentwise equality.
	cmp := g.tempValue(l.typ)
	g.emit(Inst{Op: OpSEQ, Dst: cmp.dst(), A: g.asSrc(l), B: g.asSrc(r)})
	dp := map[int]Op{2: OpDP2, 3: OpDP3, 4: OpDP4}[n]
	sum := g.tempValue(glsl.T(glsl.KFloat))
	g.emit(Inst{Op: dp, Dst: sum.dst(), A: cmp.src(), B: g.scalarConst(1)})
	if e.Op == glsl.OpEQ { // all equal: sum == n
		g.emit(Inst{Op: OpSGE, Dst: res.dst(), A: sum.src(), B: g.scalarConst(float32(n) - 0.5)})
	} else { // any differ: sum < n
		g.emit(Inst{Op: OpSLT, Dst: res.dst(), A: sum.src(), B: g.scalarConst(float32(n) - 0.5)})
	}
	return res, nil
}

func (g *cgen) genLogical(e *glsl.Binary) (value, error) {
	l, err := g.genExpr(e.L)
	if err != nil {
		return value{}, err
	}
	res := g.tempValue(e.Type())
	switch e.Op {
	case glsl.OpLXor:
		r, err := g.genExpr(e.R)
		if err != nil {
			return value{}, err
		}
		g.emit(Inst{Op: OpSNE, Dst: res.dst(), A: g.asSrc(l), B: g.asSrc(r)})
		return res, nil
	case glsl.OpLAnd:
		// res = l; if (res != 0) res = r;   (short-circuit)
		g.emit(Inst{Op: OpMOV, Dst: res.dst(), A: g.asSrc(l)})
		brz := g.emit(Inst{Op: OpBRZ, A: res.src()})
		r, err := g.genExpr(e.R)
		if err != nil {
			return value{}, err
		}
		g.emit(Inst{Op: OpMOV, Dst: res.dst(), A: g.asSrc(r)})
		g.prog.Insts[brz].Target = g.here()
		return res, nil
	case glsl.OpLOr:
		// res = l; if (res == 0) res = r.
		g.emit(Inst{Op: OpMOV, Dst: res.dst(), A: g.asSrc(l)})
		inv := g.tempValue(glsl.T(glsl.KBool))
		g.emit(Inst{Op: OpSEQ, Dst: inv.dst(), A: res.src(), B: g.scalarConst(0)})
		brz := g.emit(Inst{Op: OpBRZ, A: inv.src()})
		r, err := g.genExpr(e.R)
		if err != nil {
			return value{}, err
		}
		g.emit(Inst{Op: OpMOV, Dst: res.dst(), A: g.asSrc(r)})
		g.prog.Insts[brz].Target = g.here()
		return res, nil
	}
	return value{}, errAt(e.P, "unsupported logical operator")
}

func (g *cgen) genTernary(e *glsl.Ternary) (value, error) {
	cond, err := g.genExpr(e.Cond)
	if err != nil {
		return value{}, err
	}
	if cond.cval != nil {
		if cond.cval.Bool() {
			return g.genExpr(e.Then)
		}
		return g.genExpr(e.Else)
	}
	res := g.tempValue(e.Type())
	brz := g.emit(Inst{Op: OpBRZ, A: g.asSrc(cond)})
	tv, err := g.genExpr(e.Then)
	if err != nil {
		return value{}, err
	}
	g.storeToLoc(loc{file: res.file, reg: res.reg, nregs: res.nregs}, e.Type(), tv)
	br := g.emit(Inst{Op: OpBR})
	g.prog.Insts[brz].Target = g.here()
	ev, err := g.genExpr(e.Else)
	if err != nil {
		return value{}, err
	}
	g.storeToLoc(loc{file: res.file, reg: res.reg, nregs: res.nregs}, e.Type(), ev)
	g.prog.Insts[br].Target = g.here()
	return res, nil
}

func (g *cgen) genIndex(e *glsl.Index) (value, error) {
	x, err := g.genExpr(e.X)
	if err != nil {
		return value{}, err
	}
	idxCV, err := g.constIndex(e.Idx)
	if err != nil {
		return value{}, err
	}
	i := idxCV.Int()
	xt := x.typ
	switch {
	case xt.IsArray():
		elem := xt
		elem.ArrayLen = 0
		per := regsFor(elem)
		if x.cval != nil {
			comps := elem.Components()
			vals := x.cval.Vals[i*comps : (i+1)*comps]
			return value{typ: elem, cval: &glsl.ConstValue{T: elem, Vals: vals}, samplerIdx: -1}, nil
		}
		return value{typ: elem, file: x.file, reg: x.reg + i*per, nregs: per, swiz: IdentitySwiz, neg: x.neg, samplerIdx: -1}, nil
	case xt.IsVector():
		comp, _ := glsl.VectorOf(xt.ComponentKind(), 1)
		v := x
		v.typ = comp
		c := x.swiz[i]
		v.swiz = [4]uint8{c, c, c, c}
		return v, nil
	case xt.IsMatrix():
		col, _ := glsl.VectorOf(glsl.KFloat, xt.MatrixCols())
		return value{typ: col, file: x.file, reg: x.reg + i, nregs: 1, swiz: IdentitySwiz, neg: x.neg, samplerIdx: -1}, nil
	}
	return value{}, errAt(e.P, "cannot index %s", xt)
}

func (g *cgen) genFieldSelect(e *glsl.FieldSelect) (value, error) {
	x, err := g.genExpr(e.X)
	if err != nil {
		return value{}, err
	}
	v := x
	v.typ = e.Type()
	var sw [4]uint8
	for i := 0; i < 4; i++ {
		ci := 0
		if i < len(e.Comps) {
			ci = e.Comps[i]
		} else {
			ci = e.Comps[len(e.Comps)-1]
		}
		sw[i] = x.swiz[ci]
	}
	v.swiz = sw
	return v, nil
}

// constIndex resolves an index expression to a compile-time constant. Sema
// folds literal indices; unrolled loop indices only become constants during
// code generation, so a second resolution pass runs here.
func (g *cgen) constIndex(e glsl.Expr) (*glsl.ConstValue, error) {
	if cv := e.ConstVal(); cv != nil {
		return cv, nil
	}
	// The common dynamic-index shape is a bare loop index; evaluate it and
	// accept only a constant result (no instructions are emitted for
	// constant-valued subexpressions).
	if id, ok := e.(*glsl.Ident); ok {
		if b := g.env[id.Sym]; b != nil && b.cval != nil {
			return b.cval, nil
		}
	}
	return nil, errAt(e.Pos(), "dynamic indexing is not supported on this hardware class (use constant indices or unrollable loop indices)")
}

// L-values.

func (g *cgen) genLValue(e glsl.Expr) (lval, error) {
	switch e := e.(type) {
	case *glsl.Ident:
		var b *binding
		if e.Sym.Kind == glsl.SymBuiltinVar {
			b = g.builtinVarBinding(e.Sym)
		} else {
			var ok bool
			b, ok = g.env[e.Sym]
			if !ok || b.cval != nil {
				return lval{}, errAt(e.P, "internal: %q is not assignable here", e.Name)
			}
		}
		n := e.Type().Components()
		comps := make([]int, n)
		for i := range comps {
			comps[i] = i
		}
		return lval{file: b.loc.file, reg: b.loc.reg, comps: comps, typ: e.Type(), nregs: b.loc.nregs}, nil
	case *glsl.FieldSelect:
		base, err := g.genLValue(e.X)
		if err != nil {
			return lval{}, err
		}
		comps := make([]int, len(e.Comps))
		for i, ci := range e.Comps {
			comps[i] = base.comps[ci]
		}
		return lval{file: base.file, reg: base.reg, comps: comps, typ: e.Type(), nregs: 1}, nil
	case *glsl.Index:
		idxCV, err := g.constIndex(e.Idx)
		if err != nil {
			return lval{}, err
		}
		i := idxCV.Int()
		base, err := g.genLValue(e.X)
		if err != nil {
			return lval{}, err
		}
		xt := e.X.Type()
		switch {
		case xt.IsArray():
			elem := xt
			elem.ArrayLen = 0
			per := regsFor(elem)
			comps := make([]int, elem.Components())
			for j := range comps {
				comps[j] = j
			}
			return lval{file: base.file, reg: base.reg + i*per, comps: comps, typ: elem, nregs: per}, nil
		case xt.IsVector():
			comp, _ := glsl.VectorOf(xt.ComponentKind(), 1)
			return lval{file: base.file, reg: base.reg, comps: []int{base.comps[i]}, typ: comp, nregs: 1}, nil
		case xt.IsMatrix():
			col, _ := glsl.VectorOf(glsl.KFloat, xt.MatrixCols())
			comps := make([]int, xt.MatrixCols())
			for j := range comps {
				comps[j] = j
			}
			return lval{file: base.file, reg: base.reg + i, comps: comps, typ: col, nregs: 1}, nil
		}
		return lval{}, errAt(e.P, "cannot index %s", xt)
	}
	return lval{}, errAt(e.Pos(), "expression is not assignable")
}

// loadLValue reads the current value of an l-value.
func (g *cgen) loadLValue(lv lval) value {
	if lv.typ.IsMatrix() || lv.typ.IsArray() {
		return value{typ: lv.typ, file: lv.file, reg: lv.reg, nregs: lv.nregs, swiz: IdentitySwiz, samplerIdx: -1}
	}
	var sw [4]uint8
	for i := 0; i < 4; i++ {
		ci := 0
		if i < len(lv.comps) {
			ci = lv.comps[i]
		} else {
			ci = lv.comps[len(lv.comps)-1]
		}
		sw[i] = uint8(ci)
	}
	return value{typ: lv.typ, file: lv.file, reg: lv.reg, nregs: 1, swiz: sw, samplerIdx: -1}
}

// storeLValue writes v into the l-value, arranging the swizzle so source
// component j lands in destination component comps[j].
func (g *cgen) storeLValue(lv lval, v value) {
	if lv.typ.IsMatrix() || lv.typ.IsArray() {
		g.storeToLoc(loc{file: lv.file, reg: lv.reg, nregs: lv.nregs}, lv.typ, v)
		return
	}
	src := g.asSrc(v)
	var mask uint8
	var sw [4]uint8
	srcIsScalar := v.typ.Components() == 1
	for j, d := range lv.comps {
		mask |= 1 << uint(d)
		if srcIsScalar {
			sw[d] = src.Swiz[0]
		} else {
			sw[d] = src.Swiz[j]
		}
	}
	src.Swiz = sw
	g.emit(Inst{Op: OpMOV, Dst: Dst{File: lv.file, Reg: uint16(lv.reg), Mask: mask}, A: src})
}

func (g *cgen) genAssign(e *glsl.Assign) (value, error) {
	lv, err := g.genLValue(e.LHS)
	if err != nil {
		return value{}, err
	}
	if e.Op == glsl.AsgEq {
		// MAD fusion into plain assignments: x = a*b + c.
		rhs, err := g.genExpr(e.RHS)
		if err != nil {
			return value{}, err
		}
		g.storeLValue(lv, rhs)
		return rhs, nil
	}
	cur := g.loadLValue(lv)
	var bop glsl.BinaryOp
	switch e.Op {
	case glsl.AsgAdd:
		bop = glsl.OpAdd
	case glsl.AsgSub:
		bop = glsl.OpSub
	case glsl.AsgMul:
		bop = glsl.OpMul
	case glsl.AsgDiv:
		bop = glsl.OpDiv
	}
	// Fusion for acc += a*b (the paper's sgemm inner loop shape).
	if bop == glsl.OpAdd && lv.typ.ComponentKind() == glsl.KFloat {
		if mulE, ok := e.RHS.(*glsl.Binary); ok && mulE.Op == glsl.OpMul &&
			!mulE.Type().IsMatrix() && !mulE.L.Type().IsMatrix() && !mulE.R.Type().IsMatrix() &&
			mulE.ConstVal() == nil {
			a, err := g.genExpr(mulE.L)
			if err != nil {
				return value{}, err
			}
			b, err := g.genExpr(mulE.R)
			if err != nil {
				return value{}, err
			}
			res := g.tempValue(lv.typ)
			g.emit(Inst{Op: OpMAD, Dst: res.dst(), A: g.asSrc(a), B: g.asSrc(b), C: g.asSrc(cur)})
			g.storeLValue(lv, res)
			return res, nil
		}
	}
	rhs, err := g.genExpr(e.RHS)
	if err != nil {
		return value{}, err
	}
	res, err := g.emitArith(bop, lv.typ, cur, rhs)
	if err != nil {
		return value{}, err
	}
	g.storeLValue(lv, res)
	return res, nil
}
