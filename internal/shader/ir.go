// Package shader is the back end of the GLSL compiler: it lowers the typed
// AST produced by internal/glsl into a register-based intermediate
// representation modelled on embedded GPU shader ISAs (VideoCore IV QPUs,
// PowerVR USSE), enforces per-device implementation limits, and provides an
// interpreter ("the shader cores") that executes the IR functionally while
// accounting cycles for the timing model.
//
// Design points that matter for the reproduced paper:
//
//   - Loops are fully unrolled (GLSL ES 1.00 Appendix A semantics), so the
//     instruction count and texture-access count grow with the sgemm block
//     size — exceeding MaxInstructions/MaxTexInstructions at large blocks
//     reproduces the paper's compile failures above block size 16.
//   - a*b+c is fused into a single MAD, and builtins like dot and clamp map
//     to single instructions, so the paper's kernel-code optimisations are
//     visible as cycle-count differences.
//   - mul24 (the GL_EXT_mul24 builtin) quantises its operands to 24
//     fractional bits and costs less than a full-precision MUL.
package shader

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"gles2gpgpu/internal/glsl"
)

// Op is an IR opcode.
type Op uint8

// Opcodes. Componentwise ALU ops honour the destination write mask;
// DP2/DP3/DP4 reduce and broadcast; control flow uses absolute instruction
// indices.
const (
	OpNOP Op = iota
	OpMOV
	OpADD
	OpSUB
	OpMUL
	OpDIV
	OpMAD   // dst = a*b + c
	OpMUL24 // dst = a*b with operands quantised to 24 fractional bits
	OpDP2
	OpDP3
	OpDP4
	OpMIN
	OpMAX
	OpCLAMP // dst = min(max(a,b),c) — single saturate-style instruction
	OpABS
	OpSGN
	OpFLR
	OpCEIL
	OpFRC
	OpRCP
	OpRSQ
	OpSQRT
	OpEX2
	OpLG2
	OpPOW
	OpEXP
	OpLOG
	OpSIN
	OpCOS
	OpTAN
	OpASIN
	OpACOS
	OpATAN
	OpATAN2
	OpSLT // set 1.0 if a < b else 0.0
	OpSLE
	OpSGT
	OpSGE
	OpSEQ
	OpSNE
	OpSEL   // dst = a != 0 ? b : c (componentwise)
	OpQUANT // dst = decode(encode(a)): RGBA8 texel round trip, componentwise
	OpTEX   // dst = sample(sampler[SamplerIdx], a.xy)
	OpKIL   // discard fragment if a.x != 0
	OpBR    // unconditional branch to Target
	OpBRZ   // branch to Target if a.x == 0
	OpRET   // end shader / end of inlined body
	opMax
)

var opNames = [opMax]string{
	OpNOP: "nop", OpMOV: "mov", OpADD: "add", OpSUB: "sub", OpMUL: "mul",
	OpDIV: "div", OpMAD: "mad", OpMUL24: "mul24",
	OpDP2: "dp2", OpDP3: "dp3", OpDP4: "dp4",
	OpMIN: "min", OpMAX: "max", OpCLAMP: "clamp",
	OpABS: "abs", OpSGN: "sgn", OpFLR: "flr", OpCEIL: "ceil", OpFRC: "frc",
	OpRCP: "rcp", OpRSQ: "rsq", OpSQRT: "sqrt",
	OpEX2: "ex2", OpLG2: "lg2", OpPOW: "pow", OpEXP: "exp", OpLOG: "log",
	OpSIN: "sin", OpCOS: "cos", OpTAN: "tan",
	OpASIN: "asin", OpACOS: "acos", OpATAN: "atan", OpATAN2: "atan2",
	OpSLT: "slt", OpSLE: "sle", OpSGT: "sgt", OpSGE: "sge",
	OpSEQ: "seq", OpSNE: "sne", OpSEL: "sel", OpQUANT: "quant",
	OpTEX: "tex", OpKIL: "kil", OpBR: "br", OpBRZ: "brz", OpRET: "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// RegFile selects a register bank.
type RegFile uint8

// Register banks.
const (
	FileTemp    RegFile = iota // read-write temporaries
	FileUniform                // constant across a draw, set by the API
	FileInput                  // varyings/attributes + gl_FragCoord
	FileOutput                 // gl_FragColor / gl_Position + varyings out
	FileConst                  // compile-time constant pool
)

var fileNames = map[RegFile]string{
	FileTemp: "r", FileUniform: "u", FileInput: "i", FileOutput: "o", FileConst: "c",
}

// Src is a source operand: a register with a component swizzle and optional
// negation (free on real hardware, free here too).
type Src struct {
	File RegFile
	Reg  uint16
	Swiz [4]uint8 // component selection, values 0..3
	Neg  bool
}

// IdentitySwiz is the no-op swizzle.
var IdentitySwiz = [4]uint8{0, 1, 2, 3}

// SrcReg returns a plain source operand with identity swizzle.
func SrcReg(f RegFile, r int) Src {
	return Src{File: f, Reg: uint16(r), Swiz: IdentitySwiz}
}

func (s Src) String() string {
	str := fmt.Sprintf("%s%d", fileNames[s.File], s.Reg)
	if s.Swiz != IdentitySwiz {
		comps := "xyzw"
		str += "."
		for _, c := range s.Swiz {
			str += string(comps[c&3])
		}
	}
	if s.Neg {
		str = "-" + str
	}
	return str
}

// Dst is a destination operand: a temp or output register plus a component
// write mask (bit i enables component i).
type Dst struct {
	File RegFile
	Reg  uint16
	Mask uint8
}

// MaskAll writes all four components.
const MaskAll uint8 = 0xF

// DstReg returns a destination covering n leading components.
func DstReg(f RegFile, r, n int) Dst {
	return Dst{File: f, Reg: uint16(r), Mask: maskN(n)}
}

func maskN(n int) uint8 {
	if n >= 4 {
		return 0xF
	}
	return uint8(1<<uint(n)) - 1
}

func (d Dst) String() string {
	str := fmt.Sprintf("%s%d", fileNames[d.File], d.Reg)
	if d.Mask != MaskAll {
		comps := "xyzw"
		str += "."
		for i := 0; i < 4; i++ {
			if d.Mask&(1<<uint(i)) != 0 {
				str += string(comps[i])
			}
		}
	}
	return str
}

// Inst is one IR instruction.
type Inst struct {
	Op         Op
	Dst        Dst
	A, B, C    Src
	SamplerIdx uint8 // for OpTEX: index into Program.Samplers
	Target     int32 // for OpBR/OpBRZ: absolute instruction index
	// SrcPos is the GLSL source position the instruction was lowered
	// from (zero when synthesised without one), so analysis diagnostics
	// can point at source lines.
	SrcPos glsl.Pos
}

// SrcLanes reports which post-swizzle lanes of each source operand
// influence the instruction's result: componentwise ops consume the lanes
// the destination mask keeps, reductions and special forms consume fixed
// lanes, and operands an opcode does not read report zero. This is the
// single definition of "what counts as a read" shared by the liveness
// proof, the optimisation passes and the lint diagnostics.
func (in *Inst) SrcLanes() (a, b, c uint8) {
	switch in.Op {
	case OpNOP, OpRET, OpBR:
		return 0, 0, 0
	case OpKIL, OpBRZ:
		return 1, 0, 0 // read1: lane x only
	case OpTEX:
		return 0b0011, 0, 0 // (u, v)
	case OpDP2:
		return 0b0011, 0b0011, 0
	case OpDP3:
		return 0b0111, 0b0111, 0
	case OpDP4:
		return 0b1111, 0b1111, 0
	case OpADD, OpSUB, OpMUL, OpDIV, OpMIN, OpMAX, OpPOW, OpATAN2,
		OpSLT, OpSLE, OpSGT, OpSGE, OpSEQ, OpSNE, OpMUL24:
		return in.Dst.Mask, in.Dst.Mask, 0
	case OpMAD, OpCLAMP, OpSEL:
		return in.Dst.Mask, in.Dst.Mask, in.Dst.Mask
	default: // unary componentwise, incl. MOV
		return in.Dst.Mask, 0, 0
	}
}

// WriteMask reports which destination components the instruction writes
// (zero for control flow and KIL, which have no destination).
func (in *Inst) WriteMask() uint8 {
	switch in.Op {
	case OpNOP, OpRET, OpBR, OpBRZ, OpKIL:
		return 0
	}
	return in.Dst.Mask
}

func (in Inst) String() string {
	switch in.Op {
	case OpNOP, OpRET:
		return in.Op.String()
	case OpBR:
		return fmt.Sprintf("br %d", in.Target)
	case OpBRZ:
		return fmt.Sprintf("brz %s, %d", in.A, in.Target)
	case OpKIL:
		return fmt.Sprintf("kil %s", in.A)
	case OpTEX:
		return fmt.Sprintf("tex %s, %s, s%d", in.Dst, in.A, in.SamplerIdx)
	case OpMOV, OpABS, OpSGN, OpFLR, OpCEIL, OpFRC, OpRCP, OpRSQ, OpSQRT,
		OpEX2, OpLG2, OpEXP, OpLOG, OpSIN, OpCOS, OpTAN, OpASIN, OpACOS, OpATAN,
		OpQUANT:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.A)
	case OpMAD, OpCLAMP, OpSEL:
		return fmt.Sprintf("%s %s, %s, %s, %s", in.Op, in.Dst, in.A, in.B, in.C)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.A, in.B)
	}
}

// UniformInfo describes one uniform in the program's interface.
type UniformInfo struct {
	Name string
	Type glsl.Type
	// Reg is the first uniform register; Regs is the count (arrays and
	// matrices span several).
	Reg  int
	Regs int
	// SamplerIdx is the index into Program.Samplers for sampler uniforms,
	// -1 otherwise.
	SamplerIdx int
}

// VarInfo describes one input or output varying/attribute.
type VarInfo struct {
	Name       string
	Type       glsl.Type
	Reg        int
	Components int
}

// Program is a compiled shader.
type Program struct {
	Stage  glsl.ShaderStage
	Source string // original GLSL, retained for diagnostics

	Insts  []Inst
	Consts [][4]float32

	NumTemps   int
	NumInputs  int
	NumOutputs int
	NumUniform int

	Uniforms []UniformInfo
	Inputs   []VarInfo
	Outputs  []VarInfo
	// Samplers[i] is the uniform name bound to texture-sampler slot i.
	Samplers []string

	// Static statistics (after unrolling), used for limit checks and the
	// timing model.
	TexInstructions int
	UsesDiscard     bool

	// WritesBeforeReads records that every read of a temp or output
	// register component is preceded by a write within the same invocation
	// (see liveness.go). When true, an invocation can never observe state
	// left by a previous one: Env.Reset may skip zeroing Temps, and the
	// host-parallel fragment engine may shade with per-worker Envs while
	// staying bit-identical to serial execution.
	WritesBeforeReads bool

	// OutputsAlwaysWritten records that every component of every output
	// register is definitely written on every non-discarding path to
	// program exit. The GLES layer reads Outputs after Run even when the
	// program left them untouched, so serial Env reuse can leak the
	// previous fragment's colour; parallel shading requires this flag (in
	// addition to WritesBeforeReads) to rule that channel out.
	OutputsAlwaysWritten bool

	// jit caches the closure-compiled form of the program (see jit.go),
	// built lazily on first execution and keyed by cost-model identity.
	// jitMu serialises cache fills so concurrent engines sharing one
	// Program (a serving worker pool) compile it exactly once; reads stay
	// lock-free through the atomic pointers.
	jitMu sync.Mutex
	jit   atomic.Pointer[Compiled]
	// jitOpt caches the closure-compiled form of the optimised program
	// (the OptProgram attached via SetOptimized).
	jitOpt atomic.Pointer[Compiled]
	// lanes / lanesOpt cache the lane-batched (SoA) compiled forms (see
	// lanes.go), keyed by (cost, width) and (cost, width, OptProgram)
	// respectively; ineligible programs cache a sentinel so the
	// straightness scan is not repeated per draw.
	lanes    atomic.Pointer[LaneCompiled]
	lanesOpt atomic.Pointer[LaneCompiled]
	// lanesMasked / lanesMaskedOpt cache the divergence-masked lane forms
	// (see lanes_masked.go) under the same keying discipline.
	lanesMasked    atomic.Pointer[LaneCompiled]
	lanesMaskedOpt atomic.Pointer[LaneCompiled]
	// opt holds the pass-pipeline result attached by SetOptimized
	// (computed in internal/shader/analysis, which this package cannot
	// import).
	opt atomic.Pointer[OptProgram]
}

// InstructionCount returns the static instruction count after unrolling.
func (p *Program) InstructionCount() int { return len(p.Insts) }

// InstSuccs returns the control-flow successors of instruction i:
// fall-through for ordinary instructions, branch targets for BR/BRZ,
// nothing for RET or a fall-off-the-end. KIL's discard edge leaves the
// program and is not a successor. This is the single successor function
// shared by the liveness proof and the analysis framework's CFG.
func (p *Program) InstSuccs(i int) []int {
	n := len(p.Insts)
	switch p.Insts[i].Op {
	case OpRET:
		return nil
	case OpBR:
		if t := int(p.Insts[i].Target); t >= 0 && t < n {
			return []int{t}
		}
		return nil
	case OpBRZ:
		s := []int{}
		if i+1 < n {
			s = append(s, i+1)
		}
		if t := int(p.Insts[i].Target); t >= 0 && t < n {
			s = append(s, t)
		}
		return s
	default:
		if i+1 < n {
			return []int{i + 1}
		}
		return nil
	}
}

// LookupUniform finds a uniform by name.
func (p *Program) LookupUniform(name string) (UniformInfo, bool) {
	for _, u := range p.Uniforms {
		if u.Name == name {
			return u, true
		}
	}
	return UniformInfo{}, false
}

// LookupInput finds an input (attribute/varying) by name.
func (p *Program) LookupInput(name string) (VarInfo, bool) {
	for _, v := range p.Inputs {
		if v.Name == name {
			return v, true
		}
	}
	return VarInfo{}, false
}

// LookupOutput finds an output varying by name.
func (p *Program) LookupOutput(name string) (VarInfo, bool) {
	for _, v := range p.Outputs {
		if v.Name == name {
			return v, true
		}
	}
	return VarInfo{}, false
}

// Disassemble renders the program IR as text.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %s shader: %d instructions, %d tex, %d temps\n",
		p.Stage, len(p.Insts), p.TexInstructions, p.NumTemps)
	for _, u := range p.Uniforms {
		fmt.Fprintf(&sb, "; uniform %-12s %s u%d+%d\n", u.Name, u.Type, u.Reg, u.Regs)
	}
	for _, v := range p.Inputs {
		fmt.Fprintf(&sb, "; input   %-12s %s i%d\n", v.Name, v.Type, v.Reg)
	}
	for _, v := range p.Outputs {
		fmt.Fprintf(&sb, "; output  %-12s %s o%d\n", v.Name, v.Type, v.Reg)
	}
	for i, c := range p.Consts {
		fmt.Fprintf(&sb, "; const c%d = (%g, %g, %g, %g)\n", i, c[0], c[1], c[2], c[3])
	}
	for i, in := range p.Insts {
		fmt.Fprintf(&sb, "%4d: %s\n", i, in.String())
	}
	return sb.String()
}
