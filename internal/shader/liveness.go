package shader

// Write-before-read liveness analysis.
//
// The host-parallel fragment engine in internal/gles shades disjoint
// framebuffer regions on separate goroutines, each with its own Env. The
// serial engine reuses one Env across every fragment of a draw without
// resetting it, so a program that reads a temporary or output register
// before writing it would observe the previous invocation's value — and
// parallel shading (fresh or pooled Envs) would diverge from serial. The
// same property lets Env.Reset skip zeroing Temps entirely.
//
// The proof is a forward must-write dataflow over the instruction CFG: a
// register component is "definitely written" at an instruction if it is
// written on every path from the entry point. Reads are then checked
// against the definitely-written set. The analysis is path-insensitive but
// exact at joins, which handles the if/ternary/short-circuit branches the
// compiler emits; generated GPGPU kernels are fully unrolled and
// straight-line anyway.
//
// The fixpoint itself runs on the shared solver in internal/dataflow; the
// same MustWrite result is reused by internal/shader/analysis for its
// uninitialized-read diagnostics, so the lint findings and the execution
// engine's gating provably agree on what "written before read" means.
//
// The same fixpoint yields outputsAlwaysWritten: the meet of the
// definitely-written sets at every non-discarding program exit (RET and
// fall-off-the-end; KIL exits are excluded because discarded fragments'
// outputs are never read) must cover all output register components.

import "gles2gpgpu/internal/dataflow"

// MustWriteInfo is the solved must-write lattice of a program: for every
// instruction, the set of temp/output register components definitely
// written on every path from entry to that instruction (exclusive of the
// instruction's own writes). Unreachable instructions report top (all
// components written) — they never execute, so any fact holds vacuously.
type MustWriteInfo struct {
	// In[i] is the definitely-written set on entry to instruction i.
	In []dataflow.BitSet
	// numTemps fixes the bit layout: temps first, then outputs.
	numTemps int
}

// bit maps a register component to its lattice bit. Only FileTemp and
// FileOutput components are tracked.
func (m *MustWriteInfo) bit(file RegFile, reg uint16, comp int) int {
	if file == FileTemp {
		return int(reg)*4 + comp
	}
	return (m.numTemps+int(reg))*4 + comp
}

// WrittenAt reports whether the given register component is definitely
// written on every path reaching instruction i. Components in read-only
// files (uniforms, inputs, constants) are trivially "written".
func (m *MustWriteInfo) WrittenAt(i int, file RegFile, reg uint16, comp int) bool {
	if file != FileTemp && file != FileOutput {
		return true
	}
	return m.In[i].Get(m.bit(file, reg, comp))
}

// SrcWrittenAt reports whether every post-swizzle lane in lanes of source
// operand s is definitely written when instruction i executes.
func (m *MustWriteInfo) SrcWrittenAt(i int, s Src, lanes uint8) bool {
	if s.File != FileTemp && s.File != FileOutput {
		return true
	}
	for l := 0; l < 4; l++ {
		if lanes&(1<<uint(l)) == 0 {
			continue
		}
		if !m.In[i].Get(m.bit(s.File, s.Reg, int(s.Swiz[l]&3))) {
			return false
		}
	}
	return true
}

// MustWrite solves the must-write dataflow for p. The result is
// deterministic and side-effect free; callers may cache it.
func (p *Program) MustWrite() *MustWriteInfo {
	n := len(p.Insts)
	bits := 4 * (p.NumTemps + p.NumOutputs)
	m := &MustWriteInfo{numTemps: p.NumTemps}
	if n == 0 {
		return m
	}
	// gen[i] = components instruction i writes.
	gen := make([]dataflow.BitSet, n)
	for i := range p.Insts {
		g := dataflow.NewBitSet(bits)
		in := &p.Insts[i]
		if mask := in.WriteMask(); mask != 0 &&
			(in.Dst.File == FileTemp || in.Dst.File == FileOutput) {
			for c := 0; c < 4; c++ {
				if mask&(1<<uint(c)) != 0 {
					g.Set(m.bit(in.Dst.File, in.Dst.Reg, c))
				}
			}
		}
		gen[i] = g
	}
	prob := &dataflow.Problem{
		N: n, Bits: bits, Entry: 0, Must: true,
		Succs: p.InstSuccs,
		Transfer: func(i int, in, out dataflow.BitSet) {
			out.CopyFrom(in)
			out.Or(gen[i])
		},
	}
	m.In = prob.Forward()
	return m
}

// exitMustWrite returns the meet of the definitely-written sets over every
// non-discarding exit: RET exits contribute their in-set; instructions
// whose fall-through leaves the program contribute their out-set.
// Unreachable exits stay at top and do not weaken the meet.
func exitMustWrite(p *Program, m *MustWriteInfo) dataflow.BitSet {
	n := len(p.Insts)
	exit := dataflow.NewBitSet(4 * (p.NumTemps + p.NumOutputs))
	exit.Fill()
	for i := range p.Insts {
		switch p.Insts[i].Op {
		case OpRET:
			exit.IntersectWith(m.In[i])
		case OpBR:
			// never falls through
		default:
			if i+1 == n {
				out := m.In[i].Clone()
				in := &p.Insts[i]
				if mask := in.WriteMask(); mask != 0 &&
					(in.Dst.File == FileTemp || in.Dst.File == FileOutput) {
					for c := 0; c < 4; c++ {
						if mask&(1<<uint(c)) != 0 {
							out.Set(m.bit(in.Dst.File, in.Dst.Reg, c))
						}
					}
				}
				exit.IntersectWith(out)
			}
		}
	}
	return exit
}

// analyzeLiveness reports (writesBeforeReads, outputsAlwaysWritten) for p.
func analyzeLiveness(p *Program) (wbr, outAlways bool) {
	if len(p.Insts) == 0 {
		return true, p.NumOutputs == 0
	}
	m := p.MustWrite()

	exit := exitMustWrite(p, m)
	outAlways = true
outer:
	for r := 0; r < p.NumOutputs; r++ {
		for c := 0; c < 4; c++ {
			if !exit.Get(m.bit(FileOutput, uint16(r), c)) {
				outAlways = false
				break outer
			}
		}
	}

	// Check every read against the definitely-written set at its
	// instruction. Only post-swizzle lanes that influence the result count
	// as reads (Inst.SrcLanes).
	for i := range p.Insts {
		in := &p.Insts[i]
		la, lb, lc := in.SrcLanes()
		if !m.SrcWrittenAt(i, in.A, la) ||
			!m.SrcWrittenAt(i, in.B, lb) ||
			!m.SrcWrittenAt(i, in.C, lc) {
			return false, outAlways
		}
	}
	return true, outAlways
}
