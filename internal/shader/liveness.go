package shader

// Write-before-read liveness analysis.
//
// The host-parallel fragment engine in internal/gles shades disjoint
// framebuffer regions on separate goroutines, each with its own Env. The
// serial engine reuses one Env across every fragment of a draw without
// resetting it, so a program that reads a temporary or output register
// before writing it would observe the previous invocation's value — and
// parallel shading (fresh or pooled Envs) would diverge from serial. The
// same property lets Env.Reset skip zeroing Temps entirely.
//
// analyzeLiveness proves the property with a forward must-write dataflow
// over the instruction CFG: a register component is "definitely written"
// at an instruction if it is written on every path from the entry point.
// Reads are then checked against the definitely-written set. The analysis
// is path-insensitive but exact at joins, which handles the
// if/ternary/short-circuit branches the compiler emits; generated GPGPU
// kernels are fully unrolled and straight-line anyway.
//
// The same fixpoint yields outputsAlwaysWritten: the meet of the
// definitely-written sets at every non-discarding program exit (RET and
// fall-off-the-end; KIL exits are excluded because discarded fragments'
// outputs are never read) must cover all output register components.

// analyzeLiveness reports (writesBeforeReads, outputsAlwaysWritten) for p.
func analyzeLiveness(p *Program) (wbr, outAlways bool) {
	n := len(p.Insts)
	if n == 0 {
		return true, p.NumOutputs == 0
	}
	// One bit per writable register component: temps first, then outputs.
	nTemps := p.NumTemps
	bits := 4 * (nTemps + p.NumOutputs)
	words := (bits + 63) / 64
	if words == 0 {
		words = 1
	}
	bitOf := func(file RegFile, reg uint16, comp int) int {
		if file == FileTemp {
			return int(reg)*4 + comp
		}
		return (nTemps+int(reg))*4 + comp
	}

	// gen[i] = components instruction i writes.
	gen := make([][]uint64, n)
	for i := range p.Insts {
		g := make([]uint64, words)
		in := &p.Insts[i]
		switch in.Op {
		case OpNOP, OpRET, OpBR, OpBRZ, OpKIL:
		default:
			if in.Dst.File == FileTemp || in.Dst.File == FileOutput {
				for c := 0; c < 4; c++ {
					if in.Dst.Mask&(1<<uint(c)) != 0 {
						b := bitOf(in.Dst.File, in.Dst.Reg, c)
						g[b/64] |= 1 << uint(b%64)
					}
				}
			}
		}
		gen[i] = g
	}

	succs := func(i int) []int {
		switch p.Insts[i].Op {
		case OpRET:
			return nil
		case OpBR:
			if t := int(p.Insts[i].Target); t >= 0 && t < n {
				return []int{t}
			}
			return nil
		case OpBRZ:
			s := []int{}
			if i+1 < n {
				s = append(s, i+1)
			}
			if t := int(p.Insts[i].Target); t >= 0 && t < n {
				s = append(s, t)
			}
			return s
		default:
			if i+1 < n {
				return []int{i + 1}
			}
			return nil
		}
	}

	// Must-write fixpoint: inSet[i] = intersection over predecessors of
	// (inSet[pred] | gen[pred]). Initialise to top (all written) except the
	// entry; unreachable instructions stay at top, which is fine — they
	// never execute.
	inSet := make([][]uint64, n)
	for i := range inSet {
		inSet[i] = make([]uint64, words)
		if i != 0 {
			for w := range inSet[i] {
				inSet[i][w] = ^uint64(0)
			}
		}
	}
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	work = append(work, 0)
	inWork[0] = true
	out := make([]uint64, words)
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		for w := range out {
			out[w] = inSet[i][w] | gen[i][w]
		}
		for _, s := range succs(i) {
			changed := false
			for w := range out {
				if nv := inSet[s][w] & out[w]; nv != inSet[s][w] {
					inSet[s][w] = nv
					changed = true
				}
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}

	// Exit set: meet of definitely-written sets over every non-discarding
	// exit. RET exits contribute their in-set; instructions whose
	// fall-through leaves the program contribute their out-set. Unreachable
	// exits stay at top and do not weaken the meet.
	exit := make([]uint64, words)
	for w := range exit {
		exit[w] = ^uint64(0)
	}
	for i := range p.Insts {
		switch p.Insts[i].Op {
		case OpRET:
			for w := range exit {
				exit[w] &= inSet[i][w]
			}
		case OpBR:
			// never falls through
		default:
			if i+1 == n {
				for w := range exit {
					exit[w] &= inSet[i][w] | gen[i][w]
				}
			}
		}
	}
	outAlways = true
	for r := 0; r < p.NumOutputs && outAlways; r++ {
		for c := 0; c < 4; c++ {
			b := bitOf(FileOutput, uint16(r), c)
			if exit[b/64]&(1<<uint(b%64)) == 0 {
				outAlways = false
				break
			}
		}
	}

	// Check every read against the definitely-written set at its
	// instruction. Only post-swizzle lanes that influence the result count
	// as reads: componentwise ops consume the lanes the destination mask
	// keeps, reductions and special forms consume fixed lanes.
	checkSrc := func(i int, s Src, lanes uint8) bool {
		if s.File != FileTemp && s.File != FileOutput {
			return true
		}
		for l := 0; l < 4; l++ {
			if lanes&(1<<uint(l)) == 0 {
				continue
			}
			b := bitOf(s.File, s.Reg, int(s.Swiz[l]&3))
			if inSet[i][b/64]&(1<<uint(b%64)) == 0 {
				return false
			}
		}
		return true
	}
	for i := range p.Insts {
		in := &p.Insts[i]
		var lanesA, lanesBC uint8
		switch in.Op {
		case OpNOP, OpRET, OpBR:
			continue
		case OpKIL, OpBRZ:
			lanesA = 1 // read1: lane x only
		case OpTEX:
			lanesA = 0b0011 // (u, v)
		case OpDP2:
			lanesA, lanesBC = 0b0011, 0b0011
		case OpDP3:
			lanesA, lanesBC = 0b0111, 0b0111
		case OpDP4:
			lanesA, lanesBC = 0b1111, 0b1111
		default:
			lanesA, lanesBC = in.Dst.Mask, in.Dst.Mask
		}
		if !checkSrc(i, in.A, lanesA) {
			return false, outAlways
		}
		switch in.Op {
		case OpADD, OpSUB, OpMUL, OpDIV, OpMIN, OpMAX, OpPOW, OpATAN2,
			OpSLT, OpSLE, OpSGT, OpSGE, OpSEQ, OpSNE,
			OpDP2, OpDP3, OpDP4, OpMUL24:
			if !checkSrc(i, in.B, lanesBC) {
				return false, outAlways
			}
		case OpMAD, OpCLAMP, OpSEL:
			if !checkSrc(i, in.B, lanesBC) || !checkSrc(i, in.C, lanesBC) {
				return false, outAlways
			}
		}
	}
	return true, outAlways
}
