package shader

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential testing of the lane-batched (SoA) backend against the
// reference interpreter: a batch of N lanes must produce, for every lane,
// bit-identical outputs to a serial interpreter invocation with the same
// inputs, and the batch's Cycles/TexFetches deltas must equal the serial
// sums. Same bitwise comparison rules as the JIT differential tests
// (diffBank): sign of zero matters, all NaNs form one equivalence class.

// runLaneDiff executes p serially (interpreter, one fresh Env per lane)
// and as one lane batch, then compares per-lane outputs and summed
// counters. uni is broadcast to all lanes, inputs[lane] feeds lane's
// input bank. n may be less than width (partial batch).
func runLaneDiff(t *testing.T, p *Program, cost *CostModel, width, n int, uni []Vec4, inputs [][]Vec4) {
	t.Helper()
	lc := p.LaneCompiled(cost, width)
	if lc == nil {
		t.Fatalf("lane-eligible program did not compile (reason: %q):\n%s",
			LaneFallbackReason(p), p.Disassemble())
	}

	le := NewLaneEnv(p, width)
	le.Sample = diffSampler
	le.SetUniforms(uni)
	var wantOut [][]Vec4
	var wantCycles, wantTex int64
	for lane := 0; lane < n; lane++ {
		e := NewEnv(p)
		e.Sample = diffSampler
		copy(e.Uniforms, uni)
		copy(e.Inputs, inputs[lane])
		if err := Run(p, e, cost); err != nil {
			t.Fatalf("interp lane %d: %v", lane, err)
		}
		wantOut = append(wantOut, append([]Vec4(nil), e.Outputs...))
		wantCycles += e.Cycles
		wantTex += e.TexFetches
		for reg, v := range inputs[lane] {
			le.SetInput(lane, reg, v)
		}
	}

	le.N = n
	lc.Run(le)
	if le.Cycles != wantCycles {
		t.Fatalf("Cycles divergence: serial %d, lanes %d (w=%d n=%d)\n%s",
			wantCycles, le.Cycles, width, n, p.Disassemble())
	}
	if le.TexFetches != wantTex {
		t.Fatalf("TexFetches divergence: serial %d, lanes %d (w=%d n=%d)\n%s",
			wantTex, le.TexFetches, width, n, p.Disassemble())
	}
	for lane := 0; lane < n; lane++ {
		for reg := range wantOut[lane] {
			got := le.Output(lane, reg)
			want := wantOut[lane][reg]
			for c := 0; c < 4; c++ {
				if want[c] != want[c] && got[c] != got[c] {
					continue // both NaN: equivalent
				}
				if math.Float32bits(want[c]) != math.Float32bits(got[c]) {
					t.Fatalf("lane %d output %d.%d divergence: serial %g (%#08x), lanes %g (%#08x) (w=%d n=%d)\n%s",
						lane, reg, c, want[c], math.Float32bits(want[c]),
						got[c], math.Float32bits(got[c]), width, n, p.Disassemble())
				}
			}
		}
	}
}

// fuzzInputs builds per-lane input banks from the shared fuzz value
// distribution (±0, infinities, integers, fractions).
func fuzzInputs(rng *rand.Rand, p *Program, n int) (uni []Vec4, inputs [][]Vec4) {
	uni = make([]Vec4, maxi(p.NumUniform, 1))
	for i := range uni {
		uni[i] = Vec4{fuzzValue(rng), fuzzValue(rng), fuzzValue(rng), fuzzValue(rng)}
	}
	for lane := 0; lane < n; lane++ {
		in := make([]Vec4, maxi(p.NumInputs, 1))
		for i := range in {
			in[i] = Vec4{fuzzValue(rng), fuzzValue(rng), fuzzValue(rng), fuzzValue(rng)}
		}
		inputs = append(inputs, in)
	}
	return uni, inputs
}

// TestDifferentialLaneFuzz drives 320 quick-generated seeds through
// randomized straight-line IR programs (the full ALU + TEX opcode set,
// random swizzles/negation/write masks, const-pool and out-of-range const
// reads) at random widths with random live-lane counts, including partial
// batches. Every lane must match a serial interpreter run bitwise.
func TestDifferentialLaneFuzz(t *testing.T) {
	cost := DefaultCostModel()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng, false) // straight-line only: lane-eligible
		width := 2 + rng.Intn(MaxLaneWidth-1)
		for probe := 0; probe < 2; probe++ {
			n := 1 + rng.Intn(width)
			uni, inputs := fuzzInputs(rng, p, n)
			runLaneDiff(t, p, &cost, width, n, uni, inputs)
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 320,
		Rand:     rand.New(rand.NewSource(20260808)),
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialLaneKernelSuite runs every generated kernel through the
// lane engine at the supported widths. jacobi is the deliberate exception:
// its boundary ternary lowers to real branches, so it must report
// ineligibility and fall back.
func TestDifferentialLaneKernelSuite(t *testing.T) {
	cost := DefaultCostModel()
	rng := rand.New(rand.NewSource(20260808))
	for name, p := range kernelSuite(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			if name == "jacobi/fp32" || name == "jacobi/fp24" {
				if lc := p.LaneCompiled(&cost, 8); lc != nil {
					t.Fatal("jacobi is branchy and must not lane-compile")
				}
				if reason := LaneFallbackReason(p); reason == "" {
					t.Fatal("jacobi must report a lane fallback reason")
				}
				return
			}
			if reason := LaneFallbackReason(p); reason != "" {
				t.Fatalf("kernel unexpectedly ineligible: %s", reason)
			}
			for _, width := range []int{2, 4, 8, 16} {
				for _, n := range []int{1, width / 2, width} {
					if n < 1 {
						n = 1
					}
					uni := make([]Vec4, maxi(p.NumUniform, 1))
					for i := range uni {
						uni[i] = Vec4{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
					}
					var inputs [][]Vec4
					for lane := 0; lane < n; lane++ {
						in := make([]Vec4, maxi(p.NumInputs, 1))
						for i := range in {
							in[i] = Vec4{rng.Float32() * 16, rng.Float32() * 16, 0.5, 1}
						}
						inputs = append(inputs, in)
					}
					runLaneDiff(t, p, &cost, width, n, uni, inputs)
				}
			}
		})
	}
}

// TestLaneSpecialValues pins per-lane propagation of the numeric edge
// cases — NaN, ±Inf, −0 — through representative f32-native ops (the
// min32/max32 special-case order, signed-zero selection, NaN collapse)
// with different special values in different lanes of one batch.
func TestLaneSpecialValues(t *testing.T) {
	cost := DefaultCostModel()
	p := &Program{
		NumTemps: 2, NumInputs: 2, NumOutputs: 2, NumUniform: 1,
		Insts: []Inst{
			{Op: OpADD, Dst: DstReg(FileTemp, 0, 4), A: SrcReg(FileInput, 0), B: SrcReg(FileInput, 1)},
			{Op: OpMIN, Dst: DstReg(FileTemp, 1, 4), A: SrcReg(FileInput, 0), B: SrcReg(FileInput, 1)},
			{Op: OpMAX, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileTemp, 0), B: SrcReg(FileTemp, 1)},
			{Op: OpMUL, Dst: DstReg(FileTemp, 0, 4), A: SrcReg(FileInput, 0), B: SrcReg(FileInput, 1)},
			{Op: OpSGN, Dst: DstReg(FileOutput, 1, 4), A: SrcReg(FileTemp, 0)},
			{Op: OpRET},
		},
	}
	nan := float32(math.NaN())
	pinf := float32(math.Inf(1))
	ninf := float32(math.Inf(-1))
	nzero := float32(math.Copysign(0, -1))
	inputs := [][]Vec4{
		{{nan, 1, pinf, nzero}, {2, nan, ninf, 0}},
		{{pinf, ninf, nan, nan}, {ninf, pinf, nan, 1}},
		{{nzero, 0, nzero, nzero}, {0, nzero, nzero, 0}},
		{{1, -1, 0.5, -0.5}, {-1, 1, -0.5, 0.5}},
	}
	uni := []Vec4{{0, 0, 0, 0}}
	for _, width := range []int{4, 8} {
		runLaneDiff(t, p, &cost, width, len(inputs), uni, inputs)
	}
}

// TestLanePartialBatch covers live-lane counts that do not divide the
// width (the tail batch of a tile walk): every n in [1, width].
func TestLanePartialBatch(t *testing.T) {
	cost := DefaultCostModel()
	rng := rand.New(rand.NewSource(7))
	p := randomProgram(rng, false)
	const width = 8
	for n := 1; n <= width; n++ {
		uni, inputs := fuzzInputs(rng, p, n)
		runLaneDiff(t, p, &cost, width, n, uni, inputs)
	}
}

// TestLaneIneligible pins each fallback clause: real branch, discard,
// early RET, and the branchless fall-through exception that stays
// eligible.
func TestLaneIneligible(t *testing.T) {
	cost := DefaultCostModel()
	mov := Inst{Op: OpMOV, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileInput, 0)}
	cases := []struct {
		name     string
		insts    []Inst
		eligible bool
	}{
		{"real-branch", []Inst{{Op: OpBR, Target: 2}, mov, {Op: OpRET}}, false},
		{"real-brz", []Inst{{Op: OpBRZ, A: SrcReg(FileInput, 0), Target: 2}, mov, mov, {Op: OpRET}}, false},
		{"discard", []Inst{{Op: OpKIL, A: SrcReg(FileInput, 0)}, mov, {Op: OpRET}}, false},
		{"early-ret", []Inst{{Op: OpRET}, mov}, false},
		{"fallthrough-br", []Inst{{Op: OpBR, Target: 1}, mov, {Op: OpRET}}, true},
		{"fallthrough-brz", []Inst{{Op: OpBRZ, A: SrcReg(FileInput, 0), Target: 1}, mov, {Op: OpRET}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Program{NumTemps: 1, NumInputs: 1, NumOutputs: 1, NumUniform: 1, Insts: tc.insts}
			lc := p.LaneCompiled(&cost, 8)
			reason := LaneFallbackReason(p)
			if tc.eligible {
				if lc == nil {
					t.Fatalf("expected eligible, got fallback: %s", reason)
				}
				if reason != "" {
					t.Fatalf("eligible program reported reason %q", reason)
				}
			} else {
				if lc != nil {
					t.Fatal("expected lane-ineligible")
				}
				if reason == "" {
					t.Fatal("ineligible program must report a reason")
				}
			}
		})
	}
}

// TestLaneDstAliasing pins the staged-write path: an instruction whose
// destination register is also a source must see pre-instruction values
// for every component (the interpreter reads sources into locals first).
func TestLaneDstAliasing(t *testing.T) {
	cost := DefaultCostModel()
	swap := Src{File: FileTemp, Reg: 0, Swiz: [4]uint8{1, 0, 3, 2}}
	p := &Program{
		NumTemps: 1, NumInputs: 1, NumOutputs: 1, NumUniform: 1,
		Insts: []Inst{
			{Op: OpMOV, Dst: DstReg(FileTemp, 0, 4), A: SrcReg(FileInput, 0)},
			// r0 = r0.yxwz — every written component reads another one.
			{Op: OpMOV, Dst: DstReg(FileTemp, 0, 4), A: swap},
			// r0.xy += r0.yx with a partial mask: masked-out components
			// must keep their (already swapped) values.
			{Op: OpADD, Dst: Dst{File: FileTemp, Reg: 0, Mask: 0x3}, A: SrcReg(FileTemp, 0), B: swap},
			{Op: OpMOV, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileTemp, 0)},
			{Op: OpRET},
		},
	}
	inputs := [][]Vec4{
		{{1, 2, 3, 4}},
		{{-1, 0.5, -0.25, 8}},
		{{0, float32(math.Copysign(0, -1)), 1, -1}},
	}
	runLaneDiff(t, p, &cost, 4, len(inputs), []Vec4{{}}, inputs)
}

// TestLaneEnvPoolReuse pins pooling behaviour: Get returns a previously
// Put environment (no reallocation), sized for the pool's width.
func TestLaneEnvPoolReuse(t *testing.T) {
	p := &Program{NumTemps: 1, NumInputs: 1, NumOutputs: 1, NumUniform: 1,
		Insts: []Inst{{Op: OpRET}}}
	pool := NewLaneEnvPool(p, 8)
	e1 := pool.Get()
	if e1.Width != 8 {
		t.Fatalf("pool env width %d, want 8", e1.Width)
	}
	pool.Put(e1)
	if e2 := pool.Get(); e2 != e1 {
		t.Fatal("pool must reuse returned environments")
	}
}

// TestLaneRunAllocs asserts the lane executor's per-batch hot path —
// SetInput gather, Run (including TEX fetches), Output scatter — performs
// zero heap allocations once the compiled form and environment exist.
func TestLaneRunAllocs(t *testing.T) {
	cost := DefaultCostModel()
	p := &Program{
		NumTemps: 2, NumInputs: 1, NumOutputs: 1, NumUniform: 1,
		Insts: []Inst{
			{Op: OpTEX, Dst: DstReg(FileTemp, 0, 4), A: SrcReg(FileInput, 0)},
			{Op: OpMAD, Dst: DstReg(FileTemp, 1, 4), A: SrcReg(FileTemp, 0), B: SrcReg(FileUniform, 0), C: SrcReg(FileInput, 0)},
			{Op: OpMUL, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileTemp, 1), B: Src{File: FileTemp, Reg: 0, Swiz: [4]uint8{3, 2, 1, 0}, Neg: true}},
			{Op: OpRET},
		},
	}
	const width = 8
	lc := p.LaneCompiled(&cost, width)
	if lc == nil {
		t.Fatal("program must lane-compile")
	}
	env := NewLaneEnv(p, width)
	env.Samplers = []TexFunc{func(u, v float32) Vec4 { return Vec4{u, v, u + v, 1} }}
	in := Vec4{0.25, 0.5, 0.75, 1}
	var sink Vec4
	allocs := testing.AllocsPerRun(200, func() {
		for l := 0; l < width; l++ {
			env.SetInput(l, 0, in)
		}
		env.N = width
		lc.Run(env)
		sink = env.Output(width-1, 0)
	})
	if allocs != 0 {
		t.Fatalf("lane hot path allocated %.1f times per batch, want 0", allocs)
	}
	_ = sink
}
