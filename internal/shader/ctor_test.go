package shader

import (
	"testing"
)

// Constructor and conversion lowering: these run with non-constant
// (uniform) arguments so the runtime instruction paths are exercised, not
// the constant folder.

func TestRuntimeScalarConversions(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float x;
void main(){
	int i = int(x);          // truncation toward zero
	float back = float(i);
	bool b = bool(x);
	float bf = b ? 1.0 : 0.0;
	gl_FragColor = vec4(back / 8.0, bf, 0.0, 0.0);
}`)
	got := runFrag(t, p, map[string][]float32{"x": {3.9}}, nil, nil)
	wantVec(t, got, [4]float32{3.0 / 8.0, 1, 0, 0}, 1e-6)
	got = runFrag(t, p, map[string][]float32{"x": {-2.7}}, nil, nil)
	// int(-2.7) = -2 (trunc toward zero); shown scaled by 1/8 then
	// clamped at the framebuffer stage only — here we read raw register
	// output, negative allowed in the VM.
	if got[0] != -0.25 {
		t.Errorf("int(-2.7)/8 = %g, want -0.25", got[0])
	}
	got = runFrag(t, p, map[string][]float32{"x": {0}}, nil, nil)
	if got[1] != 0 {
		t.Errorf("bool(0) = %g, want 0", got[1])
	}
}

func TestRuntimeVectorConstructors(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float x;
uniform vec4 v;
void main(){
	vec4 rep = vec4(x);          // scalar replicate
	vec3 tr = vec3(v);           // truncate
	vec4 fl = vec4(tr.xy, x, 1.0); // flatten mixed args
	gl_FragColor = rep * 0.0 + vec4(fl.xyz, tr.z);
}`)
	got := runFrag(t, p, map[string][]float32{"x": {0.5}, "v": {0.1, 0.2, 0.3, 0.9}}, nil, nil)
	wantVec(t, got, [4]float32{0.1, 0.2, 0.5, 0.3}, 1e-6)
}

func TestRuntimeMatrixConstructors(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float d;
uniform vec2 c0;
uniform vec2 c1;
void main(){
	mat2 diag = mat2(d);              // diagonal
	mat2 comp = mat2(c0, c1);         // column list
	mat2 copy = mat2(comp);           // matrix copy
	vec2 a = diag * vec2(1.0, 1.0);   // (d, d)
	vec2 b = copy[1];                 // c1
	gl_FragColor = vec4(a, b);
}`)
	got := runFrag(t, p, map[string][]float32{"d": {3}, "c0": {1, 2}, "c1": {5, 7}}, nil, nil)
	wantVec(t, got, [4]float32{3, 3, 5, 7}, 1e-6)
}

func TestRuntimeMatrixScalarOps(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float s;
uniform vec2 col0;
uniform vec2 col1;
void main(){
	mat2 m = mat2(col0, col1);
	mat2 a = m * s;         // matrix * scalar
	mat2 b = m + m;         // componentwise add
	mat2 c = b - m;         // componentwise sub
	vec2 r = (a[0] + c[1]);
	gl_FragColor = vec4(r, a[1]);
}`)
	got := runFrag(t, p, map[string][]float32{"s": {2}, "col0": {1, 2}, "col1": {3, 4}}, nil, nil)
	// a = [[2,4],[6,8]], c = m = [[1,2],[3,4]]; r = a[0]+c[1] = (2+3, 4+4).
	wantVec(t, got, [4]float32{5, 8, 6, 8}, 1e-6)
}

func TestMatrixMatrixProduct(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform vec2 a0;
uniform vec2 a1;
uniform vec2 b0;
uniform vec2 b1;
void main(){
	mat2 A = mat2(a0, a1);
	mat2 B = mat2(b0, b1);
	mat2 C = A * B;
	gl_FragColor = vec4(C[0], C[1]);
}`)
	// A = |1 3|  B = |5 7|   (columns a0=(1,2), a1=(3,4), b0=(5,6), b1=(7,8))
	//     |2 4|      |6 8|
	// C = A·B: C[0] = A·b0 = (1*5+3*6, 2*5+4*6) = (23, 34)
	//          C[1] = A·b1 = (1*7+3*8, 2*7+4*8) = (31, 46)
	got := runFrag(t, p, map[string][]float32{
		"a0": {1, 2}, "a1": {3, 4}, "b0": {5, 6}, "b1": {7, 8},
	}, nil, nil)
	wantVec(t, got, [4]float32{23, 34, 31, 46}, 1e-4)
}

func TestNegatedMatrixAndVectorIndexing(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform vec2 c0;
uniform vec2 c1;
void main(){
	mat2 m = mat2(c0, c1);
	mat2 n = -m;
	vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
	gl_FragColor = vec4(n[0], v[2], v[3]);
}`)
	got := runFrag(t, p, map[string][]float32{"c0": {1, 2}, "c1": {3, 4}}, nil, nil)
	wantVec(t, got, [4]float32{-1, -2, 3, 4}, 1e-6)
}

func TestCompoundAssignOnSwizzles(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform vec4 v;
void main(){
	vec4 a = v;
	a.xy += vec2(1.0, 2.0);
	a.z *= 2.0;
	a.w -= 1.0;
	a.x /= 4.0;
	gl_FragColor = a;
}`)
	got := runFrag(t, p, map[string][]float32{"v": {3, 4, 5, 6}}, nil, nil)
	wantVec(t, got, [4]float32{1, 6, 10, 5}, 1e-6)
}

func TestPrePostIncrementValues(t *testing.T) {
	p := compileFrag(t, hdr+`
void main(){
	float i = 1.0;
	float a = i++;  // a=1, i=2
	float b = ++i;  // b=3, i=3
	float c = i--;  // c=3, i=2
	float d = --i;  // d=1, i=1
	gl_FragColor = vec4(a, b, c, d);
}`)
	got := runFrag(t, p, nil, nil, nil)
	wantVec(t, got, [4]float32{1, 3, 3, 1}, 0)
}

func TestOutParamThroughSwizzle(t *testing.T) {
	p := compileFrag(t, hdr+`
void split(in vec2 v, out float lo, out float hi) {
	lo = min(v.x, v.y);
	hi = max(v.x, v.y);
}
void main(){
	vec4 r = vec4(0.0);
	split(vec2(0.75, 0.25), r.x, r.w);
	gl_FragColor = r;
}`)
	got := runFrag(t, p, nil, nil, nil)
	wantVec(t, got, [4]float32{0.25, 0, 0, 0.75}, 1e-6)
}
