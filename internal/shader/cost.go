package shader

// CostModel assigns a cycle cost to each IR opcode. Device profiles in
// internal/device provide calibrated instances; the zero value is unusable,
// use DefaultCostModel as a base.
//
// The relative costs encode the micro-architectural facts the paper's
// kernel-code optimisations exploit:
//
//   - MAD costs the same as MUL: expressing a*b+c as one MAD halves the
//     ALU work of separate MUL+ADD.
//   - DPn and CLAMP are single instructions (the paper: "many vendors
//     directly implement those functionalities in hardware").
//   - MUL24 is cheaper than a full-precision MUL (VideoCore IV's QPU
//     multiplier is natively 24-bit; fp32 emulation costs extra).
//   - Transcendentals run on a special-function unit and cost several
//     cycles.
type CostModel struct {
	Costs [opMax]int32
	// TexBase is the cost of issuing a texture fetch, excluding memory
	// latency (which the pipeline model accounts as bandwidth).
	TexBase int32
}

// DefaultCostModel returns a generic embedded-GPU cost model.
func DefaultCostModel() CostModel {
	var m CostModel
	for op := Op(0); op < opMax; op++ {
		m.Costs[op] = 1
	}
	m.Costs[OpNOP] = 0
	m.Costs[OpRET] = 0
	m.Costs[OpMUL] = 2   // full fp32 multiply on a 24-bit multiplier array
	m.Costs[OpMAD] = 2   // fused: same cost as the multiply alone
	m.Costs[OpMUL24] = 1 // native 24-bit multiply
	m.Costs[OpDIV] = 8
	m.Costs[OpRCP] = 6
	m.Costs[OpRSQ] = 6
	m.Costs[OpSQRT] = 8
	m.Costs[OpEX2] = 6
	m.Costs[OpLG2] = 6
	m.Costs[OpEXP] = 8
	m.Costs[OpLOG] = 8
	m.Costs[OpPOW] = 12
	m.Costs[OpSIN] = 8
	m.Costs[OpCOS] = 8
	m.Costs[OpTAN] = 16
	m.Costs[OpASIN] = 16
	m.Costs[OpACOS] = 16
	m.Costs[OpATAN] = 16
	m.Costs[OpATAN2] = 20
	m.TexBase = 4
	return m
}

// InstCost returns the cycle cost of one instruction.
func (m *CostModel) InstCost(in *Inst) int64 {
	if in.Op == OpTEX {
		return int64(m.TexBase)
	}
	return int64(m.Costs[in.Op])
}

// StaticCycles estimates the per-invocation cycle cost of a program by
// summing instruction costs, assuming straight-line execution (branches
// counted once). For the fully-unrolled kernels this repository generates,
// the estimate is exact; the VM additionally reports measured cycles for
// programs with control flow.
func (m *CostModel) StaticCycles(p *Program) int64 {
	var total int64
	for i := range p.Insts {
		total += m.InstCost(&p.Insts[i])
	}
	return total
}

// Limits are the implementation-defined maxima a device imposes on compiled
// shaders, mirroring the GLSL ES "implementation limits" whose exceedance
// the paper reports for block sizes above 16 (§V-B: "crashes and shader
// compilation failures ... due to exceeding GLSL implementation limits,
// such as the maximum number of instructions or the maximum number of
// texture accesses").
type Limits struct {
	MaxInstructions    int // total static instructions after unrolling
	MaxTexInstructions int // static texture fetches after unrolling
	MaxTemps           int
	MaxUniformVectors  int
	MaxVaryingVectors  int
	MaxAttributes      int
	// MaxDependentTexReads bounds the dependent-texture-read chain depth
	// (a fetch whose coordinates derive from a previous fetch's result).
	// TBDR drivers schedule fetches ahead of the ALU program; chains defeat
	// that and deep ones fail compilation. Zero means unlimited. Checked by
	// internal/shader/analysis (depth needs dataflow, not a counter).
	MaxDependentTexReads int
}

// DefaultLimits returns permissive limits for tests.
func DefaultLimits() Limits {
	return Limits{
		MaxInstructions:      4096,
		MaxTexInstructions:   256,
		MaxTemps:             256,
		MaxUniformVectors:    128,
		MaxVaryingVectors:    8,
		MaxAttributes:        8,
		MaxDependentTexReads: 8,
	}
}

// LimitError reports which implementation limit a shader exceeded.
type LimitError struct {
	What  string
	Used  int
	Limit int
}

func (e *LimitError) Error() string {
	return "shader exceeds implementation limit: " + e.What +
		" (used " + itoa(e.Used) + ", max " + itoa(e.Limit) + ")"
}

func itoa(v int) string {
	// Tiny helper avoiding fmt in the hot error path is unnecessary, but
	// keeps this file dependency-free.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// CheckLimits verifies a compiled program against device limits.
func (p *Program) CheckLimits(lim Limits) error {
	if lim.MaxInstructions > 0 && len(p.Insts) > lim.MaxInstructions {
		return &LimitError{What: "instructions", Used: len(p.Insts), Limit: lim.MaxInstructions}
	}
	if lim.MaxTexInstructions > 0 && p.TexInstructions > lim.MaxTexInstructions {
		return &LimitError{What: "texture accesses", Used: p.TexInstructions, Limit: lim.MaxTexInstructions}
	}
	if lim.MaxTemps > 0 && p.NumTemps > lim.MaxTemps {
		return &LimitError{What: "temporary registers", Used: p.NumTemps, Limit: lim.MaxTemps}
	}
	if lim.MaxUniformVectors > 0 && p.NumUniform > lim.MaxUniformVectors {
		return &LimitError{What: "uniform vectors", Used: p.NumUniform, Limit: lim.MaxUniformVectors}
	}
	return nil
}
