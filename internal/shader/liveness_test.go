package shader

import (
	"testing"

	"gles2gpgpu/internal/glsl"
)

func compileFS(t *testing.T, src string) *Program {
	t.Helper()
	cs, err := glsl.Frontend(hdr+src, glsl.CompileOptions{Stage: glsl.StageFragment})
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	p, err := Compile(cs)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestWritesBeforeReadsStraightLine(t *testing.T) {
	// The shape of every GPGPU kernel in this repository: declare, write,
	// accumulate, emit. The analysis must prove it clean so parallel
	// shading and Reset's temp-zeroing skip both engage.
	p := compileFS(t, `
uniform float x;
void main() {
	float acc = 0.0;
	for (int i = 0; i < 4; i++) {
		acc += x * 0.25;
	}
	gl_FragColor = vec4(acc);
}`)
	if !p.WritesBeforeReads {
		t.Error("straight-line accumulator not proven write-before-read")
	}
}

func TestWritesBeforeReadsConditionalWrite(t *testing.T) {
	// The write to t happens under a branch; the read after the if may
	// observe a stale value, so the analysis must reject the program.
	p := compileFS(t, `
uniform float x;
void main() {
	float t;
	if (x > 0.5) {
		t = x;
	}
	gl_FragColor = vec4(t);
}`)
	if p.WritesBeforeReads {
		t.Error("conditionally-written temp wrongly proven write-before-read")
	}
}

func TestWritesBeforeReadsWriteBeforeBranchStaysProven(t *testing.T) {
	// A write that precedes the first branch always executes, so reads
	// after the branch are covered.
	p := compileFS(t, `
uniform float x;
void main() {
	float t = x;
	if (x > 0.5) {
		t = t * 2.0;
	}
	gl_FragColor = vec4(t);
}`)
	if !p.WritesBeforeReads {
		t.Error("pre-branch write not credited")
	}
}

func TestOutputsAlwaysWritten(t *testing.T) {
	p := compileFS(t, `
uniform float x;
void main() { gl_FragColor = vec4(x); }`)
	if !p.OutputsAlwaysWritten {
		t.Error("unconditional gl_FragColor write not proven")
	}

	p = compileFS(t, `
uniform float x;
void main() {
	if (x > 0.5) {
		gl_FragColor = vec4(x);
	}
}`)
	if p.OutputsAlwaysWritten {
		t.Error("conditional gl_FragColor write wrongly proven always-written")
	}

	// A discard path does not count as an exit that leaves outputs unset:
	// discarded fragments' outputs are never read.
	p = compileFS(t, `
uniform float x;
void main() {
	if (x > 0.5) {
		discard;
	}
	gl_FragColor = vec4(x);
}`)
	if !p.OutputsAlwaysWritten {
		t.Error("discard path wrongly disproved always-written outputs")
	}
}

func TestResetSkipsTempZeroingWhenProven(t *testing.T) {
	p := compileFS(t, `
uniform float x;
void main() { float a = x + 1.0; gl_FragColor = vec4(a); }`)
	if !p.WritesBeforeReads {
		t.Fatal("expected proven program")
	}
	env := NewEnv(p)
	for i := range env.Temps {
		env.Temps[i] = Vec4{42, 42, 42, 42}
	}
	env.Reset()
	if env.Temps[0] != (Vec4{42, 42, 42, 42}) {
		t.Error("Reset zeroed temps despite write-before-read proof")
	}
	for i := range env.Outputs {
		if env.Outputs[i] != (Vec4{}) {
			t.Error("Reset must always zero outputs")
		}
	}

	// The debug override restores the old exhaustive zeroing.
	DebugClearTemps = true
	defer func() { DebugClearTemps = false }()
	env.Reset()
	if env.Temps[0] != (Vec4{}) {
		t.Error("DebugClearTemps did not force temp zeroing")
	}
}

func TestResetZeroesTempsWhenUnproven(t *testing.T) {
	p := compileFS(t, `
uniform float x;
void main() {
	float t;
	if (x > 0.5) { t = x; }
	gl_FragColor = vec4(t);
}`)
	env := NewEnv(p)
	for i := range env.Temps {
		env.Temps[i] = Vec4{7, 7, 7, 7}
	}
	env.Reset()
	for i := range env.Temps {
		if env.Temps[i] != (Vec4{}) {
			t.Fatalf("temp %d survived Reset of an unproven program", i)
		}
	}
}

func TestEnvPoolReuses(t *testing.T) {
	p := compileFS(t, `void main() { gl_FragColor = vec4(1.0); }`)
	pool := NewEnvPool(p)
	a := pool.Get()
	a.Cycles = 99
	pool.Put(a)
	b := pool.Get()
	if a != b {
		t.Error("pool did not reuse the returned Env")
	}
	if b.Cycles != 99 {
		t.Error("pooled Env lost its cycle accumulator")
	}
	c := pool.Get()
	if c == b {
		t.Error("pool handed out the same Env twice")
	}
}
