package shader

// Divergence-masked lane execution.
//
// The straight-line SoA engine (lanes.go) refuses any program with real
// control flow: a branch could send lanes down different paths and the
// whole-batch inner loops would compute the wrong thing. Jacobi — the one
// iterative kernel the paper's workloads center on — is exactly such a
// program, so until now it paid per-fragment JIT dispatch on every draw.
//
// This file runs branchy programs through the same SoA register file under
// an active-lane mask. The proof obligations that make this sound (checked
// structurally by MaskedFallbackAt, cross-validated by the analysis
// package's mask-safety rule and its CFG/range lattices):
//
//   - Forward branches only. Every BR/BRZ target strictly exceeds its own
//     pc, so the program order is a topological order of the CFG and a
//     single linear pc sweep visits every instruction any lane can
//     execute, in that lane's own execution order. Loops are out: a
//     backward edge could diverge lanes unboundedly (the unroller removes
//     bounded loops before codegen, so this costs no generated kernel).
//   - No cross-lane dependence. IR lanes never interact (DPn reductions
//     stay within one lane's four components), so executing lane L's
//     instruction stream interleaved with other lanes' is equivalent to
//     running L alone — provided inactive lanes' registers are preserved,
//     which maskedDst guarantees by committing only active lanes.
//   - Side effects gated per lane. TEX fetch counts and sampler calls
//     happen for active lanes only (compileMaskedTex); KIL retires just
//     the discarding lane and flags it in LaneEnv.Discarded so scatter
//     paths skip its pixel; RET retires the lane without a flag.
//   - Cycle accounting reconstructible per lane. The interpreter charges
//     an instruction's cost *before* executing it, so a discarding KIL
//     charges its own cost and nothing after; charging cost × |active|
//     at each step therefore reproduces the per-lane interpreter totals
//     exactly, divergence and all.
//
// Execution model: each lane carries a resume pc (LaneEnv.nextPC). The
// sweep visits each step once; lanes whose resume pc matches are active.
// ALU steps stage the full-width result into scratch slab 3 and commit
// only active lanes, reusing the straight-line per-op bodies (and thereby
// their audited bit-identity rules) unchanged. A batch of N lanes is
// bit-identical — outputs, Discarded flags, Cycles, TexFetches — to N
// serial interpreter invocations.
//
// The masked form is strictly slower per instruction than the straight
// -line form (a full-width stage + masked commit per op, plus the active
// scan), so engines try the straight-line compile first and use masked
// only as the divergence fallback; both beat per-fragment JIT dispatch.

import (
	"fmt"
	"os"
)

// noMaskedLanesEnv disables the divergence-masked lane backend
// process-wide; read once at init, mirroring GLES2GPGPU_NO_LANES.
var noMaskedLanesEnv = os.Getenv("GLES2GPGPU_NO_MASKED_LANES") != ""

// DefaultMaskedLanes reports whether masked lane execution is enabled by
// default (it is, unless GLES2GPGPU_NO_MASKED_LANES is set).
func DefaultMaskedLanes() bool { return !noMaskedLanesEnv }

// maskedStep kinds. ALU steps carry a lane closure; control steps are
// interpreted by runMasked directly.
const (
	mskALU     uint8 = iota // body over active lanes (stage + masked commit)
	mskDead                 // cost-only: dead result, NOP, fall-through BR
	mskDeadTex              // dead TEX: cost + one fetch per active lane
	mskBR                   // unconditional forward jump
	mskBRZ                  // branch if cond.x == 0
	mskKIL                  // discard lane if cond.x != 0
	mskRET                  // retire lane
)

// maskedStep is one instruction slot of a masked program: its cost (charged
// per active lane, matching the interpreter's charge-before-execute order),
// and either an ALU body or the control operands runMasked interprets.
type maskedStep struct {
	kind   uint8
	cost   int64
	target int32   // mskBR/mskBRZ: resume pc on taken branch (retire sentinel when the jump leaves the program)
	body   laneOp  // mskALU
	cond   laneSrc // mskBRZ/mskKIL: operand A with swizzle/negation folded; .x decides
}

// MaskedFallbackReason reports why p cannot run on the divergence-masked
// lane engine, or "" when it is mask-eligible. Unlike LaneFallbackReason,
// forward branches, discard, and early return are all fine; only backward
// branches (potential divergence without bound) and unimplemented opcodes
// disqualify.
func MaskedFallbackReason(p *Program) string {
	_, reason := MaskedFallbackAt(p)
	return reason
}

// MaskedFallbackAt is MaskedFallbackReason with the offending instruction
// index attached for tooling (glslint's mask rule). pc is -1 when the
// program is mask-eligible.
func MaskedFallbackAt(p *Program) (pc int, reason string) {
	return maskedFallbackAt(p.Insts)
}

func maskedFallbackAt(insts []Inst) (int, string) {
	for i := range insts {
		in := &insts[i]
		switch in.Op {
		case OpBR, OpBRZ:
			if int(in.Target) <= i {
				return i, fmt.Sprintf("backward branch at pc %d to %d (lanes could diverge without bound)", i, in.Target)
			}
		case OpKIL, OpRET:
			// Per-lane retirement: fine anywhere under a mask.
		default:
			if !laneOpSupported(in.Op) {
				return i, fmt.Sprintf("opcode %s at pc %d has no lane implementation", in.Op, i)
			}
		}
	}
	return -1, ""
}

// MaskedLaneCompiled returns the divergence-masked lane form of p under
// cost at width, building it on first use and caching it on the Program
// (same one-entry keying as LaneCompiled, in a separate slot). Returns nil
// when the program has a backward branch, uses an unsupported opcode, or
// width is out of range; callers fall back to the per-fragment JIT.
// Straight-line programs compile too (every step simply runs all-active),
// but engines should prefer LaneCompiled for those — it avoids the
// per-step stage/commit and active-lane scan.
func (p *Program) MaskedLaneCompiled(cost *CostModel, width int) *LaneCompiled {
	if c := p.lanesMasked.Load(); c != nil && c.cost == cost && c.width == width {
		if c.cyclesPerLane < 0 {
			return nil // cached ineligibility
		}
		return c
	}
	p.jitMu.Lock()
	defer p.jitMu.Unlock()
	if c := p.lanesMasked.Load(); c != nil && c.cost == cost && c.width == width {
		if c.cyclesPerLane < 0 {
			return nil
		}
		return c
	}
	c := compileMaskedLanes(p, p.Insts, p.Consts, nil, cost, width)
	if c == nil {
		p.lanesMasked.Store(&LaneCompiled{prog: p, cost: cost, width: width, masked: true, cyclesPerLane: -1})
		return nil
	}
	p.lanesMasked.Store(c)
	return c
}

// MaskedLaneCompiledOpt returns the masked lane form of p's optimised
// program, cached in its own slot keyed by (cost, width, OptProgram)
// identity; falls back to MaskedLaneCompiled when no OptProgram is
// attached. Returns nil when ineligible.
func (p *Program) MaskedLaneCompiledOpt(cost *CostModel, width int) *LaneCompiled {
	o := p.Optimized()
	if o == nil {
		return p.MaskedLaneCompiled(cost, width)
	}
	if c := p.lanesMaskedOpt.Load(); c != nil && c.cost == cost && c.width == width && c.opt == o {
		if c.cyclesPerLane < 0 {
			return nil
		}
		return c
	}
	p.jitMu.Lock()
	defer p.jitMu.Unlock()
	if c := p.lanesMaskedOpt.Load(); c != nil && c.cost == cost && c.width == width && c.opt == o {
		if c.cyclesPerLane < 0 {
			return nil
		}
		return c
	}
	c := compileMaskedLanes(p, o.Insts, o.Consts, o.Dead, cost, width)
	if c == nil {
		p.lanesMaskedOpt.Store(&LaneCompiled{prog: p, cost: cost, opt: o, width: width, masked: true, cyclesPerLane: -1})
		return nil
	}
	c.opt = o
	p.lanesMaskedOpt.Store(c)
	return c
}

// compileMaskedLanes translates an instruction stream with (forward-only)
// control flow into masked steps; nil when the stream is mask-ineligible
// or the width is out of range. Dead instructions follow the OptProgram
// contract: they charge their cost at their own pc (flow-sensitively, per
// active lane) and a dead TEX still counts one fetch per active lane.
func compileMaskedLanes(p *Program, insts []Inst, consts [][4]float32, dead []bool, cost *CostModel, width int) *LaneCompiled {
	if width < 2 || width > MaxLaneWidth {
		return nil
	}
	if pc, _ := maskedFallbackAt(insts); pc >= 0 {
		return nil
	}
	lc := &LaneCompiled{prog: p, cost: cost, width: width, masked: true}
	for i := range insts {
		in := &insts[i]
		st := maskedStep{kind: mskDead, cost: cost.InstCost(in)}
		switch in.Op {
		case OpNOP:
			// cost-only
		case OpRET:
			st.kind = mskRET
		case OpBR:
			st.kind = mskBR
			st.target = maskedTarget(in.Target, len(insts))
		case OpBRZ:
			st.kind = mskBRZ
			st.target = maskedTarget(in.Target, len(insts))
			st.cond = lc.compileLaneSrc(consts, in.A, 0)
		case OpKIL:
			st.kind = mskKIL
			st.cond = lc.compileLaneSrc(consts, in.A, 0)
		default:
			if dead != nil && dead[i] {
				if in.Op == OpTEX {
					st.kind = mskDeadTex
				}
			} else {
				fn := lc.compileLaneInst(consts, in)
				if fn == nil {
					return nil
				}
				st.kind = mskALU
				st.body = fn
			}
		}
		lc.steps = append(lc.steps, st)
	}
	return lc
}

// maskedTarget clamps a branch target to the retire sentinel when the jump
// leaves the program (the interpreter's pc sweep simply exits its loop).
func maskedTarget(t int32, n int) int32 {
	if int(t) >= n {
		return int32(n)
	}
	return t
}

// runMasked executes the batch of e.N lanes under the active-lane mask.
// Called from Run with n > 0.
func (lc *LaneCompiled) runMasked(e *LaneEnv) {
	n := e.N
	np := e.nextPC
	for l := 0; l < n; l++ {
		np[l] = 0
		e.Discarded[l] = false
	}
	retire := int32(len(lc.steps))
	live := n
	for pc := range lc.steps {
		if live == 0 {
			break
		}
		act := e.maskAct[:0]
		cur := int32(pc)
		for l := 0; l < n; l++ {
			if np[l] == cur {
				act = append(act, int32(l))
			}
		}
		if len(act) == 0 {
			continue
		}
		st := &lc.steps[pc]
		// The interpreter charges cost before executing, so a discarding
		// KIL charges itself; per-step charging matches that exactly.
		e.Cycles += st.cost * int64(len(act))
		next := cur + 1
		switch st.kind {
		case mskALU:
			e.maskAct = act // op bodies and masked commits read the active set
			st.body(e)
			for _, l := range act {
				np[l] = next
			}
		case mskDead:
			for _, l := range act {
				np[l] = next
			}
		case mskDeadTex:
			e.TexFetches += int64(len(act))
			for _, l := range act {
				np[l] = next
			}
		case mskBR:
			for _, l := range act {
				np[l] = st.target
			}
			if st.target >= retire {
				live -= len(act)
			}
		case mskBRZ:
			cb := st.cond.blk(e)
			off := st.cond.offs[0]
			taken := st.target
			exits := taken >= retire
			for _, l := range act {
				if cb[off+int(l)] == 0 {
					np[l] = taken
					if exits {
						live--
					}
				} else {
					np[l] = next
				}
			}
		case mskKIL:
			cb := st.cond.blk(e)
			off := st.cond.offs[0]
			for _, l := range act {
				if cb[off+int(l)] != 0 {
					e.Discarded[l] = true
					np[l] = retire
					live--
				} else {
					np[l] = next
				}
			}
		case mskRET:
			for _, l := range act {
				np[l] = retire
			}
			live -= len(act)
		}
	}
	e.maskAct = e.maskAct[:0]
}

// maskedDst is compileLaneDst's destination resolver for masked programs:
// ops stage into scratch slab 3 unconditionally and the commit closure
// copies only the masked components of the active lanes into the real
// register, preserving inactive lanes for when they resume.
func (lc *LaneCompiled) maskedDst(real laneBlock, mask uint8) (laneBlock, laneOp) {
	w := lc.width
	stage := func(e *LaneEnv) []float32 { return e.scratch[3] }
	fin := func(e *LaneEnv) {
		src := e.scratch[3]
		dst := real(e)
		act := e.maskAct
		if len(act) == e.N {
			// All lanes active (no divergence yet): whole-slab copies.
			// Lanes N..W-1 hold garbage that is never observed.
			for ci := 0; ci < 4; ci++ {
				if mask&(1<<uint(ci)) != 0 {
					copy(dst[ci*w:ci*w+w], src[ci*w:ci*w+w])
				}
			}
			return
		}
		for ci := 0; ci < 4; ci++ {
			if mask&(1<<uint(ci)) == 0 {
				continue
			}
			base := ci * w
			for _, l := range act {
				dst[base+int(l)] = src[base+int(l)]
			}
		}
	}
	return stage, fin
}

// compileMaskedTex builds the masked TEX body: fetches happen for active
// lanes only, so TexFetches and sampler side effects are exact per lane.
// Writes go straight to the destination register per lane (no staging
// needed — each lane's coordinate is read before that lane's write, the
// same order the interpreter uses, so destination-aliasing is safe).
func (lc *LaneCompiled) compileMaskedTex(consts [][4]float32, in *Inst) laneOp {
	w := lc.width
	ra := lc.compileLaneSrc(consts, in.A, 0)
	sampler := int(in.SamplerIdx)
	uo, vo := ra.offs[0], ra.offs[1]
	d := in.Dst
	real := laneBank(d.File, int(d.Reg), w)
	writable := real != nil && (d.File == FileTemp || d.File == FileOutput)
	var tcomps []laneComp
	for ci := 0; ci < 4; ci++ {
		if d.Mask&(1<<uint(ci)) != 0 {
			tcomps = append(tcomps, laneComp{d: ci * w, a: ci})
		}
	}
	return func(e *LaneEnv) {
		act := e.maskAct
		e.TexFetches += int64(len(act))
		ab := ra.blk(e)
		var db []float32
		if writable {
			db = real(e)
		}
		for _, li := range act {
			l := int(li)
			u, v := ab[uo+l], ab[vo+l]
			var texel Vec4
			if sampler >= 0 && sampler < len(e.Samplers) && e.Samplers[sampler] != nil {
				texel = e.Samplers[sampler](u, v)
			} else if e.Sample != nil {
				texel = e.Sample(sampler, u, v)
			}
			if db != nil {
				for _, t := range tcomps {
					db[t.d+l] = texel[t.a]
				}
			}
		}
	}
}
