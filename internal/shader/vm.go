package shader

import (
	"fmt"
	"math"
	"os"
)

// Vec4 is one register value.
type Vec4 [4]float32

// SampleFunc fetches a texel from the texture bound to sampler slot idx at
// normalised coordinates (u, v). The GLES layer supplies it.
type SampleFunc func(samplerIdx int, u, v float32) Vec4

// TexFunc fetches a texel from one specific texture at normalised (u, v):
// the per-slot specialized form of SampleFunc. The GLES layer resolves each
// bound texture's filter/wrap/completeness state once per draw and installs
// one TexFunc per sampler slot, so the per-fetch hot path skips the state
// re-checks the generic closure pays (see gles: specializeSampler).
type TexFunc func(u, v float32) Vec4

// Env is the execution environment of one shader invocation. Reuse one Env
// across invocations to avoid allocations: call Reset between programs.
type Env struct {
	Uniforms []Vec4
	Inputs   []Vec4
	Outputs  []Vec4
	Temps    []Vec4
	Sample   SampleFunc
	// Samplers, when it covers a fetch's sampler slot with a non-nil entry,
	// takes precedence over Sample at that fetch site. Entries must be
	// bit-identical to what Sample would return for the same slot.
	Samplers []TexFunc

	// Discarded is set when the invocation executed a KIL.
	Discarded bool
	// Cycles accumulates the cost of executed instructions.
	Cycles int64
	// TexFetches counts executed texture fetches (for bandwidth models).
	TexFetches int64

	// consts is installed by Run from the executing program.
	consts [][4]float32

	// prog is the program this Env was sized for; Reset consults its
	// liveness flag to skip redundant temp zeroing.
	prog *Program
}

// NewEnv returns an environment sized for p.
func NewEnv(p *Program) *Env {
	return &Env{
		Uniforms: make([]Vec4, maxi(p.NumUniform, 1)),
		Inputs:   make([]Vec4, maxi(p.NumInputs, 1)),
		Outputs:  make([]Vec4, maxi(p.NumOutputs, 1)),
		Temps:    make([]Vec4, maxi(p.NumTemps, 1)),
		prog:     p,
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DebugClearTemps forces Reset to zero all Temps even for programs proven
// to write each temp before reading it. Set it (or the
// GLES2GPGPU_CLEAR_TEMPS environment variable, read at init) when
// debugging suspected liveness-analysis bugs.
var DebugClearTemps = os.Getenv("GLES2GPGPU_CLEAR_TEMPS") != ""

// Reset prepares the Env for another invocation of the same program.
// Outputs are read externally (gl_Position, varyings, gl_FragColor) even
// when the program does not write them, so they are zeroed — unless the
// compiler proved every output component is written on every
// non-discarding exit (OutputsAlwaysWritten; discarded invocations'
// outputs are never read). Temps are only zeroed when the program could
// observe stale values, i.e. when the compiler could not prove every temp
// is written before read. DebugClearTemps disables both liveness-based
// skips.
func (e *Env) Reset() {
	e.Discarded = false
	proofs := e.prog != nil && !DebugClearTemps
	if !(proofs && e.prog.OutputsAlwaysWritten) {
		for i := range e.Outputs {
			e.Outputs[i] = Vec4{}
		}
	}
	if proofs && e.prog.WritesBeforeReads {
		return
	}
	for i := range e.Temps {
		e.Temps[i] = Vec4{}
	}
}

// ErrVM wraps runtime execution failures (bad register indices, runaway
// branches); these indicate compiler bugs, not shader-author errors.
type ErrVM struct {
	PC  int
	Msg string
}

func (e *ErrVM) Error() string { return fmt.Sprintf("shader vm: pc %d: %s", e.PC, e.Msg) }

// quant24 quantises x to 24 fractional bits, the precision of a native
// 24-bit multiplier operating on normalised fixed-point operands.
func quant24(x float32) float32 {
	return float32(math.Trunc(float64(x)*(1<<24))) / (1 << 24)
}

// maxSteps caps dynamic execution per invocation; generated programs are
// unrolled so this is only a runaway-branch backstop.
const maxSteps = 1 << 22

// Run executes p in env, accounting cycles with cost. The env must have
// been created by NewEnv(p) (or have at least as many registers).
func Run(p *Program, env *Env, cost *CostModel) error {
	return runInsts(p.Insts, p.Consts, nil, env, cost)
}

// runInsts is the interpreter core, shared by Run (the original program)
// and RunOptimized (an OptProgram's rewritten instructions). A non-nil
// dead slice marks instructions whose computation is skipped — their cycle
// cost is still charged and a dead TEX still counts a fetch, preserving
// the virtual-time model exactly (see opt.go).
func runInsts(insts []Inst, consts [][4]float32, dead []bool, env *Env, cost *CostModel) error {
	env.consts = consts
	steps := 0
	for pc := 0; pc < len(insts); pc++ {
		steps++
		if steps > maxSteps {
			return &ErrVM{PC: pc, Msg: "instruction budget exceeded (runaway branch?)"}
		}
		in := &insts[pc]
		env.Cycles += cost.InstCost(in)
		if dead != nil && dead[pc] {
			if in.Op == OpTEX {
				env.TexFetches++
			}
			continue
		}
		switch in.Op {
		case OpNOP:
		case OpRET:
			return nil
		case OpBR:
			pc = int(in.Target) - 1
		case OpBRZ:
			if env.read1(in.A) == 0 {
				pc = int(in.Target) - 1
			}
		case OpKIL:
			if env.read1(in.A) != 0 {
				env.Discarded = true
				return nil
			}
		case OpTEX:
			env.TexFetches++
			a := env.read(in.A)
			var texel Vec4
			if si := int(in.SamplerIdx); si >= 0 && si < len(env.Samplers) && env.Samplers[si] != nil {
				texel = env.Samplers[si](a[0], a[1])
			} else if env.Sample != nil {
				texel = env.Sample(int(in.SamplerIdx), a[0], a[1])
			}
			env.write(in.Dst, texel)
		case OpMOV:
			env.write(in.Dst, env.read(in.A))
		case OpQUANT:
			a := env.read(in.A)
			env.write(in.Dst, Vec4{
				QuantizeChannel(a[0]), QuantizeChannel(a[1]),
				QuantizeChannel(a[2]), QuantizeChannel(a[3]),
			})
		case OpDP2, OpDP3, OpDP4:
			a, b := env.read(in.A), env.read(in.B)
			n := 2 + int(in.Op) - int(OpDP2)
			var s float32
			for i := 0; i < n; i++ {
				s += a[i] * b[i]
			}
			env.write(in.Dst, Vec4{s, s, s, s})
		case OpMAD:
			a, b, c := env.read(in.A), env.read(in.B), env.read(in.C)
			env.write(in.Dst, Vec4{
				a[0]*b[0] + c[0], a[1]*b[1] + c[1],
				a[2]*b[2] + c[2], a[3]*b[3] + c[3],
			})
		case OpMUL24:
			a, b := env.read(in.A), env.read(in.B)
			var r Vec4
			for i := 0; i < 4; i++ {
				r[i] = quant24(a[i]) * quant24(b[i])
			}
			env.write(in.Dst, r)
		case OpCLAMP:
			a, lo, hi := env.read(in.A), env.read(in.B), env.read(in.C)
			var r Vec4
			for i := 0; i < 4; i++ {
				v := a[i]
				if v < lo[i] {
					v = lo[i]
				}
				if v > hi[i] {
					v = hi[i]
				}
				r[i] = v
			}
			env.write(in.Dst, r)
		case OpSEL:
			a, b, c := env.read(in.A), env.read(in.B), env.read(in.C)
			var r Vec4
			for i := 0; i < 4; i++ {
				if a[i] != 0 {
					r[i] = b[i]
				} else {
					r[i] = c[i]
				}
			}
			env.write(in.Dst, r)
		default:
			if err := env.alu(in); err != nil {
				return &ErrVM{PC: pc, Msg: err.Error()}
			}
		}
	}
	return nil
}

// read fetches a source operand with swizzle and negation applied.
func (e *Env) read(s Src) Vec4 {
	var base Vec4
	switch s.File {
	case FileTemp:
		base = e.Temps[s.Reg]
	case FileUniform:
		base = e.Uniforms[s.Reg]
	case FileInput:
		base = e.Inputs[s.Reg]
	case FileOutput:
		base = e.Outputs[s.Reg]
	case FileConst:
		base = constAt(e, s.Reg)
	}
	r := Vec4{base[s.Swiz[0]&3], base[s.Swiz[1]&3], base[s.Swiz[2]&3], base[s.Swiz[3]&3]}
	if s.Neg {
		r[0], r[1], r[2], r[3] = -r[0], -r[1], -r[2], -r[3]
	}
	return r
}

// consts is bound per Run via a tiny closure-free trick: the Env keeps a
// reference installed by Bind.
func constAt(e *Env, reg uint16) Vec4 {
	if int(reg) < len(e.consts) {
		return Vec4(e.consts[reg])
	}
	return Vec4{}
}

func (e *Env) read1(s Src) float32 { return e.read(s)[0] }

func (e *Env) write(d Dst, v Vec4) {
	var slot *Vec4
	switch d.File {
	case FileTemp:
		slot = &e.Temps[d.Reg]
	case FileOutput:
		slot = &e.Outputs[d.Reg]
	default:
		return // writes to read-only files are compiler bugs; ignore safely
	}
	if d.Mask&1 != 0 {
		slot[0] = v[0]
	}
	if d.Mask&2 != 0 {
		slot[1] = v[1]
	}
	if d.Mask&4 != 0 {
		slot[2] = v[2]
	}
	if d.Mask&8 != 0 {
		slot[3] = v[3]
	}
}

// alu executes the remaining componentwise operations.
func (e *Env) alu(in *Inst) error {
	a := e.read(in.A)
	var b Vec4
	switch in.Op {
	case OpADD, OpSUB, OpMUL, OpDIV, OpMIN, OpMAX, OpPOW, OpATAN2,
		OpSLT, OpSLE, OpSGT, OpSGE, OpSEQ, OpSNE:
		b = e.read(in.B)
	}
	var r Vec4
	for i := 0; i < 4; i++ {
		x, y := float64(a[i]), float64(b[i])
		var v float64
		switch in.Op {
		case OpADD:
			v = x + y
		case OpSUB:
			v = x - y
		case OpMUL:
			v = x * y
		case OpDIV:
			v = x / y
		case OpMIN:
			v = math.Min(x, y)
		case OpMAX:
			v = math.Max(x, y)
		case OpABS:
			v = math.Abs(x)
		case OpSGN:
			if x > 0 {
				v = 1
			} else if x < 0 {
				v = -1
			}
		case OpFLR:
			v = math.Floor(x)
		case OpCEIL:
			v = math.Ceil(x)
		case OpFRC:
			v = x - math.Floor(x)
		case OpRCP:
			v = 1 / x
		case OpRSQ:
			v = 1 / math.Sqrt(x)
		case OpSQRT:
			v = math.Sqrt(x)
		case OpEX2:
			v = math.Exp2(x)
		case OpLG2:
			v = math.Log2(x)
		case OpPOW:
			v = math.Pow(x, y)
		case OpEXP:
			v = math.Exp(x)
		case OpLOG:
			v = math.Log(x)
		case OpSIN:
			v = math.Sin(x)
		case OpCOS:
			v = math.Cos(x)
		case OpTAN:
			v = math.Tan(x)
		case OpASIN:
			v = math.Asin(x)
		case OpACOS:
			v = math.Acos(x)
		case OpATAN:
			v = math.Atan(x)
		case OpATAN2:
			v = math.Atan2(x, y)
		case OpSLT:
			if x < y {
				v = 1
			}
		case OpSLE:
			if x <= y {
				v = 1
			}
		case OpSGT:
			if x > y {
				v = 1
			}
		case OpSGE:
			if x >= y {
				v = 1
			}
		case OpSEQ:
			if x == y {
				v = 1
			}
		case OpSNE:
			if x != y {
				v = 1
			}
		default:
			return fmt.Errorf("unimplemented opcode %s", in.Op)
		}
		r[i] = float32(v)
	}
	e.write(in.Dst, r)
	return nil
}
