package shader

import "sync"

// EnvPool hands out execution environments for one program to concurrent
// shading workers.
//
// Concurrency audit backing the host-parallel fragment engine: a compiled
// Program is immutable after Compile returns — Run only reads Insts and
// Consts (it copies the Consts reference into the Env, never the other way)
// — so any number of goroutines may execute the same Program
// simultaneously as long as each uses its own Env. Uniform slices installed
// into Env.Uniforms are shared read-only across workers for the duration of
// a draw; the GLES layer guarantees no API call mutates them while a draw
// is executing.
type EnvPool struct {
	prog *Program
	mu   sync.Mutex
	free []*Env
}

// NewEnvPool returns a pool producing environments sized for p.
func NewEnvPool(p *Program) *EnvPool {
	return &EnvPool{prog: p}
}

// Program returns the program the pool serves.
func (pl *EnvPool) Program() *Program { return pl.prog }

// Get returns a ready Env, reusing a previously returned one when
// available. Reused Envs keep their accumulated Cycles/TexFetches counters
// (callers measure deltas); register state is only trustworthy for
// programs with WritesBeforeReads, which is exactly the precondition of
// parallel shading.
func (pl *EnvPool) Get() *Env {
	pl.mu.Lock()
	if n := len(pl.free); n > 0 {
		e := pl.free[n-1]
		pl.free = pl.free[:n-1]
		pl.mu.Unlock()
		return e
	}
	pl.mu.Unlock()
	return NewEnv(pl.prog)
}

// Put returns an Env to the pool for reuse.
func (pl *EnvPool) Put(e *Env) {
	if e == nil {
		return
	}
	pl.mu.Lock()
	pl.free = append(pl.free, e)
	pl.mu.Unlock()
}

// LaneEnvPool hands out SoA batch environments (LaneEnv) for one program
// at one lane width to concurrent shading workers. The same concurrency
// audit as EnvPool applies: a LaneCompiled is immutable, so any number of
// goroutines may run it as long as each uses its own LaneEnv. Pooling the
// SoA register slabs and scratch blocks means the lane executor allocates
// nothing on the per-tile hot path — workers Get once per draw, batch
// through the whole tile walk, and Put when done.
type LaneEnvPool struct {
	prog  *Program
	width int
	mu    sync.Mutex
	free  []*LaneEnv
}

// NewLaneEnvPool returns a pool producing batch environments sized for p
// at the given lane width.
func NewLaneEnvPool(p *Program, width int) *LaneEnvPool {
	return &LaneEnvPool{prog: p, width: width}
}

// Program returns the program the pool serves.
func (pl *LaneEnvPool) Program() *Program { return pl.prog }

// Width returns the lane width the pool's environments are laid out for.
func (pl *LaneEnvPool) Width() int { return pl.width }

// Get returns a ready LaneEnv, reusing a previously returned one when
// available. Reused LaneEnvs keep their accumulated Cycles/TexFetches
// (callers measure deltas); register slabs may hold stale lanes, which is
// only trustworthy for programs with WritesBeforeReads — exactly the
// precondition the GLES layer's lane gate enforces.
func (pl *LaneEnvPool) Get() *LaneEnv {
	pl.mu.Lock()
	if n := len(pl.free); n > 0 {
		e := pl.free[n-1]
		pl.free = pl.free[:n-1]
		pl.mu.Unlock()
		return e
	}
	pl.mu.Unlock()
	return NewLaneEnv(pl.prog, pl.width)
}

// Put returns a LaneEnv to the pool for reuse.
func (pl *LaneEnvPool) Put(e *LaneEnv) {
	if e == nil {
		return
	}
	pl.mu.Lock()
	pl.free = append(pl.free, e)
	pl.mu.Unlock()
}
