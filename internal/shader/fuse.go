package shader

// Pass fusion at the IR level: ComposeFragments splices a chain of fragment
// programs into one program whose intermediate colours stay in registers.
// Where stage i+1 sampled stage i's render target, the composed program
// applies OpQUANT — the exact RGBA8 store/sample round trip (quant.go) — to
// stage i's colour value, so the fused program is bit-identical to running
// the stages separately through textures. The eligibility proof (both
// stages elementwise with identity texel footprints) lives in
// internal/shader/analysis; this file only performs the splice and reports
// structural errors.

import (
	"fmt"

	"gles2gpgpu/internal/glsl"
)

// FuseStage describes one stage of a fused chain. SlotSource[i] names, for
// fragment sampler slot i of Prog, the index of an earlier stage in the
// chain whose colour output feeds the slot, or -1 when the slot remains an
// external texture input of the composed program.
type FuseStage struct {
	Prog       *Program
	SlotSource []int
}

// FusedSampler maps one kept (external) sampler slot of a composed program
// back to its originating stage and slot. Name is the sampler's uniform
// name in the composed program.
type FusedSampler struct {
	Stage int
	Slot  int
	Name  string
}

// FusedUniformName returns the name a stage's uniform has in a composed
// program. Stages are spliced with disjoint uniform register ranges, and
// each uniform is re-exported under a stage-qualified name so callers can
// set every stage's parameters on the one composed program.
func FusedUniformName(stage int, name string) string {
	return fmt.Sprintf("s%d_%s", stage, name)
}

// ComposeFragments splices a chain of straight-line fragment programs into
// a single fragment program. Each stage's temp, constant and uniform
// registers are relocated to disjoint ranges; varying inputs are merged by
// name; non-final stages write their colour to a fresh temp; TEX
// instructions on internally-fed slots become OpQUANT of the feeding
// stage's colour temp. The returned sampler list describes the surviving
// external slots in order.
//
// The caller is responsible for eligibility (analysis.Elementwise):
// ComposeFragments checks only structural invariants and returns an error —
// never a wrong program — when they do not hold.
func ComposeFragments(stages []FuseStage) (*Program, []FusedSampler, error) {
	if len(stages) < 2 {
		return nil, nil, fmt.Errorf("fuse: need at least 2 stages, have %d", len(stages))
	}
	for i, st := range stages {
		p := st.Prog
		if p == nil {
			return nil, nil, fmt.Errorf("fuse: stage %d has no program", i)
		}
		if p.Stage != glsl.StageFragment {
			return nil, nil, fmt.Errorf("fuse: stage %d is not a fragment program", i)
		}
		if len(st.SlotSource) != len(p.Samplers) {
			return nil, nil, fmt.Errorf("fuse: stage %d: %d slot sources for %d samplers",
				i, len(st.SlotSource), len(p.Samplers))
		}
		for s, src := range st.SlotSource {
			if src >= i || src < -1 {
				return nil, nil, fmt.Errorf("fuse: stage %d slot %d: bad source stage %d", i, s, src)
			}
		}
		if p.NumOutputs != 1 {
			return nil, nil, fmt.Errorf("fuse: stage %d has %d outputs, want 1", i, p.NumOutputs)
		}
		if p.NumInputs != len(p.Inputs) {
			return nil, nil, fmt.Errorf("fuse: stage %d has multi-register inputs", i)
		}
		if p.UsesDiscard {
			return nil, nil, fmt.Errorf("fuse: stage %d uses discard", i)
		}
		for pc := range p.Insts {
			in := p.Insts[pc]
			if in.Op == OpRET && pc != len(p.Insts)-1 {
				return nil, nil, fmt.Errorf("fuse: stage %d has early return at pc %d", i, pc)
			}
			// Forward unconditional branches (function-inlining joins) are
			// deterministic and splice with a target relocation. Anything
			// conditional or backward would need a real liveness argument,
			// so refuse rather than risk it.
			if in.Op == OpBRZ {
				return nil, nil, fmt.Errorf("fuse: stage %d has conditional control flow at pc %d", i, pc)
			}
			if in.Op == OpBR && (int(in.Target) <= pc || int(in.Target) > len(p.Insts)-1) {
				return nil, nil, fmt.Errorf("fuse: stage %d has non-forward branch at pc %d", i, pc)
			}
		}
	}

	out := &Program{Stage: glsl.StageFragment}

	// Register bases per stage.
	tempBase := make([]int, len(stages))
	uniBase := make([]int, len(stages))
	constBase := make([]int, len(stages))
	temps, unis := 0, 0
	for i, st := range stages {
		tempBase[i] = temps
		uniBase[i] = unis
		temps += st.Prog.NumTemps
		unis += st.Prog.NumUniform
	}
	// One colour temp per non-final stage, allocated above all stage temps.
	colorTemp := make([]int, len(stages))
	for i := range stages[:len(stages)-1] {
		colorTemp[i] = temps
		temps++
	}
	out.NumTemps = temps
	out.NumUniform = unis
	out.NumOutputs = stages[len(stages)-1].Prog.NumOutputs

	// Merge varying inputs by name.
	inputReg := map[string]int{}
	inputMap := make([]map[uint16]uint16, len(stages))
	for i, st := range stages {
		inputMap[i] = map[uint16]uint16{}
		for _, v := range st.Prog.Inputs {
			reg, ok := inputReg[v.Name]
			if !ok {
				reg = len(out.Inputs)
				inputReg[v.Name] = reg
				nv := v
				nv.Reg = reg
				out.Inputs = append(out.Inputs, nv)
			}
			inputMap[i][uint16(v.Reg)] = uint16(reg)
		}
	}
	out.NumInputs = len(out.Inputs)

	// External sampler slots keep their stage-qualified uniform names.
	var samplers []FusedSampler
	slotMap := make([]map[int]int, len(stages)) // stage slot -> merged slot
	for i, st := range stages {
		slotMap[i] = map[int]int{}
		for s, src := range st.SlotSource {
			if src >= 0 {
				continue
			}
			name := FusedUniformName(i, st.Prog.Samplers[s])
			slotMap[i][s] = len(samplers)
			samplers = append(samplers, FusedSampler{Stage: i, Slot: s, Name: name})
			out.Samplers = append(out.Samplers, name)
		}
	}

	// Re-exported uniforms: stage-qualified names, relocated registers.
	// Sampler uniforms whose slot became internal are dropped (no
	// instruction references them; their register range stays reserved).
	for i, st := range stages {
		for _, u := range st.Prog.Uniforms {
			nu := u
			nu.Name = FusedUniformName(i, u.Name)
			nu.Reg = u.Reg + uniBase[i]
			if u.SamplerIdx >= 0 {
				merged, kept := slotMap[i][u.SamplerIdx]
				if !kept {
					continue
				}
				nu.SamplerIdx = merged
			}
			out.Uniforms = append(out.Uniforms, nu)
		}
	}

	relocSrc := func(i int, s Src) Src {
		switch s.File {
		case FileTemp:
			s.Reg += uint16(tempBase[i])
		case FileUniform:
			s.Reg += uint16(uniBase[i])
		case FileConst:
			s.Reg += uint16(constBase[i])
		case FileInput:
			s.Reg = inputMap[i][s.Reg]
		case FileOutput:
			if i != len(stages)-1 {
				s.File, s.Reg = FileTemp, uint16(colorTemp[i])
			}
		}
		return s
	}

	for i, st := range stages {
		p := st.Prog
		constBase[i] = len(out.Consts)
		out.Consts = append(out.Consts, p.Consts...)
		instBase := len(out.Insts)
		for pc := range p.Insts {
			in := p.Insts[pc]
			if in.Op == OpRET && i != len(stages)-1 {
				continue // only the final stage ends the program
			}
			if in.Op == OpBR {
				// Forward-only (validated above). A branch to the dropped
				// final RET of a non-final stage lands on the next stage's
				// first instruction — the correct fall-through.
				in.Target += int32(instBase)
			}
			if in.Op == OpTEX {
				if src := st.SlotSource[in.SamplerIdx]; src >= 0 {
					// The sampled texture is the feeding stage's colour,
					// stored as RGBA8: replace fetch with the round trip.
					in = Inst{
						Op:     OpQUANT,
						Dst:    in.Dst,
						A:      SrcReg(FileTemp, colorTemp[src]),
						SrcPos: in.SrcPos,
					}
				} else {
					in.SamplerIdx = uint8(slotMap[i][int(in.SamplerIdx)])
					in.A = relocSrc(i, in.A)
				}
			} else {
				in.A = relocSrc(i, in.A)
				in.B = relocSrc(i, in.B)
				in.C = relocSrc(i, in.C)
			}
			if in.WriteMask() != 0 || in.Op == OpTEX || in.Op == OpQUANT {
				switch in.Dst.File {
				case FileTemp:
					in.Dst.Reg += uint16(tempBase[i])
				case FileOutput:
					if i != len(stages)-1 {
						in.Dst.File, in.Dst.Reg = FileTemp, uint16(colorTemp[i])
					}
				}
			}
			out.Insts = append(out.Insts, in)
		}
		out.Source += fmt.Sprintf("// --- fused stage %d ---\n%s\n", i, p.Source)
	}

	for i := range out.Insts {
		if out.Insts[i].Op == OpTEX {
			out.TexInstructions++
		}
	}
	out.Outputs = append([]VarInfo(nil), stages[len(stages)-1].Prog.Outputs...)
	out.WritesBeforeReads, out.OutputsAlwaysWritten = analyzeLiveness(out)
	return out, samplers, nil
}
