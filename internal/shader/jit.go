package shader

// Closure-compiled shader execution.
//
// The interpreter in vm.go re-decodes every instruction on every
// invocation: a switch dispatch per instruction, a swizzle/negate resolve
// per operand, a write-mask test per destination component, and a float64
// round-trip per ALU lane. A fragment program runs once per fragment — for
// the paper-sized workloads that is millions of invocations of the same
// immutable instruction sequence, so the simulator's host bottleneck is
// pure re-decode overhead.
//
// compileProgram pays the decode cost once per (Program, CostModel) pair
// and produces a flat slice of specialized Go closures:
//
//   - Source operands are resolved at compile time. Constants become
//     captured Vec4 values (no constAt indirection); identity-swizzle,
//     non-negated registers read their bank directly; everything else gets
//     a closure with the swizzle lanes and negation baked in.
//   - Destinations with a full write mask assign the whole Vec4; partial
//     masks become four captured booleans, no bit tests on the hot path.
//   - Arithmetic runs float32-native exactly where that is bit-identical
//     to the interpreter's float64 round-trip, and float64 elsewhere (see
//     the lane notes below). Outputs are therefore byte-identical.
//   - Per-instruction cycle costs are baked into each closure, and for
//     straight-line programs (no branches, no KIL — every generated GPGPU
//     kernel, since loops are fully unrolled) the whole program's cycle
//     cost is precomputed so the inner loop touches Env.Cycles once.
//
// Float-precision audit (which ops may run float32-native):
//
//   - ADD/SUB/MUL/DIV/RCP: the interpreter computes in float64 and rounds
//     to float32. For operations that are exactly rounded in both
//     precisions, rounding the double result to single equals computing
//     directly in single whenever the wide format carries at least 2p+2
//     significand bits (Figueroa, "When is double rounding innocuous?").
//     float64 has 53 >= 2*24+2, so these are bit-exact in float32.
//   - Comparisons (SLT..SNE, SGN): float32→float64 conversion is exact,
//     so the predicate value is identical; results 0.0/±1.0 are exact.
//   - MIN/MAX: bit-exact only if the float32 versions reproduce
//     math.Min/math.Max semantics — NaN normalisation (the float64 path
//     collapses any NaN payload to float32(math.NaN())) and signed-zero
//     selection. min32/max32 below do exactly that.
//   - MAD, DPn, MUL24, CLAMP, SEL, MOV, TEX: the interpreter already
//     executes these in float32; the compiled closures replicate the same
//     expression shapes (same operation order, so any platform FMA-fusing
//     decisions match too).
//   - Transcendentals (FLR/CEIL/FRC/RSQ/SQRT/EX2/LG2/POW/EXP/LOG/trig,
//     ABS): kept on the interpreter's float64 math-package path. Several
//     would be safe in float32 (SQRT is exactly rounded; FLR/CEIL results
//     are representable) but they bottom out in float64 math calls anyway,
//     so there is nothing to win and no risk taken.
//
// The interpreter remains the reference semantics; the differential tests
// in jit_test.go prove bit-equal Outputs/Temps and equal
// Cycles/TexFetches/Discarded on the kernel suite and on fuzzed programs.

import (
	"fmt"
	"io"
	"math"
	"os"
)

// noJITEnv disables the compiled backend process-wide; read once at init.
var noJITEnv = os.Getenv("GLES2GPGPU_NO_JIT") != ""

// DefaultJIT reports whether the closure-compiled backend is enabled by
// default (it is, unless GLES2GPGPU_NO_JIT is set in the environment).
func DefaultJIT() bool { return !noJITEnv }

// compiledOp executes one instruction under the general (branch-capable)
// runner and returns the next pc; negative means halt.
type compiledOp func(e *Env) int

// srcFn reads one fully-resolved source operand.
type srcFn func(e *Env) Vec4

// dstFn writes one instruction result with the mask pre-applied.
type dstFn func(e *Env, v Vec4)

// OpNote records the specialization decisions taken for one instruction,
// for the `glslc -compiled` debug dump.
type OpNote struct {
	PC   int
	Lane string // "f32", "f64", "ctl", "tex", "none"
	A    string // "", "const", "direct", "swiz", "neg", "swiz+neg"
	B    string
	C    string
	Dst  string // "", "full", "mask", "drop"
	Cost int64
	// Dead marks instructions the pass pipeline proved unobservable: the
	// closure skips the computation but still charges Cost (and counts
	// the fetch for TEX), so virtual time is unchanged.
	Dead bool
}

// Compiled is the closure-compiled form of one Program under one
// CostModel. It is immutable after compileProgram returns, so any number
// of goroutines may Run it concurrently with distinct Envs.
type Compiled struct {
	prog *Program
	cost *CostModel
	// opt is non-nil when the compile ran over an OptProgram's rewritten
	// instructions (see Program.CompiledOpt); it keys the jitOpt cache.
	opt *OptProgram
	// insts is the instruction stream the compile ran over (the
	// original program's or the OptProgram's), retained for Dump.
	insts []Inst

	// Straight-line fast path: no control flow, so every closure executes
	// exactly once and the total cycle cost is a compile-time constant.
	straight   bool
	line       []func(*Env)
	lineCycles int64

	// General path: pc-returning closures with per-op costs baked in.
	ops []compiledOp

	notes []OpNote
}

// Straight reports whether the program compiled to the branch-free path
// with a single precomputed cycle increment.
func (c *Compiled) Straight() bool { return c.straight }

// PrecomputedCycles returns the per-invocation cycle cost baked in for
// straight-line programs (0 for programs with control flow).
func (c *Compiled) PrecomputedCycles() int64 { return c.lineCycles }

// Notes returns the per-instruction specialization decisions.
func (c *Compiled) Notes() []OpNote { return c.notes }

// Run executes the compiled program in env. Semantics, error behaviour and
// all Env counters are bit-identical to Run(p, env, cost) with the
// (program, cost model) pair the Compiled was built from.
func (c *Compiled) Run(env *Env) error {
	if c.straight {
		for _, f := range c.line {
			f(env)
		}
		env.Cycles += c.lineCycles
		return nil
	}
	n := len(c.ops)
	steps := 0
	for pc := 0; pc >= 0 && pc < n; {
		steps++
		if steps > maxSteps {
			return &ErrVM{PC: pc, Msg: "instruction budget exceeded (runaway branch?)"}
		}
		pc = c.ops[pc](env)
	}
	return nil
}

// Compiled returns the closure-compiled form of p under cost, building it
// on first use and caching it on the Program next to the liveness proofs.
// It returns nil when p contains an opcode the closure backend does not
// handle (callers fall back to the interpreter, which reports the error).
// The one-entry cache is keyed by the CostModel pointer: a Program belongs
// to one device profile — serving pools share Programs across engines, but
// all engines of a pool share one Profile — so the key never thrashes in
// practice. Reads are lock-free; fills are serialised under jitMu so
// concurrent engines racing on a cold shared kernel compile it once.
func (p *Program) Compiled(cost *CostModel) *Compiled {
	if c := p.jit.Load(); c != nil && c.cost == cost {
		return c
	}
	p.jitMu.Lock()
	defer p.jitMu.Unlock()
	if c := p.jit.Load(); c != nil && c.cost == cost {
		return c
	}
	c := compileFrom(p, p.Insts, p.Consts, nil, cost)
	if c == nil {
		return nil
	}
	p.jit.Store(c)
	return c
}

// CompiledOpt returns the closure-compiled form of p's optimised program
// (the OptProgram attached by SetOptimized) under cost, caching it in a
// second slot keyed by (cost, OptProgram) identity. When no OptProgram is
// attached it falls back to Compiled; it returns nil when the program does
// not compile (interpreter fallback).
func (p *Program) CompiledOpt(cost *CostModel) *Compiled {
	o := p.Optimized()
	if o == nil {
		return p.Compiled(cost)
	}
	if c := p.jitOpt.Load(); c != nil && c.cost == cost && c.opt == o {
		return c
	}
	p.jitMu.Lock()
	defer p.jitMu.Unlock()
	if c := p.jitOpt.Load(); c != nil && c.cost == cost && c.opt == o {
		return c
	}
	c := compileFrom(p, o.Insts, o.Consts, o.Dead, cost)
	if c == nil {
		return nil
	}
	c.opt = o
	p.jitOpt.Store(c)
	return c
}

// Executor returns the fastest execution function available for p under
// cost: the closure-compiled backend when useJIT is true and p compiles,
// else the reference interpreter; with usePasses, both backends run the
// optimised form when one is attached (bit-identical by the OptProgram
// contract). The returned function is safe for concurrent use with
// distinct Envs.
func Executor(p *Program, cost *CostModel, useJIT, usePasses bool) func(*Env) error {
	if useJIT {
		var c *Compiled
		if usePasses {
			c = p.CompiledOpt(cost)
		} else {
			c = p.Compiled(cost)
		}
		if c != nil {
			return c.Run
		}
	}
	if usePasses && p.Optimized() != nil {
		return func(e *Env) error { return RunOptimized(p, e, cost) }
	}
	return func(e *Env) error { return Run(p, e, cost) }
}

// compileFrom translates an instruction stream (the program's own, or an
// OptProgram's rewritten one with its extended constant pool and dead
// flags) into closures. Returns nil on any opcode the backend cannot prove
// it executes identically to the interpreter.
func compileFrom(p *Program, insts []Inst, consts [][4]float32, dead []bool, cost *CostModel) *Compiled {
	c := &Compiled{prog: p, cost: cost, insts: insts}
	n := len(insts)

	c.straight = true
	for i := range insts {
		switch insts[i].Op {
		case OpBR, OpBRZ:
			// The if-lowering in the GLSL back end emits fall-through
			// branches (target = next instruction). Those are no-ops aside
			// from their cycle cost — reading the BRZ condition has no side
			// effect — so they keep the program straight-line. Any real
			// jump does not.
			if int(insts[i].Target) != i+1 {
				c.straight = false
			}
		case OpKIL:
			c.straight = false
		case OpRET:
			// A RET anywhere but the final slot is an early exit: later
			// instructions must not execute or be charged.
			if i != n-1 {
				c.straight = false
			}
		}
	}

	if c.straight {
		c.line = make([]func(*Env), 0, n)
		for i := range insts {
			in := &insts[i]
			ic := cost.InstCost(in)
			c.lineCycles += ic
			note := OpNote{PC: i, Cost: ic}
			switch in.Op {
			case OpNOP, OpRET:
				note.Lane = "none"
				c.notes = append(c.notes, note)
				continue
			case OpBR, OpBRZ:
				// Fall-through branch (verified above): cost-only.
				note.Lane = "none"
				c.notes = append(c.notes, note)
				continue
			}
			if dead != nil && dead[i] {
				// Cost is already folded into lineCycles; a dead TEX
				// still counts its fetch.
				note.Dead = true
				note.Lane = "none"
				if in.Op == OpTEX {
					note.Lane = "tex"
					c.line = append(c.line, func(e *Env) { e.TexFetches++ })
				}
				c.notes = append(c.notes, note)
				continue
			}
			fn := compileInst(consts, in, &note)
			if fn == nil {
				return nil
			}
			c.line = append(c.line, fn)
			c.notes = append(c.notes, note)
		}
		return c
	}

	c.ops = make([]compiledOp, n)
	for i := range insts {
		in := &insts[i]
		ic := cost.InstCost(in)
		next := i + 1
		note := OpNote{PC: i, Cost: ic}
		switch {
		case dead != nil && dead[i]:
			// Control flow and KIL are never dead (SetOptimized enforces
			// it), so charging cost and falling through is exact.
			note.Dead = true
			note.Lane = "none"
			if in.Op == OpTEX {
				note.Lane = "tex"
				c.ops[i] = func(e *Env) int { e.Cycles += ic; e.TexFetches++; return next }
			} else {
				c.ops[i] = func(e *Env) int { e.Cycles += ic; return next }
			}
		case in.Op == OpNOP:
			note.Lane = "none"
			c.ops[i] = func(e *Env) int { e.Cycles += ic; return next }
		case in.Op == OpRET:
			note.Lane = "ctl"
			c.ops[i] = func(e *Env) int { e.Cycles += ic; return -1 }
		case in.Op == OpBR:
			note.Lane = "ctl"
			target := int(in.Target)
			c.ops[i] = func(e *Env) int { e.Cycles += ic; return target }
		case in.Op == OpBRZ:
			note.Lane = "ctl"
			target := int(in.Target)
			ra := compileSrc1(consts, in.A, &note.A)
			c.ops[i] = func(e *Env) int {
				e.Cycles += ic
				if ra(e) == 0 {
					return target
				}
				return next
			}
		case in.Op == OpKIL:
			note.Lane = "ctl"
			ra := compileSrc1(consts, in.A, &note.A)
			c.ops[i] = func(e *Env) int {
				e.Cycles += ic
				if ra(e) != 0 {
					e.Discarded = true
					return -1
				}
				return next
			}
		default:
			fn := compileInst(consts, in, &note)
			if fn == nil {
				return nil
			}
			c.ops[i] = func(e *Env) int {
				e.Cycles += ic
				fn(e)
				return next
			}
		}
		c.notes = append(c.notes, note)
	}
	return c
}

// min32 / max32 reproduce float32(math.Min/Max(float64(x), float64(y)))
// bit-for-bit, including math.Min/Max's special-case order: the dominating
// infinity is checked BEFORE NaN (math.Min(-Inf, NaN) is -Inf, not NaN),
// any remaining NaN collapses to the canonical float32 NaN (exactly what
// the float64 round-trip produces), and ±0 selection follows the sign bit.
// For ordinary operands the comparison is exact because float32→float64
// conversion is.
func min32(x, y float32) float32 {
	switch {
	case math.IsInf(float64(x), -1) || math.IsInf(float64(y), -1):
		return float32(math.Inf(-1))
	case x != x || y != y:
		return float32(math.NaN())
	case x == 0 && x == y:
		if math.Signbit(float64(x)) {
			return x
		}
		return y
	}
	if x < y {
		return x
	}
	return y
}

func max32(x, y float32) float32 {
	switch {
	case math.IsInf(float64(x), 1) || math.IsInf(float64(y), 1):
		return float32(math.Inf(1))
	case x != x || y != y:
		return float32(math.NaN())
	case x == 0 && x == y:
		if math.Signbit(float64(x)) {
			return y
		}
		return x
	}
	if x > y {
		return x
	}
	return y
}

// compileInst builds the closure for one non-control-flow instruction,
// recording specialization decisions in note. Returns nil for opcodes the
// backend does not support.
func compileInst(consts [][4]float32, in *Inst, note *OpNote) func(*Env) {
	wr := compileDst(in.Dst, &note.Dst)
	switch in.Op {
	case OpTEX:
		note.Lane = "tex"
		ra := compileSrc(consts, in.A, &note.A)
		sampler := int(in.SamplerIdx)
		return func(e *Env) {
			e.TexFetches++
			a := ra(e)
			var texel Vec4
			if sampler >= 0 && sampler < len(e.Samplers) && e.Samplers[sampler] != nil {
				texel = e.Samplers[sampler](a[0], a[1])
			} else if e.Sample != nil {
				texel = e.Sample(sampler, a[0], a[1])
			}
			wr(e, texel)
		}
	case OpMOV:
		note.Lane = "f32"
		ra := compileSrc(consts, in.A, &note.A)
		return func(e *Env) { wr(e, ra(e)) }
	case OpDP2, OpDP3, OpDP4:
		note.Lane = "f32"
		ra := compileSrc(consts, in.A, &note.A)
		rb := compileSrc(consts, in.B, &note.B)
		lanes := 2 + int(in.Op) - int(OpDP2)
		return func(e *Env) {
			a, b := ra(e), rb(e)
			var s float32
			for i := 0; i < lanes; i++ {
				s += a[i] * b[i]
			}
			wr(e, Vec4{s, s, s, s})
		}
	case OpMAD:
		note.Lane = "f32"
		ra := compileSrc(consts, in.A, &note.A)
		rb := compileSrc(consts, in.B, &note.B)
		rc := compileSrc(consts, in.C, &note.C)
		return func(e *Env) {
			a, b, c := ra(e), rb(e), rc(e)
			wr(e, Vec4{
				a[0]*b[0] + c[0], a[1]*b[1] + c[1],
				a[2]*b[2] + c[2], a[3]*b[3] + c[3],
			})
		}
	case OpMUL24:
		note.Lane = "f32"
		ra := compileSrc(consts, in.A, &note.A)
		rb := compileSrc(consts, in.B, &note.B)
		return func(e *Env) {
			a, b := ra(e), rb(e)
			var r Vec4
			for i := 0; i < 4; i++ {
				r[i] = quant24(a[i]) * quant24(b[i])
			}
			wr(e, r)
		}
	case OpCLAMP:
		note.Lane = "f32"
		ra := compileSrc(consts, in.A, &note.A)
		rb := compileSrc(consts, in.B, &note.B)
		rc := compileSrc(consts, in.C, &note.C)
		return func(e *Env) {
			a, lo, hi := ra(e), rb(e), rc(e)
			var r Vec4
			for i := 0; i < 4; i++ {
				v := a[i]
				if v < lo[i] {
					v = lo[i]
				}
				if v > hi[i] {
					v = hi[i]
				}
				r[i] = v
			}
			wr(e, r)
		}
	case OpSEL:
		note.Lane = "f32"
		ra := compileSrc(consts, in.A, &note.A)
		rb := compileSrc(consts, in.B, &note.B)
		rc := compileSrc(consts, in.C, &note.C)
		return func(e *Env) {
			a, b, c := ra(e), rb(e), rc(e)
			var r Vec4
			for i := 0; i < 4; i++ {
				if a[i] != 0 {
					r[i] = b[i]
				} else {
					r[i] = c[i]
				}
			}
			wr(e, r)
		}
	case OpADD:
		note.Lane = "f32"
		ra, rb := compileSrc(consts, in.A, &note.A), compileSrc(consts, in.B, &note.B)
		return func(e *Env) {
			a, b := ra(e), rb(e)
			wr(e, Vec4{a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]})
		}
	case OpSUB:
		note.Lane = "f32"
		ra, rb := compileSrc(consts, in.A, &note.A), compileSrc(consts, in.B, &note.B)
		return func(e *Env) {
			a, b := ra(e), rb(e)
			wr(e, Vec4{a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]})
		}
	case OpMUL:
		note.Lane = "f32"
		ra, rb := compileSrc(consts, in.A, &note.A), compileSrc(consts, in.B, &note.B)
		return func(e *Env) {
			a, b := ra(e), rb(e)
			wr(e, Vec4{a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]})
		}
	case OpDIV:
		note.Lane = "f32"
		ra, rb := compileSrc(consts, in.A, &note.A), compileSrc(consts, in.B, &note.B)
		return func(e *Env) {
			a, b := ra(e), rb(e)
			wr(e, Vec4{a[0] / b[0], a[1] / b[1], a[2] / b[2], a[3] / b[3]})
		}
	case OpMIN:
		note.Lane = "f32"
		ra, rb := compileSrc(consts, in.A, &note.A), compileSrc(consts, in.B, &note.B)
		return func(e *Env) {
			a, b := ra(e), rb(e)
			wr(e, Vec4{min32(a[0], b[0]), min32(a[1], b[1]), min32(a[2], b[2]), min32(a[3], b[3])})
		}
	case OpMAX:
		note.Lane = "f32"
		ra, rb := compileSrc(consts, in.A, &note.A), compileSrc(consts, in.B, &note.B)
		return func(e *Env) {
			a, b := ra(e), rb(e)
			wr(e, Vec4{max32(a[0], b[0]), max32(a[1], b[1]), max32(a[2], b[2]), max32(a[3], b[3])})
		}
	case OpRCP:
		note.Lane = "f32"
		ra := compileSrc(consts, in.A, &note.A)
		return func(e *Env) {
			a := ra(e)
			wr(e, Vec4{1 / a[0], 1 / a[1], 1 / a[2], 1 / a[3]})
		}
	case OpQUANT:
		note.Lane = "f32"
		ra := compileSrc(consts, in.A, &note.A)
		return func(e *Env) {
			a := ra(e)
			wr(e, Vec4{
				QuantizeChannel(a[0]), QuantizeChannel(a[1]),
				QuantizeChannel(a[2]), QuantizeChannel(a[3]),
			})
		}
	case OpSGN:
		note.Lane = "f32"
		ra := compileSrc(consts, in.A, &note.A)
		sgn := func(x float32) float32 {
			if x > 0 {
				return 1
			}
			if x < 0 {
				return -1
			}
			return 0
		}
		return func(e *Env) {
			a := ra(e)
			wr(e, Vec4{sgn(a[0]), sgn(a[1]), sgn(a[2]), sgn(a[3])})
		}
	case OpSLT, OpSLE, OpSGT, OpSGE, OpSEQ, OpSNE:
		note.Lane = "f32"
		ra, rb := compileSrc(consts, in.A, &note.A), compileSrc(consts, in.B, &note.B)
		var cmp func(x, y float32) bool
		switch in.Op {
		case OpSLT:
			cmp = func(x, y float32) bool { return x < y }
		case OpSLE:
			cmp = func(x, y float32) bool { return x <= y }
		case OpSGT:
			cmp = func(x, y float32) bool { return x > y }
		case OpSGE:
			cmp = func(x, y float32) bool { return x >= y }
		case OpSEQ:
			cmp = func(x, y float32) bool { return x == y }
		default:
			cmp = func(x, y float32) bool { return x != y }
		}
		return func(e *Env) {
			a, b := ra(e), rb(e)
			var r Vec4
			for i := 0; i < 4; i++ {
				if cmp(a[i], b[i]) {
					r[i] = 1
				}
			}
			wr(e, r)
		}
	case OpABS, OpFLR, OpCEIL, OpFRC, OpRSQ, OpSQRT, OpEX2, OpLG2,
		OpEXP, OpLOG, OpSIN, OpCOS, OpTAN, OpASIN, OpACOS, OpATAN:
		note.Lane = "f64"
		ra := compileSrc(consts, in.A, &note.A)
		var f func(float64) float64
		switch in.Op {
		case OpABS:
			f = math.Abs
		case OpFLR:
			f = math.Floor
		case OpCEIL:
			f = math.Ceil
		case OpFRC:
			f = func(x float64) float64 { return x - math.Floor(x) }
		case OpRSQ:
			f = func(x float64) float64 { return 1 / math.Sqrt(x) }
		case OpSQRT:
			f = math.Sqrt
		case OpEX2:
			f = math.Exp2
		case OpLG2:
			f = math.Log2
		case OpEXP:
			f = math.Exp
		case OpLOG:
			f = math.Log
		case OpSIN:
			f = math.Sin
		case OpCOS:
			f = math.Cos
		case OpTAN:
			f = math.Tan
		case OpASIN:
			f = math.Asin
		case OpACOS:
			f = math.Acos
		default:
			f = math.Atan
		}
		return func(e *Env) {
			a := ra(e)
			wr(e, Vec4{
				float32(f(float64(a[0]))), float32(f(float64(a[1]))),
				float32(f(float64(a[2]))), float32(f(float64(a[3]))),
			})
		}
	case OpPOW, OpATAN2:
		note.Lane = "f64"
		ra, rb := compileSrc(consts, in.A, &note.A), compileSrc(consts, in.B, &note.B)
		f := math.Pow
		if in.Op == OpATAN2 {
			f = math.Atan2
		}
		return func(e *Env) {
			a, b := ra(e), rb(e)
			wr(e, Vec4{
				float32(f(float64(a[0]), float64(b[0]))),
				float32(f(float64(a[1]), float64(b[1]))),
				float32(f(float64(a[2]), float64(b[2]))),
				float32(f(float64(a[3]), float64(b[3]))),
			})
		}
	}
	return nil // unknown opcode: interpreter fallback reports it
}

// compileSrc resolves one source operand into a reader closure with the
// swizzle, negation and constant lookup folded away where possible.
func compileSrc(consts [][4]float32, s Src, note *string) srcFn {
	if s.File == FileConst {
		*note = "const"
		v := resolveConst(consts, s)
		return func(e *Env) Vec4 { return v }
	}
	identity := s.Swiz == IdentitySwiz
	base := baseReader(s.File, s.Reg)
	switch {
	case identity && !s.Neg:
		*note = "direct"
		return base
	case identity:
		*note = "neg"
		return func(e *Env) Vec4 {
			b := base(e)
			return Vec4{-b[0], -b[1], -b[2], -b[3]}
		}
	case !s.Neg:
		*note = "swiz"
		s0, s1, s2, s3 := s.Swiz[0]&3, s.Swiz[1]&3, s.Swiz[2]&3, s.Swiz[3]&3
		return func(e *Env) Vec4 {
			b := base(e)
			return Vec4{b[s0], b[s1], b[s2], b[s3]}
		}
	default:
		*note = "swiz+neg"
		s0, s1, s2, s3 := s.Swiz[0]&3, s.Swiz[1]&3, s.Swiz[2]&3, s.Swiz[3]&3
		return func(e *Env) Vec4 {
			b := base(e)
			return Vec4{-b[s0], -b[s1], -b[s2], -b[s3]}
		}
	}
}

// compileSrc1 resolves the scalar (lane-x) read used by BRZ and KIL,
// matching Env.read1: swizzle lane 0 selects the component, then negation.
func compileSrc1(consts [][4]float32, s Src, note *string) func(e *Env) float32 {
	lane := s.Swiz[0] & 3
	if s.File == FileConst {
		*note = "const"
		v := resolveConst(consts, s)[0]
		return func(e *Env) float32 { return v }
	}
	base := baseReader(s.File, s.Reg)
	if s.Neg {
		*note = "neg"
		return func(e *Env) float32 { return -base(e)[lane] }
	}
	*note = "direct"
	return func(e *Env) float32 { return base(e)[lane] }
}

// resolveConst folds a constant-pool operand (with swizzle and negation)
// into a value at compile time; out-of-range pool indices read zero,
// exactly as constAt does.
func resolveConst(consts [][4]float32, s Src) Vec4 {
	var base Vec4
	if int(s.Reg) < len(consts) {
		base = Vec4(consts[s.Reg])
	}
	r := Vec4{base[s.Swiz[0]&3], base[s.Swiz[1]&3], base[s.Swiz[2]&3], base[s.Swiz[3]&3]}
	if s.Neg {
		r[0], r[1], r[2], r[3] = -r[0], -r[1], -r[2], -r[3]
	}
	return r
}

// baseReader returns the bank accessor for a register operand.
func baseReader(f RegFile, reg uint16) srcFn {
	r := int(reg)
	switch f {
	case FileTemp:
		return func(e *Env) Vec4 { return e.Temps[r] }
	case FileUniform:
		return func(e *Env) Vec4 { return e.Uniforms[r] }
	case FileInput:
		return func(e *Env) Vec4 { return e.Inputs[r] }
	case FileOutput:
		return func(e *Env) Vec4 { return e.Outputs[r] }
	default:
		return func(e *Env) Vec4 { return Vec4{} }
	}
}

// compileDst resolves a destination into a writer closure; full masks
// assign the whole register, partial masks bake the component tests into
// captured booleans, and writes to read-only files are dropped (compiler
// bugs, same as Env.write).
func compileDst(d Dst, note *string) dstFn {
	reg := int(d.Reg)
	if d.File != FileTemp && d.File != FileOutput {
		*note = "drop"
		return func(e *Env, v Vec4) {}
	}
	slot := func(e *Env) *Vec4 { return &e.Temps[reg] }
	if d.File == FileOutput {
		slot = func(e *Env) *Vec4 { return &e.Outputs[reg] }
	}
	if d.Mask == MaskAll {
		*note = "full"
		return func(e *Env, v Vec4) { *slot(e) = v }
	}
	*note = "mask"
	w0, w1 := d.Mask&1 != 0, d.Mask&2 != 0
	w2, w3 := d.Mask&4 != 0, d.Mask&8 != 0
	return func(e *Env, v Vec4) {
		s := slot(e)
		if w0 {
			s[0] = v[0]
		}
		if w1 {
			s[1] = v[1]
		}
		if w2 {
			s[2] = v[2]
		}
		if w3 {
			s[3] = v[3]
		}
	}
}

// Dump writes the per-op specialization decisions in a human-readable form
// (the `glslc -compiled` output).
func (c *Compiled) Dump(w io.Writer) {
	if c.straight {
		fmt.Fprintf(w, "; jit: straight-line; %d cycles/invocation precomputed as one block\n",
			c.lineCycles)
	} else {
		fmt.Fprintf(w, "; jit: control flow present; per-instruction cycle accounting\n")
	}
	var direct, srcs, full, dsts, f32, f64 int
	count := func(s string) {
		if s == "" {
			return
		}
		srcs++
		if s == "direct" || s == "const" {
			direct++
		}
	}
	for _, n := range c.notes {
		count(n.A)
		count(n.B)
		count(n.C)
		if n.Dst != "" {
			dsts++
			if n.Dst == "full" {
				full++
			}
		}
		switch n.Lane {
		case "f32":
			f32++
		case "f64":
			f64++
		}
	}
	fmt.Fprintf(w, "; jit: %d/%d fast-path srcs (direct/const), %d/%d full-mask dsts, %d f32 lanes, %d f64 lanes\n",
		direct, srcs, full, dsts, f32, f64)
	for _, n := range c.notes {
		detail := "lane=" + n.Lane
		for _, op := range []struct{ tag, v string }{{"a", n.A}, {"b", n.B}, {"c", n.C}, {"dst", n.Dst}} {
			if op.v != "" {
				detail += " " + op.tag + "=" + op.v
			}
		}
		fmt.Fprintf(w, "%4d: %-40s ; %s cost=%d\n",
			n.PC, c.insts[n.PC].String(), detail, n.Cost)
	}
}
