package shader

import (
	"math"

	"gles2gpgpu/internal/glsl"
)

func (g *cgen) genCall(e *glsl.Call) (value, error) {
	switch {
	case e.Ctor:
		return g.genCtor(e)
	case e.Builtin != nil:
		return g.genBuiltin(e)
	case e.Func != nil:
		return g.genUserCall(e)
	}
	return value{}, errAt(e.P, "internal: unresolved call %q", e.Name)
}

// genCtor lowers type constructors. Constant constructors were already
// folded by genExpr; this path handles runtime arguments.
func (g *cgen) genCtor(e *glsl.Call) (value, error) {
	ct := e.CtorType
	args := make([]value, len(e.Args))
	for i, a := range e.Args {
		v, err := g.genExpr(a)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	if ct.IsScalar() {
		// Conversions: int(float) truncates, bool(x) = x != 0, float(int)
		// is a representation no-op in this float32 register file.
		v := args[0]
		src := g.asSrc(v)
		res := g.tempValue(ct)
		switch ct.Kind {
		case glsl.KInt:
			// trunc(x) = sign(x)*floor(|x|)
			if v.typ.Kind == glsl.KFloat {
				absV := g.tempValue(ct)
				g.emit(Inst{Op: OpABS, Dst: absV.dst(), A: src})
				flr := g.tempValue(ct)
				g.emit(Inst{Op: OpFLR, Dst: flr.dst(), A: absV.src()})
				sgn := g.tempValue(ct)
				g.emit(Inst{Op: OpSGN, Dst: sgn.dst(), A: src})
				g.emit(Inst{Op: OpMUL, Dst: res.dst(), A: flr.src(), B: sgn.src()})
			} else {
				g.emit(Inst{Op: OpMOV, Dst: res.dst(), A: src})
			}
		case glsl.KBool:
			g.emit(Inst{Op: OpSNE, Dst: res.dst(), A: src, B: g.scalarConst(0)})
		default:
			g.emit(Inst{Op: OpMOV, Dst: res.dst(), A: src})
		}
		return res, nil
	}
	if ct.IsMatrix() {
		return g.genMatCtor(e, ct, args)
	}
	// Vector constructor.
	n := ct.Components()
	res := g.tempValue(ct)
	if len(args) == 1 {
		a := args[0]
		src := g.asSrc(a)
		if a.typ.IsScalar() {
			src.Swiz = [4]uint8{src.Swiz[0], src.Swiz[0], src.Swiz[0], src.Swiz[0]}
		}
		g.emit(Inst{Op: OpMOV, Dst: res.dst(), A: src})
		return res, nil
	}
	// Flatten arguments into consecutive components.
	at := 0
	for _, a := range args {
		cn := a.typ.Components()
		src := g.asSrc(a)
		var mask uint8
		var sw [4]uint8
		for j := 0; j < cn; j++ {
			d := at + j
			mask |= 1 << uint(d)
			sw[d] = src.Swiz[j]
		}
		src.Swiz = sw
		g.emit(Inst{Op: OpMOV, Dst: Dst{File: FileTemp, Reg: uint16(res.reg), Mask: mask}, A: src})
		at += cn
	}
	_ = n
	return res, nil
}

func (g *cgen) genMatCtor(e *glsl.Call, ct glsl.Type, args []value) (value, error) {
	n := ct.MatrixCols()
	res := g.tempValue(ct)
	if len(args) == 1 {
		a := args[0]
		if a.typ.IsScalar() {
			// Diagonal matrix.
			src := g.asSrc(a)
			src.Swiz = [4]uint8{src.Swiz[0], src.Swiz[0], src.Swiz[0], src.Swiz[0]}
			zero := g.scalarConst(0)
			for i := 0; i < n; i++ {
				g.emit(Inst{Op: OpMOV, Dst: DstReg(FileTemp, res.reg+i, n), A: zero})
				g.emit(Inst{Op: OpMOV, Dst: Dst{File: FileTemp, Reg: uint16(res.reg + i), Mask: 1 << uint(i)}, A: src})
			}
			return res, nil
		}
		if a.typ == ct {
			for i := 0; i < n; i++ {
				g.emit(Inst{Op: OpMOV, Dst: DstReg(FileTemp, res.reg+i, n), A: a.colSrc(i)})
			}
			return res, nil
		}
		return value{}, errAt(e.P, "unsupported matrix constructor argument %s", a.typ)
	}
	// Component list: distribute into columns.
	col, at := 0, 0
	for _, a := range args {
		cn := a.typ.Components()
		src := g.asSrc(a)
		for j := 0; j < cn; j++ {
			d := at % n
			s := src
			s.Swiz = [4]uint8{src.Swiz[j], src.Swiz[j], src.Swiz[j], src.Swiz[j]}
			g.emit(Inst{Op: OpMOV, Dst: Dst{File: FileTemp, Reg: uint16(res.reg + col), Mask: 1 << uint(d)}, A: s})
			at++
			if at%n == 0 {
				col++
			}
		}
	}
	return res, nil
}

// genBuiltin lowers builtin calls to hardware instruction sequences.
func (g *cgen) genBuiltin(e *glsl.Call) (value, error) {
	sig := e.Builtin
	// texture2D needs its sampler operand resolved, not evaluated.
	if sig.Op == glsl.BTexture2D || sig.Op == glsl.BTexture2DBias {
		return g.genTexture(e)
	}
	args := make([]value, len(e.Args))
	for i, a := range e.Args {
		v, err := g.genExpr(a)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	res := g.tempValue(e.Type())
	simple1 := map[glsl.BuiltinOp]Op{
		glsl.BSin: OpSIN, glsl.BCos: OpCOS, glsl.BTan: OpTAN,
		glsl.BAsin: OpASIN, glsl.BAcos: OpACOS, glsl.BAtan: OpATAN,
		glsl.BExp: OpEXP, glsl.BLog: OpLOG, glsl.BExp2: OpEX2, glsl.BLog2: OpLG2,
		glsl.BSqrt: OpSQRT, glsl.BInverseSqrt: OpRSQ,
		glsl.BAbs: OpABS, glsl.BSign: OpSGN, glsl.BFloor: OpFLR,
		glsl.BCeil: OpCEIL, glsl.BFract: OpFRC,
	}
	if op, ok := simple1[sig.Op]; ok {
		g.emit(Inst{Op: op, Dst: res.dst(), A: g.asSrc(args[0])})
		return res, nil
	}
	bcast := func(s Src) Src {
		s.Swiz = [4]uint8{s.Swiz[0], s.Swiz[0], s.Swiz[0], s.Swiz[0]}
		return s
	}
	// Align a possibly-scalar second operand with a vector first operand.
	alignB := func(a, b value) (Src, Src) {
		sa, sb := g.asSrc(a), g.asSrc(b)
		if a.typ.Components() > 1 && b.typ.Components() == 1 {
			sb = bcast(sb)
		}
		return sa, sb
	}
	dpOp := func(n int) Op {
		switch n {
		case 2:
			return OpDP2
		case 3:
			return OpDP3
		case 4:
			return OpDP4
		}
		return OpMUL // 1-component "dot" is a multiply
	}
	switch sig.Op {
	case glsl.BRadians:
		g.emit(Inst{Op: OpMUL, Dst: res.dst(), A: g.asSrc(args[0]), B: g.scalarConst(float32(math.Pi / 180))})
	case glsl.BDegrees:
		g.emit(Inst{Op: OpMUL, Dst: res.dst(), A: g.asSrc(args[0]), B: g.scalarConst(float32(180 / math.Pi))})
	case glsl.BAtan2:
		g.emit(Inst{Op: OpATAN2, Dst: res.dst(), A: g.asSrc(args[0]), B: g.asSrc(args[1])})
	case glsl.BPow:
		g.emit(Inst{Op: OpPOW, Dst: res.dst(), A: g.asSrc(args[0]), B: g.asSrc(args[1])})
	case glsl.BMod:
		// a - b*floor(a/b)
		sa, sb := alignB(args[0], args[1])
		q := g.tempValue(e.Type())
		g.emit(Inst{Op: OpDIV, Dst: q.dst(), A: sa, B: sb})
		g.emit(Inst{Op: OpFLR, Dst: q.dst(), A: q.src()})
		nb := sb
		nb.Neg = !nb.Neg
		g.emit(Inst{Op: OpMAD, Dst: res.dst(), A: q.src(), B: nb, C: sa})
	case glsl.BMin, glsl.BMax:
		op := OpMIN
		if sig.Op == glsl.BMax {
			op = OpMAX
		}
		sa, sb := alignB(args[0], args[1])
		g.emit(Inst{Op: op, Dst: res.dst(), A: sa, B: sb})
	case glsl.BClamp:
		sa := g.asSrc(args[0])
		slo, shi := g.asSrc(args[1]), g.asSrc(args[2])
		if args[0].typ.Components() > 1 && args[1].typ.Components() == 1 {
			slo, shi = bcast(slo), bcast(shi)
		}
		g.emit(Inst{Op: OpCLAMP, Dst: res.dst(), A: sa, B: slo, C: shi})
	case glsl.BMix:
		// a + t*(b-a)
		sa, sb := g.asSrc(args[0]), g.asSrc(args[1])
		st := g.asSrc(args[2])
		if args[0].typ.Components() > 1 && args[2].typ.Components() == 1 {
			st = bcast(st)
		}
		d := g.tempValue(e.Type())
		g.emit(Inst{Op: OpSUB, Dst: d.dst(), A: sb, B: sa})
		g.emit(Inst{Op: OpMAD, Dst: res.dst(), A: d.src(), B: st, C: sa})
	case glsl.BStep:
		// step(edge, x) = x >= edge
		se, sx := g.asSrc(args[0]), g.asSrc(args[1])
		if args[1].typ.Components() > 1 && args[0].typ.Components() == 1 {
			se = bcast(se)
		}
		g.emit(Inst{Op: OpSGE, Dst: res.dst(), A: sx, B: se})
	case glsl.BSmoothstep:
		s0, s1 := g.asSrc(args[0]), g.asSrc(args[1])
		sx := g.asSrc(args[2])
		if args[2].typ.Components() > 1 && args[0].typ.Components() == 1 {
			s0, s1 = bcast(s0), bcast(s1)
		}
		num := g.tempValue(e.Type())
		g.emit(Inst{Op: OpSUB, Dst: num.dst(), A: sx, B: s0})
		den := g.tempValue(e.Type())
		g.emit(Inst{Op: OpSUB, Dst: den.dst(), A: s1, B: s0})
		t := g.tempValue(e.Type())
		g.emit(Inst{Op: OpDIV, Dst: t.dst(), A: num.src(), B: den.src()})
		g.emit(Inst{Op: OpCLAMP, Dst: t.dst(), A: t.src(), B: g.scalarConst(0), C: g.scalarConst(1)})
		// t*t*(3-2t)
		poly := g.tempValue(e.Type())
		nt := t.src()
		nt.Neg = true
		g.emit(Inst{Op: OpMAD, Dst: poly.dst(), A: nt, B: g.scalarConst(2), C: g.scalarConst(3)})
		tt := g.tempValue(e.Type())
		g.emit(Inst{Op: OpMUL, Dst: tt.dst(), A: t.src(), B: t.src()})
		g.emit(Inst{Op: OpMUL, Dst: res.dst(), A: tt.src(), B: poly.src()})
	case glsl.BLength:
		n := args[0].typ.Components()
		d := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: dpOp(n), Dst: d.dst(), A: g.asSrc(args[0]), B: g.asSrc(args[0])})
		g.emit(Inst{Op: OpSQRT, Dst: res.dst(), A: d.src()})
	case glsl.BDistance:
		n := args[0].typ.Components()
		diff := g.tempValue(args[0].typ)
		g.emit(Inst{Op: OpSUB, Dst: diff.dst(), A: g.asSrc(args[0]), B: g.asSrc(args[1])})
		d := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: dpOp(n), Dst: d.dst(), A: diff.src(), B: diff.src()})
		g.emit(Inst{Op: OpSQRT, Dst: res.dst(), A: d.src()})
	case glsl.BDot:
		n := args[0].typ.Components()
		g.emit(Inst{Op: dpOp(n), Dst: res.dst(), A: g.asSrc(args[0]), B: g.asSrc(args[1])})
	case glsl.BCross:
		// a.yzx*b.zxy - a.zxy*b.yzx
		sa, sb := g.asSrc(args[0]), g.asSrc(args[1])
		reswiz := func(s Src, a, b, c uint8) Src {
			s.Swiz = [4]uint8{s.Swiz[a], s.Swiz[b], s.Swiz[c], s.Swiz[c]}
			return s
		}
		t := g.tempValue(e.Type())
		g.emit(Inst{Op: OpMUL, Dst: t.dst(), A: reswiz(sa, 1, 2, 0), B: reswiz(sb, 2, 0, 1)})
		na := reswiz(sa, 2, 0, 1)
		na.Neg = !na.Neg
		g.emit(Inst{Op: OpMAD, Dst: res.dst(), A: na, B: reswiz(sb, 1, 2, 0), C: t.src()})
	case glsl.BNormalize:
		n := args[0].typ.Components()
		sa := g.asSrc(args[0])
		if n == 1 {
			g.emit(Inst{Op: OpSGN, Dst: res.dst(), A: sa})
			break
		}
		d := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: dpOp(n), Dst: d.dst(), A: sa, B: sa})
		r := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: OpRSQ, Dst: r.dst(), A: d.src()})
		g.emit(Inst{Op: OpMUL, Dst: res.dst(), A: sa, B: bcast(r.src())})
	case glsl.BFaceforward:
		// dot(Nref, I) < 0 ? N : -N
		n := args[0].typ.Components()
		d := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: dpOp(n), Dst: d.dst(), A: g.asSrc(args[2]), B: g.asSrc(args[1])})
		cmp := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: OpSLT, Dst: cmp.dst(), A: d.src(), B: g.scalarConst(0)})
		sn := g.asSrc(args[0])
		nn := sn
		nn.Neg = !nn.Neg
		g.emit(Inst{Op: OpSEL, Dst: res.dst(), A: bcast(cmp.src()), B: sn, C: nn})
	case glsl.BReflect:
		// I - 2*dot(N,I)*N
		n := args[0].typ.Components()
		si, sn := g.asSrc(args[0]), g.asSrc(args[1])
		d := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: dpOp(n), Dst: d.dst(), A: sn, B: si})
		d2 := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: OpADD, Dst: d2.dst(), A: d.src(), B: d.src()})
		nd := bcast(d2.src())
		nd.Neg = true
		g.emit(Inst{Op: OpMAD, Dst: res.dst(), A: sn, B: nd, C: si})
	case glsl.BRefract:
		// k = 1 - eta^2*(1 - dot(N,I)^2); k < 0 ? 0 : eta*I - (eta*dot(N,I)+sqrt(k))*N
		n := args[0].typ.Components()
		si, sn, seta := g.asSrc(args[0]), g.asSrc(args[1]), g.asSrc(args[2])
		d := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: dpOp(n), Dst: d.dst(), A: sn, B: si})
		dd := g.tempValue(glsl.T(glsl.KFloat))
		nd := d.src()
		nd.Neg = true
		g.emit(Inst{Op: OpMAD, Dst: dd.dst(), A: nd, B: d.src(), C: g.scalarConst(1)}) // 1 - d*d
		e2 := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: OpMUL, Dst: e2.dst(), A: seta, B: seta})
		k := g.tempValue(glsl.T(glsl.KFloat))
		ne2 := e2.src()
		ne2.Neg = true
		g.emit(Inst{Op: OpMAD, Dst: k.dst(), A: ne2, B: dd.src(), C: g.scalarConst(1)})
		sq := g.tempValue(glsl.T(glsl.KFloat))
		kc := k.src()
		g.emit(Inst{Op: OpMAX, Dst: sq.dst(), A: kc, B: g.scalarConst(0)})
		g.emit(Inst{Op: OpSQRT, Dst: sq.dst(), A: sq.src()})
		coef := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: OpMAD, Dst: coef.dst(), A: seta, B: d.src(), C: sq.src()})
		tv := g.tempValue(e.Type())
		nc := bcast(coef.src())
		nc.Neg = true
		ei := g.tempValue(e.Type())
		g.emit(Inst{Op: OpMUL, Dst: ei.dst(), A: si, B: bcast(seta)})
		g.emit(Inst{Op: OpMAD, Dst: tv.dst(), A: sn, B: nc, C: ei.src()})
		// k < 0 → 0
		cmp := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: OpSLT, Dst: cmp.dst(), A: k.src(), B: g.scalarConst(0)})
		g.emit(Inst{Op: OpSEL, Dst: res.dst(), A: bcast(cmp.src()), B: g.scalarConst(0), C: tv.src()})
	case glsl.BMatrixCompMult:
		for i := 0; i < res.nregs; i++ {
			g.emit(Inst{Op: OpMUL, Dst: DstReg(FileTemp, res.reg+i, e.Type().MatrixCols()), A: args[0].colSrc(i), B: args[1].colSrc(i)})
		}
	case glsl.BLessThan, glsl.BLessThanEqual, glsl.BGreaterThan, glsl.BGreaterThanEqual, glsl.BEqual, glsl.BNotEqual:
		ops := map[glsl.BuiltinOp]Op{
			glsl.BLessThan: OpSLT, glsl.BLessThanEqual: OpSLE,
			glsl.BGreaterThan: OpSGT, glsl.BGreaterThanEqual: OpSGE,
			glsl.BEqual: OpSEQ, glsl.BNotEqual: OpSNE,
		}
		g.emit(Inst{Op: ops[sig.Op], Dst: res.dst(), A: g.asSrc(args[0]), B: g.asSrc(args[1])})
	case glsl.BAny, glsl.BAll:
		n := args[0].typ.Components()
		sum := g.tempValue(glsl.T(glsl.KFloat))
		g.emit(Inst{Op: dpOp(n), Dst: sum.dst(), A: g.asSrc(args[0]), B: g.scalarConst(1)})
		thresh := float32(0.5)
		if sig.Op == glsl.BAll {
			thresh = float32(n) - 0.5
		}
		g.emit(Inst{Op: OpSGE, Dst: res.dst(), A: sum.src(), B: g.scalarConst(thresh)})
	case glsl.BNot:
		g.emit(Inst{Op: OpSEQ, Dst: res.dst(), A: g.asSrc(args[0]), B: g.scalarConst(0)})
	case glsl.BMul24:
		g.emit(Inst{Op: OpMUL24, Dst: res.dst(), A: g.asSrc(args[0]), B: g.asSrc(args[1])})
	default:
		return value{}, errAt(e.P, "builtin %q is not implemented by the back end", e.Name)
	}
	return res, nil
}

// genTexture lowers texture2D calls.
func (g *cgen) genTexture(e *glsl.Call) (value, error) {
	sv, err := g.genExpr(e.Args[0])
	if err != nil {
		return value{}, err
	}
	if sv.samplerIdx < 0 {
		return value{}, errAt(e.P, "texture2D sampler argument must be a sampler uniform")
	}
	coord, err := g.genExpr(e.Args[1])
	if err != nil {
		return value{}, err
	}
	// The bias argument (if present) is evaluated for completeness but has
	// no effect: GPGPU textures have a single mip level.
	if len(e.Args) == 3 {
		if _, err := g.genExpr(e.Args[2]); err != nil {
			return value{}, err
		}
	}
	res := g.tempValue(e.Type())
	g.emit(Inst{Op: OpTEX, Dst: res.dst(), A: g.asSrc(coord), SamplerIdx: uint8(sv.samplerIdx)})
	return res, nil
}

// genUserCall inlines a user function call, the way embedded GLSL
// compilers do (there is no call stack on this hardware class).
func (g *cgen) genUserCall(e *glsl.Call) (value, error) {
	fn := e.Func
	if g.inlineDepth >= maxInlineDepth {
		return value{}, errAt(e.P, "function inlining exceeds depth %d", maxInlineDepth)
	}
	g.inlineDepth++
	defer func() { g.inlineDepth-- }()

	savedPersist := g.persistWM

	// Bind parameters.
	type outCopy struct {
		param loc
		dst   lval
		typ   glsl.Type
	}
	var outs []outCopy
	savedBindings := make([]*binding, len(fn.Params))
	for i := range fn.Params {
		p := &fn.Params[i]
		savedBindings[i] = g.env[p.Sym]
		arg := e.Args[i]
		if p.DeclType.IsSampler() {
			av, err := g.genExpr(arg)
			if err != nil {
				return value{}, err
			}
			g.env[p.Sym] = &binding{samplerIdx: av.samplerIdx}
			continue
		}
		n := regsFor(p.DeclType)
		reg := g.allocPersist(n)
		pl := loc{file: FileTemp, reg: reg, nregs: n}
		g.env[p.Sym] = &binding{loc: pl, samplerIdx: -1}
		switch p.Qualifier {
		case glsl.ParamIn:
			av, err := g.genExpr(arg)
			if err != nil {
				return value{}, err
			}
			g.storeToLoc(pl, p.DeclType, av)
		case glsl.ParamOut, glsl.ParamInOut:
			dst, err := g.genLValue(arg)
			if err != nil {
				return value{}, err
			}
			if p.Qualifier == glsl.ParamInOut {
				cur := g.loadLValue(dst)
				g.storeToLoc(pl, p.DeclType, cur)
			}
			outs = append(outs, outCopy{param: pl, dst: dst, typ: p.DeclType})
		}
	}

	// Return slot.
	ic := &inlineCtx{retType: fn.Ret}
	var retVal value
	if fn.Ret.Kind != glsl.KVoid {
		n := regsFor(fn.Ret)
		reg := g.allocPersist(n)
		rl := loc{file: FileTemp, reg: reg, nregs: n}
		ic.retLoc = &rl
		retVal = value{typ: fn.Ret, file: FileTemp, reg: reg, nregs: n, swiz: IdentitySwiz, samplerIdx: -1}
	}
	g.inlineRet = append(g.inlineRet, ic)
	if err := g.genBlock(fn.Body); err != nil {
		return value{}, err
	}
	g.inlineRet = g.inlineRet[:len(g.inlineRet)-1]
	for _, idx := range ic.endBRs {
		g.prog.Insts[idx].Target = g.here()
	}

	// Copy out/inout parameters back.
	for _, oc := range outs {
		v := value{typ: oc.typ, file: oc.param.file, reg: oc.param.reg, nregs: oc.param.nregs, swiz: IdentitySwiz, samplerIdx: -1}
		g.storeLValue(oc.dst, v)
	}
	for i := range fn.Params {
		if savedBindings[i] != nil {
			g.env[fn.Params[i].Sym] = savedBindings[i]
		} else {
			delete(g.env, fn.Params[i].Sym)
		}
	}
	// Parameter and return registers: the return value must survive past
	// this call within the enclosing statement, so the return slot is NOT
	// released here; it was allocated below the statement's scratch reset
	// point and dies with the statement.
	_ = savedPersist
	return retVal, nil
}
