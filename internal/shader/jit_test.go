package shader

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/kernels"
)

// Differential testing of the closure-compiled backend against the
// reference interpreter: on fuzzed random IR programs and on the full
// generated kernel suite, both backends must produce bit-equal register
// state and equal Cycles/TexFetches/Discarded.

// diffSampler is the deterministic texture fetch both backends share.
func diffSampler(idx int, u, v float32) Vec4 {
	return Vec4{u + float32(idx), v * 0.5, u * v, 1}
}

// runDiff executes p on both backends with identical environments and
// fails the test on any observable divergence. Returns the interpreter Env
// for further inspection.
func runDiff(t *testing.T, p *Program, cost *CostModel, fill func(e *Env)) *Env {
	t.Helper()
	e1, e2 := NewEnv(p), NewEnv(p)
	e1.Sample, e2.Sample = diffSampler, diffSampler
	fill(e1)
	copy(e2.Uniforms, e1.Uniforms)
	copy(e2.Inputs, e1.Inputs)
	copy(e2.Temps, e1.Temps)
	copy(e2.Outputs, e1.Outputs)

	err1 := Run(p, e1, cost)
	c := p.Compiled(cost)
	if c == nil {
		t.Fatalf("program did not compile:\n%s", p.Disassemble())
	}
	err2 := c.Run(e2)
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("error divergence: interp %v, compiled %v\n%s", err1, err2, p.Disassemble())
	}
	if e1.Discarded != e2.Discarded {
		t.Fatalf("Discarded divergence: interp %v, compiled %v\n%s",
			e1.Discarded, e2.Discarded, p.Disassemble())
	}
	if e1.Cycles != e2.Cycles {
		t.Fatalf("Cycles divergence: interp %d, compiled %d\n%s",
			e1.Cycles, e2.Cycles, p.Disassemble())
	}
	if e1.TexFetches != e2.TexFetches {
		t.Fatalf("TexFetches divergence: interp %d, compiled %d\n%s",
			e1.TexFetches, e2.TexFetches, p.Disassemble())
	}
	diffBank(t, p, "output", e1.Outputs, e2.Outputs)
	diffBank(t, p, "temp", e1.Temps, e2.Temps)
	return e1
}

// diffBank compares a register bank bitwise, zero signs included. The one
// exception is NaN: which operand's NaN payload propagates through a
// float32 multiply depends on the Go compiler's operand ordering at each
// compilation site (x86 MULSS keeps the first NaN), so payload bits are
// codegen-defined even between two builds of the interpreter itself. All
// NaNs form one equivalence class; NaN-ness is closed under every IR op
// (comparisons, SGN, BRZ/KIL conditions ignore the payload), so no
// non-NaN value can diverge downstream of this allowance.
func diffBank(t *testing.T, p *Program, bank string, a, b []Vec4) {
	t.Helper()
	for r := range a {
		for c := 0; c < 4; c++ {
			if a[r][c] != a[r][c] && b[r][c] != b[r][c] {
				continue // both NaN: equivalent
			}
			if math.Float32bits(a[r][c]) != math.Float32bits(b[r][c]) {
				t.Fatalf("%s %d.%d divergence: interp %g (%#08x), compiled %g (%#08x)\n%s",
					bank, r, c, a[r][c], math.Float32bits(a[r][c]),
					b[r][c], math.Float32bits(b[r][c]), p.Disassemble())
			}
		}
	}
}

// fuzzValue produces register contents that exercise the numeric edge
// cases: zeros of both signs, infinities, exact integers, and ordinary
// fractions (0/0 divisions, comparisons at equality, quant24 truncation).
func fuzzValue(rng *rand.Rand) float32 {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return float32(math.Copysign(0, -1))
	case 2:
		return float32(math.Inf(1 - 2*rng.Intn(2)))
	case 3:
		return float32(rng.Intn(9) - 4)
	default:
		return float32(rng.Intn(2001)-1000) / 1000
	}
}

var fuzzALUOps = []Op{
	OpMOV, OpADD, OpSUB, OpMUL, OpDIV, OpMAD, OpMUL24,
	OpDP2, OpDP3, OpDP4, OpMIN, OpMAX, OpCLAMP,
	OpABS, OpSGN, OpFLR, OpCEIL, OpFRC, OpRCP, OpRSQ, OpSQRT,
	OpEX2, OpLG2, OpPOW, OpEXP, OpLOG,
	OpSIN, OpCOS, OpTAN, OpASIN, OpACOS, OpATAN, OpATAN2,
	OpSLT, OpSLE, OpSGT, OpSGE, OpSEQ, OpSNE, OpSEL, OpTEX,
}

// randomSrc builds a source operand over p's register banks; const-pool
// reads occasionally index past the pool to cover the zero-fill path.
func randomSrc(rng *rand.Rand, p *Program) Src {
	var s Src
	switch rng.Intn(6) {
	case 0:
		s.File, s.Reg = FileUniform, uint16(rng.Intn(p.NumUniform))
	case 1:
		s.File, s.Reg = FileInput, uint16(rng.Intn(p.NumInputs))
	case 2:
		s.File, s.Reg = FileOutput, uint16(rng.Intn(p.NumOutputs))
	case 3:
		s.File, s.Reg = FileConst, uint16(rng.Intn(len(p.Consts)+2))
	default:
		s.File, s.Reg = FileTemp, uint16(rng.Intn(p.NumTemps))
	}
	if rng.Intn(2) == 0 {
		s.Swiz = IdentitySwiz
	} else {
		for i := range s.Swiz {
			s.Swiz[i] = uint8(rng.Intn(4))
		}
	}
	s.Neg = rng.Intn(4) == 0
	return s
}

func randomDst(rng *rand.Rand, p *Program) Dst {
	var d Dst
	switch rng.Intn(8) {
	case 0:
		d.File, d.Reg = FileOutput, uint16(rng.Intn(p.NumOutputs))
	case 1:
		// Write to a read-only file: must be dropped by both backends.
		d.File, d.Reg = FileUniform, uint16(rng.Intn(p.NumUniform))
	default:
		d.File, d.Reg = FileTemp, uint16(rng.Intn(p.NumTemps))
	}
	d.Mask = uint8(rng.Intn(16)) // 0 (no-op write) through full
	return d
}

// randomProgram builds a random but always-terminating IR program.
// Branches only go forward (targets in (pc, n]), so every program halts;
// withCtl=false produces straight-line programs that exercise the
// precomputed-cycle-block path.
func randomProgram(rng *rand.Rand, withCtl bool) *Program {
	p := &Program{
		NumTemps:   1 + rng.Intn(4),
		NumInputs:  1 + rng.Intn(2),
		NumOutputs: 1 + rng.Intn(2),
		NumUniform: 1 + rng.Intn(2),
	}
	for i, nc := 0, rng.Intn(3); i < nc; i++ {
		p.Consts = append(p.Consts, [4]float32{
			fuzzValue(rng), fuzzValue(rng), fuzzValue(rng), fuzzValue(rng),
		})
	}
	n := 5 + rng.Intn(28)
	for i := 0; i < n; i++ {
		var in Inst
		r := rng.Intn(20)
		switch {
		case withCtl && r == 0:
			in.Op = OpBR
			in.Target = int32(i + 1 + rng.Intn(n-i))
		case withCtl && r == 1:
			in.Op = OpBRZ
			in.A = randomSrc(rng, p)
			in.Target = int32(i + 1 + rng.Intn(n-i))
		case withCtl && r == 2:
			in.Op = OpKIL
			in.A = randomSrc(rng, p)
		case withCtl && r == 3:
			in.Op = OpRET
		case r == 4:
			in.Op = OpNOP
		default:
			in.Op = fuzzALUOps[rng.Intn(len(fuzzALUOps))]
			in.Dst = randomDst(rng, p)
			in.A = randomSrc(rng, p)
			in.B = randomSrc(rng, p)
			in.C = randomSrc(rng, p)
			if in.Op == OpTEX {
				in.SamplerIdx = uint8(rng.Intn(2))
			}
		}
		p.Insts = append(p.Insts, in)
	}
	return p
}

// TestDifferentialJITFuzz drives quick-generated seeds through random IR
// programs on both backends. Half the programs are straight-line (the
// whole-program cycle-block path), half contain forward branches, KIL and
// early RET (the pc-threaded path).
func TestDifferentialJITFuzz(t *testing.T) {
	cost := DefaultCostModel()
	trial := 0
	check := func(seed int64) bool {
		trial++
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng, trial%2 == 0)
		for probe := 0; probe < 3; probe++ {
			runDiff(t, p, &cost, func(e *Env) {
				for i := range e.Uniforms {
					e.Uniforms[i] = Vec4{fuzzValue(rng), fuzzValue(rng), fuzzValue(rng), fuzzValue(rng)}
				}
				for i := range e.Inputs {
					e.Inputs[i] = Vec4{fuzzValue(rng), fuzzValue(rng), fuzzValue(rng), fuzzValue(rng)}
				}
			})
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 400,
		// Deterministic seeds: quick's default Rand is time-seeded, which
		// would make any divergence unreproducible.
		Rand: rand.New(rand.NewSource(20170327)),
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestJITStraightLineDetection pins the compile-mode split: generated
// GPGPU kernels (fully unrolled) take the precomputed-cycles path, and
// programs with control flow do not.
func TestJITStraightLineDetection(t *testing.T) {
	cost := DefaultCostModel()
	straight := &Program{NumTemps: 1, NumOutputs: 1, Insts: []Inst{
		{Op: OpMOV, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileTemp, 0)},
		{Op: OpRET},
	}}
	c := straight.Compiled(&cost)
	if c == nil || !c.Straight() {
		t.Fatal("trailing-RET program should compile straight-line")
	}
	if want := cost.StaticCycles(straight); c.PrecomputedCycles() != want {
		t.Fatalf("precomputed cycles %d, want StaticCycles %d", c.PrecomputedCycles(), want)
	}
	branchy := &Program{NumTemps: 1, NumOutputs: 1, Insts: []Inst{
		{Op: OpBRZ, A: SrcReg(FileTemp, 0), Target: 2},
		{Op: OpMOV, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileTemp, 0)},
		{Op: OpRET},
	}}
	if c := branchy.Compiled(&cost); c == nil || c.Straight() {
		t.Fatal("branchy program must not take the straight-line path")
	}
	midRet := &Program{NumTemps: 1, NumOutputs: 1, Insts: []Inst{
		{Op: OpRET},
		{Op: OpMOV, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileTemp, 0)},
	}}
	if c := midRet.Compiled(&cost); c == nil || c.Straight() {
		t.Fatal("mid-program RET is an early exit, not straight-line")
	}
}

// TestJITCompiledCache pins the lazy one-entry cache: same cost model
// returns the same Compiled, a different cost model recompiles.
func TestJITCompiledCache(t *testing.T) {
	cost1, cost2 := DefaultCostModel(), DefaultCostModel()
	cost2.Costs[OpMOV] = 9
	p := &Program{NumTemps: 1, NumOutputs: 1, Insts: []Inst{
		{Op: OpMOV, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileTemp, 0)},
	}}
	a := p.Compiled(&cost1)
	if a == nil || p.Compiled(&cost1) != a {
		t.Fatal("same cost model must return the cached Compiled")
	}
	b := p.Compiled(&cost2)
	if b == a {
		t.Fatal("different cost model must recompile")
	}
	if a.PrecomputedCycles() == b.PrecomputedCycles() {
		t.Fatal("recompile must pick up the new costs")
	}
}

// kernelSuite compiles every generated kernel source (both encoding
// options) through the full front end.
func kernelSuite(t *testing.T) map[string]*Program {
	t.Helper()
	progs := make(map[string]*Program)
	addSrc := func(name, src string, stage glsl.ShaderStage) {
		cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: stage})
		if err != nil {
			t.Fatalf("%s: frontend: %v", name, err)
		}
		p, err := Compile(cs)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		progs[name] = p
	}
	for _, o := range []struct {
		tag  string
		opts kernels.Options
	}{{"fp32", kernels.DefaultOptions}, {"fp24", kernels.FP24Options}} {
		addSrc("sum/"+o.tag, kernels.Sum(o.opts), glsl.StageFragment)
		addSrc("sumdep/"+o.tag, kernels.SumDep(o.opts), glsl.StageFragment)
		sgemm, err := kernels.SgemmPass(64, 16, o.opts)
		if err != nil {
			t.Fatal(err)
		}
		addSrc("sgemm16/"+o.tag, sgemm, glsl.StageFragment)
		addSrc("saxpy/"+o.tag, kernels.Saxpy(o.opts), glsl.StageFragment)
		addSrc("conv3x3/"+o.tag, kernels.Conv3x3(16, 16, o.opts), glsl.StageFragment)
		addSrc("transpose/"+o.tag, kernels.Transpose(o.opts), glsl.StageFragment)
		reduce, err := kernels.Reduce2x2(16, o.opts)
		if err != nil {
			t.Fatal(err)
		}
		addSrc("reduce2x2/"+o.tag, reduce, glsl.StageFragment)
		addSrc("jacobi/"+o.tag, kernels.Jacobi(16, 16, o.opts), glsl.StageFragment)
	}
	addSrc("quadvs", kernels.VertexShader, glsl.StageVertex)
	return progs
}

// TestDifferentialJITKernelSuite runs every generated kernel on both
// backends with randomised register files: bit-equal outputs and equal
// counters across the whole suite.
func TestDifferentialJITKernelSuite(t *testing.T) {
	cost := DefaultCostModel()
	rng := rand.New(rand.NewSource(20170327))
	for name, p := range kernelSuite(t) {
		t.Run(name, func(t *testing.T) {
			for probe := 0; probe < 4; probe++ {
				runDiff(t, p, &cost, func(e *Env) {
					for i := range e.Uniforms {
						e.Uniforms[i] = Vec4{
							rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32(),
						}
					}
					for i := range e.Inputs {
						e.Inputs[i] = Vec4{
							rng.Float32() * 16, rng.Float32() * 16, 0.5, 1,
						}
					}
				})
			}
		})
	}
}

// TestJITKernelsCompileStraightLine asserts the perf-critical property the
// closure backend was built for: the fully-unrolled GPGPU kernels compile
// to the branch-free path with the whole per-invocation cycle cost
// precomputed. jacobi is the deliberate exception — its Dirichlet boundary
// ternary lowers to real data-dependent branches — and must take the
// pc-threaded path instead.
func TestJITKernelsCompileStraightLine(t *testing.T) {
	cost := DefaultCostModel()
	for name, p := range kernelSuite(t) {
		c := p.Compiled(&cost)
		if c == nil {
			t.Fatalf("%s: did not compile", name)
		}
		branchy := name == "jacobi/fp32" || name == "jacobi/fp24"
		if branchy {
			if c.Straight() {
				t.Errorf("%s: boundary branches should preclude straight-line compilation", name)
			}
			continue
		}
		if !c.Straight() {
			t.Errorf("%s: expected straight-line compilation", name)
		}
		if want := cost.StaticCycles(p); c.PrecomputedCycles() != want {
			t.Errorf("%s: precomputed cycles %d, want %d", name, c.PrecomputedCycles(), want)
		}
	}
}

// TestJITDiscardParity covers the KIL path end to end: a discarding
// program must set Discarded, stop charging cycles at the KIL, and agree
// between backends on both the taken and not-taken branches.
func TestJITDiscardParity(t *testing.T) {
	cost := DefaultCostModel()
	src := `precision mediump float;
varying vec2 v;
void main() {
	if (v.x > 0.5) discard;
	gl_FragColor = vec4(v.y);
}`
	cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float32{0.1, 0.9} {
		e := runDiff(t, p, &cost, func(e *Env) {
			e.Inputs[0] = Vec4{x, 0.25, 0, 0}
		})
		if want := x > 0.5; e.Discarded != want {
			t.Fatalf("x=%g: Discarded=%v, want %v", x, e.Discarded, want)
		}
	}
}

// TestExecutorFallback pins the escape hatches: with useJIT=false the
// Executor is the interpreter, and both functions produce identical
// results for the same program.
func TestExecutorFallback(t *testing.T) {
	cost := DefaultCostModel()
	p := &Program{NumTemps: 1, NumOutputs: 1, Consts: [][4]float32{{2, 3, 4, 5}}, Insts: []Inst{
		{Op: OpADD, Dst: DstReg(FileOutput, 0, 4),
			A: SrcReg(FileConst, 0), B: SrcReg(FileConst, 0)},
	}}
	for _, jit := range []bool{false, true} {
		e := NewEnv(p)
		if err := Executor(p, &cost, jit, false)(e); err != nil {
			t.Fatal(err)
		}
		if e.Outputs[0] != (Vec4{4, 6, 8, 10}) {
			t.Fatalf("jit=%v: got %v", jit, e.Outputs[0])
		}
		if e.Cycles != cost.StaticCycles(p) {
			t.Fatalf("jit=%v: cycles %d", jit, e.Cycles)
		}
	}
}

// TestJITDumpMentionsDecisions smoke-tests the glslc -compiled dump.
func TestJITDumpMentionsDecisions(t *testing.T) {
	cost := DefaultCostModel()
	p := &Program{NumTemps: 1, NumOutputs: 1, Insts: []Inst{
		{Op: OpMOV, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileTemp, 0)},
		{Op: OpSIN, Dst: Dst{File: FileTemp, Reg: 0, Mask: 0x3}, A: SrcReg(FileTemp, 0)},
	}}
	c := p.Compiled(&cost)
	var sb stringsBuilder
	c.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"straight-line", "lane=f32", "lane=f64", "dst=full", "dst=mask", "a=direct"} {
		if !containsStr(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// tiny local helpers to avoid importing strings/bytes just for the dump test
type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *stringsBuilder) String() string              { return string(s.b) }

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

var _ = fmt.Sprintf // keep fmt for debug convenience in failures
