package shader

// RGBA8 channel quantisation, shared by the rasteriser (encoding fragment
// colours into framebuffer bytes) and the OpQUANT IR instruction (modelling
// that round trip inside a fused program). Pass fusion replaces an
// intermediate render-to-texture + sample with OpQUANT on the producing
// stage's colour value; for the fused pipeline to be bit-identical to the
// unfused one, the instruction must apply the exact encode/decode the
// framebuffer and sampler would. Keeping the only definitions here — and
// having internal/gles delegate to them — guarantees there is a single
// compiled instance of each conversion, so no cross-package floating-point
// contraction differences can creep in.

// EncodeChannelByte converts a float colour channel to an 8-bit framebuffer
// byte with round-to-nearest and clamping, as glTexImage2D/rendering does.
func EncodeChannelByte(v float32) byte {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return byte(v*255 + 0.5)
}

// decodeChannelTable maps a byte to the float32 the sampler produces for
// it. Built exactly like the gles sampler's byte→float table: a single
// multiply by 1/255, no FMA opportunity.
var decodeChannelTable = func() (t [256]float32) {
	const inv = float32(1.0 / 255.0)
	for i := range t {
		t[i] = float32(i) * inv
	}
	return
}()

// DecodeChannelByte converts a framebuffer byte back to the float32 value a
// texture sample of it returns.
func DecodeChannelByte(b byte) float32 { return decodeChannelTable[b] }

// QuantizeChannel is the full store-then-sample round trip for one channel:
// decode(encode(v)). OpQUANT applies this per masked component.
func QuantizeChannel(v float32) float32 {
	return decodeChannelTable[EncodeChannelByte(v)]
}
