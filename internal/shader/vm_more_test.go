package shader

import (
	"math"
	"strings"
	"testing"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/kernels"
)

// Second coverage pass for the back end: builtin numeric semantics,
// VM safety rails, and IR plumbing details.

func TestBuiltinNumericEquivalence(t *testing.T) {
	// Each case: expression over uniform x (and y), reference function.
	cases := []struct {
		expr string
		ref  func(x, y float64) float64
	}{
		{"sin(x)", func(x, y float64) float64 { return math.Sin(x) }},
		{"cos(x)", func(x, y float64) float64 { return math.Cos(x) }},
		{"tan(x)", func(x, y float64) float64 { return math.Tan(x) }},
		{"asin(x - 0.5)", func(x, y float64) float64 { return math.Asin(x - 0.5) }},
		{"acos(x - 0.5)", func(x, y float64) float64 { return math.Acos(x - 0.5) }},
		{"atan(x)", func(x, y float64) float64 { return math.Atan(x) }},
		{"atan(x, y)", func(x, y float64) float64 { return math.Atan2(x, y) }},
		{"exp(x)", func(x, y float64) float64 { return math.Exp(x) }},
		{"log(x + 0.5)", func(x, y float64) float64 { return math.Log(x + 0.5) }},
		{"exp2(x)", func(x, y float64) float64 { return math.Exp2(x) }},
		{"log2(x + 0.5)", func(x, y float64) float64 { return math.Log2(x + 0.5) }},
		{"pow(x + 0.5, y)", func(x, y float64) float64 { return math.Pow(x+0.5, y) }},
		{"inversesqrt(x + 0.5)", func(x, y float64) float64 { return 1 / math.Sqrt(x+0.5) }},
		{"radians(x * 100.0)", func(x, y float64) float64 { return x * 100 * math.Pi / 180 }},
		{"degrees(x)", func(x, y float64) float64 { return x * 180 / math.Pi }},
		{"sign(x - 0.5)", func(x, y float64) float64 {
			switch {
			case x > 0.5:
				return 1
			case x < 0.5:
				return -1
			}
			return 0
		}},
		{"ceil(x * 3.0)", func(x, y float64) float64 { return math.Ceil(x * 3) }},
		{"min(x, y)", math.Min},
		{"max(x, y)", math.Max},
		{"mix(x, y, 0.25)", func(x, y float64) float64 { return x + 0.25*(y-x) }},
	}
	inputs := [][2]float64{{0.1, 0.7}, {0.5, 0.25}, {0.9, 0.9}, {0.33, 0.05}}
	for _, c := range cases {
		p := compileFrag(t, hdr+`
uniform float x;
uniform float y;
void main(){ gl_FragColor = vec4(`+c.expr+`); }`)
		cost := DefaultCostModel()
		env := NewEnv(p)
		ux, _ := p.LookupUniform("x")
		out, _ := p.LookupOutput("gl_FragColor")
		var uy UniformInfo
		if u, ok := p.LookupUniform("y"); ok {
			uy = u
		}
		for _, in := range inputs {
			env.Reset()
			env.Uniforms[ux.Reg] = Vec4{float32(in[0])}
			if uy.Regs > 0 {
				env.Uniforms[uy.Reg] = Vec4{float32(in[1])}
			}
			if err := Run(p, env, &cost); err != nil {
				t.Fatalf("%s: %v", c.expr, err)
			}
			want := c.ref(in[0], in[1])
			got := float64(env.Outputs[out.Reg][0])
			if math.Abs(got-want) > 1e-4*math.Max(1, math.Abs(want)) {
				t.Errorf("%s at %v = %g, want %g", c.expr, in, got, want)
			}
		}
	}
}

func TestVectorRelationalBuiltins(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform vec3 a;
uniform vec3 b;
void main(){
	bvec3 lt = lessThan(a, b);
	bvec3 ge = greaterThanEqual(a, b);
	float anyLt = any(lt) ? 1.0 : 0.0;
	float allGe = all(ge) ? 1.0 : 0.0;
	bvec3 n = not(lt);
	gl_FragColor = vec4(anyLt, allGe, n.x ? 1.0 : 0.0, float(lt.y));
}`)
	got := runFrag(t, p, map[string][]float32{"a": {1, 5, 3}, "b": {2, 4, 3}}, nil, nil)
	// lt = (T,F,F); ge = (F,T,T); any(lt)=1; all(ge)=0; not(lt).x=0; lt.y=0
	wantVec(t, got, [4]float32{1, 0, 0, 0}, 0)
	got = runFrag(t, p, map[string][]float32{"a": {5, 5, 5}, "b": {1, 1, 1}}, nil, nil)
	// lt = (F,F,F); ge = (T,T,T)
	wantVec(t, got, [4]float32{0, 1, 1, 0}, 0)
}

func TestGeometricBuiltinsReflectRefractFaceforward(t *testing.T) {
	p := compileFrag(t, hdr+`
void main(){
	vec3 i = normalize(vec3(1.0, -1.0, 0.0));
	vec3 n = vec3(0.0, 1.0, 0.0);
	vec3 r = reflect(i, n);
	vec3 ff = faceforward(n, i, n);
	vec3 rf = refract(i, n, 0.9);
	gl_FragColor = vec4(r.y, ff.y, rf.y, length(rf));
}`)
	got := runFrag(t, p, nil, nil, nil)
	s := float32(math.Sqrt2 / 2)
	// reflect: i - 2*dot(n,i)*n: dot = -s; r.y = -s + 2s = s.
	if !approx(got[0], s, 1e-5) {
		t.Errorf("reflect.y = %g, want %g", got[0], s)
	}
	// faceforward: dot(n, i) < 0 -> returns n: ff.y = 1.
	if got[1] != 1 {
		t.Errorf("faceforward.y = %g, want 1", got[1])
	}
	// refract result is unit length for these inputs and eta<1.
	if !approx(got[3], 1, 1e-4) {
		t.Errorf("|refract| = %g, want 1", got[3])
	}
	if got[2] >= 0 {
		t.Errorf("refract.y = %g, want negative (bending into the surface)", got[2])
	}
}

func TestMatrixCompMult(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform mat2 a;
uniform mat2 b;
void main(){
	mat2 c = matrixCompMult(a, b);
	gl_FragColor = vec4(c[0], c[1]);
}`)
	got := runFrag(t, p,
		map[string][]float32{
			"a": {1, 2, 0, 0, 3, 4, 0, 0}, // columns padded to vec4 rows
			"b": {5, 6, 0, 0, 7, 8, 0, 0},
		}, nil, nil)
	wantVec(t, got, [4]float32{5, 12, 21, 32}, 1e-5)
}

func TestVMRunawayBranchProtection(t *testing.T) {
	// Hand-craft an infinite loop: BR 0.
	p := &Program{
		Stage: glsl.StageFragment,
		Insts: []Inst{{Op: OpBR, Target: 0}},
	}
	env := NewEnv(p)
	cost := DefaultCostModel()
	err := Run(p, env, &cost)
	if err == nil {
		t.Fatal("infinite branch loop not detected")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error: %v", err)
	}
}

func TestVMWriteToReadOnlyFileIgnored(t *testing.T) {
	// A (buggy) instruction writing to the uniform file must not panic or
	// corrupt state.
	p := &Program{
		Stage:      glsl.StageFragment,
		NumUniform: 1,
		Insts: []Inst{
			{Op: OpMOV, Dst: Dst{File: FileUniform, Reg: 0, Mask: MaskAll}, A: SrcReg(FileConst, 0)},
			{Op: OpRET},
		},
		Consts: [][4]float32{{9, 9, 9, 9}},
	}
	env := NewEnv(p)
	env.Uniforms[0] = Vec4{1, 2, 3, 4}
	cost := DefaultCostModel()
	if err := Run(p, env, &cost); err != nil {
		t.Fatal(err)
	}
	if env.Uniforms[0] != (Vec4{1, 2, 3, 4}) {
		t.Error("write to uniform file not ignored")
	}
}

func TestSwizzleAndNegationSemantics(t *testing.T) {
	p := &Program{
		Stage:    glsl.StageFragment,
		NumTemps: 1, NumOutputs: 1,
		Outputs: []VarInfo{{Name: "gl_FragColor", Reg: 0, Components: 4}},
		Consts:  [][4]float32{{1, 2, 3, 4}},
		Insts: []Inst{
			{Op: OpMOV, Dst: DstReg(FileOutput, 0, 4),
				A: Src{File: FileConst, Reg: 0, Swiz: [4]uint8{3, 2, 1, 0}, Neg: true}},
			{Op: OpRET},
		},
	}
	env := NewEnv(p)
	cost := DefaultCostModel()
	if err := Run(p, env, &cost); err != nil {
		t.Fatal(err)
	}
	if env.Outputs[0] != (Vec4{-4, -3, -2, -1}) {
		t.Errorf("swizzled+negated read = %v", env.Outputs[0])
	}
}

func TestWriteMaskPreservesComponents(t *testing.T) {
	p := compileFrag(t, hdr+`
void main(){
	vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
	v.yw = vec2(9.0, 8.0);
	gl_FragColor = v;
}`)
	got := runFrag(t, p, nil, nil, nil)
	wantVec(t, got, [4]float32{1, 9, 3, 8}, 0)
}

func TestEnvReuseAcrossInvocations(t *testing.T) {
	p := compileFrag(t, hdr+`
uniform float x;
void main(){
	float acc = 0.0;
	acc += x;
	gl_FragColor = vec4(acc);
}`)
	env := NewEnv(p)
	cost := DefaultCostModel()
	u, _ := p.LookupUniform("x")
	out, _ := p.LookupOutput("gl_FragColor")
	for i := 1; i <= 3; i++ {
		env.Reset()
		env.Uniforms[u.Reg] = Vec4{float32(i)}
		if err := Run(p, env, &cost); err != nil {
			t.Fatal(err)
		}
		if env.Outputs[out.Reg][0] != float32(i) {
			t.Fatalf("invocation %d leaked state: %v", i, env.Outputs[out.Reg])
		}
	}
	// Cycles accumulate monotonically across runs.
	if env.Cycles <= 0 {
		t.Error("no cycles accounted")
	}
}

func TestDisassembleCoversAllEmittedOps(t *testing.T) {
	p := compileFrag(t, "#extension GL_EXT_mul24 : enable\n"+hdr+`
uniform sampler2D s;
uniform float u;
varying vec2 vc;
void main(){
	vec4 t = texture2D(s, vc);
	float a = mul24(u, t.x);
	float b = clamp(sin(a) * sqrt(u), 0.0, 1.0);
	if (b > 0.5) { discard; }
	float c = dot(t.xy, vc);
	gl_FragColor = vec4(a, b, c, mod(u, 2.0));
}`)
	d := p.Disassemble()
	for _, mnemonic := range []string{"tex", "mul24", "clamp", "sin", "sqrt", "kil", "dp2", "mad", "flr"} {
		if !strings.Contains(d, mnemonic) {
			t.Errorf("disassembly missing %q:\n%s", mnemonic, d)
		}
	}
}

func TestInlineDepthLimit(t *testing.T) {
	// 70 nested calls exceed maxInlineDepth: the chain f69 -> f68 -> ...
	var sb strings.Builder
	sb.WriteString(hdr)
	sb.WriteString("float f0(float x){ return x + 1.0; }\n")
	for i := 1; i < 70; i++ {
		sb.WriteString("float f")
		sb.WriteString(itoa(i))
		sb.WriteString("(float x){ return f")
		sb.WriteString(itoa(i - 1))
		sb.WriteString("(x) + 1.0; }\n")
	}
	sb.WriteString("void main(){ gl_FragColor = vec4(f69(0.0)); }\n")
	cs, err := glsl.Frontend(sb.String(), glsl.CompileOptions{Stage: glsl.StageFragment})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(cs); err == nil {
		t.Error("70-deep inline chain accepted")
	} else if !strings.Contains(err.Error(), "depth") {
		t.Errorf("error: %v", err)
	}
}

func TestSinglePassSgemmExceedsDeviceLimits(t *testing.T) {
	// The §III motivation: a 1024-wide dot product in one kernel unrolls
	// to thousands of instructions and texture fetches, far past both
	// device profiles' limits; the block-16 multi-pass kernel fits.
	src, err := kernels.SgemmSinglePass(1024, kernels.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(cs)
	if err != nil {
		t.Fatal(err)
	}
	if p.TexInstructions != 2048 {
		t.Errorf("single-pass tex fetches = %d, want 2048", p.TexInstructions)
	}
	lim := Limits{MaxInstructions: 512, MaxTexInstructions: 40}
	if err := p.CheckLimits(lim); err == nil {
		t.Fatal("single-pass 1024 sgemm passed embedded limits")
	}
	// The blocked kernel fits the same limits.
	src, err = kernels.SgemmPass(1024, 16, kernels.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	cs, err = glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
	if err != nil {
		t.Fatal(err)
	}
	p, err = Compile(cs)
	if err != nil {
		t.Fatal(err)
	}
	if p.TexInstructions != 33 {
		t.Errorf("block-16 tex fetches = %d, want 33", p.TexInstructions)
	}
	if err := p.CheckLimits(lim); err != nil {
		t.Errorf("block-16 kernel rejected: %v", err)
	}
}

func TestCostModelTranscendentalsCostMore(t *testing.T) {
	cm := DefaultCostModel()
	cheap := cm.Costs[OpADD]
	for _, op := range []Op{OpSIN, OpCOS, OpEXP, OpLOG, OpPOW, OpDIV, OpSQRT, OpRSQ, OpTAN, OpATAN2} {
		if cm.Costs[op] <= cheap {
			t.Errorf("%s cost %d not above ADD cost %d", op, cm.Costs[op], cheap)
		}
	}
	if cm.Costs[OpMUL24] >= cm.Costs[OpMUL] {
		t.Error("mul24 not cheaper than mul")
	}
	if cm.Costs[OpMAD] != cm.Costs[OpMUL] {
		t.Error("mad should cost the same as mul (fused)")
	}
}

func TestLimitErrorMessage(t *testing.T) {
	e := &LimitError{What: "instructions", Used: 600, Limit: 512}
	msg := e.Error()
	for _, want := range []string{"instructions", "600", "512"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}
