package shader

import (
	"fmt"

	"gles2gpgpu/internal/glsl"
)

// Compile lowers a checked shader to IR. Limits are enforced separately via
// Program.CheckLimits so callers can compile once and validate against
// several device profiles.
func Compile(cs *glsl.CheckedShader) (*Program, error) {
	g := &cgen{
		cs: cs,
		prog: &Program{
			Stage:       cs.Stage,
			UsesDiscard: cs.UsesDiscard,
		},
		env:      make(map[*glsl.Symbol]*binding),
		constMap: make(map[[4]float32]int),
	}
	if err := g.run(); err != nil {
		return nil, err
	}
	g.prog.WritesBeforeReads, g.prog.OutputsAlwaysWritten = analyzeLiveness(g.prog)
	return g.prog, nil
}

// binding maps a GLSL symbol to its IR location or compile-time constant.
type binding struct {
	cval *glsl.ConstValue // set for const symbols and unrolled loop indices
	loc  loc
	// samplerIdx is >= 0 for sampler uniforms.
	samplerIdx int
}

// loc is a register-file location spanning one or more registers.
type loc struct {
	file  RegFile
	reg   int
	nregs int
}

// value is the result of expression codegen.
type value struct {
	typ  glsl.Type
	cval *glsl.ConstValue // non-nil for compile-time constants

	file  RegFile
	reg   int
	nregs int
	swiz  [4]uint8
	neg   bool

	samplerIdx int // for sampler-typed values
}

func (v value) src() Src {
	return Src{File: v.file, Reg: uint16(v.reg), Swiz: v.swiz, Neg: v.neg}
}

// colSrc returns the source operand for column i of a matrix value.
func (v value) colSrc(i int) Src {
	return Src{File: v.file, Reg: uint16(v.reg + i), Swiz: IdentitySwiz, Neg: v.neg}
}

// lval is a resolved assignment target: destination components comps[j]
// receive source component j.
type lval struct {
	file  RegFile
	reg   int
	comps []int
	typ   glsl.Type
	nregs int // >1 for whole-matrix targets
}

type cgen struct {
	cs   *glsl.CheckedShader
	prog *Program

	env      map[*glsl.Symbol]*binding
	constMap map[[4]float32]int

	// Temp register allocation: persistent watermark for named locals
	// (stack discipline per block) and a scratch pointer reset per
	// statement.
	persistWM int
	scratch   int
	maxTemp   int

	nextUniform int
	nextInput   int
	nextOutput  int

	// inlineRet tracks the return slot and end-label of the function
	// currently being inlined (nil at main level).
	inlineRet []*inlineCtx
	// loopEnds tracks (continueLabel, breakLabel) fixup lists.
	loopCtx []*loopCtx

	inlineDepth int

	// curPos is the GLSL source position attributed to emitted
	// instructions: the statement being lowered, refined to the
	// expression node while inside genExpr.
	curPos glsl.Pos
}

type inlineCtx struct {
	retLoc  *loc // nil for void
	retType glsl.Type
	endBRs  []int // BR instructions to patch to the inline end
}

type loopCtx struct {
	breakBRs    []int
	continueBRs []int
}

const maxInlineDepth = 64

// regsFor returns how many registers a type occupies.
func regsFor(t glsl.Type) int {
	per := 1
	if t.IsMatrix() {
		per = t.MatrixCols()
	}
	if t.ArrayLen > 0 {
		return per * t.ArrayLen
	}
	return per
}

func (g *cgen) run() error {
	// Interface allocation in declaration order.
	for _, d := range g.cs.Prog.Decls {
		gd, ok := d.(*glsl.GlobalDecl)
		if !ok {
			continue
		}
		switch gd.Storage {
		case glsl.StorUniform:
			b := &binding{samplerIdx: -1}
			n := regsFor(gd.DeclType)
			b.loc = loc{file: FileUniform, reg: g.nextUniform, nregs: n}
			if gd.DeclType.IsSampler() {
				b.samplerIdx = len(g.prog.Samplers)
				g.prog.Samplers = append(g.prog.Samplers, gd.Name)
			}
			g.prog.Uniforms = append(g.prog.Uniforms, UniformInfo{
				Name: gd.Name, Type: gd.DeclType, Reg: g.nextUniform, Regs: n,
				SamplerIdx: b.samplerIdx,
			})
			g.nextUniform += n
			g.env[gd.Sym] = b
		case glsl.StorAttribute:
			if g.cs.Stage != glsl.StageVertex {
				return errAt(gd.P, "attribute outside vertex shader")
			}
			g.bindInput(gd.Sym, gd.Name, gd.DeclType)
		case glsl.StorVarying:
			if g.cs.Stage == glsl.StageVertex {
				g.bindOutput(gd.Sym, gd.Name, gd.DeclType)
			} else {
				g.bindInput(gd.Sym, gd.Name, gd.DeclType)
			}
		case glsl.StorConst:
			g.env[gd.Sym] = &binding{cval: gd.Sym.Const, samplerIdx: -1}
		case glsl.StorNone:
			n := regsFor(gd.DeclType)
			reg := g.allocPersist(n)
			g.env[gd.Sym] = &binding{loc: loc{file: FileTemp, reg: reg, nregs: n}, samplerIdx: -1}
		}
	}
	// Global initializers for plain globals.
	for _, d := range g.cs.Prog.Decls {
		gd, ok := d.(*glsl.GlobalDecl)
		if !ok || gd.Storage != glsl.StorNone || gd.Init == nil {
			continue
		}
		g.resetScratch()
		v, err := g.genExpr(gd.Init)
		if err != nil {
			return err
		}
		b := g.env[gd.Sym]
		g.storeToLoc(b.loc, gd.DeclType, v)
	}

	// Inline main.
	g.resetScratch()
	if err := g.genBlock(g.cs.Main.Body); err != nil {
		return err
	}
	g.emit(Inst{Op: OpRET})

	g.prog.NumTemps = g.maxTemp
	g.prog.NumInputs = g.nextInput
	g.prog.NumOutputs = g.nextOutput
	g.prog.NumUniform = g.nextUniform
	for i := range g.prog.Insts {
		if g.prog.Insts[i].Op == OpTEX {
			g.prog.TexInstructions++
		}
	}
	return nil
}

// Output register layout: vertex shaders write gl_Position to a register
// named "gl_Position"; each varying gets its own named output. Fragment
// shaders write gl_FragColor to the output named "gl_FragColor". The
// rasteriser and framebuffer stage look registers up by name, so ordering
// is irrelevant.

func (g *cgen) bindInput(sym *glsl.Symbol, name string, t glsl.Type) {
	n := regsFor(t)
	g.env[sym] = &binding{loc: loc{file: FileInput, reg: g.nextInput, nregs: n}, samplerIdx: -1}
	g.prog.Inputs = append(g.prog.Inputs, VarInfo{Name: name, Type: t, Reg: g.nextInput, Components: t.Components()})
	g.nextInput += n
}

func (g *cgen) bindOutput(sym *glsl.Symbol, name string, t glsl.Type) {
	n := regsFor(t)
	g.env[sym] = &binding{loc: loc{file: FileOutput, reg: g.nextOutput, nregs: n}, samplerIdx: -1}
	g.prog.Outputs = append(g.prog.Outputs, VarInfo{Name: name, Type: t, Reg: g.nextOutput, Components: t.Components()})
	g.nextOutput += n
}

// builtinVarBinding lazily allocates the register for a gl_* variable.
func (g *cgen) builtinVarBinding(sym *glsl.Symbol) *binding {
	if b, ok := g.env[sym]; ok {
		return b
	}
	var b *binding
	switch sym.Name {
	case "gl_Position", "gl_PointSize", "gl_FragColor":
		n := regsFor(sym.Type)
		b = &binding{loc: loc{file: FileOutput, reg: g.nextOutput, nregs: n}, samplerIdx: -1}
		g.prog.Outputs = append(g.prog.Outputs, VarInfo{Name: sym.Name, Type: sym.Type, Reg: g.nextOutput, Components: sym.Type.Components()})
		g.nextOutput += n
	default: // gl_FragCoord, gl_FrontFacing, gl_PointCoord
		n := regsFor(sym.Type)
		b = &binding{loc: loc{file: FileInput, reg: g.nextInput, nregs: n}, samplerIdx: -1}
		g.prog.Inputs = append(g.prog.Inputs, VarInfo{Name: sym.Name, Type: sym.Type, Reg: g.nextInput, Components: sym.Type.Components()})
		g.nextInput += n
	}
	g.env[sym] = b
	return b
}

func errAt(p glsl.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...))
}

// Register allocation.

func (g *cgen) allocPersist(n int) int {
	r := g.persistWM
	g.persistWM += n
	if g.scratch < g.persistWM {
		g.scratch = g.persistWM
	}
	if g.persistWM > g.maxTemp {
		g.maxTemp = g.persistWM
	}
	return r
}

func (g *cgen) allocScratch(n int) int {
	r := g.scratch
	g.scratch += n
	if g.scratch > g.maxTemp {
		g.maxTemp = g.scratch
	}
	return r
}

func (g *cgen) resetScratch() { g.scratch = g.persistWM }

func (g *cgen) emit(in Inst) int {
	in.SrcPos = g.curPos
	g.prog.Insts = append(g.prog.Insts, in)
	return len(g.prog.Insts) - 1
}

func (g *cgen) here() int32 { return int32(len(g.prog.Insts)) }

// constIdx interns a constant vector in the pool.
func (g *cgen) constIdx(c [4]float32) int {
	if i, ok := g.constMap[c]; ok {
		return i
	}
	i := len(g.prog.Consts)
	g.prog.Consts = append(g.prog.Consts, c)
	g.constMap[c] = i
	return i
}

// constSrc materialises a ConstValue as a const-pool operand.
func (g *cgen) constSrc(cv *glsl.ConstValue) Src {
	var c [4]float32
	for i := 0; i < 4 && i < len(cv.Vals); i++ {
		c[i] = float32(cv.Vals[i])
	}
	if len(cv.Vals) == 1 {
		// Broadcast scalars so any swizzle works.
		c[1], c[2], c[3] = c[0], c[0], c[0]
	}
	return SrcReg(FileConst, g.constIdx(c))
}

// scalarConst returns a const-pool operand broadcasting v.
func (g *cgen) scalarConst(v float32) Src {
	return SrcReg(FileConst, g.constIdx([4]float32{v, v, v, v}))
}

// asSrc converts a (non-matrix) value to a source operand, materialising
// constants.
func (g *cgen) asSrc(v value) Src {
	if v.cval != nil {
		s := g.constSrc(v.cval)
		s.Neg = v.neg
		return s
	}
	return v.src()
}

// Statements.

func (g *cgen) genBlock(b *glsl.Block) error {
	// Locals declared in this block release their registers on exit.
	// Their symbols cannot be referenced afterwards (scoping is checked
	// by sema), so stale env entries are harmless.
	savedPersist := g.persistWM
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	g.persistWM = savedPersist
	g.resetScratch()
	return nil
}

func (g *cgen) genStmt(s glsl.Stmt) error {
	g.resetScratch()
	if p := s.Pos(); p.Line != 0 {
		g.curPos = p
	}
	switch s := s.(type) {
	case *glsl.Block:
		return g.genBlock(s)
	case *glsl.DeclStmt:
		return g.genDecl(s)
	case *glsl.ExprStmt:
		_, err := g.genExpr(s.X)
		return err
	case *glsl.IfStmt:
		return g.genIf(s)
	case *glsl.ForStmt:
		return g.genFor(s)
	case *glsl.ReturnStmt:
		return g.genReturn(s)
	case *glsl.BreakStmt:
		if len(g.loopCtx) == 0 {
			return errAt(s.P, "break outside loop")
		}
		lc := g.loopCtx[len(g.loopCtx)-1]
		lc.breakBRs = append(lc.breakBRs, g.emit(Inst{Op: OpBR}))
		return nil
	case *glsl.ContinueStmt:
		if len(g.loopCtx) == 0 {
			return errAt(s.P, "continue outside loop")
		}
		lc := g.loopCtx[len(g.loopCtx)-1]
		lc.continueBRs = append(lc.continueBRs, g.emit(Inst{Op: OpBR}))
		return nil
	case *glsl.DiscardStmt:
		g.emit(Inst{Op: OpKIL, A: g.scalarConst(1)})
		return nil
	}
	return errAt(s.Pos(), "unsupported statement in code generation")
}

func (g *cgen) genDecl(d *glsl.DeclStmt) error {
	if d.Sym.Kind == glsl.SymConst && d.Sym.Const != nil {
		g.env[d.Sym] = &binding{cval: d.Sym.Const, samplerIdx: -1}
		return nil
	}
	n := regsFor(d.DeclType)
	reg := g.allocPersist(n)
	b := &binding{loc: loc{file: FileTemp, reg: reg, nregs: n}, samplerIdx: -1}
	g.env[d.Sym] = b
	if d.Init != nil {
		v, err := g.genExpr(d.Init)
		if err != nil {
			return err
		}
		g.storeToLoc(b.loc, d.DeclType, v)
	}
	return nil
}

// storeToLoc moves a value into a location (handling matrices).
func (g *cgen) storeToLoc(l loc, t glsl.Type, v value) {
	if t.IsMatrix() || t.IsArray() {
		n := l.nregs
		for i := 0; i < n; i++ {
			var src Src
			if v.cval != nil {
				// Column i of a constant matrix.
				var c [4]float32
				cols := t.MatrixCols()
				if cols == 0 {
					cols = 1
				}
				for j := 0; j < cols && i*cols+j < len(v.cval.Vals); j++ {
					c[j] = float32(v.cval.Vals[i*cols+j])
				}
				src = SrcReg(FileConst, g.constIdx(c))
			} else {
				src = v.colSrc(i)
			}
			g.emit(Inst{Op: OpMOV, Dst: DstReg(l.file, l.reg+i, 4), A: src})
		}
		return
	}
	g.emit(Inst{Op: OpMOV, Dst: DstReg(l.file, l.reg, t.Components()), A: g.asSrc(v)})
}

func (g *cgen) genIf(s *glsl.IfStmt) error {
	cond, err := g.genExpr(s.Cond)
	if err != nil {
		return err
	}
	if cond.cval != nil {
		// Statically-known condition: emit only the taken branch.
		if cond.cval.Bool() {
			return g.genStmt(s.Then)
		}
		if s.Else != nil {
			return g.genStmt(s.Else)
		}
		return nil
	}
	brz := g.emit(Inst{Op: OpBRZ, A: g.asSrc(cond)})
	if err := g.genStmt(s.Then); err != nil {
		return err
	}
	if s.Else == nil {
		g.prog.Insts[brz].Target = g.here()
		return nil
	}
	br := g.emit(Inst{Op: OpBR})
	g.prog.Insts[brz].Target = g.here()
	if err := g.genStmt(s.Else); err != nil {
		return err
	}
	g.prog.Insts[br].Target = g.here()
	return nil
}

// genFor fully unrolls the loop using the front end's LoopInfo, binding the
// loop index to a fresh constant each iteration (GLSL ES Appendix A
// semantics; this is what makes instruction counts grow with sgemm block
// size).
func (g *cgen) genFor(s *glsl.ForStmt) error {
	info, ok := g.cs.Loops[s]
	if !ok {
		return errAt(s.P, "internal: loop without static trip info")
	}
	lc := &loopCtx{}
	g.loopCtx = append(g.loopCtx, lc)
	defer func() { g.loopCtx = g.loopCtx[:len(g.loopCtx)-1] }()

	isFloat := info.Sym.Type.Kind == glsl.KFloat
	fidx := float32(info.Start)
	iidx := int64(info.Start)

	savedBinding, hadBinding := g.env[info.Sym]
	for iter := 0; iter < info.Trip; iter++ {
		var cv glsl.ConstValue
		if isFloat {
			cv = glsl.ConstValue{T: glsl.T(glsl.KFloat), Vals: []float64{float64(fidx)}}
		} else {
			cv = glsl.ConstValue{T: glsl.T(glsl.KInt), Vals: []float64{float64(iidx)}}
		}
		g.env[info.Sym] = &binding{cval: &cv, samplerIdx: -1}
		if err := g.genStmt(s.Body); err != nil {
			return err
		}
		// continue lands at the end of this iteration.
		for _, idx := range lc.continueBRs {
			g.prog.Insts[idx].Target = g.here()
		}
		lc.continueBRs = lc.continueBRs[:0]
		if isFloat {
			fidx += float32(info.Step)
		} else {
			iidx += int64(info.Step)
		}
	}
	for _, idx := range lc.breakBRs {
		g.prog.Insts[idx].Target = g.here()
	}
	if hadBinding {
		g.env[info.Sym] = savedBinding
	} else {
		delete(g.env, info.Sym)
	}
	return nil
}

func (g *cgen) genReturn(s *glsl.ReturnStmt) error {
	if len(g.inlineRet) == 0 {
		// Returning from main ends the shader.
		g.emit(Inst{Op: OpRET})
		return nil
	}
	ic := g.inlineRet[len(g.inlineRet)-1]
	if s.X != nil {
		v, err := g.genExpr(s.X)
		if err != nil {
			return err
		}
		g.storeToLoc(*ic.retLoc, ic.retType, v)
	}
	ic.endBRs = append(ic.endBRs, g.emit(Inst{Op: OpBR}))
	return nil
}
