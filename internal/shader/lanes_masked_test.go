package shader

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential testing of the divergence-masked lane backend against the
// reference interpreter: a batch of N lanes with forward branches, discard
// and early return must produce, for every lane, bit-identical outputs,
// the same Discarded flag, and summed Cycles/TexFetches equal to N serial
// interpreter invocations — divergence and all.

// runMaskedLaneDiff executes p serially (interpreter, one fresh Env per
// lane) and as one masked lane batch, then compares per-lane outputs,
// Discarded flags, and summed counters.
func runMaskedLaneDiff(t *testing.T, p *Program, cost *CostModel, width, n int, uni []Vec4, inputs [][]Vec4) {
	t.Helper()
	lc := p.MaskedLaneCompiled(cost, width)
	if lc == nil {
		t.Fatalf("mask-eligible program did not compile (reason: %q):\n%s",
			MaskedFallbackReason(p), p.Disassemble())
	}
	if !lc.Masked() {
		t.Fatal("MaskedLaneCompiled returned a non-masked form")
	}

	le := NewLaneEnv(p, width)
	le.Sample = diffSampler
	le.SetUniforms(uni)
	var wantOut [][]Vec4
	var wantDiscard []bool
	var wantCycles, wantTex int64
	for lane := 0; lane < n; lane++ {
		e := NewEnv(p)
		e.Sample = diffSampler
		copy(e.Uniforms, uni)
		copy(e.Inputs, inputs[lane])
		if err := Run(p, e, cost); err != nil {
			t.Fatalf("interp lane %d: %v", lane, err)
		}
		wantOut = append(wantOut, append([]Vec4(nil), e.Outputs...))
		wantDiscard = append(wantDiscard, e.Discarded)
		wantCycles += e.Cycles
		wantTex += e.TexFetches
		for reg, v := range inputs[lane] {
			le.SetInput(lane, reg, v)
		}
	}

	le.N = n
	lc.Run(le)
	if le.Cycles != wantCycles {
		t.Fatalf("Cycles divergence: serial %d, masked lanes %d (w=%d n=%d)\n%s",
			wantCycles, le.Cycles, width, n, p.Disassemble())
	}
	if le.TexFetches != wantTex {
		t.Fatalf("TexFetches divergence: serial %d, masked lanes %d (w=%d n=%d)\n%s",
			wantTex, le.TexFetches, width, n, p.Disassemble())
	}
	for lane := 0; lane < n; lane++ {
		if le.Discarded[lane] != wantDiscard[lane] {
			t.Fatalf("lane %d Discarded divergence: serial %v, masked %v (w=%d n=%d)\n%s",
				lane, wantDiscard[lane], le.Discarded[lane], width, n, p.Disassemble())
		}
		// Outputs are compared even for discarded lanes: the masked engine
		// executes exactly the interpreter's prefix for that lane, so the
		// partially-written output bank must match too.
		for reg := range wantOut[lane] {
			got := le.Output(lane, reg)
			want := wantOut[lane][reg]
			for c := 0; c < 4; c++ {
				if want[c] != want[c] && got[c] != got[c] {
					continue // both NaN: equivalent
				}
				if math.Float32bits(want[c]) != math.Float32bits(got[c]) {
					t.Fatalf("lane %d output %d.%d divergence: serial %g (%#08x), masked %g (%#08x) (w=%d n=%d)\n%s",
						lane, reg, c, want[c], math.Float32bits(want[c]),
						got[c], math.Float32bits(got[c]), width, n, p.Disassemble())
				}
			}
		}
	}
}

// TestDifferentialMaskedLaneFuzz drives 400 quick-generated seeds through
// randomized IR programs *with* control flow — forward BR/BRZ, KIL, early
// RET, the exact shape class the straight-line engine refuses — at random
// widths and live-lane counts. Every lane must match a serial interpreter
// run bitwise, including the Discarded flag and per-lane-summed counters.
func TestDifferentialMaskedLaneFuzz(t *testing.T) {
	cost := DefaultCostModel()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng, true) // forward branches, KIL, early RET
		width := 2 + rng.Intn(MaxLaneWidth-1)
		for probe := 0; probe < 2; probe++ {
			n := 1 + rng.Intn(width)
			uni, inputs := fuzzInputs(rng, p, n)
			runMaskedLaneDiff(t, p, &cost, width, n, uni, inputs)
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 400,
		Rand:     rand.New(rand.NewSource(20260808)),
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialMaskedStraightLine pins that the masked engine is also
// correct on straight-line programs (all lanes stay active throughout):
// engines prefer the unmasked form there, but the masked compile must not
// depend on divergence actually occurring.
func TestDifferentialMaskedStraightLine(t *testing.T) {
	cost := DefaultCostModel()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng, false)
		width := 2 + rng.Intn(MaxLaneWidth-1)
		n := 1 + rng.Intn(width)
		uni, inputs := fuzzInputs(rng, p, n)
		runMaskedLaneDiff(t, p, &cost, width, n, uni, inputs)
		return true
	}
	cfg := &quick.Config{
		MaxCount: 80,
		Rand:     rand.New(rand.NewSource(8)),
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialMaskedKernelSuite runs every generated kernel through
// the masked engine. The point of the whole exercise: jacobi — branchy,
// lane-ineligible — must masked-compile and match the interpreter bitwise.
func TestDifferentialMaskedKernelSuite(t *testing.T) {
	cost := DefaultCostModel()
	rng := rand.New(rand.NewSource(20260808))
	for name, p := range kernelSuite(t) {
		p := p
		t.Run(name, func(t *testing.T) {
			if reason := MaskedFallbackReason(p); reason != "" {
				t.Fatalf("kernel unexpectedly mask-ineligible: %s", reason)
			}
			for _, width := range []int{2, 8, 16} {
				for _, n := range []int{1, width/2 + 1, width} {
					uni := make([]Vec4, maxi(p.NumUniform, 1))
					for i := range uni {
						uni[i] = Vec4{rng.Float32(), rng.Float32(), rng.Float32(), rng.Float32()}
					}
					var inputs [][]Vec4
					for lane := 0; lane < n; lane++ {
						in := make([]Vec4, maxi(p.NumInputs, 1))
						for i := range in {
							in[i] = Vec4{rng.Float32() * 16, rng.Float32() * 16, 0.5, 1}
						}
						inputs = append(inputs, in)
					}
					runMaskedLaneDiff(t, p, &cost, width, n, uni, inputs)
				}
			}
		})
	}
}

// TestMaskedDivergencePinned pins a hand-built divergence scenario where
// different lanes take each path of a BRZ, one lane discards, and one lane
// early-returns — the masked engine's whole feature matrix in one batch.
func TestMaskedDivergencePinned(t *testing.T) {
	cost := DefaultCostModel()
	p := &Program{
		NumTemps: 2, NumInputs: 2, NumOutputs: 1, NumUniform: 1,
		Insts: []Inst{
			// if (in0.x == 0) goto else-branch (pc 4)
			{Op: OpBRZ, A: SrcReg(FileInput, 0), Target: 4},
			{Op: OpKIL, A: SrcReg(FileInput, 1)},                                                         // then: maybe discard
			{Op: OpMUL, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileInput, 0), B: SrcReg(FileInput, 0)}, // then: out = in0²
			{Op: OpBR, Target: 6}, // skip else
			{Op: OpADD, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileInput, 0), B: SrcReg(FileInput, 1)}, // else: out = in0+in1
			{Op: OpTEX, Dst: DstReg(FileTemp, 0, 4), A: SrcReg(FileInput, 1)},                            // else-only fetch
			{Op: OpBRZ, A: SrcReg(FileInput, 1), Target: 8},                                              // join: maybe early ret
			{Op: OpRET},
			{Op: OpMOV, Dst: Dst{File: FileOutput, Reg: 0, Mask: 0x8}, A: SrcReg(FileUniform, 0)},
			{Op: OpRET},
		},
	}
	inputs := [][]Vec4{
		{{1, 0, 0, 0}, {0, 0, 0, 0}},  // then-path, no discard, early ret
		{{0, 0, 0, 0}, {0, 0, 0, 0}},  // else-path (TEX), early ret
		{{2, 0, 0, 0}, {1, 0, 0, 0}},  // then-path, discards at pc 1
		{{0, 0, 0, 0}, {3, 0, 0, 0}},  // else-path, runs to the end
		{{-1, 0, 0, 0}, {2, 0, 0, 0}}, // then-path, discards
		{{5, 0, 0, 0}, {0, 5, 0, 0}},  // then-path, no discard (cond reads .x)
	}
	uni := []Vec4{{0.25, 0.5, 0.75, 1}}
	for _, width := range []int{6, 8, 16} {
		runMaskedLaneDiff(t, p, &cost, width, len(inputs), uni, inputs)
	}
}

// TestMaskedIneligible pins the masked fallback clauses: backward branches
// are out (unbounded divergence), while everything the straight-line
// engine refuses for shape reasons — forward jumps, discard, early RET —
// is mask-eligible.
func TestMaskedIneligible(t *testing.T) {
	cost := DefaultCostModel()
	mov := Inst{Op: OpMOV, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileInput, 0)}
	cases := []struct {
		name     string
		insts    []Inst
		eligible bool
	}{
		{"forward-br", []Inst{{Op: OpBR, Target: 2}, mov, {Op: OpRET}}, true},
		{"forward-brz", []Inst{{Op: OpBRZ, A: SrcReg(FileInput, 0), Target: 2}, mov, mov, {Op: OpRET}}, true},
		{"discard", []Inst{{Op: OpKIL, A: SrcReg(FileInput, 0)}, mov, {Op: OpRET}}, true},
		{"early-ret", []Inst{{Op: OpRET}, mov}, true},
		{"self-loop", []Inst{mov, {Op: OpBR, Target: 1}, {Op: OpRET}}, false},
		{"backward-brz", []Inst{mov, {Op: OpBRZ, A: SrcReg(FileInput, 0), Target: 0}, {Op: OpRET}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Program{NumTemps: 1, NumInputs: 1, NumOutputs: 1, NumUniform: 1, Insts: tc.insts}
			lc := p.MaskedLaneCompiled(&cost, 8)
			reason := MaskedFallbackReason(p)
			if tc.eligible {
				if lc == nil {
					t.Fatalf("expected mask-eligible, got fallback: %s", reason)
				}
				if reason != "" {
					t.Fatalf("eligible program reported reason %q", reason)
				}
			} else {
				if lc != nil {
					t.Fatal("expected mask-ineligible")
				}
				if reason == "" {
					t.Fatal("ineligible program must report a reason")
				}
			}
		})
	}
}

// TestMaskedRunAllocs asserts the masked hot path allocates nothing per
// batch once compiled — the active-lane scan and staging reuse LaneEnv
// scratch state.
func TestMaskedRunAllocs(t *testing.T) {
	cost := DefaultCostModel()
	p := &Program{
		NumTemps: 2, NumInputs: 1, NumOutputs: 1, NumUniform: 1,
		Insts: []Inst{
			{Op: OpBRZ, A: SrcReg(FileInput, 0), Target: 3},
			{Op: OpTEX, Dst: DstReg(FileTemp, 0, 4), A: SrcReg(FileInput, 0)},
			{Op: OpBR, Target: 4},
			{Op: OpMOV, Dst: DstReg(FileTemp, 0, 4), A: SrcReg(FileUniform, 0)},
			{Op: OpMUL, Dst: DstReg(FileOutput, 0, 4), A: SrcReg(FileTemp, 0), B: SrcReg(FileInput, 0)},
			{Op: OpRET},
		},
	}
	const width = 8
	lc := p.MaskedLaneCompiled(&cost, width)
	if lc == nil {
		t.Fatal("program must masked-compile")
	}
	env := NewLaneEnv(p, width)
	env.Samplers = []TexFunc{func(u, v float32) Vec4 { return Vec4{u, v, u + v, 1} }}
	var sink Vec4
	allocs := testing.AllocsPerRun(200, func() {
		for l := 0; l < width; l++ {
			v := float32(l & 1) // alternate branch paths within the batch
			env.SetInput(l, 0, Vec4{v, 0.5, 0.75, 1})
		}
		env.N = width
		lc.Run(env)
		sink = env.Output(width-1, 0)
	})
	if allocs != 0 {
		t.Fatalf("masked hot path allocated %.1f times per batch, want 0", allocs)
	}
	_ = sink
}
