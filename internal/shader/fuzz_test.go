package shader

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"gles2gpgpu/internal/glsl"
)

// Differential fuzzing of the compiler + VM: generate random scalar GLSL
// expressions together with an equivalent Go evaluator, compile the GLSL
// through the full front end and back end, run it in the VM, and compare.
// Divergence means a code-generation or VM bug.

// exprGen builds a random expression tree of bounded depth over the
// uniforms x, y, z (all in (0,1]).
type exprGen struct {
	rng *rand.Rand
}

// gen returns the GLSL source of the expression and its evaluator.
func (g *exprGen) gen(depth int) (string, func(x, y, z float64) float64) {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(5) {
		case 0:
			return "x", func(x, y, z float64) float64 { return x }
		case 1:
			return "y", func(x, y, z float64) float64 { return y }
		case 2:
			return "z", func(x, y, z float64) float64 { return z }
		default:
			v := float64(g.rng.Intn(16)+1) / 16.0
			return fmt.Sprintf("%.4f", v), func(x, y, z float64) float64 { return v }
		}
	}
	a, fa := g.gen(depth - 1)
	b, fb := g.gen(depth - 1)
	switch g.rng.Intn(9) {
	case 0:
		return "(" + a + " + " + b + ")", func(x, y, z float64) float64 { return fa(x, y, z) + fb(x, y, z) }
	case 1:
		return "(" + a + " - " + b + ")", func(x, y, z float64) float64 { return fa(x, y, z) - fb(x, y, z) }
	case 2:
		return "(" + a + " * " + b + ")", func(x, y, z float64) float64 { return fa(x, y, z) * fb(x, y, z) }
	case 3:
		// a*b + c: the MAD-fusion path.
		c, fc := g.gen(depth - 1)
		return "(" + a + " * " + b + " + " + c + ")",
			func(x, y, z float64) float64 { return fa(x, y, z)*fb(x, y, z) + fc(x, y, z) }
	case 4:
		return "min(" + a + ", " + b + ")", func(x, y, z float64) float64 { return math.Min(fa(x, y, z), fb(x, y, z)) }
	case 5:
		return "max(" + a + ", " + b + ")", func(x, y, z float64) float64 { return math.Max(fa(x, y, z), fb(x, y, z)) }
	case 6:
		return "abs(" + a + " - " + b + ")", func(x, y, z float64) float64 { return math.Abs(fa(x, y, z) - fb(x, y, z)) }
	case 7:
		return "clamp(" + a + ", 0.0, 1.0)", func(x, y, z float64) float64 {
			return math.Min(math.Max(fa(x, y, z), 0), 1)
		}
	default:
		// Ternary with a comparison: the branchy path.
		return "((" + a + " > " + b + ") ? " + a + " : " + b + ")",
			func(x, y, z float64) float64 {
				if fa(x, y, z) > fb(x, y, z) {
					return fa(x, y, z)
				}
				return fb(x, y, z)
			}
	}
}

func TestDifferentialExpressionFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20170327)) // the paper's conference date
	cost := DefaultCostModel()
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		g := &exprGen{rng: rng}
		expr, ref := g.gen(3 + rng.Intn(2))
		src := hdr + `
uniform float x;
uniform float y;
uniform float z;
void main(){ gl_FragColor = vec4(` + expr + `); }`
		cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
		if err != nil {
			t.Fatalf("trial %d: frontend: %v\n%s", trial, err, expr)
		}
		p, err := Compile(cs)
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, expr)
		}
		env := NewEnv(p)
		out, ok := p.LookupOutput("gl_FragColor")
		if !ok {
			t.Fatal("no output")
		}
		setU := func(name string, v float64) {
			if u, ok := p.LookupUniform(name); ok {
				env.Uniforms[u.Reg] = Vec4{float32(v)}
			}
		}
		for probe := 0; probe < 8; probe++ {
			x := float64(rng.Intn(1000)+1) / 1000.0
			y := float64(rng.Intn(1000)+1) / 1000.0
			z := float64(rng.Intn(1000)+1) / 1000.0
			env.Reset()
			setU("x", x)
			setU("y", y)
			setU("z", z)
			if err := Run(p, env, &cost); err != nil {
				t.Fatalf("trial %d: run: %v\n%s", trial, err, expr)
			}
			want := ref(x, y, z)
			got := float64(env.Outputs[out.Reg][0])
			tol := 1e-4 * math.Max(1, math.Abs(want))
			if math.Abs(got-want) > tol {
				t.Fatalf("trial %d: %s\nat (%g,%g,%g): vm=%g go=%g",
					trial, expr, x, y, z, got, want)
			}
		}
	}
}

// The same differential check through a generated unrolled loop: the
// accumulation pattern every GPGPU kernel in the repository uses.
func TestDifferentialLoopFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cost := DefaultCostModel()
	for trial := 0; trial < 20; trial++ {
		trip := rng.Intn(12) + 1
		scale := float64(rng.Intn(8)+1) / 8.0
		src := hdr + fmt.Sprintf(`
uniform float x;
void main(){
	float acc = 0.0;
	for (int i = 0; i < %d; i++) {
		acc += x * %.4f + float(i) * 0.001;
	}
	gl_FragColor = vec4(acc);
}`, trip, scale)
		cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(cs)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(p.Disassemble(), "br ") {
			t.Fatal("loop not unrolled")
		}
		env := NewEnv(p)
		u, _ := p.LookupUniform("x")
		out, _ := p.LookupOutput("gl_FragColor")
		x := rng.Float64()
		env.Uniforms[u.Reg] = Vec4{float32(x)}
		if err := Run(p, env, &cost); err != nil {
			t.Fatal(err)
		}
		var want float64
		for i := 0; i < trip; i++ {
			want += x*scale + float64(i)*0.001
		}
		got := float64(env.Outputs[out.Reg][0])
		if math.Abs(got-want) > 1e-4*math.Max(1, want) {
			t.Fatalf("trial %d (trip %d): vm=%g go=%g", trial, trip, got, want)
		}
	}
}
