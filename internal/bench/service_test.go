package bench

import (
	"bytes"
	"context"
	"testing"
)

func TestServiceBench(t *testing.T) {
	results, err := Service(context.Background(), ServiceOpts{Jobs: 12, N: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d configs, want 3", len(results))
	}
	byName := map[string]ServiceResult{}
	for _, r := range results {
		if r.VirtualTime <= 0 {
			t.Errorf("%s: virtual time %v, want > 0", r.Name, r.VirtualTime)
		}
		byName[r.Name] = r
	}
	if byName["cold"].PoolHitRate != 0 {
		t.Errorf("cold config pool hit rate = %v, want 0 (pool disabled)", byName["cold"].PoolHitRate)
	}
	if byName["pooled"].PoolHitRate <= 0 {
		t.Errorf("pooled config pool hit rate = %v, want > 0", byName["pooled"].PoolHitRate)
	}
	if byName["batched"].Coalesced < 1 {
		t.Errorf("batched config coalesced = %d, want >= 1", byName["batched"].Coalesced)
	}
	if byName["cold"].Coalesced != 0 {
		t.Errorf("cold config coalesced = %d, want 0 (MaxBatch=1)", byName["cold"].Coalesced)
	}
	var buf bytes.Buffer
	WriteServiceTable(&buf, results)
	if buf.Len() == 0 {
		t.Error("empty service table")
	}
}
