package bench

import (
	"context"
	"strings"
	"testing"
)

// TestServeBenchSmoke runs a miniature fleet sweep and checks the
// report's shape plus the benchmark's core claim: at two replicas,
// affinity routing's fleet warm-hit rate beats round-robin's, because
// each shard's warm-runner cache only has to hold its own keys. The
// schedule is fully deterministic (fixed seed, fixed ring), so this is
// a property of the code, not of the machine's speed.
func TestServeBenchSmoke(t *testing.T) {
	rep, err := ServeBench(context.Background(), ServeBenchOpts{
		Replicas: []int{1, 2},
		Rates:    []float64{400},
		Jobs:     96,
		N:        16,
		Keys:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "gles2gpgpu.servebench/2" {
		t.Errorf("schema = %q", rep.Schema)
	}
	// direct runs only at 1 replica: 1 (direct) + 2 (affinity) + 2 (rr).
	if len(rep.Cells) != 5 {
		t.Fatalf("got %d cells, want 5", len(rep.Cells))
	}
	find := func(policy string, replicas int) ServeBenchCell {
		for _, c := range rep.Cells {
			if c.Policy == policy && c.Replicas == replicas {
				return c
			}
		}
		t.Fatalf("no cell for %s/%d", policy, replicas)
		return ServeBenchCell{}
	}
	for _, c := range rep.Cells {
		if c.Completed+c.Shed+c.Failed != c.OpenLoopReport.Jobs {
			t.Errorf("%s/%d: arrivals unaccounted", c.Policy, c.Replicas)
		}
		if c.Failed != 0 {
			t.Errorf("%s/%d: %d failed jobs", c.Policy, c.Replicas, c.Failed)
		}
		if c.Completed == 0 {
			t.Errorf("%s/%d: nothing completed", c.Policy, c.Replicas)
		}
		if len(c.PerReplica) != c.Replicas {
			t.Errorf("%s/%d: %d per-replica rows", c.Policy, c.Replicas, len(c.PerReplica))
		}
	}
	aff := find(PolicyAffinity, 2)
	rr := find(PolicyRoundRobin, 2)
	if aff.WarmHitRate <= rr.WarmHitRate {
		t.Errorf("affinity warm-hit %.2f <= round-robin %.2f at 2 replicas; sharding should keep runners hot",
			aff.WarmHitRate, rr.WarmHitRate)
	}
	// Affinity must never split one key class across replicas: per
	// replica, misses are bounded by the key classes it owns (each class
	// compiles at most once per replica... plus LRU evictions, so just
	// check total fleet misses stay below round-robin's).
	var affMiss, rrMiss int64
	for _, r := range aff.PerReplica {
		affMiss += r.RunnerMisses
	}
	for _, r := range rr.PerReplica {
		rrMiss += r.RunnerMisses
	}
	if affMiss >= rrMiss {
		t.Errorf("affinity fleet misses %d >= round-robin %d; cache dilution should cost round-robin rebuilds", affMiss, rrMiss)
	}

	var sb strings.Builder
	WriteServeBenchTable(&sb, rep)
	if !strings.Contains(sb.String(), "affinity") || !strings.Contains(sb.String(), "warm-hit") {
		t.Errorf("table rendering missing columns:\n%s", sb.String())
	}
}
