package bench

import (
	"context"
	"fmt"

	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/timing"
)

// Ablations isolate the contribution of each micro-architectural mechanism
// in the timing model by switching it off and re-running a probe workload.
// They answer "how much of the paper's effect does THIS mechanism carry?"
// and are referenced from DESIGN.md §5.

// AblationRow is one mechanism toggle.
type AblationRow struct {
	Name     string
	Baseline timing.Time // mechanism as modelled
	Ablated  timing.Time // mechanism disabled/perturbed
	// Impact = Ablated/Baseline: how much slower (or faster) the workload
	// gets without the mechanism.
	Impact float64
}

// AblationResult is the full ablation study for one device.
type AblationResult struct {
	Device string
	Rows   []AblationRow
}

// Ablation runs the mechanism study on a copy of the given profile.
func Ablation(ctx context.Context, dev *device.Profile, o Opts) (*AblationResult, error) {
	res := &AblationResult{Device: dev.Name}

	run := func(p *device.Profile, cfg core.Config, spec Spec) (timing.Time, error) {
		cfg.Device = p
		r, err := Measure(ctx, cfg, spec, o)
		if err != nil {
			return 0, err
		}
		return r.PerIteration, nil
	}
	clone := func() *device.Profile {
		c := *dev
		return &c
	}
	texCfg := core.Config{Swap: core.SwapNone, Target: core.TargetTexture, UseVBO: true}
	fbCfg := core.Config{Swap: core.SwapNone, Target: core.TargetFramebuffer, UseVBO: true}
	sgemm := Spec{Workload: WSgemm, Block: 16}
	sum := Spec{Workload: WSum}

	add := func(name string, base, abl timing.Time) {
		res.Rows = append(res.Rows, AblationRow{
			Name: name, Baseline: base, Ablated: abl,
			Impact: float64(abl) / float64(base),
		})
	}

	// 1. Deferred frame overlap: without it the CPU waits for every
	// frame, killing the pipelining that makes no-swap sum fast.
	base, err := run(clone(), texCfg, sum)
	if err != nil {
		return nil, fmt.Errorf("ablation deferred: %w", err)
	}
	p := clone()
	p.Deferred = false
	abl, err := run(p, texCfg, sum)
	if err != nil {
		return nil, err
	}
	add("deferred frame overlap (sum)", base, abl)

	// 2. Copy streaming: the DMA engine transferring tiles behind the
	// renderer is what keeps framebuffer rendering viable for sgemm.
	base, err = run(clone(), fbCfg, sgemm)
	if err != nil {
		return nil, err
	}
	p = clone()
	p.CopyStreamsOnOverwrite = false
	p.CopyEngine.Latency += p.CopyEngine.TransferTime(0) // keep latency; disable streaming below
	// Disabling streaming entirely: model as overwrite-style scheduling by
	// forcing the reuse path.
	fbReuse := fbCfg
	fbReuse.ReuseOutputTextures = true
	abl, err = run(p, fbReuse, sgemm)
	if err != nil {
		return nil, err
	}
	add("copy streaming behind renderer (sgemm, FB)", base, abl)

	// 3. Target invalidation (glClear): without it every pass reloads the
	// previous frame's tiles from memory and carries a frame dependency.
	base, err = run(clone(), texCfg, sum)
	if err != nil {
		return nil, err
	}
	noClear := texCfg
	noClear.InvalidateTarget = new(bool) // false
	abl, err = run(clone(), noClear, sum)
	if err != nil {
		return nil, err
	}
	add("glClear target invalidation (sum)", base, abl)

	// 4. Deferred-flush penalty: the bubble cost is what texture-rendered
	// multi-pass sgemm pays per pass.
	base, err = run(clone(), texCfg, sgemm)
	if err != nil {
		return nil, err
	}
	p = clone()
	p.FlushCost = 0
	abl, err = run(p, texCfg, sgemm)
	if err != nil {
		return nil, err
	}
	add("dependency flush penalty (sgemm, texture)", base, abl)

	// 5. Driver queue depth: restricting the CPU to lockstep submission.
	base, err = run(clone(), texCfg, sum)
	if err != nil {
		return nil, err
	}
	p = clone()
	p.QueueDepth = 1
	abl, err = run(p, texCfg, sum)
	if err != nil {
		return nil, err
	}
	add("frame queue depth 2 -> 1 (sum)", base, abl)

	// 6. Tile size: quarter-resolution tiles quadruple the tile count
	// (binning/bookkeeping pressure shows up in stats; time shifts only
	// via per-tile constants, so this row doubles as a regression check
	// that tile size does not distort bandwidth accounting).
	base, err = run(clone(), texCfg, sgemm)
	if err != nil {
		return nil, err
	}
	p = clone()
	p.TileW /= 2
	p.TileH /= 2
	abl, err = run(p, texCfg, sgemm)
	if err != nil {
		return nil, err
	}
	add("tile size halved (sgemm)", base, abl)

	return res, nil
}

// Table renders the study.
func (r *AblationResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation study: %s", r.Device),
		Note:    "impact = time(without mechanism)/time(with); >1 means the mechanism helps",
		Columns: []string{"mechanism", "with", "without", "impact"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmtMs(row.Baseline), fmtMs(row.Ablated), fmtSpeedup(row.Impact))
	}
	return t
}
