package bench

// Texture-sampling microbenchmarks: how fast the host serves one texel
// fetch, across {nearest, bilinear} × {clamp, repeat} × {specialized,
// generic}. Draw-time sampler specialization's entire effect is host time
// — the returned texels are bit-identical by contract — so this is where
// its speedup is visible in isolation, mirroring what the Micro
// measurements do for the optimisation passes. Each configuration folds
// its outputs into a checksum and the generic/specialized pair must agree
// exactly, cross-checking the bit-identity contract on every run.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/shader"
)

// SamplingResult is one sampling microbenchmark measurement.
type SamplingResult struct {
	Config      string // e.g. "nearest-clamp"
	Specialized bool
	Fetches     int
	HostMS      float64
	// Checksum folds every returned texel bit pattern; identical between
	// the specialized and generic run of a configuration by contract.
	Checksum uint32
}

// Name is the stable figure label, e.g. "micro/sample/nearest-clamp/spec".
func (r SamplingResult) Name() string {
	mode := "generic"
	if r.Specialized {
		mode = "spec"
	}
	return fmt.Sprintf("micro/sample/%s/%s", r.Config, mode)
}

// SamplingMicro measures every filter/wrap configuration with both the
// specialized and the generic fetch path, fetches fetches per run (0 means
// 1<<20). The coordinate stream is deterministic and shared by both paths;
// mismatched checksums (a bit-identity violation) are an error.
func SamplingMicro(ctx context.Context, fetches int) ([]SamplingResult, error) {
	if fetches <= 0 {
		fetches = 1 << 20
	}
	const texN = 256
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, texN*texN*4)
	rng.Read(data)

	// Coordinate stream: mostly in-range with a tail of out-of-range and
	// far-negative values so wrapping code runs on its real distribution.
	coords := make([][2]float32, 4096)
	for i := range coords {
		switch i % 8 {
		case 6:
			coords[i] = [2]float32{rng.Float32()*8 - 4, rng.Float32()*8 - 4}
		case 7:
			coords[i] = [2]float32{rng.Float32() - 1000, rng.Float32() + 1000}
		default:
			coords[i] = [2]float32{rng.Float32(), rng.Float32()}
		}
	}

	configs := []struct {
		name      string
		magFilter gles.Enum
		wrap      gles.Enum
	}{
		{"nearest-clamp", gles.NEAREST, gles.CLAMP_TO_EDGE},
		{"nearest-repeat", gles.NEAREST, gles.REPEAT},
		{"bilinear-clamp", gles.LINEAR, gles.CLAMP_TO_EDGE},
		{"bilinear-repeat", gles.LINEAR, gles.REPEAT},
	}
	var out []SamplingResult
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tex := gles.NewBenchTexture(texN, texN, cfg.magFilter, cfg.wrap, cfg.wrap, data)
		var pair [2]SamplingResult
		for i, fn := range []shader.TexFunc{tex.SpecializedSampler(), tex.GenericSampler()} {
			var sum uint32
			start := time.Now()
			for f := 0; f < fetches; f++ {
				c := coords[f&(len(coords)-1)]
				texel := fn(c[0], c[1])
				sum = sum*31 + math.Float32bits(texel[0]) + math.Float32bits(texel[3])
			}
			host := time.Since(start)
			pair[i] = SamplingResult{
				Config: cfg.name, Specialized: i == 0, Fetches: fetches,
				HostMS:   float64(host.Microseconds()) / 1000,
				Checksum: sum,
			}
		}
		if pair[0].Checksum != pair[1].Checksum {
			return nil, fmt.Errorf("bench: sampling %s: specialized checksum %08x != generic %08x (bit-identity broken)",
				cfg.name, pair[0].Checksum, pair[1].Checksum)
		}
		out = append(out, pair[0], pair[1])
	}
	return out, nil
}
