package bench

// Fleet-scale serving benchmark: an open-loop Poisson job stream pushed
// through N gles2gpgpud replicas behind the shard router, swept over
// replica count × arrival rate × routing policy. The point of the
// sweep is the warmth argument: consistent-hash affinity keeps each
// replica's warm-runner cache covering only its shard of the key space,
// while round-robin dilutes every cache with every key — the difference
// shows up as warm-hit rate and as tail latency at the knee.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"time"

	"gles2gpgpu/internal/serve"
	"gles2gpgpu/internal/shard"
)

// Routing policies swept by ServeBench. "direct" is the no-router
// baseline: the client talks straight to a single daemon, so it is only
// meaningful (and only run) at one replica.
const (
	PolicyDirect     = "direct"
	PolicyAffinity   = shard.PolicyAffinity
	PolicyRoundRobin = shard.PolicyRoundRobin
)

// ServeBenchOpts sizes the fleet sweep.
type ServeBenchOpts struct {
	// Replicas are the fleet sizes to sweep (default 1, 2, 4).
	Replicas []int
	// Rates are the Poisson arrival rates, jobs/sec (default 100, 200).
	Rates []float64
	// Jobs is the arrivals per cell (default 192).
	Jobs int
	// N is the matrix dimension (default 32).
	N int
	// Keys is the number of distinct kernel-key classes (default 8 — at
	// MaxRunners warm slots per replica, one replica cannot hold them
	// all, which is what sharding is for).
	Keys int
	// Policies to sweep (default direct, affinity, roundrobin).
	Policies []string
	// DaemonBin, when set, runs each replica as a real gles2gpgpud
	// subprocess started from this binary instead of in-process.
	DaemonBin string
	// Seed drives the arrival schedule and job inputs.
	Seed int64
}

func (o ServeBenchOpts) withDefaults() ServeBenchOpts {
	if len(o.Replicas) == 0 {
		o.Replicas = []int{1, 2, 4}
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{100, 200}
	}
	if o.Jobs <= 0 {
		o.Jobs = 192
	}
	if o.N <= 0 {
		o.N = 32
	}
	if o.Keys <= 0 {
		o.Keys = 8
	}
	if len(o.Policies) == 0 {
		o.Policies = []string{PolicyDirect, PolicyAffinity, PolicyRoundRobin}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ReplicaCell reports one replica's share of a sweep cell.
type ReplicaCell struct {
	Replica      string `json:"replica"`
	Routed       int64  `json:"routed"`
	RunnerHits   int64  `json:"runner_hits"`
	RunnerMisses int64  `json:"runner_misses"`
}

// ServeBenchCell is one point of the sweep: a policy at a fleet size
// and an arrival rate.
type ServeBenchCell struct {
	Policy     string  `json:"policy"`
	Replicas   int     `json:"replicas"`
	RatePerSec float64 `json:"rate_per_sec"`

	serve.OpenLoopReport

	// WarmHitRate aggregates runner hits/(hits+misses) across the
	// fleet — the quantity affinity routing exists to maximise.
	WarmHitRate float64       `json:"warm_hit_rate"`
	PerReplica  []ReplicaCell `json:"per_replica"`
	Retries     int64         `json:"retries"`
	Ejections   int64         `json:"ejections"`
}

// ServeBenchReport is the gles2gpgpu.servebench/2 document.
type ServeBenchReport struct {
	Schema string  `json:"schema"`
	Jobs   int     `json:"jobs"`
	N      int     `json:"n"`
	Keys   int     `json:"keys"`
	Seed   int64   `json:"seed"`
	Mode   string  `json:"mode"` // inprocess or subprocess
	Cells  []ServeBenchCell `json:"cells"`
}

// benchReplica is one backend of a sweep cell, in-process or
// subprocess.
type benchReplica struct {
	url  string
	stop func()
}

func startInprocessReplica() (*benchReplica, error) {
	s, err := serve.New(serve.Config{Devices: []string{"vc4"}, QueueDepth: 512})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Stop()
		return nil, err
	}
	s.Start()
	srv := &http.Server{Handler: serve.Handler(s)}
	go srv.Serve(l)
	return &benchReplica{
		url: "http://" + l.Addr().String(),
		stop: func() {
			srv.Close()
			s.Stop()
		},
	}, nil
}

// startSubprocessReplica launches a real gles2gpgpud on an ephemeral
// port and parses the bound address off its stdout banner.
func startSubprocessReplica(ctx context.Context, bin string) (*benchReplica, error) {
	cmd := exec.CommandContext(ctx, bin, "-addr", "127.0.0.1:0", "-devices", "vc4", "-queue", "512")
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrc := make(chan string, 1)
	go func() {
		buf := make([]byte, 256)
		var line strings.Builder
		for {
			n, err := out.Read(buf)
			line.Write(buf[:n])
			s := line.String()
			if i := strings.Index(s, "listening on "); i >= 0 {
				rest := s[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					addrc <- rest[:j]
					break
				}
			}
			if err != nil {
				addrc <- ""
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for {
			if _, err := out.Read(buf); err != nil {
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(10 * time.Second):
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("bench: daemon %s did not report an address", bin)
	}
	return &benchReplica{
		url: "http://" + addr,
		stop: func() {
			cmd.Process.Kill()
			cmd.Wait()
		},
	}, nil
}

// runCell measures one (policy, replicas, rate) point.
func runCell(ctx context.Context, o ServeBenchOpts, policy string, nReplicas int, rate float64) (ServeBenchCell, error) {
	cell := ServeBenchCell{Policy: policy, Replicas: nReplicas, RatePerSec: rate}

	var reps []*benchReplica
	defer func() {
		for _, r := range reps {
			r.stop()
		}
	}()
	for i := 0; i < nReplicas; i++ {
		var r *benchReplica
		var err error
		if o.DaemonBin != "" {
			r, err = startSubprocessReplica(ctx, o.DaemonBin)
		} else {
			r, err = startInprocessReplica()
		}
		if err != nil {
			return cell, err
		}
		reps = append(reps, r)
	}

	var base string
	var rt *shard.Router
	if policy == PolicyDirect {
		base = reps[0].url
	} else {
		urls := make([]string, len(reps))
		for i, r := range reps {
			urls[i] = r.url
		}
		var err error
		rt, err = shard.NewRouter(shard.Config{
			Replicas:    urls,
			Policy:      policy,
			MaxInFlight: 128,
		})
		if err != nil {
			return cell, err
		}
		defer rt.Close()
		rt.Start()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return cell, err
		}
		srv := &http.Server{Handler: shard.Handler(rt)}
		go srv.Serve(l)
		defer srv.Close()
		base = "http://" + l.Addr().String()
	}

	client := &serve.Client{Base: base}
	rep, err := client.RunOpenLoop(ctx, serve.OpenLoopOpts{
		RatePerSec: rate,
		Jobs:       o.Jobs,
		N:          o.N,
		Keys:       o.Keys,
		Seed:       o.Seed,
	})
	if rep != nil {
		cell.OpenLoopReport = *rep
	}
	if err != nil {
		return cell, fmt.Errorf("bench: servebench %s r=%d rate=%g: %w", policy, nReplicas, rate, err)
	}

	// Warmth accounting straight off each replica's own counters.
	routed := map[string]int64{}
	if rt != nil {
		routed = rt.RoutedTotals()
		cell.Retries = rt.Retries()
		cell.Ejections = rt.Ejections()
	} else {
		routed[reps[0].url] = int64(cell.Completed)
	}
	var hits, misses int64
	for _, r := range reps {
		st, err := (&serve.Client{Base: r.url}).Stats(ctx)
		if err != nil {
			return cell, err
		}
		rc := ReplicaCell{Replica: r.url, Routed: routed[r.url]}
		for _, d := range st.Devices {
			rc.RunnerHits += d.RunnerHits
			rc.RunnerMisses += d.RunnerMisses
		}
		hits += rc.RunnerHits
		misses += rc.RunnerMisses
		cell.PerReplica = append(cell.PerReplica, rc)
	}
	if hits+misses > 0 {
		cell.WarmHitRate = float64(hits) / float64(hits+misses)
	}
	return cell, nil
}

// ServeBench sweeps policy × fleet size × arrival rate and returns the
// servebench/2 report.
func ServeBench(ctx context.Context, o ServeBenchOpts) (*ServeBenchReport, error) {
	o = o.withDefaults()
	mode := "inprocess"
	if o.DaemonBin != "" {
		mode = "subprocess"
	}
	report := &ServeBenchReport{
		Schema: "gles2gpgpu.servebench/2",
		Jobs:   o.Jobs, N: o.N, Keys: o.Keys, Seed: o.Seed,
		Mode: mode,
	}
	for _, policy := range o.Policies {
		for _, n := range o.Replicas {
			if policy == PolicyDirect && n != 1 {
				continue // direct is the single-node baseline only
			}
			for _, rate := range o.Rates {
				if err := ctx.Err(); err != nil {
					return report, err
				}
				cell, err := runCell(ctx, o, policy, n, rate)
				if err != nil {
					return report, err
				}
				report.Cells = append(report.Cells, cell)
			}
		}
	}
	return report, nil
}

// WriteServeBenchTable renders the sweep as a fixed-width report block
// (stderr-targeted; the stdout reference output never includes it).
func WriteServeBenchTable(w io.Writer, r *ServeBenchReport) {
	fmt.Fprintf(w, "fleet serving sweep (%d open-loop jobs/cell, %d key classes, %s replicas)\n",
		r.Jobs, r.Keys, r.Mode)
	fmt.Fprintf(w, "%-10s %4s %8s %9s %8s %8s %8s %9s %8s\n",
		"policy", "reps", "rate/s", "goodput/s", "p50ms", "p99ms", "p999ms", "warm-hit", "shed")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-10s %4d %8.0f %9.1f %8.2f %8.2f %8.2f %8.0f%% %8d\n",
			c.Policy, c.Replicas, c.RatePerSec, c.GoodputS,
			c.P50MS, c.P99MS, c.P999MS, c.WarmHitRate*100, c.Shed)
	}
}
