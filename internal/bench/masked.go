package bench

// Divergence-masked lane execution benchmarks: host wall-clock time of
// the branchy state-stepping workloads (fp32 jacobi, 8-bit jacobi) with
// masked lanes on versus off. Off, a branchy draw falls back to
// per-fragment execution; on, it shades whole lane batches with per-lane
// live masks, eligibility proven up front (shader.MaskedFallbackAt and
// the IR analysis agree — the fuzz target enforces that). Masking changes
// host time only: every on/off pair must reproduce bit-identical final
// state, identical iteration counts and identical virtual time, and the
// engine's lane-fallback counter must confirm which path actually ran —
// zero fallbacks with masking on, all-fallback with it off. That last
// check is what keeps the comparison honest: a silently-ineligible kernel
// would otherwise time the same engine twice.

import (
	"context"
	"fmt"
	"math"
	"time"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/timing"
)

// MaskedResult is one masked-lane benchmark measurement.
type MaskedResult struct {
	// Workload is the figure key, e.g. "jacobi" or "jacobi8".
	Workload string
	// Masked reports whether divergence-masked lane execution was enabled.
	Masked bool
	// Iters is the number of state steps executed (identical on/off).
	Iters int
	// HostMS is the host wall-clock time of the stepping loop.
	HostMS float64
	// FallbackDraws is the engine's lane-fallback counter: how many draws
	// wanted lane-batched shading but ran per-fragment.
	FallbackDraws int64
	// Checksum is an FNV-1a hash of the final state — identical on/off.
	Checksum uint64
	// VirtualTime is the engine's virtual clock after the loop —
	// identical on/off: masking never touches the modelled device.
	VirtualTime timing.Time
}

// Name is the stable figure label, e.g. "masked/jacobi/on".
func (r MaskedResult) Name() string {
	state := "off"
	if r.Masked {
		state = "on"
	}
	return fmt.Sprintf("masked/%s/%s", r.Workload, state)
}

// MaskedOpts controls the masked-lane benchmarks.
type MaskedOpts struct {
	// Size is the grid edge length (default 128).
	Size int
	// Iters is the step count of each workload loop (default 200).
	Iters int
}

func (o MaskedOpts) withDefaults() MaskedOpts {
	if o.Size == 0 {
		o.Size = 128
	}
	if o.Iters == 0 {
		o.Iters = 200
	}
	return o
}

// maskedEngine builds a benchmark engine with masked lanes on or off. The
// lane engine itself stays on in both: the comparison is masked batches
// versus the per-fragment fallback, not lanes versus no lanes.
func maskedEngine(size int, masked bool) (*core.Engine, error) {
	return core.NewEngine(core.Config{
		Device: device.Generic(),
		Width:  size, Height: size,
		Swap:          core.SwapNone,
		Target:        core.TargetTexture,
		UseVBO:        true,
		NoMaskedLanes: !masked,
	})
}

// maskedChecksum folds float64 state into the same FNV-1a stream the
// coherence benchmarks use for raw bytes.
func maskedChecksum(data []float64) uint64 {
	const prime = 1099511628211
	sum := uint64(14695981039346656037)
	for _, v := range data {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			sum = (sum ^ (bits >> s & 0xFF)) * prime
		}
	}
	return sum
}

// maskedWorkload steps one branchy workload on a prepared engine and
// returns the step count, a checksum of the final state, and any error.
type maskedWorkload struct {
	name string
	run  func(ctx context.Context, e *core.Engine, o MaskedOpts) (int, uint64, error)
}

func maskedWorkloads() []maskedWorkload {
	return []maskedWorkload{
		{"jacobi", func(ctx context.Context, e *core.Engine, o MaskedOpts) (int, uint64, error) {
			r, err := core.NewJacobi(e, maskedPlate(o.Size))
			if err != nil {
				return 0, 0, err
			}
			defer r.Release()
			for i := 0; i < o.Iters; i++ {
				if err := r.RunOnce(ctx); err != nil {
					return 0, 0, err
				}
			}
			m, err := r.Result()
			if err != nil {
				return 0, 0, err
			}
			return o.Iters, maskedChecksum(m.Data), nil
		}},
		{"jacobi8", func(ctx context.Context, e *core.Engine, o MaskedOpts) (int, uint64, error) {
			r, err := core.NewJacobi8(e, maskedPlate(o.Size))
			if err != nil {
				return 0, 0, err
			}
			defer r.Release()
			for i := 0; i < o.Iters; i++ {
				if err := r.RunOnce(ctx); err != nil {
					return 0, 0, err
				}
			}
			state, err := r.State()
			if err != nil {
				return 0, 0, err
			}
			return o.Iters, cohChecksum(state), nil
		}},
	}
}

// maskedPlate is the jacobi boundary condition: hot left edge.
func maskedPlate(n int) *codec.Matrix {
	return cohPlate(n)
}

// Masked measures every branchy workload with divergence-masked lane
// execution on and off, enforcing the bit-identity contract and the
// fallback-counter evidence that the two runs really took different
// paths. ctx cancels between workloads.
func Masked(ctx context.Context, o MaskedOpts) ([]MaskedResult, error) {
	o = o.withDefaults()
	var out []MaskedResult
	for _, w := range maskedWorkloads() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var ref MaskedResult
		for _, masked := range []bool{true, false} {
			e, err := maskedEngine(o.Size, masked)
			if err != nil {
				return nil, fmt.Errorf("masked %s: %w", w.name, err)
			}
			start := time.Now()
			iters, sum, err := w.run(ctx, e, o)
			if err != nil {
				return nil, fmt.Errorf("masked %s: %w", w.name, err)
			}
			host := time.Since(start)
			e.Finish()
			r := MaskedResult{
				Workload:      w.name,
				Masked:        masked,
				Iters:         iters,
				HostMS:        float64(host.Microseconds()) / 1000,
				FallbackDraws: e.LaneFallbackDraws(),
				Checksum:      sum,
				VirtualTime:   e.Now(),
			}
			if masked {
				if r.FallbackDraws != 0 {
					return nil, fmt.Errorf("masked %s: %d draws fell back with masking on (kernel not mask-eligible?)", w.name, r.FallbackDraws)
				}
				ref = r
			} else {
				// The masking contract: only host time may differ.
				if r.Checksum != ref.Checksum {
					return nil, fmt.Errorf("masked %s: final state differs with masking on vs off (contract broken)", w.name)
				}
				if r.Iters != ref.Iters {
					return nil, fmt.Errorf("masked %s: %d iters with masking off, %d on (contract broken)", w.name, r.Iters, ref.Iters)
				}
				if r.VirtualTime != ref.VirtualTime {
					return nil, fmt.Errorf("masked %s: virtual time %v with masking off, %v on (contract broken)", w.name, r.VirtualTime, ref.VirtualTime)
				}
				if r.FallbackDraws == 0 {
					return nil, fmt.Errorf("masked %s: no fallback draws with masking off — the A/B pair ran the same path", w.name)
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}
