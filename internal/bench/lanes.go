package bench

// Lane-batched shader-execution microbenchmarks: how fast the host
// simulates one shader invocation when batches of W fragments run through
// each instruction at once (internal/shader/lanes.go), across
// W ∈ {1, 4, 8, 16}. W=1 is the per-fragment closure JIT baseline, so
// lanes-vs-w1 is the dispatch-amortisation speedup in isolation, and the
// sweep is what picks shader.DefaultLaneWidth.
//
// Every width replays exactly the same invocation stream and must produce
// a bit-identical output checksum and virtual-cycle/TexFetch totals — the
// lane engine's correctness contract, enforced here on every run, not just
// under -race in tests.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/shader/analysis"
)

// LaneMicroResult is one lane-width microbenchmark measurement.
type LaneMicroResult struct {
	Kernel string
	// Width is the SoA batch width; 1 is the per-fragment JIT baseline.
	Width       int
	Invocations int
	HostMS      float64
	// Cycles and Checksum are bit-identical across every width of the same
	// kernel (enforced): virtual time and results do not depend on W.
	Cycles   int64
	Checksum uint64
}

// Name is the stable figure label, e.g. "micro/lanes/sum/w8".
func (r LaneMicroResult) Name() string {
	return fmt.Sprintf("micro/lanes/%s/w%d", r.Kernel, r.Width)
}

// laneMicroWidths is the measured sweep; 1 is the scalar baseline.
var laneMicroWidths = []int{1, 4, 8, 16}

// laneHashSampler is the deterministic texture fetch used by every width,
// the same hash as the micro.go sampler.
func laneHashSampler(idx int, u, v float32) shader.Vec4 {
	h := math.Float32bits(u)*2654435761 + math.Float32bits(v)*40503 + uint32(idx)*97
	return shader.Vec4{
		float32(h&0xff) / 255,
		float32((h>>8)&0xff) / 255,
		float32((h>>16)&0xff) / 255,
		float32((h>>24)&0xff) / 255,
	}
}

// checksumFold folds one output vector into an FNV-1a running hash, over
// the raw float32 bit patterns so ±0 and NaN payloads count.
func checksumFold(sum uint64, v shader.Vec4) uint64 {
	const prime = 1099511628211
	for c := 0; c < 4; c++ {
		bits := math.Float32bits(v[c])
		for s := 0; s < 32; s += 8 {
			sum = (sum ^ uint64(bits>>s&0xff)) * prime
		}
	}
	return sum
}

// LaneMicro measures the straight-line kernels at every lane width,
// running invocations invocations per configuration (0 means 8192; any
// remainder modulo a width exercises the partial-batch path). ctx cancels
// between kernels.
func LaneMicro(ctx context.Context, invocations int) ([]LaneMicroResult, error) {
	if invocations <= 0 {
		invocations = 8192
	}
	o := kernels.DefaultOptions
	sgemm, err := kernels.SgemmPass(1024, 16, o)
	if err != nil {
		return nil, err
	}
	kset := []struct {
		name string
		src  string
	}{
		{"sum", kernels.Sum(o)},
		{"sgemm16", sgemm},
		{"conv3x3", kernels.Conv3x3(1024, 1024, o)},
	}
	cost := device.Generic().CostModel
	var out []LaneMicroResult
	for _, k := range kset {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs, err := glsl.Frontend(k.src, glsl.CompileOptions{Stage: glsl.StageFragment})
		if err != nil {
			return nil, fmt.Errorf("lane micro %s: %w", k.name, err)
		}
		p, err := shader.Compile(cs)
		if err != nil {
			return nil, fmt.Errorf("lane micro %s: %w", k.name, err)
		}
		if op := analysis.Optimize(p); op != nil {
			if err := p.SetOptimized(op); err != nil {
				return nil, fmt.Errorf("lane micro %s: %w", k.name, err)
			}
		}
		outVar, hasOut := p.LookupOutput("gl_FragColor")
		if !hasOut {
			return nil, fmt.Errorf("lane micro %s: no gl_FragColor", k.name)
		}

		// One fixed invocation stream shared by every width: per-invocation
		// inputs and one uniform set, both from a seeded generator.
		rng := rand.New(rand.NewSource(42))
		nuni := p.NumUniform
		if nuni < 1 {
			nuni = 1
		}
		uniforms := make([]shader.Vec4, nuni)
		for i := range uniforms {
			for c := 0; c < 4; c++ {
				uniforms[i][c] = rng.Float32()
			}
		}
		nin := p.NumInputs
		inputs := make([]shader.Vec4, invocations*nin)
		for i := range inputs {
			for c := 0; c < 4; c++ {
				inputs[i][c] = rng.Float32()
			}
		}

		var wantCycles, wantTex int64
		var wantSum uint64
		first := true
		for _, w := range laneMicroWidths {
			var host time.Duration
			var cycles, tex int64
			sum := uint64(14695981039346656037)
			if w == 1 {
				exec := shader.Executor(p, &cost, true, true)
				env := shader.NewEnv(p)
				env.Uniforms = uniforms
				env.Sample = laneHashSampler
				start := time.Now()
				for i := 0; i < invocations; i++ {
					copy(env.Inputs, inputs[i*nin:(i+1)*nin])
					if err := exec(env); err != nil {
						return nil, fmt.Errorf("lane micro %s: %w", k.name, err)
					}
					sum = checksumFold(sum, env.Outputs[outVar.Reg])
				}
				host = time.Since(start)
				cycles, tex = env.Cycles, env.TexFetches
			} else {
				lc := p.LaneCompiledOpt(&cost, w)
				if lc == nil {
					return nil, fmt.Errorf("lane micro %s: width %d did not lane-compile: %s",
						k.name, w, shader.LaneFallbackReason(p))
				}
				env := shader.NewLaneEnv(p, w)
				env.SetUniforms(uniforms)
				env.Sample = laneHashSampler
				start := time.Now()
				for i := 0; i < invocations; i += w {
					n := invocations - i
					if n > w {
						n = w
					}
					for l := 0; l < n; l++ {
						for reg := 0; reg < nin; reg++ {
							env.SetInput(l, reg, inputs[(i+l)*nin+reg])
						}
					}
					env.N = n
					lc.Run(env)
					for l := 0; l < n; l++ {
						sum = checksumFold(sum, env.Output(l, outVar.Reg))
					}
				}
				host = time.Since(start)
				cycles, tex = env.Cycles, env.TexFetches
			}
			if first {
				wantCycles, wantTex, wantSum, first = cycles, tex, sum, false
			} else {
				if cycles != wantCycles || tex != wantTex {
					return nil, fmt.Errorf("lane micro %s: w%d: %d cycles/%d fetches, want %d/%d (lane contract broken)",
						k.name, w, cycles, tex, wantCycles, wantTex)
				}
				if sum != wantSum {
					return nil, fmt.Errorf("lane micro %s: w%d: checksum %#x, want %#x (lane contract broken)",
						k.name, w, sum, wantSum)
				}
			}
			out = append(out, LaneMicroResult{
				Kernel: k.name, Width: w,
				Invocations: invocations,
				HostMS:      float64(host.Microseconds()) / 1000,
				Cycles:      cycles,
				Checksum:    sum,
			})
		}
	}
	return out, nil
}
