package bench

import (
	"context"
	"strings"
	"testing"

	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
)

// testOpts keeps harness tests quick: smaller timing size and fewer
// repetitions than the paper-scale defaults (ratios shift slightly but all
// qualitative relations must hold).
func testOpts() Opts {
	return Opts{PaperSize: 512, CalibSize: 32, Warm: 4, Iters: 20}
}

func TestMeasureValidates(t *testing.T) {
	cfg := core.Config{Device: device.Generic(), Swap: core.SwapNone, Target: core.TargetTexture, UseVBO: true}
	r, err := Measure(context.Background(), cfg, Spec{Workload: WSum}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.PerIteration <= 0 {
		t.Error("no time elapsed")
	}
	if r.ValidationErr > 1e-4 {
		t.Errorf("validation error %g", r.ValidationErr)
	}
	if r.Stats.Draws == 0 {
		t.Error("no draws recorded")
	}
}

func TestMeasureSgemmWorkload(t *testing.T) {
	cfg := core.Config{Device: device.Generic(), Swap: core.SwapNone, Target: core.TargetTexture, UseVBO: true}
	r, err := Measure(context.Background(), cfg, Spec{Workload: WSgemm, Block: 8}, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// One iteration = 512/8 = 64 passes.
	if r.Stats.Draws < 64 {
		t.Errorf("draws = %d, want >= 64 per multiplication", r.Stats.Draws)
	}
}

func TestFig3QualitativeShape(t *testing.T) {
	o := testOpts()
	r, err := Fig3(context.Background(), Devices(), o)
	if err != nil {
		t.Fatal(err)
	}
	vc := r.Speedup["VCore sum"]
	if len(vc) != 4 {
		t.Fatalf("VCore sum steps = %d", len(vc))
	}
	// VideoCore sum: large gain from interval 0 (vsync was gating), more
	// from removing the swap entirely.
	if vc[1] < 4 {
		t.Errorf("VCore sum interval0 speedup %.2f, want >> 1 (paper 9.22)", vc[1])
	}
	if vc[2] <= vc[1] {
		t.Errorf("no-swap (%.2f) not better than interval0 (%.2f)", vc[2], vc[1])
	}
	// SGX: interval 0 has NO effect (not vsync-gated), removing the swap
	// helps a lot for sum.
	sgx := r.Speedup["SGX sum"]
	if sgx[1] < 0.99 || sgx[1] > 1.01 {
		t.Errorf("SGX interval0 speedup %.2f, want 1.00 (paper: no effect)", sgx[1])
	}
	if sgx[2] < 1.5 {
		t.Errorf("SGX no-swap speedup %.2f, want substantial (paper 3.47)", sgx[2])
	}
	// sgemm is fragment-bound: far smaller swap effects than sum.
	for _, dev := range []string{"SGX", "VCore"} {
		sg := r.Speedup[dev+" sgemm"]
		sm := r.Speedup[dev+" sum"]
		if sg[2] >= sm[2] {
			t.Errorf("%s: sgemm no-swap speedup %.2f not below sum %.2f (compute-bound kernels benefit less)", dev, sg[2], sm[2])
		}
	}
	// fp24 improves (or at least never hurts) every series.
	for series, sp := range r.Speedup {
		if sp[3] < sp[2]*0.999 {
			t.Errorf("%s: fp24 regressed %.3f -> %.3f", series, sp[2], sp[3])
		}
	}
	if r.Headline < 10 {
		t.Errorf("headline combined speedup %.1f, want >10x (paper >16x at full size)", r.Headline)
	}
	if !strings.Contains(r.Table().String(), "Figure 3") {
		t.Error("table missing title")
	}
}

func TestFig4aQualitativeShape(t *testing.T) {
	r, err := Fig4a(context.Background(), Devices(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"SGX", "VCore"} {
		m := r.TexOverFB[dev]
		// sum without dependencies: texture rendering clearly wins.
		if m["sum"] < 1.5 {
			t.Errorf("%s sum: texture/FB = %.2f, want >1.5 (paper: orders of magnitude)", dev, m["sum"])
		}
		// sgemm: framebuffer rendering wins (<= 1).
		if m["sgemm"] > 1.05 {
			t.Errorf("%s sgemm: texture/FB = %.2f, want <= ~1 (paper: FB wins)", dev, m["sgemm"])
		}
	}
	// With artificial dependencies: SGX still prefers texture, VideoCore
	// flips to the framebuffer (DMA-assisted copies).
	if r.TexOverFB["SGX"]["sum+dep"] <= 1 {
		t.Errorf("SGX sum+dep: texture/FB = %.2f, want > 1", r.TexOverFB["SGX"]["sum+dep"])
	}
	if r.TexOverFB["VCore"]["sum+dep"] >= 1 {
		t.Errorf("VCore sum+dep: texture/FB = %.2f, want < 1", r.TexOverFB["VCore"]["sum+dep"])
	}
}

func TestFig4bQualitativeShape(t *testing.T) {
	o := testOpts()
	o.Iters = 10
	r, err := Fig4b(context.Background(), Devices(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"SGX", "VCore"} {
		for _, target := range []string{"framebuffer", "texture"} {
			times := r.Times[dev][target]
			// Performance increases with block size: time per multiply
			// strictly decreases.
			for i := 1; i < len(times); i++ {
				if times[i] >= times[i-1] {
					t.Errorf("%s %s: block %d (%v) not faster than block %d (%v)",
						dev, target, r.Blocks[i], times[i], r.Blocks[i-1], times[i-1])
				}
			}
		}
		// >16 fails compilation.
		if len(r.CompileFail[dev]) == 0 {
			t.Errorf("%s: no compile failures recorded for blocks > 16", dev)
		}
	}
	// SGX: FB loses at small blocks, wins at 16 (paper crossover at 4; at
	// the reduced test size the crossover may shift by one step).
	sgxFB, sgxTex := r.Times["SGX"]["framebuffer"], r.Times["SGX"]["texture"]
	if sgxFB[0] <= sgxTex[0] {
		t.Errorf("SGX block 1: FB (%v) should lose to texture (%v)", sgxFB[0], sgxTex[0])
	}
	last := len(sgxFB) - 1
	if sgxFB[last] > sgxTex[last] {
		t.Errorf("SGX block 16: FB (%v) should win over texture (%v)", sgxFB[last], sgxTex[last])
	}
	// VideoCore: FB wins at every block size.
	vcFB, vcTex := r.Times["VCore"]["framebuffer"], r.Times["VCore"]["texture"]
	for i := range vcFB {
		if vcFB[i] > vcTex[i] {
			t.Errorf("VCore block %d: FB (%v) should win over texture (%v)", r.Blocks[i], vcFB[i], vcTex[i])
		}
	}
}

func TestFig5QualitativeShape(t *testing.T) {
	// The reuse trade-off balances per-iteration allocation costs (fixed)
	// against copy/upload traffic (scales with size): it only lands where
	// the paper measured it at the paper's matrix size.
	o := testOpts()
	o.PaperSize = 1024
	// 5a: texture rendering.
	ra, err := Fig5(context.Background(), Devices(), core.TargetTexture, o)
	if err != nil {
		t.Fatal(err)
	}
	if v := ra.Speedup["VCore"]["sum"]; v < 1.05 {
		t.Errorf("5a VCore sum reuse speedup %.2f, want > 1.05 (paper +15%%)", v)
	}
	if v := ra.Speedup["SGX"]["sum"]; v > 1.0 {
		t.Errorf("5a SGX sum reuse speedup %.2f, want <= 1.0 (paper -2..7%%)", v)
	}
	// 5b: framebuffer rendering — no improvement anywhere; SGX sgemm
	// degrades notably (false sharing).
	rb, err := Fig5(context.Background(), Devices(), core.TargetFramebuffer, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"SGX", "VCore"} {
		for _, w := range []string{"sum", "sgemm"} {
			if v := rb.Speedup[dev][w]; v > 1.05 {
				t.Errorf("5b %s %s: reuse speedup %.2f, want <= ~1", dev, w, v)
			}
		}
	}
	if v := rb.Speedup["SGX"]["sgemm"]; v > 0.92 {
		t.Errorf("5b SGX sgemm: reuse speedup %.2f, want noticeable degradation (paper 0.70)", v)
	}
	if v := rb.Speedup["VCore"]["sgemm"]; v < 0.92 {
		t.Errorf("5b VCore sgemm: reuse speedup %.2f, want ~1 (DMA hides the copy)", v)
	}
}

func TestVBOExperiment(t *testing.T) {
	r, err := FigVBO(context.Background(), Devices(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// VideoCore (CPU-bound sum): VBOs help a little; STATIC is the best
	// hint.
	vc := r.Speedup["VCore"]
	if vc[1] < 1.0 {
		t.Errorf("VCore STATIC VBO speedup %.3f, want >= 1", vc[1])
	}
	if vc[1] < vc[3] {
		t.Errorf("STATIC (%.3f) should beat DYNAMIC (%.3f)", vc[1], vc[3])
	}
	// The effect is small, as the paper says (≤ a few percent).
	if vc[1] > 1.1 {
		t.Errorf("VBO speedup %.3f implausibly large (paper: up to 1.5%%)", vc[1])
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Columns: []string{"a", "bb"}}
	tab.AddRow("x", "1.00x")
	s := tab.String()
	for _, want := range []string{"T", "n", "bb", "1.00x"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestIncrementalJourney(t *testing.T) {
	o := testOpts()
	o.PaperSize = 1024 // reuse and copy trade-offs are size-sensitive
	o.Iters = 10
	// VideoCore sum: the journey must at least recover the vsync gate and
	// end far faster than the naive port.
	r, err := Incremental(context.Background(), device.VideoCoreIV(), Spec{Workload: WSum}, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSpeedup < 3 {
		t.Errorf("VCore sum journey speedup %.1f, want substantial", r.TotalSpeedup)
	}
	if r.Final >= r.Naive {
		t.Error("journey did not improve on the naive port")
	}
	kept := map[string]bool{}
	for _, s := range r.Steps {
		if s.Kept && s.Time > r.Naive {
			t.Errorf("step %q kept but slower than naive", s.Name)
		}
		kept[s.Name] = s.Kept
	}
	if !kept["eglSwapInterval(0)"] {
		t.Error("VideoCore journey must keep eglSwapInterval(0) (vsync gate)")
	}
	// VideoCore sgemm: texture rendering must be REJECTED (Fig. 4a: FB
	// wins on VideoCore for the multi-pass kernel).
	r2, err := Incremental(context.Background(), device.VideoCoreIV(), Spec{Workload: WSgemm, Block: 16}, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range r2.Steps {
		if s.Name == "texture rendering (FBO)" && s.Kept {
			t.Error("VideoCore sgemm journey kept texture rendering; the paper's Fig. 4a says FB wins")
		}
	}
	if !strings.Contains(r.Table().String(), "journey") {
		t.Error("table missing title")
	}
}

func TestAblationStudy(t *testing.T) {
	o := testOpts()
	o.Iters = 10
	r, err := Ablation(context.Background(), device.VideoCoreIV(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 5 {
		t.Fatalf("ablation rows = %d", len(r.Rows))
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
		if row.Baseline <= 0 || row.Ablated <= 0 {
			t.Errorf("%s: non-positive times", row.Name)
		}
	}
	// Removing the deferred overlap must hurt the pipelined sum.
	if row := byName["deferred frame overlap (sum)"]; row.Impact <= 1 {
		t.Errorf("deferred overlap impact %.2f, want > 1", row.Impact)
	}
	// Removing glClear invalidation must hurt (tile reload + dependency).
	if row := byName["glClear target invalidation (sum)"]; row.Impact <= 1.2 {
		t.Errorf("invalidation impact %.2f, want > 1.2", row.Impact)
	}
	// Removing the flush *penalty* speeds the hazard up (it is a cost, not
	// an optimisation): impact < 1.
	if row := byName["dependency flush penalty (sgemm, texture)"]; row.Impact >= 1 {
		t.Errorf("flush-penalty impact %.2f, want < 1", row.Impact)
	}
	if !strings.Contains(r.Table().String(), "Ablation") {
		t.Error("table missing title")
	}
}

func TestMeasureRejectsBadWorkload(t *testing.T) {
	cfg := core.Config{Device: device.Generic(), Swap: core.SwapNone, Target: core.TargetTexture}
	if _, err := Measure(context.Background(), cfg, Spec{Workload: Workload(99)}, testOpts()); err == nil {
		t.Error("unknown workload accepted")
	}
}
