// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§V): the vsync ladder (Fig. 3), the
// VBO usage-hint text result, framebuffer-versus-texture rendering
// (Fig. 4a), sgemm blocking (Fig. 4b) and texture-memory reuse (Fig. 5).
//
// Methodology (mirroring §V-A): each benchmark body is executed repeatedly
// and the steady-state virtual time per iteration is reported. One
// iteration runs functionally at a small calibration size and is validated
// against the CPU references; the measured per-fragment costs (exact for
// these data-independent kernels) then drive a timing-only simulation at
// the paper's 1024×1024 size for the configured repetition count.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/gpu"
	"gles2gpgpu/internal/ref"
	"gles2gpgpu/internal/timing"
)

// Workload selects the benchmark.
type Workload int

// Workloads.
const (
	WSum Workload = iota
	// WSumDep is sum with an artificial dependency between consecutive
	// kernels (Fig. 4a's right-hand experiment).
	WSumDep
	// WSgemm is the multi-pass blocked matrix multiply; one iteration is
	// one full multiplication (M/block passes).
	WSgemm
)

func (w Workload) String() string {
	switch w {
	case WSumDep:
		return "sum+dep"
	case WSgemm:
		return "sgemm"
	}
	return "sum"
}

// Spec is a workload instance.
type Spec struct {
	Workload Workload
	Block    int // sgemm block size
}

// Opts controls the measurement methodology.
type Opts struct {
	// PaperSize is the matrix dimension of the timing runs (default 1024,
	// the paper's size).
	PaperSize int
	// CalibSize is the matrix dimension of the functional validation run
	// (default 64).
	CalibSize int
	// Warm and Iters are the warm-up and measured repetition counts of
	// the benchmark body (defaults 8 and 100).
	Warm, Iters int
	// Seed drives the random inputs.
	Seed int64
	// SkipValidation disables the CPU-reference check (used by ablations
	// that perturb the device model, not the numerics).
	SkipValidation bool
	// Workers overrides the host fragment-shading worker count for the
	// functional calibration run (0: engine default). It affects only how
	// long the calibration takes on the host, never the virtual-time
	// measurements.
	Workers int
	// NoJIT runs the functional calibration on the reference shader
	// interpreter instead of the closure-compiled engine. Like Workers it
	// changes host time only, never the virtual-time measurements.
	NoJIT bool
	// NoPasses disables the host-side shader optimisation passes for the
	// functional calibration. Like NoJIT it changes host time only: the
	// passes are cycle-neutral, so virtual-time figures are identical.
	NoPasses bool
	// NoTiling shades the functional calibration in horizontal bands
	// instead of the tile-binned engine. Host time only, like NoJIT.
	NoTiling bool
	// TileSize overrides the tiled engine's tile edge length (0: default).
	TileSize int
	// NoLanes shades the functional calibration one fragment at a time
	// instead of lane-batched SoA execution. Host time only, like NoJIT.
	NoLanes bool
	// LaneWidth overrides the lane-batched engine's SoA batch width
	// (0: shader.DefaultLaneWidth). Host time only, like NoJIT.
	LaneWidth int
	// NoMaskedLanes disables divergence-masked lane execution, so branchy
	// programs (jacobi) shade per-fragment. Host time only, like NoJIT.
	NoMaskedLanes bool
	// NoCoherence disables the cross-iteration tile-coherence cache for
	// the functional calibration. Host time only, like NoJIT: elided
	// tiles replay their exact prior bytes and modelled cost.
	NoCoherence bool
}

func (o Opts) withDefaults() Opts {
	if o.PaperSize == 0 {
		o.PaperSize = 1024
	}
	if o.CalibSize == 0 {
		o.CalibSize = 64
	}
	if o.Warm == 0 {
		o.Warm = 8
	}
	if o.Iters == 0 {
		o.Iters = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result is one measured configuration.
type Result struct {
	// PerIteration is the steady-state virtual time per benchmark body.
	PerIteration timing.Time
	// ValidationErr is the max abs error of the functional run against
	// the CPU reference.
	ValidationErr float64
	// Stats are the machine counters of the timing run.
	Stats gpu.Stats
	// HostTime is the host wall-clock time of the functional calibration
	// run — the part parallel shading accelerates. Purely informational;
	// it never feeds the virtual-time model.
	HostTime time.Duration
}

// randMatrix produces a unit-range matrix of values in [0, 0.999].
func randMatrix(n int, seed int64) *codec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := codec.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 0.999
	}
	return m
}

type builtRunner struct {
	runner  core.Runner
	kernel  *core.Kernel
	engine  *core.Engine
	wantRef func() []float64
	n       int
}

// build instantiates the workload on an engine with the given grid size.
func build(cfg core.Config, spec Spec, n int, seed int64, timingOnly bool) (*builtRunner, error) {
	cfg.Width, cfg.Height = n, n
	if spec.Workload == WSumDep {
		cfg.ArtificialDependency = true
	}
	e, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if timingOnly {
		e.SetTimingOnly(true)
	}
	a := codec.NewMatrix(n, n)
	b := codec.NewMatrix(n, n)
	if !timingOnly {
		a = randMatrix(n, seed)
		b = randMatrix(n, seed+1)
	}
	br := &builtRunner{engine: e, n: n}
	switch spec.Workload {
	case WSum, WSumDep:
		r, err := core.NewSum(e, a, b)
		if err != nil {
			return nil, err
		}
		br.runner, br.kernel = r, r.Kernel()
		br.wantRef = func() []float64 {
			want := make([]float64, n*n)
			ref.Sum(a.Data, b.Data, want)
			return want
		}
	case WSgemm:
		block := spec.Block
		if block <= 0 {
			block = 16
		}
		r, err := core.NewSgemm(e, a, b, block)
		if err != nil {
			return nil, err
		}
		br.runner, br.kernel = r, r.Kernel()
		br.wantRef = func() []float64 {
			want := make([]float64, n*n)
			ref.Sgemm(n, a.Data, b.Data, want)
			return want
		}
	default:
		return nil, fmt.Errorf("bench: unknown workload %d", spec.Workload)
	}
	return br, nil
}

// Measure runs one configuration per the package methodology. ctx cancels
// the measurement between iterations (and between the passes of multi-pass
// workloads, via Runner.RunOnce).
func Measure(ctx context.Context, cfg core.Config, spec Spec, o Opts) (Result, error) {
	o = o.withDefaults()
	var res Result

	// Functional calibration + validation.
	if o.Workers != 0 {
		cfg.Workers = o.Workers
	}
	if o.NoJIT {
		cfg.NoJIT = true
	}
	if o.NoPasses {
		cfg.NoPasses = true
	}
	if o.NoTiling {
		cfg.NoTiling = true
	}
	if o.TileSize != 0 {
		cfg.TileSize = o.TileSize
	}
	if o.NoLanes {
		cfg.NoLanes = true
	}
	if o.LaneWidth != 0 {
		cfg.LaneWidth = o.LaneWidth
	}
	if o.NoMaskedLanes {
		cfg.NoMaskedLanes = true
	}
	if o.NoCoherence {
		cfg.NoCoherence = true
	}
	hostStart := time.Now()
	cal, err := build(cfg, spec, o.CalibSize, o.Seed, false)
	if err != nil {
		return res, fmt.Errorf("bench: calibration: %w", err)
	}
	if err := cal.runner.RunOnce(ctx); err != nil {
		return res, fmt.Errorf("bench: calibration run: %w", err)
	}
	res.HostTime = time.Since(hostStart)
	if !o.SkipValidation {
		got, err := cal.runner.Result()
		if err != nil {
			return res, err
		}
		res.ValidationErr = ref.MaxAbsDiff(cal.wantRef(), got.Data)
		tol := validationTolerance(spec, o.CalibSize)
		if res.ValidationErr > tol {
			return res, fmt.Errorf("bench: validation failed: max error %g > %g", res.ValidationErr, tol)
		}
	}
	frags, cycles, tex, ok := cal.engine.GL().DrawStatsFor(cal.kernel.Program(), o.CalibSize, o.CalibSize)
	if !ok || frags == 0 {
		return res, fmt.Errorf("bench: no draw stats measured")
	}

	// Paper-size timing simulation.
	paper, err := build(cfg, spec, o.PaperSize, o.Seed, true)
	if err != nil {
		return res, fmt.Errorf("bench: timing build: %w", err)
	}
	n2 := int64(o.PaperSize) * int64(o.PaperSize)
	paper.engine.GL().PrimeStats(paper.kernel.Program(), o.PaperSize, o.PaperSize,
		n2, cycles*n2/frags, tex*n2/frags)
	for i := 0; i < o.Warm; i++ {
		if err := paper.runner.RunOnce(ctx); err != nil {
			return res, err
		}
	}
	t0 := paper.engine.Now()
	for i := 0; i < o.Iters; i++ {
		if err := paper.runner.RunOnce(ctx); err != nil {
			return res, err
		}
	}
	paper.engine.Finish()
	res.PerIteration = (paper.engine.Now() - t0) / timing.Time(o.Iters)
	res.Stats = paper.engine.Machine().Stats
	return res, nil
}

// validationTolerance bounds the acceptable GPU-vs-CPU error: the [13]
// encoding quantum scaled by the output range plus float32 arithmetic
// noise accumulated over the pass count.
func validationTolerance(spec Spec, n int) float64 {
	if spec.Workload == WSgemm {
		// Output range [0,n), up to n/block passes of accumulated
		// truncation; 1e-2 absolute is comfortably above the worst case
		// at calibration sizes and far below any real defect.
		return 1e-2
	}
	return 1e-4
}
