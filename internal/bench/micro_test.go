package bench

import (
	"context"
	"testing"
)

// TestSamplingMicroBitIdentity runs every sampler configuration with a small
// fetch budget; SamplingMicro itself errors if the specialized and generic
// checksums ever diverge.
func TestSamplingMicroBitIdentity(t *testing.T) {
	results, err := SamplingMicro(context.Background(), 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8 (4 configs x spec/generic)", len(results))
	}
}

// TestFragMicroBitIdentity runs the fragment-path measurement on a small
// grid; FragMicro errors if the fast and baseline pipelines disagree on
// fragment count or any fetched texel bit.
func TestFragMicroBitIdentity(t *testing.T) {
	results, err := FragMicro(context.Background(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.Fragments != 64*64 {
			t.Errorf("%s: covered %d fragments, want %d", r.Name(), r.Fragments, 64*64)
		}
	}
}
