package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", w, c)
			} else {
				parts[i] = fmt.Sprintf("%*s", w, c)
			}
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := len(t.Columns) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Write(&sb)
	return sb.String()
}

// fmtSpeedup renders a speedup factor the way the paper labels its bars.
func fmtSpeedup(v float64) string { return fmt.Sprintf("%.2fx", v) }

// fmtMs renders a virtual time in milliseconds.
func fmtMs(t interface{ Milliseconds() float64 }) string {
	return fmt.Sprintf("%.3fms", t.Milliseconds())
}
