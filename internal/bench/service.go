package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"gles2gpgpu/internal/serve"
	"gles2gpgpu/internal/timing"
)

// ServiceOpts sizes the service-layer benchmark.
type ServiceOpts struct {
	// Jobs is the job count per configuration (default 48).
	Jobs int
	// N is the matrix dimension (default 64).
	N int
	// Device is the pool to benchmark (default vc4).
	Device string
}

func (o ServiceOpts) withDefaults() ServiceOpts {
	if o.Jobs <= 0 {
		o.Jobs = 48
	}
	if o.N <= 0 {
		o.N = 64
	}
	if o.Device == "" {
		o.Device = "vc4"
	}
	return o
}

// ServiceResult compares one scheduler configuration's cost for the same
// job stream.
type ServiceResult struct {
	Name        string
	Jobs        int
	VirtualTime timing.Time // summed simulated device time
	HostTime    time.Duration
	PoolHitRate float64
	Coalesced   int64
}

// Service measures what the serving layer's reuse machinery is worth: it
// pushes an identical mixed sum/sgemm job stream through three scheduler
// configurations — cold (no tensor pool, single-job batches, no warm-runner
// cache), pooled (residency pool, still unbatched), and batched (pool +
// coalescing) — and reports the virtual device time each one pays. This is
// the service-level rerun of the paper's Fig. 5 argument: allocation work,
// not arithmetic, dominates repeated small kernels.
func Service(ctx context.Context, o ServiceOpts) ([]ServiceResult, error) {
	o = o.withDefaults()
	configs := []struct {
		name string
		cfg  serve.Config
	}{
		{"cold", serve.Config{Devices: []string{o.Device}, QueueDepth: o.Jobs + 1, MaxBatch: 1, TensorPoolBytes: -1, MaxRunners: 1}},
		{"pooled", serve.Config{Devices: []string{o.Device}, QueueDepth: o.Jobs + 1, MaxBatch: 1, MaxRunners: 1}},
		{"batched", serve.Config{Devices: []string{o.Device}, QueueDepth: o.Jobs + 1, MaxBatch: 8, MaxRunners: 4}},
	}
	var out []ServiceResult
	for _, c := range configs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		s, err := serve.New(c.cfg)
		if err != nil {
			return out, err
		}
		var jobs []*serve.Job
		enqueue := func(p serve.Params) error {
			j, err := s.Submit(ctx, p)
			if err != nil {
				return err
			}
			jobs = append(jobs, j)
			return nil
		}
		// The stream alternates runs of sums with sgemm interruptions, so
		// the warm-runner cache and the residency pool both see traffic.
		for i := 0; i < o.Jobs; i++ {
			p := serve.Params{Device: o.Device, Kernel: "sum", N: o.N, Seed: int64(i%4) + 1}
			if i%6 == 5 {
				p = serve.Params{Device: o.Device, Kernel: "sgemm", N: o.N, Block: 16, Seed: 1}
			}
			if err := enqueue(p); err != nil {
				return out, err
			}
		}
		hostStart := time.Now()
		s.Start()
		res := ServiceResult{Name: c.name, Jobs: o.Jobs}
		for i, j := range jobs {
			r, err := j.Wait(ctx)
			if err != nil {
				s.Stop()
				return out, fmt.Errorf("bench: service %s job %d: %w", c.name, i, err)
			}
			res.VirtualTime += r.VirtualTime
		}
		if err := s.Drain(ctx); err != nil {
			return out, err
		}
		res.HostTime = time.Since(hostStart)
		res.PoolHitRate = s.Metrics().PoolHitRate(o.Device)
		res.Coalesced = s.Metrics().CoalescedBatches(o.Device)
		out = append(out, res)
	}
	return out, nil
}

// WriteServiceTable renders Service results as the familiar fixed-width
// report block.
func WriteServiceTable(w io.Writer, results []ServiceResult) {
	fmt.Fprintf(w, "service-layer reuse (virtual device time for an identical job stream)\n")
	fmt.Fprintf(w, "%-8s %12s %12s %10s %10s\n", "config", "virtual", "host", "pool-hit", "coalesced")
	for _, r := range results {
		fmt.Fprintf(w, "%-8s %12v %12v %9.0f%% %10d\n",
			r.Name, r.VirtualTime, r.HostTime.Round(time.Millisecond), r.PoolHitRate*100, r.Coalesced)
	}
}
