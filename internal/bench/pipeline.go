package bench

// Kernel-pipeline benchmarks: host wall-clock and modelled device time of
// the vision pipelines (internal/pipeline) in three execution modes —
// fused (the planner's proof-gated pass fusion), unfused (the same
// resident-intermediate schedule with fusion disabled), and readback (the
// pre-pipeline workflow: every stage's output read back to host floats and
// re-uploaded for the next stage). Fusion changes host time only: every
// fused/unfused pair must reproduce bit-identical output bytes and
// identical virtual time — the fusion contract, enforced here on every run
// like the coherence benchmarks enforce theirs. The readback mode shares
// the bytes (the float↔RGBA8 round trip is lossless) but pays modelled
// readback and upload traffic, so its larger virtual time is the measured
// residency win.

import (
	"context"
	"fmt"
	"time"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/pipeline"
	"gles2gpgpu/internal/timing"
)

// PipelineResult is one pipeline benchmark measurement.
type PipelineResult struct {
	// Workload is the pipeline key, e.g. "sepconv".
	Workload string
	// Mode is "fused", "unfused" or "readback".
	Mode string
	// Iters is the number of end-to-end pipeline runs.
	Iters int
	// HostMS is the host wall-clock time of the run loop.
	HostMS float64
	// Stages is the number of passes per run.
	Stages int
	// PassesFused is the planner's lifetime fused-pass counter (0 outside
	// fused mode).
	PassesFused int64
	// ReadbacksElided counts intermediate results that stayed on-device
	// instead of round-tripping through host floats (0 in readback mode).
	ReadbacksElided int64
	// Checksum is an FNV-1a hash of the declared outputs' raw bytes after
	// the last run — identical across all three modes.
	Checksum uint64
	// VirtualTime is the modelled device clock after the loop — identical
	// fused vs unfused, larger in readback mode.
	VirtualTime timing.Time
}

// Name is the stable figure label, e.g. "pipeline/sepconv/fused".
func (r PipelineResult) Name() string {
	return fmt.Sprintf("pipeline/%s/%s", r.Workload, r.Mode)
}

// PipelineOpts controls the pipeline benchmarks.
type PipelineOpts struct {
	// Size is the image edge length (default 64; must be a power of two
	// for the pyramid workload).
	Size int
	// Iters is the number of end-to-end runs per mode (default 50).
	Iters int
	// NoFuse skips the fused mode (the unfused/readback comparison still
	// runs), mirroring the engine's GLES2GPGPU_NO_FUSE escape hatch.
	NoFuse bool
}

func (o PipelineOpts) withDefaults() PipelineOpts {
	if o.Size == 0 {
		o.Size = 64
	}
	if o.Iters == 0 {
		o.Iters = 50
	}
	return o
}

// pipeWorkload names one vision graph.
type pipeWorkload struct {
	name  string
	graph pipeline.Graph
}

func pipeWorkloads(o PipelineOpts) ([]pipeWorkload, error) {
	n := o.Size
	ko := kernels.DefaultOptions
	pyr, err := pipeline.PyramidGraph(n, 3, ko)
	if err != nil {
		return nil, err
	}
	return []pipeWorkload{
		{"sepconv", pipeline.SepConvGraph(n, n, ko)},
		{"adaptive", pipeline.AdaptiveThresholdGraph(n, n, 2, ko)},
		{"histeq", pipeline.HistEqGraph(n, n, 8, ko)},
		{"sobel", pipeline.SobelGraph(n, n, ko)},
		{"pyramid", pyr},
	}, nil
}

// pipeSource builds the deterministic benchmark input image.
func pipeSource(n int) *codec.Matrix {
	m := codec.NewMatrix(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			// Smooth gradients with a few sharp steps, so the threshold and
			// edge pipelines have structure to find.
			v := 0.5 + 0.4*float64(x-y)/float64(n)
			if (x/8+y/8)%3 == 0 {
				v *= 0.55
			}
			m.Set(y, x, v)
		}
	}
	return m
}

func pipeEngine(size int, noFuse bool) (*core.Engine, error) {
	return core.NewEngine(core.Config{
		Device: device.Generic(),
		Width:  size, Height: size,
		Swap:   core.SwapNone,
		Target: core.TargetTexture,
		UseVBO: true,
		NoFuse: noFuse,
	})
}

// runPlanned measures the pipeline API (fused or unfused) on one workload.
func runPlanned(ctx context.Context, w pipeWorkload, o PipelineOpts, noFuse bool) (PipelineResult, error) {
	e, err := pipeEngine(o.Size, noFuse)
	if err != nil {
		return PipelineResult{}, err
	}
	src := e.NewTensor(o.Size, o.Size, codec.Unit)
	if err := src.Upload(pipeSource(o.Size), false); err != nil {
		return PipelineResult{}, err
	}
	p, err := pipeline.Compile(e, w.graph)
	if err != nil {
		return PipelineResult{}, err
	}
	defer p.Release()
	ext := map[string]*core.Tensor{pipeline.SrcInput: src}
	start := time.Now()
	for i := 0; i < o.Iters; i++ {
		if err := ctx.Err(); err != nil {
			return PipelineResult{}, err
		}
		if _, err := p.Run(ext); err != nil {
			return PipelineResult{}, err
		}
	}
	host := time.Since(start)
	e.Finish()
	vt := e.Now()
	sum := uint64(14695981039346656037)
	for _, out := range w.graph.Outputs {
		raw, err := p.Output(out).ReadRaw()
		if err != nil {
			return PipelineResult{}, err
		}
		sum = fnvFold(sum, raw)
	}
	_, _, passesFused, elided := p.Totals()
	mode := "fused"
	if noFuse {
		mode = "unfused"
	}
	return PipelineResult{
		Workload: w.name, Mode: mode, Iters: o.Iters,
		HostMS:      float64(host.Microseconds()) / 1000,
		Stages:      len(w.graph.Stages),
		PassesFused: passesFused, ReadbacksElided: elided,
		Checksum: sum, VirtualTime: vt,
	}, nil
}

// runReadback measures the pre-pipeline workflow: each stage is its own
// dispatch, and every internal edge round-trips through host floats
// (Tensor.Read then Upload) before the consumer samples it.
func runReadback(ctx context.Context, w pipeWorkload, o PipelineOpts) (PipelineResult, error) {
	e, err := pipeEngine(o.Size, true)
	if err != nil {
		return PipelineResult{}, err
	}
	src := e.NewTensor(o.Size, o.Size, codec.Unit)
	if err := src.Upload(pipeSource(o.Size), false); err != nil {
		return PipelineResult{}, err
	}
	// Per-stage kernels, output tensors, and one scratch tensor per
	// internal edge to hold the re-uploaded host copy. The graph constructors
	// list stages in dependency order.
	type stageRun struct {
		spec    *pipeline.Stage
		kernel  *core.Kernel
		out     *core.Tensor
		scratch []*core.Tensor // nil for external bindings
	}
	runs := make([]stageRun, len(w.graph.Stages))
	outs := map[string]*core.Tensor{}
	for i := range w.graph.Stages {
		spec := &w.graph.Stages[i]
		k, err := e.CachedKernel(spec.Frag)
		if err != nil {
			return PipelineResult{}, fmt.Errorf("%s/%s: %w", w.name, spec.Name, err)
		}
		sr := stageRun{spec: spec, kernel: k,
			out:     e.NewTensor(spec.H, spec.W, codec.Unit),
			scratch: make([]*core.Tensor, len(spec.Inputs))}
		for bi, b := range spec.Inputs {
			if b.Stage != "" {
				prod := outs[b.Stage]
				if prod == nil {
					return PipelineResult{}, fmt.Errorf("%s/%s: stages out of dependency order", w.name, spec.Name)
				}
				sr.scratch[bi] = e.NewTensor(prod.Rows, prod.Cols, codec.Unit)
			}
		}
		outs[spec.Name] = sr.out
		runs[i] = sr
	}
	start := time.Now()
	for i := 0; i < o.Iters; i++ {
		if err := ctx.Err(); err != nil {
			return PipelineResult{}, err
		}
		for _, sr := range runs {
			for name, vals := range sr.spec.Uniforms {
				if len(vals) == 1 {
					sr.kernel.SetFloat(name, vals[0])
				} else {
					sr.kernel.SetFloats(name, vals)
				}
			}
			for bi, b := range sr.spec.Inputs {
				t := src
				if b.Stage != "" {
					// The measured cost of losing residency: decode the
					// producer to host floats, re-encode, re-upload.
					m, err := outs[b.Stage].Read()
					if err != nil {
						return PipelineResult{}, err
					}
					if err := sr.scratch[bi].Upload(m, true); err != nil {
						return PipelineResult{}, err
					}
					t = sr.scratch[bi]
				}
				sr.kernel.BindInput(b.Sampler, bi, t)
			}
			if err := sr.kernel.Dispatch(sr.out); err != nil {
				return PipelineResult{}, fmt.Errorf("%s/%s: %w", w.name, sr.spec.Name, err)
			}
		}
		if err := e.EndIteration(); err != nil {
			return PipelineResult{}, err
		}
	}
	host := time.Since(start)
	e.Finish()
	vt := e.Now()
	sum := uint64(14695981039346656037)
	for _, out := range w.graph.Outputs {
		raw, err := outs[out].ReadRaw()
		if err != nil {
			return PipelineResult{}, err
		}
		sum = fnvFold(sum, raw)
	}
	return PipelineResult{
		Workload: w.name, Mode: "readback", Iters: o.Iters,
		HostMS:   float64(host.Microseconds()) / 1000,
		Stages:   len(w.graph.Stages),
		Checksum: sum, VirtualTime: vt,
	}, nil
}

// fnvFold folds raw bytes into a running FNV-1a hash.
func fnvFold(sum uint64, data []byte) uint64 {
	const prime = 1099511628211
	for _, b := range data {
		sum = (sum ^ uint64(b)) * prime
	}
	return sum
}

// Pipelines measures every vision pipeline in fused, unfused and readback
// mode, enforcing the fusion bit-identity contract between the first two
// and the byte-equality (but not time-equality) of the third. ctx cancels
// between iterations.
func Pipelines(ctx context.Context, o PipelineOpts) ([]PipelineResult, error) {
	o = o.withDefaults()
	ws, err := pipeWorkloads(o)
	if err != nil {
		return nil, err
	}
	var out []PipelineResult
	for _, w := range ws {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		unfused, err := runPlanned(ctx, w, o, true)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s/unfused: %w", w.name, err)
		}
		if !o.NoFuse && pipeline.DefaultFuse() {
			fused, err := runPlanned(ctx, w, o, false)
			if err != nil {
				return nil, fmt.Errorf("pipeline %s/fused: %w", w.name, err)
			}
			// The fusion contract: fusing passes may only change host
			// time, never bytes or modelled time.
			if fused.Checksum != unfused.Checksum {
				return nil, fmt.Errorf("pipeline %s: fused checksum %#x != unfused %#x (contract broken)",
					w.name, fused.Checksum, unfused.Checksum)
			}
			if fused.VirtualTime != unfused.VirtualTime {
				return nil, fmt.Errorf("pipeline %s: fused virtual time %v != unfused %v (contract broken)",
					w.name, fused.VirtualTime, unfused.VirtualTime)
			}
			out = append(out, fused)
		}
		out = append(out, unfused)
		readback, err := runReadback(ctx, w, o)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s/readback: %w", w.name, err)
		}
		if readback.Checksum != unfused.Checksum {
			return nil, fmt.Errorf("pipeline %s: readback checksum %#x != resident %#x",
				w.name, readback.Checksum, unfused.Checksum)
		}
		// The virtual-time gap between readback and resident modes is the
		// measured residency win; it is a result, not a contract — on
		// pipelines whose stages shrink (pyramid) the readback traffic can
		// be cheaper than the per-draw costs it replaces.
		out = append(out, readback)
	}
	return out, nil
}
