package bench

// Fragment-path microbenchmark: the host cost of the per-fragment pipeline
// around the shader core — rasterisation, varying interpolation and the
// sum kernel's two texel fetches — on the canonical GPGPU geometry, a
// full-viewport quad at n=1024. This isolates exactly what PR 5 optimises
// (the paper's thesis is that this plumbing, not kernel arithmetic,
// dominates): the "fast" configuration runs the quad fast path with
// draw-time-specialized samplers, the "baseline" configuration disables
// the quad fast path and fetches through the generic per-fetch sampler —
// the per-fragment machinery exactly as it was before the tiled engine.
// Both configurations fold every fetched texel into a checksum that must
// agree bit-for-bit, and must cover the same fragment count.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/raster"
	"gles2gpgpu/internal/shader"
)

// FragPathResult is one fragment-path measurement.
type FragPathResult struct {
	Config    string // "fast" or "baseline"
	N         int    // viewport edge length
	Fragments int    // fragments shaded per draw (n*n over the two triangles)
	Draws     int
	HostMS    float64
	Checksum  uint32
}

// Name is the stable figure label, e.g. "micro/fragpath/sum1024/fast".
func (r FragPathResult) Name() string {
	return fmt.Sprintf("micro/fragpath/sum%d/%s", r.N, r.Config)
}

// fullQuad builds the two viewport-filling triangles every kernel in this
// repository draws, with one varying carrying the 0..1 texcoord.
func fullQuad(n int) [2]raster.Triangle {
	mk := func(x, y float32) raster.Vertex {
		v := raster.Vertex{Pos: shader.Vec4{x, y, 0, 1}, NumVar: 1}
		v.Varyings[0] = shader.Vec4{x*0.5 + 0.5, y*0.5 + 0.5, 0, 0}
		return v
	}
	bl, br, tl, tr := mk(-1, -1), mk(1, -1), mk(-1, 1), mk(1, 1)
	t0, ok0 := raster.Setup(&bl, &br, &tl, n, n)
	t1, ok1 := raster.Setup(&br, &tr, &tl, n, n)
	if !ok0 || !ok1 {
		panic("bench: fragpath quad setup failed")
	}
	return [2]raster.Triangle{t0, t1}
}

// FragMicro measures the sum-kernel fragment path at n×n (0 means 1024),
// draws times per configuration (0 means 4). The shader core is replaced
// by the cheapest possible consumer so the measurement is the pipeline
// itself; the real end-to-end effect appears in the dispatch figures of
// BENCH_PR5.json.
func FragMicro(ctx context.Context, n, draws int) ([]FragPathResult, error) {
	if n <= 0 {
		n = 1024
	}
	if draws <= 0 {
		draws = 4
	}
	rng := rand.New(rand.NewSource(7))
	mkTexData := func() []byte {
		d := make([]byte, n*n*4)
		rng.Read(d)
		return d
	}
	texA := gles.NewBenchTexture(n, n, gles.NEAREST, gles.CLAMP_TO_EDGE, gles.CLAMP_TO_EDGE, mkTexData())
	texB := gles.NewBenchTexture(n, n, gles.NEAREST, gles.CLAMP_TO_EDGE, gles.CLAMP_TO_EDGE, mkTexData())
	tris := fullQuad(n)

	wasFast := raster.QuadFast()
	defer raster.SetQuadFast(wasFast)

	configs := []struct {
		name string
		fast bool
		a, b shader.TexFunc
	}{
		{"fast", true, texA.SpecializedSampler(), texB.SpecializedSampler()},
		{"baseline", false, texA.GenericSampler(), texB.GenericSampler()},
	}
	var out []FragPathResult
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		raster.SetQuadFast(cfg.fast)
		var sum uint32
		frags := 0
		emit := func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
			uv := varyings[0]
			ta := cfg.a(uv[0], uv[1])
			tb := cfg.b(uv[0], uv[1])
			sum = sum*31 + math.Float32bits(ta[0]+tb[0]) + math.Float32bits(ta[3]+tb[3])
			frags++
		}
		start := time.Now()
		for d := 0; d < draws; d++ {
			for i := range tris {
				tris[i].RasterizeRect(0, 0, n-1, n-1, emit)
			}
		}
		host := time.Since(start)
		out = append(out, FragPathResult{
			Config: cfg.name, N: n, Fragments: frags / draws, Draws: draws,
			HostMS:   float64(host.Microseconds()) / 1000,
			Checksum: sum,
		})
	}
	if out[0].Checksum != out[1].Checksum || out[0].Fragments != out[1].Fragments {
		return nil, fmt.Errorf("bench: fragpath: fast %d frags checksum %08x != baseline %d frags checksum %08x (bit-identity broken)",
			out[0].Fragments, out[0].Checksum, out[1].Fragments, out[1].Checksum)
	}
	return out, nil
}
