package bench

// Cross-iteration tile-coherence benchmarks: host wall-clock time of the
// state-stepping workloads (8-bit jacobi to convergence, particle system,
// Gray-Scott reaction-diffusion) with the coherence cache on versus off,
// plus a controlled sweep over the fraction of the grid that changes every
// iteration (kernels.CoherenceSweep). Elision changes host time only: every
// on/off pair must reproduce bit-identical final state bytes, identical
// iteration counts and identical virtual time — the coherence contract,
// enforced here on every run like the lane benchmarks enforce theirs.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"time"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/timing"
)

// CoherenceResult is one coherence benchmark measurement.
type CoherenceResult struct {
	// Workload is the figure key, e.g. "jacobi8" or "sweep/f0.25".
	Workload string
	// Coherence reports whether the elision cache was enabled.
	Coherence bool
	// Iters is the number of state steps executed (identical on/off).
	Iters int
	// HostMS is the host wall-clock time of the stepping loop.
	HostMS float64
	// Elided and Shaded are the engine's tile-coherence counters.
	Elided, Shaded int64
	// Checksum is an FNV-1a hash of the final raw state bytes — identical
	// on/off by the coherence contract.
	Checksum uint64
	// VirtualTime is the engine's virtual clock after the loop — identical
	// on/off: elision never touches the modelled device.
	VirtualTime timing.Time
}

// Name is the stable figure label, e.g. "coherence/jacobi8/on".
func (r CoherenceResult) Name() string {
	state := "off"
	if r.Coherence {
		state = "on"
	}
	return fmt.Sprintf("coherence/%s/%s", r.Workload, state)
}

// CoherenceOpts controls the coherence benchmarks.
type CoherenceOpts struct {
	// Size is the grid edge length (default 128).
	Size int
	// Iters is the fixed step count of the particles, reaction-diffusion
	// and sweep loops (default 200). The jacobi8 workload instead runs to
	// byte convergence bounded by 20*Iters.
	Iters int
}

func (o CoherenceOpts) withDefaults() CoherenceOpts {
	if o.Size == 0 {
		o.Size = 128
	}
	if o.Iters == 0 {
		o.Iters = 200
	}
	return o
}

// sweepFractions is the measured changing-fraction sweep.
var sweepFractions = []float64{0, 0.25, 0.5, 0.75, 1}

// cohChecksum folds raw state bytes into an FNV-1a hash.
func cohChecksum(state []byte) uint64 {
	const prime = 1099511628211
	sum := uint64(14695981039346656037)
	for _, b := range state {
		sum = (sum ^ uint64(b)) * prime
	}
	return sum
}

// cohEngine builds a benchmark engine with the coherence cache on or off.
func cohEngine(size int, coherence bool) (*core.Engine, error) {
	return core.NewEngine(core.Config{
		Device: device.Generic(),
		Width:  size, Height: size,
		Swap:        core.SwapNone,
		Target:      core.TargetTexture,
		UseVBO:      true,
		NoCoherence: !coherence,
	})
}

// cohPlate is the jacobi8 boundary condition: hot left edge.
func cohPlate(n int) *codec.Matrix {
	g := codec.NewMatrix(n, n)
	for y := 0; y < n; y++ {
		g.Set(y, 0, 0.9)
	}
	return g
}

// cohWorkload steps one workload on a prepared engine and returns the step
// count and final raw state.
type cohWorkload struct {
	name string
	run  func(ctx context.Context, e *core.Engine, o CoherenceOpts) (int, []byte, error)
}

func cohWorkloads(o CoherenceOpts) []cohWorkload {
	fixed := func(mk func(e *core.Engine) (interface {
		RunOnce(context.Context) error
		State() ([]byte, error)
	}, error)) func(ctx context.Context, e *core.Engine, o CoherenceOpts) (int, []byte, error) {
		return func(ctx context.Context, e *core.Engine, o CoherenceOpts) (int, []byte, error) {
			r, err := mk(e)
			if err != nil {
				return 0, nil, err
			}
			for i := 0; i < o.Iters; i++ {
				if err := r.RunOnce(ctx); err != nil {
					return 0, nil, err
				}
			}
			state, err := r.State()
			return o.Iters, state, err
		}
	}
	ws := []cohWorkload{
		{"jacobi8", func(ctx context.Context, e *core.Engine, o CoherenceOpts) (int, []byte, error) {
			r, err := core.NewJacobi8(e, cohPlate(o.Size))
			if err != nil {
				return 0, nil, err
			}
			res, err := r.RunToConvergence(ctx, core.StepOpts{
				MaxIters: 20 * o.Iters, CheckEvery: o.Iters, Tol: 0,
			})
			if err != nil {
				return 0, nil, err
			}
			state, err := r.State()
			return res.Iters, state, err
		}},
		{"particles", fixed(func(e *core.Engine) (interface {
			RunOnce(context.Context) error
			State() ([]byte, error)
		}, error) {
			return core.NewParticles(e, 42)
		})},
		{"reaction-diffusion", fixed(func(e *core.Engine) (interface {
			RunOnce(context.Context) error
			State() ([]byte, error)
		}, error) {
			return core.NewReactionDiffusion(e)
		})},
	}
	for _, f := range sweepFractions {
		frac := f
		ws = append(ws, cohWorkload{
			fmt.Sprintf("sweep/f%.2g", frac),
			func(ctx context.Context, e *core.Engine, o CoherenceOpts) (int, []byte, error) {
				return cohSweep(ctx, e, o, frac)
			},
		})
	}
	return ws
}

// cohSweep steps the CoherenceSweep kernel: the bottom frac of the grid
// inverts every iteration, the rest passes through and elides.
func cohSweep(ctx context.Context, e *core.Engine, o CoherenceOpts, frac float64) (int, []byte, error) {
	k, err := e.CachedKernel(kernels.CoherenceSweep(frac, e.Config().Kernel))
	if err != nil {
		return 0, nil, err
	}
	pp := e.NewPingPong(o.Size, o.Size, codec.Unit)
	defer pp.Release()
	rng := rand.New(rand.NewSource(7))
	state := make([]byte, o.Size*o.Size*4)
	for i := range state {
		state[i] = byte(rng.Intn(256))
	}
	if err := pp.UploadEncoded(state); err != nil {
		return 0, nil, err
	}
	res, err := e.StepLoop(ctx, pp, core.StepOpts{MaxIters: o.Iters}, func(_ int, in, out *core.Tensor) error {
		k.BindInput("text0", 0, in)
		return k.Dispatch(out)
	})
	if err != nil {
		return 0, nil, err
	}
	final, err := pp.ReadRaw()
	return res.Iters, final, err
}

// Coherence measures every coherence workload with the elision cache on and
// off, enforcing the bit-identity contract between the two runs. ctx
// cancels between iterations.
func Coherence(ctx context.Context, o CoherenceOpts) ([]CoherenceResult, error) {
	o = o.withDefaults()
	var out []CoherenceResult
	for _, w := range cohWorkloads(o) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var ref CoherenceResult
		var refState []byte
		for _, coherence := range []bool{true, false} {
			e, err := cohEngine(o.Size, coherence)
			if err != nil {
				return nil, fmt.Errorf("coherence %s: %w", w.name, err)
			}
			start := time.Now()
			iters, state, err := w.run(ctx, e, o)
			if err != nil {
				return nil, fmt.Errorf("coherence %s: %w", w.name, err)
			}
			host := time.Since(start)
			e.Finish()
			elided, shaded := e.CoherenceStats()
			r := CoherenceResult{
				Workload:    w.name,
				Coherence:   coherence,
				Iters:       iters,
				HostMS:      float64(host.Microseconds()) / 1000,
				Elided:      elided,
				Shaded:      shaded,
				Checksum:    cohChecksum(state),
				VirtualTime: e.Now(),
			}
			if coherence {
				ref, refState = r, state
			} else {
				// The coherence contract: elision may only change host
				// time, never results, step counts or modelled time.
				if !bytes.Equal(state, refState) {
					return nil, fmt.Errorf("coherence %s: final state differs with coherence on vs off (contract broken)", w.name)
				}
				if r.Iters != ref.Iters {
					return nil, fmt.Errorf("coherence %s: %d iters with coherence off, %d on (contract broken)", w.name, r.Iters, ref.Iters)
				}
				if r.VirtualTime != ref.VirtualTime {
					return nil, fmt.Errorf("coherence %s: virtual time %v with coherence off, %v on (contract broken)", w.name, r.VirtualTime, ref.VirtualTime)
				}
				if r.Elided != 0 {
					return nil, fmt.Errorf("coherence %s: %d tiles elided with the cache disabled", w.name, r.Elided)
				}
			}
			out = append(out, r)
		}
	}
	return out, nil
}
