package bench

import (
	"context"
	"fmt"

	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/timing"
)

// The paper's §V-A methodology: "Due to the large exploration space, we
// follow an incremental approach, starting from one configuration and
// applying the next optimisation on the best performing one, in the order
// they are presented." This file implements that protocol literally:
// beginning from a naive port, each §II optimisation is applied in
// presentation order and *kept only if it helps* — producing the
// optimisation journey that ends at the paper's >16× configuration.

// IncrementalStep is one attempted optimisation.
type IncrementalStep struct {
	Name string
	// Time is the per-iteration time with the optimisation applied on
	// top of the best configuration so far.
	Time timing.Time
	// Speedup is relative to the best configuration before this step.
	Speedup float64
	// Kept reports whether the optimisation improved performance and was
	// retained.
	Kept bool
}

// IncrementalResult is the full journey for one device and workload.
type IncrementalResult struct {
	Device   string
	Workload string
	Naive    timing.Time
	Steps    []IncrementalStep
	Final    timing.Time
	// TotalSpeedup = Naive/Final.
	TotalSpeedup float64
}

// naiveConfig is a straightforward functional port with none of the
// paper's optimisations: client-side vertex arrays, per-iteration texture
// allocation, framebuffer rendering with CopyTexImage2D, no target
// invalidation, presentation at the default swap interval, fp32 kernels.
func naiveConfig(dev *device.Profile) core.Config {
	f := false
	return core.Config{
		Device:           dev,
		Swap:             core.SwapVsync,
		Target:           core.TargetFramebuffer,
		UseVBO:           false,
		StreamInputs:     true,
		InvalidateTarget: &f,
	}
}

// incrementalSteps lists the optimisations in the order the paper's
// evaluation presents them (windowing first — Fig. 3 — so the vsync
// ceiling cannot mask the later, smaller effects; then kernel code, vertex
// processing, rendering target, invalidation, and texture reuse).
func incrementalSteps() []struct {
	name string
	mut  func(*core.Config)
} {
	tvalue := true
	return []struct {
		name string
		mut  func(*core.Config)
	}{
		{"eglSwapInterval(0)", func(c *core.Config) {
			if c.Swap == core.SwapVsync {
				c.Swap = core.SwapNoVsync
			}
		}},
		{"no eglSwapBuffers", func(c *core.Config) {
			c.Swap = core.SwapNone
		}},
		{"fp24 + mul24 kernel", func(c *core.Config) {
			c.Kernel = kernels.FP24Options
		}},
		{"VBO (STATIC_DRAW)", func(c *core.Config) {
			c.UseVBO = true
			c.VBOUsage = gles.STATIC_DRAW
		}},
		{"texture rendering (FBO)", func(c *core.Config) {
			c.Target = core.TargetTexture
			c.ReuseOutputTextures = false // no copies in texture mode
		}},
		{"invalidate target (glClear)", func(c *core.Config) {
			c.InvalidateTarget = &tvalue
		}},
		{"texture reuse (TexSubImage2D / CopyTexSubImage2D)", func(c *core.Config) {
			c.ReuseInputTextures = true
			if c.Target == core.TargetFramebuffer {
				c.ReuseOutputTextures = true
			}
		}},
	}
}

// Incremental runs the journey for one device and workload.
func Incremental(ctx context.Context, dev *device.Profile, spec Spec, o Opts) (*IncrementalResult, error) {
	res := &IncrementalResult{Device: shortName(dev), Workload: spec.Workload.String()}

	best := naiveConfig(dev)
	r, err := Measure(ctx, best, spec, o)
	if err != nil {
		return nil, fmt.Errorf("incremental naive: %w", err)
	}
	bestTime := r.PerIteration
	res.Naive = bestTime

	for _, step := range incrementalSteps() {
		cfg := best
		step.mut(&cfg)
		r, err := Measure(ctx, cfg, spec, o)
		if err != nil {
			return nil, fmt.Errorf("incremental step %q: %w", step.name, err)
		}
		s := IncrementalStep{
			Name:    step.name,
			Time:    r.PerIteration,
			Speedup: float64(bestTime) / float64(r.PerIteration),
		}
		if r.PerIteration < bestTime {
			s.Kept = true
			best = cfg
			bestTime = r.PerIteration
		}
		res.Steps = append(res.Steps, s)
	}
	res.Final = bestTime
	res.TotalSpeedup = float64(res.Naive) / float64(res.Final)
	return res, nil
}

// Table renders the journey.
func (r *IncrementalResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Incremental optimisation journey: %s %s (paper §V-A protocol)",
			r.Device, r.Workload),
		Note:    fmt.Sprintf("naive port: %s; final: %s; total speedup %.1fx", fmtMs(r.Naive), fmtMs(r.Final), r.TotalSpeedup),
		Columns: []string{"optimisation", "per-iteration", "speedup", "kept"},
	}
	for _, s := range r.Steps {
		kept := "kept"
		if !s.Kept {
			kept = "rejected"
		}
		t.AddRow(s.Name, fmtMs(s.Time), fmtSpeedup(s.Speedup), kept)
	}
	return t
}
