package bench

import (
	"context"
	"testing"

	"gles2gpgpu/internal/pipeline"
)

// TestPipelines runs the pipeline benchmark at test scale and checks the
// invariants the bench itself does not already enforce as errors: fused
// mode actually fuses passes on the fusable pipelines, and every mode of
// every workload reports resident-intermediate counters consistently.
func TestPipelines(t *testing.T) {
	// The default 64² size is the smallest at which readback traffic
	// dominates the per-draw costs, so the residency-win check holds.
	results, err := Pipelines(context.Background(), PipelineOpts{Size: 64, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PipelineResult{}
	for _, r := range results {
		byName[r.Name()] = r
		if r.Iters != 4 || r.Stages == 0 || r.HostMS < 0 {
			t.Errorf("%s: malformed result %+v", r.Name(), r)
		}
	}
	if !pipeline.DefaultFuse() {
		t.Skip("GLES2GPGPU_NO_FUSE set: fused-mode assertions skipped")
	}
	// Three iterations take the fused path (the first primes draw stats).
	for name, wantPasses := range map[string]int64{
		"pipeline/sepconv/fused":  3,
		"pipeline/adaptive/fused": 3,
		"pipeline/histeq/fused":   3,
		"pipeline/sobel/fused":    0,
		"pipeline/pyramid/fused":  0,
	} {
		r, ok := byName[name]
		if !ok {
			t.Errorf("missing result %s", name)
			continue
		}
		if r.PassesFused != wantPasses {
			t.Errorf("%s: passes_fused = %d, want %d", name, r.PassesFused, wantPasses)
		}
	}
	for _, r := range results {
		if r.Mode == "readback" && r.ReadbacksElided != 0 {
			t.Errorf("%s: readback mode reports %d elided readbacks", r.Name(), r.ReadbacksElided)
		}
		if r.Mode != "readback" && r.Stages > 1 && r.ReadbacksElided == 0 {
			t.Errorf("%s: no readbacks elided on a multi-stage pipeline", r.Name())
		}
	}
	// The residency win: on the full-size pipelines the readback baseline
	// must cost more modelled time than the resident schedule. (Pyramid is
	// exempt — its stages shrink, so its readback traffic is cheap.)
	for _, wl := range []string{"sepconv", "adaptive", "histeq", "sobel"} {
		rb, res := byName["pipeline/"+wl+"/readback"], byName["pipeline/"+wl+"/unfused"]
		if rb.VirtualTime <= res.VirtualTime {
			t.Errorf("pipeline %s: readback virtual time %v not above resident %v",
				wl, rb.VirtualTime, res.VirtualTime)
		}
	}
}
