package bench

import (
	"context"
	"fmt"

	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/timing"
)

// Devices returns the two platforms of the paper's evaluation, keyed the
// way the figures label them.
func Devices() []*device.Profile {
	return []*device.Profile{device.PowerVRSGX545(), device.VideoCoreIV()}
}

// shortName maps a profile to the paper's series label.
func shortName(p *device.Profile) string {
	if p.Name == device.VideoCoreIV().Name {
		return "VCore"
	}
	if p.Name == device.PowerVRSGX545().Name {
		return "SGX"
	}
	return p.Name
}

// bestPractices is the paper's baseline configuration: OpenGL ES 2
// best-practices GPGPU — VBOs, direct texture rendering (the
// vendor-recommended target), presentation through eglSwapBuffers at the
// default swap interval, 32-bit kernels.
func bestPractices(dev *device.Profile) core.Config {
	return core.Config{
		Device:   dev,
		Swap:     core.SwapVsync,
		Target:   core.TargetTexture,
		UseVBO:   true,
		VBOUsage: gles.STATIC_DRAW,
	}
}

// Fig3Result holds the vsync/swap/fp24 ladder.
type Fig3Result struct {
	Configs []string // optimisation steps, in paper order
	// Speedup[series][step] relative to the baseline; series are
	// "<dev> sum" and "<dev> sgemm".
	Speedup map[string][]float64
	Times   map[string][]timing.Time
	// Headline is the best sum speedup (the paper's ">16x" claim).
	Headline float64
}

// Fig3 reproduces "Effect of Vsync for sum and sgemm": baseline →
// eglSwapInterval(0) → no eglSwapBuffers → no swap + fp24 kernel.
func Fig3(ctx context.Context, devs []*device.Profile, o Opts) (*Fig3Result, error) {
	res := &Fig3Result{
		Configs: []string{"baseline", "eglSwapInterval(0)", "No eglSwapBuffers", "No eglSwapBuffers and fp24 kernel"},
		Speedup: map[string][]float64{},
		Times:   map[string][]timing.Time{},
	}
	steps := []func(*core.Config){
		func(c *core.Config) {},
		func(c *core.Config) { c.Swap = core.SwapNoVsync },
		func(c *core.Config) { c.Swap = core.SwapNone },
		func(c *core.Config) {
			c.Swap = core.SwapNone
			c.Kernel = kernels.FP24Options
		},
	}
	for _, dev := range devs {
		for _, spec := range []Spec{{Workload: WSum}, {Workload: WSgemm, Block: 16}} {
			series := fmt.Sprintf("%s %s", shortName(dev), spec.Workload)
			var times []timing.Time
			for _, mut := range steps {
				cfg := bestPractices(dev)
				mut(&cfg)
				r, err := Measure(ctx, cfg, spec, o)
				if err != nil {
					return nil, fmt.Errorf("fig3 %s: %w", series, err)
				}
				times = append(times, r.PerIteration)
			}
			base := float64(times[0])
			sp := make([]float64, len(times))
			for i, t := range times {
				sp[i] = base / float64(t)
			}
			res.Times[series] = times
			res.Speedup[series] = sp
			if spec.Workload == WSum && sp[len(sp)-1] > res.Headline {
				res.Headline = sp[len(sp)-1]
			}
		}
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig3Result) Table() *Table {
	t := &Table{
		Title:   "Figure 3: Effect of Vsync for sum and sgemm (speedup over baseline)",
		Note:    "paper: SGX sum 1/3.47/3.85 · VCore sum 9.22/16.11/16.28 · SGX sgemm 1/1.13/1.24 · VCore sgemm 1.24/1.24/1.48",
		Columns: append([]string{"series"}, r.Configs[1:]...),
	}
	for _, series := range []string{"SGX sum", "VCore sum", "SGX sgemm", "VCore sgemm"} {
		sp, ok := r.Speedup[series]
		if !ok {
			continue
		}
		row := []string{series}
		for _, v := range sp[1:] {
			row = append(row, fmtSpeedup(v))
		}
		t.AddRow(row...)
	}
	return t
}

// VBOResult holds the §V-B text experiment: VBOs and usage hints.
type VBOResult struct {
	Labels  []string
	Speedup map[string][]float64 // per device
}

// FigVBO reproduces the Vertex Buffer Object result: sum with client-side
// arrays versus VBOs under each usage hint (paper: up to 1.5%).
func FigVBO(ctx context.Context, devs []*device.Profile, o Opts) (*VBOResult, error) {
	res := &VBOResult{
		Labels:  []string{"client arrays", "VBO STATIC_DRAW", "VBO STREAM_DRAW", "VBO DYNAMIC_DRAW"},
		Speedup: map[string][]float64{},
	}
	muts := []func(*core.Config){
		func(c *core.Config) { c.UseVBO = false },
		func(c *core.Config) { c.UseVBO = true; c.VBOUsage = gles.STATIC_DRAW },
		func(c *core.Config) { c.UseVBO = true; c.VBOUsage = gles.STREAM_DRAW },
		func(c *core.Config) { c.UseVBO = true; c.VBOUsage = gles.DYNAMIC_DRAW },
	}
	for _, dev := range devs {
		var times []timing.Time
		for _, mut := range muts {
			cfg := bestPractices(dev)
			cfg.Swap = core.SwapNone
			mut(&cfg)
			r, err := Measure(ctx, cfg, Spec{Workload: WSum}, o)
			if err != nil {
				return nil, fmt.Errorf("vbo: %w", err)
			}
			times = append(times, r.PerIteration)
		}
		base := float64(times[0])
		sp := make([]float64, len(times))
		for i, t := range times {
			sp[i] = base / float64(t)
		}
		res.Speedup[shortName(dev)] = sp
	}
	return res, nil
}

// Table renders the experiment.
func (r *VBOResult) Table() *Table {
	t := &Table{
		Title:   "VBO and usage hints for sum (speedup over client-side arrays)",
		Note:    "paper (text): VBOs improve sum up to 1.5% depending on the memory hint",
		Columns: append([]string{"device"}, r.Labels[1:]...),
	}
	for _, dev := range []string{"SGX", "VCore"} {
		sp, ok := r.Speedup[dev]
		if !ok {
			continue
		}
		row := []string{dev}
		for _, v := range sp[1:] {
			row = append(row, fmt.Sprintf("%.3fx", v))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig4aResult compares framebuffer and texture rendering.
type Fig4aResult struct {
	// Times[series] for series "<dev> <workload> <target>".
	Times map[string]timing.Time
	// TexOverFB[dev][workload] = time(FB)/time(texture): >1 means texture
	// rendering wins.
	TexOverFB map[string]map[string]float64
}

// Fig4a reproduces "FB vs Texture Rendering" on the optimised versions:
// sum, sum with an artificial dependency, and sgemm (block 16).
func Fig4a(ctx context.Context, devs []*device.Profile, o Opts) (*Fig4aResult, error) {
	res := &Fig4aResult{Times: map[string]timing.Time{}, TexOverFB: map[string]map[string]float64{}}
	specs := []Spec{{Workload: WSum}, {Workload: WSumDep}, {Workload: WSgemm, Block: 16}}
	for _, dev := range devs {
		res.TexOverFB[shortName(dev)] = map[string]float64{}
		for _, spec := range specs {
			var times [2]timing.Time
			for ti, target := range []core.RenderTarget{core.TargetFramebuffer, core.TargetTexture} {
				cfg := bestPractices(dev)
				cfg.Target = target
				// Optimised versions: no presentation in either mode (the
				// best Fig. 3 configuration carries over).
				cfg.Swap = core.SwapNone
				r, err := Measure(ctx, cfg, spec, o)
				if err != nil {
					return nil, fmt.Errorf("fig4a %s %s: %w", dev.Name, spec.Workload, err)
				}
				times[ti] = r.PerIteration
				res.Times[fmt.Sprintf("%s %s %s", shortName(dev), spec.Workload, target)] = r.PerIteration
			}
			res.TexOverFB[shortName(dev)][spec.Workload.String()] = float64(times[0]) / float64(times[1])
		}
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig4aResult) Table() *Table {
	t := &Table{
		Title:   "Figure 4a: FB vs Texture rendering (texture speedup over FB; <1 means FB wins)",
		Note:    "paper: sum/SGX 2237x · sum/VCore ~10x · sgemm prefers FB on both · with deps SGX→texture, VCore→FB",
		Columns: []string{"device", "sum", "sum+dep", "sgemm"},
	}
	for _, dev := range []string{"SGX", "VCore"} {
		m, ok := r.TexOverFB[dev]
		if !ok {
			continue
		}
		t.AddRow(dev, fmtSpeedup(m["sum"]), fmtSpeedup(m["sum+dep"]), fmtSpeedup(m["sgemm"]))
	}
	return t
}

// Fig4bResult is the blocking sweep.
type Fig4bResult struct {
	Blocks []int
	// Times[dev][target][i] is the per-multiplication time for Blocks[i].
	Times map[string]map[string][]timing.Time
	// CompileFail notes block sizes that exceeded implementation limits.
	CompileFail map[string][]int
}

// Fig4b reproduces "Blocking in sgemm": block sizes 1..16 under both
// rendering targets, plus the >16 compile failures.
func Fig4b(ctx context.Context, devs []*device.Profile, o Opts) (*Fig4bResult, error) {
	res := &Fig4bResult{
		Blocks:      []int{1, 2, 4, 8, 16},
		Times:       map[string]map[string][]timing.Time{},
		CompileFail: map[string][]int{},
	}
	for _, dev := range devs {
		dn := shortName(dev)
		res.Times[dn] = map[string][]timing.Time{}
		for _, target := range []core.RenderTarget{core.TargetFramebuffer, core.TargetTexture} {
			var times []timing.Time
			for _, block := range res.Blocks {
				cfg := bestPractices(dev)
				cfg.Target = target
				cfg.Swap = core.SwapNone
				r, err := Measure(ctx, cfg, Spec{Workload: WSgemm, Block: block}, o)
				if err != nil {
					return nil, fmt.Errorf("fig4b %s block %d: %w", dev.Name, block, err)
				}
				times = append(times, r.PerIteration)
			}
			res.Times[dn][target.String()] = times
		}
		// Demonstrate the implementation-limit ceiling above block 16.
		for _, block := range []int{32, 64} {
			cfg := bestPractices(dev)
			cfg.Swap = core.SwapNone
			if _, err := Measure(ctx, cfg, Spec{Workload: WSgemm, Block: block}, o); err != nil {
				res.CompileFail[dn] = append(res.CompileFail[dn], block)
			}
		}
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig4bResult) Table() *Table {
	t := &Table{
		Title:   "Figure 4b: Blocking in sgemm (time per multiplication; lower is better)",
		Note:    "paper: performance rises with block size; SGX FB catastrophic below block 4 with crossover at 4; VCore FB always wins; >16 fails to compile",
		Columns: []string{"device/target", "b=1", "b=2", "b=4", "b=8", "b=16"},
	}
	for _, dev := range []string{"SGX", "VCore"} {
		for _, target := range []string{"framebuffer", "texture"} {
			times, ok := r.Times[dev][target]
			if !ok {
				continue
			}
			row := []string{fmt.Sprintf("%s %s", dev, target)}
			for _, tm := range times {
				row = append(row, fmtMs(tm))
			}
			t.AddRow(row...)
		}
		if fails := r.CompileFail[dev]; len(fails) > 0 {
			t.Note += fmt.Sprintf(" · %s blocks %v: compile failure (reproduced)", dev, fails)
		}
	}
	return t
}

// Fig5Result is the texture-reuse experiment for one rendering target.
type Fig5Result struct {
	Target core.RenderTarget
	// Speedup[dev][workload] = time(no reuse)/time(reuse): >1 means reuse
	// helps.
	Speedup map[string]map[string]float64
}

// Fig5 reproduces "Performance improvement with texture memory reuse" for
// the given rendering target (Fig. 5a: texture rendering, Fig. 5b:
// framebuffer rendering), block size 16, streaming inputs.
func Fig5(ctx context.Context, devs []*device.Profile, target core.RenderTarget, o Opts) (*Fig5Result, error) {
	res := &Fig5Result{Target: target, Speedup: map[string]map[string]float64{}}
	for _, dev := range devs {
		dn := shortName(dev)
		res.Speedup[dn] = map[string]float64{}
		for _, spec := range []Spec{{Workload: WSum}, {Workload: WSgemm, Block: 16}} {
			var times [2]timing.Time
			for ri, reuse := range []bool{false, true} {
				cfg := bestPractices(dev)
				cfg.Target = target
				cfg.StreamInputs = true
				cfg.Swap = core.SwapNone
				if target == core.TargetFramebuffer {
					cfg.ReuseOutputTextures = reuse
				}
				cfg.ReuseInputTextures = reuse
				r, err := Measure(ctx, cfg, spec, o)
				if err != nil {
					return nil, fmt.Errorf("fig5 %s %s reuse=%v: %w", dev.Name, spec.Workload, reuse, err)
				}
				times[ri] = r.PerIteration
			}
			res.Speedup[dn][spec.Workload.String()] = float64(times[0]) / float64(times[1])
		}
	}
	return res, nil
}

// Table renders the figure.
func (r *Fig5Result) Table() *Table {
	sub := "5a (texture rendering)"
	note := "paper: VCore +15% (input textures); SGX −2…7%"
	if r.Target == core.TargetFramebuffer {
		sub = "5b (framebuffer rendering)"
		note = "paper: no improvement on either platform; sgemm on SGX drops to 0.70x (false sharing)"
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure %s: texture memory reuse speedup (reuse vs no reuse)", sub),
		Note:    note,
		Columns: []string{"device", "sum", "sgemm"},
	}
	for _, dev := range []string{"SGX", "VCore"} {
		m, ok := r.Speedup[dev]
		if !ok {
			continue
		}
		t.AddRow(dev, fmtSpeedup(m["sum"]), fmtSpeedup(m["sgemm"]))
	}
	return t
}
