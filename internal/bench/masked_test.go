package bench

import (
	"context"
	"testing"
)

// TestMaskedContract runs the masked-lane A/B comparison at a small size:
// Masked itself enforces bit-identity, iteration and virtual-time
// equality and the fallback-counter evidence, so the test only needs to
// check the result shape survives.
func TestMaskedContract(t *testing.T) {
	rs, err := Masked(context.Background(), MaskedOpts{Size: 32, Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d results, want 4 (jacobi, jacobi8 × on/off)", len(rs))
	}
	for _, r := range rs {
		if r.Iters != 8 {
			t.Errorf("%s: iters = %d, want 8", r.Name(), r.Iters)
		}
		if r.Masked && r.FallbackDraws != 0 {
			t.Errorf("%s: %d fallbacks with masking on", r.Name(), r.FallbackDraws)
		}
		if !r.Masked && r.FallbackDraws == 0 {
			t.Errorf("%s: no fallbacks with masking off", r.Name())
		}
	}
}
