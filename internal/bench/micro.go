package bench

// Shader-execution microbenchmarks: how fast the host simulates one shader
// invocation, across {interpreter, JIT} × {optimisation passes on, off}.
// These isolate the pass speedup from the full pipeline figures — passes
// are cycle-neutral by contract, so their entire effect is host time, and
// this is where it is visible. Each measurement also cross-checks the
// contract: the virtual-cycle total of every configuration of a kernel
// must be bit-identical.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/shader/analysis"
)

// MicroResult is one shader-execution microbenchmark measurement.
type MicroResult struct {
	Kernel      string
	JIT         bool
	Passes      bool
	Invocations int
	HostMS      float64
	// Cycles is the virtual-cycle total over all invocations — identical
	// for every configuration of the same kernel, by the pass contract.
	Cycles int64
}

// Name is the stable figure label, e.g. "micro/sum/jit/passes=on".
func (r MicroResult) Name() string {
	eng, p := "interp", "off"
	if r.JIT {
		eng = "jit"
	}
	if r.Passes {
		p = "on"
	}
	return fmt.Sprintf("micro/%s/%s/passes=%s", r.Kernel, eng, p)
}

// microKernels builds the measured shader set.
func microKernels() ([]struct {
	name string
	src  string
}, error) {
	o := kernels.DefaultOptions
	sgemm, err := kernels.SgemmPass(256, 8, o)
	if err != nil {
		return nil, err
	}
	reduce, err := kernels.Reduce2x2(64, o)
	if err != nil {
		return nil, err
	}
	return []struct {
		name string
		src  string
	}{
		{"sum", kernels.Sum(o)},
		{"saxpy", kernels.Saxpy(o)},
		{"conv3x3", kernels.Conv3x3(64, 64, o)},
		{"jacobi", kernels.Jacobi(64, 64, o)},
		{"sgemm-b8", sgemm},
		{"reduce", reduce},
	}, nil
}

// Micro measures every kernel under all four executor configurations,
// running invocations invocations per configuration (0 means 4096). ctx
// cancels between kernels.
func Micro(ctx context.Context, invocations int) ([]MicroResult, error) {
	if invocations <= 0 {
		invocations = 4096
	}
	kset, err := microKernels()
	if err != nil {
		return nil, err
	}
	cost := device.Generic().CostModel
	var out []MicroResult
	for _, k := range kset {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cs, err := glsl.Frontend(k.src, glsl.CompileOptions{Stage: glsl.StageFragment})
		if err != nil {
			return nil, fmt.Errorf("micro %s: %w", k.name, err)
		}
		p, err := shader.Compile(cs)
		if err != nil {
			return nil, fmt.Errorf("micro %s: %w", k.name, err)
		}
		if o := analysis.Optimize(p); o != nil {
			if err := p.SetOptimized(o); err != nil {
				return nil, fmt.Errorf("micro %s: %w", k.name, err)
			}
		}
		var cycles int64
		first := true
		for _, jit := range []bool{false, true} {
			for _, passes := range []bool{false, true} {
				run := shader.Executor(p, &cost, jit, passes)
				env := newMicroEnv(p)
				start := time.Now()
				for i := 0; i < invocations; i++ {
					env.Reset()
					if err := run(env); err != nil {
						return nil, fmt.Errorf("micro %s: %w", k.name, err)
					}
				}
				host := time.Since(start)
				total := env.Cycles // Reset keeps the running total
				if first {
					cycles, first = total, false
				} else if total != cycles {
					return nil, fmt.Errorf("micro %s: jit=%v passes=%v: %d cycles, want %d (pass contract broken)",
						k.name, jit, passes, total, cycles)
				}
				out = append(out, MicroResult{
					Kernel: k.name, JIT: jit, Passes: passes,
					Invocations: invocations,
					HostMS:      float64(host.Microseconds()) / 1000,
					Cycles:      total,
				})
			}
		}
	}
	return out, nil
}

// newMicroEnv fills an environment with fixed pseudo-random register
// contents and a deterministic hash sampler, so every configuration
// simulates exactly the same invocation stream.
func newMicroEnv(p *shader.Program) *shader.Env {
	env := shader.NewEnv(p)
	rng := rand.New(rand.NewSource(42))
	for i := range env.Uniforms {
		for c := 0; c < 4; c++ {
			env.Uniforms[i][c] = rng.Float32()
		}
	}
	for i := range env.Inputs {
		for c := 0; c < 4; c++ {
			env.Inputs[i][c] = rng.Float32()
		}
	}
	env.Sample = func(idx int, u, v float32) shader.Vec4 {
		h := math.Float32bits(u)*2654435761 + math.Float32bits(v)*40503 + uint32(idx)*97
		return shader.Vec4{
			float32(h&0xff) / 255,
			float32((h>>8)&0xff) / 255,
			float32((h>>16)&0xff) / 255,
			float32((h>>24)&0xff) / 255,
		}
	}
	return env
}
