package pipeline

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/ref"
)

func baseConfig(n int) core.Config {
	return core.Config{
		Device: device.Generic(),
		Width:  n, Height: n,
		Swap:   core.SwapNone,
		Target: core.TargetTexture,
		UseVBO: true,
	}
}

func newEngine(t *testing.T, cfg core.Config) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randMatrix(rows, cols int, seed int64) *codec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := codec.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 0.999
	}
	return m
}

func uploadSrc(t *testing.T, e *core.Engine, m *codec.Matrix) map[string]*core.Tensor {
	t.Helper()
	src := e.NewTensor(m.Rows, m.Cols, codec.Range{Lo: 0, Hi: 1})
	if err := src.Upload(m, false); err != nil {
		t.Fatal(err)
	}
	return map[string]*core.Tensor{SrcInput: src}
}

// stageFrag builds a trivially elementwise kernel for structural tests.
func stageFrag() string { return kernels.ScaleBias(kernels.DefaultOptions) }

func TestGraphValidation(t *testing.T) {
	frag := stageFrag()
	ok := Stage{Name: "a", Frag: frag, W: 4, H: 4,
		Inputs:   []Binding{{Sampler: "text0", External: "src"}},
		Uniforms: map[string][]float32{"scale": {1}, "bias": {0}}}
	cases := []struct {
		name string
		g    Graph
		want string
	}{
		{"empty", Graph{}, "no stages"},
		{"no-name", Graph{Stages: []Stage{{Frag: frag, W: 4, H: 4}}}, "empty name"},
		{"dup-name", Graph{Stages: []Stage{ok, ok}}, "duplicate stage name"},
		{"bad-size", Graph{Stages: []Stage{{Name: "a", Frag: frag, W: 0, H: 4}}}, "invalid size"},
		{"no-frag", Graph{Stages: []Stage{{Name: "a", W: 4, H: 4}}}, "no fragment source"},
		{"dup-sampler", Graph{Stages: []Stage{{Name: "a", Frag: frag, W: 4, H: 4,
			Inputs: []Binding{{Sampler: "text0", External: "x"}, {Sampler: "text0", External: "y"}}}},
			Outputs: []string{"a"}}, "twice"},
		{"both-sources", Graph{Stages: []Stage{{Name: "a", Frag: frag, W: 4, H: 4,
			Inputs: []Binding{{Sampler: "text0", Stage: "b", External: "x"}}}},
			Outputs: []string{"a"}}, "exactly one"},
		{"neither-source", Graph{Stages: []Stage{{Name: "a", Frag: frag, W: 4, H: 4,
			Inputs: []Binding{{Sampler: "text0"}}}}, Outputs: []string{"a"}}, "exactly one"},
		{"self-sample", Graph{Stages: []Stage{{Name: "a", Frag: frag, W: 4, H: 4,
			Inputs: []Binding{{Sampler: "text0", Stage: "a"}}}}, Outputs: []string{"a"}}, "samples itself"},
		{"dangling", Graph{Stages: []Stage{{Name: "a", Frag: frag, W: 4, H: 4,
			Inputs: []Binding{{Sampler: "text0", Stage: "ghost"}}}}, Outputs: []string{"a"}}, "unknown stage"},
		{"shape-w", Graph{Stages: []Stage{
			{Name: "a", Frag: frag, W: 4, H: 4, Inputs: []Binding{{Sampler: "text0", External: "x"}}},
			{Name: "b", Frag: frag, W: 8, H: 8, Inputs: []Binding{{Sampler: "text0", Stage: "a", WantW: 8}}},
		}, Outputs: []string{"b"}}, "wide"},
		{"shape-h", Graph{Stages: []Stage{
			{Name: "a", Frag: frag, W: 4, H: 4, Inputs: []Binding{{Sampler: "text0", External: "x"}}},
			{Name: "b", Frag: frag, W: 8, H: 8, Inputs: []Binding{{Sampler: "text0", Stage: "a", WantH: 8}}},
		}, Outputs: []string{"b"}}, "tall"},
		{"no-outputs", Graph{Stages: []Stage{{Name: "a", Frag: frag, W: 4, H: 4,
			Inputs: []Binding{{Sampler: "text0", External: "x"}}}}}, "no outputs"},
		{"bad-output", Graph{Stages: []Stage{{Name: "a", Frag: frag, W: 4, H: 4,
			Inputs: []Binding{{Sampler: "text0", External: "x"}}}}, Outputs: []string{"z"}}, "names no stage"},
		{"dup-output", Graph{Stages: []Stage{{Name: "a", Frag: frag, W: 4, H: 4,
			Inputs: []Binding{{Sampler: "text0", External: "x"}}}}, Outputs: []string{"a", "a"}}, "duplicate output"},
		{"cycle", Graph{Stages: []Stage{
			{Name: "a", Frag: frag, W: 4, H: 4, Inputs: []Binding{{Sampler: "text0", Stage: "b"}}},
			{Name: "b", Frag: frag, W: 4, H: 4, Inputs: []Binding{{Sampler: "text0", Stage: "a"}}},
		}, Outputs: []string{"b"}}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.g.Validate()
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestCompileBindingErrors(t *testing.T) {
	e := newEngine(t, baseConfig(8))
	// Sampler name the shader does not declare.
	g := Graph{Stages: []Stage{{Name: "a", Frag: stageFrag(), W: 8, H: 8,
		Inputs: []Binding{{Sampler: "nosuch", External: "src"}}}}, Outputs: []string{"a"}}
	if _, err := Compile(e, g); err == nil || !strings.Contains(err.Error(), "does not declare") {
		t.Fatalf("undeclared sampler: got %v", err)
	}
	// Declared sampler left unbound.
	g = Graph{Stages: []Stage{{Name: "a", Frag: stageFrag(), W: 8, H: 8}}, Outputs: []string{"a"}}
	if _, err := Compile(e, g); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Fatalf("unbound sampler: got %v", err)
	}
	// Bad GLSL surfaces the compile error.
	g = Graph{Stages: []Stage{{Name: "a", Frag: "void main() {", W: 8, H: 8}}, Outputs: []string{"a"}}
	if _, err := Compile(e, g); err == nil {
		t.Fatal("bad GLSL: want error")
	}
}

func TestRunExternalErrors(t *testing.T) {
	e := newEngine(t, baseConfig(8))
	g := Graph{Stages: []Stage{{Name: "a", Frag: stageFrag(), W: 8, H: 8,
		Inputs:   []Binding{{Sampler: "text0", External: "src", WantW: 8, WantH: 8}},
		Uniforms: map[string][]float32{"scale": {1}, "bias": {0}}}}, Outputs: []string{"a"}}
	p, err := Compile(e, g)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if _, err := p.Run(nil); err == nil || !strings.Contains(err.Error(), "needs external input") {
		t.Fatalf("missing external: got %v", err)
	}
	bad := e.NewTensor(4, 4, codec.Range{Lo: 0, Hi: 1})
	if _, err := p.Run(map[string]*core.Tensor{"src": bad}); err == nil || !strings.Contains(err.Error(), "wide") {
		t.Fatalf("shape mismatch: got %v", err)
	}
}

// visionCase is one prebuilt pipeline with its expected fusion count.
type visionCase struct {
	name      string
	graph     func(n int) Graph
	wantFused int
}

func visionCases(n int) []visionCase {
	o := kernels.DefaultOptions
	return []visionCase{
		{"sepconv", func(n int) Graph { return SepConvGraph(n, n, o) }, 1},
		{"adaptive", func(n int) Graph { return AdaptiveThresholdGraph(n, n, 2, o) }, 1},
		{"histeq", func(n int) Graph { return HistEqGraph(n, n, 8, o) }, 1},
		{"sobel", func(n int) Graph { return SobelGraph(n, n, o) }, 0},
		{"pyramid", func(n int) Graph {
			g, err := PyramidGraph(n, 3, o)
			if err != nil {
				panic(err)
			}
			return g
		}, 0},
	}
}

func TestFusionDecisions(t *testing.T) {
	if !DefaultFuse() {
		t.Skip("GLES2GPGPU_NO_FUSE is set")
	}
	const n = 16
	e := newEngine(t, baseConfig(n))
	for _, tc := range visionCases(n) {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Compile(e, tc.graph(n))
			if err != nil {
				t.Fatal(err)
			}
			defer p.Release()
			if got := p.FusedPairs(); got != tc.wantFused {
				t.Errorf("fused pairs = %d, want %d; decisions: %+v", got, tc.wantFused, p.Decisions())
			}
			for _, d := range p.Decisions() {
				if !d.Fused && d.Reason == "" {
					t.Errorf("unfused edge %s→%s has no reason", d.Producer, d.Consumer)
				}
			}
		})
	}
	// Spot-check the reason taxonomy.
	p, err := Compile(e, SobelGraph(n, n, kernels.DefaultOptions))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	reasons := map[string]string{}
	for _, d := range p.Decisions() {
		reasons[d.Producer+"→"+d.Consumer] = d.Reason
	}
	if r := reasons["smooth→sobelx"]; r != "multi-consumer" {
		t.Errorf("smooth→sobelx reason = %q, want multi-consumer", r)
	}
	if r := reasons["sobelx→magnitude"]; !strings.Contains(r, "producer-not-elementwise") {
		t.Errorf("sobelx→magnitude reason = %q", r)
	}
	if r := reasons["magnitude→nonmax"]; !strings.Contains(r, "consumer-not-elementwise") {
		t.Errorf("magnitude→nonmax reason = %q", r)
	}
	pg, err := PyramidGraph(n, 2, kernels.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Compile(e, pg)
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Release()
	for _, d := range pp.Decisions() {
		// Every level is an output, and sizes differ; the output gate fires
		// first in the planner's order.
		if d.Fused {
			t.Errorf("pyramid edge %s→%s unexpectedly fused", d.Producer, d.Consumer)
		}
	}
}

// runPlan compiles g on a fresh engine and runs it iters times, returning
// per-run output bytes, per-run virtual times, and the final plan+engine.
func runPlan(t *testing.T, cfg core.Config, g Graph, m *codec.Matrix, iters int) ([][]byte, []*RunStats, *Plan, *core.Engine) {
	t.Helper()
	e := newEngine(t, cfg)
	ext := uploadSrc(t, e, m)
	p, err := Compile(e, g)
	if err != nil {
		t.Fatal(err)
	}
	var outs [][]byte
	var stats []*RunStats
	for i := 0; i < iters; i++ {
		rs, err := p.Run(ext)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, rs)
		var buf bytes.Buffer
		for _, name := range g.Outputs {
			raw, err := p.Output(name).ReadRaw()
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(raw)
		}
		outs = append(outs, buf.Bytes())
	}
	return outs, stats, p, e
}

// TestFusionParity is the acceptance matrix: for every vision pipeline and
// every host-execution knob combination, the fused plan must produce
// byte-identical outputs, virtual times, cycle counts and fetch counts to
// the unfused plan.
func TestFusionParity(t *testing.T) {
	if !DefaultFuse() {
		t.Skip("GLES2GPGPU_NO_FUSE is set")
	}
	const n = 16
	const iters = 3
	m := randMatrix(n, n, 7)
	knobs := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"default", func(c *core.Config) {}},
		{"workers1", func(c *core.Config) { c.Workers = 1 }},
		{"notiling", func(c *core.Config) { c.NoTiling = true }},
		{"nolanes", func(c *core.Config) { c.NoLanes = true }},
		{"workers1-notiling-nolanes", func(c *core.Config) {
			c.Workers = 1
			c.NoTiling = true
			c.NoLanes = true
		}},
	}
	for _, tc := range visionCases(n) {
		for _, kb := range knobs {
			t.Run(tc.name+"/"+kb.name, func(t *testing.T) {
				cfgA := baseConfig(n)
				kb.mut(&cfgA)
				cfgB := cfgA
				cfgB.NoFuse = true

				outA, statsA, planA, engA := runPlan(t, cfgA, tc.graph(n), m, iters)
				outB, statsB, planB, engB := runPlan(t, cfgB, tc.graph(n), m, iters)
				defer planA.Release()
				defer planB.Release()

				for i := 0; i < iters; i++ {
					if !bytes.Equal(outA[i], outB[i]) {
						t.Errorf("run %d: fused output bytes differ from unfused", i)
					}
					if statsA[i].VirtualTime != statsB[i].VirtualTime {
						t.Errorf("run %d: fused VT %v != unfused VT %v",
							i, statsA[i].VirtualTime, statsB[i].VirtualTime)
					}
					for s := range statsA[i].Stages {
						if statsA[i].Stages[s] != statsB[i].Stages[s] {
							t.Errorf("run %d stage %d: %+v != %+v",
								i, s, statsA[i].Stages[s], statsB[i].Stages[s])
						}
					}
				}
				ra, rb := engA.Report(), engB.Report()
				if ra.Elapsed != rb.Elapsed {
					t.Errorf("elapsed: fused %v != unfused %v", ra.Elapsed, rb.Elapsed)
				}
				if ra.Stats != rb.Stats {
					t.Errorf("machine stats diverge:\nfused   %+v\nunfused %+v", ra.Stats, rb.Stats)
				}
				// Per-draw cycle and fetch counts, as cached by the timing
				// replay, must agree between the engines.
				for si, name := range planA.Stages() {
					fa, ca, xa, oka := engA.GL().DrawStatsFor(planA.stages[planA.order[si]].kernel.Program(),
						planA.stages[planA.order[si]].spec.W, planA.stages[planA.order[si]].spec.H)
					fb, cb, xb, okb := engB.GL().DrawStatsFor(planB.stages[planB.order[si]].kernel.Program(),
						planB.stages[planB.order[si]].spec.W, planB.stages[planB.order[si]].spec.H)
					if oka != okb || fa != fb || ca != cb || xa != xb {
						t.Errorf("stage %s: draw stats fused (%d,%d,%d,%v) != unfused (%d,%d,%d,%v)",
							name, fa, ca, xa, oka, fb, cb, xb, okb)
					}
				}
				if tc.wantFused > 0 {
					if statsA[0].Fused {
						t.Error("run 0 must execute unfused (stat priming)")
					}
					if !statsA[1].Fused || statsA[1].PassesFused != tc.wantFused {
						t.Errorf("run 1: fused=%v passes=%d, want fused with %d",
							statsA[1].Fused, statsA[1].PassesFused, tc.wantFused)
					}
					if _, fr, pf, _ := planA.Totals(); fr != iters-1 || pf != int64(tc.wantFused*(iters-1)) {
						t.Errorf("totals: fusedRuns=%d passesFused=%d", fr, pf)
					}
				}
				if _, fr, _, _ := planB.Totals(); fr != 0 {
					t.Errorf("nofuse plan recorded %d fused runs", fr)
				}
			})
		}
	}
}

// TestVisionReference validates the pipelines against the float64
// references. Threshold/suppression outputs are compared away from
// decision boundaries, where float32-vs-float64 rounding can legitimately
// flip a comparison.
func TestVisionReference(t *testing.T) {
	const n = 32
	const tol = 2e-4
	m := randMatrix(n, n, 11)
	e := newEngine(t, baseConfig(n))
	ext := uploadSrc(t, e, m)
	o := kernels.DefaultOptions

	readOut := func(p *Plan, name string) []float64 {
		t.Helper()
		mat, err := p.Output(name).Read()
		if err != nil {
			t.Fatal(err)
		}
		return mat.Data
	}
	runTwice := func(g Graph) *Plan {
		t.Helper()
		p, err := Compile(e, g)
		if err != nil {
			t.Fatal(err)
		}
		// Two runs: the second takes the fused path when eligible, so the
		// reference comparison covers the fused bytes.
		for i := 0; i < 2; i++ {
			if _, err := p.Run(ext); err != nil {
				t.Fatal(err)
			}
		}
		return p
	}
	maxDiff := func(got, want []float64, skip func(i int) bool) float64 {
		worst := 0.0
		for i := range want {
			if skip != nil && skip(i) {
				continue
			}
			d := want[i] - got[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		return worst
	}

	t.Run("sepconv", func(t *testing.T) {
		p := runTwice(SepConvGraph(n, n, o))
		defer p.Release()
		tmp1, tmp2 := make([]float64, n*n), make([]float64, n*n)
		ref.GaussBlurX(n, n, m.Data, tmp1)
		ref.GaussBlurY(n, n, tmp1, tmp2)
		ref.ScaleBias(1.2, -0.05, tmp2, tmp1)
		ref.GammaMap(0.8, tmp1, tmp2)
		if d := maxDiff(readOut(p, "gamma"), tmp2, nil); d > tol {
			t.Errorf("max error %g > %g", d, tol)
		}
	})

	t.Run("adaptive", func(t *testing.T) {
		p := runTwice(AdaptiveThresholdGraph(n, n, 2, o))
		defer p.Release()
		mean1, mean2 := make([]float64, n*n), make([]float64, n*n)
		diff, bin := make([]float64, n*n), make([]float64, n*n)
		ref.BoxMeanX(n, n, 2, m.Data, mean1)
		ref.BoxMeanY(n, n, 2, mean1, mean2)
		ref.DiffShift(m.Data, mean2, diff)
		ref.Binarize(0.5, diff, bin)
		got := readOut(p, "binarize")
		// Exclude pixels whose pre-threshold value sits on the decision
		// boundary.
		skip := func(i int) bool { d := diff[i] - 0.5; return d < 1e-4 && d > -1e-4 }
		if d := maxDiff(got, bin, skip); d > tol {
			t.Errorf("max error %g > %g", d, tol)
		}
	})

	t.Run("histeq", func(t *testing.T) {
		g := HistEqGraph(n, n, 8, o)
		p, err := Compile(e, g)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Release()
		// Fit the equalisation spline to the stretched image, as a host
		// would between frames.
		scale, bias := ref.ContrastStretch(m.Data)
		stretched := make([]float64, n*n)
		ref.ScaleBias(scale, bias, m.Data, stretched)
		p0, s := ref.HistEqSpline(stretched, 8)
		if err := p.SetFloat("stretch", "scale", float32(scale)); err != nil {
			t.Fatal(err)
		}
		if err := p.SetFloat("stretch", "bias", float32(bias)); err != nil {
			t.Fatal(err)
		}
		if err := p.SetFloat("equalize", "p0", float32(p0)); err != nil {
			t.Fatal(err)
		}
		s32 := make([]float32, len(s))
		for i, v := range s {
			s32[i] = float32(v)
		}
		if err := p.SetFloats("equalize", "s", s32); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := p.Run(ext); err != nil {
				t.Fatal(err)
			}
		}
		want := make([]float64, n*n)
		ref.SplineMap(p0, s, stretched, want)
		if d := maxDiff(readOut(p, "equalize"), want, nil); d > 1e-3 {
			t.Errorf("max error %g", d)
		}
	})

	t.Run("sobel", func(t *testing.T) {
		p := runTwice(SobelGraph(n, n, o))
		defer p.Release()
		smooth := make([]float64, n*n)
		gx, gy := make([]float64, n*n), make([]float64, n*n)
		mag, nm := make([]float64, n*n), make([]float64, n*n)
		ref.GaussBlurX(n, n, m.Data, smooth)
		ref.SobelX(n, n, smooth, gx)
		ref.SobelY(n, n, smooth, gy)
		ref.GradMag(gx, gy, mag)
		ref.NonMaxSuppress(n, n, mag, nm)
		got := readOut(p, "nonmax")
		// Exclude suppression ties: pixels whose magnitude is within eps of
		// a neighbour maximum can flip between keep and suppress.
		skip := func(i int) bool {
			x, y := i%n, i/n
			at := func(xx, yy int) float64 {
				if xx < 0 {
					xx = 0
				}
				if xx >= n {
					xx = n - 1
				}
				if yy < 0 {
					yy = 0
				}
				if yy >= n {
					yy = n - 1
				}
				return mag[yy*n+xx]
			}
			hmax := at(x-1, y)
			if r := at(x+1, y); r > hmax {
				hmax = r
			}
			vmax := at(x, y-1)
			if d := at(x, y+1); d > vmax {
				vmax = d
			}
			v := mag[i]
			near := func(a, b float64) bool { d := a - b; return d < 1e-4 && d > -1e-4 }
			return near(v, hmax) || near(v, vmax)
		}
		if d := maxDiff(got, nm, skip); d > tol {
			t.Errorf("max error %g > %g", d, tol)
		}
	})

	t.Run("pyramid", func(t *testing.T) {
		g, err := PyramidGraph(n, 3, o)
		if err != nil {
			t.Fatal(err)
		}
		p := runTwice(g)
		defer p.Release()
		l1, l2, l3 := make([]float64, n*n/4), make([]float64, n*n/16), make([]float64, n*n/64)
		ref.Reduce2x2Mean(n, m.Data, l1)
		ref.Reduce2x2Mean(n/2, l1, l2)
		ref.Reduce2x2Mean(n/4, l2, l3)
		for _, lv := range []struct {
			name string
			want []float64
		}{{"level1", l1}, {"level2", l2}, {"level3", l3}} {
			if d := maxDiff(readOut(p, lv.name), lv.want, nil); d > tol {
				t.Errorf("%s: max error %g > %g", lv.name, d, tol)
			}
		}
	})
}

// TestGraphFuzz drives Compile/Run with a corpus of randomly shaped DAGs:
// every graph either compiles and runs or fails with a clean error — never
// a panic.
func TestGraphFuzz(t *testing.T) {
	const n = 8
	o := kernels.DefaultOptions
	frags := []struct {
		src      string
		samplers int
		uniforms map[string][]float32
	}{
		{kernels.ScaleBias(o), 1, map[string][]float32{"scale": {1}, "bias": {0}}},
		{kernels.GammaMap(o), 1, map[string][]float32{"gamma": {1}}},
		{kernels.DiffShift(o), 2, nil},
		{kernels.GaussBlurX(n, o), 1, nil},
		{kernels.Binarize(o), 1, map[string][]float32{"thresh": {0.5}}},
	}
	e := newEngine(t, baseConfig(n))
	m := randMatrix(n, n, 3)
	ext := uploadSrc(t, e, m)
	samplerName := func(i int) string { return fmt.Sprintf("text%d", i) }
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nStages := 1 + rng.Intn(6)
		g := Graph{}
		for i := 0; i < nStages; i++ {
			f := frags[rng.Intn(len(frags))]
			st := Stage{
				Name: fmt.Sprintf("s%d", i), Frag: f.src,
				W: n, H: n, Uniforms: f.uniforms,
			}
			// Sometimes emit a broken stage shape on purpose.
			switch rng.Intn(12) {
			case 0:
				st.W = 0
			case 1:
				st.Name = ""
			}
			for s := 0; s < f.samplers; s++ {
				b := Binding{Sampler: samplerName(s)}
				switch rng.Intn(6) {
				case 0:
					b.External = SrcInput
				case 1:
					b.Stage = fmt.Sprintf("s%d", rng.Intn(nStages)) // may be later (cycle) or self
				case 2:
					b.Stage = "ghost"
				case 3:
					b.External = "unknown-ext"
				default:
					if i > 0 {
						b.Stage = fmt.Sprintf("s%d", rng.Intn(i))
					} else {
						b.External = SrcInput
					}
				}
				st.Inputs = append(st.Inputs, b)
			}
			g.Stages = append(g.Stages, st)
		}
		if rng.Intn(8) != 0 {
			g.Outputs = append(g.Outputs, fmt.Sprintf("s%d", rng.Intn(nStages)))
		}
		p, err := Compile(e, g)
		if err != nil {
			continue // clean rejection
		}
		if _, err := p.Run(ext); err != nil {
			// Runtime rejection (e.g. missing external) must be clean too.
			if !strings.Contains(err.Error(), "pipeline:") {
				t.Errorf("seed %d: unexpected run error: %v", seed, err)
			}
		}
		p.Release()
	}
}

// TestNoFuseConfig checks the engine-level NoFuse knob forces unfused
// execution even when the environment enables fusion.
func TestNoFuseConfig(t *testing.T) {
	if !DefaultFuse() {
		t.Skip("GLES2GPGPU_NO_FUSE is set")
	}
	const n = 8
	cfg := baseConfig(n)
	cfg.NoFuse = true
	e := newEngine(t, cfg)
	p, err := Compile(e, HistEqGraph(n, n, 4, kernels.DefaultOptions))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if p.FuseEnabled() {
		t.Error("FuseEnabled with Config.NoFuse")
	}
	if p.FusedPairs() != 0 {
		t.Errorf("fused pairs = %d with NoFuse", p.FusedPairs())
	}
	for _, d := range p.Decisions() {
		if d.Reason != "disabled" {
			t.Errorf("edge %s→%s reason %q, want disabled", d.Producer, d.Consumer, d.Reason)
		}
	}
}
