package pipeline

import (
	"fmt"

	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/timing"
)

// StageStat is one stage's share of a run's virtual time.
type StageStat struct {
	Name        string
	VirtualTime timing.Time
}

// RunStats describes one Run of a plan.
type RunStats struct {
	// Fused reports whether this run executed the collapsed graph (timing
	// replay + fused functional passes) rather than the literal script.
	Fused bool
	// PassesFused counts stage dispatches this run avoided by fusion
	// (Σ per fused chain of len-1); 0 on unfused runs.
	PassesFused int
	// ReadbacksElided counts internal edges whose intermediate stayed
	// resident on-device instead of round-tripping through a host
	// readback+upload, as the per-kernel-dispatch baseline would.
	ReadbacksElided int
	// Stages holds per-stage virtual-time deltas in execution order.
	Stages []StageStat
	// VirtualTime is the whole run including the end-of-iteration sync.
	VirtualTime timing.Time
}

// Run executes the graph once. externals supplies a tensor per external
// input name referenced by the graph's bindings.
//
// The first run of any plan executes the literal unfused script (this also
// primes the context's per-draw stat cache and allocates intermediate
// storage). Once every stage has cached draw stats, runs with fused chains
// switch to the two-phase schedule: phase T replays the exact unfused call
// sequence in timing-only mode, so the virtual-time account is identical
// byte-for-byte with the unfused plan; phase F executes the collapsed graph
// in functional-only mode (clock stopped), producing the output bytes with
// fewer host passes.
func (p *Plan) Run(externals map[string]*core.Tensor) (*RunStats, error) {
	if err := p.checkExternals(externals); err != nil {
		return nil, err
	}
	e := p.e
	fused := p.fuse &&
		p.FusedPairs() > 0 &&
		p.nonReplayable == "" &&
		!e.GL().TimingOnly() && !e.GL().FunctionalOnly() &&
		p.statsPrimed()

	stats := &RunStats{
		Fused:           fused,
		ReadbacksElided: p.internalEdges,
		Stages:          make([]StageStat, len(p.order)),
	}
	start := e.Now()
	if fused {
		// Phase T: the timing model sees the original unfused sequence.
		e.SetTimingOnly(true)
		err := p.script(externals, stats.Stages)
		e.SetTimingOnly(false)
		if err != nil {
			return nil, err
		}
		// Phase F: functional execution of the collapsed graph; no clock,
		// no present — phase T already accounted for the whole iteration.
		e.SetFunctionalOnly(true)
		err = p.runCollapsed(externals)
		e.SetFunctionalOnly(false)
		if err != nil {
			return nil, err
		}
		stats.PassesFused = p.FusedPairs()
		p.fusedRuns++
		p.passesFused += int64(stats.PassesFused)
	} else {
		if err := p.script(externals, stats.Stages); err != nil {
			return nil, err
		}
	}
	stats.VirtualTime = e.Now() - start
	p.runs++
	p.readbacksElided += int64(stats.ReadbacksElided)
	return stats, nil
}

// Totals returns the plan's lifetime counters: total runs, fused runs, and
// the accumulated passes-fused / readbacks-elided counts.
func (p *Plan) Totals() (runs, fusedRuns, passesFused, readbacksElided int64) {
	return p.runs, p.fusedRuns, p.passesFused, p.readbacksElided
}

func (p *Plan) checkExternals(ext map[string]*core.Tensor) error {
	for _, si := range p.order {
		st := p.stages[si]
		for bi, rb := range st.inputs {
			if rb.external == "" {
				continue
			}
			t := ext[rb.external]
			if t == nil {
				return fmt.Errorf("pipeline: run: stage %q needs external input %q", st.spec.Name, rb.external)
			}
			b := st.spec.Inputs[bi]
			if b.WantW != 0 && t.Cols != b.WantW {
				return fmt.Errorf("pipeline: run: external %q is %d wide, stage %q expects %d",
					rb.external, t.Cols, st.spec.Name, b.WantW)
			}
			if b.WantH != 0 && t.Rows != b.WantH {
				return fmt.Errorf("pipeline: run: external %q is %d tall, stage %q expects %d",
					rb.external, t.Rows, st.spec.Name, b.WantH)
			}
		}
	}
	return nil
}

// statsPrimed reports whether the context holds cached draw stats for every
// stage at its output size — the precondition for an exact timing replay.
func (p *Plan) statsPrimed() bool {
	gl := p.e.GL()
	for _, st := range p.stages {
		if _, _, _, ok := gl.DrawStatsFor(st.kernel.Program(), st.spec.W, st.spec.H); !ok {
			return false
		}
	}
	return true
}

// script runs the literal per-stage schedule: uniforms, bindings, dispatch
// for each stage in topological order, then the end-of-iteration sync.
// With stats non-nil, per-stage virtual-time deltas are recorded.
func (p *Plan) script(ext map[string]*core.Tensor, stats []StageStat) error {
	e := p.e
	for oi, si := range p.order {
		st := p.stages[si]
		t0 := e.Now()
		p.applyUniforms(st.kernel, -1, st)
		for unit, rb := range st.inputs {
			st.kernel.BindInput(rb.sampler, unit, p.resolve(rb, ext))
		}
		if err := st.kernel.Dispatch(st.out); err != nil {
			return fmt.Errorf("pipeline: stage %q: %w", st.spec.Name, err)
		}
		if stats != nil {
			stats[oi] = StageStat{Name: st.spec.Name, VirtualTime: e.Now() - t0}
		}
	}
	return e.EndIteration()
}

// runCollapsed executes the collapsed graph: singleton groups dispatch
// their original kernel, fused groups dispatch the composed program once
// into the chain tail's tensor. Non-tail intermediates of fused chains are
// not materialised. No end-of-iteration sync: phase T performed it.
func (p *Plan) runCollapsed(ext map[string]*core.Tensor) error {
	for _, g := range p.groups {
		if !g.fused() {
			st := g.stages[0]
			p.applyUniforms(st.kernel, -1, st)
			for unit, rb := range st.inputs {
				st.kernel.BindInput(rb.sampler, unit, p.resolve(rb, ext))
			}
			if err := st.kernel.Dispatch(st.out); err != nil {
				return fmt.Errorf("pipeline: stage %q: %w", st.spec.Name, err)
			}
			continue
		}
		for ci, m := range g.stages {
			p.applyUniforms(g.kernel, ci, m)
		}
		for unit, in := range g.inputs {
			var t *core.Tensor
			if in.stage >= 0 {
				t = p.stages[in.stage].out
			} else {
				t = ext[in.external]
			}
			g.kernel.BindInput(in.name, unit, t)
		}
		tail := g.stages[len(g.stages)-1]
		if err := g.kernel.Dispatch(tail.out); err != nil {
			return fmt.Errorf("pipeline: fused chain at %q: %w", tail.spec.Name, err)
		}
	}
	return nil
}

// applyUniforms sets a stage's float uniforms on k. chainIdx < 0 uses the
// stage's own uniform names; otherwise the composed program's per-stage
// prefixed names (shader.FusedUniformName).
func (p *Plan) applyUniforms(k *core.Kernel, chainIdx int, st *planStage) {
	for _, name := range st.uniforms {
		vals := st.spec.Uniforms[name]
		target := name
		if chainIdx >= 0 {
			target = shader.FusedUniformName(chainIdx, name)
		}
		if len(vals) == 1 {
			k.SetFloat(target, vals[0])
		} else {
			k.SetFloats(target, vals)
		}
	}
}

func (p *Plan) resolve(rb resolvedBinding, ext map[string]*core.Tensor) *core.Tensor {
	if rb.stage >= 0 {
		return p.stages[rb.stage].out
	}
	return ext[rb.external]
}
