package pipeline

import (
	"strings"
	"testing"

	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/shader/analysis"
)

// TestLintMatchesPlanner cross-checks the glslint fusion findings against
// the planner's real per-edge decisions: a fused edge must join two
// fusion-eligible kernels, and an edge the planner blocked on an
// elementwise proof must involve a kernel glslint reports fusion-blocked
// with the same reason token. The two views share the Elementwise probe,
// so a mismatch means the lint and the planner drifted apart.
func TestLintMatchesPlanner(t *testing.T) {
	const n = 16
	o := kernels.DefaultOptions
	e := newEngine(t, baseConfig(n))

	graphs := map[string]Graph{
		"sepconv":  SepConvGraph(n, n, o),
		"adaptive": AdaptiveThresholdGraph(n, n, 2, o),
		"histeq":   HistEqGraph(n, n, 8, o),
		"sobel":    SobelGraph(n, n, o),
	}
	for name, g := range graphs {
		p, err := Compile(e, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lintCode := func(stage string) (code, msg string) {
			t.Helper()
			for _, st := range p.stages {
				if st.spec.Name != stage {
					continue
				}
				for _, f := range analysis.Lint(st.fs, nil) {
					if f.Code == "fusion-eligible" || f.Code == "fusion-blocked" {
						return f.Code, f.Msg
					}
				}
				t.Fatalf("%s/%s: lint emitted no fusion finding", name, stage)
			}
			t.Fatalf("%s: no stage %q", name, stage)
			return "", ""
		}
		for _, d := range p.Decisions() {
			if d.Fused {
				for _, stage := range []string{d.Producer, d.Consumer} {
					if code, msg := lintCode(stage); code != "fusion-eligible" {
						t.Errorf("%s: edge %s→%s fused but %s lints %s: %s",
							name, d.Producer, d.Consumer, stage, code, msg)
					}
				}
				continue
			}
			// The planner's elementwise gates must agree with the lint,
			// including the reason token inside the parentheses.
			for stage, prefix := range map[string]string{
				d.Producer: "producer-not-elementwise(",
				d.Consumer: "consumer-not-elementwise(",
			} {
				if !strings.HasPrefix(d.Reason, prefix) {
					continue
				}
				why := strings.TrimSuffix(strings.TrimPrefix(d.Reason, prefix), ")")
				code, msg := lintCode(stage)
				if code != "fusion-blocked" {
					t.Errorf("%s: edge %s→%s blocked on %s but %s lints %s",
						name, d.Producer, d.Consumer, d.Reason, stage, code)
				} else if !strings.Contains(msg, "fusion-blocked("+why) {
					t.Errorf("%s: planner blocked %s with %q but lint says %q",
						name, stage, why, msg)
				}
			}
		}
		p.Release()
	}
}
