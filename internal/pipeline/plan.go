package pipeline

import (
	"fmt"
	"sort"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/core"
	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/shader/analysis"
)

// QuadVarying is the interpolated coordinate the engine's fullscreen-quad
// vertex shader emits; elementwise proofs are relative to it.
const QuadVarying = "v_tex"

// FusionDecision records the planner's verdict for one internal graph edge
// (producer stage → consumer stage). The glslint cross-check compares these
// against the analysis findings.
type FusionDecision struct {
	Producer string
	Consumer string
	Fused    bool
	// Reason is the first gate that failed when Fused is false, "" when
	// fused. Stable tokens: "disabled", "multi-consumer", "producer-is-output",
	// "producer-not-elementwise(...)", "consumer-not-elementwise(...)",
	// "size-mismatch", "fp24-alpha", "texture-units", "compose(...)".
	Reason string
}

// planStage is one compiled stage of a plan.
type planStage struct {
	spec      *Stage
	idx       int // index into Graph.Stages
	kernel    *core.Kernel
	fs        *shader.Program
	elem      bool
	elemWhy   string
	out       *core.Tensor
	consumers int // internal edges sourcing this stage's output
	isOutput  bool
	uniforms  []string // sorted uniform names
	inputs    []resolvedBinding
}

// resolvedBinding is a Binding with the producer resolved to a plan index.
type resolvedBinding struct {
	sampler  string
	stage    int    // producer stage index, or -1
	external string // external name, or ""
}

// fusedInput maps one surviving sampler of a composed program to its source.
type fusedInput struct {
	name     string // prefixed sampler uniform in the composed program
	stage    int    // producer stage index, or -1
	external string
}

// group is one node of the collapsed graph: a maximal fused chain, or a
// single stage.
type group struct {
	stages []*planStage // chain order; len>1 means fused
	kernel *core.Kernel // composed kernel when fused, else stages[0].kernel
	inputs []fusedInput // external bindings of the composed program
}

func (g *group) fused() bool { return len(g.stages) > 1 }

// Plan is a compiled, executable pipeline graph bound to an engine.
type Plan struct {
	e         *core.Engine
	g         Graph
	order     []int
	stages    []*planStage // indexed like g.Stages
	groups    []*group     // collapsed nodes in topological order
	decisions []FusionDecision
	fuse      bool // fusion enabled (env knob && engine config)
	// nonReplayable names the first stage whose program's timing stats are
	// data-dependent (branches or discard), making the exact timing replay
	// unsound; "" when all stages are straight-line.
	nonReplayable string

	internalEdges int // distinct internal producer→consumer edges

	runs            int64
	fusedRuns       int64
	passesFused     int64
	readbacksElided int64
}

// Compile validates the graph, builds (or fetches cached) kernels for every
// stage, allocates resident intermediate tensors, proves fusion eligibility
// per edge with the shader analysis framework, and installs composed
// programs for every fused chain.
func Compile(e *core.Engine, g Graph) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	idx := g.stageIndex()
	order, err := g.topoOrder(idx)
	if err != nil {
		return nil, err
	}
	p := &Plan{
		e:      e,
		g:      g,
		order:  order,
		stages: make([]*planStage, len(g.Stages)),
		fuse:   DefaultFuse() && !e.Config().NoFuse,
	}
	isOut := map[string]bool{}
	for _, o := range g.Outputs {
		isOut[o] = true
	}
	for i := range g.Stages {
		spec := &g.Stages[i]
		k, err := e.CachedKernel(spec.Frag)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stage %q: %w", spec.Name, err)
		}
		fs := e.GL().ProgramFS(k.Program())
		if fs == nil {
			return nil, fmt.Errorf("pipeline: stage %q: program not linked", spec.Name)
		}
		st := &planStage{spec: spec, idx: i, kernel: k, fs: fs, isOutput: isOut[spec.Name]}
		// Every sampler the shader declares must be bound exactly once.
		bound := map[string]bool{}
		for _, b := range spec.Inputs {
			if _, ok := fs.LookupUniform(b.Sampler); !ok {
				return nil, fmt.Errorf("pipeline: stage %q binds sampler %q, which the shader does not declare",
					spec.Name, b.Sampler)
			}
			bound[b.Sampler] = true
			rb := resolvedBinding{sampler: b.Sampler, stage: -1, external: b.External}
			if b.Stage != "" {
				rb.stage = idx[b.Stage]
			}
			st.inputs = append(st.inputs, rb)
		}
		for _, s := range fs.Samplers {
			if !bound[s] {
				return nil, fmt.Errorf("pipeline: stage %q leaves sampler %q unbound", spec.Name, s)
			}
		}
		if len(spec.Inputs) > gles.MaxTextureUnits {
			return nil, fmt.Errorf("pipeline: stage %q binds %d inputs; the device has %d texture units",
				spec.Name, len(spec.Inputs), gles.MaxTextureUnits)
		}
		for name := range spec.Uniforms {
			st.uniforms = append(st.uniforms, name)
		}
		sort.Strings(st.uniforms)
		st.elem, st.elemWhy = analysis.Elementwise(fs, QuadVarying)
		if p.nonReplayable == "" && !straightLine(fs) {
			p.nonReplayable = spec.Name
		}
		st.out = e.NewTensor(spec.H, spec.W, codec.Range{Lo: 0, Hi: 1})
		p.stages[i] = st
	}
	edges := map[[2]int]bool{}
	for _, st := range p.stages {
		for _, rb := range st.inputs {
			if rb.stage >= 0 {
				p.stages[rb.stage].consumers++
				edges[[2]int{rb.stage, st.idx}] = true
			}
		}
	}
	p.internalEdges = len(edges)
	if err := p.buildGroups(); err != nil {
		p.Release()
		return nil, err
	}
	return p, nil
}

// buildGroups collapses the topological order into maximal fused chains.
// A consumer joins its producer's group only when every proof-gate holds;
// chains only ever extend at the tail (the producer must be the current
// tail and single-consumer), so contraction cannot create cycles.
func (p *Plan) buildGroups() error {
	groupOf := map[int]*group{} // stage idx → its group
	for _, si := range p.order {
		st := p.stages[si]
		merged := false
		for _, rb := range st.inputs {
			if rb.stage < 0 || merged {
				continue
			}
			prod := p.stages[rb.stage]
			ok, reason := p.edgeFusable(prod, st, groupOf[prod.idx])
			p.decisions = append(p.decisions, FusionDecision{
				Producer: prod.spec.Name,
				Consumer: st.spec.Name,
				Fused:    ok,
			})
			d := &p.decisions[len(p.decisions)-1]
			if !ok {
				d.Reason = reason
				continue
			}
			g := groupOf[prod.idx]
			g.stages = append(g.stages, st)
			if err := p.composeGroup(g); err != nil {
				// The tentative merge failed structural limits: undo and
				// record why.
				g.stages = g.stages[:len(g.stages)-1]
				d.Fused = false
				d.Reason = reason_compose(err)
				if cerr := p.composeGroup(g); cerr != nil {
					return cerr // re-compose of a previously valid chain
				}
				continue
			}
			groupOf[st.idx] = g
			merged = true
		}
		if !merged {
			g := &group{stages: []*planStage{st}, kernel: st.kernel}
			p.groups = append(p.groups, g)
			groupOf[st.idx] = g
		}
	}
	return nil
}

func reason_compose(err error) string { return fmt.Sprintf("compose(%v)", err) }

// straightLine reports whether a fragment program's per-draw stats are
// data-independent: no conditional branches and no discard, so fragment
// count, cycle count and fetch count depend only on the grid size.
// Unconditional branches (the joins left by function inlining) execute
// identically for every fragment and are fine.
func straightLine(fs *shader.Program) bool {
	if fs.UsesDiscard {
		return false
	}
	for _, in := range fs.Insts {
		if in.Op == shader.OpBRZ {
			return false
		}
	}
	return true
}

// edgeFusable applies the proof gates for merging consumer cons into the
// chain ending at producer prod. prodGroup is prod's current group (nil if
// prod has not been planned yet, which cannot happen in topo order).
func (p *Plan) edgeFusable(prod, cons *planStage, prodGroup *group) (bool, string) {
	if !p.fuse {
		return false, "disabled"
	}
	if p.nonReplayable != "" {
		// A fused run replays cached draw stats for every stage; a stage
		// with data-dependent stats poisons the whole plan.
		return false, fmt.Sprintf("non-replayable-stage(%s)", p.nonReplayable)
	}
	if p.e.Config().Target != core.TargetTexture {
		// Framebuffer-target dispatches copy through the back buffer with
		// machine-visible transfers that the functional-only phase cannot
		// hide; only the texture-rendering path fuses.
		return false, "framebuffer-target"
	}
	if prodGroup == nil || prodGroup.stages[len(prodGroup.stages)-1] != prod {
		// prod's output already feeds a fused consumer inside its group;
		// only the tail's output is available for further chaining.
		return false, "multi-consumer"
	}
	if prod.consumers != 1 {
		return false, "multi-consumer"
	}
	if prod.isOutput {
		// The intermediate would not be materialised in fused runs, but the
		// caller reads it.
		return false, "producer-is-output"
	}
	if p.e.Config().Kernel.Depth != codec.Depth32 {
		// fp24 kernels mask the alpha channel (ColorMask a=false), so the
		// stored texel's alpha byte is not the producer's computed alpha;
		// replacing the fetch with an in-register round trip would diverge.
		return false, "fp24-alpha"
	}
	if !prod.elem {
		return false, fmt.Sprintf("producer-not-elementwise(%s)", prod.elemWhy)
	}
	if !cons.elem {
		return false, fmt.Sprintf("consumer-not-elementwise(%s)", cons.elemWhy)
	}
	if prod.spec.W != cons.spec.W || prod.spec.H != cons.spec.H {
		return false, "size-mismatch"
	}
	// Count external inputs of the would-be group: every member's bindings
	// except internal chain edges.
	ext := 0
	for _, m := range prodGroup.stages {
		ext += len(m.inputs)
	}
	in := map[int]bool{}
	for _, m := range prodGroup.stages {
		in[m.idx] = true
	}
	for _, rb := range cons.inputs {
		if rb.stage >= 0 && in[rb.stage] {
			continue // becomes an internal QUANT edge
		}
		ext++
	}
	// Subtract the internal edges already inside the chain.
	ext -= len(prodGroup.stages) - 1
	if ext > gles.MaxTextureUnits {
		return false, "texture-units"
	}
	return true, ""
}

// composeGroup (re)builds the fused kernel for a group. Single-stage groups
// keep their original kernel.
func (p *Plan) composeGroup(g *group) error {
	if len(g.stages) < 2 {
		g.kernel = g.stages[0].kernel
		g.inputs = nil
		return nil
	}
	pos := map[int]int{} // stage idx → chain position
	for ci, m := range g.stages {
		pos[m.idx] = ci
	}
	cstages := make([]gles.ComposeStage, len(g.stages))
	var extSrc []resolvedBinding // per external slot in merged order
	for ci, m := range g.stages {
		slotSrc := make([]int, len(m.fs.Samplers))
		for slot, sname := range m.fs.Samplers {
			rb := bindingFor(m, sname)
			if rb.stage >= 0 {
				if cp, internal := pos[rb.stage]; internal {
					// Single-consumer gating means only the immediate
					// predecessor's output can be referenced in-chain.
					if cp != ci-1 {
						return fmt.Errorf("non-chain internal edge %q→%q",
							p.stages[rb.stage].spec.Name, m.spec.Name)
					}
					slotSrc[slot] = cp
					continue
				}
			}
			slotSrc[slot] = -1
			extSrc = append(extSrc, rb)
		}
		cstages[ci] = gles.ComposeStage{Program: m.kernel.Program(), SlotSource: slotSrc}
	}
	// Composed-program installation is host-side plan construction: the
	// unfused schedule never issues these calls, so they must not advance
	// the modelled clock or the fused/unfused Elapsed comparison skews.
	gl := p.e.GL()
	wasFunctional := gl.FunctionalOnly()
	gl.SetFunctionalOnly(true)
	prog, samplers, err := gl.ComposePrograms(cstages)
	var k *core.Kernel
	if err == nil {
		k, err = p.e.KernelFromProgram(prog)
	}
	gl.SetFunctionalOnly(wasFunctional)
	if err != nil {
		return err
	}
	if len(samplers) != len(extSrc) {
		return fmt.Errorf("composed program has %d external samplers, expected %d", len(samplers), len(extSrc))
	}
	g.kernel = k
	g.inputs = g.inputs[:0]
	for i, s := range samplers {
		g.inputs = append(g.inputs, fusedInput{
			name:     s.Name,
			stage:    extSrc[i].stage,
			external: extSrc[i].external,
		})
	}
	return nil
}

func bindingFor(st *planStage, sampler string) resolvedBinding {
	for _, rb := range st.inputs {
		if rb.sampler == sampler {
			return rb
		}
	}
	return resolvedBinding{stage: -1} // unreachable: Compile checks coverage
}

// Decisions returns the planner's per-edge fusion verdicts, in the order
// edges were considered.
func (p *Plan) Decisions() []FusionDecision { return p.decisions }

// FuseEnabled reports whether fusion was enabled when the plan compiled.
func (p *Plan) FuseEnabled() bool { return p.fuse }

// FusedPairs counts the edges the planner actually fused.
func (p *Plan) FusedPairs() int {
	n := 0
	for _, g := range p.groups {
		n += len(g.stages) - 1
	}
	return n
}

// Stages returns the stage names in execution order.
func (p *Plan) Stages() []string {
	names := make([]string, 0, len(p.order))
	for _, si := range p.order {
		names = append(names, p.g.Stages[si].Name)
	}
	return names
}

// Output returns the resident tensor of a named output stage (nil if the
// name is not a declared output). Valid after Run.
func (p *Plan) Output(name string) *core.Tensor {
	for _, o := range p.g.Outputs {
		if o == name {
			return p.stages[p.g.stageIndex()[name]].out
		}
	}
	return nil
}

// SetFloat overrides a stage's scalar uniform for subsequent runs.
func (p *Plan) SetFloat(stage, name string, v float32) error {
	return p.SetFloats(stage, name, []float32{v})
}

// SetFloats overrides a stage's float uniform (scalar or array) for
// subsequent runs.
func (p *Plan) SetFloats(stage, name string, vals []float32) error {
	i, ok := p.g.stageIndex()[stage]
	if !ok {
		return fmt.Errorf("pipeline: no stage %q", stage)
	}
	st := p.stages[i]
	if st.spec.Uniforms == nil {
		st.spec.Uniforms = map[string][]float32{}
	}
	if _, had := st.spec.Uniforms[name]; !had {
		st.uniforms = append(st.uniforms, name)
		sort.Strings(st.uniforms)
	}
	st.spec.Uniforms[name] = append([]float32(nil), vals...)
	return nil
}

// Release returns all intermediate tensors to the engine's pool (or frees
// them). The plan must not be Run afterwards.
func (p *Plan) Release() {
	for _, st := range p.stages {
		if st != nil && st.out != nil {
			st.out.Release()
			st.out = nil
		}
	}
}
