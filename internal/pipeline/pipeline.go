// Package pipeline runs DAGs of GPGPU kernels on a core.Engine: stages
// name fragment kernels, inputs reference other stages' outputs or
// external tensors, and the planner topologically orders the passes,
// keeps every intermediate resident on-device as an RGBA8 texture (no
// float↔RGBA8 readback between stages), and — where the shader analysis
// framework proves both sides of an edge elementwise with 1:1 texel
// footprints — fuses adjacent passes into one composed program
// (shader.ComposeFragments).
//
// Fusion is bit-identical to the unfused plan in both directions of the
// simulation: output bytes match because the composed program applies the
// exact RGBA8 round trip (OpQUANT) where the unfused plan stored and
// re-sampled a texel, and virtual-time figures match because a fused run
// still replays the unfused GL call sequence against the timing model
// (timing-only mode) and executes the collapsed graph functionally with
// the clock stopped (functional-only mode). The win is host work — fewer
// functional passes, no intermediate encode/decode — reported by the
// PassesFused and ReadbacksElided counters, never by modelled cycles.
package pipeline

import (
	"fmt"
	"os"
	"sort"
)

// DefaultFuse reads the GLES2GPGPU_NO_FUSE environment toggle: fusion is
// on unless the variable is set (mirroring the other engine knobs).
func DefaultFuse() bool { return os.Getenv("GLES2GPGPU_NO_FUSE") == "" }

// Binding connects one sampler uniform of a stage to a producer: exactly
// one of Stage (an earlier stage's output) or External (a tensor supplied
// to Plan.Run) must be set.
type Binding struct {
	// Sampler is the sampler uniform name in the stage's fragment shader.
	Sampler string
	// Stage names the producing stage, or "" for an external input.
	Stage string
	// External names the externally-supplied tensor, or "".
	External string
	// WantW/WantH, when non-zero, assert the producer's width/height —
	// shape-mismatch validation across graph edges.
	WantW, WantH int
}

// Stage is one kernel pass of a graph.
type Stage struct {
	// Name identifies the stage; must be unique within the graph.
	Name string
	// Frag is the GLSL ES fragment shader source (compiled against the
	// engine's shared fullscreen-quad vertex shader).
	Frag string
	// W, H are the output dimensions (one fragment per output element).
	W, H int
	// Inputs bind the fragment shader's samplers. Every sampler the
	// shader declares must be bound exactly once.
	Inputs []Binding
	// Uniforms are float uniforms set before each dispatch; a slice of
	// length 1 is a scalar, longer slices are float arrays.
	Uniforms map[string][]float32
}

// Graph is a declarative DAG of kernel stages.
type Graph struct {
	Stages []Stage
	// Outputs names the stages whose outputs the caller reads after Run.
	// Output tensors are always materialised, fused or not.
	Outputs []string
}

// Validate checks the graph's structure without compiling anything:
// duplicate or empty names, dangling stage references, self-references and
// cycles, double-bound samplers, shape mismatches across edges, and
// missing outputs. Returned errors are descriptive and stable; Validate
// never panics on any input.
func (g *Graph) Validate() error {
	if len(g.Stages) == 0 {
		return fmt.Errorf("pipeline: graph has no stages")
	}
	idx := make(map[string]int, len(g.Stages))
	for i := range g.Stages {
		s := &g.Stages[i]
		if s.Name == "" {
			return fmt.Errorf("pipeline: stage %d has an empty name", i)
		}
		if _, dup := idx[s.Name]; dup {
			return fmt.Errorf("pipeline: duplicate stage name %q", s.Name)
		}
		idx[s.Name] = i
		if s.W <= 0 || s.H <= 0 {
			return fmt.Errorf("pipeline: stage %q has invalid size %dx%d", s.Name, s.W, s.H)
		}
		if s.Frag == "" {
			return fmt.Errorf("pipeline: stage %q has no fragment source", s.Name)
		}
		seen := map[string]bool{}
		for bi, b := range s.Inputs {
			if b.Sampler == "" {
				return fmt.Errorf("pipeline: stage %q input %d has no sampler name", s.Name, bi)
			}
			if seen[b.Sampler] {
				return fmt.Errorf("pipeline: stage %q binds sampler %q twice", s.Name, b.Sampler)
			}
			seen[b.Sampler] = true
			if (b.Stage == "") == (b.External == "") {
				return fmt.Errorf("pipeline: stage %q sampler %q must reference exactly one of a stage or an external input",
					s.Name, b.Sampler)
			}
			if b.Stage == s.Name {
				return fmt.Errorf("pipeline: stage %q samples itself", s.Name)
			}
		}
	}
	// Dangling references and shape assertions.
	for i := range g.Stages {
		s := &g.Stages[i]
		for _, b := range s.Inputs {
			if b.Stage == "" {
				continue
			}
			pi, ok := idx[b.Stage]
			if !ok {
				return fmt.Errorf("pipeline: stage %q samples unknown stage %q", s.Name, b.Stage)
			}
			p := &g.Stages[pi]
			if b.WantW != 0 && p.W != b.WantW {
				return fmt.Errorf("pipeline: stage %q expects %q to be %d wide, it is %d",
					s.Name, b.Stage, b.WantW, p.W)
			}
			if b.WantH != 0 && p.H != b.WantH {
				return fmt.Errorf("pipeline: stage %q expects %q to be %d tall, it is %d",
					s.Name, b.Stage, b.WantH, p.H)
			}
		}
	}
	if len(g.Outputs) == 0 {
		return fmt.Errorf("pipeline: graph declares no outputs")
	}
	seenOut := map[string]bool{}
	for _, o := range g.Outputs {
		if _, ok := idx[o]; !ok {
			return fmt.Errorf("pipeline: output %q names no stage", o)
		}
		if seenOut[o] {
			return fmt.Errorf("pipeline: duplicate output %q", o)
		}
		seenOut[o] = true
	}
	if _, err := g.topoOrder(idx); err != nil {
		return err
	}
	return nil
}

// topoOrder returns a deterministic topological order of stage indices
// (Kahn's algorithm, ready stages taken in declaration order), or an error
// naming a stage on a cycle.
func (g *Graph) topoOrder(idx map[string]int) ([]int, error) {
	n := len(g.Stages)
	indeg := make([]int, n)
	succs := make([][]int, n)
	for i := range g.Stages {
		for _, b := range g.Stages[i].Inputs {
			if b.Stage == "" {
				continue
			}
			pi, ok := idx[b.Stage]
			if !ok {
				return nil, fmt.Errorf("pipeline: stage %q samples unknown stage %q", g.Stages[i].Name, b.Stage)
			}
			indeg[i]++
			succs[pi] = append(succs[pi], i)
		}
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		for _, s := range succs[i] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("pipeline: cycle through stage %q", g.Stages[i].Name)
			}
		}
	}
	return order, nil
}

// stageIndex builds the name→index map (callers validate first).
func (g *Graph) stageIndex() map[string]int {
	idx := make(map[string]int, len(g.Stages))
	for i := range g.Stages {
		idx[g.Stages[i].Name] = i
	}
	return idx
}
