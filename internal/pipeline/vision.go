package pipeline

import (
	"fmt"

	"gles2gpgpu/internal/kernels"
)

// Prebuilt computer-vision pipeline graphs over the internal/kernels
// vision suite. Each takes the external input "src" (a w×h unit-range
// tensor) and exercises a different planner behaviour:
//
//   - SepConvGraph: separable Gaussian then pointwise tone mapping — the
//     planner fuses the stretch→gamma tail.
//   - AdaptiveThresholdGraph: box-mean neighbourhood compare — fuses
//     diff→binarize.
//   - HistEqGraph: contrast stretch + piecewise-linear equalisation —
//     fully fused into one pass.
//   - SobelGraph: gradient pipeline where every edge is blocked (multi-
//     consumer smoothing, offset sampling, non-elementwise consumers).
//   - PyramidGraph: multi-resolution reduction blocked by size mismatch.

// SrcInput is the external input name the prebuilt graphs sample.
const SrcInput = "src"

// SepConvGraph chains the separable 3-tap Gaussian with a contrast
// stretch and gamma tone map: blurx → blury → stretch → gamma.
func SepConvGraph(w, h int, o kernels.Options) Graph {
	return Graph{
		Stages: []Stage{
			{Name: "blurx", Frag: kernels.GaussBlurX(w, o), W: w, H: h,
				Inputs: []Binding{{Sampler: "text0", External: SrcInput}}},
			{Name: "blury", Frag: kernels.GaussBlurY(h, o), W: w, H: h,
				Inputs: []Binding{{Sampler: "text0", Stage: "blurx", WantW: w, WantH: h}}},
			{Name: "stretch", Frag: kernels.ScaleBias(o), W: w, H: h,
				Inputs:   []Binding{{Sampler: "text0", Stage: "blury"}},
				Uniforms: map[string][]float32{"scale": {1.2}, "bias": {-0.05}}},
			{Name: "gamma", Frag: kernels.GammaMap(o), W: w, H: h,
				Inputs:   []Binding{{Sampler: "text0", Stage: "stretch"}},
				Uniforms: map[string][]float32{"gamma": {0.8}}},
		},
		Outputs: []string{"gamma"},
	}
}

// AdaptiveThresholdGraph binarises each pixel against its local box mean:
// boxx → boxy → diff(src, mean) → binarize.
func AdaptiveThresholdGraph(w, h, radius int, o kernels.Options) Graph {
	return Graph{
		Stages: []Stage{
			{Name: "boxx", Frag: kernels.BoxMeanX(w, radius, o), W: w, H: h,
				Inputs: []Binding{{Sampler: "text0", External: SrcInput}}},
			{Name: "boxy", Frag: kernels.BoxMeanY(h, radius, o), W: w, H: h,
				Inputs: []Binding{{Sampler: "text0", Stage: "boxx"}}},
			{Name: "diff", Frag: kernels.DiffShift(o), W: w, H: h,
				Inputs: []Binding{
					{Sampler: "text0", External: SrcInput},
					{Sampler: "text1", Stage: "boxy", WantW: w, WantH: h},
				}},
			{Name: "binarize", Frag: kernels.Binarize(o), W: w, H: h,
				Inputs:   []Binding{{Sampler: "text0", Stage: "diff"}},
				Uniforms: map[string][]float32{"thresh": {0.5}}},
		},
		Outputs: []string{"binarize"},
	}
}

// HistEqGraph stretches contrast then applies the piecewise-linear
// histogram-equalisation map: stretch → equalize. Both stages are
// elementwise, so the whole graph fuses into a single pass. The spline
// coefficients default to the identity map; callers fit them per image
// with ref.HistEqSpline and Plan.SetFloats.
func HistEqGraph(w, h, knots int, o kernels.Options) Graph {
	s := make([]float32, knots)
	s[0] = 1 // identity: out = 0 + 1·max(v-0, 0)
	return Graph{
		Stages: []Stage{
			{Name: "stretch", Frag: kernels.ScaleBias(o), W: w, H: h,
				Inputs:   []Binding{{Sampler: "text0", External: SrcInput}},
				Uniforms: map[string][]float32{"scale": {1}, "bias": {0}}},
			{Name: "equalize", Frag: kernels.SplineMap(knots, o), W: w, H: h,
				Inputs:   []Binding{{Sampler: "text0", Stage: "stretch"}},
				Uniforms: map[string][]float32{"p0": {0}, "s": s}},
		},
		Outputs: []string{"equalize"},
	}
}

// SobelGraph computes suppressed edge magnitudes:
// smooth → {sobelx, sobely} → magnitude → nonmax. No edge fuses — the
// planner reports multi-consumer, offset-sampling and non-elementwise
// blocks — making it the control workload for the A/B benches.
func SobelGraph(w, h int, o kernels.Options) Graph {
	return Graph{
		Stages: []Stage{
			{Name: "smooth", Frag: kernels.GaussBlurX(w, o), W: w, H: h,
				Inputs: []Binding{{Sampler: "text0", External: SrcInput}}},
			{Name: "sobelx", Frag: kernels.SobelX(w, h, o), W: w, H: h,
				Inputs: []Binding{{Sampler: "text0", Stage: "smooth"}}},
			{Name: "sobely", Frag: kernels.SobelY(w, h, o), W: w, H: h,
				Inputs: []Binding{{Sampler: "text0", Stage: "smooth"}}},
			{Name: "magnitude", Frag: kernels.GradMag(o), W: w, H: h,
				Inputs: []Binding{
					{Sampler: "text0", Stage: "sobelx"},
					{Sampler: "text1", Stage: "sobely"},
				}},
			{Name: "nonmax", Frag: kernels.NonMaxSuppress(w, h, o), W: w, H: h,
				Inputs: []Binding{{Sampler: "text0", Stage: "magnitude"}}},
		},
		Outputs: []string{"nonmax"},
	}
}

// PyramidGraph builds a Gaussian pyramid: each level smooths with the
// 2×2 block mean while halving the resolution. Every level is an output;
// no edge fuses (size mismatch). w must be a power of two and levels must
// leave at least one texel.
func PyramidGraph(w, levels int, o kernels.Options) (Graph, error) {
	g := Graph{}
	prev := ""
	size := w
	for l := 1; l <= levels; l++ {
		frag, err := kernels.Reduce2x2(size, o)
		if err != nil {
			return Graph{}, fmt.Errorf("pipeline: pyramid level %d: %w", l, err)
		}
		size /= 2
		if size < 1 {
			return Graph{}, fmt.Errorf("pipeline: pyramid level %d would be empty", l)
		}
		name := fmt.Sprintf("level%d", l)
		b := Binding{Sampler: "text0", External: SrcInput}
		if prev != "" {
			b = Binding{Sampler: "text0", Stage: prev}
		}
		g.Stages = append(g.Stages, Stage{
			Name: name, Frag: frag, W: size, H: size,
			Inputs: []Binding{b},
		})
		g.Outputs = append(g.Outputs, name)
		prev = name
	}
	return g, nil
}
