// Package egl implements the windowing-system interface of the simulator:
// displays, double-buffered window surfaces, pbuffer surfaces, contexts,
// and the eglSwapBuffers / eglSwapInterval synchronisation semantics whose
// performance impact the paper's Fig. 3 quantifies.
package egl

import (
	"errors"
	"fmt"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/gpu"
)

// Errors mirroring the EGL error model.
var (
	ErrNotInitialized = errors.New("egl: display not initialized")
	ErrBadSurface     = errors.New("egl: bad surface")
	ErrBadParameter   = errors.New("egl: bad parameter")
)

// Display owns the simulated device: one Display per device profile, like
// EGL_DEFAULT_DISPLAY on a real board.
type Display struct {
	Machine     *gpu.Machine
	prof        *device.Profile
	initialized bool
}

// GetDisplay creates the display for a device profile (the analogue of
// eglGetDisplay(EGL_DEFAULT_DISPLAY) on that board).
func GetDisplay(prof *device.Profile) *Display {
	return &Display{Machine: gpu.New(prof), prof: prof}
}

// Initialize brings the display up and returns the EGL version.
func (d *Display) Initialize() (major, minor int) {
	d.initialized = true
	return 1, 4
}

// Initialized reports whether Initialize has been called.
func (d *Display) Initialized() bool { return d.initialized }

// Profile returns the device profile backing the display.
func (d *Display) Profile() *device.Profile { return d.prof }

// Terminate shuts the display down.
func (d *Display) Terminate() { d.initialized = false }

// Surface is a rendering destination. Window surfaces are double-buffered
// (the property the paper's multi-pass framebuffer rendering exploits);
// pbuffers are single-buffered offscreen surfaces.
type Surface struct {
	Disp   *Display
	W, H   int
	window bool

	// bufRes are the scheduling handles of the colour buffers; pixels are
	// the functional backing stores (RGBA8888).
	bufRes [2]gpu.ResID
	pixels [2][]byte
	back   int
	swaps  int64
}

// CreateWindowSurface creates a double-buffered on-screen surface.
func (d *Display) CreateWindowSurface(w, h int) (*Surface, error) {
	return d.createSurface(w, h, true)
}

// CreatePbufferSurface creates a single-buffered offscreen surface.
func (d *Display) CreatePbufferSurface(w, h int) (*Surface, error) {
	return d.createSurface(w, h, false)
}

func (d *Display) createSurface(w, h int, window bool) (*Surface, error) {
	if !d.initialized {
		return nil, ErrNotInitialized
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: surface size %dx%d", ErrBadParameter, w, h)
	}
	s := &Surface{Disp: d, W: w, H: h, window: window}
	n := 1
	if window {
		n = 2
	}
	for i := 0; i < n; i++ {
		s.bufRes[i] = d.Machine.NewResource(fmt.Sprintf("surface%dx%d.buf%d", w, h, i))
		s.pixels[i] = make([]byte, w*h*4)
	}
	if !window {
		s.bufRes[1] = s.bufRes[0]
		s.pixels[1] = s.pixels[0]
	}
	return s, nil
}

// IsWindow reports whether the surface is an on-screen (double-buffered)
// window surface.
func (s *Surface) IsWindow() bool { return s.window }

// BackRes returns the scheduling handle of the current back buffer (the
// render target).
func (s *Surface) BackRes() gpu.ResID { return s.bufRes[s.back] }

// BackPixels returns the functional pixel store of the current back buffer.
func (s *Surface) BackPixels() []byte { return s.pixels[s.back] }

// FrontRes returns the displayed buffer's handle.
func (s *Surface) FrontRes() gpu.ResID { return s.bufRes[1-s.back] }

// FrontPixels returns the displayed buffer's pixel store.
func (s *Surface) FrontPixels() []byte { return s.pixels[1-s.back] }

// Swaps reports how many times the surface has been presented.
func (s *Surface) Swaps() int64 { return s.swaps }

// Context is an EGL rendering context. The GLES layer stores its state
// machine on top of one.
type Context struct {
	Disp         *Display
	Draw         *Surface
	swapInterval int
}

// CreateContext returns a context with the device's default swap interval.
func (d *Display) CreateContext() (*Context, error) {
	if !d.initialized {
		return nil, ErrNotInitialized
	}
	return &Context{Disp: d, swapInterval: d.prof.DefaultSwapInterval}, nil
}

// MakeCurrent binds a draw surface to the context.
func (c *Context) MakeCurrent(draw *Surface) error {
	if draw == nil {
		return ErrBadSurface
	}
	if draw.Disp != c.Disp {
		return fmt.Errorf("%w: surface belongs to a different display", ErrBadSurface)
	}
	c.Draw = draw
	return nil
}

// SwapInterval sets the minimum number of vsync periods per buffer swap.
// Zero decouples presentation from the display refresh (the paper's first
// optimisation: on VideoCore the default interval of 1 gates every kernel
// launch at 60 Hz).
func (c *Context) SwapInterval(n int) error {
	if n < 0 {
		return ErrBadParameter
	}
	c.swapInterval = n
	return nil
}

// SwapIntervalValue returns the current swap interval.
func (c *Context) SwapIntervalValue() int { return c.swapInterval }

// SwapBuffers presents the back buffer:
//
//  1. The CPU waits until all rendering to the back buffer has finished
//     ("this call forces a wait until all the submitted work in the GPU has
//     been finished" — paper §II). This is what makes per-frame pipelining
//     impossible for applications that must present.
//  2. With a positive swap interval, presentation additionally waits for
//     the next vsync tick — the 60 Hz gate of Fig. 3.
//  3. The buffers flip; the new back buffer holds the frame from two swaps
//     ago (double buffering).
//
// Pbuffer surfaces only flush, as on real implementations.
func (c *Context) SwapBuffers() error {
	s := c.Draw
	if s == nil {
		return ErrBadSurface
	}
	m := c.Disp.Machine
	// "This call forces a wait until all the submitted work in the GPU has
	// been finished" (paper §II) — a full drain, not just this surface —
	// followed by the driver's composition/flip work.
	m.WaitAll()
	m.CPU.Advance(c.Disp.prof.SwapBookkeeping)
	if s.window && c.swapInterval > 0 {
		t := m.CPU.Now()
		for i := 0; i < c.swapInterval; i++ {
			t = m.VSyncClock.NextTick(t)
		}
		m.CPU.AdvanceTo(t)
	}
	if s.window {
		s.back = 1 - s.back
	}
	s.swaps++
	return nil
}
