package egl

import (
	"testing"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/gpu"
	"gles2gpgpu/internal/timing"
)

func newDisplay(t *testing.T, prof *device.Profile) *Display {
	t.Helper()
	d := GetDisplay(prof)
	if d.Initialized() {
		t.Fatal("display initialized before Initialize")
	}
	maj, min := d.Initialize()
	if maj != 1 || min < 0 {
		t.Fatalf("version %d.%d", maj, min)
	}
	return d
}

func TestSurfaceCreation(t *testing.T) {
	d := newDisplay(t, device.Generic())
	w, err := d.CreateWindowSurface(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsWindow() || w.W != 64 || w.H != 32 {
		t.Error("window surface misconfigured")
	}
	if w.BackRes() == w.FrontRes() {
		t.Error("window surface not double-buffered")
	}
	if len(w.BackPixels()) != 64*32*4 {
		t.Errorf("pixel store = %d bytes", len(w.BackPixels()))
	}
	p, err := d.CreatePbufferSurface(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.IsWindow() {
		t.Error("pbuffer reported as window")
	}
	if p.BackRes() != p.FrontRes() {
		t.Error("pbuffer should be single-buffered")
	}
	if _, err := d.CreateWindowSurface(0, 5); err == nil {
		t.Error("zero-size surface accepted")
	}
}

func TestUninitializedDisplayRejected(t *testing.T) {
	d := GetDisplay(device.Generic())
	if _, err := d.CreateWindowSurface(8, 8); err == nil {
		t.Error("surface created on uninitialized display")
	}
	if _, err := d.CreateContext(); err == nil {
		t.Error("context created on uninitialized display")
	}
	d.Initialize()
	d.Terminate()
	if _, err := d.CreateContext(); err == nil {
		t.Error("context created on terminated display")
	}
}

func TestSwapBuffersFlips(t *testing.T) {
	d := newDisplay(t, device.Generic())
	s, _ := d.CreateWindowSurface(8, 8)
	ctx, _ := d.CreateContext()
	if err := ctx.MakeCurrent(s); err != nil {
		t.Fatal(err)
	}
	b0 := s.BackRes()
	if err := ctx.SwapBuffers(); err != nil {
		t.Fatal(err)
	}
	if s.BackRes() == b0 {
		t.Error("swap did not flip buffers")
	}
	ctx.SwapBuffers()
	if s.BackRes() != b0 {
		t.Error("second swap did not flip back")
	}
	if s.Swaps() != 2 {
		t.Errorf("swaps = %d", s.Swaps())
	}
}

func TestSwapWaitsForRendering(t *testing.T) {
	d := newDisplay(t, device.Generic())
	s, _ := d.CreateWindowSurface(64, 64)
	ctx, _ := d.CreateContext()
	ctx.MakeCurrent(s)
	ctx.SwapInterval(0)
	m := d.Machine
	// Simulate a 5 ms render to the back buffer.
	m.Clear(s.BackRes())
	r := m.Draw(gpu.DrawJob{
		Target: s.BackRes(), TargetW: 64, TargetH: 64,
		CoveredPixels: 64 * 64, FragCycles: 5_000_000 * 1024, VertexCount: 6,
	})
	if m.Now() >= r.FPEnd {
		t.Fatal("draw should not block")
	}
	ctx.SwapBuffers()
	if m.Now() < r.FPEnd {
		t.Errorf("swap returned at %v before rendering finished at %v", m.Now(), r.FPEnd)
	}
}

func TestSwapIntervalGatesAtVsync(t *testing.T) {
	prof := device.VideoCoreIV()
	d := newDisplay(t, prof)
	s, _ := d.CreateWindowSurface(32, 32)
	ctx, _ := d.CreateContext()
	ctx.MakeCurrent(s)
	if ctx.SwapIntervalValue() != 1 {
		t.Fatalf("VideoCore default swap interval = %d, want 1", ctx.SwapIntervalValue())
	}
	period := d.Machine.VSyncClock.Period()
	var prev timing.Time
	for i := 0; i < 5; i++ {
		ctx.SwapBuffers()
		now := d.Machine.Now()
		if i > 0 && now-prev < period {
			t.Fatalf("swap %d advanced only %v, want >= vsync period %v", i, now-prev, period)
		}
		prev = now
	}
	// Interval 0 decouples from vsync: swaps become cheap.
	ctx.SwapInterval(0)
	before := d.Machine.Now()
	ctx.SwapBuffers()
	if got := d.Machine.Now() - before; got >= period/2 {
		t.Errorf("interval-0 swap took %v, want far below vsync period", got)
	}
	// Interval 2 waits two periods.
	ctx.SwapInterval(2)
	before = d.Machine.Now()
	ctx.SwapBuffers()
	if got := d.Machine.Now() - before; got < period {
		t.Errorf("interval-2 swap took %v, want > one period", got)
	}
}

func TestSGXDefaultNotVsyncGated(t *testing.T) {
	prof := device.PowerVRSGX545()
	d := newDisplay(t, prof)
	s, _ := d.CreateWindowSurface(32, 32)
	ctx, _ := d.CreateContext()
	ctx.MakeCurrent(s)
	// Paper: SwapInterval(0) has no effect on SGX because default pacing
	// is already faster than the panel.
	if ctx.SwapIntervalValue() != 0 {
		t.Fatalf("SGX default interval = %d, want 0", ctx.SwapIntervalValue())
	}
	period := d.Machine.VSyncClock.Period()
	for i := 0; i < 10; i++ {
		before := d.Machine.Now()
		ctx.SwapBuffers()
		got := d.Machine.Now() - before
		// Each swap pays the driver bookkeeping but is NOT rounded up to
		// the next display refresh tick.
		if got >= period {
			t.Fatalf("swap %d took %v (>= vsync period %v): SGX must not gate at vsync", i, got, period)
		}
		if got != prof.SwapBookkeeping {
			t.Fatalf("swap %d took %v, want the bookkeeping cost %v", i, got, prof.SwapBookkeeping)
		}
	}
}

func TestPbufferSwapNoFlip(t *testing.T) {
	d := newDisplay(t, device.Generic())
	s, _ := d.CreatePbufferSurface(8, 8)
	ctx, _ := d.CreateContext()
	ctx.MakeCurrent(s)
	b := s.BackRes()
	ctx.SwapInterval(1)
	ctx.SwapBuffers()
	if s.BackRes() != b {
		t.Error("pbuffer flipped buffers")
	}
}

func TestMakeCurrentValidation(t *testing.T) {
	d := newDisplay(t, device.Generic())
	d2 := newDisplay(t, device.Generic())
	ctx, _ := d.CreateContext()
	if err := ctx.MakeCurrent(nil); err == nil {
		t.Error("nil surface accepted")
	}
	s2, _ := d2.CreateWindowSurface(8, 8)
	if err := ctx.MakeCurrent(s2); err == nil {
		t.Error("cross-display surface accepted")
	}
	if err := ctx.SwapInterval(-1); err == nil {
		t.Error("negative swap interval accepted")
	}
	if err := ctx.SwapBuffers(); err == nil {
		t.Error("swap without current surface accepted")
	}
}
