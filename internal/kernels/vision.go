package kernels

import (
	"fmt"
	"strings"

	"gles2gpgpu/internal/codec"
)

// Computer-vision kernel suite for the pipeline-graph workloads: separable
// Gaussian convolution, box means, adaptive thresholding, Sobel edge
// detection with non-maximum suppression, and piecewise-linear histogram
// equalisation. All kernels operate on scalar fields in [0,1) stored with
// the engine's codec (one value per texel), are branch-free (step/mix/
// clamp arithmetic, never if/else), and follow the text0/text1 + v_tex
// conventions of the rest of the package, so the shader analysis framework
// can prove the pointwise ones elementwise for pass fusion.

// GaussBlurX generates the horizontal pass of a separable 3-tap Gaussian
// (weights 1/4, 1/2, 1/4) over a w-wide grid; clamp-to-edge sampling comes
// from the texture wrap mode.
func GaussBlurX(w int, o Options) string {
	return sepBlur(glslFloat(1.0/float64(w)), "0.0", o)
}

// GaussBlurY generates the vertical pass of the separable 3-tap Gaussian
// over an h-tall grid.
func GaussBlurY(h int, o Options) string {
	return sepBlur("0.0", glslFloat(1.0/float64(h)), o)
}

func sepBlur(dx, dy string, o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + fmt.Sprintf(`
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	vec2 d = vec2(%s, %s);
	float a = reconstr_in(texture2D(text0, v_tex - d));
	float b = reconstr_in(texture2D(text0, v_tex));
	float c = reconstr_in(texture2D(text0, v_tex + d));
	gl_FragColor = encode_out(0.25 * a + 0.5 * b + 0.25 * c);
}
`, dx, dy)
}

// BoxMeanX generates the horizontal pass of a separable (2r+1)-tap box
// mean over a w-wide grid — the neighbourhood-mean half of adaptive
// thresholding.
func BoxMeanX(w, radius int, o Options) string {
	return boxMean(radius, func(k int) (string, string) {
		return glslFloat(float64(k) / float64(w)), "0.0"
	}, o)
}

// BoxMeanY generates the vertical pass of the separable box mean over an
// h-tall grid.
func BoxMeanY(h, radius int, o Options) string {
	return boxMean(radius, func(k int) (string, string) {
		return "0.0", glslFloat(float64(k) / float64(h))
	}, o)
}

func boxMean(radius int, off func(int) (string, string), o Options) string {
	o = o.normalized()
	var taps strings.Builder
	for k := -radius; k <= radius; k++ {
		dx, dy := off(k)
		fmt.Fprintf(&taps, "\tacc += reconstr_in(texture2D(text0, v_tex + vec2(%s, %s)));\n", dx, dy)
	}
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	float acc = 0.0;
` + taps.String() + `	gl_FragColor = encode_out(acc * ` + glslFloat(1.0/float64(2*radius+1)) + `);
}
`
}

// ScaleBias generates the pointwise affine map out = clamp(v*scale + bias)
// — contrast stretching. Elementwise: fusable with its neighbours.
func ScaleBias(o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
uniform float scale;
uniform float bias;
varying vec2 v_tex;
void main() {
	float v = reconstr_in(texture2D(text0, v_tex));
	gl_FragColor = encode_out(clamp(v * scale + bias, 0.0, 1.0));
}
`
}

// GammaMap generates the pointwise power map out = v^gamma. Elementwise.
func GammaMap(o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
uniform float gamma;
varying vec2 v_tex;
void main() {
	float v = reconstr_in(texture2D(text0, v_tex));
	gl_FragColor = encode_out(pow(max(v, 0.0), gamma));
}
`
}

// DiffShift generates the pointwise signed difference of two fields mapped
// into the unit range: out = clamp(a - b + 0.5). Elementwise with two
// inputs — adaptive thresholding compares a pixel against its local mean.
func DiffShift(o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
uniform sampler2D text1;
varying vec2 v_tex;
void main() {
	float a = reconstr_in(texture2D(text0, v_tex));
	float b = reconstr_in(texture2D(text1, v_tex));
	gl_FragColor = encode_out(clamp(a - b + 0.5, 0.0, 1.0));
}
`
}

// Binarize generates the pointwise threshold out = step(thresh, v): 1 at
// or above the threshold, else 0. Elementwise.
func Binarize(o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
uniform float thresh;
varying vec2 v_tex;
void main() {
	float v = reconstr_in(texture2D(text0, v_tex));
	gl_FragColor = encode_out(step(thresh, v));
}
`
}

// SobelX generates the horizontal Sobel gradient over a w×h grid. The
// signed gradient (range [-4,4] on unit inputs) is stored biased:
// out = 0.5 + gx/8.
func SobelX(w, h int, o Options) string {
	return sobel(w, h, [9]float64{-1, 0, 1, -2, 0, 2, -1, 0, 1}, o)
}

// SobelY generates the vertical Sobel gradient, stored biased like SobelX.
func SobelY(w, h int, o Options) string {
	return sobel(w, h, [9]float64{-1, -2, -1, 0, 0, 0, 1, 2, 1}, o)
}

func sobel(w, h int, k [9]float64, o Options) string {
	o = o.normalized()
	var taps strings.Builder
	ki := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if k[ki] != 0 {
				fmt.Fprintf(&taps,
					"\tacc += %s * reconstr_in(texture2D(text0, v_tex + vec2(%s, %s)));\n",
					glslFloat(k[ki]), glslFloat(float64(dx)/float64(w)), glslFloat(float64(dy)/float64(h)))
			}
			ki++
		}
	}
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	float acc = 0.0;
` + taps.String() + `	gl_FragColor = encode_out(clamp(0.5 + acc * 0.125, 0.0, 1.0));
}
`
}

// GradMag generates the pointwise gradient magnitude from the two biased
// Sobel fields: out = sqrt(gx² + gy²)/(4√2) with gx = (v-0.5)*8.
// Elementwise with two inputs.
func GradMag(o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0; // biased gx
uniform sampler2D text1; // biased gy
varying vec2 v_tex;
void main() {
	float gx = (reconstr_in(texture2D(text0, v_tex)) - 0.5) * 8.0;
	float gy = (reconstr_in(texture2D(text1, v_tex)) - 0.5) * 8.0;
	gl_FragColor = encode_out(clamp(sqrt(gx*gx + gy*gy) * ` + glslFloat(1.0/(4.0*1.4142135623730951)) + `, 0.0, 1.0));
}
`
}

// NonMaxSuppress generates direction-free non-maximum suppression on a
// magnitude field: a pixel survives when it is at least as large as both
// horizontal neighbours or both vertical neighbours (branch-free via
// step/max).
func NonMaxSuppress(w, h int, o Options) string {
	o = o.normalized()
	dx := glslFloat(1.0 / float64(w))
	dy := glslFloat(1.0 / float64(h))
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + fmt.Sprintf(`
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	float m = reconstr_in(texture2D(text0, v_tex));
	float l = reconstr_in(texture2D(text0, v_tex - vec2(%[1]s, 0.0)));
	float r = reconstr_in(texture2D(text0, v_tex + vec2(%[1]s, 0.0)));
	float u = reconstr_in(texture2D(text0, v_tex - vec2(0.0, %[2]s)));
	float d = reconstr_in(texture2D(text0, v_tex + vec2(0.0, %[2]s)));
	float keep = max(step(max(l, r), m), step(max(u, d), m));
	gl_FragColor = encode_out(m * keep);
}
`, dx, dy)
}

// SplineMap generates a pointwise piecewise-linear map with `knots` evenly
// spaced hinge points: out = clamp(p0 + Σ_k s[k]·max(v - k/knots, 0)).
// With the hinge slopes derived from an image's cumulative histogram this
// is histogram equalisation; it stays pure MAX/MAD arithmetic, so the
// analysis framework proves it elementwise and it fuses with neighbours.
func SplineMap(knots int, o Options) string {
	o = o.normalized()
	var terms strings.Builder
	for k := 0; k < knots; k++ {
		fmt.Fprintf(&terms, "\tacc += s[%d] * max(v - %s, 0.0);\n",
			k, glslFloat(float64(k)/float64(knots)))
	}
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + fmt.Sprintf(`
uniform sampler2D text0;
uniform float p0;
uniform float s[%d];
varying vec2 v_tex;
void main() {
	float v = reconstr_in(texture2D(text0, v_tex));
	float acc = p0;
%s	gl_FragColor = encode_out(clamp(acc, 0.0, 1.0));
}
`, knots, terms.String())
}
