// Package kernels generates the GLSL ES sources of the GPGPU kernels the
// paper evaluates (sum, multi-pass blocked sgemm) plus additional
// application kernels (saxpy, 3×3 convolution, Jacobi relaxation) used by
// the examples. Generation is parameterised on the paper's kernel-code
// options: encoding depth (fp32/fp24) and mul24 arithmetic.
package kernels

import (
	"fmt"
	"strings"

	"gles2gpgpu/internal/codec"
)

// Options selects the kernel-code variants of paper §II ("Kernel Code").
type Options struct {
	// Depth selects the [13] encoding width; Depth24 also restricts
	// element I/O to 3 bytes (the 25% bandwidth saving).
	Depth codec.Depth
	// Mul24 replaces full-precision multiplies of encoded values with the
	// mul24 builtin (paper: exact because outputs carry ≤24–32 bits).
	Mul24 bool
}

// DefaultOptions is the baseline: 32-bit encoding, full-precision
// arithmetic.
var DefaultOptions = Options{Depth: codec.Depth32}

// FP24Options is the paper's optimised kernel-code configuration.
var FP24Options = Options{Depth: codec.Depth24, Mul24: true}

func (o Options) normalized() Options {
	if o.Depth == 0 {
		o.Depth = codec.Depth32
	}
	return o
}

// header emits the preamble common to all fragment kernels.
func (o Options) header() string {
	var sb strings.Builder
	if o.Mul24 {
		sb.WriteString("#extension GL_EXT_mul24 : enable\n")
	}
	sb.WriteString("precision mediump float;\n")
	return sb.String()
}

// mul returns the multiply expression for two encoded operands.
func (o Options) mul(a, b string) string {
	if o.Mul24 {
		return fmt.Sprintf("mul24(%s, %s)", a, b)
	}
	return fmt.Sprintf("%s * %s", a, b)
}

// VertexShader is the standard GPGPU pass-through vertex shader: a
// viewport-filling quad whose varying sweeps the unit square so each
// fragment addresses one matrix element.
const VertexShader = `
attribute vec2 a_pos;
varying vec2 v_tex;
void main() {
	gl_Position = vec4(a_pos, 0.0, 1.0);
	v_tex = a_pos * 0.5 + 0.5;
}
`

// QuadVertices is the client-side full-screen quad (two triangles).
var QuadVertices = []float32{-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1}

// Sum generates the streaming-addition kernel: out = (A + B) / 2 in the
// encoded domain (the host publishes the output with a doubled range).
func Sum(o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
uniform sampler2D text1;
varying vec2 v_tex;
void main() {
	float a = reconstr_in(texture2D(text0, v_tex));
	float b = reconstr_in(texture2D(text1, v_tex));
	gl_FragColor = encode_out((a + b) * 0.5);
}
`
}

// SumDep generates the sum kernel with an artificial dependency on the
// previous iteration's output (Fig. 4a's dependency experiment): the
// result is unchanged — the extra term is scaled by zero — but the texture
// read forces the consecutive-frame hazard.
func SumDep(o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
uniform sampler2D text1;
uniform sampler2D text2; // previous output: artificial dependency
varying vec2 v_tex;
void main() {
	float a = reconstr_in(texture2D(text0, v_tex));
	float b = reconstr_in(texture2D(text1, v_tex));
	float prev = reconstr_in(texture2D(text2, v_tex));
	gl_FragColor = encode_out((a + b) * 0.5 + prev * 0.0);
}
`
}

// isPow2 reports whether v is a positive power of two.
func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// SgemmPass generates one pass of the paper's multi-pass blocked sgemm
// (Fig. 2): each invocation accumulates a block of the dot product and adds
// the intermediate texture from the previous pass. The host sets the blk_n
// uniform to block*BLOCK_SIZE/M before each launch. M and block must be
// powers of two so the float loop arithmetic is exact.
//
//	acc = Σ_{k in block} A[y][k]·B[k][x]
//	out = acc/M + interm            (output range [0, M))
func SgemmPass(m, block int, o Options) (string, error) {
	o = o.normalized()
	if !isPow2(m) || !isPow2(block) || block > m {
		return "", fmt.Errorf("kernels: sgemm requires power-of-two sizes with block <= M, got M=%d block=%d", m, block)
	}
	bound := float64(block) / float64(m)
	step := 1.0 / float64(m)
	half := 0.5 / float64(m)
	src := o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + fmt.Sprintf(`
uniform sampler2D text0; // A
uniform sampler2D text1; // B
uniform sampler2D text2; // intermediate accumulator
uniform float blk_n;     // current_block * BLOCK_SIZE / M
varying vec2 v_tex;
void main() {
	float acc = 0.0;
	float A;
	float B;
	float i;
	for (i = 0.0; i < %s; i += %s) {
		A = reconstr_in(texture2D(text0, vec2(i + blk_n + %s, v_tex.y)));
		B = reconstr_in(texture2D(text1, vec2(v_tex.x, i + blk_n + %s)));
		acc += %s;
	}
	float interm = reconstr_in(texture2D(text2, v_tex));
	gl_FragColor = encode_out(acc * %s + interm);
}
`, glslFloat(bound), glslFloat(step), glslFloat(half), glslFloat(half),
		o.mul("A", "B"), glslFloat(step))
	return src, nil
}

// SgemmSinglePass generates the naive single-pass matrix multiply: ONE
// kernel whose loop covers the entire dot product of length m. For real
// matrix sizes the fully-unrolled kernel vastly exceeds every embedded
// implementation limit — the paper's §III motivation for multi-pass
// blocking ("Multi-pass algorithms can be used to solve problems related
// to exceedance of implementation limits in kernel code").
func SgemmSinglePass(m int, o Options) (string, error) {
	o = o.normalized()
	if !isPow2(m) {
		return "", fmt.Errorf("kernels: sgemm requires a power-of-two M, got %d", m)
	}
	step := 1.0 / float64(m)
	half := 0.5 / float64(m)
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + fmt.Sprintf(`
uniform sampler2D text0; // A
uniform sampler2D text1; // B
varying vec2 v_tex;
void main() {
	float acc = 0.0;
	float A;
	float B;
	float i;
	for (i = 0.0; i < 1.0; i += %s) {
		A = reconstr_in(texture2D(text0, vec2(i + %s, v_tex.y)));
		B = reconstr_in(texture2D(text1, vec2(v_tex.x, i + %s)));
		acc += %s;
	}
	gl_FragColor = encode_out(acc * %s);
}
`, glslFloat(step), glslFloat(half), glslFloat(half),
		o.mul("A", "B"), glslFloat(step)), nil
}

// Saxpy generates y' = (alpha·x + y)/2 (host output range doubled).
func Saxpy(o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0; // x
uniform sampler2D text1; // y
uniform float alpha;
varying vec2 v_tex;
void main() {
	float x = reconstr_in(texture2D(text0, v_tex));
	float y = reconstr_in(texture2D(text1, v_tex));
	gl_FragColor = encode_out((` + o.mul("alpha", "x") + ` + y) * 0.5);
}
`
}

// Conv3x3 generates a 3×3 convolution over a w×h grid with clamp-to-edge
// sampling (the texture wrap mode provides the clamping). Weights arrive
// as a 9-element uniform array, normalised so the output stays in [0,1).
func Conv3x3(w, h int, o Options) string {
	o = o.normalized()
	var taps strings.Builder
	ki := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			fmt.Fprintf(&taps,
				"\tacc += k[%d] * reconstr_in(texture2D(text0, v_tex + vec2(%s, %s)));\n",
				ki, glslFloat(float64(dx)/float64(w)), glslFloat(float64(dy)/float64(h)))
			ki++
		}
	}
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
uniform float k[9];
varying vec2 v_tex;
void main() {
	float acc = 0.0;
` + taps.String() + `	gl_FragColor = encode_out(clamp(acc, 0.0, 1.0));
}
`
}

// Transpose generates the matrix-transpose kernel: out[y][x] = in[x][y],
// a pure data-movement kernel (texture coordinates swizzled with .yx).
func Transpose(o Options) string {
	o = o.normalized()
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + `
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	gl_FragColor = encode_out(reconstr_in(texture2D(text0, v_tex.yx)));
}
`
}

// Reduce2x2 generates one level of a pyramid reduction: each output texel
// is the average of a 2×2 block of the input (a wIn×wIn texture). Chaining
// log2(N) levels reduces a matrix to a single texel holding the mean, from
// which the host recovers the total — the classic GPGPU reduction pattern
// on APIs without compute primitives.
func Reduce2x2(wIn int, o Options) (string, error) {
	o = o.normalized()
	if !isPow2(wIn) || wIn < 2 {
		return "", fmt.Errorf("kernels: reduction level input width %d must be a power of two >= 2", wIn)
	}
	h := glslFloat(0.5 / float64(wIn))
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + fmt.Sprintf(`
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	float a = reconstr_in(texture2D(text0, v_tex + vec2(-%[1]s, -%[1]s)));
	float b = reconstr_in(texture2D(text0, v_tex + vec2(%[1]s, -%[1]s)));
	float c = reconstr_in(texture2D(text0, v_tex + vec2(-%[1]s, %[1]s)));
	float d = reconstr_in(texture2D(text0, v_tex + vec2(%[1]s, %[1]s)));
	gl_FragColor = encode_out((a + b + c + d) * 0.25);
}
`, h), nil
}

// Jacobi generates one Jacobi relaxation step for the 2D Laplace equation;
// boundary handling (Dirichlet) is applied by the host keeping boundary
// texels fixed between passes, and the shader masks boundary fragments.
func Jacobi(w, h int, o Options) string {
	o = o.normalized()
	dx := glslFloat(1.0 / float64(w))
	dy := glslFloat(1.0 / float64(h))
	return o.header() +
		codec.ReconstrGLSL(o.Depth) +
		codec.EncodeGLSL(o.Depth) + fmt.Sprintf(`
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	float left  = reconstr_in(texture2D(text0, v_tex + vec2(-%[1]s, 0.0)));
	float right = reconstr_in(texture2D(text0, v_tex + vec2(%[1]s, 0.0)));
	float down  = reconstr_in(texture2D(text0, v_tex + vec2(0.0, -%[2]s)));
	float up    = reconstr_in(texture2D(text0, v_tex + vec2(0.0, %[2]s)));
	float here  = reconstr_in(texture2D(text0, v_tex));
	float relaxed = (left + right + down + up) * 0.25;
	// Boundary fragments keep their value (Dirichlet condition).
	bool interior = v_tex.x > %[1]s && v_tex.x < 1.0 - %[1]s &&
		v_tex.y > %[2]s && v_tex.y < 1.0 - %[2]s;
	gl_FragColor = encode_out(interior ? relaxed : here);
}
`, dx, dy)
}

// Jacobi8 generates the display-precision Jacobi relaxation step: the
// same 5-point Laplace stencil as Jacobi, but with the temperature stored
// as one raw byte (replicated across RGB) instead of codec-encoded fixed
// point. At 8-bit quantisation the relaxation reaches an exact byte fixed
// point — cold regions freeze first and the frozen region grows — which is
// the progressive per-tile convergence the cross-iteration tile-coherence
// cache elides. (The codec-encoded Jacobi never freezes: rounding noise
// keeps the low-order bytes churning below any useful tolerance, so
// coherence pays at display precision, as in the frame-coherence
// literature, not at 24/32-bit state precision.)
func Jacobi8(w, h int, o Options) string {
	o = o.normalized()
	dx := glslFloat(1.0 / float64(w))
	dy := glslFloat(1.0 / float64(h))
	return o.header() + fmt.Sprintf(`
uniform sampler2D text0; // temperature in R (raw byte)
varying vec2 v_tex;
void main() {
	float left  = texture2D(text0, v_tex + vec2(-%[1]s, 0.0)).r;
	float right = texture2D(text0, v_tex + vec2(%[1]s, 0.0)).r;
	float down  = texture2D(text0, v_tex + vec2(0.0, -%[2]s)).r;
	float up    = texture2D(text0, v_tex + vec2(0.0, %[2]s)).r;
	float here  = texture2D(text0, v_tex).r;
	float relaxed = (left + right + down + up) * 0.25;
	// Boundary fragments keep their value (Dirichlet condition).
	bool interior = v_tex.x > %[1]s && v_tex.x < 1.0 - %[1]s &&
		v_tex.y > %[2]s && v_tex.y < 1.0 - %[2]s;
	float t = interior ? relaxed : here;
	gl_FragColor = vec4(t, t, t, 1.0);
}
`, dx, dy)
}

// Particles generates one step of a texture-resident particle system, a
// state-stepping workload in the gl-gpgpu mould: each texel is one particle
// with position packed in RG and velocity in BA (biased around 0.5), stored
// as raw RGBA bytes rather than codec-encoded floats. Velocities decay
// toward rest each step and positions integrate them, bouncing off the unit
// walls; at 8-bit quantisation both eventually freeze to a byte fixed point,
// which is what lets the cross-iteration tile-coherence cache elide settled
// tiles. The kernel is straight-line (mix/step/clamp, no branches) so it
// also exercises the lane-batched engine.
func Particles(o Options) string {
	o = o.normalized()
	return o.header() + `
uniform sampler2D text0; // particle state: pos.xy in RG, vel in BA
varying vec2 v_tex;
void main() {
	vec4 s = texture2D(text0, v_tex);
	vec2 vel = s.ba - 0.5;
	vec2 pos = s.rg + vel * 0.04;
	vel = vel * 0.95 + 0.5;
	// Reflect the velocity about rest where the particle left the box.
	vec2 hit = min(step(pos, vec2(0.0)) + step(vec2(1.0), pos), vec2(1.0));
	vel = mix(vel, 1.0 - vel, hit);
	pos = clamp(pos, 0.0, 1.0);
	gl_FragColor = vec4(pos, vel);
}
`
}

// ReactionDiffusion generates one Gray-Scott reaction-diffusion step over a
// w×h grid with species u in R and v in G (raw byte state, clamp-to-edge
// sampling). The homogeneous state u=1, v=0 is byte-exact under the update,
// so tiles the pattern front has not reached hold identical bytes every
// iteration — the canonical coherence-friendly workload.
func ReactionDiffusion(w, h int, o Options) string {
	o = o.normalized()
	dx := glslFloat(1.0 / float64(w))
	dy := glslFloat(1.0 / float64(h))
	return o.header() + fmt.Sprintf(`
uniform sampler2D text0; // u in R, v in G
varying vec2 v_tex;
void main() {
	vec2 here  = texture2D(text0, v_tex).rg;
	vec2 left  = texture2D(text0, v_tex + vec2(-%[1]s, 0.0)).rg;
	vec2 right = texture2D(text0, v_tex + vec2(%[1]s, 0.0)).rg;
	vec2 down  = texture2D(text0, v_tex + vec2(0.0, -%[2]s)).rg;
	vec2 up    = texture2D(text0, v_tex + vec2(0.0, %[2]s)).rg;
	vec2 lap = left + right + down + up - 4.0 * here;
	float u = here.r;
	float v = here.g;
	float uvv = u * v * v;
	float du = 0.16 * lap.r - uvv + 0.0545 * (1.0 - u);
	float dv = 0.08 * lap.g + uvv - 0.1165 * v;
	gl_FragColor = vec4(clamp(u + du, 0.0, 1.0), clamp(v + dv, 0.0, 1.0), 0.0, 1.0);
}
`, dx, dy)
}

// CoherenceSweep generates the coherence micro-benchmark kernel: fragments
// in the bottom activeFrac of the grid invert their input byte every step
// (a period-2 oscillation that never matches the previous iteration), the
// rest pass their input through unchanged (byte-identical from the second
// iteration on). The fraction is baked in as a compile-time constant — a
// uniform would enter the coherence cache's draw-state signature and defeat
// the elision being measured.
func CoherenceSweep(activeFrac float64, o Options) string {
	o = o.normalized()
	return o.header() + fmt.Sprintf(`
uniform sampler2D text0;
varying vec2 v_tex;
void main() {
	vec4 t = texture2D(text0, v_tex);
	vec4 flipped = vec4(1.0) - t;
	gl_FragColor = v_tex.y < %s ? flipped : t;
}
`, glslFloat(activeFrac))
}

// glslFloat renders a float64 as a GLSL float literal with full precision.
func glslFloat(v float64) string {
	s := fmt.Sprintf("%.17g", v)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
