package kernels

import (
	"strings"
	"testing"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/glsl"
)

// compileFrag checks a generated fragment kernel through the real front
// end.
func compileFrag(t *testing.T, src string) *glsl.CheckedShader {
	t.Helper()
	cs, err := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
	if err != nil {
		t.Fatalf("generated kernel does not compile: %v\n%s", err, src)
	}
	return cs
}

func TestVertexShaderCompiles(t *testing.T) {
	if _, err := glsl.Frontend(VertexShader, glsl.CompileOptions{Stage: glsl.StageVertex}); err != nil {
		t.Fatal(err)
	}
}

func TestSumVariantsCompile(t *testing.T) {
	for _, o := range []Options{DefaultOptions, FP24Options, {}} {
		compileFrag(t, Sum(o))
		compileFrag(t, SumDep(o))
	}
}

func TestSumFP24UsesExtensionAndThreeChannels(t *testing.T) {
	src := Sum(FP24Options)
	if !strings.Contains(src, "#extension GL_EXT_mul24") {
		t.Error("fp24 kernel missing mul24 extension header")
	}
	if !strings.Contains(src, "t.rgb") {
		t.Error("fp24 reconstruct does not restrict to 3 channels")
	}
}

func TestSgemmPassGeneration(t *testing.T) {
	src, err := SgemmPass(64, 16, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	cs := compileFrag(t, src)
	// One loop, trip count = block size.
	if len(cs.Loops) != 1 {
		t.Fatalf("loops = %d", len(cs.Loops))
	}
	for _, info := range cs.Loops {
		if info.Trip != 16 {
			t.Errorf("trip = %d, want 16", info.Trip)
		}
	}
	// Uniform interface as in the paper's Fig. 2.
	names := map[string]bool{}
	for _, u := range cs.Uniforms {
		names[u.Name] = true
	}
	for _, want := range []string{"text0", "text1", "text2", "blk_n"} {
		if !names[want] {
			t.Errorf("missing uniform %q", want)
		}
	}
}

func TestSgemmPassMul24(t *testing.T) {
	src, err := SgemmPass(64, 8, FP24Options)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "mul24(A, B)") {
		t.Error("mul24 option did not change the inner product")
	}
	compileFrag(t, src)
}

func TestSgemmPassValidation(t *testing.T) {
	if _, err := SgemmPass(100, 10, DefaultOptions); err == nil {
		t.Error("non-power-of-two M accepted")
	}
	if _, err := SgemmPass(64, 3, DefaultOptions); err == nil {
		t.Error("non-power-of-two block accepted")
	}
	if _, err := SgemmPass(16, 32, DefaultOptions); err == nil {
		t.Error("block > M accepted")
	}
}

func TestSgemmSinglePassMotivatesMultiPass(t *testing.T) {
	// Tiny M: the single-pass kernel is legal GLSL and compiles.
	src, err := SgemmSinglePass(8, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	cs := compileFrag(t, src)
	for _, info := range cs.Loops {
		if info.Trip != 8 {
			t.Errorf("trip = %d, want 8", info.Trip)
		}
	}
	// Paper-sized M: the front end accepts it, but the unrolled program
	// annihilates every device limit — reproduced in
	// shader.TestSinglePassSgemmExceedsDeviceLimits. Here we check the
	// trip count scales to the full dot-product length.
	src, err = SgemmSinglePass(1024, DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	cs, err2 := glsl.Frontend(src, glsl.CompileOptions{Stage: glsl.StageFragment})
	if err2 != nil {
		t.Fatalf("front end rejected single-pass kernel: %v", err2)
	}
	for _, info := range cs.Loops {
		if info.Trip != 1024 {
			t.Errorf("trip = %d, want 1024", info.Trip)
		}
	}
	if _, err := SgemmSinglePass(100, DefaultOptions); err == nil {
		t.Error("non-power-of-two M accepted")
	}
}

func TestOtherKernelsCompile(t *testing.T) {
	compileFrag(t, Saxpy(DefaultOptions))
	compileFrag(t, Saxpy(FP24Options))
	compileFrag(t, Conv3x3(64, 64, DefaultOptions))
	compileFrag(t, Jacobi(32, 32, DefaultOptions))
	for _, w := range []int{2, 64, 1024} {
		src, err := Reduce2x2(w, DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		cs := compileFrag(t, src)
		if got := len(cs.Uniforms); got != 1 {
			t.Errorf("reduce uniforms = %d", got)
		}
	}
	if _, err := Reduce2x2(3, DefaultOptions); err == nil {
		t.Error("non-power-of-two reduction width accepted")
	}
	if _, err := Reduce2x2(1, DefaultOptions); err == nil {
		t.Error("width-1 reduction accepted")
	}
}

func TestGlslFloatLiterals(t *testing.T) {
	cases := map[float64]string{
		0.5:  "0.5",
		1:    "1.0",
		0.25: "0.25",
	}
	for v, want := range cases {
		if got := glslFloat(v); got != want {
			t.Errorf("glslFloat(%g) = %q, want %q", v, got, want)
		}
	}
	// Exactness for binary fractions used as loop bounds.
	if glslFloat(1.0/1024) != "0.0009765625" {
		t.Errorf("1/1024 rendered as %q", glslFloat(1.0/1024))
	}
}

func TestOptionsNormalization(t *testing.T) {
	var o Options
	if o.normalized().Depth != codec.Depth32 {
		t.Error("zero Options did not default to Depth32")
	}
}
