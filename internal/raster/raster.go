// Package raster implements triangle setup and scan conversion for the
// simulated GPU: viewport transform, edge-function rasterisation with the
// top-left fill rule, perspective-correct varying interpolation, and the
// tile enumeration a tile-based renderer needs for binning.
//
// GPGPU workloads draw two viewport-filling triangles, but the rasteriser
// is a complete general implementation so the GLES layer behaves like a
// real driver for arbitrary geometry.
package raster

import (
	"math"

	"gles2gpgpu/internal/shader"
)

// MaxVaryings is the per-vertex varying register budget (matches the GLES2
// minimum of 8 varying vectors).
const MaxVaryings = 8

// Vertex is one post-vertex-shader vertex: a clip-space position plus
// varying outputs.
type Vertex struct {
	Pos      shader.Vec4
	Varyings [MaxVaryings]shader.Vec4
	NumVar   int
}

// Triangle is a set-up triangle ready for rasterisation.
type Triangle struct {
	// Screen-space positions (pixel units) and 1/w per vertex.
	sx, sy, invW [3]float64
	varyings     [3][MaxVaryings]shader.Vec4
	numVar       int

	// Edge coefficients: E_i(x,y) = a_i*x + b_i*y + c_i, positive inside.
	a, b, c [3]float64
	area2   float64 // twice the signed area after orientation fix

	minX, minY, maxX, maxY int // inclusive pixel bounds, clipped to viewport
	valid                  bool

	// exact is set when Setup proves the dyadic-exactness conditions that
	// make incremental interpolation bit-identical (see quadfast.go).
	exact bool
}

// Setup performs viewport transform and edge setup. It returns ok=false for
// degenerate (zero-area) triangles or triangles with any vertex at w<=0
// (proper near-plane clipping is unnecessary for the workloads this
// simulator targets, matching the behaviour of GPGPU full-screen quads).
func Setup(v0, v1, v2 *Vertex, vpW, vpH int) (Triangle, bool) {
	var t Triangle
	vs := [3]*Vertex{v0, v1, v2}
	for i, v := range vs {
		w := float64(v.Pos[3])
		if w <= 0 {
			return t, false
		}
		// NDC -> window coordinates, pixel centres at integer+0.5.
		t.sx[i] = (float64(v.Pos[0])/w*0.5 + 0.5) * float64(vpW)
		t.sy[i] = (float64(v.Pos[1])/w*0.5 + 0.5) * float64(vpH)
		t.invW[i] = 1 / w
		t.varyings[i] = v.Varyings
	}
	t.numVar = v0.NumVar

	area2 := (t.sx[1]-t.sx[0])*(t.sy[2]-t.sy[0]) - (t.sy[1]-t.sy[0])*(t.sx[2]-t.sx[0])
	if area2 == 0 {
		return t, false
	}
	if area2 < 0 {
		// Flip orientation so edge functions are positive inside; GLES2
		// has culling disabled by default, so both windings rasterise.
		t.sx[1], t.sx[2] = t.sx[2], t.sx[1]
		t.sy[1], t.sy[2] = t.sy[2], t.sy[1]
		t.invW[1], t.invW[2] = t.invW[2], t.invW[1]
		t.varyings[1], t.varyings[2] = t.varyings[2], t.varyings[1]
		area2 = -area2
	}
	t.area2 = area2

	// Edge i is opposite vertex i: E_i positive inside.
	for i := 0; i < 3; i++ {
		j, k := (i+1)%3, (i+2)%3
		t.a[i] = t.sy[j] - t.sy[k]
		t.b[i] = t.sx[k] - t.sx[j]
		t.c[i] = t.sx[j]*t.sy[k] - t.sx[k]*t.sy[j]
	}

	minX := int(math.Floor(min3(t.sx[0], t.sx[1], t.sx[2])))
	maxX := int(math.Ceil(max3(t.sx[0], t.sx[1], t.sx[2]))) - 1
	minY := int(math.Floor(min3(t.sy[0], t.sy[1], t.sy[2])))
	maxY := int(math.Ceil(max3(t.sy[0], t.sy[1], t.sy[2]))) - 1
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > vpW-1 {
		maxX = vpW - 1
	}
	if maxY > vpH-1 {
		maxY = vpH - 1
	}
	if minX > maxX || minY > maxY {
		return t, false
	}
	t.minX, t.minY, t.maxX, t.maxY = minX, minY, maxX, maxY
	t.valid = true
	t.exact = t.classifyExact()
	return t, true
}

func min3(a, b, c float64) float64 { return math.Min(a, math.Min(b, c)) }
func max3(a, b, c float64) float64 { return math.Max(a, math.Max(b, c)) }

// Bounds returns the inclusive pixel bounding box.
func (t *Triangle) Bounds() (minX, minY, maxX, maxY int) {
	return t.minX, t.minY, t.maxX, t.maxY
}

// VaryingRectBounds bounds varying component (vi, ci) over every fragment
// the triangle can emit inside the inclusive pixel rect [x0,x1]×[y0,y1]:
// every emitted float32 value lies in [lo, hi]. It only answers (ok=true)
// when all three vertices share one 1/w bit pattern: interpolation is
// then an affine function of screen position (the barycentric weights sum
// to one identically, so the perspective divide cancels), and an affine
// function over a rectangle attains its extremes at the corners. The four
// corner pixel centres are evaluated with the exact expression
// RasterizeRect uses, then the result is widened by one float32 ulp per
// side: an interior pixel's float64 evaluation differs from the exact
// affine value by far less than half a float32 ulp, so its rounded
// float32 result cannot pass the widened corner extremes. ok=false when a
// corner evaluates to NaN or an infinity.
func (t *Triangle) VaryingRectBounds(vi, ci, x0, y0, x1, y1 int) (lo, hi float32, ok bool) {
	if !t.valid || vi < 0 || vi >= t.numVar || ci < 0 || ci > 3 {
		return 0, 0, false
	}
	if t.invW[0] != t.invW[1] || t.invW[0] != t.invW[2] {
		return 0, 0, false
	}
	first := true
	for _, y := range [2]int{y0, y1} {
		py := float64(y) + 0.5
		for _, x := range [2]int{x0, x1} {
			px := float64(x) + 0.5
			var e [3]float64
			for i := 0; i < 3; i++ {
				e[i] = t.a[i]*px + t.b[i]*py + t.c[i]
			}
			l0 := e[0] / t.area2
			l1 := e[1] / t.area2
			l2 := e[2] / t.area2
			invW := l0*t.invW[0] + l1*t.invW[1] + l2*t.invW[2]
			w := 1 / invW
			v := l0*float64(t.varyings[0][vi][ci])*t.invW[0] +
				l1*float64(t.varyings[1][vi][ci])*t.invW[1] +
				l2*float64(t.varyings[2][vi][ci])*t.invW[2]
			f := float32(v * w)
			if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
				return 0, 0, false
			}
			if first || f < lo {
				lo = f
			}
			if first || f > hi {
				hi = f
			}
			first = false
		}
	}
	lo = math.Nextafter32(lo, float32(math.Inf(-1)))
	hi = math.Nextafter32(hi, float32(math.Inf(1)))
	if math.IsInf(float64(lo), 0) || math.IsInf(float64(hi), 0) {
		return 0, 0, false
	}
	return lo, hi, true
}

// topLeft reports whether edge i is a top or left edge (such edges own
// their boundary pixels under the GL fill rule).
func (t *Triangle) topLeft(i int) bool {
	// Edge i runs from vertex (i+1)%3 to (i+2)%3 in the fixed (CCW)
	// orientation. Left edge: going down (dy < 0 in y-up). Top edge:
	// horizontal and going right.
	j, k := (i+1)%3, (i+2)%3
	dx := t.sx[k] - t.sx[j]
	dy := t.sy[k] - t.sy[j]
	if dy != 0 {
		return dy < 0 // left edge in a CCW triangle (y-up)
	}
	return dx > 0 // top edge
}

// FragmentSink receives rasterised fragments. The varyings slice is reused
// between calls; copy it if retained.
type FragmentSink func(x, y int, fragCoord shader.Vec4, varyings []shader.Vec4)

// RasterizeRect scans the intersection of the triangle with the given
// inclusive pixel rectangle (a tile), emitting each covered fragment with
// perspective-correct varyings.
func (t *Triangle) RasterizeRect(x0, y0, x1, y1 int, emit FragmentSink) int {
	if !t.valid {
		return 0
	}
	if x0 < t.minX {
		x0 = t.minX
	}
	if y0 < t.minY {
		y0 = t.minY
	}
	if x1 > t.maxX {
		x1 = t.maxX
	}
	if y1 > t.maxY {
		y1 = t.maxY
	}
	if x0 > x1 || y0 > y1 {
		return 0
	}
	if t.exact && quadFast {
		return t.rasterizeRectFast(x0, y0, x1, y1, emit)
	}
	var varbuf [MaxVaryings]shader.Vec4
	count := 0
	for y := y0; y <= y1; y++ {
		py := float64(y) + 0.5
		for x := x0; x <= x1; x++ {
			px := float64(x) + 0.5
			var e [3]float64
			inside := true
			for i := 0; i < 3; i++ {
				e[i] = t.a[i]*px + t.b[i]*py + t.c[i]
				if e[i] < 0 || (e[i] == 0 && !t.topLeft(i)) {
					inside = false
					break
				}
			}
			if !inside {
				continue
			}
			// Barycentric weights.
			l0 := e[0] / t.area2
			l1 := e[1] / t.area2
			l2 := e[2] / t.area2
			invW := l0*t.invW[0] + l1*t.invW[1] + l2*t.invW[2]
			w := 1 / invW
			for vi := 0; vi < t.numVar; vi++ {
				var out shader.Vec4
				for ci := 0; ci < 4; ci++ {
					v := l0*float64(t.varyings[0][vi][ci])*t.invW[0] +
						l1*float64(t.varyings[1][vi][ci])*t.invW[1] +
						l2*float64(t.varyings[2][vi][ci])*t.invW[2]
					out[ci] = float32(v * w)
				}
				varbuf[vi] = out
			}
			fragZ := float32(0.5) // no depth buffer in this pipeline
			fc := shader.Vec4{float32(px), float32(py), fragZ, float32(invW)}
			emit(x, y, fc, varbuf[:t.numVar])
			count++
		}
	}
	return count
}

// Rasterize scans the whole triangle.
func (t *Triangle) Rasterize(emit FragmentSink) int {
	return t.RasterizeRect(t.minX, t.minY, t.maxX, t.maxY, emit)
}

// AppendFingerprint appends a byte serialisation of every field that
// determines the triangle's rasterisation output — screen positions, 1/w,
// varyings, and the clipped pixel bounds — to dst and returns it. Two
// set-up triangles with equal fingerprints emit identical fragment streams
// (coordinates, coverage and interpolated varyings, bit for bit): the edge
// coefficients and exactness classification are pure functions of the
// serialised positions. The cross-iteration tile-coherence cache uses the
// fingerprint as part of its draw-state signature.
func (t *Triangle) AppendFingerprint(dst []byte) []byte {
	p64 := func(v float64) {
		u := math.Float64bits(v)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	p32 := func(v float32) {
		u := math.Float32bits(v)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	pint := func(v int) {
		u := uint32(int32(v))
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	if !t.valid {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	for i := 0; i < 3; i++ {
		p64(t.sx[i])
		p64(t.sy[i])
		p64(t.invW[i])
	}
	pint(t.numVar)
	for vi := 0; vi < 3; vi++ {
		for r := 0; r < t.numVar; r++ {
			for ci := 0; ci < 4; ci++ {
				p32(t.varyings[vi][r][ci])
			}
		}
	}
	pint(t.minX)
	pint(t.minY)
	pint(t.maxX)
	pint(t.maxY)
	return dst
}

// Bands splits the inclusive row range [y0, y1] into at most n contiguous,
// disjoint, non-empty bands [b0, b1] covering it exactly, balanced to
// within one row. It is the work-partitioning primitive of the
// host-parallel fragment engine: each band is shaded by one worker, and
// because every pixel row belongs to exactly one band, per-pixel write
// order matches serial rasterisation even for overlapping primitives.
func Bands(y0, y1, n int) [][2]int {
	rows := y1 - y0 + 1
	if rows <= 0 || n <= 0 {
		return nil
	}
	if n > rows {
		n = rows
	}
	bands := make([][2]int, 0, n)
	base, rem := rows/n, rows%n
	y := y0
	for i := 0; i < n; i++ {
		h := base
		if i < rem {
			h++
		}
		bands = append(bands, [2]int{y, y + h - 1})
		y += h
	}
	return bands
}

// TileRange returns the inclusive tile-coordinate range the triangle's
// bounding box touches for a given tile size — the binning step of a
// tile-based GPU.
func (t *Triangle) TileRange(tileW, tileH int) (tx0, ty0, tx1, ty1 int, any bool) {
	if !t.valid || tileW <= 0 || tileH <= 0 {
		return 0, 0, 0, 0, false
	}
	return t.minX / tileW, t.minY / tileH, t.maxX / tileW, t.maxY / tileH, true
}
