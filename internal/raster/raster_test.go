package raster

import (
	"math"
	"testing"
	"testing/quick"

	"gles2gpgpu/internal/shader"
)

// quadVerts returns the standard GPGPU full-screen quad as two triangles in
// clip space with one vec2 varying running 0..1 across the viewport.
func quadVerts() [6]Vertex {
	mk := func(x, y, u, v float32) Vertex {
		vert := Vertex{Pos: shader.Vec4{x, y, 0, 1}, NumVar: 1}
		vert.Varyings[0] = shader.Vec4{u, v, 0, 0}
		return vert
	}
	bl := mk(-1, -1, 0, 0)
	br := mk(1, -1, 1, 0)
	tl := mk(-1, 1, 0, 1)
	tr := mk(1, 1, 1, 1)
	return [6]Vertex{bl, br, tr, bl, tr, tl}
}

// rasterizeQuad scans both triangles of the quad into a coverage map.
func rasterizeQuad(t *testing.T, w, h int) (map[[2]int]int, map[[2]int]shader.Vec4) {
	t.Helper()
	vs := quadVerts()
	cover := make(map[[2]int]int)
	vary := make(map[[2]int]shader.Vec4)
	for tri := 0; tri < 2; tri++ {
		tr, ok := Setup(&vs[tri*3], &vs[tri*3+1], &vs[tri*3+2], w, h)
		if !ok {
			t.Fatalf("triangle %d rejected", tri)
		}
		tr.Rasterize(func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
			cover[[2]int{x, y}]++
			vary[[2]int{x, y}] = varyings[0]
		})
	}
	return cover, vary
}

func TestFullScreenQuadCoversEveryPixelOnce(t *testing.T) {
	const w, h = 16, 12
	cover, _ := rasterizeQuad(t, w, h)
	if len(cover) != w*h {
		t.Fatalf("covered %d pixels, want %d", len(cover), w*h)
	}
	for p, n := range cover {
		if n != 1 {
			t.Fatalf("pixel %v covered %d times (fill-rule violation on the shared diagonal)", p, n)
		}
	}
}

func TestQuadVaryingInterpolation(t *testing.T) {
	const w, h = 8, 8
	_, vary := rasterizeQuad(t, w, h)
	for p, v := range vary {
		wantU := (float32(p[0]) + 0.5) / w
		wantV := (float32(p[1]) + 0.5) / h
		if math.Abs(float64(v[0]-wantU)) > 1e-5 || math.Abs(float64(v[1]-wantV)) > 1e-5 {
			t.Fatalf("pixel %v varying = (%g,%g), want (%g,%g)", p, v[0], v[1], wantU, wantV)
		}
	}
}

func TestQuadCoverageProperty(t *testing.T) {
	// Any viewport size: exact single coverage.
	f := func(a, b uint8) bool {
		w := int(a%64) + 1
		h := int(b%64) + 1
		vs := quadVerts()
		cover := make(map[[2]int]int)
		for tri := 0; tri < 2; tri++ {
			tr, ok := Setup(&vs[tri*3], &vs[tri*3+1], &vs[tri*3+2], w, h)
			if !ok {
				return false
			}
			tr.Rasterize(func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
				cover[[2]int{x, y}]++
			})
		}
		if len(cover) != w*h {
			return false
		}
		for _, n := range cover {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDegenerateTriangleRejected(t *testing.T) {
	v := Vertex{Pos: shader.Vec4{0, 0, 0, 1}}
	if _, ok := Setup(&v, &v, &v, 16, 16); ok {
		t.Error("zero-area triangle accepted")
	}
	// w <= 0 rejected.
	v2 := Vertex{Pos: shader.Vec4{1, 0, 0, 0}}
	v3 := Vertex{Pos: shader.Vec4{0, 1, 0, 1}}
	if _, ok := Setup(&v, &v2, &v3, 16, 16); ok {
		t.Error("w=0 vertex accepted")
	}
}

func TestOffscreenTriangleRejected(t *testing.T) {
	mk := func(x, y float32) Vertex { return Vertex{Pos: shader.Vec4{x, y, 0, 1}} }
	v0, v1, v2 := mk(2, 2), mk(3, 2), mk(2, 3)
	if _, ok := Setup(&v0, &v1, &v2, 16, 16); ok {
		t.Error("fully offscreen triangle not rejected by bounds clip")
	}
}

func TestBothWindingsRasterize(t *testing.T) {
	mk := func(x, y float32) Vertex { return Vertex{Pos: shader.Vec4{x, y, 0, 1}} }
	ccw := [3]Vertex{mk(-1, -1), mk(1, -1), mk(0, 1)}
	cw := [3]Vertex{mk(-1, -1), mk(0, 1), mk(1, -1)}
	count := func(vs [3]Vertex) int {
		tr, ok := Setup(&vs[0], &vs[1], &vs[2], 32, 32)
		if !ok {
			t.Fatal("triangle rejected")
		}
		return tr.Rasterize(func(int, int, shader.Vec4, []shader.Vec4) {})
	}
	if a, b := count(ccw), count(cw); a != b || a == 0 {
		t.Errorf("winding asymmetry: ccw=%d cw=%d", a, b)
	}
}

func TestTileRangeAndTiledEqualsFull(t *testing.T) {
	vs := quadVerts()
	const w, h = 40, 24
	const tile = 16
	full := make(map[[2]int]bool)
	tiled := make(map[[2]int]bool)
	for tri := 0; tri < 2; tri++ {
		tr, ok := Setup(&vs[tri*3], &vs[tri*3+1], &vs[tri*3+2], w, h)
		if !ok {
			t.Fatal("quad triangle rejected")
		}
		tr.Rasterize(func(x, y int, fc shader.Vec4, _ []shader.Vec4) {
			full[[2]int{x, y}] = true
		})
		tx0, ty0, tx1, ty1, any := tr.TileRange(tile, tile)
		if !any {
			t.Fatal("no tiles")
		}
		for ty := ty0; ty <= ty1; ty++ {
			for tx := tx0; tx <= tx1; tx++ {
				tr.RasterizeRect(tx*tile, ty*tile, tx*tile+tile-1, ty*tile+tile-1,
					func(x, y int, fc shader.Vec4, _ []shader.Vec4) {
						if tiled[[2]int{x, y}] {
							t.Fatalf("pixel (%d,%d) emitted twice across tiles", x, y)
						}
						tiled[[2]int{x, y}] = true
					})
			}
		}
	}
	if len(full) != len(tiled) {
		t.Fatalf("tiled coverage %d != full coverage %d", len(tiled), len(full))
	}
	for p := range full {
		if !tiled[p] {
			t.Fatalf("pixel %v missing from tiled pass", p)
		}
	}
}

func TestPerspectiveCorrectInterpolation(t *testing.T) {
	// A triangle with differing w: perspective-correct interpolation must
	// divide by interpolated 1/w, not lerp naively.
	mkw := func(x, y, w, varying float32) Vertex {
		v := Vertex{Pos: shader.Vec4{x * w, y * w, 0, w}, NumVar: 1}
		v.Varyings[0] = shader.Vec4{varying, 0, 0, 0}
		return v
	}
	v0 := mkw(-1, -1, 1, 0)
	v1 := mkw(1, -1, 4, 1)
	v2 := mkw(-1, 1, 1, 0)
	tr, ok := Setup(&v0, &v1, &v2, 64, 64)
	if !ok {
		t.Fatal("triangle rejected")
	}
	// Midpoint of the bottom edge in screen space: naive lerp would give
	// 0.5; perspective-correct gives 1/w weighting = (0*1 + 1*0.25)/(1.25)
	// = 0.2.
	var got float32 = -1
	tr.Rasterize(func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
		if x == 31 && y == 0 {
			got = varyings[0][0]
		}
	})
	if got < 0 {
		t.Fatal("midpoint fragment not emitted")
	}
	if math.Abs(float64(got)-0.2) > 0.02 {
		t.Errorf("perspective interpolation = %g, want ~0.2", got)
	}
}

func TestFragCoordConvention(t *testing.T) {
	vs := quadVerts()
	tr, ok := Setup(&vs[0], &vs[1], &vs[2], 4, 4)
	if !ok {
		t.Fatal("rejected")
	}
	tr.Rasterize(func(x, y int, fc shader.Vec4, _ []shader.Vec4) {
		if fc[0] != float32(x)+0.5 || fc[1] != float32(y)+0.5 {
			t.Fatalf("gl_FragCoord = (%g,%g) for pixel (%d,%d)", fc[0], fc[1], x, y)
		}
		if fc[3] != 1 {
			t.Fatalf("1/w = %g, want 1 for w=1 quad", fc[3])
		}
	})
}

func TestBands(t *testing.T) {
	cases := []struct {
		y0, y1, n int
		want      int // expected band count
	}{
		{0, 99, 4, 4},
		{0, 0, 4, 1},  // single row: one band
		{5, 7, 8, 3},  // more workers than rows: one band per row
		{-3, 3, 2, 2}, // negative origin
		{0, 9, 1, 1},  // single worker
		{10, 5, 4, 0}, // empty range
		{0, 10, 0, 0}, // no workers
	}
	for _, c := range cases {
		bands := Bands(c.y0, c.y1, c.n)
		if len(bands) != c.want {
			t.Errorf("Bands(%d,%d,%d) = %d bands, want %d", c.y0, c.y1, c.n, len(bands), c.want)
			continue
		}
		if c.want == 0 {
			continue
		}
		// Bands must tile [y0, y1] exactly: contiguous, disjoint, non-empty,
		// balanced to within one row.
		y := c.y0
		minH, maxH := 1<<30, 0
		for i, b := range bands {
			if b[0] != y {
				t.Errorf("Bands(%d,%d,%d): band %d starts at %d, want %d", c.y0, c.y1, c.n, i, b[0], y)
			}
			h := b[1] - b[0] + 1
			if h <= 0 {
				t.Errorf("Bands(%d,%d,%d): band %d empty", c.y0, c.y1, c.n, i)
			}
			if h < minH {
				minH = h
			}
			if h > maxH {
				maxH = h
			}
			y = b[1] + 1
		}
		if y != c.y1+1 {
			t.Errorf("Bands(%d,%d,%d): covers up to %d, want %d", c.y0, c.y1, c.n, y-1, c.y1)
		}
		if maxH-minH > 1 {
			t.Errorf("Bands(%d,%d,%d): band heights %d..%d not balanced", c.y0, c.y1, c.n, minH, maxH)
		}
	}
}
