package raster

import (
	"fmt"
	"math/rand"
	"testing"

	"gles2gpgpu/internal/shader"
)

// fragRecord captures one emitted fragment for bit-exact comparison.
type fragRecord struct {
	x, y     int
	fc       shader.Vec4
	varyings [MaxVaryings]shader.Vec4
	numVar   int
}

func collect(t *Triangle, x0, y0, x1, y1 int) []fragRecord {
	var out []fragRecord
	t.RasterizeRect(x0, y0, x1, y1, func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
		r := fragRecord{x: x, y: y, fc: fc, numVar: len(varyings)}
		copy(r.varyings[:], varyings)
		out = append(out, r)
	})
	return out
}

// diffRasterize rasterises the rect with the fast path on and off and
// fails on any bit difference in fragment set, order, fragCoord or
// varyings. Returns the fragment count.
func diffRasterize(t *testing.T, tri *Triangle, x0, y0, x1, y1 int) int {
	t.Helper()
	defer SetQuadFast(true)
	SetQuadFast(false)
	ref := collect(tri, x0, y0, x1, y1)
	SetQuadFast(true)
	got := collect(tri, x0, y0, x1, y1)
	if len(ref) != len(got) {
		t.Fatalf("fragment count: fast %d, reference %d", len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("fragment %d differs:\nfast %+v\nref  %+v", i, got[i], ref[i])
		}
	}
	return len(ref)
}

// fullQuad builds the canonical GPGPU full-viewport quad (two triangles,
// w == 1, texcoords 0..1) with the given extra varying values.
func fullQuad(vpW, vpH int, extra [4][4]float32) [2][3]Vertex {
	mk := func(x, y float32) Vertex {
		v := Vertex{Pos: shader.Vec4{x, y, 0, 1}, NumVar: 2}
		v.Varyings[0] = shader.Vec4{(x + 1) / 2, (y + 1) / 2, 0, 0}
		// Bilinear blend of the extra corner values.
		u, w := (x+1)/2, (y+1)/2
		for ci := 0; ci < 4; ci++ {
			v.Varyings[1][ci] = (1-u)*(1-w)*extra[0][ci] + u*(1-w)*extra[1][ci] +
				(1-u)*w*extra[2][ci] + u*w*extra[3][ci]
		}
		return v
	}
	bl, br, tl, tr := mk(-1, -1), mk(1, -1), mk(-1, 1), mk(1, 1)
	return [2][3]Vertex{{bl, br, tr}, {bl, tr, tl}}
}

func TestQuadFastCanonicalQuadExact(t *testing.T) {
	for _, n := range []int{4, 64, 256, 1024} {
		tris := fullQuad(n, n, [4][4]float32{})
		covered := 0
		for ti := range tris {
			tri, ok := Setup(&tris[ti][0], &tris[ti][1], &tris[ti][2], n, n)
			if !ok {
				t.Fatalf("n=%d: setup failed", n)
			}
			if !tri.exact {
				t.Fatalf("n=%d: canonical quad triangle not classified exact", n)
			}
			covered += diffRasterize(t, &tri, tri.minX, tri.minY, tri.maxX, tri.maxY)
		}
		if covered != n*n {
			t.Fatalf("n=%d: covered %d pixels, want %d", n, covered, n*n)
		}
	}
}

func TestQuadFastTiledRects(t *testing.T) {
	const n = 128
	tris := fullQuad(n, n, [4][4]float32{
		{1, 0.5, 0.25, 2}, {3, 0.5, 0.125, 2}, {1, 1.5, 0.25, 4}, {2, 0.5, 0.5, 2},
	})
	for ti := range tris {
		tri, ok := Setup(&tris[ti][0], &tris[ti][1], &tris[ti][2], n, n)
		if !ok {
			t.Fatal("setup failed")
		}
		// Tile-shaped subrects, including partial edge tiles.
		for y0 := 0; y0 < n; y0 += 48 {
			for x0 := 0; x0 < n; x0 += 48 {
				diffRasterize(t, &tri, x0, y0, x0+47, y0+47)
			}
		}
	}
}

// TestQuadFastRandomGeometry drives random triangles — integer-coordinate
// quads, arbitrary-coordinate triangles, perspective triangles — through
// the differential check. Inexact geometry must be rejected by the
// classifier (making the check trivially pass via the reference path);
// exact geometry must produce identical bits on both paths.
func TestQuadFastRandomGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		vpW := 8 << rng.Intn(5)
		vpH := 8 << rng.Intn(5)
		var vs [3]Vertex
		perspective := iter%3 == 2
		for i := range vs {
			x := rng.Float32()*2 - 1
			y := rng.Float32()*2 - 1
			if iter%3 == 0 {
				// Snap to pixel grid: NDC values that map to integers.
				x = float32(rng.Intn(vpW+1))/float32(vpW)*2 - 1
				y = float32(rng.Intn(vpH+1))/float32(vpH)*2 - 1
			}
			w := float32(1)
			if perspective {
				w = 0.5 + rng.Float32()*2
			}
			vs[i] = Vertex{Pos: shader.Vec4{x * w, y * w, 0, w}, NumVar: 3}
			for vi := 0; vi < 3; vi++ {
				for ci := 0; ci < 4; ci++ {
					vs[i].Varyings[vi][ci] = float32(rng.NormFloat64())
				}
			}
		}
		tri, ok := Setup(&vs[0], &vs[1], &vs[2], vpW, vpH)
		if !ok {
			continue
		}
		if perspective && tri.exact {
			t.Fatalf("iter %d: perspective triangle classified exact", iter)
		}
		t.Run(fmt.Sprintf("iter%d", iter), func(t *testing.T) {
			diffRasterize(t, &tri, tri.minX, tri.minY, tri.maxX, tri.maxY)
		})
	}
}

// TestQuadFastClassifierRejects checks the individual exactness gates.
func TestQuadFastClassifierRejects(t *testing.T) {
	base := func() [3]Vertex {
		return [3]Vertex{
			{Pos: shader.Vec4{-1, -1, 0, 1}, NumVar: 1},
			{Pos: shader.Vec4{1, -1, 0, 1}, NumVar: 1},
			{Pos: shader.Vec4{1, 1, 0, 1}, NumVar: 1},
		}
	}

	vs := base()
	tri, ok := Setup(&vs[0], &vs[1], &vs[2], 64, 64)
	if !ok || !tri.exact {
		t.Fatal("baseline half-quad should classify exact")
	}

	// Non-unit w.
	vs = base()
	vs[0].Pos = shader.Vec4{-2, -2, 0, 2}
	tri, ok = Setup(&vs[0], &vs[1], &vs[2], 64, 64)
	if ok && tri.exact {
		t.Fatal("w != 1 must reject")
	}

	// Non-integer coordinates (area2 no longer a power of two and
	// coefficients fractional).
	vs = base()
	vs[1].Pos[0] = 0.7313
	tri, ok = Setup(&vs[0], &vs[1], &vs[2], 64, 64)
	if ok && tri.exact {
		t.Fatal("fractional screen coordinates must reject")
	}

	// Non-power-of-two viewport makes area2 non-pow2 for the full quad.
	vs = base()
	tri, ok = Setup(&vs[0], &vs[1], &vs[2], 96, 96)
	if ok && tri.exact {
		t.Fatal("area2 = 2*96*96/2 is not a power of two; must reject")
	}
	if ok {
		diffRasterize(t, &tri, tri.minX, tri.minY, tri.maxX, tri.maxY)
	}

	// Excessive varying exponent spread: 2^40 against 2^-40 cannot keep
	// the interpolation sums exact.
	vs = base()
	vs[0].Varyings[0] = shader.Vec4{float32(1.0 / (1 << 30) / (1 << 10))}
	vs[1].Varyings[0] = shader.Vec4{float32(int64(1) << 40)}
	tri, ok = Setup(&vs[0], &vs[1], &vs[2], 64, 64)
	if ok && tri.exact {
		t.Fatal("huge varying exponent spread must reject")
	}

	// Non-finite varying.
	vs = base()
	inf := float32(1)
	inf /= 0
	vs[2].Varyings[0] = shader.Vec4{inf}
	tri, ok = Setup(&vs[0], &vs[1], &vs[2], 64, 64)
	if ok && tri.exact {
		t.Fatal("non-finite varying must reject")
	}
}
