package raster

// Exact-quad incremental rasterisation.
//
// The canonical GPGPU draw is a full-viewport quad: two axis-aligned right
// triangles with w == 1 everywhere and integer screen coordinates. For
// such triangles every quantity the per-pixel path computes is an exact
// dyadic rational, and exact arithmetic is associative — so varyings can
// be stepped incrementally across a scanline (one add per channel) instead
// of re-derived from barycentrics (three divisions and nine multiplies per
// pixel), with bit-identical results.
//
// Setup proves the exactness conditions per triangle (classifyExact):
//
//  1. invW[i] == 1 for all vertices: perspective division degenerates and
//     w == 1 exactly, removing the per-pixel reciprocal.
//  2. Edge coefficients a, b, c are integers with |a|,|b| ≤ 2^20 and
//     |c| ≤ 2^41: every edge value at a pixel centre (x+0.5, y+0.5) is an
//     exact multiple of 0.5 with magnitude < 2^53, so both the direct
//     evaluation a·px + b·py + c and the incremental column step e += a
//     are exact — coverage decisions are identical by construction.
//  3. area2 == 2^k with k ≤ 25: barycentrics l_i = e_i / area2 are exact
//     (division by a power of two), and inside the triangle 0 ≤ e_i ≤
//     area2, so l_i carries at most k+1 significand bits.
//  4. Per varying channel, the nonzero vertex values span at most 25−k
//     binades: writing values in a common unit 2^(Emin−24), each product
//     l_i·v_i is an integer of at most (k+1)+24+spread ≤ 51 bits and the
//     three-term sum stays under 2^53 — every product and partial sum the
//     per-pixel formula performs is exact.
//
// Under 1–4 the interpolated varying v(x) is the exact real value at
// every covered pixel, Σl_i == 1 exactly (e0+e1+e2 == area2 identically),
// and the per-unit-x difference dv = v(x+1) − v(x) — computed from two
// covered pixels, both exact — is an exact dyadic whose repeated addition
// reproduces the per-pixel results bit for bit. Fused multiply-add, which
// Go permits the compiler to introduce, cannot perturb this: fusing only
// skips intermediate roundings, and no intermediate here rounds at all.
//
// The fast path keeps the per-pixel edge test (on incrementally stepped,
// provably identical e values) so the fill rule and fragment set match the
// reference path exactly. internal/raster's differential property tests
// (quadfast_test.go) check fast-vs-reference bit-equality over randomised
// quads and the classifier's rejection of inexact geometry.

import (
	"math"
	"os"

	"gles2gpgpu/internal/shader"
)

// quadFast gates the exact-quad fast path; the reference per-pixel path
// remains the semantics. Defaults on unless GLES2GPGPU_NO_QUADFAST is set.
var quadFast = os.Getenv("GLES2GPGPU_NO_QUADFAST") == ""

// SetQuadFast toggles the exact-quad incremental fast path. Results are
// bit-identical either way; only host time changes. Not safe to call
// concurrently with draws.
func SetQuadFast(on bool) { quadFast = on }

// QuadFast reports whether the exact-quad fast path is enabled.
func QuadFast() bool { return quadFast }

// classifyExact proves the dyadic-exactness conditions that make
// incremental varying interpolation bit-identical to the per-pixel
// reference path. Called once per triangle at Setup.
func (t *Triangle) classifyExact() bool {
	const maxCoeff = 1 << 20 // |a|,|b| and screen-coordinate bound
	const maxC = 1 << 41     // |c| ≤ 2·maxCoeff² for integer coordinates
	for i := 0; i < 3; i++ {
		if t.invW[i] != 1 {
			return false
		}
		a, b, c := t.a[i], t.b[i], t.c[i]
		if a != math.Trunc(a) || b != math.Trunc(b) || c != math.Trunc(c) {
			return false
		}
		if math.Abs(a) > maxCoeff || math.Abs(b) > maxCoeff || math.Abs(c) > maxC {
			return false
		}
	}
	if t.maxX >= maxCoeff || t.maxY >= maxCoeff {
		return false
	}
	frac, exp := math.Frexp(t.area2)
	if frac != 0.5 {
		return false // area2 not a power of two
	}
	k := exp - 1 // area2 == 2^k; k ≥ 0 because area2 is a positive integer
	if k > 25 {
		return false
	}
	maxSpread := 25 - k
	for vi := 0; vi < t.numVar; vi++ {
		for ci := 0; ci < 4; ci++ {
			emin, emax := math.MaxInt32, math.MinInt32
			for i := 0; i < 3; i++ {
				f := float64(t.varyings[i][vi][ci])
				if f == 0 {
					continue
				}
				if math.IsInf(f, 0) || math.IsNaN(f) {
					return false
				}
				e := math.Ilogb(f)
				if e < emin {
					emin = e
				}
				if e > emax {
					emax = e
				}
			}
			if emax != math.MinInt32 && emax-emin > maxSpread {
				return false
			}
		}
	}
	return true
}

// varyingsAt computes perspective-correct varyings at a pixel with the
// exact expression shapes of the reference path in RasterizeRect, keeping
// the float64 values (the float32 narrowing happens at emit time in both
// paths).
func (t *Triangle) varyingsAt(e [3]float64, out *[MaxVaryings][4]float64) {
	l0 := e[0] / t.area2
	l1 := e[1] / t.area2
	l2 := e[2] / t.area2
	invW := l0*t.invW[0] + l1*t.invW[1] + l2*t.invW[2]
	w := 1 / invW
	for vi := 0; vi < t.numVar; vi++ {
		for ci := 0; ci < 4; ci++ {
			v := l0*float64(t.varyings[0][vi][ci])*t.invW[0] +
				l1*float64(t.varyings[1][vi][ci])*t.invW[1] +
				l2*float64(t.varyings[2][vi][ci])*t.invW[2]
			out[vi][ci] = v * w
		}
	}
}

// rasterizeRectFast scans a clipped rectangle of an exactness-proven
// triangle, stepping edge values by column and varyings by their exact
// per-column difference. The first two covered pixels of each row are
// evaluated with the reference formula (establishing the row's base value
// and exact step); later pixels are one add per channel. Covered pixels
// form one contiguous span per row (the triangle is convex and the fill
// rule only trims span endpoints), so the scan stops at the first
// uncovered pixel after the span.
func (t *Triangle) rasterizeRectFast(x0, y0, x1, y1 int, emit FragmentSink) int {
	var varbuf [MaxVaryings]shader.Vec4
	var acc, second, dv [MaxVaryings][4]float64
	count := 0
	for y := y0; y <= y1; y++ {
		py := float64(y) + 0.5
		px := float64(x0) + 0.5
		var e [3]float64
		for i := 0; i < 3; i++ {
			e[i] = t.a[i]*px + t.b[i]*py + t.c[i]
		}
		run := 0
		for x := x0; x <= x1; x++ {
			inside := true
			for i := 0; i < 3; i++ {
				if e[i] < 0 || (e[i] == 0 && !t.topLeft(i)) {
					inside = false
					break
				}
			}
			if !inside {
				if run > 0 {
					break // past the row's contiguous covered span
				}
				e[0] += t.a[0]
				e[1] += t.a[1]
				e[2] += t.a[2]
				continue
			}
			run++
			switch {
			case run == 1:
				t.varyingsAt(e, &acc)
			case run == 2:
				t.varyingsAt(e, &second)
				for vi := 0; vi < t.numVar; vi++ {
					for ci := 0; ci < 4; ci++ {
						dv[vi][ci] = second[vi][ci] - acc[vi][ci]
					}
				}
				acc = second
			default:
				for vi := 0; vi < t.numVar; vi++ {
					for ci := 0; ci < 4; ci++ {
						acc[vi][ci] += dv[vi][ci]
					}
				}
			}
			for vi := 0; vi < t.numVar; vi++ {
				varbuf[vi] = shader.Vec4{
					float32(acc[vi][0]), float32(acc[vi][1]),
					float32(acc[vi][2]), float32(acc[vi][3]),
				}
			}
			// invW == 1 exactly under the classifier's conditions, so the
			// reference fragCoord.w of float32(invW) is the constant 1.
			fc := shader.Vec4{float32(float64(x) + 0.5), float32(py), 0.5, 1}
			emit(x, y, fc, varbuf[:t.numVar])
			count++
			e[0] += t.a[0]
			e[1] += t.a[1]
			e[2] += t.a[2]
		}
	}
	return count
}
