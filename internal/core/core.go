// Package core is the paper's primary contribution as a library: a
// general-purpose-compute framework on top of OpenGL ES 2.0 for low-end
// mobile GPUs, exposing every implementation choice the paper evaluates as
// an explicit option:
//
//   - SwapMode — eglSwapBuffers with vsync (the ES2-best-practices
//     baseline), with eglSwapInterval(0), or no swap at all (Fig. 3).
//   - RenderTarget — default framebuffer + glCopyTexImage2D versus direct
//     FBO texture rendering (Fig. 4a).
//   - Blocking — the multi-pass blocked sgemm of §III/§IV (Fig. 4b).
//   - Texture reuse — glTexSubImage2D / glCopyTexSubImage2D instead of
//     fresh allocations (Fig. 5).
//   - VBO usage hints versus client-side arrays (§V-B text).
//   - Kernel code — fp24 encoding with mul24 and 3-byte I/O (Fig. 3).
//
// The framework runs on the simulated GLES2 stack: results are numerically
// real (validated against internal/ref) and timing comes from the TBDR
// machine model.
package core

import (
	"fmt"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/egl"
	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/gpu"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/timing"
)

// SwapMode selects the windowing-system synchronisation behaviour.
type SwapMode int

// Swap modes (paper §II "Windowing Subsystem properties").
const (
	// SwapVsync calls eglSwapBuffers each iteration with the device's
	// default swap interval — the best-practices baseline.
	SwapVsync SwapMode = iota
	// SwapNoVsync calls eglSwapBuffers with eglSwapInterval(0).
	SwapNoVsync
	// SwapNone never presents: the maximum kernel-launch rate for
	// applications without visual output.
	SwapNone
)

func (s SwapMode) String() string {
	switch s {
	case SwapVsync:
		return "swap+vsync"
	case SwapNoVsync:
		return "swap-interval0"
	}
	return "no-swap"
}

// RenderTarget selects where kernels render.
type RenderTarget int

// Render targets (paper §II "Texture Writing").
const (
	// TargetFramebuffer renders to the default (double-buffered, window)
	// framebuffer and copies results out with glCopyTexImage2D.
	TargetFramebuffer RenderTarget = iota
	// TargetTexture renders directly into textures through an FBO.
	TargetTexture
)

func (r RenderTarget) String() string {
	if r == TargetTexture {
		return "texture"
	}
	return "framebuffer"
}

// Config selects the implementation variant of the framework.
type Config struct {
	// Device is the platform profile; required.
	Device *device.Profile
	// Width and Height are the kernel grid dimensions (one fragment per
	// output element).
	Width, Height int

	Swap   SwapMode
	Target RenderTarget

	// ReuseInputTextures uploads per-iteration inputs with
	// glTexSubImage2D into live storage instead of re-allocating with
	// glTexImage2D (Fig. 5 "input textures").
	ReuseInputTextures bool
	// ReuseOutputTextures copies framebuffer results with
	// glCopyTexSubImage2D instead of glCopyTexImage2D (Fig. 5 "output").
	ReuseOutputTextures bool
	// StreamInputs re-uploads the input matrices every iteration
	// (the texture-loading workload of Fig. 5); when false inputs are
	// uploaded once and stay resident.
	StreamInputs bool

	// UseVBO sources the full-screen quad from a vertex buffer object;
	// otherwise client-side arrays pay the per-draw copy (§II Vertex
	// Processing).
	UseVBO bool
	// VBOUsage is the BufferData usage hint.
	VBOUsage gles.Enum

	// Kernel selects the kernel-code options (fp24 encoding, mul24).
	Kernel kernels.Options

	// InvalidateTarget issues glClear before each kernel launch so the
	// tile engine skips the previous-contents readback (§II, step 6 in
	// Fig. 1). Defaults to true in NewEngine's normalisation: GPGPU
	// kernels overwrite every pixel.
	InvalidateTarget *bool
	// UseDiscardExtension invalidates with EXT_discard_framebuffer
	// instead of glClear — the alternative the paper names for
	// architectures exposing the extension. Identical timing effect,
	// without the functional fill.
	UseDiscardExtension bool

	// ArtificialDependency makes each kernel additionally sample the
	// previous iteration's output (the Fig. 4a dependency experiment).
	ArtificialDependency bool

	// Workers is the host-side fragment-shading worker count: how many OS
	// threads the simulator spreads functional shading over. It changes
	// host wall-clock time only — virtual-time results, framebuffer
	// contents and cycle counters are bit-identical at any setting (see
	// internal/gles/parallel.go). 0 means the GLES2GPGPU_WORKERS
	// environment variable, or GOMAXPROCS; 1 forces serial shading.
	Workers int

	// NoJIT forces the reference shader interpreter instead of the
	// closure-compiled execution engine (the library equivalent of
	// GLES2GPGPU_NO_JIT=1). Like Workers it changes host wall-clock time
	// only: results and virtual-time figures are bit-identical either way.
	NoJIT bool

	// NoPasses disables the host-side shader optimisation passes (dead-code
	// elimination, copy/constant propagation — the library equivalent of
	// GLES2GPGPU_NO_PASSES=1). Like NoJIT it changes host wall-clock time
	// only: the passes are cycle-neutral, so results and virtual-time
	// figures are bit-identical either way.
	NoPasses bool

	// NoTiling disables the tile-binned fragment engine, shading eligible
	// parallel draws in horizontal bands instead (the library equivalent
	// of GLES2GPGPU_NO_TILING=1). Like NoJIT it changes host wall-clock
	// time only: results and virtual-time figures are bit-identical.
	NoTiling bool

	// TileSize overrides the edge length of the square screen tiles the
	// tiled fragment engine bins into. 0 means gles.DefaultTileSize.
	TileSize int

	// NoLanes disables the lane-batched (SoA) shader execution engine,
	// shading every fragment individually instead (the library equivalent
	// of GLES2GPGPU_NO_LANES=1). Like NoJIT it changes host wall-clock
	// time only: framebuffer contents and every virtual-time figure are
	// bit-identical either way. Branchy or discarding programs fall back
	// to per-fragment execution regardless of this setting.
	NoLanes bool

	// LaneWidth overrides how many fragments the lane-batched engine runs
	// through each instruction at once. 0 means shader.DefaultLaneWidth;
	// values are clamped to [1, shader.MaxLaneWidth]. Results are
	// bit-identical at any width.
	LaneWidth int

	// NoMaskedLanes disables divergence-masked lane execution, so branchy
	// or discarding fragment programs (jacobi) fall back to per-fragment
	// shading instead of running through the SoA engine under an
	// active-lane mask (the library equivalent of
	// GLES2GPGPU_NO_MASKED_LANES=1). Like NoJIT it changes host wall-clock
	// time only: framebuffer contents and every virtual-time figure are
	// bit-identical either way.
	NoMaskedLanes bool

	// NoCoherence disables the cross-iteration tile-coherence cache,
	// re-shading every tile on every draw (the library equivalent of
	// GLES2GPGPU_NO_COHERENCE=1). Like NoJIT it changes host wall-clock
	// time only: elided tiles replay their exact prior output bytes and
	// modelled cost, so framebuffer contents and every virtual-time
	// figure are bit-identical either way.
	NoCoherence bool

	// StrictLinkLimits makes glLinkProgram additionally enforce the
	// dataflow-derived device limits (dependent-texture-read depth, live
	// temporary pressure) that compile-time counting cannot see, the way
	// real mobile drivers defer some rejections to link time.
	StrictLinkLimits bool

	// ProgramCache, when non-nil, shares compiled shaders across engines:
	// a serving worker pool attaches one cache per device so each kernel
	// compiles once per pool instead of once per engine. All engines
	// sharing a cache must share one *device.Profile instance and one
	// NoPasses setting (see gles.SharedProgramCache).
	ProgramCache *gles.SharedProgramCache

	// TensorPoolBytes, when positive, enables the engine's tensor
	// residency pool with that byte budget: NewTensor recycles released
	// texture allocations of matching shape, and re-uploads into recycled
	// storage take the glTexSubImage2D path — the paper's Fig. 5 reuse
	// optimisation applied across jobs instead of across iterations.
	// Results are bit-identical with the pool on or off; only allocation
	// work (and therefore virtual time) changes. See TensorPool.
	TensorPoolBytes int

	// NoFuse disables proof-gated pass fusion in the pipeline planner
	// (internal/pipeline): adjacent elementwise stages run as separate
	// passes through intermediate textures instead of one composed
	// program (the library equivalent of GLES2GPGPU_NO_FUSE=1). Fusion is
	// bit-identical by construction — output bytes, Cycles/TexFetches and
	// every virtual-time figure match the unfused plan — so like NoJIT
	// this changes host work only. The default comes from pipeline's
	// DefaultFuse (on, unless GLES2GPGPU_NO_FUSE is set); engines built
	// by knob-matrix harnesses set it explicitly.
	NoFuse bool
}

func boolPtr(b bool) *bool { return &b }

// Engine owns the EGL/GLES stack for one configuration.
type Engine struct {
	cfg  Config
	disp *egl.Display
	surf *egl.Surface
	ectx *egl.Context
	gl   *gles.Context

	quadVBO  uint32
	fbo      uint32 // render-to-texture FBO
	readFBO  uint32 // texture readback FBO
	vsSource string

	scratchBuf []byte // reused dummy payload for timing-only uploads

	// pool is the tensor residency pool (nil unless Config.TensorPoolBytes
	// is positive or EnableTensorPool was called).
	pool *TensorPool
	// kernelCache memoises BuildKernel by fragment source for long-lived
	// engines that rebuild the same workloads across jobs.
	kernelCache map[string]*Kernel
}

// scratch returns a reusable byte buffer of length n.
func (e *Engine) scratch(n int) []byte {
	if cap(e.scratchBuf) < n {
		e.scratchBuf = make([]byte, n)
	}
	return e.scratchBuf[:n]
}

// NewEngine builds the stack for cfg and compiles the shared quad vertex
// shader.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Device == nil {
		return nil, fmt.Errorf("core: Config.Device is required")
	}
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("core: invalid grid %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.VBOUsage == 0 {
		cfg.VBOUsage = gles.STATIC_DRAW
	}
	if cfg.Kernel.Depth == 0 {
		cfg.Kernel.Depth = codec.Depth32
	}
	if cfg.InvalidateTarget == nil {
		cfg.InvalidateTarget = boolPtr(true)
	}
	e := &Engine{cfg: cfg}
	e.disp = egl.GetDisplay(cfg.Device)
	e.disp.Initialize()
	var err error
	e.surf, err = e.disp.CreateWindowSurface(cfg.Width, cfg.Height)
	if err != nil {
		return nil, err
	}
	e.ectx, err = e.disp.CreateContext()
	if err != nil {
		return nil, err
	}
	if err := e.ectx.MakeCurrent(e.surf); err != nil {
		return nil, err
	}
	if cfg.Swap == SwapNoVsync {
		if err := e.ectx.SwapInterval(0); err != nil {
			return nil, err
		}
	}
	e.gl = gles.NewContext(e.ectx)
	if cfg.Workers != 0 {
		e.gl.SetWorkers(cfg.Workers)
	}
	if cfg.NoJIT {
		e.gl.SetJIT(false)
	}
	if cfg.NoPasses {
		e.gl.SetPasses(false)
	}
	if cfg.NoTiling {
		e.gl.SetTiling(false)
	}
	if cfg.TileSize != 0 {
		e.gl.SetTileSize(cfg.TileSize)
	}
	if cfg.NoLanes {
		e.gl.SetLanes(false)
	}
	if cfg.LaneWidth != 0 {
		e.gl.SetLaneWidth(cfg.LaneWidth)
	}
	if cfg.NoMaskedLanes {
		e.gl.SetMaskedLanes(false)
	}
	if cfg.NoCoherence {
		e.gl.SetCoherence(false)
	}
	if cfg.StrictLinkLimits {
		e.gl.SetStrictLimits(true)
	}
	if cfg.ProgramCache != nil {
		e.gl.SetSharedProgramCache(cfg.ProgramCache)
	}
	if cfg.TensorPoolBytes > 0 {
		e.EnableTensorPool(cfg.TensorPoolBytes)
	}
	e.gl.Viewport(0, 0, cfg.Width, cfg.Height)
	e.vsSource = kernels.VertexShader

	if cfg.UseVBO {
		e.quadVBO = e.gl.GenBuffer()
		e.gl.BindBuffer(gles.ARRAY_BUFFER, e.quadVBO)
		e.gl.BufferData(gles.ARRAY_BUFFER, gles.Float32Bytes(kernels.QuadVertices), cfg.VBOUsage)
	}
	e.fbo = e.gl.GenFramebuffer()
	e.readFBO = e.gl.GenFramebuffer()
	if err := e.glErr("engine setup"); err != nil {
		return nil, err
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// GL exposes the GLES context.
func (e *Engine) GL() *gles.Context { return e.gl }

// Machine exposes the timing model.
func (e *Engine) Machine() *gpu.Machine { return e.gl.Machine() }

// CoherenceStats reports how many tiles the cross-iteration coherence
// cache elided versus shaded since the engine was created.
func (e *Engine) CoherenceStats() (elided, shaded int64) { return e.gl.CoherenceStats() }

// LaneFallbackDraws reports how many draws wanted lane-batched shading but
// ran per-fragment because the program failed lane and mask eligibility —
// the masked-lane adoption signal the daemon exports per device.
func (e *Engine) LaneFallbackDraws() int64 { return e.gl.LaneFallbackDraws() }

// Now returns the virtual CPU time.
func (e *Engine) Now() timing.Time { return e.Machine().Now() }

// SetTimingOnly switches the underlying GL into timing-replay mode (see
// gles.Context.SetTimingOnly).
func (e *Engine) SetTimingOnly(on bool) { e.gl.SetTimingOnly(on) }

// SetFunctionalOnly switches the underlying GL into functional-only mode
// (see gles.Context.SetFunctionalOnly): calls execute their functional
// effects but advance no virtual time. The pipeline planner brackets the
// functional half of a fused run with this.
func (e *Engine) SetFunctionalOnly(on bool) { e.gl.SetFunctionalOnly(on) }

// Finish drains all outstanding GPU work.
func (e *Engine) Finish() { e.gl.Finish() }

func (e *Engine) glErr(what string) error {
	if code := e.gl.GetError(); code != gles.NO_ERROR {
		return fmt.Errorf("core: %s: GL error %s", what, gles.ErrName(code))
	}
	return nil
}

// bindQuad points attribute 0 at the quad, via VBO or client array.
func (e *Engine) bindQuad(posLoc int) {
	e.gl.EnableVertexAttribArray(posLoc)
	if e.cfg.UseVBO {
		e.gl.BindBuffer(gles.ARRAY_BUFFER, e.quadVBO)
		e.gl.VertexAttribPointer(posLoc, 2, gles.FLOAT, 0, 0)
	} else {
		e.gl.VertexAttribPointerClient(posLoc, 2, kernels.QuadVertices, 0, 0)
	}
}

// swapPerMode performs the end-of-iteration windowing synchronisation.
func (e *Engine) swapPerMode() error {
	if e.cfg.Swap == SwapNone {
		return nil
	}
	return e.ectx.SwapBuffers()
}
