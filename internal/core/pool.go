package core

import "sync/atomic"

// TensorPool recycles texture allocations across jobs on one engine. It is
// the service-layer analogue of the paper's Fig. 5 texture-memory reuse:
// instead of reusing one tensor's storage across benchmark iterations
// (glTexSubImage2D / glCopyTexSubImage2D inside a runner), the pool reuses
// released allocations across runner lifetimes, so a long-lived serving
// engine stops paying the driver's allocation cost once it is warm.
//
// Correctness contract: a pooled tensor is indistinguishable from a fresh
// one to its next user. Every acquisition either uploads a full-rectangle
// sub-image over the old texels or renders into every pixel (kernels write
// the full grid and dispatch invalidates the target first), so results are
// bit-identical with the pool on or off; only allocation work — and
// therefore virtual time — changes. The eviction test in pool_test.go pins
// this.
//
// The pool itself is single-owner like the engine (one worker goroutine),
// but its counters are atomics so a metrics exporter on another goroutine
// may read them concurrently.
type TensorPool struct {
	e        *Engine
	maxBytes int
	bytes    int
	// free is FIFO: index 0 is the oldest entry and the first evicted.
	free []*Tensor

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	released  atomic.Int64
}

// PoolStats is a snapshot of the pool counters.
type PoolStats struct {
	// Hits counts NewTensor calls served by recycling a pooled
	// allocation; Misses counts those that fell through to a fresh
	// texture object.
	Hits, Misses int64
	// Released counts tensors returned by Release; Evictions counts
	// pooled allocations freed to stay under the byte budget.
	Released, Evictions int64
	// LiveBytes is the current pooled (idle) texture storage.
	LiveBytes int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any traffic.
func (s PoolStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// EnableTensorPool switches the engine's NewTensor/Release paths onto a
// residency pool with the given byte budget (minimum one texture: a budget
// smaller than a single allocation still pools nothing but counts traffic).
func (e *Engine) EnableTensorPool(maxBytes int) {
	if e.pool != nil {
		e.pool.maxBytes = maxBytes
		return
	}
	e.pool = &TensorPool{e: e, maxBytes: maxBytes}
}

// TensorPool returns the engine's residency pool, or nil when disabled.
func (e *Engine) TensorPool() *TensorPool { return e.pool }

// Stats snapshots the counters. Safe to call from any goroutine.
func (p *TensorPool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Hits:      p.hits.Load(),
		Misses:    p.misses.Load(),
		Released:  p.released.Load(),
		Evictions: p.evictions.Load(),
		LiveBytes: p.bytes,
	}
}

// get removes and returns a pooled tensor of the given shape, or nil.
func (p *TensorPool) get(rows, cols int) *Tensor {
	for i, t := range p.free {
		if t.Rows == rows && t.Cols == cols {
			p.free = append(p.free[:i], p.free[i+1:]...)
			p.bytes -= tensorBytes(t)
			p.hits.Add(1)
			return t
		}
	}
	p.misses.Add(1)
	return nil
}

// put returns a tensor to the pool, evicting oldest entries over budget.
// Unallocated tensors carry no storage worth keeping and are freed.
func (p *TensorPool) put(t *Tensor) {
	p.released.Add(1)
	if !t.allocated {
		t.Free()
		return
	}
	p.free = append(p.free, t)
	p.bytes += tensorBytes(t)
	for p.bytes > p.maxBytes && len(p.free) > 0 {
		old := p.free[0]
		p.free = p.free[1:]
		p.bytes -= tensorBytes(old)
		old.Free()
		p.evictions.Add(1)
	}
}

func tensorBytes(t *Tensor) int { return t.Rows * t.Cols * 4 }
