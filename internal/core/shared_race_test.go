package core

import (
	"context"
	"sync"
	"testing"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/gles"
	"gles2gpgpu/internal/ref"
)

// TestSharedProgramCacheConcurrentEngines hammers one SharedProgramCache
// and one device profile (hence one JIT cost-model identity) from many
// goroutines at once, each owning a private engine but sharing compiled
// kernels. Run under -race this pins the two concurrency contracts the
// serving layer relies on: the per-source program cache and the
// Program.Compiled JIT memoisation are safe when the compiled artefacts
// are shared across contexts.
func TestSharedProgramCacheConcurrentEngines(t *testing.T) {
	const (
		goroutines = 8
		iters      = 4
		n          = 16
	)
	prof := device.VideoCoreIV() // single instance shared by every engine
	cache := gles.NewSharedProgramCache()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := Config{
				Device: prof,
				Width:  n, Height: n,
				Swap:         SwapNone,
				Target:       TargetTexture,
				UseVBO:       true,
				ProgramCache: cache,
			}
			e, err := NewEngine(cfg)
			if err != nil {
				errs <- err
				return
			}
			a, b := randMatrix(n, int64(g)+1), randMatrix(n, int64(g)+100)
			// Alternate two kernels so every goroutine both publishes
			// and consumes cache entries.
			sum, err := NewSum(e, a, b)
			if err != nil {
				errs <- err
				return
			}
			gemm, err := NewSgemm(e, a, b, 16)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < iters; i++ {
				for _, r := range []Runner{sum, gemm} {
					if err := r.RunOnce(context.Background()); err != nil {
						errs <- err
						return
					}
				}
			}
			e.Finish()
			got, err := sum.Result()
			if err != nil {
				errs <- err
				return
			}
			want := make([]float64, n*n)
			ref.Sum(a.Data, b.Data, want)
			if d := ref.MaxAbsDiff(want, got.Data); d > 1e-3 {
				t.Errorf("goroutine %d: sum max error %g", g, d)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	hits, misses := cache.Stats()
	if misses == 0 {
		t.Error("shared cache misses = 0, want > 0 (someone must compile)")
	}
	if hits == 0 {
		t.Error("shared cache hits = 0, want > 0 (kernels must be shared across engines)")
	}
}
