package core

import (
	"fmt"
	"strings"

	"gles2gpgpu/internal/gpu"
	"gles2gpgpu/internal/timing"
)

// Report summarises what the simulated pipeline did and where the time
// went — the first thing to look at when an optimisation does not pay off.
type Report struct {
	Elapsed timing.Time
	// FPBusy and CopyBusy are the busy times of the fragment engine and
	// the copy engine.
	FPBusy, CopyBusy timing.Time
	// FPUtilisation is FPBusy/Elapsed.
	FPUtilisation float64
	Stats         gpu.Stats
	// GPU memory bookkeeping.
	LiveAllocations int
	LiveBytes       int
	PeakBytes       int
	TotalAllocs     int64
}

// Report captures the engine's counters since construction.
func (e *Engine) Report() Report {
	m := e.Machine()
	r := Report{
		Elapsed:         m.Now(),
		FPBusy:          m.FPBusy(),
		CopyBusy:        m.CopyBusy(),
		Stats:           m.Stats,
		LiveAllocations: e.gl.Allocator().LiveCount(),
		LiveBytes:       e.gl.Allocator().LiveBytes(),
		PeakBytes:       e.gl.Allocator().PeakLiveBytes,
		TotalAllocs:     e.gl.Allocator().TotalAllocs,
	}
	if r.Elapsed > 0 {
		r.FPUtilisation = float64(r.FPBusy) / float64(r.Elapsed)
	}
	return r
}

// String renders the report as a compact multi-line summary.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "elapsed %v, fragment engine busy %v (%.0f%%), copy engine busy %v\n",
		r.Elapsed, r.FPBusy, r.FPUtilisation*100, r.CopyBusy)
	fmt.Fprintf(&sb, "draws %d (bubbles %d, war stalls %d), copies %d (%.1f MB), uploads %d (%.1f MB)\n",
		r.Stats.Draws, r.Stats.Bubbles, r.Stats.WARStalls,
		r.Stats.CopyOps, float64(r.Stats.CopyBytes)/1e6,
		r.Stats.UploadOps, float64(r.Stats.UploadBytes)/1e6)
	fmt.Fprintf(&sb, "tiles loaded %d / stored %d, fragments shaded %d\n",
		r.Stats.TileLoads, r.Stats.TileStores, r.Stats.FragmentsShaded)
	fmt.Fprintf(&sb, "gpu memory: %d live allocations (%.1f MB live, %.1f MB peak, %d total allocs)",
		r.LiveAllocations, float64(r.LiveBytes)/1e6, float64(r.PeakBytes)/1e6, r.TotalAllocs)
	return sb.String()
}
