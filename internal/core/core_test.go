package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/kernels"
	"gles2gpgpu/internal/ref"
)

// randMatrix returns an n×n matrix with unit-range values in [0,1).
func randMatrix(n int, seed int64) *codec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := codec.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 0.999
	}
	return m
}

func baseConfig(n int) Config {
	return Config{
		Device: device.Generic(),
		Width:  n, Height: n,
		Swap:   SwapNone,
		Target: TargetTexture,
		UseVBO: true,
	}
}

func checkSum(t *testing.T, cfg Config, iters int, tol float64) {
	t.Helper()
	n := cfg.Width
	a := randMatrix(n, 1)
	b := randMatrix(n, 2)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSum(e, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		if err := r.RunOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n*n)
	ref.Sum(a.Data, b.Data, want)
	if d := ref.MaxAbsDiff(want, got.Data); d > tol {
		t.Errorf("sum max error %g > %g", d, tol)
	}
}

func TestSumAllConfigurations(t *testing.T) {
	const n = 16
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"texture-noswap", func(c *Config) {}},
		{"texture-vsync", func(c *Config) { c.Swap = SwapVsync }},
		{"texture-interval0", func(c *Config) { c.Swap = SwapNoVsync }},
		{"framebuffer", func(c *Config) { c.Target = TargetFramebuffer }},
		{"framebuffer-swap", func(c *Config) { c.Target = TargetFramebuffer; c.Swap = SwapNoVsync }},
		{"framebuffer-reuseout", func(c *Config) { c.Target = TargetFramebuffer; c.ReuseOutputTextures = true }},
		{"stream-inputs", func(c *Config) { c.StreamInputs = true }},
		{"stream-reuse", func(c *Config) { c.StreamInputs = true; c.ReuseInputTextures = true }},
		{"client-arrays", func(c *Config) { c.UseVBO = false }},
		{"fp24", func(c *Config) { c.Kernel = kernels.FP24Options }},
		{"dependency", func(c *Config) { c.ArtificialDependency = true }},
		{"dependency-fb", func(c *Config) { c.ArtificialDependency = true; c.Target = TargetFramebuffer; c.Swap = SwapNoVsync }},
		{"no-invalidate", func(c *Config) { c.InvalidateTarget = boolPtr(false) }},
		{"discard-ext", func(c *Config) { c.UseDiscardExtension = true }},
		{"discard-ext-fb", func(c *Config) { c.UseDiscardExtension = true; c.Target = TargetFramebuffer }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(n)
			tc.mut(&cfg)
			tol := 1e-5
			if cfg.Kernel.Depth == codec.Depth24 {
				tol = 1e-5
			}
			checkSum(t, cfg, 3, tol)
		})
	}
}

func checkSgemm(t *testing.T, cfg Config, block int, tol float64) {
	t.Helper()
	n := cfg.Width
	a := randMatrix(n, 3)
	b := randMatrix(n, 4)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSgemm(e, a, b, block)
	if err != nil {
		t.Fatal(err)
	}
	if r.Passes() != n/block {
		t.Fatalf("passes = %d, want %d", r.Passes(), n/block)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n*n)
	ref.Sgemm(n, a.Data, b.Data, want)
	if d := ref.MaxAbsDiff(want, got.Data); d > tol {
		t.Errorf("sgemm(block=%d) max error %g > %g", block, d, tol)
	}
}

func TestSgemmBlockSizesTextureTarget(t *testing.T) {
	for _, block := range []int{1, 2, 4, 8, 16} {
		cfg := baseConfig(16)
		checkSgemm(t, cfg, block, 5e-3)
	}
}

func TestSgemmFramebufferTarget(t *testing.T) {
	cfg := baseConfig(16)
	cfg.Target = TargetFramebuffer
	cfg.Swap = SwapNoVsync
	checkSgemm(t, cfg, 4, 5e-3)
	cfg.ReuseOutputTextures = true
	checkSgemm(t, cfg, 4, 5e-3)
}

func TestSgemmFP24Mul24(t *testing.T) {
	cfg := baseConfig(16)
	cfg.Kernel = kernels.FP24Options
	checkSgemm(t, cfg, 8, 5e-3)
}

func TestSgemmRepeatedRunsStayCorrect(t *testing.T) {
	// A second RunOnce must not be polluted by the first's intermediates.
	n := 8
	cfg := baseConfig(n)
	a := randMatrix(n, 5)
	b := randMatrix(n, 6)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSgemm(e, a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.RunOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n*n)
	ref.Sgemm(n, a.Data, b.Data, want)
	if d := ref.MaxAbsDiff(want, got.Data); d > 5e-3 {
		t.Errorf("repeated sgemm error %g", d)
	}
}

func TestSgemmBlockTooLargeFailsCompilation(t *testing.T) {
	// On the VideoCore profile (max 40 texture accesses) a block-32
	// kernel needs 65 fetches: compilation must fail, as the paper
	// reports for block sizes above 16.
	cfg := baseConfig(64)
	cfg.Device = device.VideoCoreIV()
	a := randMatrix(64, 7)
	b := randMatrix(64, 8)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSgemm(e, a, b, 32); err == nil {
		t.Fatal("block-32 sgemm compiled despite implementation limits")
	} else if !strings.Contains(err.Error(), "limit") {
		t.Errorf("unexpected error: %v", err)
	}
	// Block 16 (33 fetches) fits.
	if _, err := NewSgemm(e, a, b, 16); err != nil {
		t.Errorf("block-16 sgemm rejected: %v", err)
	}
}

func TestSaxpy(t *testing.T) {
	n := 16
	cfg := baseConfig(n)
	x := randMatrix(n, 9)
	y := randMatrix(n, 10)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSaxpy(e, 0.5, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), y.Data...)
	ref.Saxpy(0.5, x.Data, want)
	if d := ref.MaxAbsDiff(want, got.Data); d > 1e-5 {
		t.Errorf("saxpy error %g", d)
	}
	if _, err := NewSaxpy(e, 1.5, x, y); err == nil {
		t.Error("alpha outside encoded domain accepted")
	}
}

func TestJacobiMatchesReference(t *testing.T) {
	n := 16
	cfg := baseConfig(n)
	grid := codec.NewMatrix(n, n)
	for y := 0; y < n; y++ {
		grid.Set(y, 0, 0.9) // hot left edge
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewJacobi(e, grid)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 10
	for i := 0; i < steps; i++ {
		if err := r.RunOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), grid.Data...)
	tmp := make([]float64, n*n)
	for i := 0; i < steps; i++ {
		ref.JacobiStep(n, n, want, tmp)
		want, tmp = tmp, want
	}
	if d := ref.MaxAbsDiff(want, got.Data); d > 1e-3 {
		t.Errorf("jacobi error after %d steps: %g", steps, d)
	}
}

func TestConv3x3MatchesReference(t *testing.T) {
	n := 16
	cfg := baseConfig(n)
	img := randMatrix(n, 11)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	box := [9]float32{}
	for i := range box {
		box[i] = 1.0 / 9
	}
	r, err := NewConv3x3(e, img, box)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	var k [9]float64
	for i := range k {
		k[i] = 1.0 / 9
	}
	want := make([]float64, n*n)
	ref.Convolve3x3(n, n, img.Data, k, want)
	if d := ref.MaxAbsDiff(want, got.Data); d > 1e-4 {
		t.Errorf("conv error %g", d)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("missing device accepted")
	}
	if _, err := NewEngine(Config{Device: device.Generic()}); err == nil {
		t.Error("zero grid accepted")
	}
	cfg := baseConfig(8)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := randMatrix(8, 1)
	bWrong := randMatrix(16, 2)
	if _, err := NewSum(e, a, bWrong); err == nil {
		t.Error("shape mismatch accepted")
	}
	b := randMatrix(8, 2)
	b.Range = codec.Range{Lo: 0, Hi: 2}
	if _, err := NewSum(e, a, b); err == nil {
		t.Error("range mismatch accepted")
	}
	if _, err := NewSgemm(e, a, randMatrix(8, 3), 3); err == nil {
		t.Error("non-power-of-two block accepted")
	}
}

func TestTimingAdvancesAndVsyncGates(t *testing.T) {
	n := 16
	run := func(mut func(*Config)) float64 {
		cfg := baseConfig(n)
		cfg.Device = device.VideoCoreIV()
		mut(&cfg)
		a := randMatrix(n, 1)
		b := randMatrix(n, 2)
		e, _ := NewEngine(cfg)
		r, err := NewSum(e, a, b)
		if err != nil {
			t.Fatal(err)
		}
		start := e.Now()
		for i := 0; i < 5; i++ {
			if err := r.RunOnce(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		e.Finish()
		return (e.Now() - start).Seconds() / 5
	}
	vsync := run(func(c *Config) { c.Swap = SwapVsync })
	nosync := run(func(c *Config) { c.Swap = SwapNoVsync })
	noswap := run(func(c *Config) { c.Swap = SwapNone })
	if !(vsync > nosync && nosync > noswap) {
		t.Errorf("expected vsync(%g) > interval0(%g) > noswap(%g)", vsync, nosync, noswap)
	}
	// Vsync-gated iterations average at least ~a refresh period (the
	// first iteration starts mid-period, hence the 10% slack).
	if vsync < 0.9/60 {
		t.Errorf("vsync iteration %g s, want >= refresh period", vsync)
	}
}

func TestTranspose(t *testing.T) {
	n := 16
	cfg := baseConfig(n)
	m := randMatrix(n, 21)
	e, _ := NewEngine(cfg)
	r, err := NewTranspose(e, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if d := mathAbs(got.At(i, j) - m.At(j, i)); d > 1e-6 {
				t.Fatalf("T[%d][%d] = %g, want %g", i, j, got.At(i, j), m.At(j, i))
			}
		}
	}
	if _, err := NewTranspose(e, randMatrix(8, 1)); err == nil {
		t.Error("size mismatch accepted")
	}
}

// Property: sum stays correct under random configuration knobs.
func TestSumConfigFuzzProperty(t *testing.T) {
	n := 8
	a := randMatrix(n, 31)
	b := randMatrix(n, 32)
	want := make([]float64, n*n)
	ref.Sum(a.Data, b.Data, want)
	f := func(bits uint16) bool {
		cfg := baseConfig(n)
		if bits&1 != 0 {
			cfg.Target = TargetFramebuffer
		}
		switch (bits >> 1) & 3 {
		case 1:
			cfg.Swap = SwapVsync
		case 2:
			cfg.Swap = SwapNoVsync
		}
		cfg.StreamInputs = bits&8 != 0
		cfg.ReuseInputTextures = bits&16 != 0
		cfg.ReuseOutputTextures = bits&32 != 0
		cfg.UseVBO = bits&64 != 0
		if bits&128 != 0 {
			cfg.Kernel = kernels.FP24Options
		}
		cfg.ArtificialDependency = bits&256 != 0
		cfg.UseDiscardExtension = bits&512 != 0
		if bits&1024 != 0 {
			cfg.Device = device.VideoCoreIV()
		}
		// Host-parallel shading must be invisible to results at any
		// worker count (1, 2, 3 or 4 here).
		cfg.Workers = 1 + int((bits>>11)&3)
		e, err := NewEngine(cfg)
		if err != nil {
			return false
		}
		r, err := NewSum(e, a, b)
		if err != nil {
			return false
		}
		for i := 0; i < 2; i++ {
			if err := r.RunOnce(context.Background()); err != nil {
				return false
			}
		}
		got, err := r.Result()
		if err != nil {
			return false
		}
		return ref.MaxAbsDiff(want, got.Data) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSumParallelParityFuzzProperty fuzzes config options at a grid size
// that engages the parallel shading gate and demands the decoded result be
// exactly equal between serial and four-worker execution — the byte-level
// determinism property, sampled across the option space.
func TestSumParallelParityFuzzProperty(t *testing.T) {
	n := 64
	a := randMatrix(n, 33)
	b := randMatrix(n, 34)
	f := func(bits uint16) bool {
		mk := func(workers int) ([]float64, int64, error) {
			cfg := baseConfig(n)
			if bits&1 != 0 {
				cfg.Target = TargetFramebuffer
			}
			cfg.StreamInputs = bits&2 != 0
			cfg.ReuseInputTextures = bits&4 != 0
			cfg.ReuseOutputTextures = bits&8 != 0
			if bits&16 != 0 {
				cfg.Kernel = kernels.FP24Options
			}
			cfg.ArtificialDependency = bits&32 != 0
			if bits&64 != 0 {
				cfg.Device = device.VideoCoreIV()
			}
			cfg.Workers = workers
			e, err := NewEngine(cfg)
			if err != nil {
				return nil, 0, err
			}
			r, err := NewSum(e, a, b)
			if err != nil {
				return nil, 0, err
			}
			for i := 0; i < 2; i++ {
				if err := r.RunOnce(context.Background()); err != nil {
					return nil, 0, err
				}
			}
			got, err := r.Result()
			if err != nil {
				return nil, 0, err
			}
			e.Finish()
			return got.Data, int64(e.Now()), nil
		}
		serial, serialNow, err := mk(1)
		if err != nil {
			return false
		}
		parallel, parallelNow, err := mk(4)
		if err != nil {
			return false
		}
		if serialNow != parallelNow {
			return false
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestReducePyramid(t *testing.T) {
	n := 32
	for _, targetFB := range []bool{false, true} {
		cfg := baseConfig(n)
		if targetFB {
			cfg.Target = TargetFramebuffer
		}
		m := randMatrix(n, 12)
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewReduce(e, m)
		if err != nil {
			t.Fatal(err)
		}
		if r.Levels() != 5 { // 32 -> 16 -> 8 -> 4 -> 2 -> 1
			t.Fatalf("levels = %d, want 5", r.Levels())
		}
		if err := r.RunOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		got, err := r.Total()
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for _, v := range m.Data {
			want += v
		}
		if d := mathAbs(got-want) / want; d > 1e-4 {
			t.Errorf("target fb=%v: total = %g, want %g (rel err %g)", targetFB, got, want, d)
		}
	}
	// Validation of constructor constraints.
	e, _ := NewEngine(baseConfig(n))
	if _, err := NewReduce(e, randMatrix(16, 13)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func mathAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestEngineReport(t *testing.T) {
	n := 16
	cfg := baseConfig(n)
	cfg.Target = TargetFramebuffer
	a := randMatrix(n, 1)
	b := randMatrix(n, 2)
	e, _ := NewEngine(cfg)
	r, err := NewSum(e, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := r.RunOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	e.Finish()
	rep := e.Report()
	if rep.Elapsed <= 0 || rep.FPBusy <= 0 {
		t.Errorf("report times: %+v", rep)
	}
	if rep.FPUtilisation <= 0 || rep.FPUtilisation > 1 {
		t.Errorf("utilisation %v out of (0,1]", rep.FPUtilisation)
	}
	if rep.Stats.Draws != 4 {
		t.Errorf("draws = %d", rep.Stats.Draws)
	}
	if rep.Stats.CopyOps != 4 { // FB target: one CopyTexImage per iteration
		t.Errorf("copies = %d", rep.Stats.CopyOps)
	}
	if rep.LiveAllocations == 0 || rep.PeakBytes == 0 {
		t.Error("allocation bookkeeping missing")
	}
	s := rep.String()
	for _, want := range []string{"elapsed", "draws 4", "gpu memory"} {
		if !strings.Contains(s, want) {
			t.Errorf("report text missing %q:\n%s", want, s)
		}
	}
}

func TestDiscardExtensionMatchesClearTiming(t *testing.T) {
	// EXT_discard_framebuffer and glClear both invalidate the target: no
	// tile loads, no dependency bubbles on the target.
	run := func(useDiscard bool) (int64, int64) {
		n := 16
		cfg := baseConfig(n)
		cfg.UseDiscardExtension = useDiscard
		a := randMatrix(n, 1)
		b := randMatrix(n, 2)
		e, _ := NewEngine(cfg)
		r, err := NewSum(e, a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := r.RunOnce(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		st := e.Machine().Stats
		return st.TileLoads, st.Bubbles
	}
	for _, discard := range []bool{false, true} {
		loads, bubbles := run(discard)
		if loads != 0 {
			t.Errorf("discard=%v: %d tile loads, want 0", discard, loads)
		}
		if bubbles != 0 {
			t.Errorf("discard=%v: %d bubbles, want 0", discard, bubbles)
		}
	}
}

func TestTimingOnlyReplayKeepsResults(t *testing.T) {
	n := 8
	cfg := baseConfig(n)
	a := randMatrix(n, 1)
	b := randMatrix(n, 2)
	e, _ := NewEngine(cfg)
	r, err := NewSum(e, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.SetTimingOnly(true)
	for i := 0; i < 10; i++ {
		if err := r.RunOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	e.SetTimingOnly(false)
	got, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n*n)
	ref.Sum(a.Data, b.Data, want)
	if d := ref.MaxAbsDiff(want, got.Data); d > 1e-5 {
		t.Errorf("replay corrupted results: %g", d)
	}
}

// TestAllKernelsParallelShadingIdentity runs every runner serially and with
// four fragment-shading workers on identical inputs, demanding exactly
// equal decoded results, virtual end times and machine counters. This is
// the determinism guarantee of the host-parallel engine: worker count may
// only change host wall-clock time.
func TestAllKernelsParallelShadingIdentity(t *testing.T) {
	const n = 64 // main draws sit at the parallel gate's threshold
	type outcome struct {
		data  []float64
		now   int64
		stats [10]int64
	}
	runners := []struct {
		name  string
		build func(e *Engine) (interface {
			RunOnce(context.Context) error
			Result() (*codec.Matrix, error)
		}, error)
	}{
		{"sum", func(e *Engine) (interface {
			RunOnce(context.Context) error
			Result() (*codec.Matrix, error)
		}, error) {
			return NewSum(e, randMatrix(n, 41), randMatrix(n, 42))
		}},
		{"sgemm", func(e *Engine) (interface {
			RunOnce(context.Context) error
			Result() (*codec.Matrix, error)
		}, error) {
			return NewSgemm(e, randMatrix(n, 43), randMatrix(n, 44), 8)
		}},
		{"saxpy", func(e *Engine) (interface {
			RunOnce(context.Context) error
			Result() (*codec.Matrix, error)
		}, error) {
			return NewSaxpy(e, 0.5, randMatrix(n, 45), randMatrix(n, 46))
		}},
		{"jacobi", func(e *Engine) (interface {
			RunOnce(context.Context) error
			Result() (*codec.Matrix, error)
		}, error) {
			return NewJacobi(e, randMatrix(n, 47))
		}},
		{"transpose", func(e *Engine) (interface {
			RunOnce(context.Context) error
			Result() (*codec.Matrix, error)
		}, error) {
			return NewTranspose(e, randMatrix(n, 48))
		}},
		{"reduce", func(e *Engine) (interface {
			RunOnce(context.Context) error
			Result() (*codec.Matrix, error)
		}, error) {
			return NewReduce(e, randMatrix(n, 49))
		}},
		{"conv3x3", func(e *Engine) (interface {
			RunOnce(context.Context) error
			Result() (*codec.Matrix, error)
		}, error) {
			return NewConv3x3(e, randMatrix(n, 50), [9]float32{0.1, 0.1, 0.1, 0.1, 0.2, 0.1, 0.1, 0.1, 0.1})
		}},
	}
	for _, rc := range runners {
		t.Run(rc.name, func(t *testing.T) {
			run := func(workers int) outcome {
				cfg := baseConfig(n)
				cfg.Workers = workers
				e, err := NewEngine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				r, err := rc.build(e)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 2; i++ {
					if err := r.RunOnce(context.Background()); err != nil {
						t.Fatal(err)
					}
				}
				got, err := r.Result()
				if err != nil {
					t.Fatal(err)
				}
				e.Finish()
				s := e.Machine().Stats
				return outcome{
					data: got.Data,
					now:  int64(e.Now()),
					stats: [10]int64{s.Draws, s.Bubbles, s.WARStalls, s.CopyOps, s.CopyBytes,
						s.UploadOps, s.UploadBytes, s.TileLoads, s.TileStores, s.FragmentsShaded},
				}
			}
			serial := run(1)
			parallel := run(4)
			if serial.now != parallel.now {
				t.Errorf("virtual end time: serial %d, parallel %d", serial.now, parallel.now)
			}
			if serial.stats != parallel.stats {
				t.Errorf("machine stats diverge:\nserial   %v\nparallel %v", serial.stats, parallel.stats)
			}
			if len(serial.data) != len(parallel.data) {
				t.Fatalf("result sizes diverge: %d vs %d", len(serial.data), len(parallel.data))
			}
			for i := range serial.data {
				if serial.data[i] != parallel.data[i] {
					t.Fatalf("result[%d]: serial %v, parallel %v", i, serial.data[i], parallel.data[i])
				}
			}
		})
	}
}
