package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/kernels"
)

// Runner is one benchmark workload: RunOnce executes the benchmark body
// (the unit the paper repeats 10 000 times) and Result reads the output
// back. RunOnce honours ctx: cancellation and deadlines are checked before
// the body and between the passes of multi-pass workloads, so a serving
// layer can abandon work mid-job without tearing the engine down.
type Runner interface {
	RunOnce(ctx context.Context) error
	Result() (*codec.Matrix, error)
}

// Releaser is implemented by runners that can return their GPU tensors to
// the engine's residency pool when the runner is retired (see TensorPool).
type Releaser interface {
	Release()
}

// SumRunner is the paper's streaming matrix-addition benchmark.
type SumRunner struct {
	e      *Engine
	k      *Kernel
	a, b   *codec.Matrix
	tA, tB *Tensor
	out    [2]*Tensor
	cur    int
	first  bool
}

// NewSum prepares the sum workload: c = a + b. The inputs must share one
// encoding range.
func NewSum(e *Engine, a, b *codec.Matrix) (*SumRunner, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("core: sum shapes %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows != e.cfg.Height || a.Cols != e.cfg.Width {
		return nil, fmt.Errorf("core: sum shape %dx%d does not match engine grid %dx%d", a.Rows, a.Cols, e.cfg.Height, e.cfg.Width)
	}
	if a.Range != b.Range {
		return nil, fmt.Errorf("core: sum inputs must share a range")
	}
	src := kernels.Sum(e.cfg.Kernel)
	if e.cfg.ArtificialDependency {
		src = kernels.SumDep(e.cfg.Kernel)
	}
	k, err := e.CachedKernel(src)
	if err != nil {
		return nil, err
	}
	r := &SumRunner{e: e, k: k, a: a, b: b, first: true}
	r.tA = e.NewTensor(a.Rows, a.Cols, a.Range)
	r.tB = e.NewTensor(b.Rows, b.Cols, b.Range)
	outRange := codec.Range{Lo: a.Range.Lo + b.Range.Lo, Hi: a.Range.Hi + b.Range.Hi}
	for i := range r.out {
		r.out[i] = e.NewTensor(a.Rows, a.Cols, outRange)
	}
	if err := r.tA.Upload(a, false); err != nil {
		return nil, err
	}
	if err := r.tB.Upload(b, false); err != nil {
		return nil, err
	}
	// The dependency variant samples the previous output, which must
	// exist from the very first pass.
	if e.cfg.ArtificialDependency && e.cfg.Target == TargetTexture {
		for i := range r.out {
			if err := r.out[i].AllocateStorage(); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// SetInputs rebinds the runner to new input matrices of the same shape and
// range, re-uploading them into the live textures (the sub-image path). It
// lets a serving layer run many jobs through one warm runner, amortising
// kernel and tensor setup the way the paper amortises per-iteration work.
func (r *SumRunner) SetInputs(a, b *codec.Matrix) error {
	if a.Rows != r.a.Rows || a.Cols != r.a.Cols || b.Rows != r.b.Rows || b.Cols != r.b.Cols {
		return fmt.Errorf("core: sum rebind shape mismatch")
	}
	if a.Range != r.a.Range || b.Range != r.b.Range {
		return fmt.Errorf("core: sum rebind range mismatch")
	}
	r.a, r.b = a, b
	if err := r.tA.Upload(a, true); err != nil {
		return err
	}
	return r.tB.Upload(b, true)
}

// RunOnce executes one benchmark-body iteration.
func (r *SumRunner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e := r.e
	if e.cfg.StreamInputs && !r.first {
		if err := r.tA.Upload(r.a, e.cfg.ReuseInputTextures); err != nil {
			return err
		}
		if err := r.tB.Upload(r.b, e.cfg.ReuseInputTextures); err != nil {
			return err
		}
	}
	r.first = false
	r.k.BindInput("text0", 0, r.tA)
	r.k.BindInput("text1", 1, r.tB)
	out := r.out[r.cur]
	if e.cfg.ArtificialDependency {
		prev := r.out[1-r.cur]
		if !prev.allocated {
			if err := prev.AllocateStorage(); err != nil {
				return err
			}
		}
		r.k.BindInput("text2", 2, prev)
		r.cur = 1 - r.cur
	}
	if err := r.k.Dispatch(out); err != nil {
		return err
	}
	return e.EndIteration()
}

// Kernel returns the compiled kernel (for stat priming).
func (r *SumRunner) Kernel() *Kernel { return r.k }

// Result reads back the last output.
func (r *SumRunner) Result() (*codec.Matrix, error) {
	idx := r.cur
	if r.e.cfg.ArtificialDependency {
		idx = 1 - r.cur // cur was advanced past the last write
	}
	return r.out[idx].Read()
}

// Release returns the runner's tensors to the engine pool.
func (r *SumRunner) Release() {
	r.tA.Release()
	r.tB.Release()
	r.out[0].Release()
	r.out[1].Release()
}

// SgemmRunner is the paper's multi-pass blocked matrix-multiply benchmark
// (§III/§IV, Fig. 2): RunOnce performs one full C = A·B, i.e. M/block
// kernel passes with double-buffered intermediate textures.
type SgemmRunner struct {
	e        *Engine
	k        *Kernel
	a, b     *codec.Matrix
	tA, tB   *Tensor
	interm   [2]*Tensor
	zero     *Tensor
	n, block int
	passes   int
	last     int // interm index holding the final result
	first    bool
}

// NewSgemm prepares C = A·B on n×n unit-range matrices with the given
// block size. Block sizes whose unrolled kernels exceed the device's
// implementation limits fail here with the compiler's diagnostic — the
// paper's >16 "crashes and shader compilation failures".
func NewSgemm(e *Engine, a, b *codec.Matrix, block int) (*SgemmRunner, error) {
	n := a.Rows
	if a.Cols != n || b.Rows != n || b.Cols != n {
		return nil, fmt.Errorf("core: sgemm requires square same-size matrices")
	}
	if n != e.cfg.Width || n != e.cfg.Height {
		return nil, fmt.Errorf("core: sgemm size %d does not match engine grid %dx%d", n, e.cfg.Width, e.cfg.Height)
	}
	if a.Range != codec.Unit || b.Range != codec.Unit {
		return nil, fmt.Errorf("core: sgemm inputs must use the unit range")
	}
	src, err := kernels.SgemmPass(n, block, e.cfg.Kernel)
	if err != nil {
		return nil, err
	}
	k, err := e.CachedKernel(src)
	if err != nil {
		return nil, err
	}
	r := &SgemmRunner{e: e, k: k, a: a, b: b, n: n, block: block, passes: n / block, first: true}
	r.tA = e.NewTensor(n, n, codec.Unit)
	r.tB = e.NewTensor(n, n, codec.Unit)
	outRange := codec.Range{Lo: 0, Hi: float64(n)}
	for i := range r.interm {
		r.interm[i] = e.NewTensor(n, n, outRange)
	}
	r.zero = e.NewTensor(n, n, outRange)
	if err := r.tA.Upload(a, false); err != nil {
		return nil, err
	}
	if err := r.tB.Upload(b, false); err != nil {
		return nil, err
	}
	// The zero accumulator feeding the first pass.
	zm := codec.NewMatrix(n, n)
	zm.Range = outRange
	if err := r.zero.Upload(zm, false); err != nil {
		return nil, err
	}
	return r, nil
}

// Passes returns the number of kernel launches per multiplication.
func (r *SgemmRunner) Passes() int { return r.passes }

// Kernel returns the compiled kernel (for stat priming).
func (r *SgemmRunner) Kernel() *Kernel { return r.k }

// SetInputs rebinds the runner to new unit-range n×n input matrices,
// re-uploading them into the live textures (the sub-image path).
func (r *SgemmRunner) SetInputs(a, b *codec.Matrix) error {
	if a.Rows != r.n || a.Cols != r.n || b.Rows != r.n || b.Cols != r.n {
		return fmt.Errorf("core: sgemm rebind requires %dx%d matrices", r.n, r.n)
	}
	if a.Range != codec.Unit || b.Range != codec.Unit {
		return fmt.Errorf("core: sgemm rebind inputs must use the unit range")
	}
	r.a, r.b = a, b
	if err := r.tA.Upload(a, true); err != nil {
		return err
	}
	return r.tB.Upload(b, true)
}

// RunOnce performs one complete multiplication (all passes), checking ctx
// between passes so cancellation takes effect mid-multiplication.
func (r *SgemmRunner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e := r.e
	if e.cfg.StreamInputs && !r.first {
		if err := r.tA.Upload(r.a, e.cfg.ReuseInputTextures); err != nil {
			return err
		}
		if err := r.tB.Upload(r.b, e.cfg.ReuseInputTextures); err != nil {
			return err
		}
	}
	r.first = false
	cur := 0
	for p := 0; p < r.passes; p++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		in := r.interm[cur]
		if p == 0 {
			in = r.zero
		}
		out := r.interm[1-cur]
		r.k.SetFloat("blk_n", float32(p*r.block)/float32(r.n))
		r.k.BindInput("text0", 0, r.tA)
		r.k.BindInput("text1", 1, r.tB)
		r.k.BindInput("text2", 2, in)
		if err := r.k.Dispatch(out); err != nil {
			return err
		}
		if err := e.EndIteration(); err != nil {
			return err
		}
		cur = 1 - cur
	}
	r.last = cur // index written by the final pass (after the flip)
	return nil
}

// Result reads back C.
func (r *SgemmRunner) Result() (*codec.Matrix, error) {
	return r.interm[r.last].Read()
}

// Release returns the runner's tensors to the engine pool.
func (r *SgemmRunner) Release() {
	r.tA.Release()
	r.tB.Release()
	r.interm[0].Release()
	r.interm[1].Release()
	r.zero.Release()
}

// SaxpyRunner computes y' = alpha·x + y.
type SaxpyRunner struct {
	e      *Engine
	k      *Kernel
	x, y   *codec.Matrix
	tX, tY *Tensor
	out    *Tensor
	alpha  float32
	first  bool
}

// NewSaxpy prepares the saxpy workload (alpha ∈ [0,1], unit-range inputs).
func NewSaxpy(e *Engine, alpha float32, x, y *codec.Matrix) (*SaxpyRunner, error) {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return nil, fmt.Errorf("core: saxpy shape mismatch")
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("core: saxpy alpha %g outside [0,1] (encoded domain)", alpha)
	}
	k, err := e.CachedKernel(kernels.Saxpy(e.cfg.Kernel))
	if err != nil {
		return nil, err
	}
	r := &SaxpyRunner{e: e, k: k, x: x, y: y, alpha: alpha, first: true}
	r.tX = e.NewTensor(x.Rows, x.Cols, x.Range)
	r.tY = e.NewTensor(y.Rows, y.Cols, y.Range)
	outRange := codec.Range{Lo: x.Range.Lo + y.Range.Lo, Hi: x.Range.Hi + y.Range.Hi}
	r.out = e.NewTensor(x.Rows, x.Cols, outRange)
	if err := r.tX.Upload(x, false); err != nil {
		return nil, err
	}
	if err := r.tY.Upload(y, false); err != nil {
		return nil, err
	}
	return r, nil
}

// SetInputs rebinds the runner to a new alpha and new input matrices of the
// same shape and range, re-uploading through the sub-image path.
func (r *SaxpyRunner) SetInputs(alpha float32, x, y *codec.Matrix) error {
	if x.Rows != r.x.Rows || x.Cols != r.x.Cols || y.Rows != r.y.Rows || y.Cols != r.y.Cols {
		return fmt.Errorf("core: saxpy rebind shape mismatch")
	}
	if x.Range != r.x.Range || y.Range != r.y.Range {
		return fmt.Errorf("core: saxpy rebind range mismatch")
	}
	if alpha < 0 || alpha > 1 {
		return fmt.Errorf("core: saxpy alpha %g outside [0,1] (encoded domain)", alpha)
	}
	r.alpha = alpha
	r.x, r.y = x, y
	if err := r.tX.Upload(x, true); err != nil {
		return err
	}
	return r.tY.Upload(y, true)
}

// RunOnce executes one iteration.
func (r *SaxpyRunner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e := r.e
	if e.cfg.StreamInputs && !r.first {
		if err := r.tX.Upload(r.x, e.cfg.ReuseInputTextures); err != nil {
			return err
		}
		if err := r.tY.Upload(r.y, e.cfg.ReuseInputTextures); err != nil {
			return err
		}
	}
	r.first = false
	r.k.SetFloat("alpha", r.alpha)
	r.k.BindInput("text0", 0, r.tX)
	r.k.BindInput("text1", 1, r.tY)
	if err := r.k.Dispatch(r.out); err != nil {
		return err
	}
	return e.EndIteration()
}

// Result reads back y'.
func (r *SaxpyRunner) Result() (*codec.Matrix, error) { return r.out.Read() }

// Release returns the runner's tensors to the engine pool.
func (r *SaxpyRunner) Release() {
	r.tX.Release()
	r.tY.Release()
	r.out.Release()
}

// JacobiRunner iterates the Jacobi relaxation kernel over a ping-pong
// tensor pair (a multi-pass numerical solver, one of the application
// domains the paper motivates).
type JacobiRunner struct {
	e  *Engine
	k  *Kernel
	pp *PingPong
}

// NewJacobi prepares the solver with the given initial grid.
func NewJacobi(e *Engine, initial *codec.Matrix) (*JacobiRunner, error) {
	k, err := e.CachedKernel(kernels.Jacobi(initial.Cols, initial.Rows, e.cfg.Kernel))
	if err != nil {
		return nil, err
	}
	r := &JacobiRunner{e: e, k: k, pp: e.NewPingPong(initial.Rows, initial.Cols, initial.Range)}
	if err := r.pp.Upload(initial); err != nil {
		return nil, err
	}
	return r, nil
}

// step binds the input grid and relaxes into the output grid.
func (r *JacobiRunner) step(in, out *Tensor) error {
	r.k.BindInput("text0", 0, in)
	return r.k.Dispatch(out)
}

// RunOnce performs one relaxation step.
func (r *JacobiRunner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := r.step(r.pp.Cur(), r.pp.Next()); err != nil {
		return err
	}
	r.pp.Swap()
	return r.e.EndIteration()
}

// RunToConvergence relaxes until the residual between periodic readbacks
// drops to opts.Tol (or opts.MaxIters is reached) via Engine.StepLoop.
// Late iterations change little of the grid, so this is where the
// cross-iteration tile-coherence cache pays off: converged tiles stop
// re-shading long before the residual check can stop the loop.
func (r *JacobiRunner) RunToConvergence(ctx context.Context, opts StepOpts) (StepResult, error) {
	return r.e.StepLoop(ctx, r.pp, opts, func(_ int, in, out *Tensor) error {
		return r.step(in, out)
	})
}

// Result reads the current grid.
func (r *JacobiRunner) Result() (*codec.Matrix, error) { return r.pp.Read() }

// Release returns the runner's tensors to the engine pool.
func (r *JacobiRunner) Release() { r.pp.Release() }

// Jacobi8Runner iterates the display-precision (8-bit raw state) Jacobi
// relaxation. Unlike the codec-encoded JacobiRunner — whose low-order
// state bytes never stop churning — the byte-quantised relaxation reaches
// an exact fixed point progressively, tile by tile, so late iterations are
// almost entirely coherence-elided. This is the jacobi-to-convergence
// workload of the coherence benchmarks.
type Jacobi8Runner struct {
	e  *Engine
	k  *Kernel
	pp *PingPong
}

// NewJacobi8 prepares the 8-bit solver, quantising the initial grid (unit
// range) to bytes.
func NewJacobi8(e *Engine, initial *codec.Matrix) (*Jacobi8Runner, error) {
	k, err := e.CachedKernel(kernels.Jacobi8(initial.Cols, initial.Rows, e.cfg.Kernel))
	if err != nil {
		return nil, err
	}
	r := &Jacobi8Runner{e: e, k: k, pp: e.NewPingPong(initial.Rows, initial.Cols, codec.Unit)}
	state := make([]byte, initial.Rows*initial.Cols*4)
	for i, v := range initial.Data {
		b := byte(math.Round(v * 255))
		state[i*4+0] = b
		state[i*4+1] = b
		state[i*4+2] = b
		state[i*4+3] = 255
	}
	if err := r.pp.UploadEncoded(state); err != nil {
		return nil, err
	}
	return r, nil
}

// RunOnce performs one relaxation step.
func (r *Jacobi8Runner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.k.BindInput("text0", 0, r.pp.Cur())
	if err := r.k.Dispatch(r.pp.Next()); err != nil {
		return err
	}
	r.pp.Swap()
	return r.e.EndIteration()
}

// RunToConvergence relaxes until the raw state bytes stop changing between
// periodic readbacks (or opts.MaxIters is reached). A nil opts.ResidualRaw
// defaults to MaxByteDiff.
func (r *Jacobi8Runner) RunToConvergence(ctx context.Context, opts StepOpts) (StepResult, error) {
	if opts.ResidualRaw == nil {
		opts.ResidualRaw = MaxByteDiff
	}
	return r.e.StepLoop(ctx, r.pp, opts, func(_ int, in, out *Tensor) error {
		r.k.BindInput("text0", 0, in)
		return r.k.Dispatch(out)
	})
}

// State reads the raw RGBA state.
func (r *Jacobi8Runner) State() ([]byte, error) { return r.pp.ReadRaw() }

// Result decodes the temperatures (the R channel) into a matrix.
func (r *Jacobi8Runner) Result() (*codec.Matrix, error) { return rawChannelMatrix(r.pp, 0) }

// Release returns the runner's tensors to the engine pool.
func (r *Jacobi8Runner) Release() { r.pp.Release() }

// ParticlesRunner steps a texture-resident particle system: each texel is
// one particle (position in RG, velocity in BA) stored as raw RGBA bytes —
// the gl-gpgpu style of state-stepping workload. Velocities decay to rest
// and positions settle onto byte fixed points, so tiles progressively stop
// changing and the coherence cache elides them.
type ParticlesRunner struct {
	e  *Engine
	k  *Kernel
	pp *PingPong
}

// NewParticles seeds a particle per texel of the engine grid with
// deterministic pseudo-random positions and velocities derived from seed.
func NewParticles(e *Engine, seed int64) (*ParticlesRunner, error) {
	k, err := e.CachedKernel(kernels.Particles(e.cfg.Kernel))
	if err != nil {
		return nil, err
	}
	rows, cols := e.cfg.Height, e.cfg.Width
	r := &ParticlesRunner{e: e, k: k, pp: e.NewPingPong(rows, cols, codec.Unit)}
	rng := rand.New(rand.NewSource(seed))
	state := make([]byte, rows*cols*4)
	for i := 0; i < len(state); i += 4 {
		state[i+0] = byte(rng.Intn(256)) // pos.x
		state[i+1] = byte(rng.Intn(256)) // pos.y
		state[i+2] = byte(rng.Intn(256)) // vel.x around 128
		state[i+3] = byte(rng.Intn(256)) // vel.y around 128
	}
	if err := r.pp.UploadEncoded(state); err != nil {
		return nil, err
	}
	return r, nil
}

// RunOnce advances every particle one step.
func (r *ParticlesRunner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.k.BindInput("text0", 0, r.pp.Cur())
	if err := r.k.Dispatch(r.pp.Next()); err != nil {
		return err
	}
	r.pp.Swap()
	return r.e.EndIteration()
}

// State reads the raw RGBA particle state.
func (r *ParticlesRunner) State() ([]byte, error) { return r.pp.ReadRaw() }

// Result decodes the particle x positions (the R channel) into a matrix.
func (r *ParticlesRunner) Result() (*codec.Matrix, error) { return rawChannelMatrix(r.pp, 0) }

// Release returns the runner's tensors to the engine pool.
func (r *ParticlesRunner) Release() { r.pp.Release() }

// ReactionDiffusionRunner steps a Gray-Scott reaction-diffusion system
// (species u in R, v in G, raw byte state). Away from the growing pattern
// the homogeneous u=1, v=0 state is byte-exact under the update, so most
// tiles are coherence-elided every iteration.
type ReactionDiffusionRunner struct {
	e  *Engine
	k  *Kernel
	pp *PingPong
}

// NewReactionDiffusion seeds the engine grid with the homogeneous u=1, v=0
// state plus a perturbed square spot in the centre that grows into the
// pattern front.
func NewReactionDiffusion(e *Engine) (*ReactionDiffusionRunner, error) {
	rows, cols := e.cfg.Height, e.cfg.Width
	k, err := e.CachedKernel(kernels.ReactionDiffusion(cols, rows, e.cfg.Kernel))
	if err != nil {
		return nil, err
	}
	r := &ReactionDiffusionRunner{e: e, k: k, pp: e.NewPingPong(rows, cols, codec.Unit)}
	state := make([]byte, rows*cols*4)
	for i := 0; i < len(state); i += 4 {
		state[i+0] = 255 // u = 1
		state[i+3] = 255 // alpha (kernel re-emits 1)
	}
	// Central spot: u = 0.5, v = 0.25.
	const spot = 4
	for y := rows/2 - spot; y < rows/2+spot; y++ {
		for x := cols/2 - spot; x < cols/2+spot; x++ {
			if y < 0 || y >= rows || x < 0 || x >= cols {
				continue
			}
			i := (y*cols + x) * 4
			state[i+0] = 128
			state[i+1] = 64
		}
	}
	if err := r.pp.UploadEncoded(state); err != nil {
		return nil, err
	}
	return r, nil
}

// RunOnce advances the system one step.
func (r *ReactionDiffusionRunner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.k.BindInput("text0", 0, r.pp.Cur())
	if err := r.k.Dispatch(r.pp.Next()); err != nil {
		return err
	}
	r.pp.Swap()
	return r.e.EndIteration()
}

// State reads the raw RGBA species state.
func (r *ReactionDiffusionRunner) State() ([]byte, error) { return r.pp.ReadRaw() }

// Result decodes the u concentrations (the R channel) into a matrix.
func (r *ReactionDiffusionRunner) Result() (*codec.Matrix, error) { return rawChannelMatrix(r.pp, 0) }

// Release returns the runner's tensors to the engine pool.
func (r *ReactionDiffusionRunner) Release() { r.pp.Release() }

// rawChannelMatrix reads a ping-pong pair's raw state and decodes one byte
// channel as values in [0, 1].
func rawChannelMatrix(pp *PingPong, ch int) (*codec.Matrix, error) {
	raw, err := pp.ReadRaw()
	if err != nil {
		return nil, err
	}
	t := pp.Cur()
	m := codec.NewMatrix(t.Rows, t.Cols)
	for i := range m.Data {
		m.Data[i] = float64(raw[i*4+ch]) / 255
	}
	return m, nil
}

// TransposeRunner computes the matrix transpose — a pure data-movement
// kernel whose cost is entirely texture traffic.
type TransposeRunner struct {
	e     *Engine
	k     *Kernel
	in    *codec.Matrix
	tIn   *Tensor
	out   *Tensor
	first bool
}

// NewTranspose prepares out = inᵀ for a square matrix.
func NewTranspose(e *Engine, m *codec.Matrix) (*TransposeRunner, error) {
	if m.Rows != m.Cols || m.Rows != e.cfg.Width || m.Rows != e.cfg.Height {
		return nil, fmt.Errorf("core: transpose requires a square matrix matching the engine grid")
	}
	k, err := e.CachedKernel(kernels.Transpose(e.cfg.Kernel))
	if err != nil {
		return nil, err
	}
	r := &TransposeRunner{e: e, k: k, in: m, first: true}
	r.tIn = e.NewTensor(m.Rows, m.Cols, m.Range)
	r.out = e.NewTensor(m.Rows, m.Cols, m.Range)
	if err := r.tIn.Upload(m, false); err != nil {
		return nil, err
	}
	return r, nil
}

// SetInput rebinds the runner to a new same-shape input matrix.
func (r *TransposeRunner) SetInput(m *codec.Matrix) error {
	if m.Rows != r.in.Rows || m.Cols != r.in.Cols || m.Range != r.in.Range {
		return fmt.Errorf("core: transpose rebind shape or range mismatch")
	}
	r.in = m
	r.out.Range = m.Range
	return r.tIn.Upload(m, true)
}

// RunOnce performs the transpose.
func (r *TransposeRunner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if r.e.cfg.StreamInputs && !r.first {
		if err := r.tIn.Upload(r.in, r.e.cfg.ReuseInputTextures); err != nil {
			return err
		}
	}
	r.first = false
	r.k.BindInput("text0", 0, r.tIn)
	if err := r.k.Dispatch(r.out); err != nil {
		return err
	}
	return r.e.EndIteration()
}

// Result reads the transposed matrix.
func (r *TransposeRunner) Result() (*codec.Matrix, error) { return r.out.Read() }

// Release returns the runner's tensors to the engine pool.
func (r *TransposeRunner) Release() {
	r.tIn.Release()
	r.out.Release()
}

// ReduceRunner computes the sum of all matrix elements with a 2×2 pyramid
// reduction — log2(N) passes over shrinking grids, the standard GPGPU
// reduction shape on APIs without compute primitives. It exercises
// per-pass viewport resizing.
type ReduceRunner struct {
	e      *Engine
	levels []*Kernel
	grids  []*Tensor // grids[0] = input (N), grids[i] = N/2^i
	input  *codec.Matrix
	first  bool
	n      int
}

// NewReduce prepares the reduction of an n×n unit-range matrix (n a power
// of two, matching the engine grid).
func NewReduce(e *Engine, m *codec.Matrix) (*ReduceRunner, error) {
	n := m.Rows
	if m.Cols != n || n != e.cfg.Width || n != e.cfg.Height {
		return nil, fmt.Errorf("core: reduce requires a square matrix matching the engine grid")
	}
	if n&(n-1) != 0 || n < 2 {
		return nil, fmt.Errorf("core: reduce requires a power-of-two size >= 2, got %d", n)
	}
	r := &ReduceRunner{e: e, input: m, first: true, n: n}
	r.grids = append(r.grids, e.NewTensor(n, n, m.Range))
	if err := r.grids[0].Upload(m, false); err != nil {
		return nil, err
	}
	for w := n; w > 1; w /= 2 {
		src, err := kernels.Reduce2x2(w, e.cfg.Kernel)
		if err != nil {
			return nil, err
		}
		k, err := e.CachedKernel(src)
		if err != nil {
			return nil, err
		}
		r.levels = append(r.levels, k)
		r.grids = append(r.grids, e.NewTensor(w/2, w/2, m.Range))
	}
	return r, nil
}

// Levels returns the number of reduction passes.
func (r *ReduceRunner) Levels() int { return len(r.levels) }

// RunOnce performs the full reduction (all pyramid levels), checking ctx
// between levels.
func (r *ReduceRunner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e := r.e
	if e.cfg.StreamInputs && !r.first {
		if err := r.grids[0].Upload(r.input, e.cfg.ReuseInputTextures); err != nil {
			return err
		}
	}
	r.first = false
	for i, k := range r.levels {
		if err := ctx.Err(); err != nil {
			return err
		}
		k.BindInput("text0", 0, r.grids[i])
		if err := k.Dispatch(r.grids[i+1]); err != nil {
			return err
		}
		if err := e.EndIteration(); err != nil {
			return err
		}
	}
	return nil
}

// Result returns the 1×1 matrix holding the mean of all elements.
func (r *ReduceRunner) Result() (*codec.Matrix, error) {
	return r.grids[len(r.grids)-1].Read()
}

// Total returns the sum of all elements (mean × N²).
func (r *ReduceRunner) Total() (float64, error) {
	m, err := r.Result()
	if err != nil {
		return 0, err
	}
	return m.At(0, 0) * float64(r.n) * float64(r.n), nil
}

// Release returns the runner's tensors to the engine pool.
func (r *ReduceRunner) Release() {
	for _, g := range r.grids {
		g.Release()
	}
}

// Conv3x3Runner applies a 3×3 convolution (computer-vision workload).
type Conv3x3Runner struct {
	e     *Engine
	k     *Kernel
	tIn   *Tensor
	out   *Tensor
	img   *codec.Matrix
	wts   [9]float32
	first bool
}

// NewConv3x3 prepares the filter; weights should be normalised so outputs
// stay in the unit range.
func NewConv3x3(e *Engine, img *codec.Matrix, weights [9]float32) (*Conv3x3Runner, error) {
	k, err := e.CachedKernel(kernels.Conv3x3(img.Cols, img.Rows, e.cfg.Kernel))
	if err != nil {
		return nil, err
	}
	r := &Conv3x3Runner{e: e, k: k, img: img, wts: weights, first: true}
	r.tIn = e.NewTensor(img.Rows, img.Cols, img.Range)
	r.out = e.NewTensor(img.Rows, img.Cols, img.Range)
	if err := r.tIn.Upload(img, false); err != nil {
		return nil, err
	}
	return r, nil
}

// SetInputs rebinds the runner to a new same-shape image and weights.
func (r *Conv3x3Runner) SetInputs(img *codec.Matrix, weights [9]float32) error {
	if img.Rows != r.img.Rows || img.Cols != r.img.Cols || img.Range != r.img.Range {
		return fmt.Errorf("core: conv rebind shape or range mismatch")
	}
	r.img = img
	r.wts = weights
	return r.tIn.Upload(img, true)
}

// RunOnce applies the filter once.
func (r *Conv3x3Runner) RunOnce(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if r.e.cfg.StreamInputs && !r.first {
		if err := r.tIn.Upload(r.img, r.e.cfg.ReuseInputTextures); err != nil {
			return err
		}
	}
	r.first = false
	r.k.SetFloats("k", r.wts[:])
	r.k.BindInput("text0", 0, r.tIn)
	if err := r.k.Dispatch(r.out); err != nil {
		return err
	}
	return r.e.EndIteration()
}

// Result reads the filtered image.
func (r *Conv3x3Runner) Result() (*codec.Matrix, error) { return r.out.Read() }

// Release returns the runner's tensors to the engine pool.
func (r *Conv3x3Runner) Release() {
	r.tIn.Release()
	r.out.Release()
}
