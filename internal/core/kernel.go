package core

import (
	"fmt"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/gles"
)

// Kernel is a compiled GPGPU kernel: a linked program drawing the
// full-screen quad.
type Kernel struct {
	e      *Engine
	prog   uint32
	posLoc int
	locs   map[string]int
}

// BuildKernel compiles the fragment source against the shared pass-through
// vertex shader and links it. Compilation failures — including exceeding
// the device's implementation limits, the paper's block-size ceiling —
// surface as errors carrying the driver info log.
func (e *Engine) BuildKernel(fragSource string) (*Kernel, error) {
	gl := e.gl
	vs := gl.CreateShader(gles.VERTEX_SHADER)
	gl.ShaderSource(vs, e.vsSource)
	gl.CompileShader(vs)
	if gl.GetShaderiv(vs, gles.COMPILE_STATUS) != 1 {
		return nil, fmt.Errorf("core: vertex shader: %s", gl.GetShaderInfoLog(vs))
	}
	fs := gl.CreateShader(gles.FRAGMENT_SHADER)
	gl.ShaderSource(fs, fragSource)
	gl.CompileShader(fs)
	if gl.GetShaderiv(fs, gles.COMPILE_STATUS) != 1 {
		return nil, fmt.Errorf("core: fragment shader: %s", gl.GetShaderInfoLog(fs))
	}
	prog := gl.CreateProgram()
	gl.AttachShader(prog, vs)
	gl.AttachShader(prog, fs)
	gl.LinkProgram(prog)
	if gl.GetProgramiv(prog, gles.LINK_STATUS) != 1 {
		return nil, fmt.Errorf("core: link: %s", gl.GetProgramInfoLog(prog))
	}
	k := &Kernel{e: e, prog: prog, locs: make(map[string]int)}
	gl.UseProgram(prog)
	k.posLoc = gl.GetAttribLocation(prog, "a_pos")
	if k.posLoc < 0 {
		return nil, fmt.Errorf("core: kernel vertex shader has no a_pos attribute")
	}
	if err := e.glErr("kernel build"); err != nil {
		return nil, err
	}
	return k, nil
}

// CachedKernel returns the engine's compiled kernel for fragSource,
// building and memoising it on first use. Long-lived engines (serving
// workers) rebuild the same workloads across jobs; the cache skips even the
// program-object and link work that the context-level shader cache cannot.
// Only successful builds are cached, so failures (over-limit block sizes)
// keep their diagnostics. Kernels from the cache are shared: callers must
// re-set uniforms and bindings before each dispatch, which all runners do.
func (e *Engine) CachedKernel(fragSource string) (*Kernel, error) {
	if k, ok := e.kernelCache[fragSource]; ok {
		return k, nil
	}
	k, err := e.BuildKernel(fragSource)
	if err != nil {
		return nil, err
	}
	if e.kernelCache == nil {
		e.kernelCache = make(map[string]*Kernel)
	}
	e.kernelCache[fragSource] = k
	return k, nil
}

// Program returns the GL program object name (for stat priming and
// diagnostics).
func (k *Kernel) Program() uint32 { return k.prog }

// KernelFromProgram wraps an already-installed linked program — the
// pipeline planner's composed programs (gles.ComposePrograms) — in a
// Kernel, so fused passes dispatch through the same Dispatch/BindInput
// machinery as compiled ones.
func (e *Engine) KernelFromProgram(prog uint32) (*Kernel, error) {
	k := &Kernel{e: e, prog: prog, locs: make(map[string]int)}
	k.posLoc = e.gl.GetAttribLocation(prog, "a_pos")
	if k.posLoc < 0 {
		return nil, fmt.Errorf("core: program %d has no a_pos attribute", prog)
	}
	if err := e.glErr("kernel from program"); err != nil {
		return nil, err
	}
	return k, nil
}

func (k *Kernel) loc(name string) int {
	if l, ok := k.locs[name]; ok {
		return l
	}
	k.e.gl.UseProgram(k.prog)
	l := k.e.gl.GetUniformLocation(k.prog, name)
	k.locs[name] = l
	return l
}

// SetFloat sets a float uniform (ignored if the kernel lacks it).
func (k *Kernel) SetFloat(name string, v float32) {
	k.e.gl.UseProgram(k.prog)
	k.e.gl.Uniform1f(k.loc(name), v)
}

// SetFloats sets a float-array uniform.
func (k *Kernel) SetFloats(name string, vals []float32) {
	k.e.gl.UseProgram(k.prog)
	k.e.gl.Uniform1fv(k.loc(name), vals)
}

// BindInput binds a tensor's texture to a texture unit and points the
// named sampler uniform at it.
func (k *Kernel) BindInput(name string, unit int, t *Tensor) {
	gl := k.e.gl
	gl.UseProgram(k.prog)
	gl.ActiveTexture(gles.TEXTURE0 + gles.Enum(unit))
	gl.BindTexture(gles.TEXTURE_2D, t.tex)
	gl.Uniform1i(k.loc(name), unit)
	gl.ActiveTexture(gles.TEXTURE0)
}

// Dispatch launches the kernel once, writing the result into out according
// to the engine's render-target configuration:
//
//   - TargetTexture: out is attached to the FBO and tiles write straight
//     into it (paper Fig. 1 step 5).
//   - TargetFramebuffer: the kernel renders to the window's back buffer
//     and the result is copied out with glCopyTexImage2D (or the Sub
//     variant under output reuse) — paper Fig. 1 steps 3–4.
//
// The windowing-system synchronisation (eglSwapBuffers) is NOT performed
// here; callers end their iteration with Engine.EndIteration so multi-pass
// algorithms control their present points.
func (k *Kernel) Dispatch(out *Tensor) error {
	e := k.e
	gl := e.gl
	cfg := e.cfg
	if cfg.Kernel.Depth == codec.Depth24 {
		gl.ColorMask(true, true, true, false) // fp24: 3-byte stores
	} else {
		gl.ColorMask(true, true, true, true)
	}
	gl.UseProgram(k.prog)
	// The output tensor defines the kernel grid (multi-resolution
	// algorithms such as pyramid reductions shrink it per pass).
	gl.Viewport(0, 0, out.Cols, out.Rows)
	switch cfg.Target {
	case TargetTexture:
		if !out.allocated {
			if err := out.AllocateStorage(); err != nil {
				return err
			}
		}
		gl.BindFramebuffer(gles.FRAMEBUFFER, e.fbo)
		gl.FramebufferTexture2D(gles.FRAMEBUFFER, gles.COLOR_ATTACHMENT0, gles.TEXTURE_2D, out.tex, 0)
		if st := gl.CheckFramebufferStatus(gles.FRAMEBUFFER); st != gles.FRAMEBUFFER_COMPLETE {
			gl.BindFramebuffer(gles.FRAMEBUFFER, 0)
			return fmt.Errorf("core: render FBO incomplete (0x%04X)", uint32(st))
		}
		e.invalidate()
		e.bindQuad(k.posLoc)
		gl.DrawArrays(gles.TRIANGLES, 0, 6)
		gl.BindFramebuffer(gles.FRAMEBUFFER, 0)
	case TargetFramebuffer:
		gl.BindFramebuffer(gles.FRAMEBUFFER, 0)
		e.invalidate()
		e.bindQuad(k.posLoc)
		gl.DrawArrays(gles.TRIANGLES, 0, 6)
		prev := gl.BoundTexture()
		gl.BindTexture(gles.TEXTURE_2D, out.tex)
		if (cfg.ReuseOutputTextures || out.pooled) && out.allocated {
			gl.CopyTexSubImage2D(gles.TEXTURE_2D, 0, 0, 0, 0, 0, out.Cols, out.Rows)
		} else {
			gl.CopyTexImage2D(gles.TEXTURE_2D, 0, gles.RGBA, 0, 0, out.Cols, out.Rows, 0)
			out.allocated = true
		}
		gl.BindTexture(gles.TEXTURE_2D, prev)
	}
	return e.glErr("dispatch")
}

// invalidate marks the current render target's previous contents dead,
// via glClear or EXT_discard_framebuffer per the configuration.
func (e *Engine) invalidate() {
	if !*e.cfg.InvalidateTarget {
		return
	}
	if e.cfg.UseDiscardExtension {
		e.gl.DiscardFramebufferEXT(gles.FRAMEBUFFER, []gles.Enum{gles.COLOR_ATTACHMENT0})
		return
	}
	e.gl.Clear(gles.COLOR_BUFFER_BIT)
}

// EndIteration performs the configured windowing synchronisation for one
// benchmark-body iteration (or one multi-pass step).
func (e *Engine) EndIteration() error {
	return e.swapPerMode()
}
