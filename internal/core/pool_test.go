package core

import (
	"context"
	"testing"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/ref"
)

// runCycle builds a runner, executes it, reads the result back, and
// releases its tensors — the lifecycle a serving worker drives on every
// runner-cache eviction/rebuild.
func runCycle(t *testing.T, e *Engine, kernel string, n int, seed int64) []float64 {
	t.Helper()
	a, b := randMatrix(n, seed), randMatrix(n, seed+1)
	var (
		r   Runner
		err error
	)
	switch kernel {
	case "sum":
		r, err = NewSum(e, a, b)
	case "sgemm":
		r, err = NewSgemm(e, a, b, 16)
	default:
		t.Fatalf("runCycle: kernel %q", kernel)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.Finish()
	out, err := r.Result()
	if err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), out.Data...)
	r.(Releaser).Release()
	return got
}

// TestTensorPoolBitIdentical pins the pool's correctness contract: a
// build/run/release sequence produces bit-for-bit the same matrices with
// the residency pool on and off — pooling may only change allocation work.
func TestTensorPoolBitIdentical(t *testing.T) {
	const n = 32
	mkEngine := func(poolBytes int) *Engine {
		cfg := baseConfig(n)
		cfg.TensorPoolBytes = poolBytes
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	plain := mkEngine(0)
	pooled := mkEngine(32 << 20)

	steps := []struct {
		kernel string
		seed   int64
	}{
		{"sum", 1}, {"sgemm", 3}, {"sum", 5}, {"sgemm", 7}, {"sum", 1},
	}
	for i, st := range steps {
		want := runCycle(t, plain, st.kernel, n, st.seed)
		got := runCycle(t, pooled, st.kernel, n, st.seed)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("step %d (%s seed %d): out[%d] = %v pooled vs %v plain — pool must be bit-invisible",
					i, st.kernel, st.seed, k, got[k], want[k])
			}
		}
	}

	st := pooled.TensorPool().Stats()
	if st.Hits == 0 {
		t.Errorf("pool hits = 0 after %d rebuild cycles, want > 0", len(steps))
	}
	if st.Released == 0 {
		t.Error("pool released = 0, want > 0")
	}
	if plain.TensorPool() != nil {
		t.Error("pool disabled engine unexpectedly has a pool")
	}
}

// TestTensorPoolEviction drives the pool over a tiny byte budget and checks
// the FIFO eviction accounting: LiveBytes stays within budget, evictions
// are counted, and recycled-after-eviction runs stay correct.
func TestTensorPoolEviction(t *testing.T) {
	const n = 16
	cfg := baseConfig(n)
	// Budget for exactly two n×n tensors: releasing a runner's three or
	// more tensors must evict the oldest.
	budget := 2 * n * n * 4
	cfg.TensorPoolBytes = budget
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}

	got := runCycle(t, e, "sum", n, 1)
	a, b := randMatrix(n, 1), randMatrix(n, 2)
	want := make([]float64, n*n)
	ref.Sum(a.Data, b.Data, want)
	if d := ref.MaxAbsDiff(want, got); d > 1e-3 {
		t.Fatalf("sum before eviction: max error %g", d)
	}
	st := e.TensorPool().Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with a %d-byte budget after releasing a runner: %+v", budget, st)
	}
	if st.LiveBytes > budget {
		t.Fatalf("pool holds %d bytes, budget %d", st.LiveBytes, budget)
	}

	// Rebuild after eviction: some tensors recycle, some re-allocate;
	// numbers must be unchanged either way.
	got2 := runCycle(t, e, "sum", n, 1)
	for k := range got {
		if got2[k] != got[k] {
			t.Fatalf("post-eviction rerun: out[%d] = %v, first run %v", k, got2[k], got[k])
		}
	}
	st = e.TensorPool().Stats()
	if st.Hits == 0 {
		t.Errorf("no pool hits on rebuild: %+v", st)
	}
	if st.LiveBytes > budget {
		t.Errorf("pool holds %d bytes after rerun, budget %d", st.LiveBytes, budget)
	}
}

// TestTensorPoolShapeMiss: a pooled tensor only serves its exact shape.
func TestTensorPoolShapeMiss(t *testing.T) {
	cfg := baseConfig(16)
	cfg.TensorPoolBytes = 1 << 20
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t1 := e.NewTensor(16, 16, codec.Unit)
	if err := t1.Upload(randMatrix(16, 1), false); err != nil {
		t.Fatal(err)
	}
	t1.Release()
	if st := e.TensorPool().Stats(); st.Released != 1 {
		t.Fatalf("released = %d, want 1", st.Released)
	}
	t2 := e.NewTensor(8, 8, codec.Unit) // different shape: miss
	t3 := e.NewTensor(16, 16, codec.Unit)
	_ = t2
	_ = t3
	st := e.TensorPool().Stats()
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1 (only the 16x16 reacquire)", st.Hits)
	}
	if st.Misses < 1 {
		t.Errorf("misses = %d, want >= 1 (the 8x8 request)", st.Misses)
	}
}
