package core

import (
	"fmt"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/gles"
)

// Tensor is a matrix resident in GPU memory as an RGBA8-encoded texture.
type Tensor struct {
	e          *Engine
	tex        uint32
	Rows, Cols int
	Range      codec.Range
	allocated  bool
	// pooled marks tensors recycled through the engine's TensorPool:
	// their storage is live, so uploads take the glTexSubImage2D path
	// even when the engine configuration does not opt into reuse.
	pooled bool
}

// NewTensor creates an empty tensor (texture storage is allocated lazily on
// the first Upload, AllocateStorage or framebuffer copy). With the engine's
// tensor pool enabled, a released allocation of matching shape is recycled
// instead — already-live storage whose next upload is a sub-image write.
func (e *Engine) NewTensor(rows, cols int, rng codec.Range) *Tensor {
	if e.pool != nil {
		if t := e.pool.get(rows, cols); t != nil {
			t.Range = rng
			t.pooled = true
			return t
		}
	}
	t := &Tensor{e: e, tex: e.gl.GenTexture(), Rows: rows, Cols: cols, Range: rng}
	gl := e.gl
	gl.BindTexture(gles.TEXTURE_2D, t.tex)
	gl.TexParameteri(gles.TEXTURE_2D, gles.TEXTURE_MIN_FILTER, gles.NEAREST)
	gl.TexParameteri(gles.TEXTURE_2D, gles.TEXTURE_MAG_FILTER, gles.NEAREST)
	gl.TexParameteri(gles.TEXTURE_2D, gles.TEXTURE_WRAP_S, gles.CLAMP_TO_EDGE)
	gl.TexParameteri(gles.TEXTURE_2D, gles.TEXTURE_WRAP_T, gles.CLAMP_TO_EDGE)
	return t
}

// Texture returns the GL texture name.
func (t *Tensor) Texture() uint32 { return t.tex }

// AllocateStorage defines texture storage without uploading data (needed
// before a tensor is used as an FBO attachment or a Sub-image destination).
func (t *Tensor) AllocateStorage() error {
	gl := t.e.gl
	prev := gl.BoundTexture()
	gl.BindTexture(gles.TEXTURE_2D, t.tex)
	gl.TexImage2D(gles.TEXTURE_2D, 0, gles.RGBA, t.Cols, t.Rows, gles.RGBA, gles.UNSIGNED_BYTE, nil)
	gl.BindTexture(gles.TEXTURE_2D, prev)
	t.allocated = true
	return t.e.glErr("tensor storage")
}

// Upload encodes m and transfers it to the texture. With reuse the upload
// goes through glTexSubImage2D into live storage; otherwise glTexImage2D
// allocates fresh storage (the paper's texture-loading trade-off).
func (t *Tensor) Upload(m *codec.Matrix, reuse bool) error {
	if m.Rows != t.Rows || m.Cols != t.Cols {
		return fmt.Errorf("core: upload shape %dx%d into tensor %dx%d", m.Rows, m.Cols, t.Rows, t.Cols)
	}
	t.Range = m.Range
	var data []byte
	if !t.e.gl.TimingOnly() {
		data = m.EncodeTexture(t.e.cfg.Kernel.Depth)
	} else {
		// Replay mode: size matters, contents do not.
		data = t.e.scratch(t.Rows * t.Cols * 4)
	}
	gl := t.e.gl
	prev := gl.BoundTexture()
	gl.BindTexture(gles.TEXTURE_2D, t.tex)
	if (reuse || t.pooled) && t.allocated {
		gl.TexSubImage2D(gles.TEXTURE_2D, 0, 0, 0, t.Cols, t.Rows, gles.RGBA, gles.UNSIGNED_BYTE, data)
	} else {
		gl.TexImage2D(gles.TEXTURE_2D, 0, gles.RGBA, t.Cols, t.Rows, gles.RGBA, gles.UNSIGNED_BYTE, data)
		t.allocated = true
	}
	gl.BindTexture(gles.TEXTURE_2D, prev)
	return t.e.glErr("tensor upload")
}

// UploadEncoded uploads pre-encoded texel bytes (len rows*cols*4).
func (t *Tensor) UploadEncoded(data []byte, reuse bool) error {
	gl := t.e.gl
	prev := gl.BoundTexture()
	gl.BindTexture(gles.TEXTURE_2D, t.tex)
	if (reuse || t.pooled) && t.allocated {
		gl.TexSubImage2D(gles.TEXTURE_2D, 0, 0, 0, t.Cols, t.Rows, gles.RGBA, gles.UNSIGNED_BYTE, data)
	} else {
		gl.TexImage2D(gles.TEXTURE_2D, 0, gles.RGBA, t.Cols, t.Rows, gles.RGBA, gles.UNSIGNED_BYTE, data)
		t.allocated = true
	}
	gl.BindTexture(gles.TEXTURE_2D, prev)
	return t.e.glErr("tensor upload")
}

// Read transfers the tensor back to the host and decodes it into a matrix
// using the tensor's range. GLES2 has no texture readback, so the texture
// is attached to a scratch FBO and read with glReadPixels, exactly like
// real clients do.
func (t *Tensor) Read() (*codec.Matrix, error) {
	if !t.allocated {
		return nil, fmt.Errorf("core: reading unallocated tensor")
	}
	gl := t.e.gl
	gl.BindFramebuffer(gles.FRAMEBUFFER, t.e.readFBO)
	gl.FramebufferTexture2D(gles.FRAMEBUFFER, gles.COLOR_ATTACHMENT0, gles.TEXTURE_2D, t.tex, 0)
	if st := gl.CheckFramebufferStatus(gles.FRAMEBUFFER); st != gles.FRAMEBUFFER_COMPLETE {
		gl.BindFramebuffer(gles.FRAMEBUFFER, 0)
		return nil, fmt.Errorf("core: readback FBO incomplete (0x%04X)", uint32(st))
	}
	// The engine scratch buffer is safe here: DecodeTexture copies the
	// bytes out into the matrix before the next engine call can reuse it.
	buf := t.e.scratch(t.Rows * t.Cols * 4)
	gl.ReadPixels(0, 0, t.Cols, t.Rows, gles.RGBA, gles.UNSIGNED_BYTE, buf)
	gl.BindFramebuffer(gles.FRAMEBUFFER, 0)
	if err := t.e.glErr("tensor read"); err != nil {
		return nil, err
	}
	m := codec.NewMatrix(t.Rows, t.Cols)
	m.Range = t.Range
	if err := m.DecodeTexture(t.e.cfg.Kernel.Depth, buf); err != nil {
		return nil, err
	}
	return m, nil
}

// ReadRaw transfers the tensor's raw RGBA texel bytes back to the host
// (len rows*cols*4) without decoding them into a matrix. State-stepping
// workloads that pack arbitrary channel layouts (particle positions and
// velocities, reaction-diffusion species) read their state this way; the
// returned slice is freshly allocated and safe to retain.
func (t *Tensor) ReadRaw() ([]byte, error) {
	if !t.allocated {
		return nil, fmt.Errorf("core: reading unallocated tensor")
	}
	gl := t.e.gl
	gl.BindFramebuffer(gles.FRAMEBUFFER, t.e.readFBO)
	gl.FramebufferTexture2D(gles.FRAMEBUFFER, gles.COLOR_ATTACHMENT0, gles.TEXTURE_2D, t.tex, 0)
	if st := gl.CheckFramebufferStatus(gles.FRAMEBUFFER); st != gles.FRAMEBUFFER_COMPLETE {
		gl.BindFramebuffer(gles.FRAMEBUFFER, 0)
		return nil, fmt.Errorf("core: readback FBO incomplete (0x%04X)", uint32(st))
	}
	buf := make([]byte, t.Rows*t.Cols*4)
	gl.ReadPixels(0, 0, t.Cols, t.Rows, gles.RGBA, gles.UNSIGNED_BYTE, buf)
	gl.BindFramebuffer(gles.FRAMEBUFFER, 0)
	if err := t.e.glErr("tensor read"); err != nil {
		return nil, err
	}
	return buf, nil
}

// Free releases the texture.
func (t *Tensor) Free() {
	t.e.gl.DeleteTexture(t.tex)
	t.allocated = false
	t.pooled = false
}

// Release returns the tensor to the engine's residency pool for reuse by a
// later NewTensor of the same shape; without a pool it frees the texture.
// The tensor must not be used after Release.
func (t *Tensor) Release() {
	if t == nil {
		return
	}
	if t.e.pool != nil {
		t.e.pool.put(t)
		return
	}
	t.Free()
}
