package core

import (
	"context"
	"fmt"
	"math"

	"gles2gpgpu/internal/codec"
)

// PingPong is a double-buffered tensor pair for state-stepping workloads:
// each step reads the current tensor and writes the next, then the roles
// swap. This is the canonical GPGPU-on-GLES2 iteration structure (texture
// feedback through two FBO-attachable textures), and the access pattern the
// cross-iteration tile-coherence cache is built for: the step kernel, its
// uniforms and its geometry are identical every iteration, so tiles whose
// sampled state bytes stopped changing are elided.
type PingPong struct {
	e    *Engine
	grid [2]*Tensor
	cur  int
}

// NewPingPong allocates a double-buffered pair of rows x cols tensors
// (through the engine's tensor pool when one is enabled).
func (e *Engine) NewPingPong(rows, cols int, rng codec.Range) *PingPong {
	return &PingPong{e: e, grid: [2]*Tensor{
		e.NewTensor(rows, cols, rng),
		e.NewTensor(rows, cols, rng),
	}}
}

// Cur returns the tensor holding the current state (the next step's input).
func (p *PingPong) Cur() *Tensor { return p.grid[p.cur] }

// Next returns the tensor the next step writes into.
func (p *PingPong) Next() *Tensor { return p.grid[1-p.cur] }

// Swap makes the most recently written tensor current.
func (p *PingPong) Swap() { p.cur = 1 - p.cur }

// Upload seeds the current state from a matrix.
func (p *PingPong) Upload(m *codec.Matrix) error { return p.Cur().Upload(m, false) }

// UploadEncoded seeds the current state from pre-encoded texel bytes.
func (p *PingPong) UploadEncoded(data []byte) error { return p.Cur().UploadEncoded(data, false) }

// Read decodes the current state into a matrix.
func (p *PingPong) Read() (*codec.Matrix, error) { return p.Cur().Read() }

// ReadRaw reads the current state's raw RGBA texel bytes.
func (p *PingPong) ReadRaw() ([]byte, error) { return p.Cur().ReadRaw() }

// Release returns both tensors to the engine's residency pool.
func (p *PingPong) Release() {
	p.grid[0].Release()
	p.grid[1].Release()
}

// StepOpts controls a StepLoop run.
type StepOpts struct {
	// MaxIters bounds the iteration count (required, > 0).
	MaxIters int

	// CheckEvery is how often (in iterations) the loop reads the state
	// back and evaluates Residual. 0 means never: the loop runs exactly
	// MaxIters steps. Readback is the expensive GLES2 sync point, so
	// convergence-driven workloads amortise it over many steps.
	CheckEvery int

	// Tol is the convergence threshold: the loop stops once Residual
	// reports a value <= Tol.
	Tol float64

	// Residual measures progress between two consecutive residual checks
	// (prev is nil on the first check). Nil defaults to the maximum
	// absolute element difference between checks, which reaches 0 exactly
	// when the encoded state bytes stop changing — the same fixed point
	// the tile-coherence cache detects per tile.
	Residual func(prev, cur *codec.Matrix) float64

	// ResidualRaw, when non-nil, takes precedence over Residual: the
	// loop reads raw RGBA state bytes instead of decoding a matrix.
	// Raw-state workloads (particles, reaction-diffusion, 8-bit jacobi)
	// converge in byte space; MaxByteDiff is the usual choice.
	ResidualRaw func(prev, cur []byte) float64
}

// StepResult reports how a StepLoop ended.
type StepResult struct {
	Iters     int     // steps actually executed
	Converged bool    // stopped because Residual <= Tol
	Residual  float64 // last measured residual (NaN if never checked)
}

// MaxAbsDiff is the default StepLoop residual: the maximum absolute
// element-wise difference between two matrices (+Inf when prev is nil).
func MaxAbsDiff(prev, cur *codec.Matrix) float64 {
	if prev == nil {
		return math.Inf(1)
	}
	var max float64
	for i := range cur.Data {
		d := math.Abs(cur.Data[i] - prev.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// MaxByteDiff is the raw-state analogue of MaxAbsDiff: the maximum
// absolute byte difference between two raw RGBA states, scaled to [0, 1]
// (+Inf when prev is nil). It reaches 0 exactly at the byte fixed point
// where the coherence cache elides every tile.
func MaxByteDiff(prev, cur []byte) float64 {
	if prev == nil {
		return math.Inf(1)
	}
	var max int
	for i := range cur {
		d := int(cur[i]) - int(prev[i])
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return float64(max) / 255
}

// StepLoop drives a ping-pong state-stepping iteration: each call to step
// receives the iteration index, the current input tensor and the output
// tensor; after it returns the pair swaps and the engine's iteration-end
// synchronisation runs. With CheckEvery > 0 the loop periodically reads the
// state back and stops early once the residual drops to Tol. Cancellation
// via ctx is checked every iteration.
func (e *Engine) StepLoop(ctx context.Context, p *PingPong, opts StepOpts, step func(i int, in, out *Tensor) error) (StepResult, error) {
	if opts.MaxIters <= 0 {
		return StepResult{}, fmt.Errorf("core: StepLoop needs MaxIters > 0")
	}
	res := StepResult{Residual: math.NaN()}
	residual := opts.Residual
	if residual == nil {
		residual = MaxAbsDiff
	}
	var prevM *codec.Matrix
	var prevRaw []byte
	for i := 0; i < opts.MaxIters; i++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if err := step(i, p.Cur(), p.Next()); err != nil {
			return res, err
		}
		p.Swap()
		if err := e.EndIteration(); err != nil {
			return res, err
		}
		res.Iters = i + 1
		if opts.CheckEvery > 0 && (i+1)%opts.CheckEvery == 0 {
			if opts.ResidualRaw != nil {
				cur, err := p.ReadRaw()
				if err != nil {
					return res, err
				}
				res.Residual = opts.ResidualRaw(prevRaw, cur)
				prevRaw = cur
			} else {
				cur, err := p.Read()
				if err != nil {
					return res, err
				}
				res.Residual = residual(prevM, cur)
				prevM = cur
			}
			if res.Residual <= opts.Tol {
				res.Converged = true
				return res, nil
			}
		}
	}
	return res, nil
}
