package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"testing"

	"gles2gpgpu/internal/codec"
	"gles2gpgpu/internal/timing"
)

// Coherence parity matrix: every state-stepping workload must produce
// bit-identical final state, identical virtual time and identical step
// behaviour across {coherence on/off} × {workers 1/4} × {jit/interp/lanes}.
// Elision is a host-time optimisation only; these tests are the contract.

// cohTestPlate is the jacobi boundary condition: hot left edge.
func cohTestPlate(n int) *codec.Matrix {
	g := codec.NewMatrix(n, n)
	for y := 0; y < n; y++ {
		g.Set(y, 0, 0.9)
	}
	return g
}

// float64Bytes flattens a float64 slice for exact byte comparison.
func float64Bytes(data []float64) []byte {
	out := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// cohCell is one configuration of the parity matrix.
type cohCell struct {
	name      string
	coherence bool
	workers   int
	noJIT     bool
	noLanes   bool
}

var cohCells = []cohCell{
	{"off-w1-jit", false, 1, false, false}, // the reference cell
	{"on-w1-jit", true, 1, false, false},
	{"on-w4-jit", true, 4, false, false},
	{"on-w1-interp", true, 1, true, false},
	{"on-w4-nolanes", true, 4, false, true},
	{"off-w4-jit", false, 4, false, false},
}

// cohRunWorkload builds an engine for the cell, steps the workload and
// returns the final state bytes plus the engine's counters.
type cohOutcome struct {
	state          []byte
	now            timing.Time
	elided, shaded int64
}

func cohRunCell(t *testing.T, c cohCell, n, iters int,
	run func(e *Engine, iters int) ([]byte, error)) cohOutcome {
	t.Helper()
	cfg := baseConfig(n)
	cfg.Workers = c.workers
	cfg.NoJIT = c.noJIT
	cfg.NoLanes = c.noLanes
	cfg.NoCoherence = !c.coherence
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	state, err := run(e, iters)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	e.Finish()
	elided, shaded := e.CoherenceStats()
	return cohOutcome{state: state, now: e.Now(), elided: elided, shaded: shaded}
}

func TestCoherenceParityMatrix(t *testing.T) {
	const n, iters = 64, 60
	workloads := []struct {
		name string
		run  func(e *Engine, iters int) ([]byte, error)
		// wantElision: the workload has byte-static regions at this size, so
		// the coherent cells must actually elide (not just agree).
		wantElision bool
	}{
		{"jacobi8", func(e *Engine, iters int) ([]byte, error) {
			r, err := NewJacobi8(e, cohTestPlate(n))
			if err != nil {
				return nil, err
			}
			defer r.Release()
			for i := 0; i < iters; i++ {
				if err := r.RunOnce(context.Background()); err != nil {
					return nil, err
				}
			}
			return r.State()
		}, true},
		{"particles", func(e *Engine, iters int) ([]byte, error) {
			r, err := NewParticles(e, 42)
			if err != nil {
				return nil, err
			}
			defer r.Release()
			for i := 0; i < iters; i++ {
				if err := r.RunOnce(context.Background()); err != nil {
					return nil, err
				}
			}
			return r.State()
		}, false},
		{"reaction-diffusion", func(e *Engine, iters int) ([]byte, error) {
			r, err := NewReactionDiffusion(e)
			if err != nil {
				return nil, err
			}
			defer r.Release()
			for i := 0; i < iters; i++ {
				if err := r.RunOnce(context.Background()); err != nil {
					return nil, err
				}
			}
			return r.State()
		}, false},
		// Codec-precision jacobi: the [13]-encoded path, compared through
		// its decoded float64 result (a pure function of the result bytes).
		{"jacobi-codec", func(e *Engine, iters int) ([]byte, error) {
			r, err := NewJacobi(e, cohTestPlate(n))
			if err != nil {
				return nil, err
			}
			defer r.Release()
			for i := 0; i < iters; i++ {
				if err := r.RunOnce(context.Background()); err != nil {
					return nil, err
				}
			}
			m, err := r.Result()
			if err != nil {
				return nil, err
			}
			return float64Bytes(m.Data), nil
		}, true},
	}

	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			ref := cohRunCell(t, cohCells[0], n, iters, w.run)
			if ref.elided != 0 {
				t.Fatalf("reference cell elided %d tiles with coherence off", ref.elided)
			}
			for _, c := range cohCells[1:] {
				got := cohRunCell(t, c, n, iters, w.run)
				if !bytes.Equal(ref.state, got.state) {
					for i := range ref.state {
						if ref.state[i] != got.state[i] {
							t.Fatalf("%s: state diverges at byte %d: reference %d, got %d",
								c.name, i, ref.state[i], got.state[i])
						}
					}
				}
				if got.now != ref.now {
					t.Errorf("%s: virtual time %v, reference %v (elision must not touch the modelled device)",
						c.name, got.now, ref.now)
				}
				if !c.coherence && got.elided != 0 {
					t.Errorf("%s: elided %d tiles with coherence off", c.name, got.elided)
				}
				if c.coherence && w.wantElision && got.elided == 0 {
					t.Errorf("%s: no tiles elided; expected byte-static regions to replay", c.name)
				}
			}
		})
	}
}

// TestCoherenceConvergenceParity runs jacobi8 to byte convergence with the
// cache on and off: identical step counts, residuals and final bytes.
func TestCoherenceConvergenceParity(t *testing.T) {
	const n = 64
	run := func(coherence bool) (StepResult, []byte) {
		cfg := baseConfig(n)
		cfg.NoCoherence = !coherence
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewJacobi8(e, cohTestPlate(n))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Release()
		res, err := r.RunToConvergence(context.Background(), StepOpts{
			MaxIters: 2000, CheckEvery: 50, Tol: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		state, err := r.State()
		if err != nil {
			t.Fatal(err)
		}
		return res, state
	}
	onRes, onState := run(true)
	offRes, offState := run(false)
	if onRes != offRes {
		t.Errorf("convergence diverges: %+v with coherence on, %+v off", onRes, offRes)
	}
	if !bytes.Equal(onState, offState) {
		t.Error("converged state bytes differ with coherence on vs off")
	}
	if !onRes.Converged {
		t.Errorf("jacobi8 did not reach a byte fixed point in %d iters", onRes.Iters)
	}
}
