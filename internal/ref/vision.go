package ref

import "math"

// Reference implementations of the computer-vision kernel suite
// (internal/kernels/vision.go). All operate on row-major w×h scalar
// fields in [0,1], mirroring the GPU kernels' arithmetic (including the
// bias/scale conventions for signed gradients) in float64.

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// GaussBlurX applies the horizontal 3-tap Gaussian (1/4, 1/2, 1/4) with
// clamp-to-edge boundaries.
func GaussBlurX(w, h int, src, dst []float64) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a := src[y*w+clampIdx(x-1, w)]
			b := src[y*w+x]
			c := src[y*w+clampIdx(x+1, w)]
			dst[y*w+x] = 0.25*a + 0.5*b + 0.25*c
		}
	}
}

// GaussBlurY applies the vertical 3-tap Gaussian with clamp-to-edge
// boundaries.
func GaussBlurY(w, h int, src, dst []float64) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a := src[clampIdx(y-1, h)*w+x]
			b := src[y*w+x]
			c := src[clampIdx(y+1, h)*w+x]
			dst[y*w+x] = 0.25*a + 0.5*b + 0.25*c
		}
	}
}

// BoxMeanX applies the horizontal (2r+1)-tap box mean with clamp-to-edge
// boundaries.
func BoxMeanX(w, h, r int, src, dst []float64) {
	inv := 1.0 / float64(2*r+1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float64
			for k := -r; k <= r; k++ {
				acc += src[y*w+clampIdx(x+k, w)]
			}
			dst[y*w+x] = acc * inv
		}
	}
}

// BoxMeanY applies the vertical (2r+1)-tap box mean with clamp-to-edge
// boundaries.
func BoxMeanY(w, h, r int, src, dst []float64) {
	inv := 1.0 / float64(2*r+1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float64
			for k := -r; k <= r; k++ {
				acc += src[clampIdx(y+k, h)*w+x]
			}
			dst[y*w+x] = acc * inv
		}
	}
}

// ScaleBias applies out = clamp(v*scale + bias, 0, 1).
func ScaleBias(scale, bias float64, src, dst []float64) {
	for i, v := range src {
		dst[i] = clamp01(v*scale + bias)
	}
}

// GammaMap applies out = max(v,0)^gamma.
func GammaMap(gamma float64, src, dst []float64) {
	for i, v := range src {
		dst[i] = math.Pow(math.Max(v, 0), gamma)
	}
}

// DiffShift applies out = clamp(a - b + 0.5, 0, 1).
func DiffShift(a, b, dst []float64) {
	for i := range dst {
		dst[i] = clamp01(a[i] - b[i] + 0.5)
	}
}

// Binarize applies out = 1 when v >= thresh, else 0.
func Binarize(thresh float64, src, dst []float64) {
	for i, v := range src {
		if v >= thresh {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
}

var sobelXK = [9]float64{-1, 0, 1, -2, 0, 2, -1, 0, 1}
var sobelYK = [9]float64{-1, -2, -1, 0, 0, 0, 1, 2, 1}

func sobelPass(w, h int, k [9]float64, src, dst []float64) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float64
			ki := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if k[ki] != 0 {
						acc += k[ki] * src[clampIdx(y+dy, h)*w+clampIdx(x+dx, w)]
					}
					ki++
				}
			}
			dst[y*w+x] = clamp01(0.5 + acc*0.125)
		}
	}
}

// SobelX computes the horizontal Sobel gradient, stored biased as
// 0.5 + gx/8 like the GPU kernel.
func SobelX(w, h int, src, dst []float64) { sobelPass(w, h, sobelXK, src, dst) }

// SobelY computes the vertical Sobel gradient, stored biased.
func SobelY(w, h int, src, dst []float64) { sobelPass(w, h, sobelYK, src, dst) }

// GradMag computes the normalised gradient magnitude from two biased
// Sobel fields: sqrt(gx² + gy²)/(4√2) with gx = (v-0.5)*8.
func GradMag(gx, gy, dst []float64) {
	const norm = 1.0 / (4.0 * math.Sqrt2)
	for i := range dst {
		x := (gx[i] - 0.5) * 8
		y := (gy[i] - 0.5) * 8
		dst[i] = clamp01(math.Sqrt(x*x+y*y) * norm)
	}
}

// NonMaxSuppress keeps a magnitude pixel when it is at least as large as
// both horizontal neighbours or both vertical neighbours, else zeroes it.
func NonMaxSuppress(w, h int, m, dst []float64) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := m[y*w+x]
			l := m[y*w+clampIdx(x-1, w)]
			r := m[y*w+clampIdx(x+1, w)]
			u := m[clampIdx(y-1, h)*w+x]
			d := m[clampIdx(y+1, h)*w+x]
			if v >= math.Max(l, r) || v >= math.Max(u, d) {
				dst[y*w+x] = v
			} else {
				dst[y*w+x] = 0
			}
		}
	}
}

// Reduce2x2Mean averages disjoint 2×2 blocks of a w×w field into a
// (w/2)×(w/2) field — one pyramid level.
func Reduce2x2Mean(w int, src, dst []float64) {
	half := w / 2
	for y := 0; y < half; y++ {
		for x := 0; x < half; x++ {
			s := src[(2*y)*w+2*x] + src[(2*y)*w+2*x+1] +
				src[(2*y+1)*w+2*x] + src[(2*y+1)*w+2*x+1]
			dst[y*half+x] = s * 0.25
		}
	}
}

// SplineMap applies the piecewise-linear hinge map
// out = clamp(p0 + Σ_k s[k]·max(v - k/K, 0), 0, 1) with K = len(s),
// accumulating in the same order as the GPU kernel.
func SplineMap(p0 float64, s []float64, src, dst []float64) {
	k := float64(len(s))
	for i, v := range src {
		acc := p0
		for j := range s {
			acc += s[j] * math.Max(v-float64(j)/k, 0)
		}
		dst[i] = clamp01(acc)
	}
}

// HistEqSpline fits the hinge-map coefficients for histogram equalisation:
// the empirical CDF of src is sampled at knots+1 evenly spaced points and
// interpolated piecewise-linearly. Feeding the result to SplineMap (or the
// SplineMap kernel) remaps src so its histogram is approximately flat.
func HistEqSpline(src []float64, knots int) (p0 float64, s []float64) {
	cdf := make([]float64, knots+1)
	n := float64(len(src))
	for _, v := range src {
		// Count v against every knot at or above it.
		k := int(math.Ceil(v * float64(knots)))
		if k < 0 {
			k = 0
		}
		if k > knots {
			k = knots
		}
		for ; k <= knots; k++ {
			cdf[k]++
		}
	}
	for k := range cdf {
		cdf[k] /= n
	}
	p0 = cdf[0]
	s = make([]float64, knots)
	prev := 0.0
	for k := 0; k < knots; k++ {
		slope := (cdf[k+1] - cdf[k]) * float64(knots)
		s[k] = slope - prev
		prev = slope
	}
	return p0, s
}

// ContrastStretch returns the scale/bias mapping [min,max] of src onto
// [0,1] (identity for a constant field).
func ContrastStretch(src []float64) (scale, bias float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range src {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo < 1e-9 {
		return 1, 0
	}
	scale = 1 / (hi - lo)
	return scale, -lo * scale
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
