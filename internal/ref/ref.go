// Package ref provides CPU reference implementations of every kernel the
// GPGPU framework runs, used to validate the GPU results numerically.
package ref

// Sum computes c = a + b elementwise.
func Sum(a, b, c []float64) {
	for i := range c {
		c[i] = a[i] + b[i]
	}
}

// Saxpy computes y = alpha*x + y elementwise.
func Saxpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] = alpha*x[i] + y[i]
	}
}

// Sgemm computes C = A·B for row-major n×n matrices.
func Sgemm(n int, a, b, c []float64) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
}

// SgemmBlocked computes C = A·B in passes of block columns, mirroring the
// GPU multi-pass accumulation order (useful when comparing against
// precision-limited GPU accumulation).
func SgemmBlocked(n, block int, a, b, c []float64) {
	for i := range c {
		c[i] = 0
	}
	for k0 := 0; k0 < n; k0 += block {
		k1 := k0 + block
		if k1 > n {
			k1 = n
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				acc := c[i*n+j]
				for k := k0; k < k1; k++ {
					acc += a[i*n+k] * b[k*n+j]
				}
				c[i*n+j] = acc
			}
		}
	}
}

// Convolve3x3 applies a 3×3 kernel with clamp-to-edge boundaries to a w×h
// image.
func Convolve3x3(w, h int, src []float64, k [9]float64, dst []float64) {
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		if x >= w {
			x = w - 1
		}
		if y >= h {
			y = h - 1
		}
		return src[y*w+x]
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var acc float64
			ki := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					acc += k[ki] * at(x+dx, y+dy)
					ki++
				}
			}
			dst[y*w+x] = acc
		}
	}
}

// JacobiStep performs one Jacobi iteration for the 2D Laplace equation on
// a w×h grid with Dirichlet boundaries (boundary cells are copied).
func JacobiStep(w, h int, src, dst []float64) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if x == 0 || y == 0 || x == w-1 || y == h-1 {
				dst[i] = src[i]
				continue
			}
			dst[i] = 0.25 * (src[i-1] + src[i+1] + src[i-w] + src[i+w])
		}
	}
}

// MaxAbsDiff returns the largest elementwise |a-b|.
func MaxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
