package ref

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSum(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	c := make([]float64, 3)
	Sum(a, b, c)
	if c[0] != 11 || c[1] != 22 || c[2] != 33 {
		t.Errorf("c = %v", c)
	}
}

func TestSaxpy(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	Saxpy(3, x, y)
	if y[0] != 13 || y[1] != 26 {
		t.Errorf("y = %v", y)
	}
}

func TestSgemmIdentity(t *testing.T) {
	n := 4
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i*n+i] = 1
	}
	b := make([]float64, n*n)
	for i := range b {
		b[i] = float64(i)
	}
	c := make([]float64, n*n)
	Sgemm(n, a, b, c)
	if MaxAbsDiff(b, c) != 0 {
		t.Error("I*B != B")
	}
}

func TestSgemmBlockedMatchesSgemm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	want := make([]float64, n*n)
	Sgemm(n, a, b, want)
	for _, blk := range []int{1, 2, 3, 4, 6, 12} {
		got := make([]float64, n*n)
		SgemmBlocked(n, blk, a, b, got)
		if d := MaxAbsDiff(want, got); d > 1e-12 {
			t.Errorf("block %d: diff %g", blk, d)
		}
	}
}

func TestSgemmBlockedProperty(t *testing.T) {
	f := func(seed int64, blkRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		blk := int(blkRaw%8) + 1
		a := make([]float64, n*n)
		b := make([]float64, n*n)
		for i := range a {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		want := make([]float64, n*n)
		got := make([]float64, n*n)
		Sgemm(n, a, b, want)
		SgemmBlocked(n, blk, a, b, got)
		return MaxAbsDiff(want, got) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConvolve3x3Identity(t *testing.T) {
	w, h := 5, 4
	src := make([]float64, w*h)
	for i := range src {
		src[i] = float64(i) * 0.1
	}
	dst := make([]float64, w*h)
	var id [9]float64
	id[4] = 1
	Convolve3x3(w, h, src, id, dst)
	if MaxAbsDiff(src, dst) != 0 {
		t.Error("identity kernel changed the image")
	}
}

func TestConvolve3x3BoxBlurConstant(t *testing.T) {
	w, h := 6, 6
	src := make([]float64, w*h)
	for i := range src {
		src[i] = 0.5
	}
	var box [9]float64
	for i := range box {
		box[i] = 1.0 / 9
	}
	dst := make([]float64, w*h)
	Convolve3x3(w, h, src, box, dst)
	for i, v := range dst {
		if math.Abs(v-0.5) > 1e-12 {
			t.Fatalf("pixel %d = %g (clamp-to-edge blur of constant must be constant)", i, v)
		}
	}
}

func TestJacobiStepConvergesOnAverage(t *testing.T) {
	w, h := 8, 8
	a := make([]float64, w*h)
	b := make([]float64, w*h)
	// Hot left edge.
	for y := 0; y < h; y++ {
		a[y*w] = 1
	}
	cur, nxt := a, b
	for it := 0; it < 500; it++ {
		JacobiStep(w, h, cur, nxt)
		cur, nxt = nxt, cur
	}
	// Interior next to the hot edge must have warmed up.
	if cur[3*w+1] <= 0.2 {
		t.Errorf("interior value %g did not converge toward boundary", cur[3*w+1])
	}
	// Boundaries preserved.
	if cur[3*w] != 1 || cur[3*w+w-1] != 0 {
		t.Error("Dirichlet boundaries not preserved")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	if MaxAbsDiff([]float64{1, 5, 2}, []float64{1, 2, 4}) != 3 {
		t.Error("MaxAbsDiff wrong")
	}
}
