package gles

// Host-parallel fragment shading.
//
// The simulator's virtual-time model is unaffected by how fast the host
// computes a draw, so the fragment stage — by far the dominant host cost —
// can be spread over OS threads as long as the results stay bit-identical
// to serial execution:
//
//   - Triangles are shaded in horizontal bands (raster.Bands). Every band
//     worker walks ALL primitives in submission order, clipped to its own
//     disjoint row range, so the per-pixel sequence of shades and blends is
//     exactly the serial one restricted to that pixel. This keeps even
//     overlapping, blending triangles exact.
//   - Points are partitioned across workers only when their pixel rects are
//     pairwise disjoint (checked with a coverage bitmap); each pixel is then
//     written at most once and ordering is irrelevant. Overlapping points —
//     the scatter-add histogram idiom — fall back to serial.
//
// Both paths require the fragment program to be proven independent of
// residual Env state (Program.WritesBeforeReads, so per-worker Envs cannot
// diverge from the serially reused one) and to write its outputs on every
// path (Program.OutputsAlwaysWritten, so the externally read gl_FragColor
// cannot leak a previous fragment's value). Cycle and texture-fetch
// counters are int64 sums over fragments, so per-worker subtotals merged by
// addition reproduce the serial totals exactly; virtual-time results are
// therefore bit-identical at any worker count.

import (
	"os"
	"runtime"
	"strconv"
	"sync"

	"gles2gpgpu/internal/raster"
	"gles2gpgpu/internal/shader"
)

// parallelMinFragments gates parallel shading: below this estimated
// fragment count, goroutine fan-out and joins cost more than they save.
const parallelMinFragments = 4096

// defaultWorkers picks the worker count from the GLES2GPGPU_WORKERS
// environment variable, falling back to GOMAXPROCS.
func defaultWorkers() int {
	if s := os.Getenv("GLES2GPGPU_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the fragment-shading worker count. n <= 0 restores the
// default (GLES2GPGPU_WORKERS or GOMAXPROCS); 1 forces serial shading.
// Virtual-time results are identical at any setting.
func (c *Context) SetWorkers(n int) {
	if n <= 0 {
		n = defaultWorkers()
	}
	if n == c.workers {
		return
	}
	c.workers = n
	if c.pool != nil {
		c.pool.shutdown()
		c.pool = nil
	}
}

// Workers returns the configured fragment-shading worker count.
func (c *Context) Workers() int { return c.workers }

// workerPool is a fixed set of goroutines draining a task channel. Draws
// never submit nested tasks, so feeding a batch and waiting cannot
// deadlock.
type workerPool struct {
	tasks chan func()
	done  sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{tasks: make(chan func())}
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.done.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// run executes fns on the pool and returns when all have finished.
func (p *workerPool) run(fns []func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		fn := fn
		p.tasks <- func() {
			defer wg.Done()
			fn()
		}
	}
	wg.Wait()
}

func (p *workerPool) shutdown() {
	close(p.tasks)
	p.done.Wait()
}

func (c *Context) ensurePool() *workerPool {
	if c.pool == nil {
		c.pool = newWorkerPool(c.workers)
	}
	return c.pool
}

// fsPool returns the Env pool for the current fragment program, recreating
// it when the program changes.
func (c *Context) fsPool(fp *shader.Program) *shader.EnvPool {
	if c.fsEnvPool == nil || c.fsEnvPool.Program() != fp {
		c.fsEnvPool = shader.NewEnvPool(fp)
	}
	return c.fsEnvPool
}

// parallelEligible reports whether a draw with the given fragment program
// and estimated fragment count may take a parallel path.
func (c *Context) parallelEligible(fp *shader.Program, estFrags int64) bool {
	return c.workers >= 2 &&
		fp.WritesBeforeReads && fp.OutputsAlwaysWritten &&
		estFrags >= parallelMinFragments
}

// bandStats is one worker's share of the draw measurement.
type bandStats struct {
	fragments  int64
	cycles     int64
	texFetches int64
}

// envSampler builds the texture-sampling closure for one worker Env.
// sampleTexture only reads texture state, so sharing samplers across
// workers is safe.
func envSampler(samplers []*Texture) shader.SampleFunc {
	return func(idx int, u, v float32) shader.Vec4 {
		if idx < 0 || idx >= len(samplers) {
			return shader.Vec4{0, 0, 0, 1}
		}
		return shader.Vec4(sampleTexture(samplers[idx], u, v))
	}
}

// shadeTrianglesParallel shades set-up triangles in disjoint horizontal
// bands, one worker per band. Returns ok=false when banding yields fewer
// than two bands (degenerate row ranges), in which case the caller shades
// serially. VM errors (compiler bugs) abort the failing band's remaining
// fragments only, mirroring the serial path's skip-fragment behaviour.
func (c *Context) shadeTrianglesParallel(p *Program, tgt renderTarget, setups []raster.Triangle, vpX, vpY int, samplers []*Texture, texFns []shader.TexFunc) (drawStats, bool) {
	minY, maxY := int(^uint(0)>>1), -int(^uint(0)>>1)-1
	for i := range setups {
		_, y0, _, y1 := setups[i].Bounds()
		if y0 < minY {
			minY = y0
		}
		if y1 > maxY {
			maxY = y1
		}
	}
	bands := raster.Bands(minY, maxY, c.workers)
	if len(bands) < 2 {
		return drawStats{}, false
	}

	fp := p.fsProg
	out, hasOut := fp.LookupOutput("gl_FragColor")
	fcReg := p.fragCoordReg
	mask := c.colorMask
	cost := &c.prof.CostModel
	execFS := shader.Executor(fp, cost, c.jit, c.passes)
	pool := c.fsPool(fp)
	sample := envSampler(samplers)
	// Lane-batched band shading: resolved on the draw goroutine (the pool
	// field is per-Context state), then shared read-only by the workers.
	lcfg := c.laneCompiledFor(fp)
	var lanePool *shader.LaneEnvPool
	if lcfg != nil {
		lanePool = c.fsLanePoolFor(fp)
	}

	results := make([]bandStats, len(bands))
	fns := make([]func(), len(bands))
	for bi := range bands {
		bi := bi
		b := bands[bi]
		fns[bi] = func() {
			if lcfg != nil {
				// Batches may span triangles within this band's walk; scatter
				// order equals gather order, so each pixel's shade/blend
				// sequence matches the scalar band path.
				ls := c.newLaneShader(lcfg, lanePool, p, tgt, texFns, sample)
				for ti := range setups {
					t := &setups[ti]
					tx0, _, tx1, _ := t.Bounds()
					t.RasterizeRect(tx0, b[0], tx1, b[1], func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
						px, py := vpX+x, vpY+y
						if px < 0 || py < 0 || px >= tgt.w || py >= tgt.h {
							return
						}
						ls.add(px, py, fc, varyings)
					})
				}
				results[bi] = ls.finish()
				return
			}
			env := pool.Get()
			env.Uniforms = p.fsUniforms
			env.Sample = sample
			env.Samplers = texFns
			startCycles, startTex := env.Cycles, env.TexFetches
			var frags int64
			for ti := range setups {
				t := &setups[ti]
				tx0, _, tx1, _ := t.Bounds()
				t.RasterizeRect(tx0, b[0], tx1, b[1], func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
					px, py := vpX+x, vpY+y
					if px < 0 || py < 0 || px >= tgt.w || py >= tgt.h {
						return
					}
					env.Discarded = false
					for reg, v := range varyings {
						env.Inputs[reg] = v
					}
					if fcReg >= 0 {
						env.Inputs[fcReg] = fc
					}
					if err := execFS(env); err != nil {
						return
					}
					frags++
					if env.Discarded || !hasOut {
						return
					}
					c.writePixel(tgt.pixels, (py*tgt.w+px)*4, env.Outputs[out.Reg], mask)
				})
			}
			results[bi] = bandStats{frags, env.Cycles - startCycles, env.TexFetches - startTex}
			pool.Put(env)
		}
	}
	c.ensurePool().run(fns)

	st := drawStats{valid: true}
	for _, r := range results {
		st.fragments += r.fragments
		st.cycles += r.cycles
		st.texFetches += r.texFetches
	}
	return st, true
}

// pointRect is the precomputed raster footprint of one point sprite.
type pointRect struct {
	vi     int
	x0, y0 int
	n      int
	sx, sy float64
	size   float64
	invW   float32
}

// pointRectsDisjoint marks every clipped target pixel of every rect in a
// coverage bitmap and reports whether any pixel is covered twice. The
// bitmap is O(target pixels / 8) bytes and reused across draws.
func (c *Context) pointRectsDisjoint(rects []pointRect, tgt renderTarget, vpX, vpY, vpW, vpH int) bool {
	words := (tgt.w*tgt.h + 63) / 64
	if cap(c.coverScratch) < words {
		c.coverScratch = make([]uint64, words)
	}
	cover := c.coverScratch[:words]
	for i := range cover {
		cover[i] = 0
	}
	for i := range rects {
		r := &rects[i]
		for py := r.y0; py < r.y0+r.n; py++ {
			for px := r.x0; px < r.x0+r.n; px++ {
				tx, ty := vpX+px, vpY+py
				if tx < 0 || ty < 0 || tx >= tgt.w || ty >= tgt.h || px < 0 || py < 0 || px >= vpW || py >= vpH {
					continue
				}
				bit := ty*tgt.w + tx
				if cover[bit/64]&(1<<uint(bit%64)) != 0 {
					return false
				}
				cover[bit/64] |= 1 << uint(bit%64)
			}
		}
	}
	return true
}

// shadePointsParallel shades point sprites with pairwise-disjoint rects,
// partitioning the points across workers. Every pixel is written at most
// once, so ordering between workers is irrelevant and blending reads a
// pristine destination exactly as serial execution would.
func (c *Context) shadePointsParallel(p *Program, tgt renderTarget, verts []raster.Vertex, rects []pointRect, vpX, vpY, vpW, vpH int, samplers []*Texture, texFns []shader.TexFunc) drawStats {
	fp := p.fsProg
	out, hasOut := fp.LookupOutput("gl_FragColor")
	mask := c.colorMask
	cost := &c.prof.CostModel
	execFS := shader.Executor(fp, cost, c.jit, c.passes)
	pool := c.fsPool(fp)
	sample := envSampler(samplers)

	nw := c.workers
	if nw > len(rects) {
		nw = len(rects)
	}
	results := make([]bandStats, nw)
	fns := make([]func(), nw)
	per := (len(rects) + nw - 1) / nw
	for wi := 0; wi < nw; wi++ {
		wi := wi
		lo := wi * per
		hi := lo + per
		if hi > len(rects) {
			hi = len(rects)
		}
		fns[wi] = func() {
			env := pool.Get()
			env.Uniforms = p.fsUniforms
			env.Sample = sample
			env.Samplers = texFns
			startCycles, startTex := env.Cycles, env.TexFetches
			var frags int64
		points:
			for ri := lo; ri < hi; ri++ {
				r := &rects[ri]
				v := &verts[r.vi]
				for py := r.y0; py < r.y0+r.n; py++ {
					for px := r.x0; px < r.x0+r.n; px++ {
						tx, ty := vpX+px, vpY+py
						if tx < 0 || ty < 0 || tx >= tgt.w || ty >= tgt.h || px < 0 || py < 0 || px >= vpW || py >= vpH {
							continue
						}
						env.Discarded = false
						for reg := 0; reg < v.NumVar; reg++ {
							env.Inputs[reg] = v.Varyings[reg]
						}
						if p.fragCoordReg >= 0 {
							env.Inputs[p.fragCoordReg] = shader.Vec4{
								float32(px) + 0.5, float32(py) + 0.5, 0.5, r.invW,
							}
						}
						if p.pointCoordReg >= 0 {
							env.Inputs[p.pointCoordReg] = shader.Vec4{
								float32((float64(px) + 0.5 - (r.sx - r.size/2)) / r.size),
								float32((float64(py) + 0.5 - (r.sy - r.size/2)) / r.size),
								0, 0,
							}
						}
						if err := execFS(env); err != nil {
							break points // VM bug: abort this worker's share
						}
						frags++
						if env.Discarded || !hasOut {
							continue
						}
						c.writePixel(tgt.pixels, (ty*tgt.w+tx)*4, env.Outputs[out.Reg], mask)
					}
				}
			}
			results[wi] = bandStats{frags, env.Cycles - startCycles, env.TexFetches - startTex}
			pool.Put(env)
		}
	}
	c.ensurePool().run(fns)

	st := drawStats{valid: true}
	for _, r := range results {
		st.fragments += r.fragments
		st.cycles += r.cycles
		st.texFetches += r.texFetches
	}
	return st
}
