package gles

// Cross-iteration tile coherence.
//
// The paper's kernels are iterative: jacobi, the reduction ladder, and the
// state-stepping workloads in examples/ redraw the same full-screen quad
// every iteration, with only the sampled ping-pong texture changing between
// draws. On real mobile silicon inter-frame coherence is the dominant
// time/energy lever ("Dynamic Sampling Rate", Anglada et al.); this file
// gives the host engine the same lever. Between draws that share a
// signature (program, uniform bits, geometry, viewport origin, colour
// mask, per-slot sampler configuration), each 32×32 tile remembers
//
//   - the exact texel rectangle it fetched from every sampler slot (the
//     footprint, recorded by tracking samplers that repeat the index
//     arithmetic of sampler.go bit for bit),
//   - a snapshot of the texel bytes under those footprints,
//   - the output bytes it produced, with a coverage bitmap of the pixels
//     it actually wrote,
//   - its share of the draw measurement (fragments, cycles, tex fetches).
//
// On the next matching draw, a tile whose current footprint bytes equal
// the snapshot is ELIDED: the cached output bytes are copied to the
// covered pixels instead of re-shading. This is bit-identical by
// construction, not by hashing: the comparison is bytes.Equal over the
// exact inputs, and with blending off an eligible fragment program is a
// deterministic function of (uniforms, varyings, fragcoord, sampled
// texels) — equal recorded inputs replay the identical fetch sequence and
// therefore the identical outputs. Dependent fetches are covered by
// induction: the first fetch is determined by the compared state, so its
// coordinates (and thus every later fetch) fall inside the recorded
// footprint, which is a conservative union rectangle.
//
// The cache key deliberately EXCLUDES texture object identity: ping-pong
// stepping alternates two texture objects (iteration i samples A and
// writes B, iteration i+1 samples B and writes A), and keying on names
// would force a stride-2 comparison that never converges while the two
// generations still differ. Content equality is exactly what the footprint
// compare establishes, and with blending off the target's prior content
// never feeds the shaded bytes, so two draws that agree on everything the
// signature captures plus the footprint bytes produce the same covered
// pixels no matter which texture objects are bound.
//
// Modelled-device time is deliberately untouched: an elided tile
// contributes its cached fragments/cycles/texFetches to the draw stats, so
// Cycles, TexFetches and every virtual-time figure are bit-identical with
// the knob on or off — only host wall-clock time changes. The win is
// reported by the CoherenceElided/CoherenceShaded counters
// (Context.CoherenceStats) and the coherence bench figures.

import (
	"bytes"
	"math"
	"os"
	"sync/atomic"

	"gles2gpgpu/internal/raster"
	"gles2gpgpu/internal/shader"
)

// cohBudgetBytes caps the total retained snapshot bytes per context;
// beyond it the least-recently-used draw entries are evicted.
const cohBudgetBytes = 192 << 20

// cohMaxEntryBytes caps one draw entry's estimated output-snapshot size;
// draws too large to cache shade normally without touching the cache.
const cohMaxEntryBytes = 64 << 20

// cohMaxTileInBytes caps one tile's input snapshots. Tiles whose sampled
// footprint exceeds it (sgemm-style row×column reads spanning the whole
// matrix) are not cached: their inputs change wholesale every pass anyway,
// and snapshotting them would dwarf the pixels they produce.
const cohMaxTileInBytes = 64 << 10

// DefaultCoherence reads the GLES2GPGPU_NO_COHERENCE environment toggle
// for new contexts: cross-iteration tile coherence is on unless set.
func DefaultCoherence() bool { return os.Getenv("GLES2GPGPU_NO_COHERENCE") == "" }

// cohKey identifies a cacheable draw stream: one program drawing to one
// target size. Texture identity is deliberately absent (see file comment).
type cohKey struct {
	program uint32
	w, h    int
}

// cohRect is an inclusive texel rectangle; x0 > x1 means empty.
type cohRect struct {
	x0, y0, x1, y1 int
}

func (r *cohRect) empty() bool { return r.x0 > r.x1 }

// cohTile is the cached result of shading one tile.
type cohTile struct {
	// Clipped target-pixel rectangle of the tile (inclusive).
	cx0, cy0, cx1, cy1 int

	foot []cohRect // per sampler slot: texel footprint fetched while shading
	in   [][]byte  // per slot: texel bytes under foot at shade time
	out  []byte    // target bytes of the clipped rect after shading

	cover []uint64 // bitmap over the clipped rect: pixels the tile wrote
	full  bool     // every pixel of the clipped rect is covered

	fragments, cycles, texFetches int64 // the tile's share of the draw stats

	bytes int // retained size, for the budget
}

// cohDraw is one cache entry: the signature its tiles were shaded under
// plus the per-tile results, keyed by tile origin (stable across draws —
// binTiles anchors tiles at global multiples of the tile size).
type cohDraw struct {
	fs       *shader.Program
	sig      []byte
	tileSize int
	tiles    map[[2]int]*cohTile
	bytes    int
	gen      uint64 // last draw generation that used the entry (for eviction)
}

// CoherenceStats returns the cumulative cross-iteration coherence counters:
// tiles elided (output bytes replayed from the cache) and tiles shaded
// through the coherent path. Modelled cycles are identical either way; the
// ratio is the host-work win.
func (c *Context) CoherenceStats() (elided, shaded int64) {
	return c.cohElided, c.cohShaded
}

// CoherenceStaticSlots returns how many sampler slots (summed over
// coherent draws) took their footprint from the static IR proof instead
// of dynamic fetch tracking.
func (c *Context) CoherenceStaticSlots() int64 { return c.cohStatic }

// coherentEligible gates the coherent tile path. Blending is excluded
// because a blended fragment reads the destination pixel, making the
// output depend on target history the signature does not capture; sampling
// the render target itself (undefined in GLES2) is excluded for the same
// reason. The liveness proofs are the same ones the parallel paths need:
// they make fragments independent of each other and of pooled Env state,
// so a tile-order walk is byte-identical to the serial walk.
func (c *Context) coherentEligible(fp *shader.Program, tgt renderTarget, samplers []*Texture) bool {
	if !c.coherence || c.timingOnly || c.blendEnabled {
		return false
	}
	if !fp.WritesBeforeReads || !fp.OutputsAlwaysWritten {
		return false
	}
	for _, t := range samplers {
		if t != nil && tgt.tex != nil && t == tgt.tex {
			return false
		}
	}
	return true
}

// cohSignature serialises the draw state a cached tile's output depends on
// beyond its sampled texel bytes: program identity and uniform bits,
// viewport origin, colour mask, the set-up triangle fingerprints, and each
// sampler slot's completeness/dimensions/filter/wrap configuration —
// everything except texture object identity and texel contents.
func (c *Context) cohSignature(p *Program, setups []raster.Triangle, vpX, vpY int, samplers []*Texture) []byte {
	sig := make([]byte, 0, 160+len(setups)*232+len(samplers)*28)
	p32 := func(u uint32) {
		sig = append(sig, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	p32(p.name)
	p32(uint32(len(p.fsUniforms)))
	for _, u := range p.fsUniforms {
		for ci := 0; ci < 4; ci++ {
			p32(math.Float32bits(u[ci]))
		}
	}
	p32(uint32(int32(vpX)))
	p32(uint32(int32(vpY)))
	var m uint32
	for ci, on := range c.colorMask {
		if on {
			m |= 1 << ci
		}
	}
	p32(m)
	p32(uint32(len(setups)))
	for i := range setups {
		sig = setups[i].AppendFingerprint(sig)
	}
	p32(uint32(len(samplers)))
	for _, t := range samplers {
		if !texComplete(t) {
			p32(0xffffffff) // samples constant opaque black
			continue
		}
		p32(uint32(t.W))
		p32(uint32(t.H))
		p32(uint32(t.minFilter))
		p32(uint32(t.magFilter))
		p32(uint32(t.wrapS))
		p32(uint32(t.wrapT))
	}
	return sig
}

// cohTracker records, per sampler slot, the union texel rectangle fetched
// while shading one tile. One tracker per worker; reset at tile start.
type cohTracker struct {
	foot []cohRect
}

func (tr *cohTracker) reset() {
	for i := range tr.foot {
		tr.foot[i] = cohRect{x0: 1, y0: 1, x1: 0, y1: 0}
	}
}

func (tr *cohTracker) add(slot, ix, iy int) {
	f := &tr.foot[slot]
	if f.empty() {
		*f = cohRect{x0: ix, y0: iy, x1: ix, y1: iy}
		return
	}
	if ix < f.x0 {
		f.x0 = ix
	} else if ix > f.x1 {
		f.x1 = ix
	}
	if iy < f.y0 {
		f.y0 = iy
	} else if iy > f.y1 {
		f.y1 = iy
	}
}

func (tr *cohTracker) addRect(slot, x0, y0, x1, y1 int) {
	f := &tr.foot[slot]
	if f.empty() {
		*f = cohRect{x0: x0, y0: y0, x1: x1, y1: y1}
		return
	}
	if x0 < f.x0 {
		f.x0 = x0
	}
	if y0 < f.y0 {
		f.y0 = y0
	}
	if x1 > f.x1 {
		f.x1 = x1
	}
	if y1 > f.y1 {
		f.y1 = y1
	}
}

func cohClampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// trackedSampler wraps one slot's fetch with footprint recording. Every
// branch repeats the exact index arithmetic of specializeSampler /
// sampleNearest / sampleBilinear / texel — including the clamp order and
// the implementation-defined int(NaN) conversion feeding the same clamps —
// so the recorded rectangle is precisely the set of texels the value path
// reads and the returned value is bit-identical to the untracked sampler.
func trackedSampler(t *Texture, tr *cohTracker, slot int) shader.TexFunc {
	if !texComplete(t) {
		return opaqueBlack
	}
	if t.magFilter != LINEAR && t.wrapS != REPEAT && t.wrapT != REPEAT {
		// Mirror of the NEAREST + CLAMP_TO_EDGE fast path in sampler.go.
		data := t.data
		w, h := t.W, t.H
		fw, fh := float32(w), float32(h)
		return func(u, v float32) shader.Vec4 {
			if u < 0 {
				u = 0
			} else if u > 1 {
				u = 1
			}
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			ix := int(u * fw)
			iy := int(v * fh)
			if ix < 0 {
				ix = 0
			} else if ix >= w {
				ix = w - 1
			}
			if iy < 0 {
				iy = 0
			} else if iy >= h {
				iy = h - 1
			}
			tr.add(slot, ix, iy)
			off := (iy*w + ix) * 4
			return shader.Vec4{
				byteToF32[data[off]],
				byteToF32[data[off+1]],
				byteToF32[data[off+2]],
				byteToF32[data[off+3]],
			}
		}
	}
	// LINEAR filtering or REPEAT wrapping: record the texel() indices the
	// reference path will clamp to, then return the reference sample.
	return func(u, v float32) shader.Vec4 {
		uw := wrapCoord(t.wrapS, u)
		vw := wrapCoord(t.wrapT, v)
		if t.magFilter == LINEAR {
			fx := uw*float32(t.W) - 0.5
			fy := vw*float32(t.H) - 0.5
			ix, iy := int(floorf(fx)), int(floorf(fy))
			tr.addRect(slot,
				cohClampIdx(ix, t.W), cohClampIdx(iy, t.H),
				cohClampIdx(ix+1, t.W), cohClampIdx(iy+1, t.H))
		} else {
			ix := int(uw * float32(t.W))
			iy := int(vw * float32(t.H))
			tr.add(slot, cohClampIdx(ix, t.W), cohClampIdx(iy, t.H))
		}
		return shader.Vec4(sampleTexture(t, u, v))
	}
}

// cohInputsEqual reports whether the texel bytes under a cached tile's
// footprints still equal the snapshot taken when it was shaded. The
// signature match guarantees the textures bound now have the same
// dimensions and sampling configuration the footprints were recorded
// under, so the row indexing is in range by construction.
func cohInputsEqual(ct *cohTile, samplers []*Texture) bool {
	for si := range ct.foot {
		fr := &ct.foot[si]
		if fr.empty() {
			continue
		}
		t := samplers[si]
		snap := ct.in[si]
		rw := (fr.x1 - fr.x0 + 1) * 4
		for row := fr.y0; row <= fr.y1; row++ {
			src := (row*t.W + fr.x0) * 4
			so := (row - fr.y0) * rw
			if !bytes.Equal(snap[so:so+rw], t.data[src:src+rw]) {
				return false
			}
		}
	}
	return true
}

// cohApply replays a cached tile: the snapshot bytes of every covered
// pixel's masked channels are copied into the target. This matches what
// re-shading would write — covered pixels got every masked channel stored
// through writePixel (blend off), uncovered pixels and unmasked channels
// were never touched by the draw on either path.
func cohApply(ct *cohTile, tgt renderTarget, mask [4]bool) {
	if ct.out == nil {
		return
	}
	cw := ct.cx1 - ct.cx0 + 1
	if ct.full && mask[0] && mask[1] && mask[2] && mask[3] {
		for row := ct.cy0; row <= ct.cy1; row++ {
			dst := (row*tgt.w + ct.cx0) * 4
			so := (row - ct.cy0) * cw * 4
			copy(tgt.pixels[dst:dst+cw*4], ct.out[so:so+cw*4])
		}
		return
	}
	for row := ct.cy0; row <= ct.cy1; row++ {
		base := (row - ct.cy0) * cw
		dstRow := (row*tgt.w + ct.cx0) * 4
		for col := 0; col < cw; col++ {
			bit := base + col
			if ct.cover[bit>>6]&(1<<uint(bit&63)) == 0 {
				continue
			}
			so := bit * 4
			do := dstRow + col*4
			for ci := 0; ci < 4; ci++ {
				if mask[ci] {
					tgt.pixels[do+ci] = ct.out[so+ci]
				}
			}
		}
	}
}

func cohTileBytes(ct *cohTile) int {
	n := len(ct.out) + len(ct.cover)*8 + len(ct.foot)*32 + 96
	for _, in := range ct.in {
		n += len(in)
	}
	return n
}

// shadeTrianglesCoherent is the coherent tile path: it bins the draw into
// tiles, elides tiles whose cached inputs are unchanged since the last
// matching draw, shades the rest with footprint-tracking samplers (in
// parallel when workers are configured), and refreshes the cache. Returns
// ok=false when the draw is too large to cache; the caller falls through
// to the ordinary paths.
func (c *Context) shadeTrianglesCoherent(p *Program, tgt renderTarget, setups []raster.Triangle, vpX, vpY int, samplers []*Texture) (drawStats, bool) {
	tiles := binTiles(setups, c.tileSize)
	if len(tiles) == 0 {
		return drawStats{}, false
	}
	if len(tiles)*(c.tileSize*c.tileSize*4+256) > cohMaxEntryBytes {
		return drawStats{}, false
	}

	fp := p.fsProg
	key := cohKey{program: c.current, w: tgt.w, h: tgt.h}
	sig := c.cohSignature(p, setups, vpX, vpY, samplers)
	c.cohGen++
	entry := c.cohCache[key]
	match := entry != nil && entry.fs == fp && entry.tileSize == c.tileSize &&
		bytes.Equal(entry.sig, sig)
	if !match {
		if entry != nil {
			c.cohBytes -= entry.bytes
		}
		entry = &cohDraw{
			fs: fp, sig: sig, tileSize: c.tileSize,
			tiles: make(map[[2]int]*cohTile, len(tiles)),
		}
		c.cohCache[key] = entry
	}
	entry.gen = c.cohGen

	st := drawStats{valid: true}
	mask := c.colorMask

	// Partition the tiles: replay the ones whose inputs are unchanged,
	// shade the rest.
	shadeIdx := make([]int, 0, len(tiles))
	for ti := range tiles {
		tile := &tiles[ti]
		if match {
			if ct := entry.tiles[[2]int{tile.x0, tile.y0}]; ct != nil && cohInputsEqual(ct, samplers) {
				cohApply(ct, tgt, mask)
				st.fragments += ct.fragments
				st.cycles += ct.cycles
				st.texFetches += ct.texFetches
				c.cohElided++
				continue
			}
		}
		shadeIdx = append(shadeIdx, ti)
	}
	c.cohShaded += int64(len(shadeIdx))
	if len(shadeIdx) == 0 {
		c.cohEvict(key, entry)
		return st, true
	}

	// Static footprints: slots whose fetch region the IR analysis proved
	// shade without per-fetch tracking; the proven per-tile rectangle is
	// snapshotted instead (see footprint.go).
	foot := c.footprintFor(fp)
	static := cohStaticSlots(foot, p, samplers)
	hasStatic := false
	for _, s := range static {
		if s {
			hasStatic = true
		}
	}
	if hasStatic {
		for _, s := range static {
			if s {
				c.cohStatic++
			}
		}
	}
	uniforms4 := p.fsUniforms4()

	out, hasOut := fp.LookupOutput("gl_FragColor")
	fcReg := p.fragCoordReg
	cost := &c.prof.CostModel
	execFS := shader.Executor(fp, cost, c.jit, c.passes)
	pool := c.fsPool(fp)
	lcfg := c.laneCompiledFor(fp)
	var lanePool *shader.LaneEnvPool
	if lcfg != nil {
		lanePool = c.fsLanePoolFor(fp)
	}

	nw := c.workers
	if nw > len(shadeIdx) {
		nw = len(shadeIdx)
	}
	if nw < 1 {
		nw = 1
	}

	// Per-tile results staged by shade-list position; the entry map is only
	// touched on the draw goroutine after the join. Workers write disjoint
	// tile pixel rects (every pixel belongs to exactly one tile) and read
	// shared setups/textures, so the only synchronisation needed is the
	// claim counter.
	newTiles := make([]*cohTile, len(shadeIdx))
	var next int64
	worker := func() {
		tr := &cohTracker{foot: make([]cohRect, len(samplers))}
		tfns := make([]shader.TexFunc, len(samplers))
		for i, t := range samplers {
			if static[i] {
				// Proven slot: the plain specialised sampler (bit-identical
				// values, no recording); the footprint comes from the proof.
				tfns[i] = specializeSampler(t)
			} else {
				tfns[i] = trackedSampler(t, tr, i)
			}
		}
		var staticRects []cohRect
		if hasStatic {
			staticRects = make([]cohRect, len(samplers))
		}
		sample := func(idx int, u, v float32) shader.Vec4 {
			if idx < 0 || idx >= len(tfns) {
				return shader.Vec4{0, 0, 0, 1}
			}
			return tfns[idx](u, v)
		}
		var ls *laneShader
		var env *shader.Env
		if lcfg != nil {
			ls = c.newLaneShader(lcfg, lanePool, p, tgt, tfns, sample)
		} else {
			env = pool.Get()
			env.Uniforms = p.fsUniforms
			env.Sample = sample
			env.Samplers = tfns
		}

		for {
			wi := int(atomic.AddInt64(&next, 1)) - 1
			if wi >= len(shadeIdx) {
				break
			}
			tile := &tiles[shadeIdx[wi]]
			ct := &cohTile{}
			cx0, cy0 := tile.x0+vpX, tile.y0+vpY
			cx1, cy1 := tile.x1+vpX, tile.y1+vpY
			if cx0 < 0 {
				cx0 = 0
			}
			if cy0 < 0 {
				cy0 = 0
			}
			if cx1 > tgt.w-1 {
				cx1 = tgt.w - 1
			}
			if cy1 > tgt.h-1 {
				cy1 = tgt.h - 1
			}
			clipped := cx0 <= cx1 && cy0 <= cy1
			cw := 0
			if clipped {
				cw = cx1 - cx0 + 1
				ct.cover = make([]uint64, (cw*(cy1-cy0+1)+63)/64)
			}
			ct.cx0, ct.cy0, ct.cx1, ct.cy1 = cx0, cy0, cx1, cy1
			tr.reset()

			if ls != nil {
				pf, pc, pt := ls.frags, ls.env.Cycles, ls.env.TexFetches
				// Cover bits are set at scatter time via the write hook, not
				// at gather: a masked batch can discard individual lanes, and
				// a discarded fragment's pixel must stay uncovered exactly as
				// in the per-fragment loop below.
				ls.onWrite = func(px, py int32) {
					bit := (int(py)-cy0)*cw + (int(px) - cx0)
					ct.cover[bit>>6] |= 1 << uint(bit&63)
				}
				for _, tri := range tile.tris {
					setups[tri].RasterizeRect(tile.x0, tile.y0, tile.x1, tile.y1, func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
						px, py := vpX+x, vpY+y
						if px < 0 || py < 0 || px >= tgt.w || py >= tgt.h {
							return
						}
						ls.add(px, py, fc, varyings)
					})
				}
				// Flush at the tile boundary so the per-tile stat attribution
				// is exact. Scatter order stays gather order and fragments
				// are independent (liveness proofs), so bytes are unchanged;
				// counters are per-fragment sums, indifferent to batching.
				ls.flush()
				ls.onWrite = nil
				ct.fragments = ls.frags - pf
				ct.cycles = ls.env.Cycles - pc
				ct.texFetches = ls.env.TexFetches - pt
			} else {
				pc, pt := env.Cycles, env.TexFetches
				var frags int64
				for _, tri := range tile.tris {
					setups[tri].RasterizeRect(tile.x0, tile.y0, tile.x1, tile.y1, func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
						px, py := vpX+x, vpY+y
						if px < 0 || py < 0 || px >= tgt.w || py >= tgt.h {
							return
						}
						env.Discarded = false
						for reg, v := range varyings {
							env.Inputs[reg] = v
						}
						if fcReg >= 0 {
							env.Inputs[fcReg] = fc
						}
						if err := execFS(env); err != nil {
							return
						}
						frags++
						if env.Discarded || !hasOut {
							return
						}
						c.writePixel(tgt.pixels, (py*tgt.w+px)*4, env.Outputs[out.Reg], mask)
						bit := (py-cy0)*cw + (px - cx0)
						ct.cover[bit>>6] |= 1 << uint(bit&63)
					})
				}
				ct.fragments = frags
				ct.cycles = env.Cycles - pc
				ct.texFetches = env.TexFetches - pt
			}

			if clipped {
				ch := cy1 - cy0 + 1
				// Output snapshot: only this worker writes this tile's pixel
				// rect, so the copy races with nothing.
				ct.out = make([]byte, cw*ch*4)
				for row := 0; row < ch; row++ {
					src := ((cy0+row)*tgt.w + cx0) * 4
					copy(ct.out[row*cw*4:(row+1)*cw*4], tgt.pixels[src:src+cw*4])
				}
				npix := cw * ch
				ct.full = true
				for bit := 0; bit < npix; bit++ {
					if ct.cover[bit>>6]&(1<<uint(bit&63)) == 0 {
						ct.full = false
						break
					}
				}
			}

			// Input snapshots under the recorded footprints. Copied, not
			// aliased: TexImage2D orphans its data slice but
			// CopyTexImage2D reuses backing arrays.
			ct.foot = make([]cohRect, len(samplers))
			copy(ct.foot, tr.foot)
			if hasStatic {
				if cohStaticRects(foot, static, p, uniforms4, setups, tile, samplers, staticRects) {
					for si := range static {
						if static[si] {
							ct.foot[si] = staticRects[si]
						}
					}
				} else {
					// The tile's fetch region cannot be bounded statically
					// (non-affine 1/w or a NaN bound): keep the shading
					// result but leave the tile uncached, like a tile over
					// the input budget.
					ct.in = nil
					ct.out = nil
					ct.cover = nil
					newTiles[wi] = ct
					continue
				}
			}
			ct.in = make([][]byte, len(samplers))
			inBytes := 0
			for si := range ct.foot {
				fr := &ct.foot[si]
				if fr.empty() {
					continue
				}
				inBytes += (fr.x1 - fr.x0 + 1) * (fr.y1 - fr.y0 + 1) * 4
			}
			if inBytes > cohMaxTileInBytes {
				// Footprint too large to cache (whole-matrix reads): keep
				// the shading result but drop the tile from the cache.
				ct.in = nil
				ct.out = nil
				ct.cover = nil
				newTiles[wi] = ct
				continue
			}
			for si := range ct.foot {
				fr := &ct.foot[si]
				if fr.empty() {
					continue
				}
				t := samplers[si]
				rw := (fr.x1 - fr.x0 + 1) * 4
				snap := make([]byte, rw*(fr.y1-fr.y0+1))
				for row := fr.y0; row <= fr.y1; row++ {
					src := (row*t.W + fr.x0) * 4
					copy(snap[(row-fr.y0)*rw:(row-fr.y0+1)*rw], t.data[src:src+rw])
				}
				ct.in[si] = snap
			}
			ct.bytes = cohTileBytes(ct)
			newTiles[wi] = ct
		}

		if ls != nil {
			ls.finish() // per-tile stats already attributed; recycle the env
		} else {
			pool.Put(env)
		}
	}

	if nw >= 2 {
		fns := make([]func(), nw)
		for i := range fns {
			fns[i] = worker
		}
		c.ensurePool().run(fns)
	} else {
		worker()
	}

	// Merge stats and refresh the cache entry (serial again).
	for wi, ct := range newTiles {
		st.fragments += ct.fragments
		st.cycles += ct.cycles
		st.texFetches += ct.texFetches
		tile := &tiles[shadeIdx[wi]]
		k := [2]int{tile.x0, tile.y0}
		if old := entry.tiles[k]; old != nil {
			entry.bytes -= old.bytes
			c.cohBytes -= old.bytes
			delete(entry.tiles, k)
		}
		if ct.out == nil && ct.cover == nil {
			continue // over the per-tile input budget: not cached
		}
		entry.tiles[k] = ct
		entry.bytes += ct.bytes
		c.cohBytes += ct.bytes
	}
	c.cohEvict(key, entry)
	return st, true
}

// cohEvict enforces the retained-byte budget: oldest-generation entries go
// first, the entry just used is dropped last (and only when it alone
// exceeds the budget).
func (c *Context) cohEvict(key cohKey, entry *cohDraw) {
	for c.cohBytes > cohBudgetBytes {
		var oldestKey cohKey
		var oldest *cohDraw
		for k, e := range c.cohCache {
			if e == entry {
				continue
			}
			if oldest == nil || e.gen < oldest.gen {
				oldest, oldestKey = e, k
			}
		}
		if oldest == nil {
			break
		}
		c.cohBytes -= oldest.bytes
		delete(c.cohCache, oldestKey)
	}
	if entry.bytes > cohBudgetBytes {
		c.cohBytes -= entry.bytes
		delete(c.cohCache, key)
	}
}
