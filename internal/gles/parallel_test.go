package gles

import (
	"bytes"
	"testing"

	"gles2gpgpu/internal/device"
)

// drawOutcome captures everything a draw scenario produces that parallel
// shading must reproduce bit-for-bit.
type drawOutcome struct {
	pixels     []byte
	fragments  int64
	cycles     int64
	texFetches int64
}

// runScenario executes scenario on a fresh w×h context configured with the
// given worker count and returns the framebuffer plus the measured stats of
// the scenario's returned program.
func runScenario(t *testing.T, workers, w, h int, scenario func(gl *Context) uint32) drawOutcome {
	t.Helper()
	env := newEnv(t, device.Generic(), w, h, false)
	gl := env.gl
	gl.SetWorkers(workers)
	defer gl.Destroy()
	prog := scenario(gl)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("scenario error: %s", ErrName(e))
	}
	out := drawOutcome{pixels: make([]byte, w*h*4)}
	gl.ReadPixels(0, 0, w, h, RGBA, UNSIGNED_BYTE, out.pixels)
	var ok bool
	out.fragments, out.cycles, out.texFetches, ok = gl.DrawStatsFor(prog, w, h)
	if !ok {
		t.Fatal("no draw stats recorded")
	}
	return out
}

// expectParity runs the scenario serially and with four workers and demands
// identical framebuffers and identical virtual-time counters.
func expectParity(t *testing.T, w, h int, scenario func(gl *Context) uint32) {
	t.Helper()
	serial := runScenario(t, 1, w, h, scenario)
	parallel := runScenario(t, 4, w, h, scenario)
	if !bytes.Equal(serial.pixels, parallel.pixels) {
		for i := range serial.pixels {
			if serial.pixels[i] != parallel.pixels[i] {
				t.Fatalf("framebuffers diverge at byte %d (pixel %d): serial %d, parallel %d",
					i, i/4, serial.pixels[i], parallel.pixels[i])
			}
		}
	}
	if serial.fragments != parallel.fragments {
		t.Errorf("fragments: serial %d, parallel %d", serial.fragments, parallel.fragments)
	}
	if serial.cycles != parallel.cycles {
		t.Errorf("cycles: serial %d, parallel %d", serial.cycles, parallel.cycles)
	}
	if serial.texFetches != parallel.texFetches {
		t.Errorf("tex fetches: serial %d, parallel %d", serial.texFetches, parallel.texFetches)
	}
}

// checkerTexture builds a w×h RGBA texture with position-dependent bytes.
func checkerTexture(gl *Context, w, h int) uint32 {
	tex := gl.GenTexture()
	gl.BindTexture(TEXTURE_2D, tex)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_MIN_FILTER, NEAREST)
	gl.TexParameteri(TEXTURE_2D, TEXTURE_MAG_FILTER, NEAREST)
	data := make([]byte, w*h*4)
	for i := range data {
		data[i] = byte(i*7 + i/9)
	}
	gl.TexImage2D(TEXTURE_2D, 0, RGBA, w, h, RGBA, UNSIGNED_BYTE, data)
	return tex
}

func TestParallelTriangleParity(t *testing.T) {
	const n = 128 // 16384 fragments: well past the parallel gate
	expectParity(t, n, n, func(gl *Context) uint32 {
		checkerTexture(gl, n, n)
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
uniform sampler2D u_tex;
void main() {
	vec4 s = texture2D(u_tex, v_tex);
	float acc = 0.0;
	for (int i = 0; i < 4; i++) {
		acc += s.x * 0.3 + v_tex.y * 0.1;
	}
	gl_FragColor = vec4(fract(acc), s.yz, 1.0);
}`)
		gl.UseProgram(p)
		gl.Uniform1i(gl.GetUniformLocation(p, "u_tex"), 0)
		drawQuad(t, gl, p)
		return p
	})
}

func TestParallelOverlappingBlendedTrianglesParity(t *testing.T) {
	// Two overlapping quads inside one draw with additive blending: band
	// partitioning must preserve the per-pixel blend order exactly.
	const n = 128
	expectParity(t, n, n, func(gl *Context) uint32 {
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main() { gl_FragColor = vec4(v_tex * 0.3, 0.2, 0.25); }`)
		gl.Enable(BLEND)
		gl.BlendFunc(ONE, ONE)
		gl.UseProgram(p)
		loc := gl.GetAttribLocation(p, "a_pos")
		verts := []float32{
			// Full-screen quad.
			-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1,
			// Overlapping half-screen quad.
			-0.5, -0.5, 1, -0.5, 1, 1, -0.5, -0.5, 1, 1, -0.5, 1,
		}
		gl.EnableVertexAttribArray(loc)
		gl.VertexAttribPointerClient(loc, 2, verts, 0, 0)
		gl.DrawArrays(TRIANGLES, 0, 12)
		return p
	})
}

func TestParallelDisjointPointsParity(t *testing.T) {
	// A 64×64 grid of size-1 points on a 128×128 target: pairwise-disjoint
	// rects, so the parallel point path engages.
	const n = 128
	expectParity(t, n, n, func(gl *Context) uint32 {
		p := buildProgram(t, gl, `
attribute vec2 a_pos;
varying vec2 v_val;
void main() {
	gl_Position = vec4(a_pos, 0.0, 1.0);
	gl_PointSize = 1.0;
	v_val = a_pos * 0.5 + 0.5;
}`, `
precision mediump float;
varying vec2 v_val;
void main() { gl_FragColor = vec4(v_val, fract(v_val.x * 13.0), 1.0); }`)
		gl.UseProgram(p)
		loc := gl.GetAttribLocation(p, "a_pos")
		var verts []float32
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				// Pixel centres (2x+0.5, 2y+0.5) in a 128-wide viewport.
				verts = append(verts,
					(2*float32(x)+0.5)/float32(n)*2-1,
					(2*float32(y)+0.5)/float32(n)*2-1)
			}
		}
		gl.EnableVertexAttribArray(loc)
		gl.VertexAttribPointerClient(loc, 2, verts, 0, 0)
		gl.DrawArrays(POINTS, 0, len(verts)/2)
		return p
	})
}

func TestParallelOverlappingPointsFallBack(t *testing.T) {
	// The histogram idiom: thousands of points scattered onto the same few
	// pixels with additive blending. Overlapping rects must force the
	// serial path, keeping the accumulated counts exact.
	const n = 128
	scenario := func(gl *Context) uint32 {
		p := buildProgram(t, gl, `
attribute vec2 a_pos;
void main() {
	gl_Position = vec4(a_pos, 0.0, 1.0);
	gl_PointSize = 2.0;
}`, `
precision mediump float;
void main() { gl_FragColor = vec4(1.0/255.0); }`)
		gl.Enable(BLEND)
		gl.BlendFunc(ONE, ONE)
		gl.UseProgram(p)
		loc := gl.GetAttribLocation(p, "a_pos")
		var verts []float32
		for i := 0; i < 2048; i++ {
			// Four buckets, 512 hits each.
			bucket := float32(i%4)*8 + 16
			verts = append(verts, (bucket+0.5)/float32(n)*2-1, 0.5)
		}
		gl.EnableVertexAttribArray(loc)
		gl.VertexAttribPointerClient(loc, 2, verts, 0, 0)
		gl.DrawArrays(POINTS, 0, len(verts)/2)
		return p
	}
	expectParity(t, n, n, scenario)

	// The blended count must saturate exactly as serial accumulation does:
	// 512 additive hits of 1/255 clamp to 255.
	out := runScenario(t, 4, n, n, scenario)
	y := (int(0.75*n) - 1 + n/2) // row of NDC y=0.5 → window y = 96
	_ = y
	found := false
	for _, b := range out.pixels {
		if b == 255 {
			found = true
			break
		}
	}
	if !found {
		t.Error("expected saturated histogram buckets")
	}
}

func TestPointRasterNegativeOrigin(t *testing.T) {
	// A size-4 point centred on the window origin hangs two pixels off the
	// left and bottom edges; only the in-bounds 2×2 corner may be shaded.
	// Regression guard for the ceil() on negative screen coordinates in
	// point setup.
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	p := buildProgram(t, gl, `
attribute vec2 a_pos;
void main() {
	gl_Position = vec4(a_pos, 0.0, 1.0);
	gl_PointSize = 4.0;
}`, `
precision mediump float;
void main() { gl_FragColor = vec4(1.0, 0.0, 0.0, 1.0); }`)
	gl.UseProgram(p)
	loc := gl.GetAttribLocation(p, "a_pos")
	gl.EnableVertexAttribArray(loc)
	gl.VertexAttribPointerClient(loc, 2, []float32{-1, -1}, 0, 0)
	gl.DrawArrays(POINTS, 0, 1)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("draw error: %s", ErrName(e))
	}
	buf := make([]byte, 8*8*4)
	gl.ReadPixels(0, 0, 8, 8, RGBA, UNSIGNED_BYTE, buf)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			red := buf[(y*8+x)*4]
			if x < 2 && y < 2 {
				if red != 255 {
					t.Errorf("pixel (%d,%d) = %d, want covered", x, y, red)
				}
			} else if red != 0 {
				t.Errorf("pixel (%d,%d) = %d, want untouched", x, y, red)
			}
		}
	}
	frags, _, _, ok := gl.DrawStatsFor(p, 8, 8)
	if !ok || frags != 4 {
		t.Errorf("fragments = %d (ok=%v), want 4", frags, ok)
	}
}

func TestShaderCompilationCache(t *testing.T) {
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	src := `precision mediump float;
void main() { gl_FragColor = vec4(1.0); }`

	compile := func() *Shader {
		s := gl.CreateShader(FRAGMENT_SHADER)
		gl.ShaderSource(s, src)
		gl.CompileShader(s)
		if gl.GetShaderiv(s, COMPILE_STATUS) != 1 {
			t.Fatalf("compile: %s", gl.GetShaderInfoLog(s))
		}
		return gl.shaders[s]
	}
	a, b := compile(), compile()
	if a.compiled != b.compiled {
		t.Error("identical source compiled twice: cache miss")
	}

	// A different stage with the same source must not share the entry.
	vs := gl.CreateShader(VERTEX_SHADER)
	gl.ShaderSource(vs, `void main() { gl_Position = vec4(0.0); }`)
	gl.CompileShader(vs)
	if gl.shaders[vs].compiled == a.compiled {
		t.Error("vertex shader shares fragment cache entry")
	}

	// Destroy evicts; recompilation produces a fresh program.
	gl.Destroy()
	c := compile()
	if c.compiled == a.compiled {
		t.Error("cache survived Destroy")
	}
}

func TestParallelGateRequiresProvenProgram(t *testing.T) {
	// A fragment shader that writes gl_FragColor only conditionally leaks
	// the previous fragment's colour in serial execution; the parallel gate
	// must reject it so results stay identical.
	env := newEnv(t, device.Generic(), 8, 8, false)
	gl := env.gl
	p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main() {
	if (v_tex.x > 0.5) {
		gl_FragColor = vec4(v_tex, 0.0, 1.0);
	}
}`)
	fp := gl.programs[p].fsProg
	if fp.OutputsAlwaysWritten {
		t.Fatal("conditional gl_FragColor write wrongly proven")
	}
	if gl.parallelEligible(fp, 1<<20) {
		t.Error("parallel gate accepted a conditionally-writing program")
	}
}
