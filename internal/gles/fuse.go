package gles

// Composite program installation for the pipeline planner: ComposePrograms
// splices the fragment programs of already-linked stage programs into one
// fused program (shader.ComposeFragments) and registers it as a linked
// Program object, without charging API-call costs — the fused program is a
// host-side execution artefact, not a GL object the modelled application
// created. The planner drives it only in functional-only mode; the timing
// model always sees the original unfused call sequence.

import (
	"fmt"

	"gles2gpgpu/internal/shader"
)

// ComposeStage names one stage of a composition: a linked program and, per
// fragment sampler slot, the index of the earlier stage whose colour output
// feeds it (-1 for an external texture input).
type ComposeStage struct {
	Program    uint32
	SlotSource []int
}

// ComposePrograms builds and installs a fused program from a chain of
// linked stage programs sharing one vertex shader. It returns the new
// program name and the surviving external sampler slots in merged order
// (shader.FusedSampler.Name is the sampler uniform to bind). The caller is
// responsible for fusion eligibility; this only enforces structure.
func (c *Context) ComposePrograms(stages []ComposeStage) (uint32, []shader.FusedSampler, error) {
	if len(stages) < 2 {
		return 0, nil, fmt.Errorf("compose: need at least 2 stages, have %d", len(stages))
	}
	var vp *shader.Program
	var vsUniformCount int
	fstages := make([]shader.FuseStage, len(stages))
	for i, st := range stages {
		p := c.programs[st.Program]
		if p == nil || !p.linked {
			return 0, nil, fmt.Errorf("compose: stage %d: program %d is not linked", i, st.Program)
		}
		if i == 0 {
			vp = p.vsProg
			vsUniformCount = len(p.vsProg.Uniforms)
		} else if p.vsProg != vp {
			return 0, nil, fmt.Errorf("compose: stage %d has a different vertex shader", i)
		}
		if vsUniformCount > 0 {
			// Per-stage vertex uniform values cannot be merged into one
			// vertex pass; the engine's fullscreen-quad VS has none.
			return 0, nil, fmt.Errorf("compose: vertex shader has uniforms")
		}
		fstages[i] = shader.FuseStage{Prog: p.fsProg, SlotSource: st.SlotSource}
	}

	fp, samplers, err := shader.ComposeFragments(fstages)
	if err != nil {
		return 0, nil, err
	}
	if err := fp.CheckLimits(c.prof.Limits); err != nil {
		return 0, nil, err
	}

	// Link the fused fragment program against the shared vertex shader,
	// following LinkProgram's recipe (varying matching, uniform table).
	np := &Program{name: c.genName()}
	np.varyingMap = make([]int, fp.NumInputs)
	for i := range np.varyingMap {
		np.varyingMap[i] = -1
	}
	np.fragCoordReg = -1
	np.pointCoordReg = -1
	for _, in := range fp.Inputs {
		switch in.Name {
		case "gl_FragCoord":
			np.fragCoordReg = in.Reg
			continue
		case "gl_PointCoord":
			np.pointCoordReg = in.Reg
			continue
		case "gl_FrontFacing":
			continue
		}
		out, ok := vp.LookupOutput(in.Name)
		if !ok {
			return 0, nil, fmt.Errorf("compose: fused varying %q is not written by the vertex shader", in.Name)
		}
		for r := 0; r < varRegs(in.Type); r++ {
			np.varyingMap[in.Reg+r] = out.Reg + r
		}
	}

	seen := map[string]int{}
	addUniform := func(u shader.UniformInfo, isVS bool) {
		idx, ok := seen[u.Name]
		if !ok {
			np.locs = append(np.locs, uniformLoc{name: u.Name, typ: u.Type, vsReg: -1, fsReg: -1, regs: u.Regs, samplerIdx: -1})
			idx = len(np.locs) - 1
			seen[u.Name] = idx
		}
		if isVS {
			np.locs[idx].vsReg = u.Reg
		} else {
			np.locs[idx].fsReg = u.Reg
			np.locs[idx].samplerIdx = u.SamplerIdx
		}
	}
	for _, u := range vp.Uniforms {
		addUniform(u, true)
	}
	for _, u := range fp.Uniforms {
		addUniform(u, false)
	}

	np.vsProg, np.fsProg = vp, fp
	np.vsUniforms = make([]shader.Vec4, maxInt(vp.NumUniform, 1))
	np.fsUniforms = make([]shader.Vec4, maxInt(fp.NumUniform, 1))
	np.samplerUnits = make([]int, len(fp.Samplers))
	np.attribs = vp.Inputs
	np.linked = true
	c.programs[np.name] = np
	return np.name, samplers, nil
}

// ProgramFS returns the compiled fragment program of a linked program, for
// the planner's fusion-eligibility analysis. Nil when the name is unknown
// or unlinked.
func (c *Context) ProgramFS(name uint32) *shader.Program {
	p := c.programs[name]
	if p == nil || !p.linked {
		return nil
	}
	return p.fsProg
}
