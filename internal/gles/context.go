// Package gles implements the OpenGL ES 2.0 subset GPGPU applications use,
// as a functional state machine bound to the timing model in internal/gpu:
// every call both performs the real work (textures hold real bytes, draws
// run the compiled shaders over the rasteriser) and advances virtual time
// the way the modelled driver and hardware would.
//
// The API surface follows the C API closely (names, error model, sticky
// glGetError) so the GPGPU framework in internal/core reads like real
// OpenGL ES client code.
package gles

import (
	"fmt"
	"os"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/egl"
	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/gpu"
	"gles2gpgpu/internal/mem"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/shader/analysis"
)

// Enum is a GLenum.
type Enum uint32

// Error codes.
const (
	NO_ERROR                      Enum = 0
	INVALID_ENUM                  Enum = 0x0500
	INVALID_VALUE                 Enum = 0x0501
	INVALID_OPERATION             Enum = 0x0502
	OUT_OF_MEMORY                 Enum = 0x0505
	INVALID_FRAMEBUFFER_OPERATION Enum = 0x0506
)

// Object and parameter enums (values match the GL headers where it helps
// recognisability; exact numbers are otherwise irrelevant to the model).
const (
	TEXTURE_2D            Enum = 0x0DE1
	TEXTURE_MIN_FILTER    Enum = 0x2801
	TEXTURE_MAG_FILTER    Enum = 0x2800
	TEXTURE_WRAP_S        Enum = 0x2802
	TEXTURE_WRAP_T        Enum = 0x2803
	NEAREST               Enum = 0x2600
	LINEAR                Enum = 0x2601
	NEAREST_MIPMAP_LINEAR Enum = 0x2702
	CLAMP_TO_EDGE         Enum = 0x812F
	REPEAT                Enum = 0x2901
	RGBA                  Enum = 0x1908
	RGB                   Enum = 0x1907
	UNSIGNED_BYTE         Enum = 0x1401
	TEXTURE0              Enum = 0x84C0

	ARRAY_BUFFER         Enum = 0x8892
	ELEMENT_ARRAY_BUFFER Enum = 0x8893
	STATIC_DRAW          Enum = 0x88E4
	DYNAMIC_DRAW         Enum = 0x88E8
	STREAM_DRAW          Enum = 0x88E0

	VERTEX_SHADER   Enum = 0x8B31
	FRAGMENT_SHADER Enum = 0x8B30
	COMPILE_STATUS  Enum = 0x8B81
	LINK_STATUS     Enum = 0x8B82

	FRAMEBUFFER                       Enum = 0x8D40
	COLOR_ATTACHMENT0                 Enum = 0x8CE0
	FRAMEBUFFER_COMPLETE              Enum = 0x8CD5
	FRAMEBUFFER_INCOMPLETE_ATTACHMENT Enum = 0x8CD6

	COLOR_BUFFER_BIT Enum = 0x4000

	POINTS         Enum = 0x0000
	TRIANGLES      Enum = 0x0004
	TRIANGLE_STRIP Enum = 0x0005
	TRIANGLE_FAN   Enum = 0x0006

	FLOAT Enum = 0x1406

	BLEND               Enum = 0x0BE2
	ZERO                Enum = 0
	ONE                 Enum = 1
	SRC_ALPHA           Enum = 0x0302
	ONE_MINUS_SRC_ALPHA Enum = 0x0303
)

// MaxVertexAttribs is the attribute slot count (GLES2 minimum).
const MaxVertexAttribs = 8

// MaxTextureUnits is the number of texture units.
const MaxTextureUnits = 8

// Texture is a 2D texture object.
type Texture struct {
	name      uint32
	W, H      int
	data      []byte // RGBA8888, allocated by TexImage2D
	res       gpu.ResID
	alloc     mem.Allocation
	allocated bool

	minFilter, magFilter Enum
	wrapS, wrapT         Enum
}

// Buffer is a VBO.
type Buffer struct {
	name  uint32
	data  []byte
	res   gpu.ResID
	alloc mem.Allocation
	usage Enum
}

// Shader is a shader object.
type Shader struct {
	name       uint32
	stype      Enum
	source     string
	checked    *glsl.CheckedShader
	compiled   *shader.Program
	compileErr error
}

// Program is a linked program object.
type Program struct {
	name    uint32
	vs, fs  *Shader
	linked  bool
	linkErr error

	vsProg, fsProg *shader.Program
	// Uniform state lives in the program object, per the GL spec.
	vsUniforms []shader.Vec4
	fsUniforms []shader.Vec4
	// samplerUnits[i] is the texture unit bound to fragment sampler slot i.
	samplerUnits []int
	// uniform locations: 1-based index into locs.
	locs []uniformLoc
	// varyingMap maps fragment input register -> vertex output register
	// (-1: filled from gl_FragCoord or zero).
	varyingMap    []int
	fragCoordReg  int // fs input register of gl_FragCoord, -1 if unused
	pointCoordReg int // fs input register of gl_PointCoord, -1 if unused
	attribs       []shader.VarInfo
}

type uniformLoc struct {
	name       string
	typ        glsl.Type
	vsReg      int // -1 when absent in that stage
	fsReg      int
	regs       int
	samplerIdx int // fragment sampler slot, -1 otherwise
}

type attribState struct {
	enabled bool
	size    int // components 1..4
	// Either a client-side array (clientData) or a VBO reference.
	clientData  []float32
	buffer      uint32
	offsetBytes int
	strideBytes int
}

// drawStats caches measured per-draw work for timing-only replay.
type drawStats struct {
	fragments  int64
	cycles     int64
	texFetches int64
	valid      bool
}

// Context is an OpenGL ES 2.0 context bound to an EGL context.
type Context struct {
	eglCtx *egl.Context
	m      *gpu.Machine
	prof   *device.Profile

	errCode Enum // sticky, returned by GetError

	textures     map[uint32]*Texture
	buffers      map[uint32]*Buffer
	framebuffers map[uint32]*Framebuffer
	shaders      map[uint32]*Shader
	programs     map[uint32]*Program
	nextName     uint32

	activeTexture int
	boundTex      [MaxTextureUnits]uint32
	boundArray    uint32
	boundFB       uint32
	current       uint32
	attribs       [MaxVertexAttribs]attribState
	viewport      [4]int
	clearColor    [4]float32
	colorMask     [4]bool
	blendEnabled  bool
	blendSrc      Enum
	blendDst      Enum

	alloc *mem.Allocator

	// timingOnly replays driver/GPU timing without functional execution,
	// reusing the last measured draw stats (see SetTimingOnly).
	timingOnly bool
	statCache  map[statKey]drawStats

	// functionalOnly is the complement of timingOnly: functional execution
	// (shader VM, rasterisation, pixel stores) proceeds normally, but no
	// virtual time elapses and no work reaches the timing model (see
	// SetFunctionalOnly).
	functionalOnly bool

	// scratch VM environments, reused across draws.
	vsEnv, fsEnv *shader.Env
	envProg      *Program

	// Host-parallel fragment shading (see parallel.go): worker count,
	// lazily started worker pool, per-program Env pool and the coverage
	// bitmap scratch used for point-overlap detection.
	workers      int
	pool         *workerPool
	fsEnvPool    *shader.EnvPool
	coverScratch []uint64

	// fsLanePool pools SoA batch environments for the lane-batched engine
	// (see lanes.go), recreated when the fragment program or lane width
	// changes.
	fsLanePool *shader.LaneEnvPool

	// jit selects the closure-compiled shader backend for draws; the
	// interpreter remains the reference semantics and both produce
	// bit-identical results (see internal/shader/jit.go).
	jit bool

	// passes selects the optimised program form (DCE + copy/constant
	// propagation, attached at CompileShader time) for draws. The
	// OptProgram contract (internal/shader/opt.go) keeps framebuffer
	// bytes and virtual time bit-identical; only host work changes.
	passes bool

	// tiling selects the tile-binned fragment engine for eligible parallel
	// draws (see tiled.go): triangles are binned into tileSize×tileSize
	// screen tiles and tiles become the parallel work unit, the traversal
	// order of the tile-based GPUs the simulator models. Results are
	// bit-identical to band or serial shading; only host scheduling changes.
	tiling   bool
	tileSize int

	// lanes selects the lane-batched (SoA) shader engine for straight-line
	// fragment programs (see lanes.go): batches of laneWidth fragments run
	// through each instruction at once, amortising closure dispatch.
	// Framebuffer bytes and all virtual-time figures are bit-identical;
	// only host wall-clock time changes. Branchy/discarding programs fall
	// back to the per-fragment engine automatically.
	lanes     bool
	laneWidth int

	// maskedLanes extends the lane engine to branchy programs: draws whose
	// fragment program passes the mask-safety proof (forward branches only,
	// per-lane discard/return — jacobi's boundary ternary) run through the
	// SoA engine under an active-lane mask (see
	// internal/shader/lanes_masked.go) instead of falling back to the
	// per-fragment JIT. Bit-identical results and counters; host time only.
	maskedLanes bool

	// laneFallbackDraws counts draws that wanted lane execution (lane
	// engine on and applicable) but fell back to per-fragment shading —
	// the masked-lane adoption signal exported by the daemon as
	// gles2gpgpud_lane_fallback_draws_total.
	laneFallbackDraws int64

	// coherence selects the cross-iteration tile-coherence engine (see
	// coherence.go): eligible draws cache each tile's sampled-texel
	// footprint and output bytes, and a later draw with the same signature
	// replays tiles whose inputs are unchanged instead of re-shading them.
	// Framebuffer bytes and Cycles/TexFetches are bit-identical either way
	// (elided tiles contribute their cached modelled cost); only host
	// wall-clock time changes. The CoherenceElided/CoherenceShaded counters
	// report the win.
	coherence bool
	cohCache  map[cohKey]*cohDraw
	cohGen    uint64
	cohBytes  int
	cohElided int64
	cohShaded int64
	// cohStatic counts sampler slots (per coherent draw) whose footprint
	// came from the static IR proof instead of dynamic fetch tracking.
	cohStatic int64
	// footCache memoises the per-program footprint analysis.
	footCache map[*shader.Program]*analysis.Footprint

	// strictLimits makes LinkProgram reject programs whose analysis-based
	// resource counts (worst-path instructions/tex fetches,
	// dependent-read depth, linear-scan register pressure) exceed the
	// device profile — the paper's compile cliff, enforced at link time
	// instead of silently mis-emulating. Off by default: the simulator
	// normally wants to run over-limit programs to measure them.
	strictLimits bool

	// progCache memoises shader compilation by (stage, source hash) so
	// multi-pass kernels that rebuild identical programs every pass (the
	// reduction ladder, sgemm's per-level shaders) compile once per
	// context. Evicted by Destroy.
	progCache map[shaderCacheKey]shaderCacheEntry

	// sharedCache, when attached, memoises compilations across contexts
	// (one per device worker pool in the serving layer). Consulted before
	// progCache; see SharedProgramCache for the sharing conditions.
	sharedCache *SharedProgramCache
}

// defaultStrictLimits reads the GLES2GPGPU_STRICT_LIMITS environment
// toggle for new contexts.
func defaultStrictLimits() bool { return os.Getenv("GLES2GPGPU_STRICT_LIMITS") != "" }

// DefaultTileSize is the edge length of the square screen tiles the tiled
// fragment engine bins into. 32 matches the binning granularity class of
// the paper's tile-based parts (VideoCore IV, PowerVR SGX).
const DefaultTileSize = 32

// DefaultTiling reads the GLES2GPGPU_NO_TILING environment toggle for new
// contexts: tiling is on unless the variable is set.
func DefaultTiling() bool { return os.Getenv("GLES2GPGPU_NO_TILING") == "" }

// Framebuffer is a framebuffer object with a colour attachment.
type Framebuffer struct {
	name     uint32
	colorTex uint32
}

type statKey struct {
	program uint32
	w, h    int
}

// NewContext creates a GLES2 context on an EGL context.
func NewContext(ec *egl.Context) *Context {
	prof := ec.Disp.Profile()
	c := &Context{
		eglCtx:       ec,
		m:            ec.Disp.Machine,
		prof:         prof,
		textures:     make(map[uint32]*Texture),
		buffers:      make(map[uint32]*Buffer),
		framebuffers: make(map[uint32]*Framebuffer),
		shaders:      make(map[uint32]*Shader),
		programs:     make(map[uint32]*Program),
		alloc:        mem.NewAllocator(prof.TexAlloc),
		statCache:    make(map[statKey]drawStats),
		progCache:    make(map[shaderCacheKey]shaderCacheEntry),
		workers:      defaultWorkers(),
		jit:          shader.DefaultJIT(),
		passes:       shader.DefaultPasses(),
		tiling:       DefaultTiling(),
		tileSize:     DefaultTileSize,
		lanes:        shader.DefaultLanes(),
		laneWidth:    shader.DefaultLaneWidth,
		maskedLanes:  shader.DefaultMaskedLanes(),
		coherence:    DefaultCoherence(),
		cohCache:     make(map[cohKey]*cohDraw),
		strictLimits: defaultStrictLimits(),
	}
	c.colorMask = [4]bool{true, true, true, true}
	c.blendSrc, c.blendDst = ONE, ZERO
	if s := ec.Draw; s != nil {
		c.viewport = [4]int{0, 0, s.W, s.H}
	}
	return c
}

// Destroy releases host-side resources owned by the context: the shading
// worker pool, the compiled-program cache and pooled VM environments. The
// context must not be used for draws afterwards (a later draw would
// lazily restart the pool, but callers should treat Destroy as final).
func (c *Context) Destroy() {
	if c.pool != nil {
		c.pool.shutdown()
		c.pool = nil
	}
	c.progCache = make(map[shaderCacheKey]shaderCacheEntry)
	c.fsEnvPool = nil
	c.fsLanePool = nil
	c.coverScratch = nil
	c.cohCache = make(map[cohKey]*cohDraw)
	c.cohBytes = 0
}

// Machine exposes the timing model (for harnesses and tests).
func (c *Context) Machine() *gpu.Machine { return c.m }

// Profile returns the device profile.
func (c *Context) Profile() *device.Profile { return c.prof }

// Allocator exposes GPU-memory bookkeeping.
func (c *Context) Allocator() *mem.Allocator { return c.alloc }

// EGL returns the underlying EGL context.
func (c *Context) EGL() *egl.Context { return c.eglCtx }

// SetTimingOnly toggles replay mode: functional execution (shader VM,
// rasterisation, pixel copies) is skipped and the last measured work
// amounts are resubmitted to the timing model. Use after one functional
// iteration to simulate the paper's 10 000-repetition methodology without
// 10 000 VM sweeps; the per-fragment cost of these kernels is
// data-independent, so the replayed timing is exact.
func (c *Context) SetTimingOnly(on bool) { c.timingOnly = on }

// TimingOnly reports the replay-mode state.
func (c *Context) TimingOnly() bool { return c.timingOnly }

// SetFunctionalOnly toggles functional-only mode, the complement of
// SetTimingOnly: API calls execute their functional effects (compilation,
// uploads, shading, pixel stores) but advance no virtual time and submit no
// work to the timing model. The pipeline planner uses this to execute a
// fused pass graph for its bytes after separately replaying the unfused
// call sequence for its timing, keeping fused runs bit-identical to
// unfused ones in both outputs and virtual-time figures.
func (c *Context) SetFunctionalOnly(on bool) { c.functionalOnly = on }

// FunctionalOnly reports the functional-only-mode state.
func (c *Context) FunctionalOnly() bool { return c.functionalOnly }

// SetJIT selects the shader execution backend: true runs draws on the
// closure-compiled engine, false on the reference interpreter. Framebuffer
// bytes, Cycles/TexFetches and every virtual-time figure are bit-identical
// either way; only host wall-clock time changes. The default comes from
// shader.DefaultJIT (on, unless GLES2GPGPU_NO_JIT is set).
func (c *Context) SetJIT(on bool) { c.jit = on }

// JIT reports whether the closure-compiled shader backend is selected.
func (c *Context) JIT() bool { return c.jit }

// SetPasses selects whether draws execute the optimised program form
// produced by the analysis pass pipeline (DCE + copy/constant
// propagation). Results are bit-identical either way — the OptProgram
// contract charges dead instructions their cycle cost and counts dead
// texture fetches — so this is an A/B escape hatch like SetJIT. The
// default comes from shader.DefaultPasses (on, unless GLES2GPGPU_NO_PASSES
// is set).
func (c *Context) SetPasses(on bool) { c.passes = on }

// Passes reports whether the optimised program form is selected.
func (c *Context) Passes() bool { return c.passes }

// SetTiling selects the tile-binned fragment engine for eligible parallel
// draws: triangles are binned into screen tiles (SetTileSize) and shaded
// tile-by-tile with dynamic work distribution, instead of in fixed
// horizontal bands. Framebuffer bytes and all virtual-time figures are
// bit-identical either way; only host scheduling changes. The default
// comes from GLES2GPGPU_NO_TILING (tiling on unless set).
func (c *Context) SetTiling(on bool) { c.tiling = on }

// Tiling reports whether the tile-binned fragment engine is selected.
func (c *Context) Tiling() bool { return c.tiling }

// SetTileSize sets the square tile edge length of the tiled fragment
// engine. n <= 0 restores DefaultTileSize.
func (c *Context) SetTileSize(n int) {
	if n <= 0 {
		n = DefaultTileSize
	}
	c.tileSize = n
}

// TileSize returns the configured tile edge length.
func (c *Context) TileSize() int { return c.tileSize }

// SetLanes selects the lane-batched (SoA) shader engine for eligible
// draws: straight-line fragment programs run batches of LaneWidth
// fragments through each instruction at once (see internal/shader/lanes.go),
// amortising per-instruction dispatch. Framebuffer bytes, Cycles/TexFetches
// and every virtual-time figure are bit-identical either way; only host
// wall-clock time changes. Branchy or discarding programs (jacobi) run
// under the divergence-masked extension when SetMaskedLanes is on, and
// fall back to the per-fragment engine otherwise; the lane engine is an
// extension of the compiled backend, so SetJIT(false) disables it too. The
// default comes from shader.DefaultLanes (on, unless GLES2GPGPU_NO_LANES
// is set).
func (c *Context) SetLanes(on bool) { c.lanes = on }

// Lanes reports whether the lane-batched shader engine is selected.
func (c *Context) Lanes() bool { return c.lanes }

// SetLaneWidth sets the SoA batch width of the lane-batched engine,
// clamped to [1, shader.MaxLaneWidth]; n <= 0 restores
// shader.DefaultLaneWidth. Width 1 effectively disables batching (the
// per-fragment engine is used). Results are bit-identical at any width.
func (c *Context) SetLaneWidth(n int) {
	if n <= 0 {
		n = shader.DefaultLaneWidth
	}
	if n > shader.MaxLaneWidth {
		n = shader.MaxLaneWidth
	}
	c.laneWidth = n
}

// LaneWidth returns the configured SoA batch width.
func (c *Context) LaneWidth() int { return c.laneWidth }

// SetMaskedLanes selects divergence-masked lane execution for branchy
// fragment programs the mask-safety proof admits (forward branches,
// per-lane discard and early return — jacobi): they run through the SoA
// lane engine under an active-lane mask (internal/shader/lanes_masked.go)
// instead of falling back to the per-fragment JIT. Framebuffer bytes,
// Cycles/TexFetches and every virtual-time figure are bit-identical either
// way; only host wall-clock time changes. A no-op unless the lane engine
// itself is on (SetLanes/SetJIT). The default comes from
// shader.DefaultMaskedLanes (on, unless GLES2GPGPU_NO_MASKED_LANES is
// set).
func (c *Context) SetMaskedLanes(on bool) { c.maskedLanes = on }

// MaskedLanes reports whether masked lane execution is selected.
func (c *Context) MaskedLanes() bool { return c.maskedLanes }

// LaneFallbackDraws returns the number of draws that wanted lane-batched
// execution (engine on and applicable to the draw) but shaded per-fragment
// because the program failed lane and mask eligibility.
func (c *Context) LaneFallbackDraws() int64 { return c.laneFallbackDraws }

// SetCoherence selects the cross-iteration tile-coherence engine for
// eligible draws: tiles of a repeated draw whose sampled inputs are
// byte-identical to the previous iteration replay their cached output
// bytes instead of re-shading (see coherence.go). Framebuffer bytes,
// Cycles/TexFetches and every virtual-time figure are bit-identical either
// way — elided tiles still contribute their cached modelled cost — so this
// is a host-time knob like SetTiling. Turning it off also drops the cached
// snapshots. The default comes from DefaultCoherence (on, unless
// GLES2GPGPU_NO_COHERENCE is set).
func (c *Context) SetCoherence(on bool) {
	c.coherence = on
	if !on {
		c.cohCache = make(map[cohKey]*cohDraw)
		c.cohBytes = 0
	}
}

// Coherence reports whether the cross-iteration tile-coherence engine is
// selected.
func (c *Context) Coherence() bool { return c.coherence }

// SetStrictLimits toggles analysis-based device-limit enforcement at
// LinkProgram time: when on, programs whose worst-path resource counts
// exceed the device profile fail to link with a diagnostic, reproducing
// the paper's "block >16 fails compilation" behaviour. Defaults to off
// (or GLES2GPGPU_STRICT_LIMITS in the environment) so measurement runs
// can still execute over-limit programs.
func (c *Context) SetStrictLimits(on bool) { c.strictLimits = on }

// StrictLimits reports whether link-time limit enforcement is on.
func (c *Context) StrictLimits() bool { return c.strictLimits }

// setErr records the first error since the last GetError.
func (c *Context) setErr(e Enum) {
	if c.errCode == NO_ERROR {
		c.errCode = e
	}
}

// GetError returns and clears the sticky error, like glGetError.
func (c *Context) GetError() Enum {
	e := c.errCode
	c.errCode = NO_ERROR
	return e
}

// ErrName renders an error code.
func ErrName(e Enum) string {
	switch e {
	case NO_ERROR:
		return "NO_ERROR"
	case INVALID_ENUM:
		return "INVALID_ENUM"
	case INVALID_VALUE:
		return "INVALID_VALUE"
	case INVALID_OPERATION:
		return "INVALID_OPERATION"
	case OUT_OF_MEMORY:
		return "OUT_OF_MEMORY"
	case INVALID_FRAMEBUFFER_OPERATION:
		return "INVALID_FRAMEBUFFER_OPERATION"
	}
	return fmt.Sprintf("0x%04X", uint32(e))
}

func (c *Context) apiCost() {
	if c.functionalOnly {
		return
	}
	c.m.CPU.Advance(c.prof.APICallCost)
}

func (c *Context) genName() uint32 {
	c.nextName++
	return c.nextName
}

// ActiveTexture selects the active texture unit.
func (c *Context) ActiveTexture(unit Enum) {
	c.apiCost()
	idx := int(unit - TEXTURE0)
	if idx < 0 || idx >= MaxTextureUnits {
		c.setErr(INVALID_ENUM)
		return
	}
	c.activeTexture = idx
}

// Viewport sets the viewport transform.
func (c *Context) Viewport(x, y, w, h int) {
	c.apiCost()
	if w < 0 || h < 0 {
		c.setErr(INVALID_VALUE)
		return
	}
	c.viewport = [4]int{x, y, w, h}
}

// ClearColor sets the clear colour.
func (c *Context) ClearColor(r, g, b, a float32) {
	c.apiCost()
	c.clearColor = [4]float32{clamp01(r), clamp01(g), clamp01(b), clamp01(a)}
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Enable turns on a capability (only BLEND in this subset).
func (c *Context) Enable(cap Enum) {
	c.apiCost()
	if cap != BLEND {
		c.setErr(INVALID_ENUM)
		return
	}
	c.blendEnabled = true
}

// Disable turns off a capability.
func (c *Context) Disable(cap Enum) {
	c.apiCost()
	if cap != BLEND {
		c.setErr(INVALID_ENUM)
		return
	}
	c.blendEnabled = false
}

// BlendFunc sets the blend factors. The subset supports ZERO, ONE,
// SRC_ALPHA and ONE_MINUS_SRC_ALPHA — enough for additive accumulation
// (the GPGPU scatter-add idiom: glBlendFunc(GL_ONE, GL_ONE)) and classic
// alpha compositing.
func (c *Context) BlendFunc(src, dst Enum) {
	c.apiCost()
	for _, f := range []Enum{src, dst} {
		switch f {
		case ZERO, ONE, SRC_ALPHA, ONE_MINUS_SRC_ALPHA:
		default:
			c.setErr(INVALID_ENUM)
			return
		}
	}
	c.blendSrc, c.blendDst = src, dst
}

// blendFactor evaluates a blend factor for the given source colour.
func blendFactor(f Enum, src [4]float32, ch int) float32 {
	switch f {
	case ZERO:
		return 0
	case SRC_ALPHA:
		return src[3]
	case ONE_MINUS_SRC_ALPHA:
		return 1 - src[3]
	}
	return 1 // ONE
}

// Finish drains all submitted work (glFinish).
func (c *Context) Finish() {
	c.apiCost()
	c.m.WaitAll()
}

// Flush is a no-op in this model (submission is immediate).
func (c *Context) Flush() { c.apiCost() }

// GetString returns implementation strings.
func (c *Context) GetString(name Enum) string {
	switch name {
	case 0x1F00: // VENDOR
		return "gles2gpgpu simulator"
	case 0x1F01: // RENDERER
		return c.prof.Name
	case 0x1F02: // VERSION
		return "OpenGL ES 2.0 (simulated)"
	case 0x8B8C: // SHADING_LANGUAGE_VERSION
		return "OpenGL ES GLSL ES 1.00 (simulated)"
	case 0x1F03: // EXTENSIONS
		return "GL_EXT_discard_framebuffer GL_EXT_mul24"
	}
	c.setErr(INVALID_ENUM)
	return ""
}
