package gles

import (
	"bytes"
	"testing"

	"gles2gpgpu/internal/device"
)

// runScenarioJIT is runScenario with an explicit execution-backend choice:
// the closure-compiled engine or the reference interpreter.
func runScenarioJIT(t *testing.T, workers int, jit bool, w, h int, scenario func(gl *Context) uint32) drawOutcome {
	t.Helper()
	env := newEnv(t, device.Generic(), w, h, false)
	gl := env.gl
	gl.SetWorkers(workers)
	gl.SetJIT(jit)
	defer gl.Destroy()
	prog := scenario(gl)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("scenario error: %s", ErrName(e))
	}
	out := drawOutcome{pixels: make([]byte, w*h*4)}
	gl.ReadPixels(0, 0, w, h, RGBA, UNSIGNED_BYTE, out.pixels)
	var ok bool
	out.fragments, out.cycles, out.texFetches, ok = gl.DrawStatsFor(prog, w, h)
	if !ok {
		t.Fatal("no draw stats recorded")
	}
	return out
}

// expectJITParity demands identical framebuffers and identical
// virtual-time counters across the full execution-strategy matrix:
// {interpreter, compiled} × {serial, 4 workers}.
func expectJITParity(t *testing.T, w, h int, scenario func(gl *Context) uint32) {
	t.Helper()
	ref := runScenarioJIT(t, 1, false, w, h, scenario)
	for _, cfg := range []struct {
		name    string
		workers int
		jit     bool
	}{
		{"jit-serial", 1, true},
		{"jit-parallel", 4, true},
		{"interp-parallel", 4, false},
	} {
		got := runScenarioJIT(t, cfg.workers, cfg.jit, w, h, scenario)
		if !bytes.Equal(ref.pixels, got.pixels) {
			for i := range ref.pixels {
				if ref.pixels[i] != got.pixels[i] {
					t.Fatalf("%s: framebuffers diverge at byte %d (pixel %d): interp-serial %d, %s %d",
						cfg.name, i, i/4, ref.pixels[i], cfg.name, got.pixels[i])
				}
			}
		}
		if ref.fragments != got.fragments {
			t.Errorf("%s: fragments: %d vs %d", cfg.name, ref.fragments, got.fragments)
		}
		if ref.cycles != got.cycles {
			t.Errorf("%s: cycles: %d vs %d", cfg.name, ref.cycles, got.cycles)
		}
		if ref.texFetches != got.texFetches {
			t.Errorf("%s: tex fetches: %d vs %d", cfg.name, ref.texFetches, got.texFetches)
		}
	}
}

// TestJITParityTexturedQuad: a texturing, loop-unrolled fragment shader —
// the shape of every GPGPU kernel — through both vertex and fragment
// stages on both backends.
func TestJITParityTexturedQuad(t *testing.T) {
	const n = 64
	expectJITParity(t, n, n, func(gl *Context) uint32 {
		checkerTexture(gl, n, n)
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
uniform sampler2D u_tex;
void main() {
	vec4 s = texture2D(u_tex, v_tex);
	float acc = 0.0;
	for (int i = 0; i < 4; i++) {
		acc += s.x * 0.3 + v_tex.y * 0.1;
	}
	gl_FragColor = vec4(fract(acc), s.yz, 1.0);
}`)
		gl.UseProgram(p)
		gl.Uniform1i(gl.GetUniformLocation(p, "u_tex"), 0)
		drawQuad(t, gl, p)
		return p
	})
}

// TestJITParityDiscard: the discard path (branchy compilation, fragments
// killed) must agree on pixels and on the cycle cost of killed fragments.
func TestJITParityDiscard(t *testing.T) {
	const n = 64
	expectJITParity(t, n, n, func(gl *Context) uint32 {
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main() {
	if (v_tex.x > 0.5) discard;
	gl_FragColor = vec4(v_tex, 0.5, 1.0);
}`)
		gl.UseProgram(p)
		drawQuad(t, gl, p)
		return p
	})
}

// TestJITParityTranscendental: float64-lane ops (sin, pow, inversesqrt)
// must round identically through both backends.
func TestJITParityTranscendental(t *testing.T) {
	const n = 64
	expectJITParity(t, n, n, func(gl *Context) uint32 {
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main() {
	float a = sin(v_tex.x * 6.28) * 0.5 + 0.5;
	float b = pow(v_tex.y + 0.1, 2.2);
	float c = inversesqrt(v_tex.x + 1.0);
	gl_FragColor = vec4(a, fract(b), fract(c), 1.0);
}`)
		gl.UseProgram(p)
		drawQuad(t, gl, p)
		return p
	})
}
