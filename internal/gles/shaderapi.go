package gles

import (
	"crypto/sha256"
	"fmt"
	"math"

	"gles2gpgpu/internal/glsl"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/shader/analysis"
)

// shaderCacheKey identifies a compiled shader by stage and source hash.
type shaderCacheKey struct {
	stage Enum
	hash  [sha256.Size]byte
}

// shaderCacheEntry holds a successful compilation. Compiled Programs are
// immutable after Compile, so sharing one across shader objects (and the
// draws that execute it) is safe.
type shaderCacheEntry struct {
	checked  *glsl.CheckedShader
	compiled *shader.Program
}

func f32Bits(v float32) uint32     { return math.Float32bits(v) }
func f32FromBits(b uint32) float32 { return math.Float32frombits(b) }

// CreateShader creates a shader object.
func (c *Context) CreateShader(stype Enum) uint32 {
	c.apiCost()
	if stype != VERTEX_SHADER && stype != FRAGMENT_SHADER {
		c.setErr(INVALID_ENUM)
		return 0
	}
	name := c.genName()
	c.shaders[name] = &Shader{name: name, stype: stype}
	return name
}

// ShaderSource sets the GLSL source.
func (c *Context) ShaderSource(name uint32, src string) {
	c.apiCost()
	s, ok := c.shaders[name]
	if !ok {
		c.setErr(INVALID_VALUE)
		return
	}
	s.source = src
}

// CompileShader runs the full front end and back end. Compilation status
// and logs are queried with GetShaderiv / GetShaderInfoLog, as in GL.
func (c *Context) CompileShader(name uint32) {
	c.apiCost()
	s, ok := c.shaders[name]
	if !ok {
		c.setErr(INVALID_VALUE)
		return
	}
	stage := glsl.StageVertex
	if s.stype == FRAGMENT_SHADER {
		stage = glsl.StageFragment
	}
	s.compiled, s.checked, s.compileErr = nil, nil, nil
	// Multi-pass kernels rebuild byte-identical shaders every pass (the
	// reduction ladder, sgemm's double-buffered passes); memoise successful
	// compilations per context so each distinct source compiles once.
	key := shaderCacheKey{stage: s.stype, hash: sha256.Sum256([]byte(s.source))}
	if e, ok := c.progCache[key]; ok {
		s.checked, s.compiled = e.checked, e.compiled
		return
	}
	// Cross-context cache (worker pools sharing kernels): entries are
	// published fully built, so a hit needs no further work beyond copying
	// it into the per-context cache.
	if c.sharedCache != nil {
		if e, ok := c.sharedCache.lookup(key, c.passes); ok {
			s.checked, s.compiled = e.checked, e.compiled
			c.progCache[key] = e
			return
		}
	}
	cs, err := glsl.Frontend(s.source, glsl.CompileOptions{Stage: stage})
	if err != nil {
		s.compileErr = err
		return
	}
	prog, err := shader.Compile(cs)
	if err != nil {
		s.compileErr = err
		return
	}
	// Device implementation limits (the paper's block-size ceiling) are
	// enforced at compile time, like real drivers that refuse shaders
	// exceeding their instruction or texture-access maxima.
	if err := prog.CheckLimits(c.prof.Limits); err != nil {
		s.compileErr = err
		return
	}
	prog.Source = s.source
	// Attach the host-side optimisation passes (dead-code elimination,
	// copy/constant propagation). They are cycle-neutral by contract —
	// SetOptimized validates the instruction shapes and the differential
	// tests prove bit-exact outputs — so a validation failure just means
	// executing the unoptimised form.
	if c.passes {
		if o := analysis.Optimize(prog); o != nil {
			_ = prog.SetOptimized(o)
		}
	}
	s.checked = cs
	s.compiled = prog
	c.progCache[key] = shaderCacheEntry{checked: cs, compiled: prog}
	if c.sharedCache != nil {
		// Publish only after the program is fully built (limits checked,
		// passes attached): other contexts execute it as-is. A concurrent
		// first compile in two contexts at worst compiles twice; last
		// store wins and both artefacts are individually correct.
		c.sharedCache.store(key, c.passes, shaderCacheEntry{checked: cs, compiled: prog})
	}
}

// GetShaderiv queries COMPILE_STATUS (1/0).
func (c *Context) GetShaderiv(name uint32, pname Enum) int {
	s, ok := c.shaders[name]
	if !ok {
		c.setErr(INVALID_VALUE)
		return 0
	}
	if pname != COMPILE_STATUS {
		c.setErr(INVALID_ENUM)
		return 0
	}
	if s.compiled != nil {
		return 1
	}
	return 0
}

// GetShaderInfoLog returns the compile diagnostics.
func (c *Context) GetShaderInfoLog(name uint32) string {
	s, ok := c.shaders[name]
	if !ok {
		c.setErr(INVALID_VALUE)
		return ""
	}
	if s.compileErr != nil {
		return s.compileErr.Error()
	}
	return ""
}

// DeleteShader removes a shader object.
func (c *Context) DeleteShader(name uint32) {
	c.apiCost()
	delete(c.shaders, name)
}

// CreateProgram creates a program object.
func (c *Context) CreateProgram() uint32 {
	c.apiCost()
	name := c.genName()
	c.programs[name] = &Program{name: name}
	return name
}

// AttachShader attaches a compiled shader object.
func (c *Context) AttachShader(prog, shaderName uint32) {
	c.apiCost()
	p, ok := c.programs[prog]
	if !ok {
		c.setErr(INVALID_VALUE)
		return
	}
	s, ok := c.shaders[shaderName]
	if !ok {
		c.setErr(INVALID_VALUE)
		return
	}
	if s.stype == VERTEX_SHADER {
		p.vs = s
	} else {
		p.fs = s
	}
}

// LinkProgram links the attached shaders: varying matching, uniform
// location assignment and resource-limit checks.
func (c *Context) LinkProgram(prog uint32) {
	c.apiCost()
	p, ok := c.programs[prog]
	if !ok {
		c.setErr(INVALID_VALUE)
		return
	}
	p.linked = false
	p.linkErr = nil
	if p.vs == nil || p.fs == nil {
		p.linkErr = fmt.Errorf("link: program needs both a vertex and a fragment shader")
		return
	}
	if p.vs.compiled == nil || p.fs.compiled == nil {
		p.linkErr = fmt.Errorf("link: attached shaders are not successfully compiled")
		return
	}
	vp, fp := p.vs.compiled, p.fs.compiled

	// Varying matching: every fragment input must be produced by the
	// vertex shader (gl_FragCoord and friends are hardware-supplied).
	p.varyingMap = make([]int, fp.NumInputs)
	for i := range p.varyingMap {
		p.varyingMap[i] = -1
	}
	p.fragCoordReg = -1
	p.pointCoordReg = -1
	for _, in := range fp.Inputs {
		switch in.Name {
		case "gl_FragCoord":
			p.fragCoordReg = in.Reg
			continue
		case "gl_PointCoord":
			p.pointCoordReg = in.Reg
			continue
		case "gl_FrontFacing":
			continue // filled with defaults at raster time
		}
		out, ok := vp.LookupOutput(in.Name)
		if !ok {
			p.linkErr = fmt.Errorf("link: fragment varying %q is not written by the vertex shader", in.Name)
			return
		}
		for r := 0; r < varRegs(in.Type); r++ {
			p.varyingMap[in.Reg+r] = out.Reg + r
		}
	}
	// Varying budget check.
	if p.fs.checked.VaryingVectors > c.prof.Limits.MaxVaryingVectors {
		p.linkErr = fmt.Errorf("link: %d varying vectors exceed the limit of %d",
			p.fs.checked.VaryingVectors, c.prof.Limits.MaxVaryingVectors)
		return
	}
	if len(vp.Inputs) > c.prof.Limits.MaxAttributes {
		p.linkErr = fmt.Errorf("link: %d attributes exceed the limit of %d", len(vp.Inputs), c.prof.Limits.MaxAttributes)
		return
	}

	// Uniform table: merge by name across stages.
	p.locs = p.locs[:0]
	seen := map[string]int{}
	addUniform := func(u shader.UniformInfo, isVS bool) {
		idx, ok := seen[u.Name]
		if !ok {
			p.locs = append(p.locs, uniformLoc{name: u.Name, typ: u.Type, vsReg: -1, fsReg: -1, regs: u.Regs, samplerIdx: -1})
			idx = len(p.locs) - 1
			seen[u.Name] = idx
		}
		if isVS {
			p.locs[idx].vsReg = u.Reg
		} else {
			p.locs[idx].fsReg = u.Reg
			p.locs[idx].samplerIdx = u.SamplerIdx
		}
	}
	for _, u := range vp.Uniforms {
		addUniform(u, true)
	}
	for _, u := range fp.Uniforms {
		addUniform(u, false)
	}

	// Strict link-time limit checking (opt-in): the dataflow-derived
	// constraints — dependent-texture-read depth, live temp pressure —
	// that the cheap compile-time counters in Program.CheckLimits cannot
	// see. Mirrors drivers that defer such rejections to link.
	if c.strictLimits {
		lp := analysis.LimitProfile{Name: c.prof.Name, Limits: c.prof.Limits}
		for _, sp := range []*shader.Program{vp, fp} {
			res := analysis.CountResources(analysis.BuildCFG(sp))
			if err := analysis.CheckLimitsError(sp, res, lp); err != nil {
				p.linkErr = fmt.Errorf("link: %w", err)
				return
			}
		}
	}

	p.vsProg, p.fsProg = vp, fp
	p.vsUniforms = make([]shader.Vec4, maxInt(vp.NumUniform, 1))
	p.fsUniforms = make([]shader.Vec4, maxInt(fp.NumUniform, 1))
	p.samplerUnits = make([]int, len(fp.Samplers))
	p.attribs = vp.Inputs
	p.linked = true
}

func varRegs(t glsl.Type) int {
	per := 1
	if t.IsMatrix() {
		per = t.MatrixCols()
	}
	if t.ArrayLen > 0 {
		return per * t.ArrayLen
	}
	return per
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GetProgramiv queries LINK_STATUS.
func (c *Context) GetProgramiv(name uint32, pname Enum) int {
	p, ok := c.programs[name]
	if !ok {
		c.setErr(INVALID_VALUE)
		return 0
	}
	if pname != LINK_STATUS {
		c.setErr(INVALID_ENUM)
		return 0
	}
	if p.linked {
		return 1
	}
	return 0
}

// GetProgramInfoLog returns link diagnostics.
func (c *Context) GetProgramInfoLog(name uint32) string {
	p, ok := c.programs[name]
	if !ok {
		c.setErr(INVALID_VALUE)
		return ""
	}
	if p.linkErr != nil {
		return p.linkErr.Error()
	}
	return ""
}

// DeleteProgram removes a program object.
func (c *Context) DeleteProgram(name uint32) {
	c.apiCost()
	delete(c.programs, name)
	if c.current == name {
		c.current = 0
	}
}

// UseProgram selects the program for subsequent draws.
func (c *Context) UseProgram(name uint32) {
	c.apiCost()
	if name != 0 {
		p, ok := c.programs[name]
		if !ok || !p.linked {
			c.setErr(INVALID_OPERATION)
			return
		}
	}
	c.current = name
}

// GetUniformLocation returns a location handle (-1 if absent, like GL).
func (c *Context) GetUniformLocation(prog uint32, name string) int {
	c.apiCost()
	p, ok := c.programs[prog]
	if !ok || !p.linked {
		c.setErr(INVALID_OPERATION)
		return -1
	}
	for i := range p.locs {
		if p.locs[i].name == name {
			return i + 1
		}
	}
	return -1
}

// GetAttribLocation returns the attribute slot for a vertex attribute.
func (c *Context) GetAttribLocation(prog uint32, name string) int {
	c.apiCost()
	p, ok := c.programs[prog]
	if !ok || !p.linked {
		c.setErr(INVALID_OPERATION)
		return -1
	}
	for i, a := range p.attribs {
		if a.Name == name {
			_ = i
			return a.Reg
		}
	}
	return -1
}

func (c *Context) uniformSlot(loc int) (*Program, *uniformLoc) {
	p := c.programs[c.current]
	if p == nil || !p.linked {
		c.setErr(INVALID_OPERATION)
		return nil, nil
	}
	if loc <= 0 || loc > len(p.locs) {
		if loc == -1 {
			return nil, nil // silently ignored, like GL
		}
		c.setErr(INVALID_OPERATION)
		return nil, nil
	}
	return p, &p.locs[loc-1]
}

// setUniformVec writes one register-worth of data to both stages.
func setUniformVec(p *Program, u *uniformLoc, reg int, v shader.Vec4) {
	if u.vsReg >= 0 {
		p.vsUniforms[u.vsReg+reg] = v
	}
	if u.fsReg >= 0 {
		p.fsUniforms[u.fsReg+reg] = v
	}
}

// Uniform1f sets a float uniform.
func (c *Context) Uniform1f(loc int, x float32) { c.uniformNf(loc, [4]float32{x, 0, 0, 0}) }

// Uniform2f sets a vec2 uniform.
func (c *Context) Uniform2f(loc int, x, y float32) { c.uniformNf(loc, [4]float32{x, y, 0, 0}) }

// Uniform3f sets a vec3 uniform.
func (c *Context) Uniform3f(loc int, x, y, z float32) { c.uniformNf(loc, [4]float32{x, y, z, 0}) }

// Uniform4f sets a vec4 uniform.
func (c *Context) Uniform4f(loc int, x, y, z, w float32) { c.uniformNf(loc, [4]float32{x, y, z, w}) }

func (c *Context) uniformNf(loc int, v [4]float32) {
	c.apiCost()
	p, u := c.uniformSlot(loc)
	if u == nil {
		return
	}
	if u.samplerIdx >= 0 {
		c.setErr(INVALID_OPERATION)
		return
	}
	setUniformVec(p, u, 0, shader.Vec4(v))
}

// Uniform1i sets an int or sampler uniform. For samplers the value is the
// texture unit.
func (c *Context) Uniform1i(loc int, v int) {
	c.apiCost()
	p, u := c.uniformSlot(loc)
	if u == nil {
		return
	}
	if u.samplerIdx >= 0 {
		if v < 0 || v >= MaxTextureUnits {
			c.setErr(INVALID_VALUE)
			return
		}
		p.samplerUnits[u.samplerIdx] = v
		return
	}
	setUniformVec(p, u, 0, shader.Vec4{float32(v), 0, 0, 0})
}

// Uniform1fv sets a float array uniform.
func (c *Context) Uniform1fv(loc int, vals []float32) {
	c.apiCost()
	p, u := c.uniformSlot(loc)
	if u == nil {
		return
	}
	for i, v := range vals {
		if i >= u.regs {
			break
		}
		setUniformVec(p, u, i, shader.Vec4{v, 0, 0, 0})
	}
}

// Uniform4fv sets a vec4 array uniform (count inferred from len/4).
func (c *Context) Uniform4fv(loc int, vals []float32) {
	c.apiCost()
	p, u := c.uniformSlot(loc)
	if u == nil {
		return
	}
	for i := 0; i*4+3 < len(vals); i++ {
		if i >= u.regs {
			break
		}
		setUniformVec(p, u, i, shader.Vec4{vals[i*4], vals[i*4+1], vals[i*4+2], vals[i*4+3]})
	}
}

// UniformMatrix4fv sets a mat4 uniform from 16 column-major floats.
func (c *Context) UniformMatrix4fv(loc int, vals []float32) {
	c.apiCost()
	p, u := c.uniformSlot(loc)
	if u == nil {
		return
	}
	if len(vals) < 16 {
		c.setErr(INVALID_VALUE)
		return
	}
	for col := 0; col < 4; col++ {
		setUniformVec(p, u, col, shader.Vec4{vals[col*4], vals[col*4+1], vals[col*4+2], vals[col*4+3]})
	}
}

// UniformMatrix2fv sets a mat2 uniform from 4 column-major floats.
func (c *Context) UniformMatrix2fv(loc int, vals []float32) {
	c.apiCost()
	p, u := c.uniformSlot(loc)
	if u == nil {
		return
	}
	if len(vals) < 4 {
		c.setErr(INVALID_VALUE)
		return
	}
	for col := 0; col < 2; col++ {
		setUniformVec(p, u, col, shader.Vec4{vals[col*2], vals[col*2+1], 0, 0})
	}
}
