package gles

import (
	"math"

	"gles2gpgpu/internal/gpu"
	"gles2gpgpu/internal/raster"
	"gles2gpgpu/internal/shader"
	"gles2gpgpu/internal/timing"
)

// PrimeStats injects measured per-draw work amounts for (program, target
// w×h) into the timing-replay cache. Harnesses use it to run paper-sized
// timing simulations after measuring per-fragment costs functionally at a
// smaller size — exact for kernels whose per-fragment work is
// size-independent (all kernels in this repository).
func (c *Context) PrimeStats(program uint32, w, h int, fragments, cycles, texFetches int64) {
	c.statCache[statKey{program: program, w: w, h: h}] = drawStats{
		fragments: fragments, cycles: cycles, texFetches: texFetches, valid: true,
	}
}

// DrawStatsFor returns the cached work amounts measured by the last
// functional draw of (program, w×h).
func (c *Context) DrawStatsFor(program uint32, w, h int) (fragments, cycles, texFetches int64, ok bool) {
	st, found := c.statCache[statKey{program: program, w: w, h: h}]
	if !found || !st.valid {
		return 0, 0, 0, false
	}
	return st.fragments, st.cycles, st.texFetches, true
}

// ColorMask controls which channels draws write. Disabling the alpha
// channel is how the fp24 kernels cut output traffic to 3 bytes per element
// (paper §II Kernel Code: "input and output can be restricted in
// reading/writing only 3 out of the 4 bytes of each element, reducing the
// bandwidth requirements by 25%").
func (c *Context) ColorMask(r, g, b, a bool) {
	c.apiCost()
	c.colorMask = [4]bool{r, g, b, a}
}

// DrawArrays renders primitives with the current program.
//
// Functionally it runs the compiled vertex shader per vertex, assembles
// triangles, rasterises and runs the fragment shader per fragment, writing
// the target's pixel store. For timing it submits one render job to the
// TBDR machine with the measured fragment count, cycle count and texture
// fetches. In timing-only mode the measured amounts from the last
// functional draw of the same (program, target-size) are replayed.
func (c *Context) DrawArrays(mode Enum, first, count int) {
	p := c.programs[c.current]
	if p == nil || !p.linked {
		c.setErr(INVALID_OPERATION)
		return
	}
	switch mode {
	case POINTS, TRIANGLES, TRIANGLE_STRIP, TRIANGLE_FAN:
	default:
		c.setErr(INVALID_ENUM)
		return
	}
	if first < 0 || count < 0 {
		c.setErr(INVALID_VALUE)
		return
	}
	if count == 0 || (mode != POINTS && count < 3) {
		return
	}
	tgt, ok := c.currentTarget()
	if !ok {
		c.setErr(INVALID_FRAMEBUFFER_OPERATION)
		return
	}

	// Driver-side vertex sourcing costs and readiness (paper §II Vertex
	// Processing): client arrays pay a per-draw copy, VBOs pay only their
	// usage-hint consistency cost.
	var extraCPU timing.Time
	var verticesReady timing.Time
	for i := range c.attribs {
		a := &c.attribs[i]
		if !a.enabled {
			continue
		}
		if a.clientData != nil {
			stride := a.strideBytes
			if stride == 0 {
				stride = a.size * 4
			}
			bytes := count * stride
			extraCPU += c.prof.BufAlloc.AllocTime(bytes) +
				timing.Time(int64(c.prof.ClientArrayCostPerByte)*int64(bytes))
			continue
		}
		if b := c.buffers[a.buffer]; b != nil {
			extraCPU += c.prof.VBOHintCost[usageHint(b.usage)]
			if !c.functionalOnly {
				if r := c.m.ReadyAt(b.res); r > verticesReady {
					verticesReady = r
				}
			}
		}
	}

	// Sampled textures: the scheduling dependencies of the fragment pass.
	var reads []gpu.ResID
	samplers := make([]*Texture, len(p.samplerUnits))
	for i, unit := range p.samplerUnits {
		t := c.textures[c.boundTex[unit]]
		samplers[i] = t
		if t != nil && t.allocated {
			reads = append(reads, t.res)
		}
	}

	key := statKey{program: c.current, w: tgt.w, h: tgt.h}
	if c.timingOnly {
		if st, ok := c.statCache[key]; ok && st.valid {
			c.submitJob(p, tgt, st, reads, verticesReady, count, extraCPU)
			return
		}
		// No cached measurement: fall through to a functional draw.
	}

	st := c.executeDraw(p, tgt, mode, first, count, samplers)
	if !st.valid {
		return // error already recorded
	}
	c.statCache[key] = st
	if c.functionalOnly {
		return // functional effects only: nothing reaches the timing model
	}
	c.submitJob(p, tgt, st, reads, verticesReady, count, extraCPU)
}

func (c *Context) submitJob(p *Program, tgt renderTarget, st drawStats, reads []gpu.ResID, verticesReady timing.Time, vertexCount int, extraCPU timing.Time) {
	bpp := 4
	texBytes := st.texFetches
	if !c.colorMask[3] {
		bpp = 3
		// The paper's fp24 kernels read only 3 of 4 bytes per element,
		// nominally a 25% bandwidth saving; cache-line granularity lets
		// the texture path realise about half of it.
		texBytes = texBytes * 7 / 8
	}
	c.m.Draw(gpu.DrawJob{
		Target:           tgt.res,
		TargetW:          tgt.w,
		TargetH:          tgt.h,
		CoveredPixels:    st.fragments,
		FragCycles:       st.cycles,
		TexFetches:       texBytes,
		BytesPerPixelOut: bpp,
		Reads:            reads,
		VerticesReady:    verticesReady,
		VertexCount:      vertexCount,
		ExtraCPUCost:     extraCPU,
	})
}

// executeDraw runs the functional pipeline and measures the work.
func (c *Context) executeDraw(p *Program, tgt renderTarget, mode Enum, first, count int, samplers []*Texture) drawStats {
	vp, fp := p.vsProg, p.fsProg
	if c.envProg != p {
		c.vsEnv = shader.NewEnv(vp)
		c.fsEnv = shader.NewEnv(fp)
		c.envProg = p
	}
	vsEnv, fsEnv := c.vsEnv, c.fsEnv
	vsEnv.Uniforms = p.vsUniforms
	fsEnv.Uniforms = p.fsUniforms
	// Draw-time sampler specialization: per-slot fetch functions resolved
	// once, with the generic closure retained for out-of-range slots.
	texFns := specializeSamplers(samplers)
	fsEnv.Samplers = texFns
	fsEnv.Sample = envSampler(samplers)

	cost := &c.prof.CostModel
	execVS := shader.Executor(vp, cost, c.jit, c.passes)
	execFS := shader.Executor(fp, cost, c.jit, c.passes)

	// Masked-lane adoption signal: count draws that wanted lane-batched
	// shading but must run per-fragment (glslint's mask-fallback finding
	// says why; the daemon exports the count per device).
	if c.lanes && c.jit && c.laneWidth >= 2 && c.laneCompiledFor(fp) == nil {
		c.laneFallbackDraws++
	}

	// Vertex stage.
	posOut, hasPos := vp.LookupOutput("gl_Position")
	if !hasPos {
		c.setErr(INVALID_OPERATION)
		return drawStats{}
	}
	psOut, hasPS := vp.LookupOutput("gl_PointSize")
	pointSizes := make([]float32, 0)
	if mode == POINTS {
		pointSizes = make([]float32, count)
	}
	verts := make([]raster.Vertex, count)
	for vi := 0; vi < count; vi++ {
		vsEnv.Reset()
		for _, in := range vp.Inputs {
			val, ok := c.attribValue(in.Reg, first+vi)
			if !ok {
				c.setErr(INVALID_OPERATION)
				return drawStats{}
			}
			vsEnv.Inputs[in.Reg] = shader.Vec4(val)
		}
		if err := execVS(vsEnv); err != nil {
			c.setErr(INVALID_OPERATION)
			return drawStats{}
		}
		v := &verts[vi]
		v.Pos = vsEnv.Outputs[posOut.Reg]
		v.NumVar = fp.NumInputs
		if v.NumVar > raster.MaxVaryings {
			c.setErr(INVALID_OPERATION)
			return drawStats{}
		}
		for reg := 0; reg < fp.NumInputs; reg++ {
			src := p.varyingMap[reg]
			if src >= 0 {
				v.Varyings[reg] = vsEnv.Outputs[src]
			}
		}
		if mode == POINTS {
			size := float32(1)
			if hasPS {
				if s := vsEnv.Outputs[psOut.Reg][0]; s > 1 {
					size = s
				}
			}
			pointSizes[vi] = size
		}
	}

	if mode == POINTS {
		return c.rasterizePoints(p, tgt, verts, pointSizes, samplers)
	}

	// Primitive assembly.
	var tris [][3]int
	switch mode {
	case TRIANGLES:
		for i := 0; i+2 < count; i += 3 {
			tris = append(tris, [3]int{i, i + 1, i + 2})
		}
	case TRIANGLE_STRIP:
		for i := 0; i+2 < count; i++ {
			if i%2 == 0 {
				tris = append(tris, [3]int{i, i + 1, i + 2})
			} else {
				tris = append(tris, [3]int{i + 1, i, i + 2})
			}
		}
	case TRIANGLE_FAN:
		for i := 1; i+1 < count; i++ {
			tris = append(tris, [3]int{0, i, i + 1})
		}
	}

	vpX, vpY, vpW, vpH := c.viewport[0], c.viewport[1], c.viewport[2], c.viewport[3]
	if vpW == 0 || vpH == 0 {
		vpW, vpH = tgt.w, tgt.h
	}

	// Triangle setup up front: the parallel path needs the full primitive
	// list (each band worker walks every triangle in submission order), and
	// the bounding-box areas give the fragment estimate that gates it.
	setups := make([]raster.Triangle, 0, len(tris))
	var estFrags int64
	for _, tri := range tris {
		t, ok := raster.Setup(&verts[tri[0]], &verts[tri[1]], &verts[tri[2]], vpW, vpH)
		if !ok {
			continue
		}
		x0, y0, x1, y1 := t.Bounds()
		estFrags += int64(x1-x0+1) * int64(y1-y0+1)
		setups = append(setups, t)
	}
	// Cross-iteration tile coherence: eligible repeated draws elide tiles
	// whose sampled inputs are byte-identical to the previous iteration
	// (see coherence.go). Works at any worker count — unlike the parallel
	// paths it pays for itself through elision, not load balancing.
	if c.coherentEligible(fp, tgt, samplers) {
		if st, ok := c.shadeTrianglesCoherent(p, tgt, setups, vpX, vpY, samplers); ok {
			return st
		}
	}
	if c.parallelEligible(fp, estFrags) {
		if c.tiling {
			if st, ok := c.shadeTrianglesTiled(p, tgt, setups, vpX, vpY, samplers, texFns); ok {
				return st
			}
		}
		if st, ok := c.shadeTrianglesParallel(p, tgt, setups, vpX, vpY, samplers, texFns); ok {
			return st
		}
	}

	// Lane-batched serial shading: straight-line programs gather batches of
	// laneWidth fragments and run them through the SoA engine (lanes.go).
	// The rasteriser walk and the scatter order are unchanged, so the
	// framebuffer bytes and counters are bit-identical to the scalar loop.
	if lc := c.laneCompiledFor(fp); lc != nil {
		ls := c.newLaneShader(lc, c.fsLanePoolFor(fp), p, tgt, texFns, fsEnv.Sample)
		for ti := range setups {
			setups[ti].Rasterize(func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
				px, py := vpX+x, vpY+y
				if px < 0 || py < 0 || px >= tgt.w || py >= tgt.h {
					return
				}
				ls.add(px, py, fc, varyings)
			})
		}
		bs := ls.finish()
		return drawStats{valid: true, fragments: bs.fragments, cycles: bs.cycles, texFetches: bs.texFetches}
	}

	st := drawStats{valid: true}
	startCycles := fsEnv.Cycles
	startTex := fsEnv.TexFetches
	fcReg := p.fragCoordReg
	mask := c.colorMask
	// The gl_FragColor register is draw-invariant: resolve the map lookup
	// once instead of per fragment.
	out, hasOut := fp.LookupOutput("gl_FragColor")

	for ti := range setups {
		setups[ti].Rasterize(func(x, y int, fc shader.Vec4, varyings []shader.Vec4) {
			px, py := vpX+x, vpY+y
			if px < 0 || py < 0 || px >= tgt.w || py >= tgt.h {
				return
			}
			fsEnv.Discarded = false
			for reg, v := range varyings {
				fsEnv.Inputs[reg] = v
			}
			if fcReg >= 0 {
				fsEnv.Inputs[fcReg] = fc
			}
			if err := execFS(fsEnv); err != nil {
				return
			}
			st.fragments++
			if fsEnv.Discarded || !hasOut {
				return
			}
			col := fsEnv.Outputs[out.Reg]
			c.writePixel(tgt.pixels, (py*tgt.w+px)*4, col, mask)
		})
	}
	st.cycles = fsEnv.Cycles - startCycles
	st.texFetches = fsEnv.TexFetches - startTex
	return st
}

// rasterizePoints renders GL_POINTS: each vertex covers a PointSize-sized
// square of fragments with flat (uninterpolated) varyings and a
// gl_PointCoord sweeping the square — the classic GPGPU *scatter*
// primitive on ES2-class hardware.
func (c *Context) rasterizePoints(p *Program, tgt renderTarget, verts []raster.Vertex, sizes []float32, samplers []*Texture) drawStats {
	fp := p.fsProg
	fsEnv := c.fsEnv
	cost := &c.prof.CostModel
	execFS := shader.Executor(fp, cost, c.jit, c.passes)
	vpX, vpY, vpW, vpH := c.viewport[0], c.viewport[1], c.viewport[2], c.viewport[3]
	if vpW == 0 || vpH == 0 {
		vpW, vpH = tgt.w, tgt.h
	}

	// Precompute each point's raster footprint; the parallel path needs the
	// full list to prove the rects pairwise disjoint before partitioning.
	rects := make([]pointRect, 0, len(verts))
	var estFrags int64
	for vi := range verts {
		v := &verts[vi]
		w := v.Pos[3]
		if w <= 0 {
			continue
		}
		sx := (float64(v.Pos[0])/float64(w)*0.5 + 0.5) * float64(vpW)
		sy := (float64(v.Pos[1])/float64(w)*0.5 + 0.5) * float64(vpH)
		size := float64(sizes[vi])
		if size < 1 {
			size = 1
		}
		half := size / 2
		x0 := int(math.Ceil(sx - half - 0.5))
		y0 := int(math.Ceil(sy - half - 0.5))
		n := int(size)
		if n < 1 {
			n = 1
		}
		estFrags += int64(n) * int64(n)
		rects = append(rects, pointRect{
			vi: vi, x0: x0, y0: y0, n: n, sx: sx, sy: sy, size: size, invW: 1 / w,
		})
	}
	if c.parallelEligible(fp, estFrags) && len(rects) >= 2 &&
		c.pointRectsDisjoint(rects, tgt, vpX, vpY, vpW, vpH) {
		return c.shadePointsParallel(p, tgt, verts, rects, vpX, vpY, vpW, vpH, samplers, fsEnv.Samplers)
	}

	out, hasOut := fp.LookupOutput("gl_FragColor")
	st := drawStats{valid: true}
	startCycles := fsEnv.Cycles
	startTex := fsEnv.TexFetches
	mask := c.colorMask

	for ri := range rects {
		r := &rects[ri]
		v := &verts[r.vi]
		sx, sy, size := r.sx, r.sy, r.size
		half := size / 2
		x0, y0, n := r.x0, r.y0, r.n
		w := v.Pos[3]
		for py := y0; py < y0+n; py++ {
			for px := x0; px < x0+n; px++ {
				tx, ty := vpX+px, vpY+py
				if tx < 0 || ty < 0 || tx >= tgt.w || ty >= tgt.h || px < 0 || py < 0 || px >= vpW || py >= vpH {
					continue
				}
				fsEnv.Discarded = false
				for reg := 0; reg < v.NumVar; reg++ {
					fsEnv.Inputs[reg] = v.Varyings[reg] // flat varyings
				}
				if p.fragCoordReg >= 0 {
					fsEnv.Inputs[p.fragCoordReg] = shader.Vec4{
						float32(px) + 0.5, float32(py) + 0.5, 0.5, 1 / w,
					}
				}
				if p.pointCoordReg >= 0 {
					fsEnv.Inputs[p.pointCoordReg] = shader.Vec4{
						float32((float64(px) + 0.5 - (sx - half)) / size),
						float32((float64(py) + 0.5 - (sy - half)) / size),
						0, 0,
					}
				}
				if err := execFS(fsEnv); err != nil {
					return st
				}
				st.fragments++
				if fsEnv.Discarded || !hasOut {
					continue
				}
				col := fsEnv.Outputs[out.Reg]
				c.writePixel(tgt.pixels, (ty*tgt.w+tx)*4, col, mask)
			}
		}
	}
	st.cycles = fsEnv.Cycles - startCycles
	st.texFetches = fsEnv.TexFetches - startTex
	return st
}

// writePixel stores a fragment colour with blending and the colour mask
// applied (the framebuffer stage of the pipeline).
func (c *Context) writePixel(pixels []byte, off int, col shader.Vec4, mask [4]bool) {
	if c.blendEnabled {
		for ci := 0; ci < 4; ci++ {
			if !mask[ci] {
				continue
			}
			dst := float32(pixels[off+ci]) / 255
			v := col[ci]*blendFactor(c.blendSrc, col, ci) + dst*blendFactor(c.blendDst, col, ci)
			pixels[off+ci] = encodeChannel(v)
		}
		return
	}
	for ci := 0; ci < 4; ci++ {
		if mask[ci] {
			pixels[off+ci] = encodeChannel(col[ci])
		}
	}
}

// encodeChannel converts a shader output in [0,1] to a stored byte with
// round-to-nearest, the conversion the [13] GPGPU encoding relies on. It
// delegates to the shader package's canonical definition so the OpQUANT
// instruction emitted by pass fusion applies the bit-identical conversion.
func encodeChannel(v float32) byte {
	return shader.EncodeChannelByte(v)
}
