package gles

import (
	"bytes"
	"testing"

	"gles2gpgpu/internal/device"
	"gles2gpgpu/internal/raster"
)

// runScenarioTiled runs a scenario with an explicit shading-engine choice:
// tiling on/off, tile size, worker count and backend.
func runScenarioTiled(t *testing.T, workers int, tiling bool, tileSize int, jit bool, w, h int, scenario func(gl *Context) uint32) drawOutcome {
	t.Helper()
	env := newEnv(t, device.Generic(), w, h, false)
	gl := env.gl
	gl.SetWorkers(workers)
	gl.SetTiling(tiling)
	gl.SetTileSize(tileSize)
	gl.SetJIT(jit)
	defer gl.Destroy()
	prog := scenario(gl)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("scenario error: %s", ErrName(e))
	}
	out := drawOutcome{pixels: make([]byte, w*h*4)}
	gl.ReadPixels(0, 0, w, h, RGBA, UNSIGNED_BYTE, out.pixels)
	var ok bool
	out.fragments, out.cycles, out.texFetches, ok = gl.DrawStatsFor(prog, w, h)
	if !ok {
		t.Fatal("no draw stats recorded")
	}
	return out
}

// expectTilingParity demands identical framebuffers and virtual-time
// counters across {tiling on/off} × {tile sizes} × {workers} × {quad fast
// path on/off}, referenced against serial interpretation.
func expectTilingParity(t *testing.T, w, h int, scenario func(gl *Context) uint32) {
	t.Helper()
	ref := runScenarioTiled(t, 1, false, DefaultTileSize, false, w, h, scenario)
	defer raster.SetQuadFast(true)
	for _, cfg := range []struct {
		name     string
		workers  int
		tiling   bool
		tileSize int
		jit      bool
		quadFast bool
	}{
		{"bands-4w", 4, false, DefaultTileSize, true, true},
		{"tiles-4w", 4, true, DefaultTileSize, true, true},
		{"tiles-4w-interp", 4, true, DefaultTileSize, false, true},
		{"tiles-4w-small", 4, true, 16, true, true},
		{"tiles-4w-tiny", 4, true, 8, false, true},
		{"tiles-4w-huge", 4, true, 4096, true, true},
		{"tiles-serial", 1, true, DefaultTileSize, true, true},
		{"tiles-4w-noquadfast", 4, true, DefaultTileSize, true, false},
		{"bands-4w-noquadfast", 4, false, DefaultTileSize, true, false},
	} {
		raster.SetQuadFast(cfg.quadFast)
		got := runScenarioTiled(t, cfg.workers, cfg.tiling, cfg.tileSize, cfg.jit, w, h, scenario)
		raster.SetQuadFast(true)
		if !bytes.Equal(ref.pixels, got.pixels) {
			for i := range ref.pixels {
				if ref.pixels[i] != got.pixels[i] {
					t.Fatalf("%s: framebuffers diverge at byte %d (pixel %d): ref %d, got %d",
						cfg.name, i, i/4, ref.pixels[i], got.pixels[i])
				}
			}
		}
		if ref.fragments != got.fragments {
			t.Errorf("%s: fragments: %d vs %d", cfg.name, ref.fragments, got.fragments)
		}
		if ref.cycles != got.cycles {
			t.Errorf("%s: cycles: %d vs %d", cfg.name, ref.cycles, got.cycles)
		}
		if ref.texFetches != got.texFetches {
			t.Errorf("%s: tex fetches: %d vs %d", cfg.name, ref.texFetches, got.texFetches)
		}
	}
}

// TestTilingParityTexturedQuad: the canonical GPGPU draw through the tiled
// engine — texture fetches, varying interpolation, full coverage.
func TestTilingParityTexturedQuad(t *testing.T) {
	const n = 128
	expectTilingParity(t, n, n, func(gl *Context) uint32 {
		checkerTexture(gl, n, n)
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
uniform sampler2D u_tex;
void main() {
	vec4 s = texture2D(u_tex, v_tex);
	gl_FragColor = vec4(s.xy, fract(s.z + v_tex.x), 1.0);
}`)
		gl.UseProgram(p)
		gl.Uniform1i(gl.GetUniformLocation(p, "u_tex"), 0)
		drawQuad(t, gl, p)
		return p
	})
}

// TestTilingParityNonPow2Viewport: a 100×84 target exercises partial edge
// tiles and rejects the quad fast path (area2 not a power of two), so the
// tiled engine must agree through the reference interpolator too.
func TestTilingParityNonPow2Viewport(t *testing.T) {
	expectTilingParity(t, 100, 84, func(gl *Context) uint32 {
		checkerTexture(gl, 100, 84)
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
uniform sampler2D u_tex;
void main() {
	gl_FragColor = texture2D(u_tex, v_tex);
}`)
		gl.UseProgram(p)
		gl.Uniform1i(gl.GetUniformLocation(p, "u_tex"), 0)
		drawQuad(t, gl, p)
		return p
	})
}

// TestTilingParityOverlap: overlapping blended triangles — the case whose
// per-pixel shade order the binning must preserve in submission order.
func TestTilingParityOverlap(t *testing.T) {
	const n = 128
	expectTilingParity(t, n, n, func(gl *Context) uint32 {
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main() {
	gl_FragColor = vec4(v_tex.x * 0.4, v_tex.y * 0.4, 0.2, 0.5);
}`)
		gl.UseProgram(p)
		gl.Enable(BLEND)
		gl.BlendFunc(SRC_ALPHA, ONE_MINUS_SRC_ALPHA)
		// Two overlapping quads (12 vertices): blending makes per-pixel
		// shade order observable.
		loc := gl.GetAttribLocation(p, "a_pos")
		gl.EnableVertexAttribArray(loc)
		verts := []float32{
			-1, -1, 1, -1, 1, 1, -1, -1, 1, 1, -1, 1,
			-0.75, -0.75, 0.9, -0.6, 0.8, 0.85, -0.75, -0.75, 0.8, 0.85, -0.9, 0.7,
		}
		gl.VertexAttribPointerClient(loc, 2, verts, 0, 0)
		gl.DrawArrays(TRIANGLES, 0, 12)
		gl.Finish()
		return p
	})
}
