package gles

import (
	"fmt"

	"gles2gpgpu/internal/gpu"
)

// GenFramebuffer creates a framebuffer object name.
func (c *Context) GenFramebuffer() uint32 {
	c.apiCost()
	name := c.genName()
	c.framebuffers[name] = &Framebuffer{name: name}
	return name
}

// BindFramebuffer binds an FBO (0 = the default window-system framebuffer).
func (c *Context) BindFramebuffer(target Enum, name uint32) {
	c.apiCost()
	if target != FRAMEBUFFER {
		c.setErr(INVALID_ENUM)
		return
	}
	if name != 0 {
		if _, ok := c.framebuffers[name]; !ok {
			c.setErr(INVALID_OPERATION)
			return
		}
	}
	c.boundFB = name
}

// DeleteFramebuffer removes an FBO.
func (c *Context) DeleteFramebuffer(name uint32) {
	c.apiCost()
	delete(c.framebuffers, name)
	if c.boundFB == name {
		c.boundFB = 0
	}
}

// FramebufferTexture2D attaches a texture as the colour buffer — the
// paper's "texture rendering" path (§II Texture Writing): tiles write
// straight into the texture, skipping the framebuffer-to-texture copy.
func (c *Context) FramebufferTexture2D(target, attachment, textarget Enum, texture uint32, level int) {
	c.apiCost()
	if target != FRAMEBUFFER || textarget != TEXTURE_2D {
		c.setErr(INVALID_ENUM)
		return
	}
	if attachment != COLOR_ATTACHMENT0 {
		c.setErr(INVALID_ENUM)
		return
	}
	if level != 0 {
		c.setErr(INVALID_VALUE)
		return
	}
	fb := c.framebuffers[c.boundFB]
	if fb == nil {
		c.setErr(INVALID_OPERATION)
		return
	}
	if texture != 0 {
		if _, ok := c.textures[texture]; !ok {
			c.setErr(INVALID_OPERATION)
			return
		}
	}
	fb.colorTex = texture
}

// CheckFramebufferStatus validates the bound FBO.
func (c *Context) CheckFramebufferStatus(target Enum) Enum {
	c.apiCost()
	if target != FRAMEBUFFER {
		c.setErr(INVALID_ENUM)
		return 0
	}
	if c.boundFB == 0 {
		return FRAMEBUFFER_COMPLETE
	}
	fb := c.framebuffers[c.boundFB]
	if fb == nil || fb.colorTex == 0 {
		return FRAMEBUFFER_INCOMPLETE_ATTACHMENT
	}
	t := c.textures[fb.colorTex]
	if t == nil || !t.allocated {
		return FRAMEBUFFER_INCOMPLETE_ATTACHMENT
	}
	return FRAMEBUFFER_COMPLETE
}

// renderTarget resolves the current draw destination.
type renderTarget struct {
	res    gpu.ResID
	pixels []byte
	w, h   int
	tex    *Texture // nil for the default framebuffer
}

func (c *Context) currentTarget() (renderTarget, bool) {
	if c.boundFB != 0 {
		fb := c.framebuffers[c.boundFB]
		if fb == nil || fb.colorTex == 0 {
			return renderTarget{}, false
		}
		t := c.textures[fb.colorTex]
		if t == nil || !t.allocated {
			return renderTarget{}, false
		}
		return renderTarget{res: t.res, pixels: t.data, w: t.W, h: t.H, tex: t}, true
	}
	s := c.eglCtx.Draw
	if s == nil {
		return renderTarget{}, false
	}
	return renderTarget{res: s.BackRes(), pixels: s.BackPixels(), w: s.W, h: s.H}, true
}

// Clear fills the target with the clear colour. Beyond the functional fill,
// clearing tells the tile engine the previous contents are dead: the next
// draw skips the tile-load readback and carries no dependency on the prior
// frame (paper §II: using glClear to invalidate the frame contents).
func (c *Context) Clear(mask Enum) {
	if mask&COLOR_BUFFER_BIT == 0 {
		c.apiCost()
		return
	}
	tgt, ok := c.currentTarget()
	if !ok {
		c.setErr(INVALID_FRAMEBUFFER_OPERATION)
		return
	}
	if !c.timingOnly {
		px := [4]byte{
			byte(c.clearColor[0]*255 + 0.5),
			byte(c.clearColor[1]*255 + 0.5),
			byte(c.clearColor[2]*255 + 0.5),
			byte(c.clearColor[3]*255 + 0.5),
		}
		buf := tgt.pixels
		for i := 0; i+3 < len(buf); i += 4 {
			buf[i], buf[i+1], buf[i+2], buf[i+3] = px[0], px[1], px[2], px[3]
		}
	}
	if c.functionalOnly {
		return
	}
	c.m.Clear(tgt.res)
}

// DiscardFramebufferEXT implements EXT_discard_framebuffer: the contents
// become undefined (functionally retained for inspection) and the tile
// engine skips the readback, exactly like Clear but without the fill.
func (c *Context) DiscardFramebufferEXT(target Enum, attachments []Enum) {
	if target != FRAMEBUFFER {
		c.setErr(INVALID_ENUM)
		return
	}
	tgt, ok := c.currentTarget()
	if !ok {
		c.setErr(INVALID_FRAMEBUFFER_OPERATION)
		return
	}
	for _, a := range attachments {
		if a == COLOR_ATTACHMENT0 || a == 0x1800 /* COLOR_EXT */ {
			if !c.functionalOnly {
				c.m.Clear(tgt.res)
			}
		}
	}
}

// ReadPixels reads RGBA8 pixels back to the CPU. It drains the pipeline
// (the implicit glFinish of GLES2 readbacks) and pays the transfer cost.
func (c *Context) ReadPixels(x, y, w, h int, format, xtype Enum, dst []byte) {
	c.apiCost()
	if format != RGBA || xtype != UNSIGNED_BYTE {
		c.setErr(INVALID_ENUM)
		return
	}
	tgt, ok := c.currentTarget()
	if !ok {
		c.setErr(INVALID_FRAMEBUFFER_OPERATION)
		return
	}
	if x < 0 || y < 0 || w < 0 || h < 0 || x+w > tgt.w || y+h > tgt.h {
		c.setErr(INVALID_VALUE)
		return
	}
	size := w * h * 4
	if len(dst) < size {
		c.setErr(INVALID_OPERATION)
		return
	}
	if !c.timingOnly {
		for row := 0; row < h; row++ {
			src := ((y+row)*tgt.w + x) * 4
			copy(dst[row*w*4:(row+1)*w*4], tgt.pixels[src:src+w*4])
		}
	}
	if c.functionalOnly {
		return
	}
	c.m.Readback(tgt.res, size)
}

// CopyTexImage2D snapshots the current framebuffer into the bound texture,
// allocating fresh storage (paper §II Texture Writing, step 4 in Fig. 1).
// The copy engine transfer is scheduled by the machine; the implicit
// synchronisation with rendering happens there.
func (c *Context) CopyTexImage2D(target Enum, level int, internalFormat Enum, x, y, w, h, border int) {
	c.apiCost()
	if target != TEXTURE_2D || internalFormat != RGBA {
		c.setErr(INVALID_ENUM)
		return
	}
	if level != 0 || border != 0 {
		c.setErr(INVALID_VALUE)
		return
	}
	t := c.activeTex2D()
	if t == nil {
		c.setErr(INVALID_OPERATION)
		return
	}
	tgt, ok := c.currentTarget()
	if !ok {
		c.setErr(INVALID_FRAMEBUFFER_OPERATION)
		return
	}
	if tgt.tex == t {
		c.setErr(INVALID_OPERATION) // feedback loop
		return
	}
	if x < 0 || y < 0 || w < 0 || h < 0 || x+w > tgt.w || y+h > tgt.h {
		c.setErr(INVALID_VALUE)
		return
	}
	size := w * h * 4
	// Fresh allocation every call — the cost the Sub variant avoids.
	if t.allocated {
		_ = c.alloc.Free(t.alloc)
		c.m.FreeResource(t.res)
	}
	a, cost := c.alloc.Alloc(size, fmt.Sprintf("tex%d copy %dx%d", t.name, w, h))
	c.m.AllocCost(cost)
	t.alloc = a
	t.res = c.m.NewResource(fmt.Sprintf("tex%d", t.name))
	t.W, t.H = w, h
	t.allocated = true
	if !c.timingOnly {
		// The simulated allocation above models the driver cost; host-side,
		// reuse the texture's previous storage when it still fits — every
		// byte of [0, size) is overwritten by the row copies below, so stale
		// contents cannot leak.
		if cap(t.data) >= size {
			t.data = t.data[:size]
		} else {
			t.data = make([]byte, size)
		}
		for row := 0; row < h; row++ {
			src := ((y+row)*tgt.w + x) * 4
			copy(t.data[row*w*4:(row+1)*w*4], tgt.pixels[src:src+w*4])
		}
	}
	c.m.Copy(tgt.res, t.res, size, false)
}

// CopyTexSubImage2D copies into existing texture storage (the reuse
// variant): no allocation, but a write into live storage with the WAR
// hazard Fig. 5b measures.
func (c *Context) CopyTexSubImage2D(target Enum, level, xoff, yoff, x, y, w, h int) {
	c.apiCost()
	if target != TEXTURE_2D {
		c.setErr(INVALID_ENUM)
		return
	}
	if level != 0 {
		c.setErr(INVALID_VALUE)
		return
	}
	t := c.activeTex2D()
	if t == nil || !t.allocated {
		c.setErr(INVALID_OPERATION)
		return
	}
	tgt, ok := c.currentTarget()
	if !ok {
		c.setErr(INVALID_FRAMEBUFFER_OPERATION)
		return
	}
	if tgt.tex == t {
		c.setErr(INVALID_OPERATION)
		return
	}
	if x < 0 || y < 0 || w < 0 || h < 0 || x+w > tgt.w || y+h > tgt.h ||
		xoff < 0 || yoff < 0 || xoff+w > t.W || yoff+h > t.H {
		c.setErr(INVALID_VALUE)
		return
	}
	size := w * h * 4
	if !c.timingOnly {
		for row := 0; row < h; row++ {
			src := ((y+row)*tgt.w + x) * 4
			dst := ((yoff+row)*t.W + xoff) * 4
			copy(t.data[dst:dst+w*4], tgt.pixels[src:src+w*4])
		}
	}
	c.alloc.NoteSubUpdate(size)
	c.m.Copy(tgt.res, t.res, size, true)
}
