package gles

import (
	"bytes"
	"fmt"
	"testing"

	"gles2gpgpu/internal/device"
)

// Lane-batched execution parity: the full execution-strategy matrix
// {interpreter, per-fragment JIT, lane-batched, divergence-masked} ×
// {serial, 4 workers} × {band, tiled} must produce byte-identical
// framebuffers and bit-identical fragment/cycle/TexFetch counters. The
// "lanes" rows pin masked execution OFF so they exercise the pure
// straight-line engine with its per-fragment fallback; the "masked" rows
// pin it ON so branchy programs run the proof-gated masked path. The lane
// engines additionally sweep non-default widths, including ones that do
// not divide the fragment count (the partial-final-batch path).

// laneCfg is one cell of the execution-strategy matrix.
type laneCfg struct {
	engine  string // "interp", "jit", "lanes" or "masked"
	workers int
	tiling  bool
	width   int // lane width; 0 means the default (lane engines only)
}

func (c laneCfg) name() string {
	n := fmt.Sprintf("%s-w%d", c.engine, c.workers)
	if c.tiling {
		n += "-tiled"
	}
	if c.width != 0 {
		n += fmt.Sprintf("-lw%d", c.width)
	}
	return n
}

// runScenarioLanes is runScenario with the full engine choice: reference
// interpreter, per-fragment closure JIT, or lane-batched SoA execution.
func runScenarioLanes(t *testing.T, c laneCfg, w, h int, scenario func(gl *Context) uint32) drawOutcome {
	t.Helper()
	env := newEnv(t, device.Generic(), w, h, false)
	gl := env.gl
	gl.SetWorkers(c.workers)
	gl.SetTiling(c.tiling)
	switch c.engine {
	case "interp":
		gl.SetJIT(false)
		gl.SetLanes(false)
	case "jit":
		gl.SetLanes(false)
	case "lanes":
		gl.SetLanes(true)
		gl.SetMaskedLanes(false)
		if c.width != 0 {
			gl.SetLaneWidth(c.width)
		}
	case "masked":
		gl.SetLanes(true)
		gl.SetMaskedLanes(true)
		if c.width != 0 {
			gl.SetLaneWidth(c.width)
		}
	default:
		t.Fatalf("unknown engine %q", c.engine)
	}
	defer gl.Destroy()
	prog := scenario(gl)
	if e := gl.GetError(); e != NO_ERROR {
		t.Fatalf("%s: scenario error: %s", c.name(), ErrName(e))
	}
	out := drawOutcome{pixels: make([]byte, w*h*4)}
	gl.ReadPixels(0, 0, w, h, RGBA, UNSIGNED_BYTE, out.pixels)
	var ok bool
	out.fragments, out.cycles, out.texFetches, ok = gl.DrawStatsFor(prog, w, h)
	if !ok {
		t.Fatal("no draw stats recorded")
	}
	return out
}

// expectLaneParity runs the scenario through every cell of the matrix and
// demands bit-identity with the serial interpreter.
func expectLaneParity(t *testing.T, w, h int, scenario func(gl *Context) uint32) {
	t.Helper()
	ref := runScenarioLanes(t, laneCfg{engine: "interp", workers: 1}, w, h, scenario)
	var cfgs []laneCfg
	for _, engine := range []string{"interp", "jit", "lanes", "masked"} {
		for _, workers := range []int{1, 4} {
			for _, tiling := range []bool{false, true} {
				if engine == "interp" && workers == 1 && !tiling {
					continue // the reference itself
				}
				cfgs = append(cfgs, laneCfg{engine: engine, workers: workers, tiling: tiling})
			}
		}
	}
	// Non-default widths, including ones that do not divide typical
	// coverage counts so the final batch is partial.
	for _, width := range []int{2, 5, 16} {
		cfgs = append(cfgs,
			laneCfg{engine: "lanes", workers: 1, width: width},
			laneCfg{engine: "lanes", workers: 4, tiling: true, width: width},
			laneCfg{engine: "masked", workers: 1, width: width},
			laneCfg{engine: "masked", workers: 4, tiling: true, width: width})
	}
	for _, c := range cfgs {
		got := runScenarioLanes(t, c, w, h, scenario)
		if !bytes.Equal(ref.pixels, got.pixels) {
			for i := range ref.pixels {
				if ref.pixels[i] != got.pixels[i] {
					t.Fatalf("%s: framebuffers diverge at byte %d (pixel %d): interp-serial %d, %s %d",
						c.name(), i, i/4, ref.pixels[i], c.name(), got.pixels[i])
				}
			}
		}
		if ref.fragments != got.fragments {
			t.Errorf("%s: fragments: %d vs %d", c.name(), ref.fragments, got.fragments)
		}
		if ref.cycles != got.cycles {
			t.Errorf("%s: cycles: %d vs %d", c.name(), ref.cycles, got.cycles)
		}
		if ref.texFetches != got.texFetches {
			t.Errorf("%s: tex fetches: %d vs %d", c.name(), ref.texFetches, got.texFetches)
		}
	}
}

// TestLaneParityTexturedQuad: a texturing straight-line kernel — the shape
// of every lane-eligible GPGPU kernel — across the whole matrix. 64×64
// coverage reaches the parallel gate, so band and tiled cells genuinely
// shade on workers.
func TestLaneParityTexturedQuad(t *testing.T) {
	const n = 64
	expectLaneParity(t, n, n, func(gl *Context) uint32 {
		checkerTexture(gl, n, n)
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
uniform sampler2D u_tex;
void main() {
	vec4 s = texture2D(u_tex, v_tex);
	float acc = 0.0;
	for (int i = 0; i < 4; i++) {
		acc += s.x * 0.3 + v_tex.y * 0.1;
	}
	gl_FragColor = vec4(fract(acc), s.yz, 1.0);
}`)
		gl.UseProgram(p)
		gl.Uniform1i(gl.GetUniformLocation(p, "u_tex"), 0)
		drawQuad(t, gl, p)
		return p
	})
}

// TestLaneParityPartialBatch: a 13×7 grid (91 fragments) is not a multiple
// of any lane width in the sweep, so every lane cell ends the draw with a
// partial final batch.
func TestLaneParityPartialBatch(t *testing.T) {
	expectLaneParity(t, 13, 7, func(gl *Context) uint32 {
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main() {
	float a = v_tex.x * 3.0 + v_tex.y;
	gl_FragColor = vec4(fract(a), v_tex, 1.0);
}`)
		gl.UseProgram(p)
		drawQuad(t, gl, p)
		return p
	})
}

// TestLaneParityDiscard: discard makes the program ineligible for the
// pure lane engine (a batch could diverge), so the lanes cells must
// silently fall back to per-fragment execution; the masked cells shade it
// with per-lane death instead. Both must match everywhere.
func TestLaneParityDiscard(t *testing.T) {
	const n = 64
	expectLaneParity(t, n, n, func(gl *Context) uint32 {
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main() {
	if (v_tex.x > 0.5) discard;
	gl_FragColor = vec4(v_tex, 0.5, 1.0);
}`)
		gl.UseProgram(p)
		drawQuad(t, gl, p)
		return p
	})
}

// TestLaneParityBranchyFallback: a data-dependent if/else (the jacobi
// shape) compiles to real control flow, so the pure lane cells fall back
// per-fragment while the masked cells run it divergence-masked; pixels
// and counters still match the interpreter bit-for-bit.
func TestLaneParityBranchyFallback(t *testing.T) {
	const n = 32
	expectLaneParity(t, n, n, func(gl *Context) uint32 {
		p := buildProgram(t, gl, quadVS, `
precision mediump float;
varying vec2 v_tex;
void main() {
	float v;
	if (v_tex.x + v_tex.y > 0.9) {
		v = v_tex.x * 0.25;
	} else {
		v = v_tex.y * 4.0;
	}
	gl_FragColor = vec4(fract(v), v_tex, 1.0);
}`)
		gl.UseProgram(p)
		drawQuad(t, gl, p)
		return p
	})
}

// TestLaneFallbackCounter pins the fallback accounting: with masked
// execution off, a branchy draw wants lanes but cannot take them, so it
// increments LaneFallbackDraws; with masked execution on, the same
// forward-branching program runs masked and the counter stays put. A
// straight-line draw never increments it in either mode.
func TestLaneFallbackCounter(t *testing.T) {
	const n = 32
	branchyFS := `
precision mediump float;
varying vec2 v_tex;
void main() {
	float v = 0.0;
	if (v_tex.x > 0.5) {
		v = v_tex.y;
	}
	gl_FragColor = vec4(v, v_tex, 1.0);
}`
	straightFS := `
precision mediump float;
varying vec2 v_tex;
void main() {
	gl_FragColor = vec4(v_tex, 0.0, 1.0);
}`
	run := func(masked bool, fs string) int64 {
		env := newEnv(t, device.Generic(), n, n, false)
		defer env.gl.Destroy()
		gl := env.gl
		gl.SetLanes(true)
		gl.SetMaskedLanes(masked)
		p := buildProgram(t, gl, quadVS, fs)
		gl.UseProgram(p)
		drawQuad(t, gl, p)
		if e := gl.GetError(); e != NO_ERROR {
			t.Fatalf("draw error: %s", ErrName(e))
		}
		return gl.LaneFallbackDraws()
	}
	if got := run(false, branchyFS); got == 0 {
		t.Errorf("branchy draw without masked lanes should count a fallback")
	}
	if got := run(true, branchyFS); got != 0 {
		t.Errorf("masked lanes should absorb the branchy draw, got %d fallbacks", got)
	}
	if got := run(true, straightFS); got != 0 {
		t.Errorf("straight-line draw should never count a fallback, got %d", got)
	}
}
