package gles

import "sync"

// SharedProgramCache memoises successful shader compilations across
// contexts: a serving deployment keeps one long-lived engine per worker, and
// every worker of a device pool compiles the same small set of kernels. The
// cache shares the immutable compiled artefacts (glsl.CheckedShader,
// shader.Program) between those contexts so each distinct source compiles
// once per pool rather than once per engine.
//
// Sharing compiled Programs across contexts is safe under two conditions
// that the serve layer guarantees and ordinary callers should follow:
//
//   - All sharing contexts use the same *device.Profile instance. The
//     closure-JIT cache on shader.Program is keyed by CostModel pointer
//     identity, so distinct Profile copies would thrash it (correct, but
//     recompiling per draw), and compile-time limit checks must agree.
//   - All sharing contexts run the same pass-pipeline setting. The
//     optimised program form is attached at first compile; the cache key
//     includes the setting so mixed configurations simply do not share.
//
// All methods are safe for concurrent use.
type SharedProgramCache struct {
	mu      sync.Mutex
	entries map[sharedCacheKey]shaderCacheEntry
	hits    int64
	misses  int64
}

type sharedCacheKey struct {
	key    shaderCacheKey
	passes bool
}

// NewSharedProgramCache returns an empty cache.
func NewSharedProgramCache() *SharedProgramCache {
	return &SharedProgramCache{entries: make(map[sharedCacheKey]shaderCacheEntry)}
}

// lookup returns the cached entry for key, counting a hit or miss.
func (s *SharedProgramCache) lookup(key shaderCacheKey, passes bool) (shaderCacheEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[sharedCacheKey{key: key, passes: passes}]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return e, ok
}

// store publishes a successful compilation. The entry's artefacts must be
// fully built (passes attached) before store: after publication other
// contexts execute them without further synchronisation.
func (s *SharedProgramCache) store(key shaderCacheKey, passes bool, e shaderCacheEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[sharedCacheKey{key: key, passes: passes}] = e
}

// Stats returns the lookup hit/miss counters.
func (s *SharedProgramCache) Stats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Len reports the number of cached compilations.
func (s *SharedProgramCache) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// SetSharedProgramCache attaches a cross-context compilation cache,
// consulted by CompileShader before the context's own cache. Pass nil to
// detach. See the SharedProgramCache doc for the sharing conditions.
func (c *Context) SetSharedProgramCache(s *SharedProgramCache) { c.sharedCache = s }
